// Behavioral tests for the baseline-specific mechanisms: Tuneful's staged
// dimension shrinking, LOCAT's QCSA elimination and data-size awareness,
// RFHOC/DAC's model-then-GA phases.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/dac.h"
#include "baselines/locat.h"
#include "baselines/rfhoc.h"
#include "baselines/tuneful.h"

namespace sparktune {
namespace {

ConfigSpace WideSpace(int n = 12) {
  ConfigSpace s;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(
        s.Add(Parameter::Float("p" + std::to_string(i), 0.0, 1.0, 0.5)).ok());
  }
  return s;
}

// Only p0 and p1 matter; everything else is noise.
class SparseEvaluator final : public JobEvaluator {
 public:
  explicit SparseEvaluator(const ConfigSpace* space) : space_(space) {}

  Outcome Run(const Configuration& c) override {
    ++runs_;
    Outcome o;
    o.runtime_sec = 100.0 + 400.0 * (std::pow(c[0] - 0.2, 2) +
                                     std::pow(c[1] - 0.8, 2));
    o.resource_rate = 10.0;
    o.data_size_gb = 100.0 + 10.0 * std::sin(runs_ * 0.7);
    o.hours = runs_;
    return o;
  }
  double ResourceRate(const Configuration&) const override { return 10.0; }
  double NextDataSizeHintGb() const override {
    return 100.0 + 10.0 * std::sin((runs_ + 1) * 0.7);
  }

 private:
  const ConfigSpace* space_;
  int runs_ = 0;
};

// Count of parameters where two configs differ.
int DiffCount(const Configuration& a, const Configuration& b) {
  int n = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > 1e-12) ++n;
  }
  return n;
}

TEST(TunefulBehaviorTest, ShrinksTunedDimensionsAfterStageOne) {
  ConfigSpace space = WideSpace();
  SparseEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 1.0;
  TunefulOptions topts;
  topts.init_samples = 3;
  topts.stage1_at = 8;
  topts.stage1_params = 4;
  topts.stage2_at = 14;
  topts.stage2_params = 2;
  Tuneful tuneful(topts);
  RunHistory h = tuneful.Tune(space, &eval, obj, 20, 3);
  ASSERT_EQ(h.size(), 20u);
  // After stage 2 engages, each suggestion differs from the incumbent at
  // suggestion time in at most stage2_params dimensions. Verify against
  // the best config over the prior prefix.
  for (size_t i = 16; i < h.size(); ++i) {
    double best_obj = std::numeric_limits<double>::infinity();
    int best = -1;
    for (size_t k = 0; k < i; ++k) {
      if (h.feasible(k) && h.objective(k) < best_obj) {
        best_obj = h.objective(k);
        best = static_cast<int>(k);
      }
    }
    ASSERT_GE(best, 0);
    EXPECT_LE(DiffCount(h.config(i), h.config(static_cast<size_t>(best))),
              topts.stage2_params);
  }
}

TEST(LocatBehaviorTest, QcsaKeepsOnlySensitiveParameters) {
  ConfigSpace space = WideSpace();
  SparseEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 1.0;
  LocatOptions lopts;
  lopts.init_samples = 3;
  lopts.qcsa_at = 10;
  lopts.keep_params = 3;
  Locat locat(lopts);
  RunHistory h = locat.Tune(space, &eval, obj, 22, 5);
  ASSERT_EQ(h.size(), 22u);
  for (size_t i = 14; i < h.size(); ++i) {
    double best_obj = std::numeric_limits<double>::infinity();
    int best = -1;
    for (size_t k = 0; k < i; ++k) {
      if (h.feasible(k) && h.objective(k) < best_obj) {
        best_obj = h.objective(k);
        best = static_cast<int>(k);
      }
    }
    ASSERT_GE(best, 0);
    EXPECT_LE(DiffCount(h.config(i), h.config(static_cast<size_t>(best))),
              lopts.keep_params);
  }
}

TEST(LocatBehaviorTest, ConvergesOnSparseLandscape) {
  ConfigSpace space = WideSpace();
  SparseEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 1.0;
  Locat locat;
  RunHistory h = locat.Tune(space, &eval, obj, 25, 7);
  EXPECT_LT(h.BestObjective(), 180.0);  // optimum is 100
}

TEST(RfhocBehaviorTest, ModelPhaseFollowsRandomPhase) {
  ConfigSpace space = WideSpace(6);
  SparseEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 1.0;
  RfhocOptions ropts;
  ropts.init_fraction = 0.5;
  Rfhoc rfhoc(ropts);
  RunHistory h = rfhoc.Tune(space, &eval, obj, 20, 9);
  ASSERT_EQ(h.size(), 20u);
  // The exploitation half should on average outperform the random half.
  double random_mean = 0.0, model_mean = 0.0;
  for (size_t i = 0; i < 10; ++i) random_mean += h.at(i).objective / 10.0;
  for (size_t i = 10; i < 20; ++i) model_mean += h.at(i).objective / 10.0;
  EXPECT_LT(model_mean, random_mean);
}

TEST(DacBehaviorTest, UsesDataSizeBuckets) {
  ConfigSpace space = WideSpace(6);
  SparseEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 1.0;
  Dac dac;
  RunHistory h = dac.Tune(space, &eval, obj, 20, 11);
  ASSERT_EQ(h.size(), 20u);
  // All observations recorded a data size (the hierarchy's input).
  for (const auto& o : h.observations()) {
    EXPECT_GT(o.data_size_gb, 0.0);
  }
  EXPECT_LT(h.BestObjective(), 300.0);
}

}  // namespace
}  // namespace sparktune
