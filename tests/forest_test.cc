// Tests for CART trees, random forests and GBDT.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "forest/gbdt.h"
#include "forest/random_forest.h"
#include "forest/tree.h"

namespace sparktune {
namespace {

// y = step function of x0: 1 if x0 > 0.5 else 0; x1 is noise.
void StepData(int n, std::vector<std::vector<double>>* x,
              std::vector<double>* y, uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    x->push_back({a, b});
    y->push_back(a > 0.5 ? 1.0 : 0.0);
  }
}

TEST(TreeTest, FitsStepFunctionExactly) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(200, &x, &y, 1);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_NEAR(tree.Predict({0.2, 0.5}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict({0.9, 0.5}), 1.0, 1e-9);
}

TEST(TreeTest, RejectsBadInputs) {
  RegressionTree tree;
  EXPECT_FALSE(tree.Fit({}, {}).ok());
  EXPECT_FALSE(tree.Fit({{1.0}}, {1.0, 2.0}).ok());
}

TEST(TreeTest, DepthLimitProducesStumpAtZeroDepth) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(100, &x, &y, 2);
  TreeOptions opts;
  opts.max_depth = 0;
  RegressionTree tree(opts);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_TRUE(tree.nodes()[0].is_leaf);
  EXPECT_NEAR(tree.nodes()[0].value, 0.5, 0.1);
}

TEST(TreeTest, MinSamplesLeafRespected) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(60, &x, &y, 3);
  TreeOptions opts;
  opts.min_samples_leaf = 10;
  RegressionTree tree(opts);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf) {
      EXPECT_GE(node.num_samples, 10);
    }
  }
}

TEST(TreeTest, ImportanceIdentifiesActiveFeature) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(300, &x, &y, 4);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  auto imp = tree.FeatureImportance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 0.9);
  EXPECT_LT(imp[1], 0.1);
}

TEST(TreeTest, FeatureSubsamplingNeedsRng) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(50, &x, &y, 5);
  TreeOptions opts;
  opts.max_features = 1;
  RegressionTree tree(opts);
  EXPECT_FALSE(tree.Fit(x, y).ok());  // no rng provided
  Rng rng(6);
  EXPECT_TRUE(tree.Fit(x, y, {}, &rng).ok());
}

TEST(ForestTest, PredictsSmoothFunction) {
  Rng rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(std::sin(3.0 * a) + 0.5 * b);
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  double sse = 0.0;
  for (int i = 0; i < 50; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    double pred = forest.Predict({a, b}).mean;
    double truth = std::sin(3.0 * a) + 0.5 * b;
    sse += (pred - truth) * (pred - truth);
  }
  EXPECT_LT(std::sqrt(sse / 50.0), 0.15);
}

TEST(ForestTest, VarianceHigherOffManifold) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(200, &x, &y, 8);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  // Near the decision boundary trees disagree more than deep inside a
  // region.
  double var_boundary = forest.Predict({0.5, 0.5}).variance;
  double var_inside = forest.Predict({0.05, 0.5}).variance;
  EXPECT_GE(var_boundary, var_inside);
}

TEST(ForestTest, ImportanceAggregatesAcrossTrees) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(300, &x, &y, 9);
  ForestOptions opts;
  opts.num_trees = 16;
  RandomForest forest(opts);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  auto imp = forest.FeatureImportance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1]);
}

TEST(ForestTest, DeterministicForSameSeed) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  StepData(100, &x, &y, 10);
  ForestOptions opts;
  opts.seed = 123;
  RandomForest f1(opts), f2(opts);
  ASSERT_TRUE(f1.Fit(x, y).ok());
  ASSERT_TRUE(f2.Fit(x, y).ok());
  for (int i = 0; i < 20; ++i) {
    std::vector<double> q = {i / 20.0, 0.3};
    EXPECT_DOUBLE_EQ(f1.Predict(q).mean, f2.Predict(q).mean);
  }
}

TEST(GbdtTest, OutperformsSingleShallowTree) {
  Rng rng(11);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(std::sin(5.0 * a) * std::cos(3.0 * b));
  }
  GbdtRegressor gbdt;
  ASSERT_TRUE(gbdt.Fit(x, y).ok());
  TreeOptions sopts;
  sopts.max_depth = 4;
  RegressionTree shallow(sopts);
  ASSERT_TRUE(shallow.Fit(x, y).ok());
  double sse_gbdt = 0.0, sse_tree = 0.0;
  for (int i = 0; i < 100; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    double truth = std::sin(5.0 * a) * std::cos(3.0 * b);
    sse_gbdt += std::pow(gbdt.Predict({a, b}) - truth, 2);
    sse_tree += std::pow(shallow.Predict({a, b}) - truth, 2);
  }
  EXPECT_LT(sse_gbdt, sse_tree);
}

TEST(GbdtTest, BasePredictionIsTargetMean) {
  GbdtRegressor gbdt;
  ASSERT_TRUE(gbdt.Fit({{0.1}, {0.9}}, {2.0, 4.0}).ok());
  EXPECT_DOUBLE_EQ(gbdt.base_prediction(), 3.0);
}

TEST(GbdtTest, EarlyStopLimitsRounds) {
  // Constant target: no residual improvement after round 1.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back({i / 50.0});
    y.push_back(1.0);
  }
  GbdtOptions opts;
  opts.num_rounds = 200;
  opts.early_stop_rounds = 3;
  GbdtRegressor gbdt(opts);
  ASSERT_TRUE(gbdt.Fit(x, y).ok());
  EXPECT_LT(gbdt.num_trees(), 20);
}

TEST(GbdtTest, RejectsEmpty) {
  GbdtRegressor gbdt;
  EXPECT_FALSE(gbdt.Fit({}, {}).ok());
}

}  // namespace
}  // namespace sparktune
