// Crash-safe checkpoint/recovery tests (DESIGN.md §7): CRC32 vectors, the
// framed atomic checkpoint files, the task-checkpoint JSON codec, and the
// headline property — a kill/restart resumes the identical trajectory.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "service/checkpoint.h"
#include "service/tuning_service.h"
#include "sparksim/hibench.h"
#include "tuner/fault_injection.h"

namespace sparktune {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("sparktune-ckpt-test-" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

// The one checkpoint file in a repository directory.
std::string OnlyCheckpointFile(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") {
      EXPECT_TRUE(found.empty()) << "more than one .ckpt in " << dir;
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no .ckpt in " << dir;
  return found;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

struct Fixture {
  Fixture()
      : cluster(ClusterSpec::HiBenchCluster()),
        space(BuildSparkSpace(cluster)) {}

  std::unique_ptr<SimulatorEvaluator> MakeInner(uint64_t seed) {
    auto w = HiBenchTask("WordCount");
    EXPECT_TRUE(w.ok());
    SimulatorEvaluatorOptions opts;
    opts.seed = seed;
    return std::make_unique<SimulatorEvaluator>(&space, *w, cluster,
                                                DriftModel::Diurnal(), opts);
  }

  TuningServiceOptions ServiceOpts(const std::string& dir) {
    TuningServiceOptions opts;
    opts.tuner.budget = 10;
    opts.tuner.ei_stop_threshold = 0.0;
    opts.tuner.advisor.expert_ranking = ExpertParameterRanking();
    opts.repository_dir = dir;
    return opts;
  }

  ClusterSpec cluster;
  ConfigSpace space;
};

FaultInjectionOptions MixedFaults() {
  FaultInjectionOptions opts;
  opts.seed = 5;
  opts.crash_prob = 0.15;
  opts.transient_error_prob = 0.1;
  opts.hang_prob = 0.1;
  opts.corrupt_log_prob = 0.1;
  opts.truncate_log_prob = 0.1;
  return opts;
}

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  // Incremental computation matches one-shot.
  uint32_t partial = Crc32("12345");
  EXPECT_EQ(Crc32("6789", partial), 0xCBF43926u);
}

TEST(CheckpointFileTest, RoundTripAndListing) {
  DataRepository repo(TempDir("roundtrip"));
  EXPECT_FALSE(repo.HasCheckpoint("task-a"));
  EXPECT_EQ(repo.LoadCheckpoint("task-a").status().code(),
            Status::Code::kNotFound);

  Json payload = Json::Object();
  payload.Set("id", Json::Str("task-a"));
  payload.Set("x", Json::Number(42.0));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());
  EXPECT_TRUE(repo.HasCheckpoint("task-a"));

  auto loaded = repo.LoadCheckpoint("task-a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetStringOr("id", ""), "task-a");
  EXPECT_EQ(loaded->GetNumberOr("x", 0.0), 42.0);

  auto ids = repo.ListCheckpointIds();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], "task-a");

  // Overwrite is atomic-replace, not append.
  payload.Set("x", Json::Number(43.0));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());
  loaded = repo.LoadCheckpoint("task-a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetNumberOr("x", 0.0), 43.0);

  ASSERT_TRUE(repo.DeleteCheckpoint("task-a").ok());
  EXPECT_FALSE(repo.HasCheckpoint("task-a"));
}

TEST(CheckpointFileTest, TruncationAndCorruptionAreDataLoss) {
  std::string dir = TempDir("torn");
  DataRepository repo(dir);
  Json payload = Json::Object();
  payload.Set("id", Json::Str("task-a"));
  payload.Set("blob", Json::Str("some payload that is long enough to cut"));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());
  const std::string path = OnlyCheckpointFile(dir);
  const std::string intact = ReadFile(path);

  // Torn write: the tail is missing.
  WriteFile(path, intact.substr(0, intact.size() - 10));
  EXPECT_EQ(repo.LoadCheckpoint("task-a").status().code(),
            Status::Code::kDataLoss);

  // Bit rot: one payload byte flipped, length unchanged.
  std::string flipped = intact;
  flipped[flipped.size() - 3] ^= 0x20;
  WriteFile(path, flipped);
  EXPECT_EQ(repo.LoadCheckpoint("task-a").status().code(),
            Status::Code::kDataLoss);

  // Garbage header.
  WriteFile(path, "not a checkpoint at all\n{}");
  EXPECT_EQ(repo.LoadCheckpoint("task-a").status().code(),
            Status::Code::kDataLoss);

  // The intact bytes still load: the screen rejects damage, not age.
  WriteFile(path, intact);
  EXPECT_TRUE(repo.LoadCheckpoint("task-a").ok());
}

TEST(CheckpointCodecTest, TaskCheckpointRoundTrip) {
  Fixture f;
  auto inner = f.MakeInner(3);
  OnlineTuner tuner(&f.space, inner.get(), f.ServiceOpts("").tuner);
  for (int i = 0; i < 7; ++i) tuner.Step();

  TaskCheckpoint ckpt;
  ckpt.id = "wc";
  ckpt.tuner = tuner.SaveState();
  ckpt.meta_samples = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  ckpt.meta_attached = true;
  ckpt.harvested = true;
  ckpt.harvested_size = 7;
  ckpt.retry.consecutive_infra = 2;
  ckpt.retry.backoff_remaining = 4;
  ckpt.retry.infra_failures = 9;

  // Through the serialized form (Dump + Parse) to catch anything that
  // survives in-memory JSON but not the wire format (inf, uint64 width).
  auto reparsed = Json::Parse(TaskCheckpointToJson(ckpt).Dump());
  ASSERT_TRUE(reparsed.ok());
  auto back = TaskCheckpointFromJson(*reparsed, f.space);
  ASSERT_TRUE(back.ok());

  EXPECT_EQ(back->id, "wc");
  EXPECT_EQ(back->tuner.phase, ckpt.tuner.phase);
  EXPECT_EQ(back->tuner.executions, ckpt.tuner.executions);
  EXPECT_EQ(back->tuner.tuning_iterations, ckpt.tuner.tuning_iterations);
  EXPECT_EQ(back->tuner.runtime_max, ckpt.tuner.runtime_max);
  EXPECT_EQ(back->tuner.resource_max, ckpt.tuner.resource_max);
  ASSERT_EQ(back->tuner.baseline_obs.has_value(),
            ckpt.tuner.baseline_obs.has_value());
  EXPECT_EQ(back->tuner.has_advisor, ckpt.tuner.has_advisor);
  EXPECT_EQ(back->meta_samples, ckpt.meta_samples);
  EXPECT_TRUE(back->meta_attached);
  EXPECT_TRUE(back->harvested);
  EXPECT_EQ(back->harvested_size, 7u);
  EXPECT_EQ(back->retry.consecutive_infra, 2);
  EXPECT_EQ(back->retry.backoff_remaining, 4);
  EXPECT_EQ(back->retry.infra_failures, 9);
}

TEST(CheckpointCodecTest, MalformedDocumentsAreDataLoss) {
  Fixture f;
  EXPECT_EQ(TaskCheckpointFromJson(Json::Array(), f.space).status().code(),
            Status::Code::kDataLoss);
  Json no_id = Json::Object();
  no_id.Set("tuner", Json::Object());
  EXPECT_EQ(TaskCheckpointFromJson(no_id, f.space).status().code(),
            Status::Code::kDataLoss);
  Json no_tuner = Json::Object();
  no_tuner.Set("id", Json::Str("wc"));
  EXPECT_EQ(TaskCheckpointFromJson(no_tuner, f.space).status().code(),
            Status::Code::kDataLoss);
}

// Acceptance: kill the service after any period, restore from the
// checkpoint, and the remaining trajectory is bit-identical to a service
// that was never killed — fault schedule and watchdog state included.
TEST(CheckpointRecoveryTest, KillRestartResumesIdenticalTrajectory) {
  Fixture f;
  constexpr int kTotal = 30;
  constexpr int kKillAfter = 12;

  // Reference service: never killed.
  std::vector<Result<Observation>> want;
  {
    TuningService service(&f.space, f.ServiceOpts(TempDir("ref")));
    auto inner = f.MakeInner(7);
    FaultInjectingEvaluator eval(inner.get(), MixedFaults());
    ASSERT_TRUE(service.RegisterTask("wc", &eval).ok());
    for (int i = 0; i < kTotal; ++i) {
      want.push_back(service.ExecutePeriodic("wc"));
    }
  }

  const std::string dir = TempDir("killed");
  {
    TuningService service(&f.space, f.ServiceOpts(dir));
    auto inner = f.MakeInner(7);
    FaultInjectingEvaluator eval(inner.get(), MixedFaults());
    ASSERT_TRUE(service.RegisterTask("wc", &eval).ok());
    for (int i = 0; i < kKillAfter; ++i) {
      auto got = service.ExecutePeriodic("wc");
      ASSERT_EQ(got.ok(), want[i].ok()) << "period " << i;
    }
    ASSERT_TRUE(service.CheckpointTasks().ok());
  }  // "kill -9": the process state is gone; only the repository survives.

  TuningService revived(&f.space, f.ServiceOpts(dir));
  auto inner = f.MakeInner(7);  // restarted process rebuilds from scratch
  FaultInjectingEvaluator eval(inner.get(), MixedFaults());
  ASSERT_TRUE(revived.RegisterTask("wc", &eval).ok());
  ASSERT_TRUE(revived.LoadRepository().ok());
  auto report = revived.RestoreTasks();
  ASSERT_TRUE(report.errors.empty())
      << report.errors[0].message();
  EXPECT_EQ(report.restored, 1);
  EXPECT_EQ(report.fresh_starts, 0);

  for (int i = kKillAfter; i < kTotal; ++i) {
    auto got = revived.ExecutePeriodic("wc");
    ASSERT_EQ(got.ok(), want[i].ok()) << "period " << i;
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), want[i].status().code());
      continue;
    }
    EXPECT_TRUE(got->config == want[i]->config) << "period " << i;
    EXPECT_EQ(got->objective, want[i]->objective) << "period " << i;
    EXPECT_EQ(got->runtime_sec, want[i]->runtime_sec) << "period " << i;
    EXPECT_EQ(got->failure, want[i]->failure) << "period " << i;
    EXPECT_EQ(got->degraded, want[i]->degraded) << "period " << i;
    EXPECT_EQ(got->feasible, want[i]->feasible) << "period " << i;
  }
}

TEST(CheckpointRecoveryTest, TornCheckpointFallsBackToFreshStart) {
  Fixture f;
  const std::string dir = TempDir("torn-restart");
  {
    TuningService service(&f.space, f.ServiceOpts(dir));
    auto inner = f.MakeInner(3);
    ASSERT_TRUE(service.RegisterTask("wc", inner.get()).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
    }
    ASSERT_TRUE(service.CheckpointTask("wc").ok());
  }
  // Tear the checkpoint mid-write.
  const std::string path = OnlyCheckpointFile(dir);
  const std::string intact = ReadFile(path);
  WriteFile(path, intact.substr(0, intact.size() / 2));

  TuningService revived(&f.space, f.ServiceOpts(dir));
  auto inner = f.MakeInner(3);
  ASSERT_TRUE(revived.RegisterTask("wc", inner.get()).ok());
  auto report = revived.RestoreTasks();
  EXPECT_EQ(report.restored, 0);
  EXPECT_EQ(report.fresh_starts, 1);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].code(), Status::Code::kDataLoss);

  // The task stayed in its freshly registered state and tunes normally.
  auto obs = revived.ExecutePeriodic("wc");
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(revived.tuner("wc")->executions(), 1);
}

// Generation-suffixed checkpoint files of a directory, oldest first (the
// %06lld suffix makes lexicographic order generation order).
std::vector<std::string> CheckpointFilesSorted(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CheckpointGenerationTest, RetentionKeepsNewestK) {
  const std::string dir = TempDir("retention");
  CheckpointRetention retention;
  retention.keep_generations = 2;
  DataRepository repo(dir, retention);
  for (int g = 1; g <= 5; ++g) {
    Json payload = Json::Object();
    payload.Set("id", Json::Str("task-a"));
    payload.Set("x", Json::Number(static_cast<double>(g)));
    ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());
  }
  // Only the newest two generations survive each write's GC.
  EXPECT_EQ(CheckpointFilesSorted(dir).size(), 2u);
  EXPECT_EQ(repo.LatestCheckpointGeneration("task-a"), 5);
  auto loaded = repo.LoadCheckpoint("task-a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetNumberOr("x", 0.0), 5.0);

  // A torn newest generation falls back to the previous one.
  auto files = CheckpointFilesSorted(dir);
  const std::string intact = ReadFile(files.back());
  WriteFile(files.back(), intact.substr(0, intact.size() / 2));
  loaded = repo.LoadCheckpoint("task-a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetNumberOr("x", 0.0), 4.0);
}

TEST(CheckpointGenerationTest, SweepRemovesOrphansAndTempFiles) {
  const std::string dir = TempDir("sweep");
  CheckpointRetention keep3;
  keep3.keep_generations = 3;
  {
    DataRepository repo(dir, keep3);
    for (int g = 1; g <= 3; ++g) {
      Json payload = Json::Object();
      payload.Set("id", Json::Str("task-a"));
      ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());
    }
  }
  ASSERT_EQ(CheckpointFilesSorted(dir).size(), 3u);
  WriteFile(dir + "/stale.ckpt.tmp", "interrupted atomic write");

  // A tighter retention on restart treats the excess generations (and any
  // stale temp files) as orphans.
  DataRepository tight(dir);  // default keep_generations = 2
  EXPECT_EQ(tight.SweepOrphanCheckpoints(), 2);
  EXPECT_EQ(CheckpointFilesSorted(dir).size(), 2u);
  EXPECT_FALSE(fs::exists(dir + "/stale.ckpt.tmp"));
  EXPECT_TRUE(tight.LoadCheckpoint("task-a").ok());
}

// Pin the %06lld pad boundary: generation 999999 -> 1000000 widens the
// file name past the zero-pad, where lexicographic name order inverts
// ("g1000000" < "g999999" as strings). Everything — latest-generation
// discovery, load order, retention GC — must order by the PARSED number.
TEST(CheckpointGenerationTest, GenerationPadBoundaryOrdersNumerically) {
  const std::string dir = TempDir("pad-boundary");
  DataRepository repo(dir);  // keep_generations = 2
  Json payload = Json::Object();
  payload.Set("id", Json::Str("task-a"));
  payload.Set("x", Json::Number(1.0));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());

  // Fast-forward the clock: clone generation 1's file as generation 999999.
  auto files = CheckpointFilesSorted(dir);
  ASSERT_EQ(files.size(), 1u);
  std::string g999999 = files[0];
  size_t pos = g999999.rfind("g000001");
  ASSERT_NE(pos, std::string::npos);
  g999999.replace(pos, 7, "g999999");
  WriteFile(g999999, ReadFile(files[0]));

  payload.Set("x", Json::Number(2.0));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());
  EXPECT_EQ(repo.LatestCheckpointGeneration("task-a"), 1000000);
  auto loaded = repo.LoadCheckpoint("task-a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetNumberOr("x", 0.0), 2.0);

  // The next write crosses the boundary again; retention must collect the
  // numerically oldest generation (999999), not the lexically smallest
  // name (which would be g1000000).
  payload.Set("x", Json::Number(3.0));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());
  EXPECT_EQ(repo.LatestCheckpointGeneration("task-a"), 1000001);
  files = CheckpointFilesSorted(dir);
  ASSERT_EQ(files.size(), 2u);
  for (const auto& f : files) {
    EXPECT_EQ(f.find("g999999"), std::string::npos) << f;
  }
  loaded = repo.LoadCheckpoint("task-a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetNumberOr("x", 0.0), 3.0);
}

// The sweep must only touch this repository's own checkpoint artifacts.
// It used to delete EVERY *.tmp regular file in the directory — including
// a task document mid-atomic-write and files it does not own at all.
TEST(CheckpointGenerationTest, SweepPreservesForeignFiles) {
  const std::string dir = TempDir("sweep-foreign");
  CheckpointRetention keep1;
  keep1.keep_generations = 1;
  DataRepository repo(dir, keep1);
  Json payload = Json::Object();
  payload.Set("id", Json::Str("task-a"));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());

  // Checkpoint-artifact temps: sweep-eligible.
  WriteFile(dir + "/stem.g000007.ckpt.tmp", "torn generation write");
  WriteFile(dir + "/stem.ckpt.tmp", "torn legacy write");
  WriteFile(dir + "/stem.manifest.tmp", "torn manifest write");
  // Foreign files: must survive (the .json.tmp is SaveTask's atomic-write
  // temp, the others were never written by the repository).
  WriteFile(dir + "/task-doc.json.tmp", "{\"id\":\"wip\"}");
  WriteFile(dir + "/notes.tmp", "user scratch file");
  WriteFile(dir + "/README", "not a checkpoint");

  EXPECT_EQ(repo.SweepOrphanCheckpoints(), 3);
  EXPECT_FALSE(fs::exists(dir + "/stem.g000007.ckpt.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/stem.ckpt.tmp"));
  EXPECT_FALSE(fs::exists(dir + "/stem.manifest.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/task-doc.json.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/notes.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/README"));
  EXPECT_TRUE(repo.LoadCheckpoint("task-a").ok());
}

// Sweep retention must also key on parsed generation numbers when file
// pads disagree (e.g. a writer with a wider pad produced the same stem).
TEST(CheckpointGenerationTest, SweepCollectsDifferentlyPaddedGenerations) {
  const std::string dir = TempDir("sweep-pad");
  CheckpointRetention keep1;
  keep1.keep_generations = 1;
  DataRepository repo(dir, keep1);
  Json payload = Json::Object();
  payload.Set("id", Json::Str("task-a"));
  ASSERT_TRUE(repo.SaveCheckpoint("task-a", payload).ok());

  // A 9-digit-pad clone of generation 1 parses as generation 2: newest.
  auto files = CheckpointFilesSorted(dir);
  ASSERT_EQ(files.size(), 1u);
  std::string wide = files[0];
  size_t pos = wide.rfind("g000001");
  ASSERT_NE(pos, std::string::npos);
  wide.replace(pos, 7, "g000000002");
  WriteFile(wide, ReadFile(files[0]));

  // Retention keeps only generation 2 — deleting generation 1 by its real
  // path. (Reconstructing "g%06lld" names would work here, but the widely
  // padded file itself could never be collected that way once stale.)
  EXPECT_EQ(repo.SweepOrphanCheckpoints(), 1);
  EXPECT_FALSE(fs::exists(files[0]));
  EXPECT_TRUE(fs::exists(wide));
  EXPECT_EQ(repo.LatestCheckpointGeneration("task-a"), 2);
}

// A torn newest generation is not fatal to the service: restore falls back
// to the previous generation's snapshot and replays from there.
TEST(CheckpointGenerationTest, ServiceRestoresFromPreviousGeneration) {
  Fixture f;
  const std::string dir = TempDir("gen-fallback");
  {
    TuningService service(&f.space, f.ServiceOpts(dir));
    auto inner = f.MakeInner(3);
    ASSERT_TRUE(service.RegisterTask("wc", inner.get()).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
    }
    ASSERT_TRUE(service.CheckpointTask("wc").ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
    }
    ASSERT_TRUE(service.CheckpointTask("wc").ok());
  }
  auto files = CheckpointFilesSorted(dir);
  ASSERT_EQ(files.size(), 2u);
  const std::string newest = ReadFile(files.back());
  WriteFile(files.back(), newest.substr(0, newest.size() / 2));

  TuningService revived(&f.space, f.ServiceOpts(dir));
  auto inner = f.MakeInner(3);
  ASSERT_TRUE(revived.RegisterTask("wc", inner.get()).ok());
  auto report = revived.RestoreTasks();
  EXPECT_EQ(report.restored, 1);
  EXPECT_EQ(report.fresh_starts, 0);
  // The revived task resumed at the older snapshot: 5 periods, not 8.
  EXPECT_EQ(revived.tuner("wc")->executions(), 5);
}

// A manifest whose listed generations were all deleted yields a fresh
// start, not a crash (and not a torn-state resume).
TEST(CheckpointGenerationTest, ManifestOverDeletedGenerationsIsFreshStart) {
  Fixture f;
  const std::string dir = TempDir("gen-deleted");
  {
    TuningService service(&f.space, f.ServiceOpts(dir));
    auto inner = f.MakeInner(3);
    ASSERT_TRUE(service.RegisterTask("wc", inner.get()).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
    }
    ASSERT_TRUE(service.CheckpointTask("wc").ok());
  }
  for (const std::string& file : CheckpointFilesSorted(dir)) {
    fs::remove(file);
  }

  TuningService revived(&f.space, f.ServiceOpts(dir));
  auto inner = f.MakeInner(3);
  ASSERT_TRUE(revived.RegisterTask("wc", inner.get()).ok());
  auto report = revived.RestoreTasks();
  EXPECT_EQ(report.restored, 0);
  EXPECT_EQ(report.fresh_starts, 1);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].code(), Status::Code::kNotFound);
  auto obs = revived.ExecutePeriodic("wc");
  ASSERT_TRUE(obs.ok());
  EXPECT_EQ(revived.tuner("wc")->executions(), 1);
}

// Restore-after-diet: the flat MetaSampleWindow replaced the old
// vector-of-vectors ring, and past window capacity (8) the ring has
// wrapped (oldest slot mid-buffer). Checkpointing through ToRows must
// emit the rows oldest-first in the legacy schema, restore must rebuild
// the wrapped window, and an immediate re-checkpoint must reproduce the
// identical rows — then the revived trajectory continues bit-for-bit.
TEST(CheckpointRecoveryTest, RestoreAfterMetaWindowWraparound) {
  Fixture f;
  const std::string dir = TempDir("diet-wrap");
  TuningService service(&f.space, f.ServiceOpts(dir));
  auto inner = f.MakeInner(3);
  ASSERT_TRUE(service.RegisterTask("wc", inner.get()).ok());
  // 12 sane periods push 12 meta samples through the 8-slot window.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  }
  ASSERT_TRUE(service.CheckpointTask("wc").ok());

  DataRepository repo(dir);
  auto doc = repo.LoadCheckpoint("wc");
  ASSERT_TRUE(doc.ok());
  auto ckpt = TaskCheckpointFromJson(*doc, f.space);
  ASSERT_TRUE(ckpt.ok());
  ASSERT_EQ(ckpt->meta_samples.size(), 8u);  // full window, wrapped

  // Revive from a copy of the repository (a handed-off shard directory).
  const std::string dir2 = TempDir("diet-wrap-revived");
  fs::copy(dir, dir2, fs::copy_options::recursive);
  TuningService revived(&f.space, f.ServiceOpts(dir2));
  auto inner2 = f.MakeInner(3);
  ASSERT_TRUE(revived.RegisterTask("wc", inner2.get()).ok());
  ASSERT_TRUE(revived.RestoreTask("wc").ok());

  // FromRows ∘ ToRows is the identity on the wrapped window.
  ASSERT_TRUE(revived.CheckpointTask("wc").ok());
  DataRepository repo2(dir2);
  auto doc2 = repo2.LoadCheckpoint("wc");
  ASSERT_TRUE(doc2.ok());
  auto ckpt2 = TaskCheckpointFromJson(*doc2, f.space);
  ASSERT_TRUE(ckpt2.ok());
  EXPECT_EQ(ckpt2->meta_samples, ckpt->meta_samples);

  // And the revived task's trajectory matches the undisturbed service.
  for (int i = 0; i < 5; ++i) {
    auto want = service.ExecutePeriodic("wc");
    auto got = revived.ExecutePeriodic("wc");
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(want->config == got->config) << "period " << i;
    EXPECT_EQ(want->objective, got->objective);
    EXPECT_EQ(want->runtime_sec, got->runtime_sec);
  }
}

// Restore after a handoff re-attaches the meta-surrogate against the same
// knowledge base: with harvested tasks reloaded from the repository, the
// revived trajectory stays bit-identical to the undisturbed one.
TEST(CheckpointRecoveryTest, RestoreReattachesMetaSurrogates) {
  Fixture f;
  constexpr int kWarmup = 8;    // per task, before harvest
  constexpr int kAttached = 6;  // per task, with meta attached
  constexpr int kCompare = 10;  // per task, compared after the kill point

  auto drive = [](TuningService* service, const std::string& id, int n) {
    std::vector<Result<Observation>> out;
    for (int i = 0; i < n; ++i) out.push_back(service->ExecutePeriodic(id));
    return out;
  };

  // Reference: never killed. Harvesting both tasks fills the knowledge
  // base, after which the meta-surrogate attaches to both tuners.
  std::vector<Result<Observation>> want;
  {
    TuningService service(&f.space, f.ServiceOpts(TempDir("meta-ref")));
    auto wc = f.MakeInner(7);
    auto sort = f.MakeInner(8);
    ASSERT_TRUE(service.RegisterTask("wc", wc.get()).ok());
    ASSERT_TRUE(service.RegisterTask("sort", sort.get()).ok());
    drive(&service, "wc", kWarmup);
    drive(&service, "sort", kWarmup);
    ASSERT_TRUE(service.HarvestTask("wc").ok());
    ASSERT_TRUE(service.HarvestTask("sort").ok());
    drive(&service, "wc", kAttached);
    drive(&service, "sort", kAttached);
    want = drive(&service, "wc", kCompare);
  }

  const std::string dir = TempDir("meta-killed");
  {
    TuningService service(&f.space, f.ServiceOpts(dir));
    auto wc = f.MakeInner(7);
    auto sort = f.MakeInner(8);
    ASSERT_TRUE(service.RegisterTask("wc", wc.get()).ok());
    ASSERT_TRUE(service.RegisterTask("sort", sort.get()).ok());
    drive(&service, "wc", kWarmup);
    drive(&service, "sort", kWarmup);
    ASSERT_TRUE(service.HarvestTask("wc").ok());
    ASSERT_TRUE(service.HarvestTask("sort").ok());
    drive(&service, "wc", kAttached);
    drive(&service, "sort", kAttached);
    ASSERT_TRUE(service.CheckpointTasks().ok());
  }  // killed

  TuningService revived(&f.space, f.ServiceOpts(dir));
  auto wc = f.MakeInner(7);
  auto sort = f.MakeInner(8);
  ASSERT_TRUE(revived.RegisterTask("wc", wc.get()).ok());
  ASSERT_TRUE(revived.RegisterTask("sort", sort.get()).ok());
  // LoadRepository first, so RestoreTasks rebuilds the surrogate factory
  // over the same harvested records the original service held in memory.
  ASSERT_TRUE(revived.LoadRepository().ok());
  EXPECT_EQ(revived.knowledge_base().size(), 2u);
  auto report = revived.RestoreTasks();
  ASSERT_TRUE(report.errors.empty()) << report.errors[0].message();
  EXPECT_EQ(report.restored, 2);

  // The restored checkpoint says meta was attached at the kill point.
  DataRepository repo(dir);
  auto ckpt = repo.LoadCheckpoint("wc");
  ASSERT_TRUE(ckpt.ok());
  EXPECT_TRUE(ckpt->GetBoolOr("meta_attached", false));

  auto got = drive(&revived, "wc", kCompare);
  for (int i = 0; i < kCompare; ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok()) << "period " << i;
    if (!got[i].ok()) continue;
    EXPECT_TRUE(got[i]->config == want[i]->config) << "period " << i;
    EXPECT_EQ(got[i]->objective, want[i]->objective) << "period " << i;
    EXPECT_EQ(got[i]->failure, want[i]->failure) << "period " << i;
  }
}

}  // namespace
}  // namespace sparktune
