// Unit tests for common/: Status, Result, strings, table printer.
#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"

namespace sparktune {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("beta out of range");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: beta out of range");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NotFound: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OutOfRange: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "Internal: x");
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin(parts, "|"), "a|b||c");
  EXPECT_TRUE(StrSplit("", ',').empty());
}

TEST(StringsTest, SplitTrailingDelimiter) {
  auto parts = StrSplit("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(StrTrim("  x y \n"), "x y");
  EXPECT_EQ(StrTrim("\t\t"), "");
  EXPECT_EQ(StrTrim("abc"), "abc");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("spark.executor.cores", "spark."));
  EXPECT_FALSE(StartsWith("spark", "spark."));
}

TEST(StringsTest, PrettyDouble) {
  EXPECT_EQ(PrettyDouble(3.0), "3");
  EXPECT_EQ(PrettyDouble(12.50, 2), "12.5");
  EXPECT_EQ(PrettyDouble(0.12345, 3), "0.123");
}

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvQuotesCommas) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x,y", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n\"x,y\",2\n");
}

}  // namespace
}  // namespace sparktune
