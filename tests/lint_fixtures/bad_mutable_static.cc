// Fixture: unannotated mutable global / static / thread_local state.
// Expected: mutable-static on the three declaration lines.
#include <string>

namespace sparktune {

int g_call_count = 0;

thread_local std::string tls_scratch;

int NextId() {
  static int counter = 0;
  return ++counter;
}

}  // namespace sparktune
