// Fixture: C PRNG calls. Expected: no-rand on lines 6 and 7.
#include <cstdlib>

int Sample() {
  int x = 0;
  srand(42);
  x = std::rand() % 7;
  return x;
}
