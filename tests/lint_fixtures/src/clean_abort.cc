// Fixture: value assertions and justified terminations stay clean even in
// src/-scoped code.
#include <cassert>
#include <cstdlib>

int Safe(int rc) {
  assert(rc >= 0);
  if (rc > 9) {
    // lint:allow(no-abort) fatal-config path; termination is the contract
    std::exit(rc);
  }
  return rc;
}
