// Fixture: process-terminating calls inside library (src/-scoped) code.
#include <cassert>
#include <cstdlib>

void Doomed(int rc) {
  if (rc != 0) std::abort();
  if (rc < 0) exit(rc);
  assert(false);
}
