// Fixture: the sanctioned parallel-RNG pattern — fork one child stream
// per task before the loop, index by task id. Expected: no findings.
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

std::vector<double> Draw(sparktune::Rng* rng, size_t n) {
  std::vector<double> out(n);
  std::vector<sparktune::Rng> rngs = sparktune::ForkRngs(rng, n);
  sparktune::ParallelFor(4, n, [&](size_t i) {
    sparktune::Rng* local = &rngs[i];
    out[i] = local->Uniform();
  });
  return out;
}
