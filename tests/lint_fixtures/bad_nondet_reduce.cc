// Fixture: reassociating reductions. Expected: no-nondet-reduce on
// lines 8 and 9.
#include <execution>
#include <numeric>
#include <vector>

double Sum(const std::vector<double>& v) {
  double a = std::reduce(v.begin(), v.end(), 0.0);
  return a + std::reduce(std::execution::par, v.begin(), v.end(), 0.0);
}
