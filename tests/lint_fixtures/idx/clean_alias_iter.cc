// Cross-TU clean fixture for alias indexing: point lookups into
// alias-typed unordered members never observe hash order; iterating the
// *ordered* alias (Rows -> std::vector) is always fine even with
// alias_types.h indexed; an order-independent reduction over an
// alias-typed unordered member carries a use-site reasoned allow.
#include <string>

#include "alias_types.h"

double AliasLookup(const lintfix::AliasedRegistry& r,
                   const std::string& key) {
  auto it = r.scores_.find(key);
  return it == r.scores_.end() ? 0.0 : it->second;
}

int RowTotal(const lintfix::AliasedRegistry& r) {
  int total = 0;
  for (int row : r.rows_) {
    total += row;
  }
  return total;
}

int CountPositive(const lintfix::AliasedRegistry& r) {
  int n = 0;
  // lint:allow(unordered-member-iter) integer count, order-independent
  for (const auto& [key, value] : r.cache_) {
    if (value > 0.0) ++n;
  }
  return n;
}
