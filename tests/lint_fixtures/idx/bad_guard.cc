// Cross-TU bad fixture for guard-discipline: hits_ is declared
// lint:guarded-by(mu_) in idx/registry.h; these accesses happen where
// mu_ is not visibly held.
// Expected (indexed with registry.h):
//   line 13: guard-discipline   (no lock at all)
//   line 20: guard-discipline   (early unlock released the guard)
//   line 28: guard-discipline   (guard deferred and never locked)
#include <mutex>

#include "registry.h"

void Unlocked(lintfix::Registry* r) {
  r->hits_ += 1;
}

void EarlyUnlock(lintfix::Registry* r) {
  std::unique_lock<std::mutex> lk(r->mu_);
  r->hits_ += 1;  // held: fine
  lk.unlock();
  r->hits_ += 1;  // released above: finding
}

void DeferredNeverLocked(lintfix::Registry* r) {
  std::unique_lock<std::mutex> lk(r->mu_, std::defer_lock);
  if (r == nullptr) {
    return;
  }
  r->hits_ += 1;
}
