// Cross-TU bad fixture: iterates members whose unordered-ness is hidden
// behind type aliases declared in idx/alias_types.h. Per-file linting sees
// nothing; with the alias-aware index every walk is a finding.
// Expected (indexed with alias_types.h):
//   line 15: unordered-member-iter   (range-for over scores_, direct alias)
//   line 23: unordered-member-iter   (range-for over cache_, alias of alias)
//   line 30: unordered-member-iter   (iterator walk over ids_, typedef)
#include <string>
#include <vector>

#include "alias_types.h"

std::vector<std::string> AliasKeys(const lintfix::AliasedRegistry& r) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : r.scores_) {
    keys.push_back(key);
  }
  return keys;
}

double CacheSum(const lintfix::AliasedRegistry& r) {
  double sum = 0.0;
  for (const auto& [key, value] : r.cache_) {
    sum += value;
  }
  return sum;
}

int FirstId(const lintfix::AliasedRegistry& r) {
  auto it = r.ids_.begin();
  return it == r.ids_.end() ? -1 : it->second;
}
