// Cross-TU fixture header: an Rng&-taking helper prototype. The indexer
// records the signature, which is what lets rng-ref-escape catch a
// ParallelFor body handing its outer (shared) Rng to this callee even
// though the call site alone looks like any other function call.
#pragma once

namespace lintfix {

class Rng;

double SampleCost(Rng& rng, double scale);

}  // namespace lintfix
