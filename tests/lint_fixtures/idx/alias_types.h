// Cross-TU alias fixture header: every member below is declared through a
// type alias, never a literal std::unordered_* / std::mutex spelling — the
// laundering the SymbolIndex alias pre-pass exists to see through. Linted
// as a pair with idx/bad_alias_iter.cc (findings) and
// idx/clean_alias_iter.cc (clean) via LintFilesIndexed.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lintfix {

// Direct alias, `using` spelling.
using ScoreMap = std::unordered_map<std::string, double>;
// Transitive: an alias of an alias must classify identically.
using CacheMap = ScoreMap;
// The typedef spelling.
typedef std::unordered_map<int, int> IdMap;
// A mutex behind an alias participates in guard discipline.
using Guard = std::mutex;
// Ordered alias: members of this type must NOT classify as unordered.
using Rows = std::vector<int>;

struct AliasedRegistry {
  double Total() const;

  ScoreMap scores_;   // unordered via direct alias
  CacheMap cache_;    // unordered via transitive alias
  IdMap ids_;         // unordered via typedef
  Rows rows_;         // ordered; iteration is always fine

  Guard alias_mu_;
  int alias_hits_ = 0;  // lint:guarded-by(alias_mu_)
};

}  // namespace lintfix
