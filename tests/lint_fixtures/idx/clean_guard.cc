// Cross-TU clean fixture for guard-discipline: every access to hits_
// (declared lint:guarded-by(mu_) in idx/registry.h) happens while mu_ is
// visibly held — via RAII guards, a deferred guard locked before use,
// manual lock()/unlock() bounded by the block, and a use-site allow for
// the one sanctioned unguarded read.
#include <mutex>

#include "registry.h"

void LockGuardHeld(lintfix::Registry* r) {
  std::lock_guard<std::mutex> lk(r->mu_);
  r->hits_ += 1;
}

void DeferredThenLocked(lintfix::Registry* r) {
  std::unique_lock<std::mutex> lk(r->mu_, std::defer_lock);
  lk.lock();
  r->hits_ += 1;
}

void ManualLockUnlock(lintfix::Registry* r) {
  r->mu_.lock();
  r->hits_ += 1;
  r->mu_.unlock();
}

int ReadDuringSingleThreadedSetup(lintfix::Registry* r) {
  // lint:allow(guard-discipline) called before any worker exists
  return r->hits_;
}
