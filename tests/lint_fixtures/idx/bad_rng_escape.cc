// Cross-TU bad fixture for rng-ref-escape: SampleCost's signature lives
// in idx/rng_helpers.h (takes Rng&). Handing the shared outer Rng to it
// inside a ParallelFor body, or capturing the Rng by reference in a
// stored lambda, lets the reference escape the serial scope.
// Expected (indexed with rng_helpers.h):
//   line 15: rng-ref-escape     (un-forked rng passed to Rng& callee)
//   line 15: rng-fork-required  (outer rng named inside the body at all)
//   line 17: rng-ref-escape     (stored lambda captures [&rng])
#include <vector>

#include "rng_helpers.h"

double Fan(lintfix::Rng& rng, std::vector<double>* out) {
  ParallelFor(0, out->size(), [&](size_t i) {
    (*out)[i] = lintfix::SampleCost(rng, 2.0);
  });
  auto later = [&rng]() { return lintfix::SampleCost(rng, 1.0); };
  return later();
}
