// Cross-TU clean fixture for rng-ref-escape: the sanctioned patterns.
// The ParallelFor body only ever touches its own forked stream (rngs[i]),
// so handing that to the Rng&-taking helper is fine — each task owns its
// stream. The stored lambda captures a forked child by value.
#include <vector>

#include "rng_helpers.h"

double FanClean(lintfix::Rng& rng, std::vector<double>* out) {
  std::vector<lintfix::Rng> rngs = ForkRngs(rng, out->size());
  ParallelFor(0, out->size(), [&](size_t i) {
    (*out)[i] = lintfix::SampleCost(rngs[i], 2.0);
  });
  lintfix::Rng child = rng.Fork();
  auto later = [child]() mutable { return lintfix::SampleCost(child, 1.0); };
  return later();
}
