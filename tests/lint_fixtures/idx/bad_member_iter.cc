// Cross-TU bad fixture: iterates an unordered member declared in
// idx/registry.h. Per-file linting sees nothing (the member's type lives
// in the other file); with the index, both walks are findings.
// Expected (indexed with registry.h):
//   line 14: unordered-member-iter   (range-for over scores_)
//   line 21: unordered-member-iter   (iterator walk over scores_)
#include <string>
#include <vector>

#include "registry.h"

std::vector<std::string> Keys(const lintfix::Registry& r) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : r.scores_) {
    keys.push_back(key);
  }
  return keys;
}

double First(const lintfix::Registry& r) {
  auto it = r.scores_.begin();
  return it->second;
}
