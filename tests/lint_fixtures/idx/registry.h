// Cross-TU fixture header: the idx/*.cc fixtures in this directory misuse
// (or correctly use) members declared *here*, in a different file — the
// case the per-file pass cannot see and the phase-1 symbol index exists
// for. Linted as a pair: {this header, one .cc} via LintFilesIndexed.
#pragma once

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace lintfix {

struct Registry {
  double Total() const;

  // Unannotated unordered member: any iteration anywhere is a finding.
  std::unordered_map<std::string, double> scores_;

  // Declaration-site allow: blessed for every use (membership counting is
  // order-independent), so iterating it in a .cc stays clean.
  // lint:allow(unordered-member-iter) counted only, order-independent
  std::unordered_set<std::string> tags_;

  std::mutex mu_;
  int hits_ = 0;  // lint:guarded-by(mu_)
};

}  // namespace lintfix
