// Cross-TU clean fixture: every access pattern here is fine under
// unordered-member-iter even with registry.h in the index —
//   * point lookups and size() never observe hash order;
//   * an order-independent reduction carries a use-site reasoned allow;
//   * tags_ is blessed at its declaration (decl-site allow), so iterating
//     it needs no annotation here.
#include <string>

#include "registry.h"

double Lookup(const lintfix::Registry& r, const std::string& key) {
  auto it = r.scores_.find(key);
  return it == r.scores_.end() ? 0.0 : it->second;
}

int Size(const lintfix::Registry& r) {
  return static_cast<int>(r.scores_.size());
}

int CountTagged(const lintfix::Registry& r) {
  int n = 0;
  // lint:allow(unordered-member-iter) integer count, order-independent
  for (const auto& [key, value] : r.scores_) {
    if (value > 0.0) ++n;
  }
  for (const auto& tag : r.tags_) {
    n += static_cast<int>(!tag.empty());
  }
  return n;
}
