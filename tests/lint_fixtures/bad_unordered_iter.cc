// Fixture: hash-order iteration feeding an output container and an
// accumulator. Expected: no-unordered-iter on lines 10 and 18.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> Keys(
    const std::unordered_map<std::string, double>& scores) {
  std::vector<std::string> out;
  for (const auto& kv : scores) {
    out.push_back(kv.first);
  }
  return out;
}

double Total(const std::unordered_map<std::string, double>& scores) {
  double sum = 0.0;
  for (const auto& kv : scores) sum += kv.second;
  return sum;
}
