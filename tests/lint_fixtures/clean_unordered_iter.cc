// Fixture: unordered containers used safely — point lookups, membership
// tests, and a read-only scan that only computes an order-independent
// max. Ordered std::map iteration feeding output is fine too.
// Expected: no findings.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

bool Has(const std::unordered_set<std::string>& seen, const std::string& k) {
  return seen.count(k) > 0;
}

double Best(const std::unordered_map<std::string, double>& scores) {
  double best = 0.0;
  for (const auto& kv : scores) {
    if (kv.second > best) best = kv.second;
  }
  return best;
}

std::vector<std::string> OrderedKeys(
    const std::map<std::string, double>& ranked) {
  std::vector<std::string> out;
  for (const auto& kv : ranked) {
    out.push_back(kv.first);
  }
  return out;
}
