// Fixture: float accumulation in a linalg-scoped path. Expected:
// no-float-accum on lines 7 and 9 (one per `float` token line).
#include <cstddef>
#include <vector>

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<float>(a[i] * b[i]);
  }
  return acc;
}
