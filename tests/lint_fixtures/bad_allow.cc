// Fixture: malformed suppressions. Expected: bad-allow twice — a
// reason-less allow (which therefore does NOT suppress the no-rand
// underneath it) and an allow naming an unknown rule.
#include <cstdlib>

int Sample() {
  // lint:allow(no-rand)
  int x = std::rand();
  // lint:allow(not-a-rule) this rule id does not exist
  return x;
}
