// Fixture: non-RNG shared state written inside ParallelFor bodies with no
// guard annotation — a compound-assigned accumulator, a container mutator,
// a fixed-slot assignment and a shared counter increment. Expected:
// parallel-shared-write on lines 13, 14, 15, 22.
#include <vector>

#include "common/thread_pool.h"

double Sum(const std::vector<double>& xs) {
  double total = 0.0;
  std::vector<double> log;
  sparktune::ParallelFor(4, xs.size(), [&](size_t i) {
    total += xs[i];
    log.push_back(xs[i]);
    log[0] = xs[i];
  });
  return total;
}

long Count(size_t n) {
  long hits = 0;
  sparktune::ParallelFor(4, n, [&](size_t) { ++hits; });
  return hits;
}
