// Fixture: same terminating calls as src/bad_abort.cc, but this path is
// outside src/ so the no-abort rule must stay silent.
#include <cassert>
#include <cstdlib>

void Doomed(int rc) {
  if (rc != 0) std::abort();
  if (rc < 0) exit(rc);
  assert(false);
}
