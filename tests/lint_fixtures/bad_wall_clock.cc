// Fixture: host clock reads. Expected: no-wall-clock on lines 7, 8, 9.
#include <chrono>
#include <ctime>

double Stamp() {
  double out = 0.0;
  out += static_cast<double>(time(nullptr));
  auto t = std::chrono::system_clock::now();
  auto s = std::chrono::steady_clock::now();
  out += std::chrono::duration<double>(t.time_since_epoch()).count();
  out += std::chrono::duration<double>(s.time_since_epoch()).count();
  return out;
}
