// Fixture: the sanctioned ParallelFor write patterns — task-id-owned
// slots, body-local accumulators (including later declarators of one
// statement), and explicitly guarded or justified shared writes.
// Expected: no findings.
#include <mutex>
#include <vector>

#include "common/thread_pool.h"

std::vector<double> Square(const std::vector<double>& xs, std::mutex* mu,
                           double* shared_total) {
  std::vector<double> out(xs.size());
  sparktune::ParallelFor(4, xs.size(), [&](size_t i) {
    // Index-owned slot: only task i ever touches out[i].
    out[i] = xs[i] * xs[i];
    // Body-local state, including the second declarator.
    double acc = 0.0, acc2 = 0.0;
    acc += out[i];
    acc2 += acc;
    double* slot = &out[i];
    *slot = acc2;
    // Guarded shared accumulation (order-insensitive by construction).
    std::lock_guard<std::mutex> lock(*mu);
    // lint:guarded-by(mu)
    *shared_total += acc;
  });
  return out;
}
