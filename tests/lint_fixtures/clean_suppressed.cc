// Fixture: real violations, each carrying a reasoned suppression on the
// same line or the line above. Expected: no findings.
#include <chrono>
#include <cstdlib>

double BenchStamp() {
  // lint:allow(no-wall-clock) benchmark wall-time only, never feeds results
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int LegacySeed() {
  return std::rand();  // lint:allow(no-rand) exercising same-line suppression
}
