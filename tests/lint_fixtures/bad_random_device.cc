// Fixture: entropy source. Expected: no-random-device on line 5.
#include <random>

unsigned Seed() {
  std::random_device rd;
  return rd();
}
