// Fixture: explicit by-reference Rng capture in a ParallelFor lambda.
// Expected: no-rng-ref-capture (and rng-fork-required for the body use).
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

std::vector<double> Draw(sparktune::Rng& rng, size_t n) {
  std::vector<double> out(n);
  sparktune::ParallelFor(4, n, [&rng, &out](size_t i) {
    out[i] = rng.Uniform();
  });
  return out;
}
