// Fixture: raw threading primitives. Expected: no-raw-thread on
// lines 9 and 11.
#include <future>
#include <thread>

int Compute();

void Launch() {
  std::thread t(Compute);
  t.join();
  auto f = std::async(std::launch::async, Compute);
  f.get();
}
