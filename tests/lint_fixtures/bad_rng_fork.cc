// Fixture: a shared Rng used inside a ParallelFor body (draw order then
// depends on the schedule). Expected: rng-fork-required on lines 12, 13.
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

std::vector<double> Draw(sparktune::Rng* rng, size_t n) {
  std::vector<double> out(n);
  sparktune::ParallelFor(4, n, [&](size_t i) {
    // Both a method call and a forked child off the shared stream race.
    out[i] = rng->Uniform();
    sparktune::Rng child = rng->Fork();
    out[i] += child.Normal();
  });
  return out;
}
