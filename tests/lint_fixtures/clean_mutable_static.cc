// Fixture: global state done right — const, guarded, or justified.
// Expected: no findings.
#include <mutex>
#include <string>

namespace sparktune {

const int kMaxRetries = 3;
constexpr double kTolerance = 1e-9;

std::mutex g_registry_mu;  // lint:allow(mutable-static) the mutex IS the guard

// lint:guarded-by(g_registry_mu)
std::string g_registry_name;

int Lookup() {
  static const int kTableSize = 64;
  return kTableSize;
}

}  // namespace sparktune
