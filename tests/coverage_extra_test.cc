// Additional coverage: option edge cases and less-traveled paths across
// the service, tuner, sub-space manager and Spark-conf decoding.
#include <gtest/gtest.h>

#include <cmath>

#include "bo/subspace_manager.h"
#include "service/tuning_service.h"
#include "sparksim/hibench.h"
#include "tuner/online_tuner.h"

namespace sparktune {
namespace {

TEST(SparkConfDecodeTest, RoundTripsEveryParameter) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    Configuration c = space.Sample(&rng);
    SparkConf conf = DecodeSparkConf(space, c);
    // Every decoded field mirrors the configuration coordinates.
    EXPECT_EQ(conf.executor_instances,
              static_cast<int>(space.Get(c, spark_param::kExecutorInstances)));
    EXPECT_DOUBLE_EQ(conf.memory_fraction,
                     space.Get(c, spark_param::kMemoryFraction));
    EXPECT_EQ(conf.shuffle_compress,
              space.Get(c, spark_param::kShuffleCompress) >= 0.5);
    EXPECT_EQ(static_cast<int>(conf.io_codec),
              static_cast<int>(space.Get(c, spark_param::kIoCompressionCodec)));
    EXPECT_DOUBLE_EQ(conf.network_timeout_sec,
                     space.Get(c, spark_param::kNetworkTimeout));
    // Resource function is strictly positive and finite.
    double r = ResourceFunction(conf);
    EXPECT_GT(r, 0.0);
    EXPECT_TRUE(std::isfinite(r));
  }
}

TEST(SubspaceManagerEdgeTest, KInitClampedIntoBounds) {
  ConfigSpace space;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        space.Add(Parameter::Float("p" + std::to_string(i), 0, 1, 0.5)).ok());
  }
  SubspaceOptions opts;
  opts.k_init = 50;   // beyond the space size
  opts.k_min = 2;
  SubspaceManager mgr(&space, opts, {});
  EXPECT_EQ(mgr.K(), 6);
  SubspaceOptions low;
  low.k_init = 1;
  low.k_min = 3;
  SubspaceManager mgr2(&space, low, {});
  EXPECT_EQ(mgr2.K(), 3);
}

TEST(SubspaceManagerEdgeTest, CustomKStep) {
  ConfigSpace space;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        space.Add(Parameter::Float("p" + std::to_string(i), 0, 1, 0.5)).ok());
  }
  SubspaceOptions opts;
  opts.k_step = 4;
  SubspaceManager mgr(&space, opts, {});
  for (int i = 0; i < 3; ++i) mgr.ReportOutcome(true);
  EXPECT_EQ(mgr.K(), 14);  // 10 + 4
}

TEST(EvaluatorTest, PeriodHoursDrivesTheClock) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto w = HiBenchTask("WordCount");
  SimulatorEvaluatorOptions opts;
  opts.period_hours = 24.0;  // daily job
  SimulatorEvaluator eval(&space, *w, cluster, DriftModel::None(), opts);
  EXPECT_DOUBLE_EQ(eval.NextHours(), 0.0);
  auto o1 = eval.Run(space.Default());
  EXPECT_DOUBLE_EQ(o1.hours, 0.0);
  EXPECT_DOUBLE_EQ(eval.NextHours(), 24.0);
  auto o2 = eval.Run(space.Default());
  EXPECT_DOUBLE_EQ(o2.hours, 24.0);
}

TEST(TunerOptionsTest, ConstraintFactorsConfigurable) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto w = HiBenchTask("WordCount");
  SimulatorEvaluatorOptions eopts;
  eopts.seed = 9;
  SimulatorEvaluator eval(&space, *w, cluster, DriftModel::None(), eopts);
  TunerOptions opts;
  opts.constraint_runtime_factor = 3.0;
  opts.constraint_resource_factor = 1.5;
  OnlineTuner tuner(&space, &eval, opts);
  Observation baseline = tuner.Step();
  EXPECT_NEAR(tuner.objective().runtime_max, baseline.runtime_sec * 3.0,
              1e-9);
  EXPECT_NEAR(tuner.objective().resource_max, baseline.resource_rate * 1.5,
              1e-9);
}

TEST(TunerOptionsTest, MinIterationsGateEarlyStop) {
  // Flat landscape would stop immediately; the gate forces at least
  // `min_iterations_before_stop` tuning steps.
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0, 1, 0.5)).ok());
  class FlatEvaluator final : public JobEvaluator {
   public:
    Outcome Run(const Configuration&) override {
      Outcome o;
      o.runtime_sec = 100.0;
      o.resource_rate = 10.0;
      return o;
    }
    double ResourceRate(const Configuration&) const override { return 10.0; }
  };
  FlatEvaluator eval;
  TunerOptions opts;
  opts.budget = 30;
  opts.min_iterations_before_stop = 12;
  opts.advisor.enable_subspace = false;
  opts.advisor.enable_agd = false;
  OnlineTuner tuner(&space, &eval, opts);
  while (tuner.phase() != TunerPhase::kApplying) tuner.Step();
  EXPECT_GE(tuner.tuning_iterations(), 12);
}

TEST(ServiceOverrideTest, PerTaskOptionsRespected) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto w = HiBenchTask("WordCount");
  SimulatorEvaluatorOptions eopts;
  eopts.seed = 5;
  SimulatorEvaluator eval(&space, *w, cluster, DriftModel::None(), eopts);
  TuningServiceOptions sopts;
  sopts.tuner.budget = 20;
  TuningService service(&space, sopts);
  TunerOptions override = sopts.tuner;
  override.budget = 2;
  override.ei_stop_threshold = 0.0;
  ASSERT_TRUE(service.RegisterTask("short", &eval, std::nullopt, override)
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("short").ok());
  }
  // Budget 2 => after baseline + 2 tuning steps the task applies.
  EXPECT_EQ(service.tuner("short")->phase(), TunerPhase::kApplying);
  EXPECT_EQ(service.tuner("short")->tuning_iterations(), 2);
}

TEST(ServiceOverrideTest, NullEvaluatorRejected) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  TuningService service(&space, {});
  EXPECT_FALSE(service.RegisterTask("x", nullptr).ok());
}

}  // namespace
}  // namespace sparktune
