// Tests for EI, EIC, safe-region math and the acquisition optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "bo/acq_optimizer.h"
#include "bo/acquisition.h"
#include "model/gp.h"

namespace sparktune {
namespace {

TEST(EiTest, NonNegativeEverywhere) {
  for (double mean : {-2.0, 0.0, 3.0}) {
    for (double var : {0.0, 0.1, 4.0}) {
      for (double best : {-1.0, 0.0, 1.0}) {
        EXPECT_GE(ExpectedImprovement(mean, var, best), 0.0);
      }
    }
  }
}

TEST(EiTest, ZeroVarianceReducesToHingeLoss) {
  EXPECT_DOUBLE_EQ(ExpectedImprovement(5.0, 0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedImprovement(1.0, 0.0, 3.0), 2.0);
}

TEST(EiTest, GrowsWithVarianceAtIncumbentMean) {
  double lo = ExpectedImprovement(1.0, 0.01, 1.0);
  double hi = ExpectedImprovement(1.0, 1.0, 1.0);
  EXPECT_GT(hi, lo);
  // Known closed form: EI = sigma * phi(0).
  EXPECT_NEAR(hi, std::sqrt(1.0) * 0.3989422804, 1e-6);
}

TEST(EiTest, LowerMeanGivesHigherEi) {
  EXPECT_GT(ExpectedImprovement(0.5, 0.5, 1.0),
            ExpectedImprovement(0.9, 0.5, 1.0));
}

TEST(ProbabilityBelowTest, Basics) {
  EXPECT_NEAR(ProbabilityBelow(0.0, 1.0, 0.0), 0.5, 1e-12);
  EXPECT_GT(ProbabilityBelow(0.0, 1.0, 2.0), 0.97);
  EXPECT_LT(ProbabilityBelow(0.0, 1.0, -2.0), 0.03);
  // Degenerate variance: deterministic indicator.
  EXPECT_DOUBLE_EQ(ProbabilityBelow(1.0, 0.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityBelow(3.0, 0.0, 2.0), 0.0);
}

class FakeSurrogate final : public Surrogate {
 public:
  FakeSurrogate(std::function<Prediction(const std::vector<double>&)> fn)
      : fn_(std::move(fn)) {}
  Status Fit(const std::vector<std::vector<double>>&,
             const std::vector<double>&) override {
    return Status::OK();
  }
  Prediction Predict(const std::vector<double>& x) const override {
    return fn_(x);
  }
  size_t num_observations() const override { return 1; }

 private:
  std::function<Prediction(const std::vector<double>&)> fn_;
};

TEST(SafeRegionTest, UpperBoundUsesGamma) {
  FakeSurrogate surrogate([](const std::vector<double>&) {
    return Prediction{10.0, 4.0};  // sigma = 2
  });
  ProbabilisticConstraint c;
  c.surrogate = &surrogate;
  c.threshold = 11.5;
  // u = 10 + 0.5*2 = 11 <= 11.5: safe.
  EXPECT_TRUE(c.InSafeRegion({0.0}, 0.5));
  // u = 10 + 1.0*2 = 12 > 11.5: unsafe at gamma 1.
  EXPECT_FALSE(c.InSafeRegion({0.0}, 1.0));
  EXPECT_DOUBLE_EQ(c.UpperBound({0.0}, 1.0), 12.0);
}

TEST(EicTest, ConstraintProbabilityScalesEi) {
  FakeSurrogate objective([](const std::vector<double>&) {
    return Prediction{0.0, 1.0};
  });
  FakeSurrogate safe_constraint([](const std::vector<double>&) {
    return Prediction{-100.0, 1.0};  // essentially always satisfied
  });
  FakeSurrogate unsafe_constraint([](const std::vector<double>&) {
    return Prediction{100.0, 1.0};  // essentially never satisfied
  });

  EicAcquisition plain(&objective, 1.0);
  double base = plain.Eval({0.0});
  EXPECT_GT(base, 0.0);
  EXPECT_DOUBLE_EQ(base, plain.RawEi({0.0}));

  EicAcquisition with_safe(&objective, 1.0);
  with_safe.AddConstraint({&safe_constraint, 0.0});
  EXPECT_NEAR(with_safe.Eval({0.0}), base, 1e-6);

  EicAcquisition with_unsafe(&objective, 1.0);
  with_unsafe.AddConstraint({&unsafe_constraint, 0.0});
  EXPECT_LT(with_unsafe.Eval({0.0}), base * 1e-6);
}

TEST(EicTest, DeterministicConstraintZeroesOut) {
  FakeSurrogate objective([](const std::vector<double>&) {
    return Prediction{0.0, 1.0};
  });
  EicAcquisition acq(&objective, 1.0);
  acq.AddDeterministicConstraint(
      [](const std::vector<double>&) { return false; });
  EXPECT_DOUBLE_EQ(acq.Eval({0.0}), 0.0);
}

ConfigSpace TwoDSpace() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Float("a", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("b", 0.0, 1.0, 0.5)).ok());
  return s;
}

TEST(AcqOptimizerTest, FindsHighAcquisitionRegion) {
  ConfigSpace space = TwoDSpace();
  // Objective surrogate: mean lowest near (0.8, 0.2) => EI peaks there.
  FakeSurrogate objective([](const std::vector<double>& x) {
    double d = std::pow(x[0] - 0.8, 2) + std::pow(x[1] - 0.2, 2);
    return Prediction{d * 10.0, 0.01};
  });
  EicAcquisition acq(&objective, 5.0);
  Subspace full = Subspace::Full(&space);
  AcquisitionOptimizer opt;
  Rng rng(1);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  AcqOptResult res =
      opt.Maximize(full, encode, acq, nullptr, nullptr, nullptr, &rng);
  EXPECT_NEAR(res.config[0], 0.8, 0.15);
  EXPECT_NEAR(res.config[1], 0.2, 0.15);
  EXPECT_FALSE(res.safe_fallback_used);
  EXPECT_GT(res.acq_value, 0.0);
}

TEST(AcqOptimizerTest, RespectsSafeFilter) {
  ConfigSpace space = TwoDSpace();
  FakeSurrogate objective([](const std::vector<double>& x) {
    return Prediction{-x[0], 0.01};  // EI wants a = 1
  });
  EicAcquisition acq(&objective, 0.0);
  Subspace full = Subspace::Full(&space);
  AcquisitionOptimizer opt;
  Rng rng(2);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  // Safe region: a <= 0.5 only.
  auto safe = [](const Configuration& c) { return c[0] <= 0.5; };
  auto unsafety = [](const Configuration& c) { return c[0] - 0.5; };
  AcqOptResult res = opt.Maximize(full, encode, acq, safe, unsafety,
                                  nullptr, &rng);
  EXPECT_LE(res.config[0], 0.5);
}

TEST(AcqOptimizerTest, FallsBackToLeastUnsafeWhenNothingSafe) {
  ConfigSpace space = TwoDSpace();
  FakeSurrogate objective([](const std::vector<double>&) {
    return Prediction{0.0, 1.0};
  });
  EicAcquisition acq(&objective, 1.0);
  Subspace full = Subspace::Full(&space);
  AcquisitionOptimizer opt;
  Rng rng(3);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  auto safe = [](const Configuration&) { return false; };
  // Unsafety decreases with a: the fallback should pick large a.
  auto unsafety = [](const Configuration& c) { return 2.0 - c[0]; };
  AcqOptResult res = opt.Maximize(full, encode, acq, safe, unsafety,
                                  nullptr, &rng);
  EXPECT_TRUE(res.safe_fallback_used);
  EXPECT_GT(res.config[0], 0.8);
}

TEST(AcqOptimizerTest, SkipsAlreadyEvaluatedConfigs) {
  ConfigSpace space = TwoDSpace();
  FakeSurrogate objective([](const std::vector<double>&) {
    return Prediction{0.0, 1.0};
  });
  EicAcquisition acq(&objective, 1.0);
  Subspace full = Subspace::Full(&space);
  AcquisitionOptimizer opt;
  Rng probe_rng(4);
  // Pre-populate history with many configs; the chosen one must be new.
  RunHistory history;
  for (int i = 0; i < 20; ++i) {
    Observation o;
    o.config = full.Sample(&probe_rng);
    o.feasible = true;
    history.Add(o);
  }
  Rng rng(4);  // same seed as probe: candidates collide with history
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  AcqOptResult res =
      opt.Maximize(full, encode, acq, nullptr, nullptr, &history, &rng);
  EXPECT_FALSE(history.Contains(res.config));
}

TEST(AcqOptimizerTest, SmallPoolsStillGetIncumbentNeighbors) {
  // Regression: num_candidates < 8 used to truncate num_candidates / 8 to
  // zero incumbent neighbors, silently disabling local exploitation. Count
  // candidate evaluations via the unsafety callback: 4 scattered + 1
  // incumbent neighbor + 1 recent neighbor = 6 (the pre-fix code saw 5).
  ConfigSpace space = TwoDSpace();
  FakeSurrogate objective([](const std::vector<double>&) {
    return Prediction{0.0, 1.0};
  });
  EicAcquisition acq(&objective, 1.0);
  Subspace full = Subspace::Full(&space);
  AcqOptOptions opts;
  opts.num_candidates = 4;
  opts.num_local_starts = 0;  // no hill climbs: count candidates only
  AcquisitionOptimizer opt(opts);
  RunHistory history;
  Observation o;
  o.config = space.Default();
  o.feasible = true;
  history.Add(o);
  int unsafety_calls = 0;
  auto unsafety = [&](const Configuration&) {
    ++unsafety_calls;
    return -1.0;  // everything safe
  };
  auto safe = [](const Configuration&) { return true; };
  Rng rng(9);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  opt.Maximize(full, encode, acq, safe, unsafety, &history, &rng);
  EXPECT_EQ(unsafety_calls, 6);
}

TEST(AcqOptimizerTest, RejectedClimbStepsRetryWithAnnealedSigma) {
  // Regression: hill-climb draws rejected by the safe predicate used to
  // forfeit the whole step. Now each rejected draw is retried (up to
  // max_rejected_retries times) with annealed sigma, so the safe predicate
  // is consulted strictly more often than the no-retry floor of one call
  // per candidate plus one per climb step.
  ConfigSpace space = TwoDSpace();
  FakeSurrogate objective([](const std::vector<double>& x) {
    return Prediction{x[0], 1.0};  // EI prefers small a — deep inside safe
  });
  EicAcquisition acq(&objective, 1.0);
  Subspace full = Subspace::Full(&space);
  AcqOptOptions opts;
  opts.num_candidates = 64;
  opts.num_local_starts = 1;
  opts.local_steps = 20;
  opts.local_sigma = 0.5;  // wide draws: many land outside the safe region
  AcquisitionOptimizer opt(opts);
  int safe_calls = 0;
  auto safe = [&](const Configuration& c) {
    ++safe_calls;
    return c[0] <= 0.3;
  };
  Rng rng(17);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  AcqOptResult res =
      opt.Maximize(full, encode, acq, safe, nullptr, nullptr, &rng);
  // No-retry floor: 64 candidate checks + 20 climb-step checks = 84.
  EXPECT_GT(safe_calls, 64 + 20);
  EXPECT_LE(res.config[0], 0.3);
}

}  // namespace
}  // namespace sparktune
