// Parameterized property sweep over all 16 HiBench workload presets: the
// default configuration must execute successfully on every preset, the
// event log must be complete and internally consistent, meta-features must
// be finite, and core monotonicity properties must hold per task.
#include <gtest/gtest.h>

#include <cmath>

#include "meta/meta_features.h"
#include "sparksim/hibench.h"
#include "sparksim/runtime_model.h"

namespace sparktune {
namespace {

class HiBenchPropertyTest : public ::testing::TestWithParam<std::string> {
 protected:
  HiBenchPropertyTest()
      : cluster_(ClusterSpec::HiBenchCluster()),
        space_(BuildSparkSpace(cluster_)) {
    SimOptions opts;
    opts.noise_sigma = 0.0;
    sim_ = std::make_unique<SparkSimulator>(cluster_, opts);
    workload_ = *HiBenchTask(GetParam());
  }

  ExecutionResult RunDefault(double scale = 1.0, uint64_t seed = 1) {
    SparkConf conf = DecodeSparkConf(space_, space_.Default());
    return sim_->Execute(workload_, conf, workload_.input_gb * scale, seed);
  }

  ClusterSpec cluster_;
  ConfigSpace space_;
  std::unique_ptr<SparkSimulator> sim_;
  WorkloadSpec workload_;
};

TEST_P(HiBenchPropertyTest, DefaultConfigSucceeds) {
  ExecutionResult r = RunDefault();
  EXPECT_FALSE(r.failed) << SimFailureKindName(r.failure);
  EXPECT_GT(r.runtime_sec, 1.0);
  EXPECT_LT(r.runtime_sec, 1e6);
  EXPECT_GT(r.cpu_core_hours, 0.0);
  EXPECT_GT(r.memory_gb_hours, 0.0);
}

TEST_P(HiBenchPropertyTest, EventLogConsistent) {
  ExecutionResult r = RunDefault();
  ASSERT_FALSE(r.failed);
  ASSERT_EQ(r.event_log.stages.size(), workload_.stages.size());
  double stage_sum = 0.0;
  for (size_t i = 0; i < r.event_log.stages.size(); ++i) {
    const StageLog& log = r.event_log.stages[i];
    EXPECT_GT(log.num_tasks, 0) << log.name;
    EXPECT_GE(log.duration_sec, 0.0);
    EXPECT_GE(log.input_mb, 0.0);
    EXPECT_EQ(log.op, workload_.stages[i].op);
    EXPECT_EQ(log.iterations, workload_.stages[i].iterations);
    // Task duration stats are ordered.
    EXPECT_LE(log.task_duration_sec.min, log.task_duration_sec.p50 + 1e-9);
    EXPECT_LE(log.task_duration_sec.p50, log.task_duration_sec.p90 + 1e-9);
    EXPECT_LE(log.task_duration_sec.p90, log.task_duration_sec.max + 1e-9);
    stage_sum += log.duration_sec;
  }
  // The job cannot finish before its longest chain of stages.
  EXPECT_LE(r.runtime_sec, stage_sum + 60.0);
}

TEST_P(HiBenchPropertyTest, RuntimeMonotoneInDataSize) {
  double small = RunDefault(0.5).runtime_sec;
  double large = RunDefault(2.0).runtime_sec;
  EXPECT_GT(large, small);
}

TEST_P(HiBenchPropertyTest, MetaFeaturesFiniteAndStable) {
  ExecutionResult r = RunDefault();
  ASSERT_FALSE(r.failed);
  auto f1 = ExtractMetaFeatures(r.event_log);
  ASSERT_EQ(static_cast<int>(f1.size()), kNumMetaFeatures);
  for (double v : f1) EXPECT_TRUE(std::isfinite(v));
  // Deterministic runs give identical meta-features.
  ExecutionResult r2 = RunDefault();
  auto f2 = ExtractMetaFeatures(r2.event_log);
  for (size_t i = 0; i < f1.size(); ++i) EXPECT_DOUBLE_EQ(f1[i], f2[i]);
}

TEST_P(HiBenchPropertyTest, ResourceRateIndependentOfDataSize) {
  ExecutionResult a = RunDefault(0.5);
  ExecutionResult b = RunDefault(2.0);
  EXPECT_DOUBLE_EQ(a.resource_rate, b.resource_rate);
}

std::vector<std::string> AllTaskNames() {
  std::vector<std::string> names;
  for (const auto& w : AllHiBenchTasks()) names.push_back(w.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllTasks, HiBenchPropertyTest,
                         ::testing::ValuesIn(AllTaskNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace sparktune
