// PredictBatch must equal per-point Predict bit-for-bit for every surrogate
// implementation — fitted and unfitted (prior path) alike — at any thread
// count.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "forest/gbdt.h"
#include "forest/random_forest.h"
#include "meta/meta_surrogate.h"
#include "model/gp.h"

namespace sparktune {
namespace {

struct MixedData {
  std::vector<FeatureKind> schema;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

MixedData MakeMixedData(size_t n, uint64_t seed) {
  MixedData d;
  d.schema = {FeatureKind::kNumeric, FeatureKind::kNumeric,
              FeatureKind::kNumeric, FeatureKind::kCategorical,
              FeatureKind::kDataSize};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(5);
    for (int k = 0; k < 3; ++k) row[static_cast<size_t>(k)] = rng.Uniform();
    row[3] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    row[4] = rng.Uniform();
    double y = std::sin(3.0 * row[0]) + row[1] * row[1] - 0.5 * row[2] +
               0.3 * row[3] + 0.7 * row[4] + 0.05 * rng.Normal();
    d.x.push_back(std::move(row));
    d.y.push_back(y);
  }
  return d;
}

// Probe pool sized to cross both the triangular-solve column-block boundary
// (48) and the tree-batch chunk boundary (64).
std::vector<std::vector<double>> MakeProbes(size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> probes;
  probes.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row(5);
    for (int k = 0; k < 3; ++k) row[static_cast<size_t>(k)] = rng.Uniform();
    row[3] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    row[4] = rng.Uniform();
    probes.push_back(std::move(row));
  }
  return probes;
}

TEST(PredictBatchTest, GpMatchesPerPoint) {
  MixedData d = MakeMixedData(48, 7);
  std::vector<std::vector<double>> probes = MakeProbes(97, 11);
  for (int threads : {1, 4}) {
    GpOptions opts;
    opts.num_threads = threads;
    GaussianProcess gp(d.schema, opts);
    ASSERT_TRUE(gp.Fit(d.x, d.y).ok());
    std::vector<Prediction> batch = gp.PredictBatch(probes);
    ASSERT_EQ(batch.size(), probes.size());
    for (size_t j = 0; j < probes.size(); ++j) {
      Prediction p = gp.Predict(probes[j]);
      EXPECT_EQ(batch[j].mean, p.mean) << "threads=" << threads << " j=" << j;
      EXPECT_EQ(batch[j].variance, p.variance)
          << "threads=" << threads << " j=" << j;
    }
  }
}

TEST(PredictBatchTest, GpPriorPathMatchesPerPoint) {
  MixedData d = MakeMixedData(4, 3);
  GaussianProcess gp(d.schema);  // never fitted -> prior
  std::vector<std::vector<double>> probes = MakeProbes(9, 5);
  std::vector<Prediction> batch = gp.PredictBatch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t j = 0; j < probes.size(); ++j) {
    Prediction p = gp.Predict(probes[j]);
    EXPECT_EQ(batch[j].mean, p.mean);
    EXPECT_EQ(batch[j].variance, p.variance);
  }
}

std::vector<BaseSurrogate> MakeBases() {
  std::vector<BaseSurrogate> bases;
  // Base 1: full-width GP from another "task".
  {
    MixedData bd = MakeMixedData(30, 101);
    auto gp = std::make_shared<GaussianProcess>(bd.schema);
    EXPECT_TRUE(gp->Fit(bd.x, bd.y).ok());
    BaseSurrogate b;
    b.model = gp;
    b.similarity = 0.8;
    b.input_dims = 5;
    b.y_mean = 0.4;
    b.y_scale = 1.7;
    bases.push_back(std::move(b));
  }
  // Base 2: config-only GP over the first three features, exercising the
  // input-truncation path.
  {
    MixedData bd = MakeMixedData(24, 202);
    std::vector<FeatureKind> schema3 = {FeatureKind::kNumeric,
                                        FeatureKind::kNumeric,
                                        FeatureKind::kNumeric};
    std::vector<std::vector<double>> x3;
    for (const auto& row : bd.x) {
      x3.push_back({row[0], row[1], row[2]});
    }
    auto gp = std::make_shared<GaussianProcess>(schema3);
    EXPECT_TRUE(gp->Fit(x3, bd.y).ok());
    BaseSurrogate b;
    b.model = gp;
    b.similarity = 0.4;
    b.input_dims = 3;
    b.y_mean = -0.2;
    b.y_scale = 0.9;
    bases.push_back(std::move(b));
  }
  return bases;
}

TEST(PredictBatchTest, MetaEnsembleMatchesPerPoint) {
  MixedData d = MakeMixedData(36, 13);
  MetaEnsembleSurrogate meta(d.schema, MakeBases());
  ASSERT_TRUE(meta.Fit(d.x, d.y).ok());
  std::vector<std::vector<double>> probes = MakeProbes(71, 17);
  std::vector<Prediction> batch = meta.PredictBatch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t j = 0; j < probes.size(); ++j) {
    Prediction p = meta.Predict(probes[j]);
    EXPECT_EQ(batch[j].mean, p.mean) << "j=" << j;
    EXPECT_EQ(batch[j].variance, p.variance) << "j=" << j;
  }
}

TEST(PredictBatchTest, MetaEnsemblePriorPathMatchesPerPoint) {
  MixedData d = MakeMixedData(4, 19);
  MetaEnsembleSurrogate meta(d.schema, MakeBases());  // never fitted
  std::vector<std::vector<double>> probes = MakeProbes(13, 23);
  std::vector<Prediction> batch = meta.PredictBatch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t j = 0; j < probes.size(); ++j) {
    Prediction p = meta.Predict(probes[j]);
    EXPECT_EQ(batch[j].mean, p.mean) << "j=" << j;
    EXPECT_EQ(batch[j].variance, p.variance) << "j=" << j;
  }
}

TEST(PredictBatchTest, ForestMatchesPerPoint) {
  MixedData d = MakeMixedData(120, 29);
  std::vector<std::vector<double>> probes = MakeProbes(130, 31);
  for (int threads : {1, 4}) {
    ForestOptions opts;
    opts.num_trees = 40;
    opts.seed = 9;
    opts.num_threads = threads;
    RandomForest rf(opts);
    ASSERT_TRUE(rf.Fit(d.x, d.y).ok());
    std::vector<Prediction> batch = rf.PredictBatch(probes);
    ASSERT_EQ(batch.size(), probes.size());
    for (size_t j = 0; j < probes.size(); ++j) {
      Prediction p = rf.Predict(probes[j]);
      EXPECT_EQ(batch[j].mean, p.mean) << "threads=" << threads << " j=" << j;
      EXPECT_EQ(batch[j].variance, p.variance)
          << "threads=" << threads << " j=" << j;
    }
  }
}

TEST(PredictBatchTest, EmptyForestMatchesPerPoint) {
  RandomForest rf;  // never fitted -> no trees
  std::vector<std::vector<double>> probes = MakeProbes(5, 37);
  std::vector<Prediction> batch = rf.PredictBatch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t j = 0; j < probes.size(); ++j) {
    Prediction p = rf.Predict(probes[j]);
    EXPECT_EQ(batch[j].mean, p.mean);
    EXPECT_EQ(batch[j].variance, p.variance);
  }
}

TEST(PredictBatchTest, GbdtMatchesPerPoint) {
  MixedData d = MakeMixedData(90, 43);
  std::vector<std::vector<double>> probes = MakeProbes(130, 47);
  for (int threads : {1, 4}) {
    GbdtOptions opts;
    opts.num_rounds = 30;
    opts.num_threads = threads;
    GbdtRegressor gbdt(opts);
    ASSERT_TRUE(gbdt.Fit(d.x, d.y).ok());
    std::vector<double> batch = gbdt.PredictBatch(probes);
    ASSERT_EQ(batch.size(), probes.size());
    for (size_t j = 0; j < probes.size(); ++j) {
      EXPECT_EQ(batch[j], gbdt.Predict(probes[j]))
          << "threads=" << threads << " j=" << j;
    }
  }
}

TEST(PredictBatchTest, GbdtFitBitIdenticalAcrossThreadCounts) {
  MixedData d = MakeMixedData(90, 53);
  GbdtOptions serial;
  serial.num_rounds = 25;
  serial.num_threads = 1;
  GbdtOptions wide = serial;
  wide.num_threads = 4;
  GbdtRegressor g1(serial), g4(wide);
  ASSERT_TRUE(g1.Fit(d.x, d.y).ok());
  ASSERT_TRUE(g4.Fit(d.x, d.y).ok());
  EXPECT_EQ(g1.num_trees(), g4.num_trees());
  std::vector<std::vector<double>> probes = MakeProbes(20, 59);
  for (const auto& q : probes) {
    EXPECT_EQ(g1.Predict(q), g4.Predict(q));
  }
}

TEST(PredictBatchTest, EmptyGbdtMatchesPerPoint) {
  GbdtRegressor gbdt;  // never fitted -> base prediction only
  std::vector<std::vector<double>> probes = MakeProbes(5, 61);
  std::vector<double> batch = gbdt.PredictBatch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t j = 0; j < probes.size(); ++j) {
    EXPECT_EQ(batch[j], gbdt.Predict(probes[j]));
  }
}

}  // namespace
}  // namespace sparktune
