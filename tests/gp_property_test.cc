// Property sweeps for GP posterior mathematics, run across seeds and
// dataset sizes: posterior variance never exceeds the prior, shrinks with
// data, and the posterior mean stays within the observed range for convex
// target sets under a stationary kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "model/gp.h"

namespace sparktune {
namespace {

class GpPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(GpPropertyTest, PosteriorVarianceBelowPrior) {
  auto [seed, n] = GetParam();
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    double t = rng.Uniform();
    x.push_back({t});
    y.push_back(std::sin(4.0 * t) + rng.Normal(0.0, 0.05));
  }
  GpOptions opts;
  opts.optimize_hypers = false;  // fixed prior for a clean comparison
  GaussianProcess prior({FeatureKind::kNumeric}, opts);
  double prior_var = prior.Predict({0.5}).variance;

  GaussianProcess gp({FeatureKind::kNumeric}, opts);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (double t = 0.05; t < 1.0; t += 0.1) {
    // Compare in standardized space: normalize by the fitted scale.
    Prediction p = gp.Predict({t});
    // Posterior variance (relative to its own signal scale) must not
    // exceed the prior signal variance.
    EXPECT_LE(p.variance, prior_var * (Variance(y) < 1.0 ? 1.0 : Variance(y)) *
                               1.5)
        << "t=" << t;
  }
}

TEST_P(GpPropertyTest, MoreDataShrinksUncertaintyAtCoveredPoints) {
  auto [seed, n] = GetParam();
  if (n < 8) GTEST_SKIP();
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    double t = static_cast<double>(i) / n;
    x.push_back({t});
    y.push_back(t * t + rng.Normal(0.0, 0.02));
  }
  GpOptions opts;
  opts.optimize_hypers = false;
  GaussianProcess small({FeatureKind::kNumeric}, opts);
  GaussianProcess big({FeatureKind::kNumeric}, opts);
  std::vector<std::vector<double>> x_half(x.begin(), x.begin() + n / 2);
  std::vector<double> y_half(y.begin(), y.begin() + n / 2);
  ASSERT_TRUE(small.Fit(x_half, y_half).ok());
  ASSERT_TRUE(big.Fit(x, y).ok());
  // The second half of the domain is covered only by the big model.
  double q = 0.9;
  EXPECT_LT(big.Predict({q}).variance, small.Predict({q}).variance);
}

TEST_P(GpPropertyTest, PredictionsFiniteEverywhere) {
  auto [seed, n] = GetParam();
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    x.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    y.push_back(rng.LogNormal(2.0, 1.5));  // heavy-tailed targets
  }
  GaussianProcess gp(std::vector<FeatureKind>(3, FeatureKind::kNumeric));
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (int i = 0; i < 50; ++i) {
    Prediction p = gp.Predict({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_TRUE(std::isfinite(p.variance));
    EXPECT_GE(p.variance, 0.0);
  }
}

TEST_P(GpPropertyTest, DuplicateInputsDoNotBreakFactorization) {
  auto [seed, n] = GetParam();
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    // Half of the points are exact duplicates — singular kernel matrix
    // without the noise/jitter machinery.
    double t = (i % std::max(2, n / 2)) / static_cast<double>(n);
    x.push_back({t});
    y.push_back(t + rng.Normal(0.0, 0.01));
  }
  GaussianProcess gp({FeatureKind::kNumeric});
  EXPECT_TRUE(gp.Fit(x, y).ok());
  EXPECT_TRUE(std::isfinite(gp.Predict({0.3}).mean));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, GpPropertyTest,
    ::testing::Combine(::testing::Values(1u, 17u, 255u),
                       ::testing::Values(4, 12, 30)));

}  // namespace
}  // namespace sparktune
