// Tests for the deterministic fault injector (tuner/fault_injection.h),
// the event-log sanity screen, and the sim->tuner failure mapping.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "sparksim/hibench.h"
#include "tuner/fault_injection.h"

namespace sparktune {
namespace {

struct SimFixture {
  SimFixture()
      : cluster(ClusterSpec::HiBenchCluster()),
        space(BuildSparkSpace(cluster)) {}

  std::unique_ptr<SimulatorEvaluator> MakeInner(uint64_t seed) {
    auto w = HiBenchTask("WordCount");
    EXPECT_TRUE(w.ok());
    SimulatorEvaluatorOptions opts;
    opts.seed = seed;
    return std::make_unique<SimulatorEvaluator>(&space, *w, cluster,
                                                DriftModel::Diurnal(), opts);
  }

  ClusterSpec cluster;
  ConfigSpace space;
};

FaultInjectionOptions MixedFaults(uint64_t seed) {
  FaultInjectionOptions opts;
  opts.seed = seed;
  opts.crash_prob = 0.15;
  opts.transient_error_prob = 0.1;
  opts.hang_prob = 0.1;
  opts.corrupt_log_prob = 0.1;
  opts.truncate_log_prob = 0.1;
  return opts;
}

TEST(FailureKindTest, NamesRoundTripAndLegacyFallback) {
  for (FailureKind k : {FailureKind::kNone, FailureKind::kOom,
                        FailureKind::kTimeout, FailureKind::kInfra}) {
    EXPECT_EQ(FailureKindFromName(FailureKindName(k)), k);
  }
  EXPECT_EQ(FailureKindFromName("not-a-kind"), FailureKind::kNone);
  EXPECT_TRUE(IsConfigFailure(FailureKind::kOom));
  EXPECT_TRUE(IsConfigFailure(FailureKind::kTimeout));
  EXPECT_FALSE(IsConfigFailure(FailureKind::kInfra));
  EXPECT_TRUE(IsFailure(FailureKind::kInfra));
  EXPECT_FALSE(IsFailure(FailureKind::kNone));
}

TEST(MapSimFailureTest, EverySimKindIsConfigInduced) {
  EXPECT_EQ(MapSimFailure(SimFailureKind::kNone), FailureKind::kNone);
  EXPECT_EQ(MapSimFailure(SimFailureKind::kFetchTimeout),
            FailureKind::kTimeout);
  for (SimFailureKind k :
       {SimFailureKind::kNoExecutors, SimFailureKind::kExecutorOom,
        SimFailureKind::kContainerKill, SimFailureKind::kDriverOom}) {
    EXPECT_EQ(MapSimFailure(k), FailureKind::kOom);
  }
}

TEST(FaultInjectionTest, SameSeedSameScheduleAcrossInstances) {
  SimFixture f;
  auto inner_a = f.MakeInner(7);
  auto inner_b = f.MakeInner(7);
  FaultInjectingEvaluator a(inner_a.get(), MixedFaults(5));
  FaultInjectingEvaluator b(inner_b.get(), MixedFaults(5));
  Configuration c = f.space.Default();
  for (int i = 0; i < 40; ++i) {
    auto oa = a.Run(c);
    auto ob = b.Run(c);
    EXPECT_EQ(oa.failure, ob.failure) << "run " << i;
    EXPECT_EQ(oa.runtime_sec, ob.runtime_sec) << "run " << i;
    EXPECT_EQ(oa.event_log.stages.size(), ob.event_log.stages.size());
  }
  EXPECT_EQ(a.counters().crashes, b.counters().crashes);
  EXPECT_EQ(a.counters().clean_runs, b.counters().clean_runs);
  // The mixed schedule actually exercised several fault kinds.
  EXPECT_GT(a.counters().crashes + a.counters().transient_errors, 0);
  EXPECT_GT(a.counters().clean_runs, 0);
}

TEST(FaultInjectionTest, CrashDoesNotAdvanceInnerClock) {
  SimFixture f;
  auto inner = f.MakeInner(7);
  FaultInjectionOptions opts;
  opts.crash_prob = 1.0;
  FaultInjectingEvaluator eval(inner.get(), opts);
  for (int i = 0; i < 5; ++i) {
    auto out = eval.Run(f.space.Default());
    EXPECT_EQ(out.failure, FailureKind::kInfra);
    EXPECT_TRUE(out.failed());
  }
  EXPECT_EQ(inner->executions(), 0);
  EXPECT_EQ(eval.counters().crashes, 5);
  // After the fault clears, the inner evaluator produces exactly what a
  // fault-free evaluator produces for its first execution.
  auto clean_inner = f.MakeInner(7);
  EXPECT_EQ(inner->Run(f.space.Default()).runtime_sec,
            clean_inner->Run(f.space.Default()).runtime_sec);
}

TEST(FaultInjectionTest, HangIsTimeoutWithInflatedRuntimeAndNoLog) {
  SimFixture f;
  auto inner = f.MakeInner(7);
  auto twin = f.MakeInner(7);
  FaultInjectionOptions opts;
  opts.hang_prob = 1.0;
  FaultInjectingEvaluator eval(inner.get(), opts);
  auto hung = eval.Run(f.space.Default());
  auto clean = twin->Run(f.space.Default());
  EXPECT_EQ(hung.failure, FailureKind::kTimeout);
  EXPECT_EQ(hung.runtime_sec, clean.runtime_sec * 10.0);
  EXPECT_TRUE(hung.event_log.stages.empty());
  EXPECT_EQ(inner->executions(), 1);  // the job did run
}

TEST(FaultInjectionTest, CorruptAndTruncatedLogsFailSanityScreen) {
  SimFixture f;
  auto inner = f.MakeInner(7);
  FaultInjectionOptions opts;
  opts.corrupt_log_prob = 1.0;
  FaultInjectingEvaluator corrupt(inner.get(), opts);
  auto out = corrupt.Run(f.space.Default());
  EXPECT_EQ(out.failure, FailureKind::kNone);  // the run itself succeeded
  EXPECT_FALSE(out.event_log.stages.empty());
  EXPECT_FALSE(EventLogLooksSane(out.event_log));

  auto inner2 = f.MakeInner(7);
  FaultInjectionOptions topts;
  topts.truncate_log_prob = 1.0;
  FaultInjectingEvaluator truncate(inner2.get(), topts);
  auto tout = truncate.Run(f.space.Default());
  EXPECT_EQ(tout.failure, FailureKind::kNone);
  EXPECT_TRUE(tout.event_log.stages.empty());
  EXPECT_FALSE(EventLogLooksSane(tout.event_log));
}

TEST(EventLogSanityTest, VetsStageMetrics) {
  SimFixture f;
  auto inner = f.MakeInner(3);
  EventLog log = inner->Run(f.space.Default()).event_log;
  ASSERT_TRUE(EventLogLooksSane(log));
  EventLog nan_duration = log;
  nan_duration.stages[0].duration_sec =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(EventLogLooksSane(nan_duration));
  EventLog negative_io = log;
  negative_io.stages[0].input_mb = -1.0;
  EXPECT_FALSE(EventLogLooksSane(negative_io));
  EventLog bad_size = log;
  bad_size.data_size_gb = -4.0;
  EXPECT_FALSE(EventLogLooksSane(bad_size));
}

TEST(FaultInjectionTest, SkipExecutionsReplaysTheSchedule) {
  SimFixture f;
  const Configuration c = f.space.Default();
  constexpr int kTotal = 30;
  constexpr int kSkip = 17;

  auto inner_full = f.MakeInner(7);
  FaultInjectingEvaluator full(inner_full.get(), MixedFaults(5));
  std::vector<JobEvaluator::Outcome> want;
  for (int i = 0; i < kTotal; ++i) want.push_back(full.Run(c));

  auto inner_resumed = f.MakeInner(7);
  FaultInjectingEvaluator resumed(inner_resumed.get(), MixedFaults(5));
  resumed.SkipExecutions(kSkip);
  EXPECT_EQ(resumed.runs(), kSkip);
  for (int i = kSkip; i < kTotal; ++i) {
    auto got = resumed.Run(c);
    EXPECT_EQ(got.failure, want[i].failure) << "run " << i;
    EXPECT_EQ(got.runtime_sec, want[i].runtime_sec) << "run " << i;
    EXPECT_EQ(got.data_size_gb, want[i].data_size_gb) << "run " << i;
  }
  // Both inner clocks consumed the same number of real executions
  // (crash/transient slots consume none).
  EXPECT_EQ(inner_resumed->executions(), inner_full->executions());
}

}  // namespace
}  // namespace sparktune
