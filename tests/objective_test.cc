// Tests for the generalized objective (Eq. 1) and its derivatives (Eq. 9).
#include <gtest/gtest.h>

#include <cmath>

#include "bo/history.h"
#include "tuner/objective.h"

namespace sparktune {
namespace {

TEST(ObjectiveTest, BetaExtremes) {
  TuningObjective obj;
  obj.beta = 1.0;
  EXPECT_DOUBLE_EQ(obj.Value(120.0, 50.0), 120.0);  // pure runtime
  obj.beta = 0.0;
  EXPECT_DOUBLE_EQ(obj.Value(120.0, 50.0), 50.0);   // pure resource
}

TEST(ObjectiveTest, CostIsSqrtOfProduct) {
  TuningObjective obj;
  obj.beta = 0.5;
  EXPECT_NEAR(obj.Value(100.0, 25.0), std::sqrt(100.0 * 25.0), 1e-9);
}

TEST(ObjectiveTest, RuntimeTendency) {
  // beta = 0.7 rewards runtime reduction more than resource reduction.
  TuningObjective obj;
  obj.beta = 0.7;
  double base = obj.Value(100.0, 100.0);
  double faster = obj.Value(50.0, 100.0);
  double leaner = obj.Value(100.0, 50.0);
  EXPECT_LT(faster, leaner);
  EXPECT_LT(leaner, base);
}

// Property sweep: closed-form partials (Eq. 9) match finite differences.
class ObjectiveGradTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ObjectiveGradTest, DerivativesMatchFiniteDifference) {
  auto [beta, t, r] = GetParam();
  TuningObjective obj;
  obj.beta = beta;
  const double eps = 1e-5;
  double dfdt_fd =
      (obj.Value(t + eps, r) - obj.Value(t - eps, r)) / (2.0 * eps);
  double dfdr_fd =
      (obj.Value(t, r + eps) - obj.Value(t, r - eps)) / (2.0 * eps);
  EXPECT_NEAR(obj.DfDt(t, r), dfdt_fd, 1e-4 * (1.0 + std::fabs(dfdt_fd)));
  EXPECT_NEAR(obj.DfDr(t, r), dfdr_fd, 1e-4 * (1.0 + std::fabs(dfdr_fd)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ObjectiveGradTest,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.5, 0.7, 1.0),
                       ::testing::Values(10.0, 500.0),
                       ::testing::Values(5.0, 300.0)));

TEST(ObjectiveTest, FeasibilityChecks) {
  TuningObjective obj;
  EXPECT_FALSE(obj.has_runtime_constraint());
  EXPECT_TRUE(obj.Feasible(1e12, 1e12));
  obj.runtime_max = 100.0;
  obj.resource_max = 50.0;
  EXPECT_TRUE(obj.has_runtime_constraint());
  EXPECT_TRUE(obj.Feasible(100.0, 50.0));   // boundary inclusive
  EXPECT_FALSE(obj.Feasible(100.1, 50.0));
  EXPECT_FALSE(obj.Feasible(100.0, 50.1));
}

TEST(ObjectiveTest, Validate) {
  TuningObjective obj;
  EXPECT_TRUE(obj.Validate().ok());
  obj.beta = 1.5;
  EXPECT_FALSE(obj.Validate().ok());
  obj.beta = 0.5;
  obj.runtime_max = -1.0;
  EXPECT_FALSE(obj.Validate().ok());
}

TEST(HistoryTest, BestFeasibleSkipsFailedAndInfeasible) {
  RunHistory h;
  auto mk = [](double obj, bool feasible, bool failed) {
    Observation o;
    o.config = Configuration({1.0});
    o.objective = obj;
    o.feasible = feasible;
    o.failure = failed ? FailureKind::kOom : FailureKind::kNone;
    return o;
  };
  h.Add(mk(10.0, false, false));  // infeasible
  h.Add(mk(5.0, true, true));     // failed
  h.Add(mk(7.0, true, false));    // best feasible
  h.Add(mk(8.0, true, false));
  EXPECT_EQ(h.BestFeasibleIndex(), 2);
  EXPECT_DOUBLE_EQ(h.BestObjective(), 7.0);
}

TEST(HistoryTest, EmptyHistory) {
  RunHistory h;
  EXPECT_EQ(h.BestFeasibleIndex(), -1);
  EXPECT_FALSE(h.BestFeasible().has_value());
  EXPECT_TRUE(std::isinf(h.BestObjective()));
}

TEST(HistoryTest, ContainsByValue) {
  RunHistory h;
  Observation o;
  o.config = Configuration({1.0, 2.0});
  h.Add(o);
  EXPECT_TRUE(h.Contains(Configuration({1.0, 2.0})));
  EXPECT_FALSE(h.Contains(Configuration({1.0, 2.1})));
}

}  // namespace
}  // namespace sparktune
