// Multi-process tuning service tests (DESIGN.md §9): frame-codec
// hardening (torn/bit-flipped/oversized frames decode to typed errors,
// never crash or over-read — run under ASan/UBSan via the sanitizer
// matrix), the RetryPolicy-pinned reconnect schedule, socket deadline
// behavior, the ShardServer dispatcher, and the headline property — a
// fleet driven over real sockets through real SIGKILLed-and-respawned
// worker processes delivers a per-task trajectory bit-identical to an
// undisturbed in-process TuningService run, at nt=1 and nt=4.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "net/channel.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/io.h"
#include "net/socket.h"
#include "service/process_supervisor.h"
#include "service/shard_server.h"
#include "service/wire.h"
#include "sparksim/hibench.h"
#include "sparksim/spark_conf.h"

namespace sparktune {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("sparktune-rpc-test-" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Frame codec hardening.
// ---------------------------------------------------------------------------

TEST(FrameCodec, RoundTripAndBackToBackFrames) {
  const std::string payload = R"({"ok":true,"x":[1,2,3]})";
  std::string wire = net::EncodeFrame(net::MsgKind::kExecute, payload);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + payload.size());

  size_t consumed = 0;
  auto frame = net::DecodeFrame(wire, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->kind, net::MsgKind::kExecute);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(consumed, wire.size());

  // Two frames back to back: the first decode consumes exactly one.
  std::string two = wire + net::EncodeFrame(net::MsgKind::kPing, "{}");
  auto first = net::DecodeFrame(two, &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->kind, net::MsgKind::kExecute);
  auto second = net::DecodeFrame(
      std::string_view(two).substr(consumed), &consumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->kind, net::MsgKind::kPing);
  EXPECT_EQ(second->payload, "{}");
}

TEST(FrameCodec, TornPrefixesAreDataLoss) {
  const std::string wire =
      net::EncodeFrame(net::MsgKind::kCheckpoint, R"({"a":1})");
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    auto frame = net::DecodeFrame(std::string_view(wire.data(), cut));
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    EXPECT_EQ(frame.status().code(), Status::Code::kDataLoss)
        << "cut=" << cut;
  }
}

TEST(FrameCodec, EveryBitFlipIsATypedError) {
  const std::string payload = R"({"kind":"corpus","v":[0.25,7]})";
  const std::string wire = net::EncodeFrame(net::MsgKind::kHarvest, payload);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = wire;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      auto frame = net::DecodeFrame(corrupt);
      // A flip can never decode to success: header fields are validated
      // and the payload is CRC-framed. It must come back as a typed
      // error, never a crash or over-read (ASan backs this up).
      ASSERT_FALSE(frame.ok()) << "byte " << i << " bit " << bit;
      const Status::Code code = frame.status().code();
      EXPECT_TRUE(code == Status::Code::kDataLoss ||
                  code == Status::Code::kInvalidArgument)
          << "byte " << i << " bit " << bit << ": "
          << frame.status().ToString();
    }
  }
}

// Hand-build a header with full control over each field.
std::string RawHeader(uint32_t magic, uint8_t version, uint8_t kind,
                      uint16_t reserved, uint32_t len, uint32_t crc) {
  std::string h(net::kFrameHeaderBytes, '\0');
  auto put32 = [&h](size_t at, uint32_t v) {
    h[at] = static_cast<char>(v & 0xff);
    h[at + 1] = static_cast<char>((v >> 8) & 0xff);
    h[at + 2] = static_cast<char>((v >> 16) & 0xff);
    h[at + 3] = static_cast<char>((v >> 24) & 0xff);
  };
  put32(0, magic);
  h[4] = static_cast<char>(version);
  h[5] = static_cast<char>(kind);
  h[6] = static_cast<char>(reserved & 0xff);
  h[7] = static_cast<char>((reserved >> 8) & 0xff);
  put32(8, len);
  put32(12, crc);
  return h;
}

TEST(FrameCodec, MalformedHeadersAreInvalidArgument) {
  const uint8_t kind = static_cast<uint8_t>(net::MsgKind::kPing);
  struct Case {
    const char* name;
    std::string header;
  };
  const Case cases[] = {
      {"bad magic", RawHeader(0xDEADBEEF, net::kFrameVersion, kind, 0, 2, 0)},
      {"bad version",
       RawHeader(net::kFrameMagic, net::kFrameVersion + 1, kind, 0, 2, 0)},
      {"bad kind", RawHeader(net::kFrameMagic, net::kFrameVersion, 0, 0, 2, 0)},
      {"kind past range",
       RawHeader(net::kFrameMagic, net::kFrameVersion, 200, 0, 2, 0)},
      {"nonzero reserved",
       RawHeader(net::kFrameMagic, net::kFrameVersion, kind, 7, 2, 0)},
      {"zero length",
       RawHeader(net::kFrameMagic, net::kFrameVersion, kind, 0, 0, 0)},
      {"oversized length",
       RawHeader(net::kFrameMagic, net::kFrameVersion, kind, 0,
                 net::kMaxFramePayload + 1, 0)},
  };
  for (const Case& c : cases) {
    net::MsgKind decoded_kind;
    uint32_t crc = 0;
    auto len = net::DecodeFrameHeader(c.header, &decoded_kind, &crc);
    ASSERT_FALSE(len.ok()) << c.name;
    EXPECT_EQ(len.status().code(), Status::Code::kInvalidArgument) << c.name;
    // The full-frame decoder agrees (padding keeps the buffer long).
    auto frame = net::DecodeFrame(c.header + std::string(64, 'x'));
    ASSERT_FALSE(frame.ok()) << c.name;
    EXPECT_EQ(frame.status().code(), Status::Code::kInvalidArgument)
        << c.name;
  }
}

TEST(FrameCodec, CrcMismatchIsDataLoss) {
  std::string wire = net::EncodeFrame(net::MsgKind::kRestore, "{\"p\":1}");
  wire[wire.size() - 1] = static_cast<char>(wire[wire.size() - 1] ^ 0x01);
  auto frame = net::DecodeFrame(wire);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), Status::Code::kDataLoss);
}

// ---------------------------------------------------------------------------
// Frame-codec fuzz: seeded adversarial byte streams through the real
// socket read path. Every outcome must be a typed status within the
// deadline — never a crash, hang, or over-read (ASan/UBSan in the matrix
// back the memory-safety half of that claim).
// ---------------------------------------------------------------------------

// Pushes `bytes` through one end of a socketpair, closes it, and reads
// frames from the other end until the stream errors or drains.
void ExpectTypedFrameStream(const std::string& bytes, const char* what) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::UniqueFd reader(fds[0]);
  {
    net::UniqueFd writer(fds[1]);
    if (!bytes.empty()) {
      ASSERT_TRUE(
          net::WriteFull(writer.get(), bytes.data(), bytes.size(), 2000).ok())
          << what;
    }
  }  // writer closes: the reader sees EOF after the garbage
  const int64_t start = net::MonotonicMs();
  for (int hop = 0; hop < 64; ++hop) {
    auto frame = net::ReadFrame(reader.get(), /*deadline_ms=*/2000);
    if (frame.ok()) continue;  // a mutation can leave a decodable frame
    const Status::Code code = frame.status().code();
    EXPECT_TRUE(code == Status::Code::kDataLoss ||
                code == Status::Code::kInvalidArgument ||
                code == Status::Code::kUnavailable)
        << what << ": " << frame.status().ToString();
    break;
  }
  EXPECT_LT(net::MonotonicMs() - start, 10000) << what;
}

TEST(FrameCodec, FuzzRandomByteStreamsAreTypedAndBounded) {
  Rng rng(0xF0CC5EEDULL);
  for (int round = 0; round < 64; ++round) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 256));
    std::string bytes(len, '\0');
    for (char& c : bytes) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    // Random bytes essentially never carry the magic + CRC, so the decode
    // must reject them without reading past the buffer.
    auto direct = net::DecodeFrame(bytes);
    if (!direct.ok()) {
      const Status::Code code = direct.status().code();
      EXPECT_TRUE(code == Status::Code::kDataLoss ||
                  code == Status::Code::kInvalidArgument)
          << "round " << round << ": " << direct.status().ToString();
    }
    ExpectTypedFrameStream(bytes, "random stream");
  }
}

TEST(FrameCodec, FuzzMutatedValidFramesAreTypedAndBounded) {
  Rng rng(0xBADF00D5ULL);
  const net::MsgKind kinds[] = {net::MsgKind::kPing, net::MsgKind::kExecute,
                                net::MsgKind::kCheckpoint,
                                net::MsgKind::kTaskStatus};
  for (int round = 0; round < 64; ++round) {
    // A valid frame with a random JSON-ish payload...
    const size_t len = static_cast<size_t>(rng.UniformInt(2, 192));
    std::string payload(len, ' ');
    for (char& c : payload) {
      c = static_cast<char>(rng.UniformInt(32, 126));
    }
    std::string wire = net::EncodeFrame(
        kinds[rng.UniformInt(0, 3)], payload);
    // ...seeded mutations: truncate, flip bits, splice garbage, prepend.
    switch (rng.UniformInt(0, 3)) {
      case 0:
        wire.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(wire.size()) - 1)));
        break;
      case 1:
        for (int flips = rng.UniformInt(1, 8); flips > 0; --flips) {
          const size_t bit = static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(wire.size()) * 8 - 1));
          wire[bit / 8] = static_cast<char>(
              static_cast<unsigned char>(wire[bit / 8]) ^ (1u << (bit % 8)));
        }
        break;
      case 2: {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(wire.size())));
        std::string garbage(static_cast<size_t>(rng.UniformInt(1, 32)), '\0');
        for (char& c : garbage) {
          c = static_cast<char>(rng.UniformInt(0, 255));
        }
        wire.insert(at, garbage);
        break;
      }
      default:
        wire.insert(0, std::string(
            static_cast<size_t>(rng.UniformInt(1, 16)), '\xff'));
        break;
    }
    ExpectTypedFrameStream(wire, "mutated frame");
  }
}

// ---------------------------------------------------------------------------
// Reconnect schedule: RetryPolicy::BackoffPeriods is the only source of
// backoff math in the net layer.
// ---------------------------------------------------------------------------

TEST(Reconnect, DelaysPinnedToRetryPolicyBackoff) {
  RetryPolicy policy;  // service default: 3 attempts, base 1, max 8
  std::vector<int> delays = net::ReconnectDelaysMs(policy, 20);
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_EQ(delays[0], 0);  // attempt 1 is immediate
  EXPECT_EQ(delays[1], policy.BackoffPeriods(1) * 20);
  EXPECT_EQ(delays[2], policy.BackoffPeriods(2) * 20);
  EXPECT_EQ(delays[1], 20);
  EXPECT_EQ(delays[2], 40);

  // The process supervisor's stretched default: 8 attempts, cap 64.
  RetryPolicy wide{8, 1, 64, 4, 6};
  delays = net::ReconnectDelaysMs(wide, 20);
  const int expected[] = {0, 20, 40, 80, 160, 320, 640, 1280};
  ASSERT_EQ(delays.size(), 8u);
  for (size_t k = 0; k < delays.size(); ++k) {
    EXPECT_EQ(delays[k], expected[k]) << "attempt " << k + 1;
    if (k > 0) {
      EXPECT_EQ(delays[k],
                wide.BackoffPeriods(static_cast<int>(k)) * 20);
    }
  }
}

TEST(Reconnect, LargeMaxAttemptsClampToCapWithoutOverflow) {
  // A pathological policy — thousands of attempts, a huge cap — must
  // produce a schedule that saturates at max_backoff_periods * unit and
  // never wraps negative (BackoffPeriods clamps the shift, not the
  // product of an overflowed shift).
  RetryPolicy wide{/*max_attempts=*/5000, /*base_backoff_periods=*/1,
                   /*max_backoff_periods=*/1 << 20,
                   /*circuit_break_failures=*/4, /*park_periods=*/6};
  std::vector<int> delays = net::ReconnectDelaysMs(wide, 3);
  ASSERT_EQ(delays.size(), 5000u);
  EXPECT_EQ(delays[0], 0);
  const int cap_ms = wide.max_backoff_periods * 3;
  for (size_t k = 1; k < delays.size(); ++k) {
    ASSERT_GE(delays[k], 0) << "attempt " << k + 1;
    ASSERT_LE(delays[k], cap_ms) << "attempt " << k + 1;
    ASSERT_GE(delays[k], delays[k - 1]) << "attempt " << k + 1;
  }
  // Once the exponent would overflow the shift width, every delay is
  // exactly the cap — including attempt indices far past 64.
  EXPECT_EQ(delays[100], cap_ms);
  EXPECT_EQ(delays[4999], cap_ms);
}

TEST(Reconnect, TickPacingFollowsBackoffPeriods) {
  RetryPolicy policy;  // base 1, max 8
  net::ReconnectState state;
  EXPECT_TRUE(state.ShouldAttempt());
  state.RecordFailure(policy);  // 1st failure: skip BackoffPeriods(1) = 1
  EXPECT_FALSE(state.ShouldAttempt());
  EXPECT_TRUE(state.ShouldAttempt());
  state.RecordFailure(policy);  // 2nd failure: skip 2 ticks
  EXPECT_FALSE(state.ShouldAttempt());
  EXPECT_FALSE(state.ShouldAttempt());
  EXPECT_TRUE(state.ShouldAttempt());
  state.RecordSuccess();
  EXPECT_TRUE(state.ShouldAttempt());
  EXPECT_EQ(state.failures, 0);
}

// ---------------------------------------------------------------------------
// Sockets & deadlines: errors are typed, and nothing hangs.
// ---------------------------------------------------------------------------

TEST(Socket, ConnectToMissingPathIsUnavailable) {
  const std::string dir = TempDir("nosock");
  auto fd = net::UnixConnect(dir + "/absent.sock", /*deadline_ms=*/200);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), Status::Code::kUnavailable);
}

TEST(Socket, ReadFrameDeadlineExpiresInsteadOfHanging) {
  const std::string dir = TempDir("deadline");
  const std::string path = dir + "/s.sock";
  auto listener = net::UnixListen(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  auto client = net::UnixConnect(path, 1000);
  ASSERT_TRUE(client.ok());
  auto server = net::UnixAccept(listener->get(), 1000);
  ASSERT_TRUE(server.ok());

  // No bytes in flight: the read must time out as kUnavailable, promptly.
  const int64_t start = net::MonotonicMs();
  auto frame = net::ReadFrame(server->get(), /*deadline_ms=*/100);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), Status::Code::kUnavailable);
  EXPECT_LT(net::MonotonicMs() - start, 5000);

  // A half-written frame followed by silence is a torn read: kDataLoss
  // (the stream is desynchronized), still within the deadline.
  std::string wire = net::EncodeFrame(net::MsgKind::kPing, "{}");
  std::string half = wire.substr(0, wire.size() - 1);
  ASSERT_TRUE(
      net::WriteFull(client->get(), half.data(), half.size(), 1000).ok());
  frame = net::ReadFrame(server->get(), /*deadline_ms=*/100);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), Status::Code::kDataLoss);
}

TEST(Socket, FrameExchangeOverRealSockets) {
  const std::string dir = TempDir("exchange");
  const std::string path = dir + "/s.sock";
  auto listener = net::UnixListen(path);
  ASSERT_TRUE(listener.ok());
  auto client = net::UnixConnect(path, 1000);
  ASSERT_TRUE(client.ok());
  auto server = net::UnixAccept(listener->get(), 1000);
  ASSERT_TRUE(server.ok());

  const std::string payload(100000, 'j');  // multi-read-sized payload
  ASSERT_TRUE(
      net::WriteFrame(client->get(), net::MsgKind::kExecute, payload, 2000)
          .ok());
  auto frame = net::ReadFrame(server->get(), 2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->kind, net::MsgKind::kExecute);
  EXPECT_EQ(frame->payload, payload);
}

// ---------------------------------------------------------------------------
// Wire codecs round-trip exactly.
// ---------------------------------------------------------------------------

TEST(Wire, ServiceConfigAndTaskSpecRoundTrip) {
  ServiceConfig config;
  config.budget = 13;
  config.ei_stop_threshold = 0.037;
  config.expert_ranking = true;
  config.repository_dir = "/tmp/some/dir";
  config.auto_checkpoint_periods = 3;
  config.num_threads = 4;
  auto parsed = ServiceConfigFromJson(ServiceConfigToJson(config));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(ServiceConfigToJson(*parsed).Dump(),
            ServiceConfigToJson(config).Dump());

  SimTaskSpec spec;
  spec.workload = "TeraSort";
  spec.seed = 0xDEADBEEFCAFEF00DULL;  // needs all 64 bits on the wire
  spec.period_hours = 0.5;
  spec.faults.crash_prob = 0.125;
  spec.faults.seed = 0xFFFFFFFFFFFFFFFFULL;
  auto spec2 = SimTaskSpecFromJson(SimTaskSpecToJson(spec));
  ASSERT_TRUE(spec2.ok()) << spec2.status().ToString();
  EXPECT_EQ(spec2->seed, spec.seed);
  EXPECT_EQ(spec2->faults.seed, spec.faults.seed);
  EXPECT_EQ(SimTaskSpecToJson(*spec2).Dump(), SimTaskSpecToJson(spec).Dump());

  EXPECT_EQ(SimTaskSpecFromJson(Json::Object()).status().code(),
            Status::Code::kInvalidArgument);
  Json bad_workload = SimTaskSpecToJson(spec);
  bad_workload.Set("workload", Json::Str("NoSuchJob"));
  EXPECT_FALSE(SimTaskSpecFromJson(bad_workload).ok());
}

TEST(Wire, ResultSlotsRoundTripBitExactly) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  Observation obs;
  obs.config = space.Default();
  obs.objective = 0.1 + 0.2;  // a value that needs %.17g to survive
  obs.runtime_sec = 123.456789012345678;
  obs.failure = FailureKind::kTimeout;
  obs.feasible = false;
  obs.degraded = true;
  obs.iteration = 7;
  Result<Observation> slot(obs);
  auto back = ResultSlotFromJson(ResultSlotToJson(slot), space);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->config == obs.config);
  EXPECT_EQ(back->objective, obs.objective);
  EXPECT_EQ(back->runtime_sec, obs.runtime_sec);
  EXPECT_EQ(back->failure, obs.failure);
  EXPECT_EQ(back->feasible, obs.feasible);
  EXPECT_EQ(back->degraded, obs.degraded);

  Result<Observation> error_slot(Status::Unavailable("backing off: t"));
  auto error_back = ResultSlotFromJson(ResultSlotToJson(error_slot), space);
  ASSERT_FALSE(error_back.ok());
  EXPECT_EQ(error_back.status().code(), Status::Code::kUnavailable);
  EXPECT_EQ(error_back.status().message(), "backing off: t");

  EXPECT_EQ(ResultSlotFromJson(Json::Number(3), space).status().code(),
            Status::Code::kDataLoss);
}

// ---------------------------------------------------------------------------
// ShardServer dispatcher (socket-free).
// ---------------------------------------------------------------------------

ServiceConfig TestConfig(const std::string& repo_dir = "") {
  ServiceConfig config;
  config.budget = 5;
  config.ei_stop_threshold = 0.0;
  config.expert_ranking = true;
  config.repository_dir = repo_dir;
  return config;
}

Json ConfigureBody(const ServiceConfig& config) {
  Json body = Json::Object();
  body.Set("config", ServiceConfigToJson(config));
  return body;
}

TEST(ShardServer, ConfigureIsIdempotentButConflictsAreRejected) {
  ShardServer server;
  // Anything but ping/configure before configuration is a typed error.
  Json ids = Json::Object();
  ids.Set("ids", Json::Array());
  Json response = server.Handle(net::MsgKind::kExecute, ids);
  EXPECT_FALSE(response.GetBoolOr("ok", true));
  EXPECT_EQ(response.GetStringOr("code", ""), "FailedPrecondition");

  ServiceConfig config = TestConfig();
  EXPECT_TRUE(server.Handle(net::MsgKind::kConfigure, ConfigureBody(config))
                  .GetBoolOr("ok", false));
  // Same bytes: fine. Different bytes: rejected, state unchanged.
  EXPECT_TRUE(server.Handle(net::MsgKind::kConfigure, ConfigureBody(config))
                  .GetBoolOr("ok", false));
  config.budget = 99;
  response = server.Handle(net::MsgKind::kConfigure, ConfigureBody(config));
  EXPECT_FALSE(response.GetBoolOr("ok", true));
  EXPECT_EQ(response.GetStringOr("code", ""), "FailedPrecondition");

  response = server.Handle(net::MsgKind::kPing, Json::Object());
  EXPECT_TRUE(response.GetBoolOr("ok", false));
  EXPECT_TRUE(response.GetBoolOr("configured", false));
}

TEST(ShardServer, ExecuteMatchesInProcessService) {
  ShardServer server;
  ASSERT_TRUE(server.Handle(net::MsgKind::kConfigure,
                            ConfigureBody(TestConfig()))
                  .GetBoolOr("ok", false));
  SimTaskSpec spec;
  spec.workload = "WordCount";
  spec.seed = 42;
  Json reg = Json::Object();
  reg.Set("id", Json::Str("wc"));
  reg.Set("spec", SimTaskSpecToJson(spec));
  ASSERT_TRUE(
      server.Handle(net::MsgKind::kRegisterTask, reg).GetBoolOr("ok", false));
  // Duplicate registration is rejected.
  EXPECT_EQ(server.Handle(net::MsgKind::kRegisterTask, reg)
                .GetStringOr("code", ""),
            "InvalidArgument");

  // The oracle: same spec through a plain TuningService.
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  TuningService oracle(&space, MakeServiceOptions(TestConfig()));
  auto evaluator = BuildSimEvaluator(&space, cluster, spec);
  ASSERT_TRUE(evaluator.ok());
  ASSERT_TRUE(oracle.RegisterTask("wc", evaluator->get()).ok());

  Json ids = Json::Array();
  ids.Append(Json::Str("wc"));
  Json body = Json::Object();
  body.Set("ids", std::move(ids));
  for (int period = 0; period < 8; ++period) {
    Json response = server.Handle(net::MsgKind::kExecute, body);
    ASSERT_TRUE(response.GetBoolOr("ok", false));
    const Json* slots = response.Get("slots");
    ASSERT_NE(slots, nullptr);
    ASSERT_EQ(slots->size(), 1u);
    auto got = ResultSlotFromJson(slots->at(0), space);
    Result<Observation> want = oracle.ExecutePeriodic("wc");
    ASSERT_EQ(got.ok(), want.ok()) << "period " << period;
    if (got.ok()) {
      EXPECT_TRUE(got->config == want->config) << "period " << period;
      EXPECT_EQ(got->objective, want->objective) << "period " << period;
    }
    const Json* periods = response.Get("periods");
    ASSERT_NE(periods, nullptr);
    EXPECT_EQ(static_cast<long long>(periods->at(0).AsNumber()), period + 1);
  }
}

TEST(ShardServer, SubmitObservationMergesExternalHistories) {
  const std::string repo_dir = TempDir("submit");
  ShardServer server;
  ASSERT_TRUE(server.Handle(net::MsgKind::kConfigure,
                            ConfigureBody(TestConfig(repo_dir)))
                  .GetBoolOr("ok", false));
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  Observation obs;
  obs.config = space.Default();
  obs.objective = 3.25;
  Json body = Json::Object();
  body.Set("id", Json::Str("external-job"));
  body.Set("obs", DataRepository::ObservationToJson(obs));
  Json response = server.Handle(net::MsgKind::kSubmitObservation, body);
  ASSERT_TRUE(response.GetBoolOr("ok", false))
      << response.GetStringOr("message", "");
  EXPECT_EQ(response.GetNumberOr("observations", 0), 1.0);
  response = server.Handle(net::MsgKind::kSubmitObservation, body);
  EXPECT_EQ(response.GetNumberOr("observations", 0), 2.0);

  DataRepository repo(repo_dir);
  auto stored = repo.LoadTask("external-job", space);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->history.size(), 2u);

  // A registered task's history is tuner-owned: submission is rejected.
  SimTaskSpec spec;
  spec.workload = "Sort";
  Json reg = Json::Object();
  reg.Set("id", Json::Str("mine"));
  reg.Set("spec", SimTaskSpecToJson(spec));
  ASSERT_TRUE(
      server.Handle(net::MsgKind::kRegisterTask, reg).GetBoolOr("ok", false));
  body.Set("id", Json::Str("mine"));
  response = server.Handle(net::MsgKind::kSubmitObservation, body);
  EXPECT_EQ(response.GetStringOr("code", ""), "FailedPrecondition");
}

// ---------------------------------------------------------------------------
// End to end over real processes: the headline bit-identity property.
// ---------------------------------------------------------------------------

void ExpectSameSlot(const Result<Observation>& got,
                    const Result<Observation>& want, const std::string& id,
                    long long period) {
  ASSERT_EQ(got.ok(), want.ok())
      << id << " period " << period << ": "
      << (got.ok() ? "ok" : got.status().ToString()) << " vs "
      << (want.ok() ? "ok" : want.status().ToString());
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code())
        << id << " period " << period;
    return;
  }
  EXPECT_TRUE(got->config == want->config) << id << " period " << period;
  EXPECT_EQ(got->objective, want->objective) << id << " period " << period;
  EXPECT_EQ(got->runtime_sec, want->runtime_sec)
      << id << " period " << period;
  EXPECT_EQ(got->failure, want->failure) << id << " period " << period;
  EXPECT_EQ(got->degraded, want->degraded) << id << " period " << period;
  EXPECT_EQ(got->feasible, want->feasible) << id << " period " << period;
}

struct FleetSpec {
  std::vector<std::string> ids;
  std::vector<SimTaskSpec> specs;
};

FleetSpec MakeFleet(int tasks) {
  const char* kWorkloads[] = {"WordCount", "Sort", "TeraSort", "Join"};
  FleetSpec fleet;
  for (int i = 0; i < tasks; ++i) {
    SimTaskSpec spec;
    spec.workload = kWorkloads[i % 4];
    spec.seed = 500 + static_cast<uint64_t>(i);
    fleet.ids.push_back("rpc-task-" + std::to_string(i));
    fleet.specs.push_back(spec);
  }
  return fleet;
}

// Drives a real multi-process fleet for `ticks` ticks (optionally
// SIGKILLing the busiest shard at kill_tick and restarting it at
// restart_tick) and asserts every delivered observation equals the
// undisturbed in-process oracle's observation for the same period index.
void RunProcessEquivalence(const std::string& tag, int threads,
                           bool with_repo, int kill_tick, int restart_tick) {
  const int kShards = 2, kTasks = 4, kTicks = 7;
  ProcessSupervisorOptions options;
  options.shardd_path = SPARKTUNE_SHARDD_PATH;
  options.socket_dir = TempDir("sock-" + tag);
  options.num_shards = kShards;
  options.service = TestConfig();
  options.service.num_threads = threads;
  if (with_repo) {
    options.service.repository_dir = TempDir("repo-" + tag);
    options.service.auto_checkpoint_periods = 2;
    options.service.checkpoint_on_phase_change = true;
  }

  ProcessSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start().ok());
  FleetSpec fleet = MakeFleet(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(
        supervisor.RegisterTask(fleet.ids[i], fleet.specs[i]).ok())
        << fleet.ids[i];
  }

  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  TuningService oracle(&space, MakeServiceOptions(TestConfig()));
  std::vector<std::unique_ptr<JobEvaluator>> oracle_evaluators;
  for (int i = 0; i < kTasks; ++i) {
    auto evaluator = BuildSimEvaluator(&space, cluster, fleet.specs[i]);
    ASSERT_TRUE(evaluator.ok());
    ASSERT_TRUE(oracle.RegisterTask(fleet.ids[i], evaluator->get()).ok());
    oracle_evaluators.push_back(std::move(evaluator).value());
  }

  int killed = -1;
  long long compared = 0;
  for (int t = 1; t <= kTicks; ++t) {
    if (t == kill_tick) {
      std::vector<int> load(kShards, 0);
      for (const std::string& id : fleet.ids) {
        ++load[supervisor.shard_of(id)];
      }
      killed = load[1] > load[0] ? 1 : 0;
      ASSERT_TRUE(supervisor.KillShard(killed).ok());
    }
    if (t == restart_tick && killed >= 0) {
      ASSERT_TRUE(supervisor.RestartShard(killed).ok());
    }
    std::vector<long long> before(fleet.ids.size());
    for (size_t i = 0; i < fleet.ids.size(); ++i) {
      before[i] = supervisor.periods(fleet.ids[i]);
    }
    std::vector<Result<Observation>> slots = supervisor.Tick();
    ASSERT_EQ(slots.size(), fleet.ids.size());
    for (size_t i = 0; i < fleet.ids.size(); ++i) {
      const long long after = supervisor.periods(fleet.ids[i]);
      if (after == before[i]) {
        // Parked: the home shard is down; typed kUnavailable, no period
        // consumed, trajectory untouched.
        ASSERT_FALSE(slots[i].ok()) << fleet.ids[i] << " tick " << t;
        EXPECT_EQ(slots[i].status().code(), Status::Code::kUnavailable)
            << fleet.ids[i] << " tick " << t;
        continue;
      }
      ASSERT_EQ(after, before[i] + 1) << fleet.ids[i] << " tick " << t;
      while (oracle.periods(fleet.ids[i]) < before[i]) {
        (void)oracle.ExecutePeriodic(fleet.ids[i]);
      }
      Result<Observation> want = oracle.ExecutePeriodic(fleet.ids[i]);
      ++compared;
      ExpectSameSlot(slots[i], want, fleet.ids[i], before[i]);
    }
  }
  EXPECT_GT(compared, 0);
  if (kill_tick > 0) {
    EXPECT_EQ(supervisor.stats().kills, 1);
    EXPECT_EQ(supervisor.stats().restarts, 1);
    EXPECT_GT(supervisor.stats().parked_slots, 0);
    if (with_repo) {
      // At least one task resumed from its on-disk checkpoint generation.
      EXPECT_GT(supervisor.stats().restored_tasks, 0);
    } else {
      EXPECT_GT(supervisor.stats().fresh_replays, 0);
    }
  }
  EXPECT_TRUE(supervisor.Shutdown().ok());
}

TEST(ProcessService, UndisturbedRunMatchesOracleSingleThread) {
  RunProcessEquivalence("plain-nt1", 1, false, 0, 0);
}

TEST(ProcessService, UndisturbedRunMatchesOracleFourThreads) {
  RunProcessEquivalence("plain-nt4", 4, false, 0, 0);
}

TEST(ProcessService, SigkillRecoveryIsBitIdenticalSingleThread) {
  RunProcessEquivalence("chaos-nt1", 1, true, 3, 5);
}

TEST(ProcessService, SigkillRecoveryIsBitIdenticalFourThreads) {
  RunProcessEquivalence("chaos-nt4", 4, true, 3, 5);
}

TEST(ProcessService, SigkillWithoutRepositoryReplaysFromScratch) {
  RunProcessEquivalence("chaos-norepo", 1, false, 3, 5);
}

TEST(ProcessService, DownedShardDegradesToTypedUnavailableWithinDeadline) {
  ProcessSupervisorOptions options;
  options.shardd_path = SPARKTUNE_SHARDD_PATH;
  options.socket_dir = TempDir("sock-degrade");
  options.num_shards = 2;
  options.service = TestConfig();
  ProcessSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start().ok());
  FleetSpec fleet = MakeFleet(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        supervisor.RegisterTask(fleet.ids[i], fleet.specs[i]).ok());
  }
  (void)supervisor.Tick();

  // Kill BOTH shards: every slot must degrade to typed kUnavailable and
  // the tick must return promptly — parked requests never hang.
  ASSERT_TRUE(supervisor.KillShard(0).ok());
  ASSERT_TRUE(supervisor.KillShard(1).ok());
  const int64_t start = net::MonotonicMs();
  std::vector<Result<Observation>> slots = supervisor.Tick();
  EXPECT_LT(net::MonotonicMs() - start, 10000);
  ASSERT_EQ(slots.size(), 4u);
  for (size_t i = 0; i < slots.size(); ++i) {
    ASSERT_FALSE(slots[i].ok()) << i;
    EXPECT_EQ(slots[i].status().code(), Status::Code::kUnavailable) << i;
    EXPECT_EQ(supervisor.periods(fleet.ids[i]), 1) << i;
  }
  EXPECT_EQ(supervisor.stats().parked_slots, 4);

  // Registration on a downed home shard is refused, not parked.
  SimTaskSpec spec;
  spec.workload = "Scan";
  EXPECT_EQ(supervisor.RegisterTask("late", spec).code(),
            Status::Code::kUnavailable);

  // Recovery brings every task back.
  ASSERT_TRUE(supervisor.RestartShard(0).ok());
  ASSERT_TRUE(supervisor.RestartShard(1).ok());
  slots = supervisor.Tick();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(supervisor.periods(fleet.ids[i]), 2) << i;
  }
  EXPECT_TRUE(supervisor.Shutdown().ok());
}

TEST(ProcessService, FetchSuggestionTravelsTheWire) {
  ProcessSupervisorOptions options;
  options.shardd_path = SPARKTUNE_SHARDD_PATH;
  options.socket_dir = TempDir("sock-suggest");
  options.num_shards = 1;
  options.service = TestConfig();
  ProcessSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start().ok());
  SimTaskSpec spec;
  spec.workload = "WordCount";
  spec.seed = 7;
  ASSERT_TRUE(supervisor.RegisterTask("wc", spec).ok());
  for (int t = 0; t < 3; ++t) (void)supervisor.Tick();

  auto suggestion = supervisor.FetchSuggestion("wc");
  ASSERT_TRUE(suggestion.ok()) << suggestion.status().ToString();

  // Same trajectory in process: the incumbents agree exactly.
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  TuningService oracle(&space, MakeServiceOptions(TestConfig()));
  auto evaluator = BuildSimEvaluator(&space, cluster, spec);
  ASSERT_TRUE(evaluator.ok());
  ASSERT_TRUE(oracle.RegisterTask("wc", evaluator->get()).ok());
  for (int t = 0; t < 3; ++t) (void)oracle.ExecutePeriodic("wc");
  Configuration want = oracle.tuner("wc")->BestConfig();
  auto dump = [](const Configuration& c) {
    std::string s;
    for (double v : c.values()) s += StrFormat("%.17g,", v);
    return s;
  };
  EXPECT_TRUE(*suggestion == want)
      << "got  " << dump(*suggestion) << "\nwant " << dump(want);

  EXPECT_EQ(supervisor.FetchSuggestion("nope").status().code(),
            Status::Code::kNotFound);
  EXPECT_TRUE(supervisor.Shutdown().ok());
}

}  // namespace
}  // namespace sparktune
