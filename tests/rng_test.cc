// Tests for the deterministic RNG: reproducibility, distribution moments,
// sampling helpers. Property sweeps run across seeds via TEST_P.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace sparktune {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(7);
  Rng child = a.Fork();
  // The child should not replay the parent stream.
  Rng a2(7);
  a2.Fork();
  EXPECT_NE(child.Next(), a.Next());
}

class RngSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedTest, UniformInUnitInterval) {
  Rng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST_P(RngSeedTest, NormalMoments) {
  Rng rng(GetParam());
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST_P(RngSeedTest, UniformIntCoversRangeInclusive) {
  Rng rng(GetParam());
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST_P(RngSeedTest, GammaMoments) {
  Rng rng(GetParam());
  const double shape = 2.5, scale = 1.5;
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(shape, scale);
  EXPECT_NEAR(sum / n, shape * scale, 0.1);
}

TEST_P(RngSeedTest, GammaShapeBelowOne) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gamma(0.5, 2.0);
    ASSERT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.08);
}

TEST_P(RngSeedTest, LogNormalMean) {
  Rng rng(GetParam());
  // mu = -sigma^2/2 gives E = 1.
  const double sigma = 0.4;
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(1u, 42u, 12345u, 0xDEADBEEFu));

TEST(RngTest, PermutationIsValid) {
  Rng rng(5);
  auto p = rng.Permutation(50);
  std::vector<int> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(20, 10);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace sparktune
