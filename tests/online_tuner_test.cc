// Tests for the SimulatorEvaluator and the OnlineTune controller phases:
// baseline measurement, constraint derivation, budget/EI stopping,
// degradation-triggered restart.
#include <gtest/gtest.h>

#include <cmath>

#include "sparksim/hibench.h"
#include "tuner/online_tuner.h"

namespace sparktune {
namespace {

struct Fixture {
  Fixture()
      : cluster(ClusterSpec::HiBenchCluster()),
        space(BuildSparkSpace(cluster)) {}

  SimulatorEvaluator MakeEvaluator(const std::string& task,
                                   uint64_t seed = 5) {
    auto w = HiBenchTask(task);
    EXPECT_TRUE(w.ok());
    SimulatorEvaluatorOptions opts;
    opts.seed = seed;
    return SimulatorEvaluator(&space, *w, cluster, DriftModel::Diurnal(),
                              opts);
  }

  ClusterSpec cluster;
  ConfigSpace space;
};

TEST(SimulatorEvaluatorTest, AdvancesExecutionsAndDrift) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  Configuration c = f.space.Default();
  auto o1 = eval.Run(c);
  auto o2 = eval.Run(c);
  EXPECT_EQ(eval.executions(), 2);
  EXPECT_GT(o1.data_size_gb, 0.0);
  // Diurnal drift: sizes differ between executions.
  EXPECT_NE(o1.data_size_gb, o2.data_size_gb);
}

TEST(SimulatorEvaluatorTest, HintTracksDriftWithoutNoise) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  double hint = eval.NextDataSizeHintGb();
  auto o = eval.Run(f.space.Default());
  // The hint is the noiseless expectation of the executed size.
  EXPECT_NEAR(hint, o.data_size_gb, o.data_size_gb * 0.4);
}

TEST(SimulatorEvaluatorTest, HiddenDataSizeMode) {
  Fixture f;
  auto w = HiBenchTask("WordCount");
  SimulatorEvaluatorOptions opts;
  opts.datasize_observable = false;
  SimulatorEvaluator eval(&f.space, *w, f.cluster, DriftModel::None(), opts);
  EXPECT_LT(eval.NextDataSizeHintGb(), 0.0);
  auto o = eval.Run(f.space.Default());
  EXPECT_LT(o.data_size_gb, 0.0);
}

TEST(SimulatorEvaluatorTest, ResourceRateMatchesExecution) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  Configuration c = f.space.Default();
  double white_box = eval.ResourceRate(c);
  auto o = eval.Run(c);
  EXPECT_DOUBLE_EQ(white_box, o.resource_rate);
}

TEST(OnlineTunerTest, BaselineSetsConstraints) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  TunerOptions opts;
  opts.budget = 5;
  opts.constraint_runtime_factor = 2.0;
  opts.constraint_resource_factor = 2.0;
  OnlineTuner tuner(&f.space, &eval, opts);
  EXPECT_EQ(tuner.phase(), TunerPhase::kBaseline);
  Observation baseline = tuner.Step();
  EXPECT_EQ(tuner.phase(), TunerPhase::kTuning);
  EXPECT_TRUE(baseline.feasible);
  EXPECT_NEAR(tuner.objective().runtime_max, baseline.runtime_sec * 2.0,
              1e-9);
  EXPECT_NEAR(tuner.objective().resource_max, baseline.resource_rate * 2.0,
              1e-9);
  ASSERT_TRUE(tuner.baseline_observation().has_value());
}

TEST(OnlineTunerTest, BudgetMovesToApplying) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  TunerOptions opts;
  opts.budget = 6;
  opts.ei_stop_threshold = 0.0;  // disable early stop
  OnlineTuner tuner(&f.space, &eval, opts);
  for (int i = 0; i <= 6; ++i) tuner.Step();
  EXPECT_EQ(tuner.phase(), TunerPhase::kApplying);
  EXPECT_EQ(tuner.tuning_iterations(), 6);
  // Applying phase replays the best config.
  Configuration best = tuner.BestConfig();
  Observation applied = tuner.Step();
  EXPECT_TRUE(applied.config == best);
}

TEST(OnlineTunerTest, TuningImprovesOnBaseline) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  TunerOptions opts;
  opts.budget = 20;
  opts.ei_stop_threshold = 0.0;
  opts.advisor.expert_ranking = ExpertParameterRanking();
  opts.advisor.seed = 3;
  OnlineTuner tuner(&f.space, &eval, opts);
  TuningReport report = tuner.RunToCompletion(21);
  ASSERT_TRUE(report.baseline.has_value());
  EXPECT_LT(report.best_objective, report.baseline->objective);
}

TEST(OnlineTunerTest, CustomBaselineConfigUsed) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  Configuration manual = f.space.Default();
  f.space.Set(&manual, spark_param::kExecutorInstances, 40);
  TunerOptions opts;
  opts.budget = 3;
  OnlineTuner tuner(&f.space, &eval, opts, manual);
  Observation baseline = tuner.Step();
  EXPECT_DOUBLE_EQ(
      f.space.Get(baseline.config, spark_param::kExecutorInstances), 40.0);
}

TEST(OnlineTunerTest, NoBaselineModeRequiresPresetConstraints) {
  Fixture f;
  SimulatorEvaluator eval = f.MakeEvaluator("WordCount");
  TunerOptions opts;
  opts.budget = 4;
  opts.measure_baseline = false;
  opts.advisor.objective.runtime_max = 1e9;
  OnlineTuner tuner(&f.space, &eval, opts);
  EXPECT_EQ(tuner.phase(), TunerPhase::kTuning);
  EXPECT_NE(tuner.advisor(), nullptr);
  tuner.Step();
  EXPECT_EQ(tuner.history().size(), 1u);
}

// Evaluator whose cost landscape shifts abruptly mid-stream: the tuner must
// detect continuous degradation and restart tuning (§3.3).
class ShiftingEvaluator final : public JobEvaluator {
 public:
  explicit ShiftingEvaluator(const ConfigSpace* space) : space_(space) {}

  Outcome Run(const Configuration& c) override {
    ++runs_;
    Outcome o;
    double x = space_->param(0).ToUnit(c[0]);
    // Before the shift the optimum is near x=0; afterwards runtime there
    // becomes terrible.
    bool shifted = runs_ > 25;
    double center = shifted ? 0.9 : 0.1;
    o.runtime_sec = 100.0 + 2000.0 * std::pow(x - center, 2);
    o.resource_rate = 10.0;
    o.data_size_gb = 50.0;
    return o;
  }
  double ResourceRate(const Configuration&) const override { return 10.0; }

  int runs() const { return runs_; }

 private:
  const ConfigSpace* space_;
  int runs_ = 0;
};

TEST(OnlineTunerTest, DegradationTriggersRestart) {
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0, 0.1)).ok());
  ShiftingEvaluator eval(&space);
  TunerOptions opts;
  opts.budget = 12;
  opts.ei_stop_threshold = 0.0;
  opts.degradation_factor = 1.3;
  opts.degradation_window = 3;
  opts.advisor.enable_subspace = false;
  opts.advisor.seed = 11;
  OnlineTuner tuner(&space, &eval, opts);
  // Baseline + 12 tuning + enough applying executions to cross the shift.
  for (int i = 0; i < 45 && tuner.restarts() == 0; ++i) tuner.Step();
  EXPECT_GE(tuner.restarts(), 1);
  EXPECT_EQ(tuner.phase(), TunerPhase::kTuning);
}

TEST(OnlineTunerTest, EiStopActivates) {
  // A totally flat landscape: EI collapses, tuning should stop before the
  // budget runs out.
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0, 0.5)).ok());
  class FlatEvaluator final : public JobEvaluator {
   public:
    Outcome Run(const Configuration&) override {
      Outcome o;
      o.runtime_sec = 100.0;
      o.resource_rate = 10.0;
      o.data_size_gb = 1.0;
      return o;
    }
    double ResourceRate(const Configuration&) const override { return 10.0; }
  };
  FlatEvaluator eval;
  TunerOptions opts;
  opts.budget = 30;
  opts.ei_stop_threshold = 0.10;
  opts.min_iterations_before_stop = 6;
  opts.degradation_window = 0;
  opts.advisor.enable_subspace = false;
  opts.advisor.enable_agd = false;
  OnlineTuner tuner(&space, &eval, opts);
  for (int i = 0; i < 31 && tuner.phase() != TunerPhase::kApplying; ++i) {
    tuner.Step();
  }
  EXPECT_EQ(tuner.phase(), TunerPhase::kApplying);
  EXPECT_TRUE(tuner.stopped_early());
  EXPECT_LT(tuner.tuning_iterations(), 30);
}

}  // namespace
}  // namespace sparktune
