// Fault-tolerance tests (DESIGN.md §7): retry/backoff watchdog, circuit
// breaker with degraded incumbent runs, infra-failure transparency to the
// advisor, batch error-slot semantics, and thread-count invariance of the
// fault-seeded trajectory.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "service/tuning_service.h"
#include "sparksim/hibench.h"
#include "tuner/fault_injection.h"

namespace sparktune {
namespace {

struct Fixture {
  Fixture()
      : cluster(ClusterSpec::HiBenchCluster()),
        space(BuildSparkSpace(cluster)) {}

  std::unique_ptr<SimulatorEvaluator> MakeInner(const std::string& task,
                                                uint64_t seed) {
    auto w = HiBenchTask(task);
    EXPECT_TRUE(w.ok());
    SimulatorEvaluatorOptions opts;
    opts.seed = seed;
    return std::make_unique<SimulatorEvaluator>(&space, *w, cluster,
                                                DriftModel::Diurnal(), opts);
  }

  TuningServiceOptions ServiceOpts() {
    TuningServiceOptions opts;
    opts.tuner.budget = 10;
    opts.tuner.ei_stop_threshold = 0.0;
    opts.tuner.advisor.expert_ranking = ExpertParameterRanking();
    return opts;
  }

  ClusterSpec cluster;
  ConfigSpace space;
};

TEST(BackoffTest, ExponentialScheduleIsBoundedAndDeterministic) {
  RetryPolicy policy;  // base 1, max 8
  EXPECT_EQ(policy.BackoffPeriods(0), 0);
  EXPECT_EQ(policy.BackoffPeriods(1), 1);
  EXPECT_EQ(policy.BackoffPeriods(2), 2);
  EXPECT_EQ(policy.BackoffPeriods(3), 4);
  EXPECT_EQ(policy.BackoffPeriods(4), 8);
  EXPECT_EQ(policy.BackoffPeriods(40), 8);  // capped, no shift overflow
}

TEST(BackoffTest, ShiftOverflowIsClampedToCap) {
  RetryPolicy policy;
  policy.base_backoff_periods = 3;
  policy.max_backoff_periods = 1000000000;
  // Exponents at and far past the operand width: the clamp kicks in before
  // `base << (k-1)` becomes undefined, and the answer is the cap.
  EXPECT_EQ(policy.BackoffPeriods(40), 1000000000);
  EXPECT_EQ(policy.BackoffPeriods(63), 1000000000);
  EXPECT_EQ(policy.BackoffPeriods(1000), 1000000000);
  policy.base_backoff_periods = std::numeric_limits<int>::max();
  policy.max_backoff_periods = std::numeric_limits<int>::max();
  EXPECT_EQ(policy.BackoffPeriods(2), std::numeric_limits<int>::max());
  // Degenerate policies disable backoff instead of misbehaving.
  policy.base_backoff_periods = 0;
  EXPECT_EQ(policy.BackoffPeriods(5), 0);
  policy.base_backoff_periods = 4;
  policy.max_backoff_periods = 0;
  EXPECT_EQ(policy.BackoffPeriods(5), 0);
  policy.base_backoff_periods = -3;
  policy.max_backoff_periods = 8;
  EXPECT_EQ(policy.BackoffPeriods(5), 0);
}

TEST(BackoffTest, CircuitBreakerParksAndRecovers) {
  RetryPolicy policy;
  policy.circuit_break_failures = 2;
  policy.park_periods = 3;
  RetryState st;

  ASSERT_EQ(DecidePeriod(policy, &st), PeriodDecision::kRun);
  RecordPeriodOutcome(policy, &st, FailureKind::kInfra);
  EXPECT_EQ(st.consecutive_infra, 1);
  EXPECT_EQ(st.backoff_remaining, 1);

  ASSERT_EQ(DecidePeriod(policy, &st), PeriodDecision::kSkipBackoff);
  ASSERT_EQ(DecidePeriod(policy, &st), PeriodDecision::kRun);
  RecordPeriodOutcome(policy, &st, FailureKind::kInfra);
  EXPECT_TRUE(st.parked);  // streak hit circuit_break_failures
  EXPECT_EQ(st.park_events, 1);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(DecidePeriod(policy, &st), PeriodDecision::kRunDegraded);
  }
  EXPECT_FALSE(st.parked);
  EXPECT_EQ(st.degraded_runs, 3);
  EXPECT_EQ(st.consecutive_infra, 0);  // streak restarted on unpark
  EXPECT_EQ(DecidePeriod(policy, &st), PeriodDecision::kRun);

  // A config-induced failure closes the streak without backoff.
  RecordPeriodOutcome(policy, &st, FailureKind::kOom);
  EXPECT_EQ(st.consecutive_infra, 0);
  EXPECT_EQ(st.backoff_remaining, 0);
}

TEST(FaultToleranceTest, WatchdogBacksOffThenParksUnderTotalOutage) {
  Fixture f;
  TuningService service(&f.space, f.ServiceOpts());
  auto inner = f.MakeInner("WordCount", 3);
  FaultInjectionOptions fopts;
  fopts.crash_prob = 1.0;  // total outage: every run is an infra failure
  FaultInjectingEvaluator eval(inner.get(), fopts);
  ASSERT_TRUE(service.RegisterTask("wc", &eval).ok());

  // Defaults: backoff 1,2,4 then the 4th consecutive infra failure parks.
  // Expected period decisions: run, skip, run, skip, skip, run, 4x skip,
  // run(parks), 6x degraded, run...
  std::vector<Result<Observation>> r;
  for (int i = 0; i < 18; ++i) r.push_back(service.ExecutePeriodic("wc"));

  for (int i : {0, 2, 5, 10}) {
    ASSERT_TRUE(r[i].ok()) << "period " << i;
    EXPECT_EQ(r[i]->failure, FailureKind::kInfra);
    EXPECT_FALSE(r[i]->degraded);
  }
  for (int i : {1, 3, 4, 6, 7, 8, 9}) {
    ASSERT_FALSE(r[i].ok()) << "period " << i;
    EXPECT_EQ(r[i].status().code(), Status::Code::kUnavailable);
  }
  for (int i = 11; i <= 16; ++i) {
    ASSERT_TRUE(r[i].ok()) << "period " << i;
    EXPECT_TRUE(r[i]->degraded);
  }

  const RetryState* st = service.retry_state("wc");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->infra_failures, 5);  // periods 0, 2, 5, 10, 17
  EXPECT_EQ(st->park_events, 1);
  EXPECT_EQ(st->degraded_runs, 6);
  EXPECT_EQ(st->backoff_skips, 7);

  // The advisor never saw any of it: the baseline still has not been
  // measured, and no observation entered the history.
  const OnlineTuner* tuner = service.tuner("wc");
  ASSERT_NE(tuner, nullptr);
  EXPECT_FALSE(tuner->baseline_observation().has_value());
  EXPECT_EQ(tuner->history().size(), 0u);
  EXPECT_EQ(inner->executions(), 0);
}

// Acceptance: crash/transient infra faults are invisible to the advisor —
// the surviving observations (and therefore the unsafe-config labels) are
// bit-identical to a fault-free run's.
TEST(FaultToleranceTest, InfraFaultsLeaveAdvisorTrajectoryIdentical) {
  Fixture f;
  // Budget 10 => the advisor history holds baseline + 10 tuning runs.
  constexpr size_t kObservations = 11;
  // A generous retry policy isolates the property under test: abandoning a
  // pending suggestion or parking would (correctly) alter the trajectory,
  // so neither may trigger here.
  TuningServiceOptions opts = f.ServiceOpts();
  opts.tuner.retry.max_attempts = 1000000;
  opts.tuner.retry.circuit_break_failures = 1000000;

  TuningService clean_service(&f.space, opts);
  auto clean_inner = f.MakeInner("WordCount", 3);
  ASSERT_TRUE(clean_service.RegisterTask("wc", clean_inner.get()).ok());
  for (size_t i = 0; i < kObservations; ++i) {
    ASSERT_TRUE(clean_service.ExecutePeriodic("wc").ok());
  }

  TuningService faulty_service(&f.space, opts);
  auto faulty_inner = f.MakeInner("WordCount", 3);
  FaultInjectionOptions fopts;
  fopts.crash_prob = 0.2;
  fopts.transient_error_prob = 0.15;
  FaultInjectingEvaluator eval(faulty_inner.get(), fopts);
  ASSERT_TRUE(faulty_service.RegisterTask("wc", &eval).ok());
  const OnlineTuner* faulty_tuner = faulty_service.tuner("wc");
  int periods = 0;
  while (faulty_tuner->history().size() < kObservations && periods < 400) {
    faulty_service.ExecutePeriodic("wc");  // Unavailable slots are fine
    ++periods;
  }
  ASSERT_GT(periods, static_cast<int>(kObservations));  // periods were lost
  EXPECT_GT(eval.counters().crashes + eval.counters().transient_errors, 0);

  const RunHistory& a = clean_service.tuner("wc")->history();
  const RunHistory& b = faulty_tuner->history();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a.at(i).config == b.at(i).config) << "obs " << i;
    EXPECT_EQ(a.at(i).objective, b.at(i).objective) << "obs " << i;
    EXPECT_EQ(a.at(i).failure, b.at(i).failure) << "obs " << i;
    EXPECT_EQ(a.at(i).feasible, b.at(i).feasible) << "obs " << i;
  }
}

TEST(FaultToleranceTest, BatchErrorSlotSemantics) {
  Fixture f;
  TuningService service(&f.space, f.ServiceOpts());
  auto e1 = f.MakeInner("WordCount", 3);
  ASSERT_TRUE(service.RegisterTask("wc", e1.get()).ok());

  // A second task in permanent outage, driven into backoff first.
  auto inner2 = f.MakeInner("Sort", 4);
  FaultInjectionOptions fopts;
  fopts.crash_prob = 1.0;
  FaultInjectingEvaluator down(inner2.get(), fopts);
  ASSERT_TRUE(service.RegisterTask("down", &down).ok());
  auto first = service.ExecutePeriodic("down");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->failure, FailureKind::kInfra);

  auto results =
      service.ExecutePeriodicAll({"wc", "ghost", "wc", "down"});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), Status::Code::kNotFound);
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), Status::Code::kInvalidArgument);
  ASSERT_FALSE(results[3].ok());
  EXPECT_EQ(results[3].status().code(), Status::Code::kUnavailable);

  // The duplicate slot did not double-step the task: one batch + one
  // earlier period for "down", one batch execution for "wc".
  EXPECT_EQ(service.tuner("wc")->executions(), 1);
}

TEST(FaultToleranceTest, BatchDegradedSlotForParkedTask) {
  Fixture f;
  TuningService service(&f.space, f.ServiceOpts());
  auto inner = f.MakeInner("WordCount", 3);
  FaultInjectionOptions fopts;
  fopts.crash_prob = 1.0;
  FaultInjectingEvaluator down(inner.get(), fopts);
  ASSERT_TRUE(service.RegisterTask("down", &down).ok());
  // Drive through backoff (periods 0-9) into the parked state (period 10).
  for (int i = 0; i < 11; ++i) service.ExecutePeriodic("down");
  ASSERT_TRUE(service.retry_state("down")->parked);

  auto results = service.ExecutePeriodicAll({"down"});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_TRUE(results[0]->degraded);
}

// Acceptance: the fault-seeded batch trajectory is bit-identical at any
// thread count, including hang/corrupt/truncate faults and watchdog slots.
TEST(FaultToleranceTest, FaultSeededBatchTrajectoryThreadInvariant) {
  Fixture f;
  const std::vector<std::string> ids = {"wc", "sort", "ts"};
  const std::vector<std::string> workloads = {"WordCount", "Sort", "TeraSort"};

  auto run = [&](int num_threads) {
    TuningServiceOptions opts = f.ServiceOpts();
    opts.num_threads = num_threads;
    TuningService service(&f.space, opts);
    std::vector<std::unique_ptr<SimulatorEvaluator>> inners;
    std::vector<std::unique_ptr<FaultInjectingEvaluator>> evals;
    for (size_t t = 0; t < ids.size(); ++t) {
      inners.push_back(f.MakeInner(workloads[t], 3 + t));
      FaultInjectionOptions fopts;
      fopts.seed = 101 + t;
      fopts.crash_prob = 0.12;
      fopts.transient_error_prob = 0.08;
      fopts.hang_prob = 0.06;
      fopts.corrupt_log_prob = 0.06;
      fopts.truncate_log_prob = 0.06;
      evals.push_back(std::make_unique<FaultInjectingEvaluator>(
          inners.back().get(), fopts));
      EXPECT_TRUE(service.RegisterTask(ids[t], evals.back().get()).ok());
    }
    std::vector<std::vector<Result<Observation>>> ticks;
    for (int tick = 0; tick < 25; ++tick) {
      ticks.push_back(service.ExecutePeriodicAll(ids));
    }
    std::vector<RetryState> watchdogs;
    for (const auto& id : ids) watchdogs.push_back(*service.retry_state(id));
    return std::make_pair(ticks, watchdogs);
  };

  auto [serial, serial_wd] = run(1);
  auto [parallel, parallel_wd] = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(serial_wd[i].infra_failures, parallel_wd[i].infra_failures);
    EXPECT_EQ(serial_wd[i].backoff_skips, parallel_wd[i].backoff_skips);
    EXPECT_EQ(serial_wd[i].park_events, parallel_wd[i].park_events);
    EXPECT_EQ(serial_wd[i].degraded_runs, parallel_wd[i].degraded_runs);
  }
  for (size_t t = 0; t < serial.size(); ++t) {
    for (size_t i = 0; i < ids.size(); ++i) {
      const auto& a = serial[t][i];
      const auto& b = parallel[t][i];
      ASSERT_EQ(a.ok(), b.ok()) << "tick " << t << " slot " << i;
      if (!a.ok()) {
        EXPECT_EQ(a.status().code(), b.status().code());
        continue;
      }
      EXPECT_TRUE(a->config == b->config) << "tick " << t << " slot " << i;
      EXPECT_EQ(a->objective, b->objective) << "tick " << t << " slot " << i;
      EXPECT_EQ(a->failure, b->failure) << "tick " << t << " slot " << i;
      EXPECT_EQ(a->degraded, b->degraded) << "tick " << t << " slot " << i;
    }
  }
}

TEST(FaultToleranceTest, HarvestTaskIsIdempotentPerVersion) {
  Fixture f;
  TuningService service(&f.space, f.ServiceOpts());
  auto e1 = f.MakeInner("WordCount", 3);
  ASSERT_TRUE(service.RegisterTask("wc", e1.get()).ok());
  // Stay inside the tuning phase (budget 10): only tuning-phase periods
  // grow the advisor history that harvesting versions on.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  }
  ASSERT_TRUE(service.HarvestTask("wc").ok());
  EXPECT_EQ(service.knowledge_base().size(), 1u);
  // Re-harvesting the same task version is a no-op, not a duplicate.
  ASSERT_TRUE(service.HarvestTask("wc").ok());
  EXPECT_EQ(service.knowledge_base().size(), 1u);
  // New observations make a new version, which harvests again.
  ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  ASSERT_TRUE(service.HarvestTask("wc").ok());
  EXPECT_EQ(service.knowledge_base().size(), 2u);
}

}  // namespace
}  // namespace sparktune
