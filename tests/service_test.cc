// Tests for the data repository (JSON persistence) and the multi-task
// tuning service with meta-knowledge transfer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "service/data_repository.h"
#include "service/tuning_service.h"
#include "sparksim/hibench.h"

namespace sparktune {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("sparktune-test-" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

RunHistory MakeHistory(const ConfigSpace& space, int n, uint64_t seed) {
  Rng rng(seed);
  RunHistory h;
  for (int i = 0; i < n; ++i) {
    Observation o;
    o.config = space.Sample(&rng);
    o.objective = rng.Uniform(1.0, 100.0);
    o.runtime_sec = rng.Uniform(10.0, 1000.0);
    o.resource_rate = rng.Uniform(5.0, 50.0);
    o.data_size_gb = rng.Uniform(1.0, 500.0);
    o.feasible = rng.Bernoulli(0.8);
    o.failure = FailureKind::kNone;
    o.iteration = i;
    h.Add(o);
  }
  return h;
}

TEST(DataRepositoryTest, SaveLoadRoundTrip) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  DataRepository repo(TempDir("roundtrip"));

  StoredTask task;
  task.id = "Spark SQL: Skew Detection";  // spaces + colon in the id
  task.meta_features = {1.5, -2.0, 0.0};
  task.importance = {0.9, 0.1};
  task.history = MakeHistory(space, 8, 7);
  ASSERT_TRUE(repo.SaveTask(task, space).ok());
  EXPECT_TRUE(repo.HasTask(task.id));

  auto loaded = repo.LoadTask(task.id, space);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->id, task.id);
  EXPECT_EQ(loaded->meta_features, task.meta_features);
  EXPECT_EQ(loaded->importance, task.importance);
  ASSERT_EQ(loaded->history.size(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    const Observation& a = task.history.at(i);
    const Observation& b = loaded->history.at(i);
    EXPECT_TRUE(a.config == b.config);
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
    EXPECT_DOUBLE_EQ(a.runtime_sec, b.runtime_sec);
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.iteration, b.iteration);
  }
}

TEST(DataRepositoryTest, ListAndDelete) {
  ConfigSpace space = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  DataRepository repo(TempDir("list"));
  for (const char* id : {"b-task", "a-task", "c-task"}) {
    StoredTask t;
    t.id = id;
    t.history = MakeHistory(space, 3, 11);
    ASSERT_TRUE(repo.SaveTask(t, space).ok());
  }
  auto ids = repo.ListTaskIds();
  EXPECT_EQ(ids, (std::vector<std::string>{"a-task", "b-task", "c-task"}));
  ASSERT_TRUE(repo.DeleteTask("b-task").ok());
  EXPECT_FALSE(repo.HasTask("b-task"));
  EXPECT_EQ(repo.ListTaskIds().size(), 2u);
}

TEST(DataRepositoryTest, MissingTaskIsNotFound) {
  ConfigSpace space = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  DataRepository repo(TempDir("missing"));
  auto r = repo.LoadTask("ghost", space);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(DataRepositoryTest, ObservationJsonCodec) {
  ConfigSpace space = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  Observation o;
  o.config = space.Default();
  o.objective = 12.5;
  o.failure = FailureKind::kOom;
  o.feasible = false;
  o.iteration = 9;
  Json j = DataRepository::ObservationToJson(o);
  auto back = DataRepository::ObservationFromJson(j, space);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->config == o.config);
  EXPECT_TRUE(back->failed());
  EXPECT_EQ(back->failure, FailureKind::kOom);
  EXPECT_FALSE(back->feasible);
  EXPECT_EQ(back->iteration, 9);
}

TEST(DataRepositoryTest, RejectsConfigSizeMismatch) {
  ConfigSpace space = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  auto j = Json::Parse("{\"config\":[1,2,3]}");
  ASSERT_TRUE(j.ok());
  EXPECT_FALSE(DataRepository::ObservationFromJson(*j, space).ok());
}

struct ServiceFixture {
  ServiceFixture()
      : cluster(ClusterSpec::HiBenchCluster()),
        space(BuildSparkSpace(cluster)) {}

  std::unique_ptr<SimulatorEvaluator> MakeEvaluator(const std::string& task,
                                                    uint64_t seed) {
    auto w = HiBenchTask(task);
    EXPECT_TRUE(w.ok());
    SimulatorEvaluatorOptions opts;
    opts.seed = seed;
    return std::make_unique<SimulatorEvaluator>(&space, *w, cluster,
                                                DriftModel::Diurnal(), opts);
  }

  TuningServiceOptions ServiceOpts() {
    TuningServiceOptions opts;
    opts.tuner.budget = 10;
    opts.tuner.ei_stop_threshold = 0.0;
    opts.tuner.advisor.expert_ranking = ExpertParameterRanking();
    return opts;
  }

  ClusterSpec cluster;
  ConfigSpace space;
};

TEST(TuningServiceTest, RegisterAndExecute) {
  ServiceFixture f;
  TuningService service(&f.space, f.ServiceOpts());
  auto eval = f.MakeEvaluator("WordCount", 3);
  ASSERT_TRUE(service.RegisterTask("wc", eval.get()).ok());
  EXPECT_FALSE(service.RegisterTask("wc", eval.get()).ok());  // duplicate
  EXPECT_FALSE(service.ExecutePeriodic("ghost").ok());

  for (int i = 0; i < 12; ++i) {
    auto obs = service.ExecutePeriodic("wc");
    ASSERT_TRUE(obs.ok());
  }
  const OnlineTuner* tuner = service.tuner("wc");
  ASSERT_NE(tuner, nullptr);
  EXPECT_GE(tuner->tuning_iterations(), 10);
}

TEST(TuningServiceTest, HarvestFeedsKnowledgeBase) {
  ServiceFixture f;
  TuningService service(&f.space, f.ServiceOpts());
  auto e1 = f.MakeEvaluator("WordCount", 3);
  auto e2 = f.MakeEvaluator("Sort", 4);
  ASSERT_TRUE(service.RegisterTask("wc", e1.get()).ok());
  ASSERT_TRUE(service.RegisterTask("sort", e2.get()).ok());
  // Harvest before any run fails.
  EXPECT_FALSE(service.HarvestTask("wc").ok());
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
    ASSERT_TRUE(service.ExecutePeriodic("sort").ok());
  }
  ASSERT_TRUE(service.HarvestTask("wc").ok());
  ASSERT_TRUE(service.HarvestTask("sort").ok());
  EXPECT_EQ(service.knowledge_base().size(), 2u);
  EXPECT_TRUE(service.knowledge_base().similarity_trained());
}

TEST(TuningServiceTest, MetaTransferAttachesToThirdTask) {
  ServiceFixture f;
  TuningServiceOptions opts = f.ServiceOpts();
  opts.min_tasks_for_transfer = 2;
  TuningService service(&f.space, opts);
  auto e1 = f.MakeEvaluator("WordCount", 3);
  auto e2 = f.MakeEvaluator("Sort", 4);
  auto e3 = f.MakeEvaluator("TeraSort", 5);
  ASSERT_TRUE(service.RegisterTask("wc", e1.get()).ok());
  ASSERT_TRUE(service.RegisterTask("sort", e2.get()).ok());
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
    ASSERT_TRUE(service.ExecutePeriodic("sort").ok());
  }
  ASSERT_TRUE(service.HarvestTask("wc").ok());
  ASSERT_TRUE(service.HarvestTask("sort").ok());

  // The third, similar task should benefit from warm starting: its early
  // tuning observations reuse configs learned on TeraSort's sibling Sort.
  ASSERT_TRUE(service.RegisterTask("ts", e3.get()).ok());
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("ts").ok());
  }
  const OnlineTuner* tuner = service.tuner("ts");
  ASSERT_NE(tuner, nullptr);
  ASSERT_TRUE(tuner->baseline_observation().has_value());
  EXPECT_LT(tuner->BestObjective(),
            tuner->baseline_observation()->objective);
}

TEST(TuningServiceTest, StreamingHarvestMatchesFullPass) {
  // Budget-bounded HarvestDirty passes must leave the knowledge base in
  // exactly the state one explicit HarvestTask-per-id pass produces: same
  // records, same content, same similarity-model training points.
  ServiceFixture f;
  const std::vector<std::string> names = {"WordCount", "Sort", "TeraSort"};
  struct Rig {
    std::vector<std::unique_ptr<SimulatorEvaluator>> evals;
    std::unique_ptr<TuningService> service;
  };
  auto make = [&]() {
    Rig rig;
    TuningServiceOptions opts = f.ServiceOpts();
    // Keep trajectories independent of harvest timing: no meta transfer.
    opts.enable_meta = false;
    rig.service = std::make_unique<TuningService>(&f.space, opts);
    uint64_t seed = 3;
    for (const auto& n : names) {
      rig.evals.push_back(f.MakeEvaluator(n, seed++));
      EXPECT_TRUE(rig.service->RegisterTask(n, rig.evals.back().get()).ok());
    }
    return rig;
  };
  Rig full = make();
  Rig stream = make();
  std::vector<std::string> ids(names.begin(), names.end());
  for (int round = 0; round < 11; ++round) {
    for (const auto& r : full.service->ExecutePeriodicAll(ids)) {
      ASSERT_TRUE(r.ok());
    }
    for (const auto& r : stream.service->ExecutePeriodicAll(ids)) {
      ASSERT_TRUE(r.ok());
    }
  }
  // Repeated executions enqueue each task once, not once per period.
  EXPECT_EQ(stream.service->harvest_backlog(), names.size());

  for (const auto& n : names) {
    ASSERT_TRUE(full.service->HarvestTask(n).ok());
  }
  int harvested = 0;
  while (stream.service->harvest_backlog() > 0) {
    HarvestReport rep = stream.service->HarvestDirty(/*max_tasks=*/1);
    EXPECT_EQ(rep.attempted, 1);
    ASSERT_TRUE(rep.errors.empty()) << rep.errors[0].message();
    ASSERT_EQ(rep.deferred, 0);
    harvested += rep.harvested;
  }
  EXPECT_EQ(harvested, static_cast<int>(names.size()));

  const auto& want = full.service->knowledge_base().records();
  const auto& got = stream.service->knowledge_base().records();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id);
    EXPECT_EQ(want[i].meta_features, got[i].meta_features);
    EXPECT_EQ(want[i].x, got[i].x);
    EXPECT_EQ(want[i].y, got[i].y);
    EXPECT_EQ(want[i].importance, got[i].importance);
    ASSERT_EQ(want[i].top_configs.size(), got[i].top_configs.size());
    for (size_t k = 0; k < want[i].top_configs.size(); ++k) {
      EXPECT_TRUE(want[i].top_configs[k] == got[i].top_configs[k]);
    }
  }
  EXPECT_EQ(full.service->knowledge_base().similarity_trained(),
            stream.service->knowledge_base().similarity_trained());
}

TEST(TuningServiceTest, HarvestDirtyDefersUntilHarvestable) {
  ServiceFixture f;
  TuningServiceOptions opts = f.ServiceOpts();
  opts.enable_meta = false;
  TuningService service(&f.space, opts);
  auto eval = f.MakeEvaluator("WordCount", 9);
  ASSERT_TRUE(service.RegisterTask("wc", eval.get()).ok());
  EXPECT_EQ(service.harvest_backlog(), 0u);

  // Two observations: history too short to harvest. The pass must defer
  // (rotate the id to the tail), not drop or error.
  ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  EXPECT_EQ(service.harvest_backlog(), 1u);
  ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  HarvestReport rep = service.HarvestDirty();
  EXPECT_EQ(rep.attempted, 1);
  EXPECT_EQ(rep.deferred, 1);
  EXPECT_EQ(rep.harvested, 0);
  EXPECT_TRUE(rep.errors.empty());
  EXPECT_EQ(service.harvest_backlog(), 1u);

  // Enough history now: the retried pass harvests and drains the queue.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  rep = service.HarvestDirty();
  EXPECT_EQ(rep.harvested, 1);
  EXPECT_EQ(service.harvest_backlog(), 0u);
  EXPECT_EQ(service.knowledge_base().size(), 1u);

  // An empty queue is a no-op pass.
  rep = service.HarvestDirty();
  EXPECT_EQ(rep.attempted, 0);
}

TEST(TuningServiceTest, PersistAndReload) {
  ServiceFixture f;
  std::string dir = TempDir("service");
  {
    TuningServiceOptions opts = f.ServiceOpts();
    opts.repository_dir = dir;
    TuningService service(&f.space, opts);
    auto e1 = f.MakeEvaluator("WordCount", 3);
    auto e2 = f.MakeEvaluator("Sort", 4);
    ASSERT_TRUE(service.RegisterTask("wc", e1.get()).ok());
    ASSERT_TRUE(service.RegisterTask("sort", e2.get()).ok());
    for (int i = 0; i < 11; ++i) {
      ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
      ASSERT_TRUE(service.ExecutePeriodic("sort").ok());
    }
    ASSERT_TRUE(service.HarvestTask("wc").ok());
    ASSERT_TRUE(service.HarvestTask("sort").ok());
  }
  // New service instance recovers the knowledge base from disk.
  TuningServiceOptions opts = f.ServiceOpts();
  opts.repository_dir = dir;
  TuningService fresh(&f.space, opts);
  ASSERT_TRUE(fresh.LoadRepository().ok());
  EXPECT_EQ(fresh.knowledge_base().size(), 2u);
  EXPECT_TRUE(fresh.knowledge_base().similarity_trained());
}

}  // namespace
}  // namespace sparktune
