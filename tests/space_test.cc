// Tests for parameters, ConfigSpace codec and Subspace projection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "space/config_space.h"
#include "space/subspace.h"

namespace sparktune {
namespace {

ConfigSpace SmallSpace() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Int("instances", 1, 100, 8, true)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("fraction", 0.3, 0.9, 0.6)).ok());
  EXPECT_TRUE(
      s.Add(Parameter::Categorical("codec", {"lz4", "snappy", "zstd"}, 0))
          .ok());
  EXPECT_TRUE(s.Add(Parameter::Bool("compress", true)).ok());
  return s;
}

TEST(ParameterTest, IntUnitRoundTrip) {
  Parameter p = Parameter::Int("x", 1, 100, 8, /*log_scale=*/true);
  for (double v : {1.0, 8.0, 50.0, 100.0}) {
    double u = p.ToUnit(v);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    EXPECT_DOUBLE_EQ(p.FromUnit(u), v);
  }
}

TEST(ParameterTest, LogScaleSpreadsSmallValues) {
  Parameter lin = Parameter::Int("a", 1, 1000, 1, false);
  Parameter log = Parameter::Int("b", 1, 1000, 1, true);
  // 10 is near the bottom linearly but well inside the log scale.
  EXPECT_LT(lin.ToUnit(10.0), 0.02);
  EXPECT_GT(log.ToUnit(10.0), 0.3);
}

TEST(ParameterTest, CategoricalBuckets) {
  Parameter p = Parameter::Categorical("c", {"a", "b", "c"}, 1);
  EXPECT_DOUBLE_EQ(p.FromUnit(0.1), 0.0);
  EXPECT_DOUBLE_EQ(p.FromUnit(0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.FromUnit(0.99), 2.0);
  // Bucket centers round-trip.
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(p.FromUnit(p.ToUnit(i)), i);
  }
  EXPECT_EQ(p.FormatValue(2.0), "c");
}

TEST(ParameterTest, BoolRoundTrip) {
  Parameter p = Parameter::Bool("flag", false);
  EXPECT_DOUBLE_EQ(p.FromUnit(0.2), 0.0);
  EXPECT_DOUBLE_EQ(p.FromUnit(0.8), 1.0);
  EXPECT_DOUBLE_EQ(p.FromUnit(p.ToUnit(1.0)), 1.0);
  EXPECT_EQ(p.FormatValue(1.0), "true");
}

TEST(ParameterTest, LegalizeClampsAndRounds) {
  Parameter p = Parameter::Int("x", 2, 10, 5);
  EXPECT_DOUBLE_EQ(p.Legalize(3.4), 3.0);
  EXPECT_DOUBLE_EQ(p.Legalize(-1.0), 2.0);
  EXPECT_DOUBLE_EQ(p.Legalize(99.0), 10.0);
  Parameter f = Parameter::Float("y", 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(f.Legalize(0.33), 0.33);
}

TEST(ConfigSpaceTest, RejectsDuplicateNames) {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Bool("x", true)).ok());
  EXPECT_FALSE(s.Add(Parameter::Bool("x", false)).ok());
}

TEST(ConfigSpaceTest, DefaultMatchesParameterDefaults) {
  ConfigSpace s = SmallSpace();
  Configuration d = s.Default();
  EXPECT_DOUBLE_EQ(s.Get(d, "instances"), 8.0);
  EXPECT_DOUBLE_EQ(s.Get(d, "fraction"), 0.6);
  EXPECT_DOUBLE_EQ(s.Get(d, "codec"), 0.0);
  EXPECT_DOUBLE_EQ(s.Get(d, "compress"), 1.0);
  EXPECT_TRUE(s.Validate(d).ok());
}

TEST(ConfigSpaceTest, SamplesAreValid) {
  ConfigSpace s = SmallSpace();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Configuration c = s.Sample(&rng);
    ASSERT_TRUE(s.Validate(c).ok()) << s.Format(c);
  }
}

TEST(ConfigSpaceTest, UnitRoundTrip) {
  ConfigSpace s = SmallSpace();
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    Configuration c = s.Sample(&rng);
    Configuration back = s.FromUnit(s.ToUnit(c));
    for (size_t k = 0; k < s.size(); ++k) {
      EXPECT_NEAR(back[k], c[k], 1e-9) << s.param(k).name();
    }
  }
}

TEST(ConfigSpaceTest, ValidateCatchesOutOfRange) {
  ConfigSpace s = SmallSpace();
  Configuration c = s.Default();
  c[1] = 5.0;  // fraction out of [0.3, 0.9]
  EXPECT_FALSE(s.Validate(c).ok());
  Configuration wrong_size(std::vector<double>{1.0});
  EXPECT_FALSE(s.Validate(wrong_size).ok());
}

TEST(ConfigSpaceTest, FormatMentionsEveryParameter) {
  ConfigSpace s = SmallSpace();
  std::string f = s.Format(s.Default());
  EXPECT_NE(f.find("instances=8"), std::string::npos);
  EXPECT_NE(f.find("codec=lz4"), std::string::npos);
  EXPECT_NE(f.find("compress=true"), std::string::npos);
}

TEST(SubspaceTest, PinnedDimsStayAtBase) {
  ConfigSpace s = SmallSpace();
  Configuration base = s.Default();
  Subspace sub(&s, {0}, base);  // only "instances" free
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Configuration c = sub.Sample(&rng);
    EXPECT_DOUBLE_EQ(c[1], base[1]);
    EXPECT_DOUBLE_EQ(c[2], base[2]);
    EXPECT_DOUBLE_EQ(c[3], base[3]);
    EXPECT_TRUE(s.Validate(c).ok());
  }
}

TEST(SubspaceTest, FullCoversAllParams) {
  ConfigSpace s = SmallSpace();
  Subspace full = Subspace::Full(&s);
  EXPECT_EQ(full.num_free(), s.size());
}

TEST(SubspaceTest, DuplicateFreeIndicesIgnored) {
  ConfigSpace s = SmallSpace();
  Subspace sub(&s, {0, 0, 1}, s.Default());
  EXPECT_EQ(sub.num_free(), 2u);
  EXPECT_TRUE(sub.IsFree(0));
  EXPECT_TRUE(sub.IsFree(1));
  EXPECT_FALSE(sub.IsFree(2));
}

TEST(SubspaceTest, NeighborOnlyMovesFreeDims) {
  ConfigSpace s = SmallSpace();
  Configuration base = s.Default();
  Subspace sub(&s, {1}, base);
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    Configuration n = sub.Neighbor(base, 0.2, &rng);
    EXPECT_DOUBLE_EQ(n[0], base[0]);
    EXPECT_DOUBLE_EQ(n[2], base[2]);
    EXPECT_TRUE(s.Validate(n).ok());
  }
}

TEST(SubspaceTest, NeighborChangesSomething) {
  ConfigSpace s = SmallSpace();
  Subspace sub(&s, {0, 1}, s.Default());
  Rng rng(7);
  int changed = 0;
  for (int i = 0; i < 40; ++i) {
    Configuration n = sub.Neighbor(s.Default(), 0.3, &rng);
    if (!(n == s.Default())) ++changed;
  }
  EXPECT_GT(changed, 25);
}

TEST(SubspaceTest, ProjectOverwritesPinnedDims) {
  ConfigSpace s = SmallSpace();
  Configuration base = s.Default();
  Subspace sub(&s, {0}, base);
  Rng rng(8);
  Configuration other = s.Sample(&rng);
  Configuration proj = sub.Project(other);
  EXPECT_DOUBLE_EQ(proj[0], other[0]);
  EXPECT_DOUBLE_EQ(proj[1], base[1]);
  EXPECT_DOUBLE_EQ(proj[3], base[3]);
}

TEST(SubspaceTest, FreeUnitRoundTrip) {
  ConfigSpace s = SmallSpace();
  Subspace sub(&s, {0, 2}, s.Default());
  std::vector<double> u = {0.5, 0.9};
  Configuration c = sub.FromFreeUnit(u);
  std::vector<double> back = sub.ToFreeUnit(c);
  ASSERT_EQ(back.size(), 2u);
  // Categorical buckets quantize; numeric should round-trip closely.
  EXPECT_NEAR(back[0], u[0], 0.01);
}

}  // namespace
}  // namespace sparktune
