// Tests for approximate gradient descent (Eq. 9-11).
#include <gtest/gtest.h>

#include <cmath>

#include "bo/agd.h"
#include "model/surrogate.h"

namespace sparktune {
namespace {

class FnSurrogate final : public Surrogate {
 public:
  explicit FnSurrogate(std::function<double(const std::vector<double>&)> fn)
      : fn_(std::move(fn)) {}
  Status Fit(const std::vector<std::vector<double>>&,
             const std::vector<double>&) override {
    return Status::OK();
  }
  Prediction Predict(const std::vector<double>& x) const override {
    return {fn_(x), 0.0};
  }
  size_t num_observations() const override { return 10; }

 private:
  std::function<double(const std::vector<double>&)> fn_;
};

ConfigSpace MixedSpace() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Float("a", 0.0, 10.0, 5.0)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("b", 0.0, 10.0, 5.0)).ok());
  EXPECT_TRUE(s.Add(Parameter::Bool("flag", true)).ok());
  return s;
}

TEST(AgdTest, StepMovesDownhillOnRuntime) {
  ConfigSpace space = MixedSpace();
  // Runtime is minimized at a = 10 (decreasing in a), flat in b.
  FnSurrogate runtime([&space](const std::vector<double>& u) {
    return 1000.0 * (1.0 - u[0]);
  });
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  auto resource = [](const Configuration&) { return 50.0; };
  TuningObjective obj;
  obj.beta = 1.0;  // pure runtime
  Agd agd(&space);
  Configuration base = space.Default();
  Configuration next = agd.Step(base, runtime, encode, resource, obj);
  EXPECT_GT(next[0], base[0]);  // moved toward lower runtime
}

TEST(AgdTest, ResourceGradientPullsDownResource) {
  ConfigSpace space = MixedSpace();
  FnSurrogate runtime([](const std::vector<double>&) { return 100.0; });
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  // Resource grows with parameter b.
  auto resource = [&space](const Configuration& c) {
    return 10.0 + 5.0 * space.Get(c, "b");
  };
  TuningObjective obj;
  obj.beta = 0.0;  // pure resource
  Agd agd(&space);
  Configuration base = space.Default();
  Configuration next = agd.Step(base, runtime, encode, resource, obj);
  EXPECT_LT(next[1], base[1]);
  // Runtime-flat dimension barely moves.
  EXPECT_NEAR(next[0], base[0], 0.5);
}

TEST(AgdTest, BooleanDimensionNeverMoves) {
  ConfigSpace space = MixedSpace();
  FnSurrogate runtime([](const std::vector<double>& u) {
    return 100.0 * (u[0] + u[1] + u[2]);
  });
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  auto resource = [](const Configuration&) { return 10.0; };
  TuningObjective obj;
  obj.beta = 0.5;
  Agd agd(&space);
  Configuration base = space.Default();
  Configuration next = agd.Step(base, runtime, encode, resource, obj);
  EXPECT_DOUBLE_EQ(next[2], base[2]);
}

TEST(AgdTest, ZeroGradientReturnsBase) {
  ConfigSpace space = MixedSpace();
  FnSurrogate runtime([](const std::vector<double>&) { return 100.0; });
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  auto resource = [](const Configuration&) { return 10.0; };
  TuningObjective obj;
  obj.beta = 0.5;
  Agd agd(&space);
  Configuration base = space.Default();
  Configuration next = agd.Step(base, runtime, encode, resource, obj);
  EXPECT_TRUE(next == base);
}

TEST(AgdTest, AmplifiesStepAcrossIntegerRounding) {
  // Integer parameter with a wide range: a naive tiny step would round back
  // to the same value; amplification must push it over the edge.
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Int("n", 1, 1000, 500)).ok());
  FnSurrogate runtime([](const std::vector<double>& u) {
    return 1000.0 * u[0];  // decreasing n lowers runtime
  });
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  auto resource = [](const Configuration&) { return 10.0; };
  TuningObjective obj;
  obj.beta = 1.0;
  AgdOptions opts;
  opts.learning_rate = 1e-5;  // deliberately tiny
  Agd agd(&space, opts);
  Configuration base = space.Default();
  Configuration next = agd.Step(base, runtime, encode, resource, obj);
  EXPECT_LT(next[0], base[0]);
}

TEST(AgdTest, StepRespectsBounds) {
  ConfigSpace space = MixedSpace();
  // Huge gradient toward lower a; a must clamp at its lower bound.
  FnSurrogate runtime([](const std::vector<double>& u) {
    return 1e9 * u[0];
  });
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  auto resource = [](const Configuration&) { return 10.0; };
  TuningObjective obj;
  obj.beta = 1.0;
  AgdOptions opts;
  opts.learning_rate = 100.0;
  Agd agd(&space, opts);
  Configuration base = space.Default();
  Configuration next = agd.Step(base, runtime, encode, resource, obj);
  EXPECT_GE(next[0], 0.0);
  EXPECT_TRUE(space.Validate(next).ok());
}

}  // namespace
}  // namespace sparktune
