// Tests for the fixed-size thread pool and the ParallelFor / ForkRngs
// helpers: coverage (every index exactly once), inline fast paths, nested
// invocation safety, and thread-count-independent RNG forking.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace sparktune {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(threads, n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  // nt=1 must execute on the calling thread, in index order — this is the
  // bit-identical serial baseline every caller relies on.
  std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  ParallelFor(1, 16, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    // lint:allow(parallel-shared-write) nt=1 runs inline; the push order is the assertion under test
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroAndOneItemAreInline) {
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  // lint:allow(parallel-shared-write) n=0 never invokes the body; counting proves it
  ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(4, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    // lint:allow(parallel-shared-write) n=1 runs inline on the caller; single write
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // A worker that itself calls ParallelFor must not re-enter the pool (the
  // GP fit inside ExecutePeriodicAll does exactly this). The inner loop
  // degrades to inline execution.
  const size_t outer = 8, inner = 32;
  std::vector<std::atomic<int>> hits(outer * inner);
  for (auto& h : hits) h.store(0);
  ParallelFor(4, outer, [&](size_t i) {
    ParallelFor(4, inner, [&](size_t j) { hits[i * inner + j].fetch_add(1); });
  });
  for (size_t k = 0; k < outer * inner; ++k) EXPECT_EQ(hits[k].load(), 1);
}

TEST(ThreadPoolTest, ResultsInvariantAcrossThreadCounts) {
  // Slot-writing workloads must produce identical output at any width.
  const size_t n = 257;
  auto run = [&](int threads) {
    std::vector<double> out(n, 0.0);
    ParallelFor(threads, n, [&](size_t i) {
      double v = static_cast<double>(i);
      out[i] = v * v + 0.5 * v;
    });
    return out;
  };
  std::vector<double> serial = run(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run(threads), serial) << "threads " << threads;
  }
}

TEST(ThreadPoolTest, PoolWidthHonorsRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> peak{0}, active{0};
  pool.ParallelFor(64, [&](size_t) {
    int now = active.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    active.fetch_sub(1);
  });
  EXPECT_LE(peak.load(), 3);
  EXPECT_GE(peak.load(), 1);
}

TEST(ThreadPoolTest, ForkRngsIsDeterministicAndIndependent) {
  Rng a(123), b(123);
  std::vector<Rng> fa = ForkRngs(&a, 5);
  std::vector<Rng> fb = ForkRngs(&b, 5);
  ASSERT_EQ(fa.size(), 5u);
  // Same base seed => identical forked streams, stream by stream.
  for (size_t i = 0; i < fa.size(); ++i) {
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(fa[i].Next(), fb[i].Next()) << "stream " << i;
    }
  }
  // Distinct streams diverge from each other.
  Rng c(7);
  std::vector<Rng> fc = ForkRngs(&c, 2);
  EXPECT_NE(fc[0].Next(), fc[1].Next());
  // Consuming forks concurrently is safe and order-independent: forking
  // already happened serially, so the base stream state is fixed.
  Rng d1(99), d2(99);
  std::vector<Rng> f1 = ForkRngs(&d1, 4);
  std::vector<Rng> f2 = ForkRngs(&d2, 4);
  std::vector<uint64_t> draws1(4), draws2(4);
  ParallelFor(4, 4, [&](size_t i) { draws1[i] = f1[i].Next(); });
  for (size_t i = 0; i < 4; ++i) draws2[i] = f2[i].Next();
  EXPECT_EQ(draws1, draws2);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositiveAndCapped) {
  int n = ThreadPool::DefaultThreads();
  EXPECT_GE(n, 1);
  EXPECT_LE(n, ThreadPool::kMaxThreads);
  EXPECT_NE(ThreadPool::Global(), nullptr);
}

TEST(ThreadPoolTest, RepeatedJobsDoNotWedge) {
  // Repeated use of the global pool through the free function keeps
  // working; generations must not wedge after many small jobs.
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    ParallelFor(4, 10, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

}  // namespace
}  // namespace sparktune
