// Tests for the Spark simulator substrate: cluster placement, the
// 30-parameter space, workload validity, drift.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparksim/cluster.h"
#include "sparksim/drift.h"
#include "sparksim/hibench.h"
#include "sparksim/spark_conf.h"
#include "sparksim/workload.h"

namespace sparktune {
namespace {

TEST(ClusterTest, PlacementPacksByCoresAndMemory) {
  ClusterSpec c;
  c.num_nodes = 2;
  c.cores_per_node = 16;
  c.mem_per_node_gb = 64.0;
  // 4-core, 8 GB executors: per node min(16/4, 64/8) = 4 -> capacity 8.
  Placement p = PlaceExecutors(c, 100, 4, 8.0);
  EXPECT_EQ(p.granted_executors, 8);
  EXPECT_FALSE(p.fully_granted);
  // Memory-bound: 1-core 32 GB executors -> min(16, 2) = 2/node -> 4.
  p = PlaceExecutors(c, 100, 1, 32.0);
  EXPECT_EQ(p.granted_executors, 4);
}

TEST(ClusterTest, FullyGrantedWhenFits) {
  ClusterSpec c = ClusterSpec::HiBenchCluster();
  Placement p = PlaceExecutors(c, 10, 2, 4.0);
  EXPECT_EQ(p.granted_executors, 10);
  EXPECT_TRUE(p.fully_granted);
}

TEST(ClusterTest, OversizedExecutorGetsNothing) {
  ClusterSpec c;
  c.num_nodes = 2;
  c.cores_per_node = 8;
  c.mem_per_node_gb = 16.0;
  Placement p = PlaceExecutors(c, 4, 2, 32.0);  // memory larger than a node
  EXPECT_EQ(p.granted_executors, 0);
}

TEST(SparkConfTest, SpaceHasThirtyParameters) {
  ConfigSpace space = BuildSparkSpace(ClusterSpec::HiBenchCluster());
  EXPECT_EQ(static_cast<int>(space.size()), kNumSparkParams);
  // Table 5 head parameters exist.
  EXPECT_GE(space.IndexOf(spark_param::kExecutorInstances), 0);
  EXPECT_GE(space.IndexOf(spark_param::kMemoryStorageFraction), 0);
  EXPECT_GE(space.IndexOf(spark_param::kIoCompressionCodec), 0);
}

TEST(SparkConfTest, DecodeMatchesConfiguration) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  Configuration c = space.Default();
  space.Set(&c, spark_param::kExecutorInstances, 12);
  space.Set(&c, spark_param::kExecutorCores, 3);
  space.Set(&c, spark_param::kExecutorMemory, 6);
  space.Set(&c, spark_param::kSerializer, 1);
  space.Set(&c, spark_param::kShuffleCompress, 0);
  SparkConf conf = DecodeSparkConf(space, c);
  EXPECT_EQ(conf.executor_instances, 12);
  EXPECT_EQ(conf.executor_cores, 3);
  EXPECT_DOUBLE_EQ(conf.executor_memory_gb, 6.0);
  EXPECT_EQ(conf.serializer, Serializer::kKryo);
  EXPECT_FALSE(conf.shuffle_compress);
  EXPECT_NEAR(conf.container_mem_gb(), 6.0 + 384.0 / 1024.0, 1e-9);
}

TEST(SparkConfTest, ResourceFunctionIsWhiteBoxAndMonotone) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  Configuration c = space.Default();
  SparkConf base = DecodeSparkConf(space, c);
  double r0 = ResourceFunction(base);
  space.Set(&c, spark_param::kExecutorInstances,
            space.Get(c, spark_param::kExecutorInstances) * 2);
  double r1 = ResourceFunction(DecodeSparkConf(space, c));
  EXPECT_GT(r1, r0);
  space.Set(&c, spark_param::kExecutorMemory, 32);
  double r2 = ResourceFunction(DecodeSparkConf(space, c));
  EXPECT_GT(r2, r1);
}

TEST(SparkConfTest, ExpertRankingNamesResolve) {
  ConfigSpace space = BuildSparkSpace(ClusterSpec::ProductionGroup());
  auto ranking = ExpertParameterRanking();
  EXPECT_EQ(ranking.size(), space.size());
  for (const auto& name : ranking) {
    EXPECT_GE(space.IndexOf(name), 0) << name;
  }
  // Mirrors Table 5's top entries.
  EXPECT_EQ(ranking[0], spark_param::kExecutorInstances);
  EXPECT_EQ(ranking[1], spark_param::kExecutorMemory);
}

TEST(SparkConfTest, RangesScaleWithCluster) {
  ConfigSpace small = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  ConfigSpace big = BuildSparkSpace(ClusterSpec::ProductionGroup());
  int idx = small.IndexOf(spark_param::kExecutorInstances);
  EXPECT_LT(small.param(static_cast<size_t>(idx)).hi(),
            big.param(static_cast<size_t>(idx)).hi());
}

TEST(WorkloadTest, AllHiBenchTasksValid) {
  auto tasks = AllHiBenchTasks();
  EXPECT_EQ(tasks.size(), 16u);
  for (const auto& w : tasks) {
    EXPECT_TRUE(w.Valid()) << w.name;
    EXPECT_GE(w.DagDepth(), 2) << w.name;
    EXPECT_GT(w.input_gb, 0.0) << w.name;
  }
}

TEST(WorkloadTest, HeadlineTasksMatchPaper) {
  auto tasks = HeadlineHiBenchTasks();
  ASSERT_EQ(tasks.size(), 6u);
  std::vector<std::string> names;
  for (const auto& w : tasks) names.push_back(w.name);
  EXPECT_EQ(names, (std::vector<std::string>{"Bayes", "KMeans", "NWeight",
                                             "WordCount", "PageRank",
                                             "TeraSort"}));
}

TEST(WorkloadTest, LookupByName) {
  auto w = HiBenchTask("TeraSort");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->name, "TeraSort");
  EXPECT_FALSE(HiBenchTask("NoSuchTask").ok());
}

TEST(WorkloadTest, ShuffleOpClassification) {
  EXPECT_TRUE(IsShuffleOp(StageOp::kReduceByKey));
  EXPECT_TRUE(IsShuffleOp(StageOp::kJoin));
  EXPECT_TRUE(IsShuffleOp(StageOp::kSortByKey));
  EXPECT_FALSE(IsShuffleOp(StageOp::kMap));
  EXPECT_FALSE(IsShuffleOp(StageOp::kSource));
  EXPECT_FALSE(IsShuffleOp(StageOp::kBroadcastJoin));
}

TEST(WorkloadTest, InvalidDagRejected) {
  WorkloadSpec w;
  w.name = "bad";
  StageSpec s;
  s.op = StageOp::kMap;
  s.deps = {0};  // self/forward reference
  w.stages.push_back(s);
  EXPECT_FALSE(w.Valid());
}

TEST(DriftTest, NoneIsIdentity) {
  DriftModel d = DriftModel::None();
  for (double h : {0.0, 5.0, 100.0}) {
    EXPECT_DOUBLE_EQ(d.Multiplier(h, 1, 0), 1.0);
  }
}

TEST(DriftTest, DiurnalOscillatesAroundBase) {
  DriftModel d = DriftModel::Diurnal(0.3, 0.0);
  double lo = 10.0, hi = 0.0;
  for (int h = 0; h < 24; ++h) {
    double m = d.Multiplier(h, 1, h);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_NEAR(lo, 0.7, 0.02);
  EXPECT_NEAR(hi, 1.3, 0.02);
  // Periodicity.
  EXPECT_NEAR(d.Multiplier(3.0, 1, 0), d.Multiplier(27.0, 1, 0), 1e-9);
}

TEST(DriftTest, NoiseIsDeterministicPerExecution) {
  DriftModel d = DriftModel::Diurnal(0.2, 0.1);
  EXPECT_DOUBLE_EQ(d.Multiplier(5.0, 42, 3), d.Multiplier(5.0, 42, 3));
  EXPECT_NE(d.Multiplier(5.0, 42, 3), d.Multiplier(5.0, 42, 4));
}

TEST(DriftTest, TrendGrows) {
  DriftModel d;
  d.trend_per_day = 0.01;
  EXPECT_GT(d.Multiplier(24.0 * 30, 1, 0), d.Multiplier(0.0, 1, 0));
}

}  // namespace
}  // namespace sparktune
