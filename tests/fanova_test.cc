// Tests for fANOVA variance decomposition on synthetic functions with known
// structure.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "fanova/fanova.h"

namespace sparktune {
namespace {

void MakeData(int n, int dims, uint64_t seed,
              const std::function<double(const std::vector<double>&)>& f,
              std::vector<std::vector<double>>* x, std::vector<double>* y) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<size_t>(dims));
    for (auto& v : row) v = rng.Uniform();
    y->push_back(f(row));
    x->push_back(std::move(row));
  }
}

TEST(FanovaTest, RejectsTinyOrOutOfRangeInputs) {
  std::vector<std::vector<double>> x = {{0.1}, {0.2}};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_FALSE(Fanova::Analyze(x, y).ok());
  std::vector<std::vector<double>> bad = {{0.1}, {0.2}, {1.7}, {0.4}};
  std::vector<double> yy = {1, 2, 3, 4};
  EXPECT_FALSE(Fanova::Analyze(bad, yy).ok());
}

TEST(FanovaTest, SingleDominantMainEffect) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeData(300, 4, 21,
           [](const std::vector<double>& v) { return 10.0 * v[1] + 0.1 * v[3]; },
           &x, &y);
  auto result = Fanova::Analyze(x, y);
  ASSERT_TRUE(result.ok());
  // Feature 1 explains nearly all the variance.
  EXPECT_GT(result->main_effect[1], 0.7);
  EXPECT_LT(result->main_effect[0], 0.1);
  EXPECT_LT(result->main_effect[2], 0.1);
  EXPECT_GT(result->total_variance, 0.0);
}

TEST(FanovaTest, ImportanceFractionsBounded) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeData(200, 3, 22,
           [](const std::vector<double>& v) {
             return v[0] + 2.0 * v[1] + 3.0 * v[2];
           },
           &x, &y);
  auto result = Fanova::Analyze(x, y);
  ASSERT_TRUE(result.ok());
  double sum = std::accumulate(result->main_effect.begin(),
                               result->main_effect.end(), 0.0);
  EXPECT_LE(sum, 1.0 + 1e-6);
  for (double v : result->main_effect) EXPECT_GE(v, 0.0);
  // Monotone additive function: importance ordered by coefficient.
  EXPECT_LT(result->main_effect[0], result->main_effect[2]);
}

TEST(FanovaTest, PureInteractionShowsInPairwiseNotMain) {
  // XOR-like function: f = 1 if (x0>0.5) != (x1>0.5): zero main effects,
  // pure pairwise interaction.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeData(600, 2, 23,
           [](const std::vector<double>& v) {
             return ((v[0] > 0.5) != (v[1] > 0.5)) ? 1.0 : 0.0;
           },
           &x, &y);
  auto result = Fanova::Analyze(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->main_effect[0], 0.2);
  EXPECT_LT(result->main_effect[1], 0.2);
  EXPECT_GT(result->interaction(0, 1), 0.5);
  // CombinedImportance folds interactions into both participants.
  auto combined = result->CombinedImportance();
  EXPECT_GT(combined[0], result->main_effect[0]);
}

TEST(FanovaTest, InteractionMatrixSymmetricZeroDiagonal) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeData(200, 3, 24,
           [](const std::vector<double>& v) { return v[0] * v[1] + v[2]; },
           &x, &y);
  auto result = Fanova::Analyze(x, y);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(result->interaction(i, i), 0.0);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(result->interaction(i, j), result->interaction(j, i));
    }
  }
}

TEST(FanovaTest, PairwiseCanBeDisabled) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeData(100, 3, 25,
           [](const std::vector<double>& v) { return v[0]; }, &x, &y);
  FanovaOptions opts;
  opts.compute_pairwise = false;
  auto result = Fanova::Analyze(x, y, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->interaction.rows(), 0u);
  auto combined = result->CombinedImportance();
  EXPECT_EQ(combined, result->main_effect);
}

TEST(FanovaTest, ConstantTargetGivesZeroImportance) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeData(50, 2, 26, [](const std::vector<double>&) { return 5.0; }, &x, &y);
  auto result = Fanova::Analyze(x, y);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_variance, 0.0, 1e-9);
  EXPECT_NEAR(result->main_effect[0], 0.0, 1e-9);
}

}  // namespace
}  // namespace sparktune
