// Tests for RunHistory, in particular the hash-indexed Contains(): it must
// keep the exact semantics of the old linear scan (value equality,
// -0.0 == 0.0, NaN never matches) while being O(1) per lookup.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bo/history.h"

namespace sparktune {
namespace {

ConfigSpace TwoDSpace() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Float("a", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("b", 0.0, 1.0, 0.5)).ok());
  return s;
}

Observation Obs(Configuration c, double objective = 1.0) {
  Observation o;
  o.config = std::move(c);
  o.objective = objective;
  o.feasible = true;
  return o;
}

TEST(RunHistoryTest, ContainsMatchesExactValues) {
  ConfigSpace space = TwoDSpace();
  RunHistory h;
  Rng rng(11);
  std::vector<Configuration> added;
  for (int i = 0; i < 50; ++i) {
    added.push_back(space.Sample(&rng));
    h.Add(Obs(added.back()));
  }
  for (const Configuration& c : added) EXPECT_TRUE(h.Contains(c));
  // Any perturbation, however small, is a different configuration.
  Configuration tweaked = added[7];
  tweaked[0] = std::nextafter(tweaked[0], 2.0);
  EXPECT_FALSE(h.Contains(tweaked));
  EXPECT_FALSE(h.Contains(space.Sample(&rng)));
}

TEST(RunHistoryTest, SignedZeroHashesLikeUnsignedZero) {
  // 0.0 == -0.0 under operator==, so the hash must agree too — otherwise
  // Contains would miss a config the linear scan used to find.
  ConfigSpace space = TwoDSpace();
  Configuration pos = space.Default();
  pos[0] = 0.0;
  Configuration neg = space.Default();
  neg[0] = -0.0;
  ASSERT_TRUE(pos == neg);
  RunHistory h;
  h.Add(Obs(pos));
  EXPECT_TRUE(h.Contains(neg));
  RunHistory h2;
  h2.Add(Obs(neg));
  EXPECT_TRUE(h2.Contains(pos));
}

TEST(RunHistoryTest, NanNeverMatches) {
  ConfigSpace space = TwoDSpace();
  Configuration c = space.Default();
  c[1] = std::numeric_limits<double>::quiet_NaN();
  RunHistory h;
  h.Add(Obs(c));
  // NaN != NaN, so even the identical stored config does not "contain".
  EXPECT_FALSE(h.Contains(c));
  EXPECT_FALSE(h.Contains(space.Default()));
}

TEST(RunHistoryTest, DuplicatesAndClear) {
  ConfigSpace space = TwoDSpace();
  Configuration c = space.Default();
  RunHistory h;
  h.Add(Obs(c, 1.0));
  h.Add(Obs(c, 2.0));  // same config evaluated twice is legal
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(h.Contains(c));
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(c));
  // The index must be rebuilt correctly after Clear.
  h.Add(Obs(c));
  EXPECT_TRUE(h.Contains(c));
  EXPECT_EQ(h.size(), 1u);
}

TEST(RunHistoryTest, RepeatedAddKeepsOneIndexEntry) {
  // A periodic task re-runs its incumbent config for thousands of periods;
  // the config index must hold ONE entry per unique configuration, not one
  // per observation, or the index grows linearly with executions.
  ConfigSpace space = TwoDSpace();
  Configuration c = space.Default();
  RunHistory h;
  for (int i = 0; i < 100; ++i) h.Add(Obs(c, 1.0 + i));
  EXPECT_EQ(h.size(), 100u);
  EXPECT_EQ(h.IndexEntries(c), 1u);
  EXPECT_TRUE(h.Contains(c));

  // A distinct config gets its own (single) entry and leaves the first
  // bucket untouched.
  Configuration d = c;
  d[0] = 0.25;
  h.Add(Obs(d));
  h.Add(Obs(d));
  EXPECT_EQ(h.IndexEntries(d), 1u);
  EXPECT_EQ(h.IndexEntries(c), 1u);

  // Clear rebuilds an empty index; re-adding restores the invariant.
  h.Clear();
  EXPECT_EQ(h.IndexEntries(c), 0u);
  h.Add(Obs(c));
  h.Add(Obs(c));
  EXPECT_EQ(h.IndexEntries(c), 1u);
}

TEST(RunHistoryTest, LargeHistoryLookupsStayExact) {
  // Stress the bucket structure: many configs, some sharing coordinates.
  ConfigSpace space = TwoDSpace();
  RunHistory h;
  std::vector<Configuration> added;
  for (int i = 0; i < 400; ++i) {
    Configuration c = space.Default();
    c[0] = (i % 20) / 20.0;
    c[1] = (i / 20) / 20.0;
    added.push_back(c);
    h.Add(Obs(c));
  }
  for (const Configuration& c : added) EXPECT_TRUE(h.Contains(c));
  Configuration missing = space.Default();
  missing[0] = 0.025;  // between grid points
  missing[1] = 0.025;
  EXPECT_FALSE(h.Contains(missing));
}

}  // namespace
}  // namespace sparktune
