// Tests for the minimal JSON reader/writer used by the data repository.
#include <gtest/gtest.h>

#include "common/json.h"

namespace sparktune {
namespace {

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Number(42).Dump(), "42");
  EXPECT_EQ(Json::Number(-1.5).Dump(), "-1.5");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, EscapesSpecialCharacters) {
  Json s = Json::Str("a\"b\\c\nd");
  std::string dumped = s.Dump();
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\nd");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json o = Json::Object();
  o.Set("z", Json::Number(1));
  o.Set("a", Json::Number(2));
  EXPECT_EQ(o.Dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonTest, SetOverwrites) {
  Json o = Json::Object();
  o.Set("k", Json::Number(1));
  o.Set("k", Json::Number(9));
  EXPECT_EQ(o.size(), 1u);
  EXPECT_DOUBLE_EQ(o.Get("k")->AsNumber(), 9.0);
}

TEST(JsonTest, NestedRoundTrip) {
  Json doc = Json::Object();
  Json arr = Json::Array();
  arr.Append(Json::Number(1.25));
  arr.Append(Json::Str("x"));
  arr.Append(Json::Null());
  Json inner = Json::Object();
  inner.Set("flag", Json::Bool(true));
  arr.Append(std::move(inner));
  doc.Set("items", std::move(arr));

  auto parsed = Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  const Json* items = parsed->Get("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->size(), 4u);
  EXPECT_DOUBLE_EQ(items->at(0).AsNumber(), 1.25);
  EXPECT_EQ(items->at(1).AsString(), "x");
  EXPECT_TRUE(items->at(2).is_null());
  EXPECT_TRUE(items->at(3).GetBoolOr("flag", false));
}

TEST(JsonTest, ParseWhitespaceAndNumbers) {
  auto r = Json::Parse("  { \"a\" : [ 1 , 2.5e2 , -3 ] }  ");
  ASSERT_TRUE(r.ok());
  const Json* a = r->Get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->at(1).AsNumber(), 250.0);
  EXPECT_DOUBLE_EQ(a->at(2).AsNumber(), -3.0);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
}

TEST(JsonTest, UnicodeEscapeDecodesToUtf8) {
  auto r = Json::Parse("\"\\u00e9\"");  // é
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "\xc3\xa9");
}

TEST(JsonTest, TypedGettersWithFallbacks) {
  auto r = Json::Parse("{\"n\":3,\"s\":\"v\",\"b\":true}");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->GetNumberOr("n", -1), 3.0);
  EXPECT_DOUBLE_EQ(r->GetNumberOr("missing", -1), -1.0);
  EXPECT_EQ(r->GetStringOr("s", ""), "v");
  EXPECT_EQ(r->GetStringOr("n", "fallback"), "fallback");  // wrong type
  EXPECT_TRUE(r->GetBoolOr("b", false));
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
}

TEST(JsonTest, LargeIntegersKeepPrecision) {
  Json n = Json::Number(123456789012.0);
  EXPECT_EQ(n.Dump(), "123456789012");
}

}  // namespace
}  // namespace sparktune
