// Tests for the mixed GP kernel: symmetry, PSD, group behaviors.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "model/kernel.h"

namespace sparktune {
namespace {

std::vector<FeatureKind> MixedSchema() {
  return {FeatureKind::kNumeric, FeatureKind::kNumeric,
          FeatureKind::kCategorical, FeatureKind::kCategorical,
          FeatureKind::kDataSize};
}

std::vector<double> RandomPoint(const std::vector<FeatureKind>& schema,
                                Rng* rng) {
  std::vector<double> x(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == FeatureKind::kCategorical) {
      x[i] = static_cast<double>(rng->UniformInt(0, 2)) / 3.0 + 1.0 / 6.0;
    } else {
      x[i] = rng->Uniform();
    }
  }
  return x;
}

TEST(KernelTest, SelfSimilarityEqualsSignalVariance) {
  MixedKernel k(MixedSchema());
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    auto x = RandomPoint(k.schema(), &rng);
    EXPECT_NEAR(k.Eval(x, x), k.params().signal_variance, 1e-12);
  }
}

TEST(KernelTest, Symmetry) {
  MixedKernel k(MixedSchema());
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    auto a = RandomPoint(k.schema(), &rng);
    auto b = RandomPoint(k.schema(), &rng);
    EXPECT_DOUBLE_EQ(k.Eval(a, b), k.Eval(b, a));
  }
}

TEST(KernelTest, Matern52Properties) {
  EXPECT_DOUBLE_EQ(MixedKernel::Matern52(0.0), 1.0);
  double prev = 1.0;
  for (double r = 0.1; r < 5.0; r += 0.1) {
    double v = MixedKernel::Matern52(r);
    EXPECT_LT(v, prev);
    EXPECT_GT(v, 0.0);
    prev = v;
  }
}

TEST(KernelTest, NumericDistanceDecaysCorrelation) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  MixedKernel k(schema);
  double near = k.Eval({0.5}, {0.52});
  double far = k.Eval({0.5}, {0.95});
  EXPECT_GT(near, far);
}

TEST(KernelTest, HammingCountsMismatches) {
  std::vector<FeatureKind> schema = {FeatureKind::kCategorical,
                                     FeatureKind::kCategorical};
  KernelParams params;
  params.hamming_weight = 1.0;
  MixedKernel k(schema, params);
  double same = k.Eval({0.2, 0.8}, {0.2, 0.8});
  double one = k.Eval({0.2, 0.8}, {0.2, 0.3});
  double two = k.Eval({0.2, 0.8}, {0.7, 0.3});
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_NEAR(one, std::exp(-0.5), 1e-12);
  EXPECT_NEAR(two, std::exp(-1.0), 1e-12);
}

TEST(KernelTest, DataSizeUsesSquaredExponential) {
  std::vector<FeatureKind> schema = {FeatureKind::kDataSize};
  KernelParams params;
  params.length_datasize = 0.5;
  MixedKernel k(schema, params);
  double d = 0.3;
  EXPECT_NEAR(k.Eval({0.1}, {0.1 + d}),
              std::exp(-0.5 * d * d / 0.25), 1e-12);
}

TEST(KernelTest, GramMatrixIsPsd) {
  MixedKernel k(MixedSchema());
  Rng rng(3);
  const size_t n = 24;
  std::vector<std::vector<double>> pts;
  for (size_t i = 0; i < n; ++i) pts.push_back(RandomPoint(k.schema(), &rng));
  Matrix gram(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) gram(i, j) = k.Eval(pts[i], pts[j]);
  }
  gram.AddDiagonal(1e-8);
  EXPECT_TRUE(Cholesky::Factor(gram).ok());
}

TEST(KernelTest, LengthscaleControlsSmoothing) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  KernelParams shortp, longp;
  shortp.length_numeric = 0.1;
  longp.length_numeric = 2.0;
  MixedKernel ks(schema, shortp), kl(schema, longp);
  // With a longer lengthscale distant points stay correlated.
  EXPECT_LT(ks.Eval({0.0}, {0.5}), kl.Eval({0.0}, {0.5}));
}

// Columnar batch evaluation must reproduce the row-at-a-time walk
// bit-for-bit on any schema, including ones where whole feature kinds
// are absent and the corresponding accumulation loops never run.
void ExpectColumnarMatchesRow(const std::vector<FeatureKind>& schema,
                              size_t num_probes, uint64_t seed) {
  MixedKernel k(schema);
  Rng rng(seed);
  auto a = RandomPoint(schema, &rng);
  std::vector<std::vector<double>> bs;
  for (size_t j = 0; j < num_probes; ++j) {
    bs.push_back(RandomPoint(schema, &rng));
  }
  std::vector<double> by_row(num_probes, -1.0);
  if (num_probes > 0) k.EvalRow(a, bs, by_row.data());
  MixedKernel::ProbeColumns cols = k.PackProbes(bs);
  EXPECT_EQ(cols.count, num_probes);
  std::vector<double> columnar(num_probes, -2.0);
  MixedKernel::ColumnarScratch scratch;
  k.EvalRowColumnar(a, cols, &scratch, columnar.data());
  for (size_t j = 0; j < num_probes; ++j) {
    EXPECT_EQ(columnar[j], by_row[j]) << "probe " << j;
    EXPECT_EQ(columnar[j], k.Eval(a, bs[j])) << "probe " << j;
  }
}

TEST(KernelTest, ColumnarMatchesRowOnMixedSchema) {
  ExpectColumnarMatchesRow(MixedSchema(), 37, 101);
}

TEST(KernelTest, ColumnarMatchesRowWithoutCategoricals) {
  ExpectColumnarMatchesRow({FeatureKind::kNumeric, FeatureKind::kNumeric,
                            FeatureKind::kDataSize},
                           19, 103);
}

TEST(KernelTest, ColumnarMatchesRowWithoutNumerics) {
  ExpectColumnarMatchesRow(
      {FeatureKind::kCategorical, FeatureKind::kCategorical}, 23, 107);
}

TEST(KernelTest, ColumnarMatchesRowDataSizeOnly) {
  ExpectColumnarMatchesRow({FeatureKind::kDataSize}, 11, 109);
}

TEST(KernelTest, ColumnarHandlesEmptyProbeSet) {
  ExpectColumnarMatchesRow(MixedSchema(), 0, 113);
}

TEST(KernelTest, ColumnarScratchIsReusableAcrossRows) {
  // A single scratch must be safe to reuse for successive rows (the
  // PredictBatch row-chunk loop does exactly this).
  MixedKernel k(MixedSchema());
  Rng rng(127);
  std::vector<std::vector<double>> bs;
  for (size_t j = 0; j < 29; ++j) bs.push_back(RandomPoint(k.schema(), &rng));
  MixedKernel::ProbeColumns cols = k.PackProbes(bs);
  MixedKernel::ColumnarScratch scratch;
  for (int row = 0; row < 3; ++row) {
    auto a = RandomPoint(k.schema(), &rng);
    std::vector<double> by_row(bs.size());
    k.EvalRow(a, bs, by_row.data());
    std::vector<double> columnar(bs.size());
    k.EvalRowColumnar(a, cols, &scratch, columnar.data());
    EXPECT_EQ(columnar, by_row) << "row " << row;
  }
}

}  // namespace
}  // namespace sparktune
