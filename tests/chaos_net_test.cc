// Self-healing control plane tests (DESIGN.md §9): the deterministic
// ChaosChannel schedule and its both-ends-typed fault contract, the
// heartbeat health state machine (suspect/down/quarantine transitions,
// restart backoff, flap detection), epoch fencing at the dispatcher and
// over real sockets, supervisor manifest durability, Recover() adoption
// and fencing after a simulated supervisor SIGKILL, and the headline
// acceptance soak: wire chaos + worker SIGKILL + supervisor crash +
// heartbeat auto-restart, bit-identical to the undisturbed in-process
// oracle at nt=1 and nt=4, with and without a repository.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "net/channel.h"
#include "net/chaos.h"
#include "net/client.h"
#include "net/io.h"
#include "service/health.h"
#include "service/process_supervisor.h"
#include "service/shard_server.h"
#include "service/supervisor_manifest.h"
#include "service/wire.h"
#include "sparksim/hibench.h"
#include "sparksim/spark_conf.h"

namespace sparktune {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("sparktune-chaosnet-" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// ChaosChannel: the schedule is a pure function of its identity.
// ---------------------------------------------------------------------------

TEST(ChaosSchedule, DeterministicInSeedShardSaltAndIndex) {
  net::ChaosOptions options;
  options.seed = 1234;
  options.fault_prob = 0.5;
  options.shard = 3;
  net::ChaosChannel a(options), b(options);
  bool any_fault = false;
  for (long long i = 0; i < 256; ++i) {
    EXPECT_EQ(a.FaultAt(i), b.FaultAt(i)) << "index " << i;
    any_fault = any_fault || a.FaultAt(i) != net::ChaosFault::kNone;
  }
  ASSERT_TRUE(any_fault);

  // Changing any identity component changes the schedule somewhere.
  auto differs = [&](net::ChaosOptions other) {
    net::ChaosChannel c(other);
    for (long long i = 0; i < 256; ++i) {
      if (c.FaultAt(i) != a.FaultAt(i)) return true;
    }
    return false;
  };
  net::ChaosOptions other_seed = options;
  other_seed.seed = 1235;
  net::ChaosOptions other_shard = options;
  other_shard.shard = 4;
  net::ChaosOptions other_salt = options;
  other_salt.salt = net::kChaosServerSalt;
  EXPECT_TRUE(differs(other_seed));
  EXPECT_TRUE(differs(other_shard));
  EXPECT_TRUE(differs(other_salt));
}

TEST(ChaosSchedule, DisabledAndArmedWindowsDrawNoFaults) {
  net::ChaosChannel off;  // seed 0: disabled entirely
  EXPECT_FALSE(off.enabled());
  for (long long i = 0; i < 64; ++i) {
    EXPECT_EQ(off.FaultAt(i), net::ChaosFault::kNone);
  }

  net::ChaosOptions options;
  options.seed = 9;
  options.fault_prob = 1.0;  // every armed exchange faults...
  options.arm_after_exchanges = 10;
  net::ChaosChannel armed(options);
  for (long long i = 0; i < 10; ++i) {
    EXPECT_EQ(armed.FaultAt(i), net::ChaosFault::kNone) << i;  // ...grace
  }
  for (long long i = 10; i < 20; ++i) {
    EXPECT_NE(armed.FaultAt(i), net::ChaosFault::kNone) << i;
  }
}

// Every injected fault kind: typed on the injecting side with the pinned
// code, and typed (or cleanly decodable) on the peer side. Never a hang:
// each read carries a deadline and the test itself would time out.
TEST(ChaosChannel, EveryFaultKindIsTypedOnBothEnds) {
  net::ChaosOptions options;
  options.seed = 77;
  options.fault_prob = 1.0;  // fault every exchange; kind varies by index
  net::ChaosChannel chaos(options);

  bool seen[6] = {false, false, false, false, false, false};
  const std::string payload = R"({"ids":["a","b"],"epoch":3})";
  for (long long index = 0; index < 64; ++index) {
    const net::ChaosFault fault = chaos.FaultAt(index);
    seen[static_cast<int>(fault)] = true;
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    net::UniqueFd writer(fds[0]), reader(fds[1]);
    ASSERT_EQ(chaos.exchange_index(), index);
    Status ws = chaos.WriteFrame(writer.get(), net::MsgKind::kExecute,
                                 payload, /*deadline_ms=*/500);
    switch (fault) {
      case net::ChaosFault::kNone:
        ASSERT_TRUE(ws.ok()) << index;
        break;
      case net::ChaosFault::kTornWrite:
      case net::ChaosFault::kBitFlip:
      case net::ChaosFault::kDupFrame:
        EXPECT_EQ(ws.code(), Status::Code::kDataLoss)
            << index << ": " << ws.ToString();
        break;
      case net::ChaosFault::kDelay:
      case net::ChaosFault::kReset:
        EXPECT_EQ(ws.code(), Status::Code::kUnavailable)
            << index << ": " << ws.ToString();
        break;
    }
    writer.Reset();  // poisoned callers disconnect; emulate that here
    // Peer side: drain the stream. Valid frames must round-trip the
    // payload; failures must stay inside the transport taxonomy.
    int good_frames = 0;
    for (int hop = 0; hop < 4; ++hop) {
      auto frame = net::ReadFrame(reader.get(), /*deadline_ms=*/500);
      if (frame.ok()) {
        EXPECT_EQ(frame->payload, payload) << index;
        ++good_frames;
        continue;
      }
      const Status::Code code = frame.status().code();
      EXPECT_TRUE(code == Status::Code::kDataLoss ||
                  code == Status::Code::kInvalidArgument ||
                  code == Status::Code::kUnavailable)
          << index << ": " << frame.status().ToString();
      break;
    }
    switch (fault) {
      case net::ChaosFault::kNone:
        EXPECT_EQ(good_frames, 1) << index;
        break;
      case net::ChaosFault::kDupFrame:
        EXPECT_EQ(good_frames, 2) << index;  // both copies decode
        break;
      case net::ChaosFault::kDelay:
      case net::ChaosFault::kReset:
        EXPECT_EQ(good_frames, 0) << index;  // nothing usable arrived
        break;
      default:
        break;  // torn/flip: prefix may or may not include decodable bytes
    }
  }
  for (int kind = 1; kind < 6; ++kind) {
    EXPECT_TRUE(seen[kind]) << "fault kind " << kind
                            << " never drawn in 64 exchanges";
  }
  EXPECT_EQ(chaos.stats().exchanges, 64);
  EXPECT_EQ(chaos.stats().injected,
            chaos.stats().torn_writes + chaos.stats().bit_flips +
                chaos.stats().dup_frames + chaos.stats().delays +
                chaos.stats().resets);
}

// ---------------------------------------------------------------------------
// Heartbeat health state machine.
// ---------------------------------------------------------------------------

TEST(HealthMonitor, FailureStreaksWalkHealthySuspectDown) {
  HealthPolicy policy;
  policy.suspect_after = 2;
  policy.down_after = 4;
  ShardHealthMonitor monitor(policy);
  EXPECT_EQ(monitor.state(), ShardHealth::kHealthy);
  monitor.RecordFailure(1);
  EXPECT_EQ(monitor.state(), ShardHealth::kHealthy);
  monitor.RecordFailure(2);
  EXPECT_EQ(monitor.state(), ShardHealth::kSuspect);
  monitor.RecordSuccess();  // one good exchange clears the presumption
  EXPECT_EQ(monitor.state(), ShardHealth::kHealthy);
  EXPECT_EQ(monitor.consecutive_failures(), 0);
  for (int t = 3; t <= 6; ++t) monitor.RecordFailure(t);
  EXPECT_EQ(monitor.state(), ShardHealth::kDown);

  // Confirmed process death short-circuits the streak.
  ShardHealthMonitor dead(policy);
  dead.RecordDeath(1);
  EXPECT_EQ(dead.state(), ShardHealth::kDown);
}

TEST(HealthMonitor, RestartBackoffFollowsRetryPolicyCurve) {
  HealthPolicy policy;  // restart_backoff: base 1, cap 16
  ShardHealthMonitor monitor(policy);
  monitor.RecordDeath(1);
  EXPECT_TRUE(monitor.ShouldAttemptRestart(1));
  monitor.RecordRestartFailure(1);  // next at 1 + BackoffPeriods(1) = 2
  EXPECT_FALSE(monitor.ShouldAttemptRestart(1));
  EXPECT_TRUE(monitor.ShouldAttemptRestart(2));
  monitor.RecordRestartFailure(2);  // next at 2 + BackoffPeriods(2) = 4
  EXPECT_FALSE(monitor.ShouldAttemptRestart(3));
  EXPECT_TRUE(monitor.ShouldAttemptRestart(4));
  monitor.RecordRestartFailure(4);  // next at 4 + BackoffPeriods(3) = 8
  EXPECT_FALSE(monitor.ShouldAttemptRestart(7));
  EXPECT_TRUE(monitor.ShouldAttemptRestart(8));
  monitor.RecordRestart(8);  // success clears the failure streak
  EXPECT_EQ(monitor.state(), ShardHealth::kHealthy);
  EXPECT_EQ(monitor.restart_failures(), 0);
  EXPECT_EQ(monitor.restarts(), 1);
}

TEST(HealthMonitor, FlappingShardIsQuarantinedThenParoled) {
  HealthPolicy policy;
  policy.flap_max_restarts = 2;
  policy.flap_window_ticks = 10;
  policy.quarantine_ticks = 5;
  ShardHealthMonitor monitor(policy);

  monitor.RecordDeath(1);
  ASSERT_TRUE(monitor.ShouldAttemptRestart(1));
  monitor.RecordRestart(1);
  monitor.RecordDeath(2);
  ASSERT_TRUE(monitor.ShouldAttemptRestart(2));
  monitor.RecordRestart(2);
  monitor.RecordDeath(3);
  // Two restarts within the 10-tick window: the third attempt trips the
  // flap detector instead of restarting.
  EXPECT_FALSE(monitor.ShouldAttemptRestart(3));
  EXPECT_EQ(monitor.state(), ShardHealth::kQuarantined);
  EXPECT_EQ(monitor.quarantines(), 1);
  EXPECT_EQ(monitor.quarantined_until_tick(), 8);
  EXPECT_FALSE(monitor.ShouldAttemptRestart(7));  // still parked
  // Quarantine served: clean slate, restart allowed again.
  EXPECT_TRUE(monitor.ShouldAttemptRestart(8));
  EXPECT_EQ(monitor.state(), ShardHealth::kDown);
}

// ---------------------------------------------------------------------------
// Epoch fencing: dispatcher level, then over real sockets.
// ---------------------------------------------------------------------------

ServiceConfig TestConfig(const std::string& repo_dir = "") {
  ServiceConfig config;
  config.budget = 5;
  config.ei_stop_threshold = 0.0;
  config.expert_ranking = true;
  config.repository_dir = repo_dir;
  return config;
}

Json ConfigureBody(const ServiceConfig& config, long long epoch) {
  Json body = Json::Object();
  body.Set("config", ServiceConfigToJson(config));
  body.Set("epoch", Json::Number(static_cast<double>(epoch)));
  return body;
}

Json ExecuteBody(long long epoch) {
  Json body = Json::Object();
  body.Set("ids", Json::Array());
  body.Set("epoch", Json::Number(static_cast<double>(epoch)));
  return body;
}

TEST(EpochFence, StaleConfigureAndExecuteAreFailedPrecondition) {
  ShardServer server;
  ASSERT_TRUE(server.Handle(net::MsgKind::kConfigure,
                            ConfigureBody(TestConfig(), 3))
                  .GetBoolOr("ok", false));
  EXPECT_EQ(server.epoch(), 3);

  // A stale controller (lower epoch) is fenced on both verbs.
  Json response =
      server.Handle(net::MsgKind::kConfigure, ConfigureBody(TestConfig(), 2));
  EXPECT_FALSE(response.GetBoolOr("ok", true));
  EXPECT_EQ(response.GetStringOr("code", ""), "FailedPrecondition");
  response = server.Handle(net::MsgKind::kExecute, ExecuteBody(2));
  EXPECT_FALSE(response.GetBoolOr("ok", true));
  EXPECT_EQ(response.GetStringOr("code", ""), "FailedPrecondition");

  // The current epoch executes; a NEWER configure re-fences forward, and
  // the old epoch's execute is then rejected.
  EXPECT_TRUE(
      server.Handle(net::MsgKind::kExecute, ExecuteBody(3)).GetBoolOr(
          "ok", false));
  ASSERT_TRUE(server.Handle(net::MsgKind::kConfigure,
                            ConfigureBody(TestConfig(), 4))
                  .GetBoolOr("ok", false));
  EXPECT_EQ(server.epoch(), 4);
  response = server.Handle(net::MsgKind::kExecute, ExecuteBody(3));
  EXPECT_EQ(response.GetStringOr("code", ""), "FailedPrecondition");

  // kPing reports the fenced epoch; legacy execute without a token and
  // the current token both pass.
  response = server.Handle(net::MsgKind::kPing, Json::Object());
  EXPECT_EQ(static_cast<long long>(response.GetNumberOr("epoch", -1)), 4);
  Json legacy = Json::Object();
  legacy.Set("ids", Json::Array());
  EXPECT_TRUE(
      server.Handle(net::MsgKind::kExecute, legacy).GetBoolOr("ok", false));
  EXPECT_TRUE(
      server.Handle(net::MsgKind::kExecute, ExecuteBody(4)).GetBoolOr(
          "ok", false));
}

TEST(EpochFence, StaleEpochIsTypedOverTheWire) {
  const std::string dir = TempDir("fence-wire");
  const std::string path = dir + "/shard.sock";
  ShardServer server;
  // lint:allow(no-raw-thread) ServeShard must run concurrently with its one test client; not pooled work
  std::thread serving([&] { (void)ServeShard(path, &server); });

  net::ShardClientOptions copts;
  copts.socket_path = path;
  net::ShardClient client(copts);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(
      client.Call(net::MsgKind::kConfigure, ConfigureBody(TestConfig(), 5))
          .ok());

  // The stale-epoch execute travels the full framed round trip and comes
  // back as a TYPED kFailedPrecondition, not a dead socket.
  auto stale = client.Call(net::MsgKind::kExecute, ExecuteBody(4));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), Status::Code::kFailedPrecondition);
  EXPECT_TRUE(client.connected());  // fencing rejects the call, not the pipe
  EXPECT_TRUE(client.Call(net::MsgKind::kExecute, ExecuteBody(5)).ok());

  ASSERT_TRUE(client.Call(net::MsgKind::kShutdown, Json::Object()).ok());
  serving.join();
}

// ---------------------------------------------------------------------------
// Supervisor manifest: CRC-framed, atomic, torn copies are kDataLoss.
// ---------------------------------------------------------------------------

TEST(SupervisorManifestFile, RoundTripsAndRejectsTornCopies) {
  const std::string dir = TempDir("manifest");
  const std::string path = dir + "/supervisor.manifest";
  SupervisorManifest manifest;
  manifest.num_shards = 2;
  manifest.service = TestConfig("/tmp/repo-x");
  manifest.shards = {{/*epoch=*/3, /*pid=*/1234}, {/*epoch=*/1, /*pid=*/-1}};
  TaskManifestEntry task;
  task.id = "svc-task-0";
  task.shard = 1;
  task.periods = 9;
  task.spec.workload = "TeraSort";
  task.spec.seed = 77;
  manifest.tasks.push_back(task);
  ASSERT_TRUE(SaveSupervisorManifest(path, manifest).ok());

  auto loaded = LoadSupervisorManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_shards, 2);
  ASSERT_EQ(loaded->shards.size(), 2u);
  EXPECT_EQ(loaded->shards[0].epoch, 3);
  EXPECT_EQ(loaded->shards[0].pid, 1234);
  ASSERT_EQ(loaded->tasks.size(), 1u);
  EXPECT_EQ(loaded->tasks[0].id, "svc-task-0");
  EXPECT_EQ(loaded->tasks[0].periods, 9);
  EXPECT_EQ(loaded->tasks[0].spec.workload, "TeraSort");
  EXPECT_EQ(ServiceConfigToJson(loaded->service).Dump(),
            ServiceConfigToJson(manifest.service).Dump());

  EXPECT_EQ(LoadSupervisorManifest(dir + "/absent").status().code(),
            Status::Code::kNotFound);

  // Every truncation of the file is kDataLoss — a torn manifest can never
  // be half-trusted.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{4}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    auto torn = LoadSupervisorManifest(path);
    ASSERT_FALSE(torn.ok()) << "cut=" << cut;
    EXPECT_EQ(torn.status().code(), Status::Code::kDataLoss) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Self-healing supervisor, end to end over real processes.
// ---------------------------------------------------------------------------

struct FleetSpec {
  std::vector<std::string> ids;
  std::vector<SimTaskSpec> specs;
};

FleetSpec MakeFleet(int tasks) {
  const char* kWorkloads[] = {"WordCount", "Sort", "TeraSort", "Join"};
  FleetSpec fleet;
  for (int i = 0; i < tasks; ++i) {
    SimTaskSpec spec;
    spec.workload = kWorkloads[i % 4];
    spec.seed = 900 + static_cast<uint64_t>(i);
    fleet.ids.push_back("heal-task-" + std::to_string(i));
    fleet.specs.push_back(spec);
  }
  return fleet;
}

ProcessSupervisorOptions HealOptions(const std::string& tag) {
  ProcessSupervisorOptions options;
  options.shardd_path = SPARKTUNE_SHARDD_PATH;
  options.socket_dir = TempDir("sock-" + tag);
  options.num_shards = 2;
  options.service = TestConfig();
  options.health.auto_restart = true;
  return options;
}

TEST(SelfHealing, HeartbeatAutoRestartHealsKilledShard) {
  ProcessSupervisorOptions options = HealOptions("auto");
  ProcessSupervisor supervisor(options);
  ASSERT_TRUE(supervisor.Start().ok());
  FleetSpec fleet = MakeFleet(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(supervisor.RegisterTask(fleet.ids[i], fleet.specs[i]).ok());
  }
  (void)supervisor.Tick();
  ASSERT_TRUE(supervisor.KillShard(0).ok());
  EXPECT_EQ(supervisor.shard_health(0), ShardHealth::kDown);
  EXPECT_FALSE(supervisor.shard_alive(0));

  // The very next tick the health monitor respawns the worker — before
  // batching, so not even one slot parks — at a bumped fencing epoch.
  (void)supervisor.Tick();
  EXPECT_TRUE(supervisor.shard_alive(0));
  EXPECT_EQ(supervisor.shard_health(0), ShardHealth::kHealthy);
  EXPECT_EQ(supervisor.stats().auto_restarts, 1);
  EXPECT_EQ(supervisor.stats().parked_slots, 0);
  EXPECT_EQ(supervisor.shard_epoch(0), 2);
  EXPECT_EQ(supervisor.shard_epoch(1), 1);
  for (const std::string& id : fleet.ids) {
    EXPECT_EQ(supervisor.periods(id), 2) << id;
  }
  EXPECT_TRUE(supervisor.Shutdown().ok());
}

TEST(SelfHealing, RecoverAdoptsRunningWorkersAfterSupervisorCrash) {
  ProcessSupervisorOptions options = HealOptions("adopt");
  auto supervisor = std::make_unique<ProcessSupervisor>(options);
  ASSERT_TRUE(supervisor->Start().ok());
  FleetSpec fleet = MakeFleet(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(supervisor->RegisterTask(fleet.ids[i], fleet.specs[i]).ok());
  }
  for (int t = 0; t < 3; ++t) (void)supervisor->Tick();
  std::vector<long long> clocks;
  for (const std::string& id : fleet.ids) {
    clocks.push_back(supervisor->periods(id));
  }

  // Supervisor SIGKILL, simulated: the workers run on unsupervised.
  supervisor->Abandon();
  supervisor = std::make_unique<ProcessSupervisor>(options);
  ASSERT_TRUE(supervisor->Recover().ok());
  EXPECT_EQ(supervisor->stats().adopted_workers, 2);
  EXPECT_EQ(supervisor->stats().fenced_workers, 0);
  EXPECT_EQ(supervisor->num_live_shards(), 2);
  // Adoption keeps the manifest epochs — nothing was respawned.
  EXPECT_EQ(supervisor->shard_epoch(0), 1);
  EXPECT_EQ(supervisor->shard_epoch(1), 1);
  for (size_t i = 0; i < fleet.ids.size(); ++i) {
    EXPECT_EQ(supervisor->periods(fleet.ids[i]), clocks[i]) << fleet.ids[i];
  }
  // The adopted fleet keeps executing exactly where it left off.
  (void)supervisor->Tick();
  for (size_t i = 0; i < fleet.ids.size(); ++i) {
    EXPECT_EQ(supervisor->periods(fleet.ids[i]), clocks[i] + 1);
  }
  EXPECT_TRUE(supervisor->Shutdown().ok());
}

TEST(SelfHealing, RecoverFencesWorkersAtTheWrongEpoch) {
  ProcessSupervisorOptions options = HealOptions("fence");
  auto supervisor = std::make_unique<ProcessSupervisor>(options);
  ASSERT_TRUE(supervisor->Start().ok());
  FleetSpec fleet = MakeFleet(4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(supervisor->RegisterTask(fleet.ids[i], fleet.specs[i]).ok());
  }
  for (int t = 0; t < 2; ++t) (void)supervisor->Tick();
  const std::string manifest_path = supervisor->manifest_path();
  supervisor->Abandon();

  // Tamper with durable state: the manifest claims shard 0 should be at
  // epoch 2, but the still-running orphan answers the handshake with
  // epoch 1 — a stale incarnation. Recover must fence (SIGKILL) it and
  // respawn past the manifest epoch rather than adopt it.
  auto manifest = LoadSupervisorManifest(manifest_path);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  manifest->shards[0].epoch = 2;
  ASSERT_TRUE(SaveSupervisorManifest(manifest_path, *manifest).ok());

  supervisor = std::make_unique<ProcessSupervisor>(options);
  ASSERT_TRUE(supervisor->Recover().ok());
  EXPECT_EQ(supervisor->stats().fenced_workers, 1);
  EXPECT_EQ(supervisor->stats().adopted_workers, 1);
  EXPECT_EQ(supervisor->num_live_shards(), 2);
  EXPECT_EQ(supervisor->shard_epoch(0), 3);  // fenced past the manifest
  EXPECT_EQ(supervisor->shard_epoch(1), 1);

  // The respawned shard replayed to the acked clocks: the whole fleet
  // resumes in lockstep.
  std::vector<long long> clocks;
  for (const std::string& id : fleet.ids) {
    clocks.push_back(supervisor->periods(id));
    EXPECT_GE(clocks.back(), 2) << id;
  }
  (void)supervisor->Tick();
  for (size_t i = 0; i < fleet.ids.size(); ++i) {
    EXPECT_EQ(supervisor->periods(fleet.ids[i]), clocks[i] + 1);
  }
  EXPECT_TRUE(supervisor->Shutdown().ok());
}

// ---------------------------------------------------------------------------
// The acceptance soak: every disturbance at once, bit-identical anyway.
// ---------------------------------------------------------------------------

void ExpectSameSlot(const Result<Observation>& got,
                    const Result<Observation>& want, const std::string& id,
                    long long period) {
  ASSERT_EQ(got.ok(), want.ok())
      << id << " period " << period << ": "
      << (got.ok() ? "ok" : got.status().ToString()) << " vs "
      << (want.ok() ? "ok" : want.status().ToString());
  if (!got.ok()) return;
  EXPECT_TRUE(got->config == want->config) << id << " period " << period;
  EXPECT_EQ(got->objective, want->objective) << id << " period " << period;
  EXPECT_EQ(got->runtime_sec, want->runtime_sec)
      << id << " period " << period;
  EXPECT_EQ(got->failure, want->failure) << id << " period " << period;
  EXPECT_EQ(got->degraded, want->degraded) << id << " period " << period;
}

// Wire chaos on both directions + a worker SIGKILL + a supervisor crash
// cycle (Abandon/Recover) + heartbeat auto-restart, all at once. Every
// delivered observation must still equal the undisturbed in-process
// oracle's observation for the same period index — the generalized
// catch-up (to after-1, not before+1) covers clocks that jump while
// responses are chaos-lost.
void RunSelfHealingSoak(const std::string& tag, int threads, bool with_repo) {
  const int kTicks = 14, kTasks = 4;
  ProcessSupervisorOptions options = HealOptions(tag);
  options.service.num_threads = threads;
  if (with_repo) {
    options.service.repository_dir = TempDir("repo-" + tag);
    options.service.auto_checkpoint_periods = 2;
    options.service.checkpoint_on_phase_change = true;
  }
  options.chaos_seed = 2026;
  options.chaos_prob = 0.12;
  options.chaos_arm_exchanges = 12;

  auto supervisor = std::make_unique<ProcessSupervisor>(options);
  ASSERT_TRUE(supervisor->Start().ok());
  FleetSpec fleet = MakeFleet(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(supervisor->RegisterTask(fleet.ids[i], fleet.specs[i]).ok());
  }

  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  TuningService oracle(&space, MakeServiceOptions(TestConfig()));
  std::vector<std::unique_ptr<JobEvaluator>> oracle_evaluators;
  for (int i = 0; i < kTasks; ++i) {
    auto evaluator = BuildSimEvaluator(&space, cluster, fleet.specs[i]);
    ASSERT_TRUE(evaluator.ok());
    ASSERT_TRUE(oracle.RegisterTask(fleet.ids[i], evaluator->get()).ok());
    oracle_evaluators.push_back(std::move(evaluator).value());
  }

  long long compared = 0;
  for (int t = 1; t <= kTicks; ++t) {
    if (t == 4) {
      std::vector<int> load(2, 0);
      for (const std::string& id : fleet.ids) {
        ++load[supervisor->shard_of(id)];
      }
      ASSERT_TRUE(supervisor->KillShard(load[1] > load[0] ? 1 : 0).ok());
    }
    if (t == 9) {
      supervisor->Abandon();
      supervisor = std::make_unique<ProcessSupervisor>(options);
      ASSERT_TRUE(supervisor->Recover().ok());
    }
    std::vector<long long> before(fleet.ids.size());
    for (size_t i = 0; i < fleet.ids.size(); ++i) {
      before[i] = supervisor->periods(fleet.ids[i]);
    }
    std::vector<Result<Observation>> slots = supervisor->Tick();
    ASSERT_EQ(slots.size(), fleet.ids.size());
    for (size_t i = 0; i < fleet.ids.size(); ++i) {
      const long long after = supervisor->periods(fleet.ids[i]);
      if (after == before[i]) {
        // No period consumed this tick (parked shard, chaos-lost
        // exchange, or a stale duplicated response): a failed slot must
        // stay typed kUnavailable — never a crash, hang, or raw error.
        if (!slots[i].ok()) {
          EXPECT_EQ(slots[i].status().code(), Status::Code::kUnavailable)
              << fleet.ids[i] << " tick " << t << ": "
              << slots[i].status().ToString();
        }
        continue;
      }
      while (oracle.periods(fleet.ids[i]) < after - 1) {
        (void)oracle.ExecutePeriodic(fleet.ids[i]);
      }
      Result<Observation> want = oracle.ExecutePeriodic(fleet.ids[i]);
      ++compared;
      ExpectSameSlot(slots[i], want, fleet.ids[i], after - 1);
    }
  }
  EXPECT_GT(compared, 0);
  EXPECT_EQ(supervisor->stats().kills, 0);  // pre-crash kill was carried
  EXPECT_EQ(supervisor->stats().recoveries, 1);
  (void)supervisor->Shutdown();
}

TEST(SelfHealing, SoakIsBitIdenticalSingleThread) {
  RunSelfHealingSoak("soak-nt1", 1, /*with_repo=*/false);
}

TEST(SelfHealing, SoakIsBitIdenticalFourThreads) {
  RunSelfHealingSoak("soak-nt4", 4, /*with_repo=*/false);
}

TEST(SelfHealing, SoakWithRepositoryIsBitIdenticalSingleThread) {
  RunSelfHealingSoak("soak-repo-nt1", 1, /*with_repo=*/true);
}

TEST(SelfHealing, SoakWithRepositoryIsBitIdenticalFourThreads) {
  RunSelfHealingSoak("soak-repo-nt4", 4, /*with_repo=*/true);
}

}  // namespace
}  // namespace sparktune
