// Parameter-effect tests for the simulator: each tuning knob the paper's
// search space exposes must have its documented, directionally-correct
// effect on the runtime model. These pin the response surface the tuner
// learns from.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "sparksim/hibench.h"
#include "sparksim/runtime_model.h"

namespace sparktune {
namespace {

class SimEffectsTest : public ::testing::Test {
 protected:
  SimEffectsTest()
      : cluster_(ClusterSpec::HiBenchCluster()),
        space_(BuildSparkSpace(cluster_)) {
    SimOptions opts;
    opts.noise_sigma = 0.0;
    sim_ = std::make_unique<SparkSimulator>(cluster_, opts);
  }

  double Runtime(const std::string& task,
                 const std::function<void(Configuration*)>& edit,
                 double gb = -1.0) const {
    auto w = HiBenchTask(task);
    EXPECT_TRUE(w.ok());
    Configuration c = space_.Default();
    edit(&c);
    SparkConf conf = DecodeSparkConf(space_, space_.Legalize(c));
    ExecutionResult r =
        sim_->Execute(*w, conf, gb > 0 ? gb : w->input_gb, 3);
    EXPECT_FALSE(r.failed) << SimFailureKindName(r.failure);
    return r.runtime_sec;
  }

  ClusterSpec cluster_;
  ConfigSpace space_;
  std::unique_ptr<SparkSimulator> sim_;
};

TEST_F(SimEffectsTest, ShuffleCompressionSavesWireTimeOnFastCodec) {
  namespace sp = spark_param;
  double with = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kShuffleCompress, 1);
    space_.Set(c, sp::kIoCompressionCodec, 0);  // lz4
  });
  double without = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kShuffleCompress, 0);
  });
  EXPECT_LT(with, without);
}

TEST_F(SimEffectsTest, ZstdTradesCpuForBytes) {
  namespace sp = spark_param;
  // zstd compresses harder (fewer bytes moved) but costs more CPU; on a
  // network-bound shuffle it can win, but it must always differ from lz4.
  double lz4 = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kIoCompressionCodec, 0);
  });
  double zstd = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kIoCompressionCodec, 2);
  });
  EXPECT_NE(lz4, zstd);
  EXPECT_NEAR(lz4 / zstd, 1.0, 0.6);  // same order of magnitude
}

TEST_F(SimEffectsTest, LargerShuffleFileBufferReducesFlushOverhead) {
  namespace sp = spark_param;
  double small = Runtime("Sort", [&](Configuration* c) {
    space_.Set(c, sp::kShuffleFileBuffer, 8);
  });
  double large = Runtime("Sort", [&](Configuration* c) {
    space_.Set(c, sp::kShuffleFileBuffer, 256);
  });
  EXPECT_LT(large, small);
}

TEST_F(SimEffectsTest, MaxSizeInFlightReducesFetchRoundTrips) {
  namespace sp = spark_param;
  double small = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kReducerMaxSizeInFlight, 8);
  });
  double large = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kReducerMaxSizeInFlight, 256);
  });
  EXPECT_LT(large, small);
}

TEST_F(SimEffectsTest, MemoryFractionRelievesSpillPressure) {
  namespace sp = spark_param;
  // Force a spill-prone shape, then grow the unified region.
  auto shape = [&](Configuration* c, double fraction) {
    space_.Set(c, sp::kExecutorMemory, 4);
    space_.Set(c, sp::kExecutorCores, 2);
    space_.Set(c, sp::kDefaultParallelism, 512);
    space_.Set(c, sp::kMemoryFraction, fraction);
  };
  double tight = Runtime("Bayes", [&](Configuration* c) { shape(c, 0.3); });
  double roomy = Runtime("Bayes", [&](Configuration* c) { shape(c, 0.9); });
  EXPECT_LT(roomy, tight);
}

TEST_F(SimEffectsTest, StorageFractionMattersForCachedIterativeJobs) {
  namespace sp = spark_param;
  // KMeans caches its training set; starving the storage region forces
  // recomputation across iterations.
  auto shape = [&](Configuration* c, double storage) {
    space_.Set(c, sp::kExecutorInstances, 4);
    space_.Set(c, sp::kExecutorMemory, 4);
    space_.Set(c, sp::kMemoryStorageFraction, storage);
  };
  double starved =
      Runtime("KMeans", [&](Configuration* c) { shape(c, 0.1); });
  double fed = Runtime("KMeans", [&](Configuration* c) { shape(c, 0.9); });
  EXPECT_LT(fed, starved);
}

TEST_F(SimEffectsTest, RddCompressShrinksCacheFootprint) {
  namespace sp = spark_param;
  // With compressed RDD caching, the same storage budget holds more data,
  // so an iterative job under cache pressure speeds up.
  auto shape = [&](Configuration* c, bool compress) {
    space_.Set(c, sp::kExecutorInstances, 3);
    space_.Set(c, sp::kExecutorMemory, 2);
    space_.Set(c, sp::kRddCompress, compress ? 1 : 0);
  };
  double raw =
      Runtime("PageRank", [&](Configuration* c) { shape(c, false); });
  double packed =
      Runtime("PageRank", [&](Configuration* c) { shape(c, true); });
  EXPECT_LT(packed, raw * 1.05);  // at worst a small materialization cost
}

TEST_F(SimEffectsTest, ParallelismHasAnInteriorOptimumOnSmallJobs) {
  namespace sp = spark_param;
  // On a small (4 GB) SQL job, 8 partitions make oversized spilling tasks
  // and 2000 partitions drown in scheduling overhead; a moderate count
  // wins. (On 100 GB+ jobs more partitions keep helping much longer.)
  auto run = [&](int partitions) {
    return Runtime("Aggregation", [&](Configuration* c) {
      space_.Set(c, sp::kSqlShufflePartitions, partitions);
      space_.Set(c, sp::kDefaultParallelism, partitions);
      space_.Set(c, sp::kExecutorInstances, 4);
      space_.Set(c, sp::kExecutorCores, 2);
      space_.Set(c, sp::kExecutorMemory, 1);
    }, /*gb=*/4.0);
  };
  double low = run(8);
  double mid = run(64);
  double high = run(2000);
  EXPECT_LT(mid, low);
  EXPECT_LT(mid, high);
}

TEST_F(SimEffectsTest, TinyNetworkTimeoutKillsBigShuffles) {
  namespace sp = spark_param;
  auto w = HiBenchTask("TeraSort");
  Configuration c = space_.Default();
  space_.Set(&c, sp::kNetworkTimeout, 60);
  space_.Set(&c, sp::kExecutorCores, 8);
  space_.Set(&c, sp::kDefaultParallelism, 8);  // giant fetches per task
  space_.Set(&c, sp::kExecutorMemory, 48);
  space_.Set(&c, sp::kExecutorMemoryOverhead, 4096);
  space_.Set(&c, sp::kReducerMaxSizeInFlight, 8);
  SparkConf conf = DecodeSparkConf(space_, space_.Legalize(c));
  ExecutionResult r = sim_->Execute(*w, conf, 2000.0, 3);
  if (r.failed) {
    EXPECT_EQ(r.failure, SimFailureKind::kFetchTimeout);
  }
  // With sane parallelism and a long timeout the fetch-timeout failure
  // cannot trigger.
  space_.Set(&c, sp::kNetworkTimeout, 600);
  space_.Set(&c, sp::kDefaultParallelism, 384);
  space_.Set(&c, sp::kExecutorMemoryOverhead, 4096);
  conf = DecodeSparkConf(space_, space_.Legalize(c));
  ExecutionResult ok = sim_->Execute(*w, conf, 2000.0, 3);
  EXPECT_NE(ok.failure, SimFailureKind::kFetchTimeout);
}

TEST_F(SimEffectsTest, KryoBufferPenaltyWhenUndersized) {
  namespace sp = spark_param;
  double small = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kSerializer, 1);
    space_.Set(c, sp::kKryoBufferKb, 16);
  });
  double big = Runtime("TeraSort", [&](Configuration* c) {
    space_.Set(c, sp::kSerializer, 1);
    space_.Set(c, sp::kKryoBufferKb, 256);
  });
  EXPECT_LT(big, small);
}

TEST_F(SimEffectsTest, MoreDriverCoresCutSchedulingOverheadOnManyTasks) {
  namespace sp = spark_param;
  auto shape = [&](Configuration* c, int cores) {
    space_.Set(c, sp::kDefaultParallelism, 2000);
    space_.Set(c, sp::kDriverCores, cores);
  };
  double one = Runtime("WordCount", [&](Configuration* c) { shape(c, 1); });
  double eight = Runtime("WordCount", [&](Configuration* c) { shape(c, 8); });
  EXPECT_LT(eight, one);
}

TEST_F(SimEffectsTest, ExecutorOverProvisioningWastesResourcesNotTime) {
  namespace sp = spark_param;
  // Once partitions < slots, extra executors stop helping runtime but keep
  // inflating the resource rate — the headroom the paper's tuner reclaims.
  auto shape = [&](Configuration* c, int instances) {
    space_.Set(c, sp::kDefaultParallelism, 64);
    space_.Set(c, sp::kExecutorInstances, instances);
    space_.Set(c, sp::kExecutorCores, 4);
  };
  Configuration c64 = space_.Default(), c128 = space_.Default();
  shape(&c64, 16);   // 64 slots = 64 partitions
  shape(&c128, 64);  // 256 slots for 64 partitions
  auto w = HiBenchTask("WordCount");
  SparkConf conf64 = DecodeSparkConf(space_, space_.Legalize(c64));
  SparkConf conf128 = DecodeSparkConf(space_, space_.Legalize(c128));
  ExecutionResult r64 = sim_->Execute(*w, conf64, w->input_gb, 3);
  ExecutionResult r128 = sim_->Execute(*w, conf128, w->input_gb, 3);
  ASSERT_FALSE(r64.failed);
  ASSERT_FALSE(r128.failed);
  // Runtime barely changes; resource rate quadruples.
  EXPECT_NEAR(r128.runtime_sec / r64.runtime_sec, 1.0, 0.35);
  EXPECT_GT(r128.resource_rate, r64.resource_rate * 3.0);
}

}  // namespace
}  // namespace sparktune
