// Tests for tools/sparktune_lint: every rule id fires on its seeded
// fixture at the exact expected line, clean counterparts stay silent,
// and suppression annotations behave as documented.
#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "lint.h"

namespace {

using sparktune::lint::Finding;
using sparktune::lint::LintFileOnDisk;

using RuleLine = std::pair<std::string, int>;

std::vector<RuleLine> RuleLines(const std::vector<Finding>& fs) {
  std::vector<RuleLine> out;
  for (const Finding& f : fs) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> LintFixture(const std::string& rel) {
  return LintFileOnDisk(std::string(LINT_FIXTURE_DIR) + "/" + rel);
}

void ExpectFindings(const std::string& rel, std::vector<RuleLine> want) {
  std::vector<RuleLine> got = RuleLines(LintFixture(rel));
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << "fixture: " << rel;
}

TEST(LintRules, BannedCPrng) {
  ExpectFindings("bad_rand.cc", {{"no-rand", 6}, {"no-rand", 7}});
}

TEST(LintRules, RandomDevice) {
  ExpectFindings("bad_random_device.cc", {{"no-random-device", 5}});
}

TEST(LintRules, WallClock) {
  // Line 8 carries two reads: system_clock and its argless now().
  ExpectFindings("bad_wall_clock.cc", {{"no-wall-clock", 7},
                                       {"no-wall-clock", 8},
                                       {"no-wall-clock", 8},
                                       {"no-wall-clock", 9}});
}

TEST(LintRules, RawThread) {
  ExpectFindings("bad_raw_thread.cc",
                 {{"no-raw-thread", 9}, {"no-raw-thread", 11}});
}

TEST(LintRules, NondetReduce) {
  // Line 9 has both std::reduce and std::execution.
  ExpectFindings("bad_nondet_reduce.cc", {{"no-nondet-reduce", 8},
                                          {"no-nondet-reduce", 9},
                                          {"no-nondet-reduce", 9}});
}

TEST(LintRules, FloatAccumInLinalgScope) {
  ExpectFindings("linalg/bad_float_accum.cc",
                 {{"no-float-accum", 7}, {"no-float-accum", 9}});
}

TEST(LintRules, UnorderedIteration) {
  ExpectFindings("bad_unordered_iter.cc",
                 {{"no-unordered-iter", 10}, {"no-unordered-iter", 18}});
}

TEST(LintRules, RngForkRequired) {
  ExpectFindings("bad_rng_fork.cc",
                 {{"rng-fork-required", 12}, {"rng-fork-required", 13}});
}

TEST(LintRules, RngRefCapture) {
  ExpectFindings("bad_rng_capture.cc",
                 {{"no-rng-ref-capture", 10}, {"rng-fork-required", 11}});
}

TEST(LintRules, MutableStatic) {
  ExpectFindings("bad_mutable_static.cc", {{"mutable-static", 7},
                                           {"mutable-static", 9},
                                           {"mutable-static", 12}});
}

TEST(LintRules, BadAllow) {
  // A reason-less allow is itself a finding and does not suppress the
  // violation beneath it; an unknown rule id is a finding too.
  ExpectFindings("bad_allow.cc",
                 {{"bad-allow", 7}, {"no-rand", 8}, {"bad-allow", 9}});
}

TEST(LintRules, ParallelSharedWrite) {
  ExpectFindings("bad_parallel_shared_write.cc",
                 {{"parallel-shared-write", 13},
                  {"parallel-shared-write", 14},
                  {"parallel-shared-write", 15},
                  {"parallel-shared-write", 22}});
}

TEST(LintRules, NoAbortInLibraryScope) {
  ExpectFindings("src/bad_abort.cc",
                 {{"no-abort", 6}, {"no-abort", 7}, {"no-abort", 8}});
}

TEST(LintRules, NoAbortOnlyAppliesToLibraryPaths) {
  // The identical source outside src/ is process-owning code (bench, tests,
  // tools) and may terminate.
  ExpectFindings("bad_abort_outside_src.cc", {});
}

TEST(LintClean, ForkedRngPattern) { ExpectFindings("clean_rng_fork.cc", {}); }

TEST(LintClean, AssertionsAndAllowedExits) {
  ExpectFindings("src/clean_abort.cc", {});
}

TEST(LintClean, AnnotatedState) {
  ExpectFindings("clean_mutable_static.cc", {});
}

TEST(LintClean, SafeUnorderedUse) {
  ExpectFindings("clean_unordered_iter.cc", {});
}

TEST(LintClean, ReasonedSuppressions) {
  ExpectFindings("clean_suppressed.cc", {});
}

TEST(LintClean, ParallelTaskOwnedAndGuardedWrites) {
  ExpectFindings("clean_parallel_shared_write.cc", {});
}

TEST(LintMeta, EveryRuleIdIsExercisedByTheCorpus) {
  // Union of findings across all bad_* fixtures must cover the catalogue,
  // so a rule cannot silently stop firing.
  const std::vector<std::string> fixtures = {
      "bad_rand.cc",           "bad_random_device.cc", "bad_wall_clock.cc",
      "bad_raw_thread.cc",     "bad_nondet_reduce.cc", "linalg/bad_float_accum.cc",
      "bad_unordered_iter.cc", "bad_rng_fork.cc",      "bad_rng_capture.cc",
      "bad_mutable_static.cc", "bad_allow.cc",         "src/bad_abort.cc",
      "bad_parallel_shared_write.cc",
  };
  std::set<std::string> fired;
  for (const std::string& f : fixtures) {
    for (const Finding& finding : LintFixture(f)) fired.insert(finding.rule);
  }
  for (const std::string& id : sparktune::lint::RuleIds()) {
    EXPECT_TRUE(fired.count(id)) << "rule never fired in corpus: " << id;
  }
}

TEST(LintMeta, FormatIncludesFileLineRuleAndHint) {
  Finding f{"src/foo.cc", 12, "no-rand", "msg", "do better"};
  std::string s = sparktune::lint::FormatFinding(f);
  EXPECT_NE(s.find("src/foo.cc:12"), std::string::npos);
  EXPECT_NE(s.find("[no-rand]"), std::string::npos);
  EXPECT_NE(s.find("do better"), std::string::npos);
}

}  // namespace
