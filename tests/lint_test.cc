// Tests for tools/sparktune_lint: every rule id fires on its seeded
// fixture at the exact expected line, clean counterparts stay silent,
// suppression annotations behave as documented, the cross-TU rules see
// through file boundaries (two-file fixture pairs), and the CLI honors
// its exit-code / --format / --fix contracts.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "gtest/gtest.h"
#include "index.h"
#include "lint.h"

namespace {

using sparktune::Json;
using sparktune::lint::Finding;
using sparktune::lint::LintFileOnDisk;
using sparktune::lint::LintFilesIndexed;

using RuleLine = std::pair<std::string, int>;

std::vector<RuleLine> RuleLines(const std::vector<Finding>& fs) {
  std::vector<RuleLine> out;
  for (const Finding& f : fs) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

std::string FixturePath(const std::string& rel) {
  return std::string(LINT_FIXTURE_DIR) + "/" + rel;
}

std::vector<Finding> LintFixture(const std::string& rel) {
  return LintFileOnDisk(FixturePath(rel));
}

void ExpectFindings(const std::string& rel, std::vector<RuleLine> want) {
  std::vector<RuleLine> got = RuleLines(LintFixture(rel));
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << "fixture: " << rel;
}

// Two-phase lint of a fixture pair: the header is indexed together with
// the .cc, which is what arms the cross-TU rules.
std::vector<Finding> LintFixturePair(const std::string& header,
                                     const std::string& cc) {
  return LintFilesIndexed({FixturePath(header), FixturePath(cc)});
}

void ExpectIndexedFindings(const std::string& header, const std::string& cc,
                           std::vector<RuleLine> want) {
  std::vector<RuleLine> got = RuleLines(LintFixturePair(header, cc));
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << "fixture pair: " << header << " + " << cc;
}

// Run the built CLI; returns its exit code, captures stdout+stderr.
int RunCli(const std::string& args, std::string* output) {
  std::string cmd = std::string(LINT_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return -1;
  char buf[4096];
  output->clear();
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) output->append(buf, n);
  int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// Copy fixture files into a fresh temp dir (for --fix, which rewrites).
class TempTree {
 public:
  TempTree() {
    dir_ = std::filesystem::temp_directory_path() /
           ("lint_fix_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~TempTree() { std::filesystem::remove_all(dir_); }
  std::string Stage(const std::string& rel) {
    std::filesystem::path dst = dir_ / std::filesystem::path(rel).filename();
    std::filesystem::copy_file(FixturePath(rel), dst);
    return dst.string();
  }
  std::string Read(const std::string& staged) {
    std::ifstream in(staged);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  std::filesystem::path dir_;
};

TEST(LintRules, BannedCPrng) {
  ExpectFindings("bad_rand.cc", {{"no-rand", 6}, {"no-rand", 7}});
}

TEST(LintRules, RandomDevice) {
  ExpectFindings("bad_random_device.cc", {{"no-random-device", 5}});
}

TEST(LintRules, WallClock) {
  // Line 8 carries two reads: system_clock and its argless now().
  ExpectFindings("bad_wall_clock.cc", {{"no-wall-clock", 7},
                                       {"no-wall-clock", 8},
                                       {"no-wall-clock", 8},
                                       {"no-wall-clock", 9}});
}

TEST(LintRules, RawThread) {
  ExpectFindings("bad_raw_thread.cc",
                 {{"no-raw-thread", 9}, {"no-raw-thread", 11}});
}

TEST(LintRules, NondetReduce) {
  // Line 9 has both std::reduce and std::execution.
  ExpectFindings("bad_nondet_reduce.cc", {{"no-nondet-reduce", 8},
                                          {"no-nondet-reduce", 9},
                                          {"no-nondet-reduce", 9}});
}

TEST(LintRules, FloatAccumInLinalgScope) {
  ExpectFindings("linalg/bad_float_accum.cc",
                 {{"no-float-accum", 7}, {"no-float-accum", 9}});
}

TEST(LintRules, UnorderedIteration) {
  ExpectFindings("bad_unordered_iter.cc",
                 {{"no-unordered-iter", 10}, {"no-unordered-iter", 18}});
}

TEST(LintRules, RngForkRequired) {
  ExpectFindings("bad_rng_fork.cc",
                 {{"rng-fork-required", 12}, {"rng-fork-required", 13}});
}

TEST(LintRules, RngRefCapture) {
  ExpectFindings("bad_rng_capture.cc",
                 {{"no-rng-ref-capture", 10}, {"rng-fork-required", 11}});
}

TEST(LintRules, MutableStatic) {
  ExpectFindings("bad_mutable_static.cc", {{"mutable-static", 7},
                                           {"mutable-static", 9},
                                           {"mutable-static", 12}});
}

TEST(LintRules, BadAllow) {
  // A reason-less allow is itself a finding and does not suppress the
  // violation beneath it; an unknown rule id is a finding too.
  ExpectFindings("bad_allow.cc",
                 {{"bad-allow", 7}, {"no-rand", 8}, {"bad-allow", 9}});
}

TEST(LintRules, ParallelSharedWrite) {
  ExpectFindings("bad_parallel_shared_write.cc",
                 {{"parallel-shared-write", 13},
                  {"parallel-shared-write", 14},
                  {"parallel-shared-write", 15},
                  {"parallel-shared-write", 22}});
}

TEST(LintRules, NoAbortInLibraryScope) {
  ExpectFindings("src/bad_abort.cc",
                 {{"no-abort", 6}, {"no-abort", 7}, {"no-abort", 8}});
}

TEST(LintRules, NoAbortOnlyAppliesToLibraryPaths) {
  // The identical source outside src/ is process-owning code (bench, tests,
  // tools) and may terminate.
  ExpectFindings("bad_abort_outside_src.cc", {});
}

TEST(LintClean, ForkedRngPattern) { ExpectFindings("clean_rng_fork.cc", {}); }

TEST(LintClean, AssertionsAndAllowedExits) {
  ExpectFindings("src/clean_abort.cc", {});
}

TEST(LintClean, AnnotatedState) {
  ExpectFindings("clean_mutable_static.cc", {});
}

TEST(LintClean, SafeUnorderedUse) {
  ExpectFindings("clean_unordered_iter.cc", {});
}

TEST(LintClean, ReasonedSuppressions) {
  ExpectFindings("clean_suppressed.cc", {});
}

TEST(LintClean, ParallelTaskOwnedAndGuardedWrites) {
  ExpectFindings("clean_parallel_shared_write.cc", {});
}

// ---------------------------------------------------------------------------
// Cross-TU rules (two-file fixture pairs, phase-1 index armed).
// ---------------------------------------------------------------------------

TEST(LintCrossTU, UnorderedMemberIterSeesAcrossFiles) {
  ExpectIndexedFindings("idx/registry.h", "idx/bad_member_iter.cc",
                        {{"unordered-member-iter", 14},
                         {"unordered-member-iter", 21}});
}

TEST(LintCrossTU, UnorderedMemberIterSilentWithoutIndex) {
  // The same file linted per-file (no index) shows nothing — this is the
  // exact gap the two-phase analysis closes.
  ExpectFindings("idx/bad_member_iter.cc", {});
}

TEST(LintCrossTU, GuardDisciplineNotHeldEarlyUnlockAndDeferred) {
  ExpectIndexedFindings("idx/registry.h", "idx/bad_guard.cc",
                        {{"guard-discipline", 13},
                         {"guard-discipline", 20},
                         {"guard-discipline", 28}});
}

TEST(LintCrossTU, RngRefEscapeThroughIndexedHelper) {
  ExpectIndexedFindings("idx/rng_helpers.h", "idx/bad_rng_escape.cc",
                        {{"rng-fork-required", 15},
                         {"rng-ref-escape", 15},
                         {"rng-ref-escape", 17}});
}

TEST(LintCrossTU, CleanCounterpartsStaySilent) {
  ExpectIndexedFindings("idx/registry.h", "idx/clean_member_iter.cc", {});
  ExpectIndexedFindings("idx/registry.h", "idx/clean_guard.cc", {});
  ExpectIndexedFindings("idx/rng_helpers.h", "idx/clean_rng_escape.cc", {});
}

TEST(LintCrossTU, AliasedMembersTriggerUnorderedMemberIter) {
  ExpectIndexedFindings("idx/alias_types.h", "idx/bad_alias_iter.cc",
                        {{"unordered-member-iter", 15},
                         {"unordered-member-iter", 23},
                         {"unordered-member-iter", 30}});
}

TEST(LintCrossTU, AliasedMembersSilentWithoutIndex) {
  // Per-file linting cannot see through the alias declared in the header:
  // the exact laundering the alias pre-pass closes.
  ExpectFindings("idx/bad_alias_iter.cc", {});
}

TEST(LintCrossTU, AliasedCleanCounterpartStaysSilent) {
  ExpectIndexedFindings("idx/alias_types.h", "idx/clean_alias_iter.cc", {});
}

TEST(LintCrossTU, IndexRecordsAliasesTransitively) {
  sparktune::lint::SymbolIndex index =
      sparktune::lint::BuildIndex({FixturePath("idx/alias_types.h"),
                                   FixturePath("idx/bad_alias_iter.cc")});
  // Direct alias, alias-of-alias, and the typedef spelling all classify.
  EXPECT_TRUE(index.IsUnorderedAlias("ScoreMap"));
  EXPECT_TRUE(index.IsUnorderedAlias("CacheMap"));
  EXPECT_TRUE(index.IsUnorderedAlias("IdMap"));
  EXPECT_TRUE(index.IsMutexAlias("Guard"));
  // Ordered alias must not classify as unordered.
  EXPECT_FALSE(index.IsUnorderedAlias("Rows"));
  EXPECT_FALSE(index.IsUnorderedAlias("NoSuchAlias"));
  EXPECT_GE(index.alias_count(), 5u);
  // Members declared through aliases classify like literal spellings.
  EXPECT_NE(index.FindUnorderedMember("scores_"), nullptr);
  EXPECT_NE(index.FindUnorderedMember("cache_"), nullptr);
  EXPECT_NE(index.FindUnorderedMember("ids_"), nullptr);
  EXPECT_EQ(index.FindUnorderedMember("rows_"), nullptr);
  EXPECT_TRUE(index.IsMutexMember("alias_mu_"));
  const auto* hits = index.FindGuardedMember("alias_hits_");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->guarded_by, "alias_mu_");
}

TEST(LintCrossTU, IndexRecordsMembersAndSignatures) {
  sparktune::lint::SymbolIndex index =
      sparktune::lint::BuildIndex({FixturePath("idx/registry.h"),
                                   FixturePath("idx/rng_helpers.h")});
  const auto* scores = index.FindUnorderedMember("scores_");
  ASSERT_NE(scores, nullptr);
  EXPECT_EQ(scores->cls, "Registry");
  EXPECT_TRUE(scores->unordered);
  const auto* hits = index.FindGuardedMember("hits_");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->guarded_by, "mu_");
  EXPECT_TRUE(index.IsMutexMember("mu_"));
  const auto* fn = index.FindRngRefFunction("SampleCost");
  ASSERT_NE(fn, nullptr);
  ASSERT_EQ(fn->rng_ref_params.size(), 1u);
  EXPECT_EQ(fn->rng_ref_params[0], "rng");
  // Decl-site allow on tags_ is recorded and blesses every use.
  const auto* tags = index.FindUnorderedMember("tags_");
  ASSERT_NE(tags, nullptr);
  ASSERT_EQ(tags->decl_allows.size(), 1u);
  EXPECT_EQ(tags->decl_allows[0], "unordered-member-iter");
}

// ---------------------------------------------------------------------------
// Output formats & exit codes.
// ---------------------------------------------------------------------------

TEST(LintOutput, ExitCodeContract) {
  using sparktune::lint::ExitCodeForFindings;
  EXPECT_EQ(ExitCodeForFindings({}), 0);
  EXPECT_EQ(ExitCodeForFindings({{"a.cc", 1, "no-rand", "m", "h"}}), 1);
  EXPECT_EQ(ExitCodeForFindings({{"a.cc", 1, "no-rand", "m", "h"},
                                 {"b.cc", 0, "io-error", "m", ""}}),
            2);
}

TEST(LintOutput, JsonMatchesSchemaAndRoundTrips) {
  std::vector<Finding> findings =
      LintFixturePair("idx/registry.h", "idx/bad_guard.cc");
  ASSERT_EQ(findings.size(), 3u);
  auto parsed = Json::Parse(sparktune::lint::FindingsToJson(findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Json& doc = parsed.value();
  EXPECT_EQ(doc.GetStringOr("schema", ""), "sparktune-lint-findings-v1");
  EXPECT_EQ(doc.GetNumberOr("count", -1), 3.0);
  const Json* arr = doc.Get("findings");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->size(), 3u);
  for (size_t i = 0; i < arr->size(); ++i) {
    const Json& f = arr->at(i);
    EXPECT_EQ(f.GetStringOr("rule", ""), "guard-discipline");
    EXPECT_TRUE(f.Has("file"));
    EXPECT_TRUE(f.Has("line"));
    EXPECT_TRUE(f.Has("message"));
    EXPECT_TRUE(f.Has("hint"));
  }
}

TEST(LintOutput, SarifIsWellFormed) {
  std::vector<Finding> findings =
      LintFixturePair("idx/registry.h", "idx/bad_member_iter.cc");
  auto parsed = Json::Parse(sparktune::lint::FindingsToSarif(findings));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Json& doc = parsed.value();
  EXPECT_EQ(doc.GetStringOr("version", ""), "2.1.0");
  const Json* runs = doc.Get("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  const Json* results = runs->at(0).Get("results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(results->size(), findings.size());
  // Rule metadata covers the whole catalogue.
  const Json* driver = runs->at(0).Get("tool")->Get("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_GE(driver->Get("rules")->size(),
            sparktune::lint::RuleIds().size());
}

// ---------------------------------------------------------------------------
// CLI contract (drives the built binary).
// ---------------------------------------------------------------------------

TEST(LintCli, ExitCodesCleanFindingsBroken) {
  std::string out;
  EXPECT_EQ(RunCli("\"" + FixturePath("idx/registry.h") + "\" \"" +
                       FixturePath("idx/clean_guard.cc") + "\"",
                   &out),
            0)
      << out;
  EXPECT_EQ(RunCli("\"" + FixturePath("idx/registry.h") + "\" \"" +
                       FixturePath("idx/bad_guard.cc") + "\"",
                   &out),
            1)
      << out;
  EXPECT_EQ(RunCli("/nonexistent/no_such_file.cc", &out), 2) << out;
  EXPECT_EQ(RunCli("--no-such-flag", &out), 2) << out;
}

TEST(LintCli, ListRulesPrintsIdAndDoc) {
  std::string out;
  EXPECT_EQ(RunCli("--list-rules", &out), 0);
  for (const auto& r : sparktune::lint::RuleDocs()) {
    EXPECT_NE(out.find(r.id), std::string::npos) << r.id;
  }
  EXPECT_NE(out.find("cross-TU"), std::string::npos)
      << "one-line docs missing:\n"
      << out;
}

TEST(LintCli, JsonFormatPassesItsOwnSchemaCheck) {
  std::string out;
  int code = RunCli("--format=json --schema-check \"" +
                        FixturePath("idx/registry.h") + "\" \"" +
                        FixturePath("idx/bad_guard.cc") + "\"",
                    &out);
  EXPECT_EQ(code, 1) << out;  // findings present, but the run is healthy
  EXPECT_NE(out.find("schema-check: ok"), std::string::npos) << out;
}

TEST(LintCli, FixRoundTripsToCleanWithWellFormedStubs) {
  TempTree tmp;
  std::string header = tmp.Stage("idx/registry.h");
  std::string bad_iter = tmp.Stage("idx/bad_member_iter.cc");
  std::string bad_guard = tmp.Stage("idx/bad_guard.cc");
  std::string files = "\"" + header + "\" \"" + bad_iter + "\" \"" +
                      bad_guard + "\"";
  std::string out;
  EXPECT_EQ(RunCli("--fix --fix-user=fixtest " + files, &out), 0) << out;
  // Stubs are well-formed reasoned allows naming the user.
  std::string fixed = tmp.Read(bad_iter);
  EXPECT_NE(
      fixed.find("lint:allow(unordered-member-iter) TODO(fixtest): justify"),
      std::string::npos)
      << fixed;
  EXPECT_NE(tmp.Read(bad_guard)
                .find("lint:allow(guard-discipline) TODO(fixtest): justify"),
            std::string::npos);
  // Re-linting the fixed tree is clean (exit 0).
  EXPECT_EQ(RunCli(files, &out), 0) << out;
}

TEST(LintMeta, EveryRuleIdIsExercisedByTheCorpus) {
  // Union of findings across all bad fixtures (per-file and indexed
  // pairs) must cover the catalogue, so a rule cannot silently stop
  // firing.
  const std::vector<std::string> fixtures = {
      "bad_rand.cc",           "bad_random_device.cc", "bad_wall_clock.cc",
      "bad_raw_thread.cc",     "bad_nondet_reduce.cc", "linalg/bad_float_accum.cc",
      "bad_unordered_iter.cc", "bad_rng_fork.cc",      "bad_rng_capture.cc",
      "bad_mutable_static.cc", "bad_allow.cc",         "src/bad_abort.cc",
      "bad_parallel_shared_write.cc",
  };
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"idx/registry.h", "idx/bad_member_iter.cc"},
      {"idx/registry.h", "idx/bad_guard.cc"},
      {"idx/rng_helpers.h", "idx/bad_rng_escape.cc"},
  };
  std::set<std::string> fired;
  for (const std::string& f : fixtures) {
    for (const Finding& finding : LintFixture(f)) fired.insert(finding.rule);
  }
  for (const auto& [h, cc] : pairs) {
    for (const Finding& finding : LintFixturePair(h, cc)) {
      fired.insert(finding.rule);
    }
  }
  for (const std::string& id : sparktune::lint::RuleIds()) {
    EXPECT_TRUE(fired.count(id)) << "rule never fired in corpus: " << id;
  }
}

TEST(LintMeta, FormatIncludesFileLineRuleAndHint) {
  Finding f{"src/foo.cc", 12, "no-rand", "msg", "do better"};
  std::string s = sparktune::lint::FormatFinding(f);
  EXPECT_NE(s.find("src/foo.cc:12"), std::string::npos);
  EXPECT_NE(s.find("[no-rand]"), std::string::npos);
  EXPECT_NE(s.find("do better"), std::string::npos);
}

}  // namespace
