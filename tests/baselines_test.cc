// Tests for the comparison methods: GA engine behavior and every
// TuningMethod's contract (budget respected, valid configs, improvement on
// a synthetic landscape).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/cherrypick.h"
#include "baselines/dac.h"
#include "baselines/ga.h"
#include "baselines/locat.h"
#include "baselines/ours.h"
#include "baselines/random_search.h"
#include "baselines/rfhoc.h"
#include "baselines/tuneful.h"

namespace sparktune {
namespace {

ConfigSpace SynthSpace() {
  ConfigSpace s;
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(
        s.Add(Parameter::Float("x" + std::to_string(i), 0.0, 1.0, 0.5)).ok());
  }
  return s;
}

// Quadratic bowl with optimum at (0.3, 0.7, 0.5, ...), mild datasize drift.
class BowlEvaluator final : public JobEvaluator {
 public:
  explicit BowlEvaluator(const ConfigSpace* space) : space_(space) {}

  Outcome Run(const Configuration& c) override {
    ++runs_;
    Outcome o;
    double d = 0.0;
    const double centers[] = {0.3, 0.7, 0.5, 0.5, 0.5, 0.5};
    for (size_t i = 0; i < space_->size(); ++i) {
      d += std::pow(c[i] - centers[i], 2);
    }
    o.data_size_gb = 100.0 * (1.0 + 0.1 * std::sin(runs_ * 0.5));
    o.runtime_sec = (50.0 + 500.0 * d) * (o.data_size_gb / 100.0);
    o.resource_rate = 10.0 + 30.0 * c[2];
    return o;
  }
  double ResourceRate(const Configuration& c) const override {
    return 10.0 + 30.0 * c[2];
  }
  double NextDataSizeHintGb() const override {
    return 100.0 * (1.0 + 0.1 * std::sin((runs_ + 1) * 0.5));
  }

 private:
  const ConfigSpace* space_;
  int runs_ = 0;
};

TEST(GaTest, MinimizesSphere) {
  ConfigSpace space = SynthSpace();
  GeneticAlgorithm ga;
  Rng rng(1);
  auto fitness = [](const Configuration& c) {
    double d = 0.0;
    for (size_t i = 0; i < c.size(); ++i) d += std::pow(c[i] - 0.4, 2);
    return d;
  };
  Configuration best = ga.Minimize(space, fitness, &rng);
  EXPECT_LT(fitness(best), 0.05);
}

TEST(GaTest, SeedsJoinPopulation) {
  ConfigSpace space = SynthSpace();
  GaOptions opts;
  opts.generations = 0;  // no evolution: the best must come from init
  opts.elites = 1;
  GeneticAlgorithm ga(opts);
  Rng rng(2);
  Configuration seed = space.Default();
  for (size_t i = 0; i < seed.size(); ++i) seed[i] = 0.4;
  auto fitness = [](const Configuration& c) {
    double d = 0.0;
    for (size_t i = 0; i < c.size(); ++i) d += std::pow(c[i] - 0.4, 2);
    return d;
  };
  Configuration best = ga.Minimize(space, fitness, &rng, {seed});
  EXPECT_LT(fitness(best), 1e-9);  // the seed is already optimal
}

class MethodContractTest
    : public ::testing::TestWithParam<std::shared_ptr<TuningMethod>> {};

TEST_P(MethodContractTest, RespectsBudgetAndSpace) {
  ConfigSpace space = SynthSpace();
  BowlEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 0.5;
  const int budget = 14;
  RunHistory h = GetParam()->Tune(space, &eval, obj, budget, 17);
  ASSERT_EQ(h.size(), static_cast<size_t>(budget));
  for (const auto& o : h.observations()) {
    EXPECT_TRUE(space.Validate(o.config).ok());
    EXPECT_GT(o.objective, 0.0);
  }
  EXPECT_TRUE(h.BestFeasible().has_value());
}

TEST_P(MethodContractTest, BeatsWorstCaseClearly) {
  ConfigSpace space = SynthSpace();
  BowlEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 0.5;
  RunHistory h = GetParam()->Tune(space, &eval, obj, 20, 23);
  // Worst corner has d = 6*0.49 -> runtime ~1520; every method should find
  // something far better within 20 trials.
  Configuration corner(std::vector<double>(space.size(), 1.0));
  BowlEvaluator probe(&space);
  auto worst = probe.Run(corner);
  double worst_obj = obj.Value(worst.runtime_sec, worst.resource_rate);
  EXPECT_LT(h.BestObjective(), worst_obj * 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodContractTest,
    ::testing::Values(std::make_shared<RandomSearch>(),
                      std::make_shared<Rfhoc>(),
                      std::make_shared<Dac>(),
                      std::make_shared<CherryPick>(),
                      std::make_shared<Tuneful>(),
                      std::make_shared<Locat>(),
                      std::make_shared<OursMethod>()),
    [](const auto& info) { return info.param->name(); });

TEST(OursMethodTest, BeatsRandomSearchOnBowl) {
  ConfigSpace space = SynthSpace();
  TuningObjective obj;
  obj.beta = 0.5;
  double ours_total = 0.0, random_total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    BowlEvaluator e1(&space), e2(&space);
    OursOptions oopts;
    oopts.advisor.expert_ranking.clear();
    OursMethod ours(oopts);
    RandomSearch random;
    ours_total += ours.Tune(space, &e1, obj, 20, seed).BestObjective();
    random_total += random.Tune(space, &e2, obj, 20, seed).BestObjective();
  }
  EXPECT_LT(ours_total, random_total);
}

TEST(OursMethodTest, HonorsRuntimeConstraintMostly) {
  ConfigSpace space = SynthSpace();
  BowlEvaluator eval(&space);
  TuningObjective obj;
  obj.beta = 0.5;
  obj.runtime_max = 200.0;
  OursMethod ours;
  RunHistory h = ours.Tune(space, &eval, obj, 25, 31);
  int infeasible = 0;
  for (const auto& o : h.observations()) {
    if (!o.feasible) ++infeasible;
  }
  // The paper reports ~93% safe suggestions; allow generous slack on a
  // 25-trial run (initial design included).
  EXPECT_LT(infeasible, 13);
}

TEST(MethodNamesTest, AreStable) {
  EXPECT_EQ(RandomSearch().name(), "RandomSearch");
  EXPECT_EQ(Rfhoc().name(), "RFHOC");
  EXPECT_EQ(Dac().name(), "DAC");
  EXPECT_EQ(CherryPick().name(), "CherryPick");
  EXPECT_EQ(Tuneful().name(), "Tuneful");
  EXPECT_EQ(Locat().name(), "LOCAT");
  EXPECT_EQ(OursMethod().name(), "Ours");
  EXPECT_EQ(OursMethod(OursOptions{}, "Ours-NoAGD").name(), "Ours-NoAGD");
}

}  // namespace
}  // namespace sparktune
