// Property sweeps: randomized round-trips through the persistence layer,
// the unit-cube codec, and the ensemble mixing math.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "meta/meta_surrogate.h"
#include "service/data_repository.h"
#include "sparksim/spark_conf.h"

namespace sparktune {
namespace {

class ObservationRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObservationRoundTripTest, JsonPreservesEverything) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    Observation o;
    o.config = space.Sample(&rng);
    o.objective = rng.LogNormal(3.0, 2.0);
    o.runtime_sec = rng.LogNormal(5.0, 1.0);
    o.resource_rate = rng.Uniform(1.0, 5000.0);
    o.data_size_gb = rng.Bernoulli(0.5) ? rng.Uniform(0.1, 900.0) : -1.0;
    o.hours = rng.Uniform(0.0, 500.0);
    o.memory_gb_hours = rng.Uniform(0.0, 100.0);
    o.cpu_core_hours = rng.Uniform(0.0, 100.0);
    o.feasible = rng.Bernoulli(0.7);
    o.failure = rng.Bernoulli(0.1) ? FailureKind::kOom : FailureKind::kNone;
    o.iteration = static_cast<int>(rng.UniformInt(0, 99));

    Json j = DataRepository::ObservationToJson(o);
    // Serialize-parse cycle (what hits disk).
    auto parsed = Json::Parse(j.Dump());
    ASSERT_TRUE(parsed.ok());
    auto back = DataRepository::ObservationFromJson(*parsed, space);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->config == o.config);
    EXPECT_DOUBLE_EQ(back->objective, o.objective);
    EXPECT_DOUBLE_EQ(back->runtime_sec, o.runtime_sec);
    EXPECT_DOUBLE_EQ(back->resource_rate, o.resource_rate);
    EXPECT_DOUBLE_EQ(back->data_size_gb, o.data_size_gb);
    EXPECT_EQ(back->feasible, o.feasible);
    EXPECT_EQ(back->failure, o.failure);
    EXPECT_EQ(back->iteration, o.iteration);
  }
}

TEST_P(ObservationRoundTripTest, UnitCubeCodecIsIdempotent) {
  ClusterSpec cluster = ClusterSpec::ProductionGroup();
  ConfigSpace space = BuildSparkSpace(cluster);
  Rng rng(GetParam() ^ 0xABCD);
  for (int i = 0; i < 50; ++i) {
    Configuration c = space.Sample(&rng);
    // FromUnit(ToUnit(x)) must be a fixed point after one application.
    Configuration once = space.FromUnit(space.ToUnit(c));
    Configuration twice = space.FromUnit(space.ToUnit(once));
    for (size_t k = 0; k < space.size(); ++k) {
      EXPECT_NEAR(once[k], twice[k], 1e-12) << space.param(k).name();
    }
    EXPECT_TRUE(space.Validate(once).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObservationRoundTripTest,
                         ::testing::Values(1u, 7u, 99u, 4242u));

class ConstSurrogate final : public Surrogate {
 public:
  ConstSurrogate(double mean, double var) : mean_(mean), var_(var) {}
  Status Fit(const std::vector<std::vector<double>>&,
             const std::vector<double>&) override {
    return Status::OK();
  }
  Prediction Predict(const std::vector<double>&) const override {
    return {mean_, var_};
  }
  size_t num_observations() const override { return 5; }

 private:
  double mean_, var_;
};

TEST(EnsembleMathTest, VarianceUsesSquaredWeights) {
  // Eq. 12: sigma^2 = sum w_i^2 sigma_i^2. With two pure bases of equal
  // weight and unit variance (in already-standardized scale), the mixed
  // variance must be 2 * (w^2 * 1), not 2 * (w * 1).
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  auto b1 = std::make_shared<ConstSurrogate>(0.0, 1.0);
  auto b2 = std::make_shared<ConstSurrogate>(0.0, 1.0);
  BaseSurrogate s1{b1, 0.5, 1, 0.0, 1.0};
  BaseSurrogate s2{b2, 0.5, 1, 0.0, 1.0};
  MetaEnsembleOptions opts;
  opts.min_self_weight = 0.0;  // drive self weight to ~0 with 2 points
  MetaEnsembleSurrogate ens(schema, {s1, s2}, opts);
  // Two observations: too few for CV, so self weight = floor = 0.
  ASSERT_TRUE(ens.Fit({{0.1}, {0.9}}, {0.0, 0.0}).ok());
  EXPECT_DOUBLE_EQ(ens.self_weight(), 0.0);
  ASSERT_EQ(ens.base_weights().size(), 2u);
  EXPECT_NEAR(ens.base_weights()[0], 0.5, 1e-9);
  Prediction p = ens.Predict({0.5});
  // target scale: y constant -> scale 1.0. var = 0.25 + 0.25 = 0.5.
  EXPECT_NEAR(p.variance, 0.5, 1e-6);
  EXPECT_NEAR(p.mean, 0.0, 1e-9);
}

TEST(EnsembleMathTest, BasePredictionsRescaledToTargetUnits) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  // Base task lives at mean 1000, scale 100; it predicts 1100 (=> +1 sigma).
  auto base = std::make_shared<ConstSurrogate>(1100.0, 0.0);
  BaseSurrogate s{base, 1.0, 1, 1000.0, 100.0};
  MetaEnsembleOptions opts;
  opts.min_self_weight = 0.0;
  MetaEnsembleSurrogate ens(schema, {s}, opts);
  // Target task lives at mean 10, scale 2 -> +1 sigma = 12.
  ASSERT_TRUE(ens.Fit({{0.2}, {0.8}}, {8.0, 12.0}).ok());
  Prediction p = ens.Predict({0.5});
  EXPECT_NEAR(p.mean, 12.0, 1e-6);
}

TEST(EnsembleMathTest, UnfittedEnsembleStillPredicts) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  auto base = std::make_shared<ConstSurrogate>(3.0, 1.0);
  BaseSurrogate s{base, 1.0, 1, 0.0, 1.0};
  MetaEnsembleSurrogate ens(schema, {s});
  Prediction p = ens.Predict({0.5});
  EXPECT_TRUE(std::isfinite(p.mean));
  EXPECT_GE(p.variance, 0.0);
  EXPECT_EQ(ens.num_observations(), 0u);
}

}  // namespace
}  // namespace sparktune
