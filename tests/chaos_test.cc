// Chaos harness for the sharded service supervisor (DESIGN.md §7): the
// rendezvous placement, scripted and seeded kill/restart schedules, the
// checkpoint handoff + deterministic replay contract, and the headline
// property — a chaos run's per-task trajectory is bit-identical to an
// undisturbed single-shard run at any thread count.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/supervisor.h"
#include "sparksim/hibench.h"
#include "tuner/fault_injection.h"

namespace sparktune {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  std::string dir =
      (fs::temp_directory_path() / ("sparktune-chaos-test-" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

// Owns the simulator and its fault wrapper as one JobEvaluator, so an
// EvaluatorFactory can rebuild the whole stack from seeds alone.
class ChaosEvaluator final : public JobEvaluator {
 public:
  ChaosEvaluator(std::unique_ptr<SimulatorEvaluator> inner,
                 FaultInjectionOptions fopts)
      : inner_(std::move(inner)), faulty_(inner_.get(), fopts) {}

  Outcome Run(const Configuration& config) override {
    return faulty_.Run(config);
  }
  double ResourceRate(const Configuration& config) const override {
    return faulty_.ResourceRate(config);
  }
  double NextDataSizeHintGb() const override {
    return faulty_.NextDataSizeHintGb();
  }
  double NextHours() const override { return faulty_.NextHours(); }
  void SkipExecutions(int n) override { faulty_.SkipExecutions(n); }

 private:
  std::unique_ptr<SimulatorEvaluator> inner_;
  FaultInjectingEvaluator faulty_;
};

struct Fixture {
  Fixture()
      : cluster(ClusterSpec::HiBenchCluster()),
        space(BuildSparkSpace(cluster)) {}

  // A factory rebuilding the identical evaluator stack on every call: the
  // supervisor invokes it at registration and after every handoff.
  EvaluatorFactory MakeFactory(const std::string& workload, uint64_t seed,
                               FaultInjectionOptions fopts = {}) {
    const ConfigSpace* sp = &space;
    ClusterSpec cl = cluster;
    return [sp, cl, workload, seed, fopts]() -> std::unique_ptr<JobEvaluator> {
      auto w = HiBenchTask(workload);
      EXPECT_TRUE(w.ok());
      SimulatorEvaluatorOptions opts;
      opts.seed = seed;
      auto inner = std::make_unique<SimulatorEvaluator>(
          sp, *w, cl, DriftModel::Diurnal(), opts);
      return std::make_unique<ChaosEvaluator>(std::move(inner), fopts);
    };
  }

  ServiceSupervisorOptions SupervisorOpts(int num_shards,
                                          const std::string& dir) {
    ServiceSupervisorOptions opts;
    opts.num_shards = num_shards;
    opts.service.tuner.budget = 10;
    opts.service.tuner.ei_stop_threshold = 0.0;
    opts.service.tuner.advisor.expert_ranking = ExpertParameterRanking();
    opts.service.repository_dir = dir;
    opts.service.auto_checkpoint_periods = 4;
    opts.service.checkpoint_on_phase_change = true;
    return opts;
  }

  ClusterSpec cluster;
  ConfigSpace space;
};

FaultInjectionOptions EvalFaults(uint64_t seed) {
  FaultInjectionOptions fopts;
  fopts.seed = seed;
  fopts.crash_prob = 0.12;
  fopts.transient_error_prob = 0.08;
  fopts.hang_prob = 0.06;
  fopts.corrupt_log_prob = 0.06;
  return fopts;
}

void ExpectSameSlot(const Result<Observation>& got,
                    const Result<Observation>& want, int tick, size_t slot) {
  ASSERT_EQ(got.ok(), want.ok()) << "tick " << tick << " slot " << slot;
  if (!got.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code())
        << "tick " << tick << " slot " << slot;
    return;
  }
  EXPECT_TRUE(got->config == want->config) << "tick " << tick << " slot "
                                           << slot;
  EXPECT_EQ(got->objective, want->objective) << "tick " << tick << " slot "
                                             << slot;
  EXPECT_EQ(got->runtime_sec, want->runtime_sec)
      << "tick " << tick << " slot " << slot;
  EXPECT_EQ(got->failure, want->failure) << "tick " << tick << " slot "
                                         << slot;
  EXPECT_EQ(got->degraded, want->degraded) << "tick " << tick << " slot "
                                           << slot;
  EXPECT_EQ(got->feasible, want->feasible) << "tick " << tick << " slot "
                                           << slot;
}

const std::vector<std::string> kIds = {"wc", "sort", "ts"};
const std::vector<std::string> kWorkloads = {"WordCount", "Sort", "TeraSort"};

void RegisterFleet(Fixture* f, ServiceSupervisor* sup, bool with_faults) {
  for (size_t t = 0; t < kIds.size(); ++t) {
    FaultInjectionOptions fopts =
        with_faults ? EvalFaults(101 + t) : FaultInjectionOptions{};
    ASSERT_TRUE(sup->RegisterTask(kIds[t],
                                  f->MakeFactory(kWorkloads[t], 7 + t, fopts))
                    .ok());
  }
}

// The undisturbed oracle: one shard, no fault plan, no kills.
std::vector<std::vector<Result<Observation>>> ReferenceRun(Fixture* f,
                                                           int ticks,
                                                           bool with_faults) {
  ServiceSupervisorOptions opts = f->SupervisorOpts(1, "");
  ServiceSupervisor sup(&f->space, opts);
  RegisterFleet(f, &sup, with_faults);
  std::vector<std::vector<Result<Observation>>> out;
  for (int t = 0; t < ticks; ++t) out.push_back(sup.Tick());
  return out;
}

TEST(SupervisorPlacementTest, RendezvousIsDeterministicAndStable) {
  Fixture f;
  ServiceSupervisorOptions opts = f.SupervisorOpts(4, "");
  ServiceSupervisor a(&f.space, opts);
  ServiceSupervisor b(&f.space, opts);
  const std::vector<std::string> ids = {"etl-hourly", "report:daily",
                                        "wc", "sort", "ts", "pagerank"};
  for (const auto& id : ids) {
    ASSERT_TRUE(a.RegisterTask(id, f.MakeFactory("WordCount", 3)).ok());
    ASSERT_TRUE(b.RegisterTask(id, f.MakeFactory("WordCount", 3)).ok());
  }
  // Placement is a pure function of (id, shard count, live set).
  for (const auto& id : ids) {
    EXPECT_EQ(a.shard_of(id), b.shard_of(id)) << id;
    EXPECT_GE(a.shard_of(id), 0) << id;
  }
  // Duplicate registration and null factories are rejected.
  EXPECT_EQ(a.RegisterTask("wc", f.MakeFactory("WordCount", 3)).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(a.RegisterTask("new", nullptr).code(),
            Status::Code::kInvalidArgument);

  // Killing one shard moves only its tasks (minimal disruption); the
  // survivors keep their placement.
  int victim = a.shard_of(ids[0]);
  std::vector<int> before;
  for (const auto& id : ids) before.push_back(a.shard_of(id));
  ASSERT_TRUE(a.KillShard(victim).ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (before[i] == victim) {
      EXPECT_NE(a.shard_of(ids[i]), victim) << ids[i];
      EXPECT_TRUE(a.shard_alive(a.shard_of(ids[i]))) << ids[i];
    } else {
      EXPECT_EQ(a.shard_of(ids[i]), before[i]) << ids[i];
    }
  }
  EXPECT_EQ(a.num_live_shards(), 3);
  EXPECT_EQ(a.stats().kills, 1);
}

TEST(SupervisorChaosTest, KillLastLiveShardIsRejected) {
  Fixture f;
  ServiceSupervisor sup(&f.space, f.SupervisorOpts(2, ""));
  ASSERT_TRUE(sup.KillShard(0).ok());
  EXPECT_EQ(sup.KillShard(1).code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(sup.KillShard(0).code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(sup.KillShard(7).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(sup.RestartShard(1).code(), Status::Code::kFailedPrecondition);
  ASSERT_TRUE(sup.RestartShard(0).ok());
  EXPECT_EQ(sup.num_live_shards(), 2);
  EXPECT_EQ(sup.stats().restarts, 1);
}

// Acceptance: scripted kills with checkpoint handoff resume the identical
// per-task trajectory — watchdog slots, degraded runs, and all.
TEST(SupervisorChaosTest, ScriptedKillHandoffMatchesUndisturbedRun) {
  Fixture f;
  constexpr int kTicks = 30;
  auto want = ReferenceRun(&f, kTicks, /*with_faults=*/true);

  const std::string dir = TempDir("scripted");
  ServiceSupervisor sup(&f.space, f.SupervisorOpts(3, dir));
  RegisterFleet(&f, &sup, /*with_faults=*/true);

  std::vector<std::vector<Result<Observation>>> got;
  for (int t = 0; t < 10; ++t) got.push_back(sup.Tick());
  // Kill the shard hosting "wc" mid-run; its tasks restore from their
  // auto-checkpoints and replay the gap on a survivor.
  const int victim = sup.shard_of("wc");
  ASSERT_TRUE(sup.KillShard(victim).ok());
  for (int t = 10; t < 20; ++t) got.push_back(sup.Tick());
  ASSERT_TRUE(sup.RestartShard(victim).ok());
  // Second kill: survivors now include the restarted shard.
  ASSERT_TRUE(sup.KillShard(sup.shard_of("sort")).ok());
  for (int t = 20; t < kTicks; ++t) got.push_back(sup.Tick());

  ASSERT_EQ(got.size(), want.size());
  for (int t = 0; t < kTicks; ++t) {
    ASSERT_EQ(got[t].size(), kIds.size());
    for (size_t i = 0; i < kIds.size(); ++i) {
      ExpectSameSlot(got[t][i], want[t][i], t, i);
    }
  }

  const SupervisorStats& st = sup.stats();
  EXPECT_EQ(st.ticks, kTicks);
  EXPECT_EQ(st.kills, 2);
  EXPECT_EQ(st.restarts, 1);
  EXPECT_GE(st.handoffs, 2);
  // Auto-checkpoints (cadence 4) were in place well before the first kill:
  // every handoff restores, none replays from scratch.
  EXPECT_EQ(st.restored_tasks, st.handoffs);
  EXPECT_EQ(st.fresh_replays, 0);
  EXPECT_GT(st.replayed_periods, 0);
}

TEST(SupervisorChaosTest, HandoffWithoutRepositoryReplaysFromScratch) {
  Fixture f;
  constexpr int kTicks = 16;
  auto want = ReferenceRun(&f, kTicks, /*with_faults=*/true);

  // No repository: a kill forces a full deterministic replay from period 0.
  ServiceSupervisor sup(&f.space, f.SupervisorOpts(2, ""));
  RegisterFleet(&f, &sup, /*with_faults=*/true);
  std::vector<std::vector<Result<Observation>>> got;
  for (int t = 0; t < 8; ++t) got.push_back(sup.Tick());
  const int victim = sup.shard_of("wc");
  ASSERT_TRUE(sup.KillShard(victim).ok());
  for (int t = 8; t < kTicks; ++t) got.push_back(sup.Tick());

  for (int t = 0; t < kTicks; ++t) {
    for (size_t i = 0; i < kIds.size(); ++i) {
      ExpectSameSlot(got[t][i], want[t][i], t, i);
    }
  }
  const SupervisorStats& st = sup.stats();
  EXPECT_GE(st.handoffs, 1);
  EXPECT_EQ(st.fresh_replays, st.handoffs);
  EXPECT_EQ(st.restored_tasks, 0);
  // Every handed-off task replayed all 8 pre-kill periods.
  EXPECT_EQ(st.replayed_periods, 8 * st.handoffs);
}

// Acceptance: the seeded fault plan (kills + restarts + handoffs) yields a
// trajectory bit-identical to the undisturbed oracle at 1 and 4 threads.
TEST(SupervisorChaosTest, SeededFaultPlanEquivalenceAtAnyThreadCount) {
  Fixture f;
  constexpr int kTicks = 30;
  auto want = ReferenceRun(&f, kTicks, /*with_faults=*/true);

  auto chaos_run = [&](int num_threads, const std::string& tag) {
    ServiceSupervisorOptions opts =
        f.SupervisorOpts(4, TempDir("plan-" + tag));
    opts.service.num_threads = num_threads;
    opts.fault_plan.seed = 2026;
    opts.fault_plan.kill_prob = 0.2;
    opts.fault_plan.restart_prob = 0.5;
    ServiceSupervisor sup(&f.space, opts);
    RegisterFleet(&f, &sup, /*with_faults=*/true);
    std::vector<std::vector<Result<Observation>>> ticks;
    for (int t = 0; t < kTicks; ++t) ticks.push_back(sup.Tick());
    return std::make_pair(std::move(ticks), sup.stats());
  };

  auto [serial, serial_stats] = chaos_run(1, "serial");
  auto [threaded, threaded_stats] = chaos_run(4, "threaded");

  // The plan actually bit: shards died and came back.
  EXPECT_GT(serial_stats.kills, 0);
  EXPECT_GT(serial_stats.restarts, 0);
  EXPECT_GT(serial_stats.handoffs, 0);
  // The kill/restart schedule is a function of (seed, tick) only — thread
  // count changes nothing.
  EXPECT_EQ(serial_stats.kills, threaded_stats.kills);
  EXPECT_EQ(serial_stats.restarts, threaded_stats.restarts);
  EXPECT_EQ(serial_stats.handoffs, threaded_stats.handoffs);
  EXPECT_EQ(serial_stats.replayed_periods, threaded_stats.replayed_periods);

  for (int t = 0; t < kTicks; ++t) {
    for (size_t i = 0; i < kIds.size(); ++i) {
      ExpectSameSlot(serial[t][i], want[t][i], t, i);
      ExpectSameSlot(threaded[t][i], want[t][i], t, i);
    }
  }
}

TEST(SupervisorChaosTest, CheckpointAllAggregatesAndSkipsUnchanged) {
  Fixture f;
  ServiceSupervisorOptions opts = f.SupervisorOpts(2, TempDir("ckpt-all"));
  opts.service.auto_checkpoint_periods = 0;  // manual checkpoints only
  opts.service.checkpoint_on_phase_change = false;
  ServiceSupervisor sup(&f.space, opts);
  RegisterFleet(&f, &sup, /*with_faults=*/false);
  for (int t = 0; t < 5; ++t) sup.Tick();

  CheckpointReport first = sup.CheckpointAll();
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(first.written, static_cast<int>(kIds.size()));
  EXPECT_EQ(first.skipped, 0);
  // No periods elapsed since: the second pass skips every task.
  CheckpointReport second = sup.CheckpointAll();
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(second.written, 0);
  EXPECT_EQ(second.skipped, static_cast<int>(kIds.size()));
}

TEST(AutoCheckpointTest, PeriodCadenceWritesCheckpoints) {
  Fixture f;
  const std::string dir = TempDir("cadence");
  TuningServiceOptions opts;
  opts.tuner.budget = 10;
  opts.tuner.ei_stop_threshold = 0.0;
  opts.tuner.advisor.expert_ranking = ExpertParameterRanking();
  opts.repository_dir = dir;
  opts.auto_checkpoint_periods = 3;
  TuningService service(&f.space, opts);
  auto w = HiBenchTask("WordCount");
  ASSERT_TRUE(w.ok());
  SimulatorEvaluatorOptions eopts;
  eopts.seed = 3;
  SimulatorEvaluator eval(&f.space, *w, f.cluster, DriftModel::Diurnal(),
                          eopts);
  ASSERT_TRUE(service.RegisterTask("wc", &eval).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  }
  // Cadence 3 over 10 periods: checkpoints at periods 3, 6, 9.
  EXPECT_EQ(service.auto_checkpoints(), 3);
  DataRepository repo(dir);
  EXPECT_TRUE(repo.HasCheckpoint("wc"));
}

TEST(AutoCheckpointTest, PhaseTransitionTriggersCheckpoint) {
  Fixture f;
  TuningServiceOptions opts;
  opts.tuner.budget = 10;
  opts.tuner.ei_stop_threshold = 0.0;
  opts.tuner.advisor.expert_ranking = ExpertParameterRanking();
  opts.repository_dir = TempDir("phase");
  opts.auto_checkpoint_periods = 0;  // only phase transitions trigger
  opts.checkpoint_on_phase_change = true;
  TuningService service(&f.space, opts);
  auto w = HiBenchTask("WordCount");
  ASSERT_TRUE(w.ok());
  SimulatorEvaluatorOptions eopts;
  eopts.seed = 3;
  SimulatorEvaluator eval(&f.space, *w, f.cluster, DriftModel::Diurnal(),
                          eopts);
  ASSERT_TRUE(service.RegisterTask("wc", &eval).ok());

  // Budget 10: baseline -> tuning after period 1, tuning -> applying after
  // period 11. Both transitions snapshot the phase machine.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.ExecutePeriodic("wc").ok());
  }
  EXPECT_GE(service.auto_checkpoints(), 2);
}

}  // namespace
}  // namespace sparktune
