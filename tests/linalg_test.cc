// Tests for dense matrix ops and Cholesky factorization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace sparktune {
namespace {

TEST(MatrixTest, IdentityMatVec) {
  Matrix m = Matrix::Identity(3);
  Vector x = {1.0, 2.0, 3.0};
  EXPECT_EQ(m.MatVec(x), x);
}

TEST(MatrixTest, MatMulKnownValue) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  double v = 1.0;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = v++;
  }
  v = 1.0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) b(r, c) = v++;
  }
  Matrix c = a.MatMul(b);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -2.0;
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  Matrix tt = t.Transpose();
  EXPECT_DOUBLE_EQ(tt(1, 0), -2.0);
}

TEST(MatrixTest, AddDiagonal) {
  Matrix m(3, 3, 1.0);
  m.AddDiagonal(2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
}

TEST(VectorOps, DotAddSubScaleNorm) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_EQ(Add(a, b), (Vector{5, 7, 9}));
  EXPECT_EQ(Sub(b, a), (Vector{3, 3, 3}));
  EXPECT_EQ(Scale(a, 2.0), (Vector{2, 4, 6}));
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a(r, c) = rng->Normal();
  }
  Matrix spd = a.MatMul(a.Transpose());
  spd.AddDiagonal(static_cast<double>(n));  // well-conditioned
  return spd;
}

TEST(CholeskyTest, ReconstructsMatrix) {
  Rng rng(11);
  Matrix a = RandomSpd(6, &rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix l = chol->lower();
  Matrix rec = l.MatMul(l.Transpose());
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(rec(r, c), a(r, c), 1e-9);
    }
  }
  EXPECT_EQ(chol->applied_jitter(), 0.0);
}

TEST(CholeskyTest, SolvesLinearSystem) {
  Rng rng(13);
  Matrix a = RandomSpd(8, &rng);
  Vector x_true(8);
  for (auto& v : x_true) v = rng.Normal();
  Vector b = a.MatVec(x_true);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol->Solve(b);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, LogDetMatchesKnownDiagonal) {
  Matrix d(3, 3, 0.0);
  d(0, 0) = 2.0;
  d(1, 1) = 3.0;
  d(2, 2) = 4.0;
  auto chol = Cholesky::Factor(d);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(24.0), 1e-12);
}

TEST(CholeskyTest, JitterRescuesSingularMatrix) {
  // Rank-1 matrix (singular): ones everywhere.
  Matrix a(4, 4, 1.0);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_GT(chol->applied_jitter(), 0.0);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(Cholesky::Factor(a).ok());
}

TEST(CholeskyTest, SolveMatrixColumnwise) {
  Rng rng(17);
  Matrix a = RandomSpd(5, &rng);
  Matrix b(5, 2);
  for (size_t r = 0; r < 5; ++r) {
    b(r, 0) = rng.Normal();
    b(r, 1) = rng.Normal();
  }
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix x = chol->SolveMatrix(b);
  Matrix ax = a.MatMul(x);
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(ax(r, 0), b(r, 0), 1e-8);
    EXPECT_NEAR(ax(r, 1), b(r, 1), 1e-8);
  }
}

// Textbook unblocked lower-Cholesky: the bit-equality reference the blocked
// implementation must reproduce exactly.
bool UnblockedFactor(const Matrix& a, Matrix* l) {
  size_t n = a.rows();
  *l = Matrix(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= (*l)(j, k) * (*l)(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    (*l)(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= (*l)(i, k) * (*l)(j, k);
      (*l)(i, j) = s / (*l)(j, j);
    }
  }
  return true;
}

TEST(CholeskyTest, BlockedFactorBitEqualsUnblocked) {
  Rng rng(29);
  // Larger than two panel widths with a ragged remainder.
  Matrix a = RandomSpd(97, &rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_EQ(chol->applied_jitter(), 0.0);
  Matrix ref;
  ASSERT_TRUE(UnblockedFactor(a, &ref));
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(chol->lower()(r, c), ref(r, c)) << "at " << r << "," << c;
    }
  }
}

TEST(CholeskyTest, BlockedFactorBitEqualsUnblockedOnJitterPath) {
  // Rank-deficient PSD matrix wider than one panel: the plain attempt fails
  // and the jitter escalation must follow the same schedule and produce the
  // same factor as the unblocked reference.
  Rng rng(31);
  Matrix b(60, 5);
  for (size_t r = 0; r < b.rows(); ++r) {
    for (size_t c = 0; c < b.cols(); ++c) b(r, c) = rng.Normal();
  }
  Matrix a = b.MatMul(b.Transpose());
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_GT(chol->applied_jitter(), 0.0);

  Matrix ref;
  double ref_jitter = 0.0;
  bool ok = UnblockedFactor(a, &ref);
  if (!ok) {
    for (double j = 1e-10; j <= 1e-2; j *= 10.0) {
      Matrix aj = a;
      aj.AddDiagonal(j);
      if (UnblockedFactor(aj, &ref)) {
        ref_jitter = j;
        ok = true;
        break;
      }
    }
  }
  ASSERT_TRUE(ok);
  EXPECT_EQ(chol->applied_jitter(), ref_jitter);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(chol->lower()(r, c), ref(r, c)) << "at " << r << "," << c;
    }
  }
}

TEST(CholeskyTest, FactorBitIdenticalAcrossThreadCounts) {
  Rng rng(37);
  Matrix a = RandomSpd(120, &rng);
  auto serial = Cholesky::Factor(a, 1e-10, 1e-2, 1);
  auto parallel = Cholesky::Factor(a, 1e-10, 1e-2, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->applied_jitter(), parallel->applied_jitter());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(serial->lower()(r, c), parallel->lower()(r, c));
    }
  }
}

TEST(CholeskyTest, SolveLowerMatrixBitEqualsPerColumn) {
  Rng rng(41);
  const size_t n = 60;
  const size_t m = 100;  // crosses the column-block boundary
  Matrix a = RandomSpd(n, &rng);
  Matrix b(n, m);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < m; ++c) b(r, c) = rng.Normal();
  }
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix y1 = chol->SolveLowerMatrix(b, 1);
  Matrix y4 = chol->SolveLowerMatrix(b, 4);
  Matrix x1 = chol->SolveMatrix(b, 1);
  Matrix x4 = chol->SolveMatrix(b, 4);
  for (size_t c = 0; c < m; ++c) {
    Vector col(n);
    for (size_t r = 0; r < n; ++r) col[r] = b(r, c);
    Vector yref = chol->SolveLower(col);
    Vector xref = chol->Solve(col);
    for (size_t r = 0; r < n; ++r) {
      EXPECT_EQ(y1(r, c), yref[r]) << "SolveLower col " << c << " row " << r;
      EXPECT_EQ(y4(r, c), yref[r]);
      EXPECT_EQ(x1(r, c), xref[r]) << "Solve col " << c << " row " << r;
      EXPECT_EQ(x4(r, c), xref[r]);
    }
  }
}

// Naive per-column back substitution in the documented order: strictly
// descending k. This is the bit-equality reference for the panelled
// SolveUpperMatrix path.
Matrix NaiveUpperSolve(const Matrix& l, const Matrix& y) {
  const size_t n = l.rows();
  const size_t m = y.cols();
  Matrix x(n, m);
  for (size_t c = 0; c < m; ++c) {
    for (size_t ii = n; ii-- > 0;) {
      double sum = y(ii, c);
      for (size_t k = n; k-- > ii + 1;) sum -= l(k, ii) * x(k, c);
      x(ii, c) = sum / l(ii, ii);
    }
  }
  return x;
}

TEST(CholeskyTest, SolveUpperMatrixBitEqualsNaiveAcrossThreadCounts) {
  Rng rng(43);
  // Ragged in both dimensions: n spans two full 48-wide panels plus a
  // 5-row remainder; m spans a full 48-column block plus a partial one.
  const size_t n = 101;
  const size_t m = 53;
  Matrix a = RandomSpd(n, &rng);
  Matrix y(n, m);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < m; ++c) y(r, c) = rng.Normal();
  }
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix ref = NaiveUpperSolve(chol->lower(), y);
  for (int nt : {1, 2, 4}) {
    Matrix x = chol->SolveUpperMatrix(y, nt);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < m; ++c) {
        EXPECT_EQ(x(r, c), ref(r, c))
            << "nt=" << nt << " at " << r << "," << c;
      }
    }
  }
}

TEST(CholeskyTest, SolveMatrixBitEqualsPerColumnOnRaggedSize) {
  Rng rng(47);
  // One full panel plus a partial one, so both the panelled and the
  // flat-scalar upper-solve paths run.
  const size_t n = 65;
  const size_t m = 49;
  Matrix a = RandomSpd(n, &rng);
  Matrix b(n, m);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < m; ++c) b(r, c) = rng.Normal();
  }
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  for (int nt : {1, 2, 4}) {
    Matrix x = chol->SolveMatrix(b, nt);
    for (size_t c = 0; c < m; ++c) {
      Vector col(n);
      for (size_t r = 0; r < n; ++r) col[r] = b(r, c);
      Vector xref = chol->Solve(col);
      for (size_t r = 0; r < n; ++r) {
        EXPECT_EQ(x(r, c), xref[r]) << "nt=" << nt << " col " << c;
      }
    }
  }
}

TEST(CholeskyTest, FactorBitEqualsUnblockedAcrossThreadCountsRagged) {
  Rng rng(53);
  // Two full panels plus a remainder, exercising the tiled trailing
  // update's ragged tail at every thread count.
  Matrix a = RandomSpd(101, &rng);
  Matrix ref;
  ASSERT_TRUE(UnblockedFactor(a, &ref));
  for (int nt : {1, 2, 4}) {
    auto chol = Cholesky::Factor(a, 1e-10, 1e-2, nt);
    ASSERT_TRUE(chol.ok());
    EXPECT_EQ(chol->applied_jitter(), 0.0);
    for (size_t r = 0; r < a.rows(); ++r) {
      for (size_t c = 0; c < a.cols(); ++c) {
        EXPECT_EQ(chol->lower()(r, c), ref(r, c))
            << "nt=" << nt << " at " << r << "," << c;
      }
    }
  }
}

TEST(CholeskyTest, JitterPathBitIdenticalAcrossThreadCounts) {
  // Rank-deficient PSD matrix: the refactor-with-jitter escalation must
  // land on the same jitter and the same bits regardless of thread count.
  Rng rng(59);
  Matrix b(60, 5);
  for (size_t r = 0; r < b.rows(); ++r) {
    for (size_t c = 0; c < b.cols(); ++c) b(r, c) = rng.Normal();
  }
  Matrix a = b.MatMul(b.Transpose());
  auto serial = Cholesky::Factor(a, 1e-10, 1e-2, 1);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->applied_jitter(), 0.0);
  for (int nt : {2, 4}) {
    auto par = Cholesky::Factor(a, 1e-10, 1e-2, nt);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(par->applied_jitter(), serial->applied_jitter());
    for (size_t r = 0; r < a.rows(); ++r) {
      for (size_t c = 0; c < a.cols(); ++c) {
        EXPECT_EQ(par->lower()(r, c), serial->lower()(r, c)) << "nt=" << nt;
      }
    }
  }
}

}  // namespace
}  // namespace sparktune
