// Tests for dense matrix ops and Cholesky factorization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace sparktune {
namespace {

TEST(MatrixTest, IdentityMatVec) {
  Matrix m = Matrix::Identity(3);
  Vector x = {1.0, 2.0, 3.0};
  EXPECT_EQ(m.MatVec(x), x);
}

TEST(MatrixTest, MatMulKnownValue) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  double v = 1.0;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a(r, c) = v++;
  }
  v = 1.0;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) b(r, c) = v++;
  }
  Matrix c = a.MatMul(b);
  // [[1,2,3],[4,5,6]] * [[1,2],[3,4],[5,6]] = [[22,28],[49,64]]
  EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -2.0;
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  Matrix tt = t.Transpose();
  EXPECT_DOUBLE_EQ(tt(1, 0), -2.0);
}

TEST(MatrixTest, AddDiagonal) {
  Matrix m(3, 3, 1.0);
  m.AddDiagonal(2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
}

TEST(VectorOps, DotAddSubScaleNorm) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_EQ(Add(a, b), (Vector{5, 7, 9}));
  EXPECT_EQ(Sub(b, a), (Vector{3, 3, 3}));
  EXPECT_EQ(Scale(a, 2.0), (Vector{2, 4, 6}));
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a(r, c) = rng->Normal();
  }
  Matrix spd = a.MatMul(a.Transpose());
  spd.AddDiagonal(static_cast<double>(n));  // well-conditioned
  return spd;
}

TEST(CholeskyTest, ReconstructsMatrix) {
  Rng rng(11);
  Matrix a = RandomSpd(6, &rng);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix l = chol->lower();
  Matrix rec = l.MatMul(l.Transpose());
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(rec(r, c), a(r, c), 1e-9);
    }
  }
  EXPECT_EQ(chol->applied_jitter(), 0.0);
}

TEST(CholeskyTest, SolvesLinearSystem) {
  Rng rng(13);
  Matrix a = RandomSpd(8, &rng);
  Vector x_true(8);
  for (auto& v : x_true) v = rng.Normal();
  Vector b = a.MatVec(x_true);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Vector x = chol->Solve(b);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, LogDetMatchesKnownDiagonal) {
  Matrix d(3, 3, 0.0);
  d(0, 0) = 2.0;
  d(1, 1) = 3.0;
  d(2, 2) = 4.0;
  auto chol = Cholesky::Factor(d);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(24.0), 1e-12);
}

TEST(CholeskyTest, JitterRescuesSingularMatrix) {
  // Rank-1 matrix (singular): ones everywhere.
  Matrix a(4, 4, 1.0);
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_GT(chol->applied_jitter(), 0.0);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(Cholesky::Factor(a).ok());
}

TEST(CholeskyTest, SolveMatrixColumnwise) {
  Rng rng(17);
  Matrix a = RandomSpd(5, &rng);
  Matrix b(5, 2);
  for (size_t r = 0; r < 5; ++r) {
    b(r, 0) = rng.Normal();
    b(r, 1) = rng.Normal();
  }
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  Matrix x = chol->SolveMatrix(b);
  Matrix ax = a.MatMul(x);
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(ax(r, 0), b(r, 0), 1e-8);
    EXPECT_NEAR(ax(r, 1), b(r, 1), 1e-8);
  }
}

}  // namespace
}  // namespace sparktune
