// Tests for the meta-learning stack: meta-features, similarity learning,
// the ensemble surrogate and the knowledge base.
#include <gtest/gtest.h>

#include <cmath>

#include "meta/knowledge_base.h"
#include "meta/meta_features.h"
#include "meta/meta_surrogate.h"
#include "meta/similarity.h"
#include "sparksim/hibench.h"
#include "sparksim/runtime_model.h"

namespace sparktune {
namespace {

EventLog LogFor(const std::string& task) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  SimOptions opts;
  opts.noise_sigma = 0.0;
  SparkSimulator sim(cluster, opts);
  auto w = HiBenchTask(task);
  EXPECT_TRUE(w.ok());
  SparkConf conf = DecodeSparkConf(space, space.Default());
  return sim.Execute(*w, conf, w->input_gb, 3).event_log;
}

TEST(MetaFeaturesTest, Produces75Dimensions) {
  EventLog log = LogFor("WordCount");
  auto f = ExtractMetaFeatures(log);
  EXPECT_EQ(static_cast<int>(f.size()), kNumMetaFeatures);
  EXPECT_EQ(MetaFeatureNames().size(), f.size());
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(MetaFeaturesTest, SqlFlagAndIterationSignals) {
  auto wc = ExtractMetaFeatures(LogFor("WordCount"));
  auto join = ExtractMetaFeatures(LogFor("Join"));
  auto kmeans = ExtractMetaFeatures(LogFor("KMeans"));
  // Feature 9 = SQL flag.
  EXPECT_EQ(wc[9], 0.0);
  EXPECT_EQ(join[9], 1.0);
  // Feature 5 = iterative fraction: KMeans iterates, WordCount does not.
  EXPECT_GT(kmeans[5], wc[5]);
}

TEST(MetaFeaturesTest, DistinguishesWorkloadFamilies) {
  auto wc = ExtractMetaFeatures(LogFor("WordCount"));
  auto km = ExtractMetaFeatures(LogFor("KMeans"));
  double dist = 0.0;
  for (size_t i = 0; i < wc.size(); ++i) dist += std::fabs(wc[i] - km[i]);
  EXPECT_GT(dist, 1.0);
}

TEST(MetaFeaturesTest, AverageMetaFeatures) {
  std::vector<std::vector<double>> fs = {{1.0, 2.0}, {3.0, 4.0}};
  auto avg = AverageMetaFeatures(fs);
  EXPECT_DOUBLE_EQ(avg[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 3.0);
}

class FnSurrogate final : public Surrogate {
 public:
  explicit FnSurrogate(std::function<double(const std::vector<double>&)> fn,
                       double var = 1.0)
      : fn_(std::move(fn)), var_(var) {}
  Status Fit(const std::vector<std::vector<double>>&,
             const std::vector<double>&) override {
    return Status::OK();
  }
  Prediction Predict(const std::vector<double>& x) const override {
    return {fn_(x), var_};
  }
  size_t num_observations() const override { return 10; }

 private:
  std::function<double(const std::vector<double>&)> fn_;
  double var_;
};

std::vector<std::vector<double>> Probes1D(int n) {
  std::vector<std::vector<double>> p;
  for (int i = 0; i < n; ++i) {
    p.push_back({static_cast<double>(i) / n});
  }
  return p;
}

TEST(SimilarityTest, IdenticalRankingGivesZeroDistance) {
  FnSurrogate a([](const std::vector<double>& x) { return x[0]; });
  FnSurrogate b([](const std::vector<double>& x) { return 100.0 * x[0]; });
  EXPECT_NEAR(SurrogateDistance(a, b, Probes1D(50)), 0.0, 1e-9);
}

TEST(SimilarityTest, InvertedRankingGivesMaxDistance) {
  FnSurrogate a([](const std::vector<double>& x) { return x[0]; });
  FnSurrogate b([](const std::vector<double>& x) { return -x[0]; });
  EXPECT_NEAR(SurrogateDistance(a, b, Probes1D(50)), 1.0, 1e-9);
}

TEST(SimilarityModelTest, LearnsMetaFeatureDistance) {
  // Tasks characterized by one meta-feature; distance = |a - b| clipped.
  Rng rng(3);
  std::vector<SimilarityModel::LabelledPair> pairs;
  for (int i = 0; i < 120; ++i) {
    double a = rng.Uniform(), b = rng.Uniform();
    pairs.push_back({{a, 0.5}, {b, 0.5}, std::min(1.0, std::fabs(a - b))});
  }
  SimilarityModel model;
  ASSERT_TRUE(model.Train(pairs).ok());
  EXPECT_LT(model.PredictDistance({0.5, 0.5}, {0.52, 0.5}), 0.25);
  EXPECT_GT(model.PredictDistance({0.05, 0.5}, {0.95, 0.5}), 0.5);
  // Symmetry by construction.
  EXPECT_DOUBLE_EQ(model.PredictDistance({0.1, 0.5}, {0.9, 0.5}),
                   model.PredictDistance({0.9, 0.5}, {0.1, 0.5}));
}

TEST(SimilarityModelTest, RejectsEmptyTraining) {
  SimilarityModel model;
  EXPECT_FALSE(model.Train({}).ok());
}

TEST(MetaSurrogateTest, WeightsNormalizeToOne) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  auto base = std::make_shared<FnSurrogate>(
      [](const std::vector<double>& x) { return x[0]; }, 0.1);
  BaseSurrogate b;
  b.model = base;
  b.similarity = 0.8;
  b.input_dims = 1;
  b.y_scale = 1.0;
  MetaEnsembleSurrogate ens(schema, {b});
  std::vector<std::vector<double>> x = {{0.1}, {0.4}, {0.5}, {0.7},
                                        {0.8}, {0.9}, {0.2}, {0.3}};
  std::vector<double> y = {1.0, 4.0, 5.0, 7.0, 8.0, 9.0, 2.0, 3.0};
  ASSERT_TRUE(ens.Fit(x, y).ok());
  double total = ens.self_weight();
  for (double w : ens.base_weights()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(ens.self_weight(), 0.0);
}

TEST(MetaSurrogateTest, AccurateSelfModelEarnsHighWeight) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  // Base surrogate is anti-correlated with the target.
  auto bad_base = std::make_shared<FnSurrogate>(
      [](const std::vector<double>& x) { return -x[0]; }, 0.1);
  BaseSurrogate b;
  b.model = bad_base;
  b.similarity = 0.3;
  b.input_dims = 1;
  MetaEnsembleSurrogate ens(schema, {b});
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 18; ++i) {
    double t = i / 18.0;
    x.push_back({t});
    y.push_back(10.0 * t);
  }
  ASSERT_TRUE(ens.Fit(x, y).ok());
  // GP fits the smooth trend well: CV Kendall near 1 -> self weight beats
  // the base's 0.3 similarity.
  EXPECT_GT(ens.self_weight(), ens.base_weights()[0]);
}

TEST(MetaSurrogateTest, BaseKnowledgeHelpsWithFewObservations) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric};
  // Base knows the true function shape.
  auto oracle = std::make_shared<FnSurrogate>(
      [](const std::vector<double>& x) {
        return std::pow(x[0] - 0.3, 2);
      },
      0.01);
  BaseSurrogate b;
  b.model = oracle;
  b.similarity = 0.95;
  b.input_dims = 1;
  b.y_mean = 0.1;  // oracle's own scale stats
  b.y_scale = 0.1;
  MetaEnsembleSurrogate ens(schema, {b});
  // Only three observations of the true function (scaled by 100).
  std::vector<std::vector<double>> x = {{0.0}, {0.5}, {1.0}};
  std::vector<double> y = {9.0, 4.0, 49.0};
  ASSERT_TRUE(ens.Fit(x, y).ok());
  // The ensemble should rank unseen points like the oracle: 0.3 best.
  double at_opt = ens.Predict({0.3}).mean;
  double at_far = ens.Predict({0.9}).mean;
  EXPECT_LT(at_opt, at_far);
}

TEST(KnowledgeBaseTest, WarmStartFromMostSimilarTask) {
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0, 0.5)).ok());
  KnowledgeBaseOptions opts;
  opts.warm_start_tasks = 1;
  KnowledgeBase kb(&space, opts);

  auto add_task = [&](const std::string& id, double meta, double best_x) {
    RunHistory h;
    Rng rng(static_cast<uint64_t>(meta * 1000) + 17);
    for (int i = 0; i < 12; ++i) {
      Observation o;
      double x = rng.Uniform();
      o.config = Configuration({x});
      o.objective = std::pow(x - best_x, 2);
      o.feasible = true;
      h.Add(o);
    }
    // Make sure the exact best config is present.
    Observation best;
    best.config = Configuration({best_x});
    best.objective = 0.0;
    best.feasible = true;
    h.Add(best);
    ASSERT_TRUE(kb.AddTask(id, {meta}, h).ok());
  };
  add_task("low", 0.1, 0.2);
  add_task("high", 0.9, 0.8);
  ASSERT_EQ(kb.size(), 2u);
  ASSERT_TRUE(kb.TrainSimilarityModel().ok());
  EXPECT_TRUE(kb.similarity_trained());

  // A new task whose meta-features resemble "high".
  auto warm = kb.WarmStartConfigs({0.85});
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_NEAR(warm[0][0], 0.8, 1e-9);
  auto warm_low = kb.WarmStartConfigs({0.12});
  ASSERT_EQ(warm_low.size(), 1u);
  EXPECT_NEAR(warm_low[0][0], 0.2, 1e-9);
}

TEST(KnowledgeBaseTest, FallbackDistanceWithoutModel) {
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0, 0.5)).ok());
  KnowledgeBase kb(&space);
  RunHistory h;
  for (int i = 0; i < 5; ++i) {
    Observation o;
    o.config = Configuration({i / 5.0});
    o.objective = i;
    o.feasible = true;
    h.Add(o);
  }
  ASSERT_TRUE(kb.AddTask("a", {0.0, 1.0}, h).ok());
  ASSERT_TRUE(kb.AddTask("b", {1.0, 0.0}, h).ok());
  auto d = kb.DistancesTo({0.05, 0.95});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_LT(d[0], d[1]);  // closer to task a
}

TEST(KnowledgeBaseTest, RejectsTinyHistories) {
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0, 0.5)).ok());
  KnowledgeBase kb(&space);
  RunHistory h;
  Observation o;
  o.config = Configuration({0.5});
  o.feasible = true;
  h.Add(o);
  EXPECT_FALSE(kb.AddTask("tiny", {0.5}, h).ok());
  EXPECT_FALSE(kb.AddTask("empty", {0.5}, RunHistory{}).ok());
}

TEST(KnowledgeBaseTest, ImportanceTransferWeightsBySimilarity) {
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("x", 0.0, 1.0, 0.5)).ok());
  ASSERT_TRUE(space.Add(Parameter::Float("y", 0.0, 1.0, 0.5)).ok());
  KnowledgeBase kb(&space);
  RunHistory h;
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    Observation o;
    o.config = Configuration({rng.Uniform(), rng.Uniform()});
    o.objective = i;
    o.feasible = true;
    h.Add(o);
  }
  ASSERT_TRUE(kb.AddTask("a", {0.0}, h, {0.9, 0.1}).ok());
  ASSERT_TRUE(kb.AddTask("b", {1.0}, h, {0.1, 0.9}).ok());
  auto imp = kb.SuggestImportance({0.02});
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1]);  // dominated by task "a"
}

}  // namespace
}  // namespace sparktune
