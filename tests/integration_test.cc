// End-to-end integration tests: the full framework against the simulator,
// checking the paper's qualitative claims at small scale — cost reduction
// on HiBench tasks, safety improving the feasible-suggestion ratio, and
// meta-learning accelerating a cold start.
#include <gtest/gtest.h>

#include "baselines/ours.h"
#include "baselines/random_search.h"
#include "meta/knowledge_base.h"
#include "meta/meta_features.h"
#include "sparksim/hibench.h"
#include "tuner/online_tuner.h"

namespace sparktune {
namespace {

struct Env {
  Env() : cluster(ClusterSpec::HiBenchCluster()),
          space(BuildSparkSpace(cluster)) {}

  SimulatorEvaluator Evaluator(const std::string& task, uint64_t seed) {
    auto w = HiBenchTask(task);
    EXPECT_TRUE(w.ok());
    SimulatorEvaluatorOptions opts;
    opts.seed = seed;
    return SimulatorEvaluator(&space, *w, cluster, DriftModel::Diurnal(),
                              opts);
  }

  ClusterSpec cluster;
  ConfigSpace space;
};

TEST(IntegrationTest, TwentyIterationsCutCostSubstantially) {
  Env env;
  SimulatorEvaluator eval = env.Evaluator("TeraSort", 11);
  TunerOptions opts;
  opts.budget = 20;
  opts.ei_stop_threshold = 0.0;
  opts.advisor.objective.beta = 0.5;
  opts.advisor.expert_ranking = ExpertParameterRanking();
  opts.advisor.seed = 2;
  OnlineTuner tuner(&env.space, &eval, opts);
  TuningReport report = tuner.RunToCompletion(21);
  ASSERT_TRUE(report.baseline.has_value());
  double reduction =
      1.0 - report.best_objective / report.baseline->objective;
  // The paper reports ~52% average reduction within 9 iterations on
  // production tasks; demand a meaningful (>20%) reduction here.
  EXPECT_GT(reduction, 0.20);
}

TEST(IntegrationTest, SafetyRaisesFeasibleSuggestionRatio) {
  Env env;
  TuningObjective obj;
  obj.beta = 0.5;
  // Constraint: 2x the default-config runtime (computed per seed below).
  int safe_feasible = 0, unsafe_feasible = 0, total = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SimulatorEvaluator probe = env.Evaluator("WordCount", seed);
    auto base = probe.Run(env.space.Default());
    TuningObjective cobj = obj;
    cobj.runtime_max = base.runtime_sec * 2.0;
    cobj.resource_max = base.resource_rate * 2.0;

    OursOptions safe_opts;
    safe_opts.advisor.enable_safety = true;
    OursMethod safe_method(safe_opts);
    SimulatorEvaluator e1 = env.Evaluator("WordCount", seed);
    RunHistory h1 = safe_method.Tune(env.space, &e1, cobj, 20, seed);

    OursOptions unsafe_opts;
    unsafe_opts.advisor.enable_safety = false;
    OursMethod unsafe_method(unsafe_opts, "Ours-NoSafety");
    SimulatorEvaluator e2 = env.Evaluator("WordCount", seed);
    RunHistory h2 = unsafe_method.Tune(env.space, &e2, cobj, 20, seed);

    for (const auto& o : h1.observations()) safe_feasible += o.feasible;
    for (const auto& o : h2.observations()) unsafe_feasible += o.feasible;
    total += 20;
  }
  EXPECT_GE(safe_feasible, unsafe_feasible);
  EXPECT_GT(static_cast<double>(safe_feasible) / total, 0.6);
}

TEST(IntegrationTest, WarmStartBeatsColdStartEarly) {
  Env env;
  TuningObjective obj;
  obj.beta = 0.5;

  // Build a knowledge base from Sort, then tune TeraSort (similar task).
  KnowledgeBaseOptions kb_opts;
  KnowledgeBase kb(&env.space, kb_opts);
  {
    SimulatorEvaluator eval = env.Evaluator("Sort", 21);
    OursMethod ours;
    RunHistory h = ours.Tune(env.space, &eval, obj, 25, 21);
    // Meta-features from one default run of Sort.
    SimulatorEvaluator probe = env.Evaluator("Sort", 22);
    auto out = probe.Run(env.space.Default());
    ASSERT_TRUE(
        kb.AddTask("Sort", ExtractMetaFeatures(out.event_log), h).ok());
  }

  SimulatorEvaluator probe = env.Evaluator("TeraSort", 23);
  auto out = probe.Run(env.space.Default());
  auto warm_configs = kb.WarmStartConfigs(ExtractMetaFeatures(out.event_log));
  ASSERT_FALSE(warm_configs.empty());

  // Compare the best objective within the first 3 iterations.
  auto early_best = [&](bool warm, uint64_t seed) {
    OursOptions oopts;
    if (warm) oopts.warm_start = warm_configs;
    OursMethod method(oopts);
    SimulatorEvaluator eval = env.Evaluator("TeraSort", seed);
    RunHistory h = method.Tune(env.space, &eval, obj, 3, seed);
    return h.BestObjective();
  };
  double warm_total = 0.0, cold_total = 0.0;
  for (uint64_t seed = 31; seed <= 33; ++seed) {
    warm_total += early_best(true, seed);
    cold_total += early_best(false, seed);
  }
  EXPECT_LT(warm_total, cold_total);
}

TEST(IntegrationTest, HiddenDataSizeStillTunes) {
  Env env;
  auto w = HiBenchTask("Scan");
  SimulatorEvaluatorOptions eopts;
  eopts.datasize_observable = false;  // privacy case (§3.3)
  eopts.seed = 41;
  SimulatorEvaluator eval(&env.space, *w, env.cluster,
                          DriftModel::Diurnal(), eopts);
  TunerOptions opts;
  opts.budget = 15;
  opts.ei_stop_threshold = 0.0;
  opts.advisor.expert_ranking = ExpertParameterRanking();
  OnlineTuner tuner(&env.space, &eval, opts);
  TuningReport report = tuner.RunToCompletion(16);
  ASSERT_TRUE(report.baseline.has_value());
  EXPECT_LT(report.best_objective, report.baseline->objective);
}

}  // namespace
}  // namespace sparktune
