// Tests for the workload-context machinery: data-size feature vs the
// hour-of-day/day-of-week fallback (paper §3.3, data-privacy case), plus
// log-target surrogate behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "bo/advisor.h"

namespace sparktune {
namespace {

ConfigSpace TinySpace() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Float("x", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("y", 0.0, 1.0, 0.5)).ok());
  return s;
}

Observation Obs(const Configuration& c, double objective, double ds,
                double hours) {
  Observation o;
  o.config = c;
  o.objective = objective;
  o.runtime_sec = objective;
  o.resource_rate = 1.0;
  o.data_size_gb = ds;
  o.hours = hours;
  o.feasible = true;
  return o;
}

TEST(AdvisorContextTest, UsesDataSizeWhenObservable) {
  ConfigSpace space = TinySpace();
  AdvisorOptions opts;
  opts.init_samples = 2;
  Advisor advisor(&space, opts);
  Rng rng(1);
  for (int i = 0; i < 6; ++i) {
    Configuration c = advisor.Suggest(/*ds=*/50.0, /*hours=*/i);
    advisor.Observe(Obs(c, rng.Uniform(1.0, 2.0), 50.0, i));
  }
  EXPECT_FALSE(advisor.using_time_context());
  EXPECT_EQ(advisor.Schema().size(), space.size() + 1);
}

TEST(AdvisorContextTest, FallsBackToTimeContextWhenDataSizeHidden) {
  ConfigSpace space = TinySpace();
  AdvisorOptions opts;
  opts.init_samples = 2;
  Advisor advisor(&space, opts);
  Rng rng(2);
  for (int i = 0; i < 6; ++i) {
    Configuration c = advisor.Suggest(/*ds=*/-1.0, /*hours=*/i * 1.0);
    advisor.Observe(Obs(c, rng.Uniform(1.0, 2.0), -1.0, i * 1.0));
  }
  EXPECT_TRUE(advisor.using_time_context());
  EXPECT_EQ(advisor.Schema().size(), space.size() + 2);
}

TEST(AdvisorContextTest, FallbackCanBeDisabled) {
  ConfigSpace space = TinySpace();
  AdvisorOptions opts;
  opts.init_samples = 2;
  opts.time_context_fallback = false;
  Advisor advisor(&space, opts);
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    Configuration c = advisor.Suggest(-1.0, i * 1.0);
    advisor.Observe(Obs(c, rng.Uniform(1.0, 2.0), -1.0, i * 1.0));
  }
  EXPECT_FALSE(advisor.using_time_context());
  EXPECT_EQ(advisor.Schema().size(), space.size() + 1);
}

TEST(AdvisorContextTest, TimeContextEncodingIsPeriodic) {
  // TimeOfDayContext wraps daily and weekly.
  auto a = TimeOfDayContext(3.0);
  auto b = TimeOfDayContext(3.0 + 24.0 * 7.0);  // one week later
  ASSERT_EQ(a.size(), 2u);
  EXPECT_NEAR(a[0], b[0], 1e-9);
  EXPECT_NEAR(a[1], b[1], 1e-9);
  auto c = TimeOfDayContext(15.0);
  EXPECT_NE(a[0], c[0]);
}

TEST(AdvisorContextTest, LogTargetsCanBeDisabled) {
  ConfigSpace space = TinySpace();
  AdvisorOptions opts;
  opts.init_samples = 2;
  opts.log_targets = false;
  Advisor advisor(&space, opts);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    Configuration c = advisor.Suggest(10.0, i);
    advisor.Observe(Obs(c, 100.0 + 50.0 * c[0], 10.0, i));
  }
  // Still functions and converges in linear space.
  EXPECT_LT(advisor.BestObjective(), 150.0);
}

TEST(AdvisorContextTest, MixedVisibilityPrefersDataSize) {
  // If any observation exposes the data size, the data-size feature wins.
  ConfigSpace space = TinySpace();
  AdvisorOptions opts;
  opts.init_samples = 2;
  Advisor advisor(&space, opts);
  Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    Configuration c = advisor.Suggest(i == 0 ? 20.0 : -1.0, i);
    advisor.Observe(Obs(c, rng.Uniform(1.0, 2.0), i == 0 ? 20.0 : -1.0, i));
  }
  EXPECT_FALSE(advisor.using_time_context());
}

}  // namespace
}  // namespace sparktune
