// Tests for adaptive sub-space generation: expert seeding, TuRBO-style K
// adaptation, fANOVA-driven re-ranking.
#include <gtest/gtest.h>

#include "bo/subspace_manager.h"
#include "common/rng.h"

namespace sparktune {
namespace {

ConfigSpace MakeSpace(int n) {
  ConfigSpace s;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(
        s.Add(Parameter::Float("p" + std::to_string(i), 0.0, 1.0, 0.5)).ok());
  }
  return s;
}

TEST(SubspaceManagerTest, StartsAtKInitWithExpertRanking) {
  ConfigSpace space = MakeSpace(20);
  SubspaceOptions opts;  // k_init 10
  SubspaceManager mgr(&space, opts, {"p7", "p3", "p11"});
  EXPECT_EQ(mgr.K(), 10);
  auto ranking = mgr.Ranking();
  EXPECT_EQ(ranking[0], 7);
  EXPECT_EQ(ranking[1], 3);
  EXPECT_EQ(ranking[2], 11);
  Subspace sub = mgr.Current(space.Default());
  EXPECT_EQ(sub.num_free(), 10u);
  EXPECT_TRUE(sub.IsFree(7));
}

TEST(SubspaceManagerTest, GrowsAfterConsecutiveSuccesses) {
  ConfigSpace space = MakeSpace(20);
  SubspaceOptions opts;  // tau_succ 3, step 2
  SubspaceManager mgr(&space, opts, {});
  mgr.ReportOutcome(true);
  mgr.ReportOutcome(true);
  EXPECT_EQ(mgr.K(), 10);  // not yet
  mgr.ReportOutcome(true);
  EXPECT_EQ(mgr.K(), 12);
}

TEST(SubspaceManagerTest, FailureResetsSuccessStreak) {
  ConfigSpace space = MakeSpace(20);
  SubspaceManager mgr(&space, SubspaceOptions{}, {});
  mgr.ReportOutcome(true);
  mgr.ReportOutcome(true);
  mgr.ReportOutcome(false);
  mgr.ReportOutcome(true);
  mgr.ReportOutcome(true);
  EXPECT_EQ(mgr.K(), 10);
  mgr.ReportOutcome(true);
  EXPECT_EQ(mgr.K(), 12);
}

TEST(SubspaceManagerTest, ShrinksAfterConsecutiveFailures) {
  ConfigSpace space = MakeSpace(20);
  SubspaceManager mgr(&space, SubspaceOptions{}, {});
  for (int i = 0; i < 5; ++i) mgr.ReportOutcome(false);
  EXPECT_EQ(mgr.K(), 8);
  for (int i = 0; i < 5; ++i) mgr.ReportOutcome(false);
  EXPECT_EQ(mgr.K(), 6);
}

TEST(SubspaceManagerTest, KStaysWithinBounds) {
  ConfigSpace space = MakeSpace(12);
  SubspaceOptions opts;
  opts.k_init = 10;
  opts.k_min = 4;
  SubspaceManager mgr(&space, opts, {});
  for (int i = 0; i < 100; ++i) mgr.ReportOutcome(false);
  EXPECT_EQ(mgr.K(), 4);
  for (int i = 0; i < 100; ++i) mgr.ReportOutcome(true);
  EXPECT_EQ(mgr.K(), 12);  // capped at space size
}

TEST(SubspaceManagerTest, FanovaUpdateRerank) {
  ConfigSpace space = MakeSpace(4);
  SubspaceOptions opts;
  opts.k_init = 2;
  opts.k_min = 2;
  opts.fanova_min_obs = 8;
  opts.fanova_period = 1;
  // Expert thinks p0 matters most.
  SubspaceManager mgr(&space, opts, {"p0", "p1", "p2", "p3"});
  EXPECT_EQ(mgr.Ranking()[0], 0);

  // Reality: only p2 matters. Feed strong evidence repeatedly so the
  // running average overturns the prior.
  Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    std::vector<double> row = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                               rng.Uniform()};
    y.push_back(100.0 * row[2]);
    x.push_back(std::move(row));
  }
  for (int rep = 0; rep < 6; ++rep) {
    mgr.MaybeUpdateImportance(x, y);
    // Trick the period gate by growing the dataset.
    x.push_back({0.5, 0.5, 0.5, 0.5});
    y.push_back(50.0);
  }
  EXPECT_GT(mgr.num_fanova_updates(), 0);
  EXPECT_EQ(mgr.Ranking()[0], 2);
  Subspace sub = mgr.Current(space.Default());
  EXPECT_TRUE(sub.IsFree(2));
}

TEST(SubspaceManagerTest, NoFanovaBeforeMinObservations) {
  ConfigSpace space = MakeSpace(3);
  SubspaceOptions opts;
  opts.fanova_min_obs = 10;
  SubspaceManager mgr(&space, opts, {});
  std::vector<std::vector<double>> x(5, {0.5, 0.5, 0.5});
  std::vector<double> y(5, 1.0);
  mgr.MaybeUpdateImportance(x, y);
  EXPECT_EQ(mgr.num_fanova_updates(), 0);
}

TEST(SubspaceManagerTest, SeedImportanceBlends) {
  ConfigSpace space = MakeSpace(3);
  SubspaceManager mgr(&space, SubspaceOptions{}, {});
  mgr.SeedImportance({0.0, 0.0, 1.0}, 10.0);  // heavy vote for p2
  EXPECT_EQ(mgr.Ranking()[0], 2);
}

}  // namespace
}  // namespace sparktune
