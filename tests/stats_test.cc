// Tests for descriptive statistics and rank correlations.
#include <gtest/gtest.h>

#include <cmath>

#include "common/normal.h"
#include "common/rng.h"
#include "common/stats.h"

namespace sparktune {
namespace {

TEST(StatsTest, MeanVarianceStddev) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(Stddev(v), 2.0);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({1.0}), 0.0);
  EXPECT_EQ(Min({}), 0.0);
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(StatsTest, Quantiles) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 5.0);
}

TEST(StatsTest, SkewnessSign) {
  EXPECT_GT(Skewness({1, 1, 1, 1, 10}), 0.5);
  EXPECT_LT(Skewness({-10, 1, 1, 1, 1}), -0.5);
  EXPECT_NEAR(Skewness({1, 2, 3, 4, 5}), 0.0, 1e-12);
}

TEST(KendallTest, PerfectAgreementAndReversal) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 1.0);
  std::vector<double> r = {50, 40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(KendallTau(a, r), -1.0);
}

TEST(KendallTest, KnownMixedValue) {
  // 1 discordant pair out of 6 -> tau = (5-1)/6.
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {1, 2, 4, 3};
  EXPECT_NEAR(KendallTau(a, b), 4.0 / 6.0, 1e-12);
}

TEST(KendallTest, DegenerateInputs) {
  EXPECT_EQ(KendallTau({1.0}, {2.0}), 0.0);
  // Constant vector: no concordant/discordant pairs.
  EXPECT_EQ(KendallTau({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b;
  for (double x : a) b.push_back(std::exp(x));
  EXPECT_NEAR(SpearmanRho(a, b), 1.0, 1e-12);
}

TEST(SpearmanTest, TiesUseAverageRanks) {
  std::vector<double> v = {1, 2, 2, 3};
  auto ranks = AverageRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(PearsonTest, ConstantSideGivesZero) {
  EXPECT_EQ(PearsonR({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(HistogramTest, ClampsOutliers) {
  auto h = Histogram({-5.0, 0.1, 0.5, 0.9, 99.0}, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2);  // -5 clamps into the first bucket, 0.1 lands there
  EXPECT_EQ(h[1], 3);  // 0.5 and 0.9 land here, 99 clamps into the last
}

TEST(RunningStatTest, MatchesBatch) {
  Rng rng(3);
  std::vector<double> v;
  RunningStat rs;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Normal(3.0, 2.0);
    v.push_back(x);
    rs.Add(x);
  }
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-9);
  EXPECT_NEAR(rs.variance(), Variance(v), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), Min(v));
  EXPECT_DOUBLE_EQ(rs.max(), Max(v));
  EXPECT_EQ(rs.count(), 500u);
}

// Property sweep: NormInvCdf inverts NormCdf across the unit interval.
class NormInvTest : public ::testing::TestWithParam<double> {};

TEST_P(NormInvTest, InverseProperty) {
  double p = GetParam();
  double x = NormInvCdf(p);
  EXPECT_NEAR(NormCdf(x), p, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, NormInvTest,
                         ::testing::Values(1e-6, 0.001, 0.01, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.99, 0.999, 1.0 - 1e-6));

TEST(NormalTest, PdfPeakAndSymmetry) {
  EXPECT_NEAR(NormPdf(0.0), 0.3989422804, 1e-9);
  EXPECT_DOUBLE_EQ(NormPdf(1.3), NormPdf(-1.3));
  EXPECT_NEAR(NormCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormCdf(1.96) - NormCdf(-1.96), 0.95, 1e-3);
}

}  // namespace
}  // namespace sparktune
