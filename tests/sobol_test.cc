// Tests for low-discrepancy sequences: validity, determinism, and actual
// low-discrepancy (better space coverage than iid uniform sampling).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "space/sobol.h"

namespace sparktune {
namespace {

TEST(SobolTest, PointsInUnitCube) {
  SobolSequence seq(5);
  for (int i = 0; i < 500; ++i) {
    auto p = seq.Next();
    ASSERT_EQ(p.size(), 5u);
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(SobolTest, Deterministic) {
  SobolSequence a(4), b(4);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SobolTest, FirstDimensionIsVanDerCorput) {
  SobolSequence seq(1);
  seq.Next();  // origin
  EXPECT_DOUBLE_EQ(seq.Next()[0], 0.5);
  EXPECT_DOUBLE_EQ(seq.Next()[0], 0.75);
  EXPECT_DOUBLE_EQ(seq.Next()[0], 0.25);
}

TEST(SobolTest, Distinct1DPrefix) {
  // The first 2^k points of a Sobol dimension are distinct multiples of
  // 2^-k.
  SobolSequence seq(2);
  std::set<double> seen;
  for (int i = 0; i < 128; ++i) seen.insert(seq.Next()[0]);
  EXPECT_EQ(seen.size(), 128u);
}

// Box-counting discrepancy proxy: split [0,1)^2 into a g x g grid and
// measure the max deviation of bucket counts from uniform.
double GridImbalance(const std::vector<std::vector<double>>& pts, int g) {
  std::vector<int> counts(static_cast<size_t>(g * g), 0);
  for (const auto& p : pts) {
    int x = std::min(g - 1, static_cast<int>(p[0] * g));
    int y = std::min(g - 1, static_cast<int>(p[1] * g));
    ++counts[static_cast<size_t>(y * g + x)];
  }
  double expected = static_cast<double>(pts.size()) / (g * g);
  double worst = 0.0;
  for (int c : counts) worst = std::max(worst, std::fabs(c - expected));
  return worst / expected;
}

TEST(SobolTest, MoreUniformThanRandom) {
  const int n = 1024;
  SobolSequence seq(2);
  std::vector<std::vector<double>> sobol_pts, rand_pts;
  Rng rng(123);
  for (int i = 0; i < n; ++i) {
    sobol_pts.push_back(seq.Next());
    rand_pts.push_back({rng.Uniform(), rng.Uniform()});
  }
  EXPECT_LT(GridImbalance(sobol_pts, 8), GridImbalance(rand_pts, 8));
}

TEST(HaltonTest, PointsInUnitCubeAnyDim) {
  HaltonSequence seq(31);
  for (int i = 0; i < 300; ++i) {
    auto p = seq.Next();
    ASSERT_EQ(p.size(), 31u);
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
  }
}

TEST(HaltonTest, ScrambleSeedChangesSequence) {
  HaltonSequence a(6, 1), b(6, 2);
  bool differs = false;
  for (int i = 0; i < 32 && !differs; ++i) {
    if (a.Next() != b.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(HaltonTest, MoreUniformThanRandom) {
  const int n = 1024;
  HaltonSequence seq(2, 5);
  std::vector<std::vector<double>> pts, rand_pts;
  Rng rng(321);
  for (int i = 0; i < n; ++i) {
    pts.push_back(seq.Next());
    rand_pts.push_back({rng.Uniform(), rng.Uniform()});
  }
  EXPECT_LT(GridImbalance(pts, 8), GridImbalance(rand_pts, 8));
}

TEST(QuasiRandomTest, PicksSobolForSmallDims) {
  QuasiRandomSampler small(10);
  EXPECT_TRUE(small.using_sobol());
  QuasiRandomSampler large(31);
  EXPECT_FALSE(large.using_sobol());
  EXPECT_EQ(small.Next().size(), 10u);
  EXPECT_EQ(large.Next().size(), 31u);
}

TEST(PrimesTest, FirstPrimes) {
  auto p = FirstPrimes(8);
  EXPECT_EQ(p, (std::vector<int>{2, 3, 5, 7, 11, 13, 17, 19}));
}

// Property sweep: every Sobol dimension is individually well distributed.
class SobolDimTest : public ::testing::TestWithParam<int> {};

TEST_P(SobolDimTest, MarginalMeanIsHalf) {
  int dim = GetParam();
  SobolSequence seq(dim);
  std::vector<double> sums(static_cast<size_t>(dim), 0.0);
  const int n = 512;
  for (int i = 0; i < n; ++i) {
    auto p = seq.Next();
    for (int d = 0; d < dim; ++d) sums[static_cast<size_t>(d)] += p[static_cast<size_t>(d)];
  }
  for (int d = 0; d < dim; ++d) {
    EXPECT_NEAR(sums[static_cast<size_t>(d)] / n, 0.5, 0.03) << "dim " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SobolDimTest,
                         ::testing::Values(1, 2, 5, 10, 19));

}  // namespace
}  // namespace sparktune
