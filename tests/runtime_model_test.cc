// Tests for the simulator runtime model: determinism, monotonicity
// properties, failure injection, and resource accounting. These pin down
// the behaviors the tuner relies on (memory pressure -> spills/OOM,
// parallelism -> wave count, compression trade-offs).
#include <gtest/gtest.h>

#include <cmath>

#include "sparksim/hibench.h"
#include "sparksim/runtime_model.h"

namespace sparktune {
namespace {

class RuntimeModelTest : public ::testing::Test {
 protected:
  RuntimeModelTest()
      : cluster_(ClusterSpec::HiBenchCluster()),
        space_(BuildSparkSpace(cluster_)) {
    SimOptions opts;
    opts.noise_sigma = 0.0;  // deterministic for monotonicity checks
    sim_ = std::make_unique<SparkSimulator>(cluster_, opts);
  }

  SparkConf ConfWith(std::function<void(Configuration*)> edit) const {
    Configuration c = space_.Default();
    edit(&c);
    return DecodeSparkConf(space_, space_.Legalize(c));
  }

  ExecutionResult Run(const std::string& task, const SparkConf& conf,
                      double gb = -1.0, uint64_t seed = 1) const {
    auto w = HiBenchTask(task);
    EXPECT_TRUE(w.ok());
    return sim_->Execute(*w, conf, gb > 0 ? gb : w->input_gb, seed);
  }

  ClusterSpec cluster_;
  ConfigSpace space_;
  std::unique_ptr<SparkSimulator> sim_;
};

TEST_F(RuntimeModelTest, DeterministicForSameSeed) {
  SparkConf conf = ConfWith([](Configuration*) {});
  ExecutionResult a = Run("WordCount", conf, 100.0, 7);
  ExecutionResult b = Run("WordCount", conf, 100.0, 7);
  EXPECT_DOUBLE_EQ(a.runtime_sec, b.runtime_sec);
  EXPECT_DOUBLE_EQ(a.cpu_core_hours, b.cpu_core_hours);
}

TEST_F(RuntimeModelTest, NoiseVariesAcrossSeeds) {
  SimOptions opts;
  opts.noise_sigma = 0.05;
  SparkSimulator noisy(cluster_, opts);
  auto w = HiBenchTask("WordCount");
  SparkConf conf = ConfWith([](Configuration*) {});
  double r1 = noisy.Execute(*w, conf, 100.0, 1).runtime_sec;
  double r2 = noisy.Execute(*w, conf, 100.0, 2).runtime_sec;
  EXPECT_NE(r1, r2);
  EXPECT_NEAR(r1 / r2, 1.0, 0.5);
}

TEST_F(RuntimeModelTest, MoreDataTakesLonger) {
  SparkConf conf = ConfWith([](Configuration*) {});
  double small = Run("WordCount", conf, 50.0).runtime_sec;
  double large = Run("WordCount", conf, 400.0).runtime_sec;
  EXPECT_GT(large, small * 2.0);
}

TEST_F(RuntimeModelTest, MoreExecutorsSpeedUpLargeJobs) {
  SparkConf few = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kExecutorInstances, 4);
  });
  SparkConf many = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kExecutorInstances, 32);
  });
  double slow = Run("TeraSort", few).runtime_sec;
  double fast = Run("TeraSort", many).runtime_sec;
  EXPECT_LT(fast, slow);
}

TEST_F(RuntimeModelTest, TinyMemoryCausesSpillsOrWorse) {
  SparkConf ample = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kExecutorMemory, 16);
    space_.Set(c, spark_param::kExecutorCores, 2);
    // Enough partitions that per-task working sets fit in memory.
    space_.Set(c, spark_param::kDefaultParallelism, 1024);
  });
  SparkConf starved = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kExecutorMemory, 1);
    space_.Set(c, spark_param::kExecutorCores, 8);
    space_.Set(c, spark_param::kDefaultParallelism, 8);  // huge tasks
  });
  ExecutionResult good = Run("Bayes", ample);
  ExecutionResult bad = Run("Bayes", starved);
  EXPECT_EQ(good.event_log.TotalSpillMb(), 0.0);
  // Memory starvation must show up as spill, OOM failure, or a slowdown.
  bool degraded = bad.failed || bad.event_log.TotalSpillMb() > 0.0 ||
                  bad.runtime_sec > good.runtime_sec;
  EXPECT_TRUE(degraded);
}

TEST_F(RuntimeModelTest, ImpossibleExecutorShapeFailsFast) {
  SparkConf conf = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kExecutorMemory, 48);
    space_.Set(c, spark_param::kExecutorMemoryOverhead, 4096);
    space_.Set(c, spark_param::kExecutorCores, 8);
  });
  // 48+4 GB fits a 512 GB node, so craft a small cluster instead.
  ClusterSpec tiny;
  tiny.num_nodes = 1;
  tiny.cores_per_node = 4;
  tiny.mem_per_node_gb = 8.0;
  SimOptions opts;
  opts.noise_sigma = 0.0;
  SparkSimulator sim(tiny, opts);
  auto w = HiBenchTask("WordCount");
  ExecutionResult r = sim.Execute(*w, conf, 10.0, 1);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.failure, SimFailureKind::kNoExecutors);
  EXPECT_EQ(r.granted_executors, 0);
}

TEST_F(RuntimeModelTest, ResourceAccountingConsistent) {
  SparkConf conf = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kExecutorInstances, 10);
    space_.Set(c, spark_param::kExecutorCores, 4);
    space_.Set(c, spark_param::kExecutorMemory, 8);
  });
  ExecutionResult r = Run("WordCount", conf);
  ASSERT_FALSE(r.failed);
  ASSERT_EQ(r.granted_executors, 10);
  double expected_cpu =
      (10.0 * 4 + conf.driver_cores) * r.runtime_sec / 3600.0;
  EXPECT_NEAR(r.cpu_core_hours, expected_cpu, 1e-9);
  double expected_mem =
      (10.0 * conf.container_mem_gb() + conf.driver_memory_gb) *
      r.runtime_sec / 3600.0;
  EXPECT_NEAR(r.memory_gb_hours, expected_mem, 1e-9);
  EXPECT_DOUBLE_EQ(r.resource_rate, ResourceFunction(conf));
}

TEST_F(RuntimeModelTest, EventLogCoversAllStages) {
  SparkConf conf = ConfWith([](Configuration*) {});
  auto w = HiBenchTask("PageRank");
  ExecutionResult r = sim_->Execute(*w, conf, w->input_gb, 1);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.event_log.stages.size(), w->stages.size());
  EXPECT_GT(r.event_log.TotalTasks(), 0);
  // Iterative stage recorded with its iteration count.
  bool found_iter = false;
  for (const auto& s : r.event_log.stages) {
    if (s.op == StageOp::kIterUpdate) {
      EXPECT_GT(s.iterations, 1);
      found_iter = true;
    }
  }
  EXPECT_TRUE(found_iter);
}

TEST_F(RuntimeModelTest, ShuffleHeavyJobMovesShuffleBytes) {
  SparkConf conf = ConfWith([](Configuration*) {});
  ExecutionResult r = Run("TeraSort", conf);
  ASSERT_FALSE(r.failed);
  EXPECT_GT(r.event_log.TotalShuffleMb(), 1000.0);
}

TEST_F(RuntimeModelTest, KryoBeatsJavaOnShuffleHeavyJob) {
  SparkConf java = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kSerializer, 0);
  });
  SparkConf kryo = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kSerializer, 1);
  });
  EXPECT_LT(Run("TeraSort", kryo).runtime_sec,
            Run("TeraSort", java).runtime_sec);
}

TEST_F(RuntimeModelTest, FailedRunReportsOverrun) {
  // Force a driver OOM: tiny driver memory on a collect-heavy job.
  ClusterSpec cluster = cluster_;
  SimOptions opts;
  opts.noise_sigma = 0.0;
  opts.failure_overrun = 2.0;
  SparkSimulator sim(cluster, opts);
  auto w = HiBenchTask("PCA");  // ends with a large collect
  SparkConf conf = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kDriverMemory, 1);
    // Keep executors healthy so only the driver can fail.
    space_.Set(c, spark_param::kExecutorMemory, 32);
    space_.Set(c, spark_param::kExecutorMemoryOverhead, 4096);
    space_.Set(c, spark_param::kExecutorCores, 2);
    space_.Set(c, spark_param::kDefaultParallelism, 2000);
  });
  ExecutionResult r = sim.Execute(*w, conf, 400.0, 1);
  if (r.failed) {
    EXPECT_EQ(r.failure, SimFailureKind::kDriverOom);
    EXPECT_GT(r.runtime_sec, 0.0);
  }
  // With a large driver the same job succeeds.
  SparkConf big = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kDriverMemory, 16);
    space_.Set(c, spark_param::kExecutorMemory, 32);
    space_.Set(c, spark_param::kExecutorMemoryOverhead, 4096);
    space_.Set(c, spark_param::kExecutorCores, 2);
    space_.Set(c, spark_param::kDefaultParallelism, 2000);
  });
  ExecutionResult ok = sim.Execute(*w, big, 400.0, 1);
  EXPECT_FALSE(ok.failed && ok.failure == SimFailureKind::kDriverOom);
}

TEST_F(RuntimeModelTest, SpeculationTrimsStragglerTail) {
  SparkConf off = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kSpeculation, 0);
  });
  SparkConf on = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kSpeculation, 1);
  });
  // PageRank has highly skewed tasks; speculation should help runtime.
  EXPECT_LT(Run("PageRank", on).runtime_sec,
            Run("PageRank", off).runtime_sec * 1.02);
}

TEST_F(RuntimeModelTest, GrantedExecutorsCappedByCluster) {
  SparkConf conf = ConfWith([this](Configuration* c) {
    space_.Set(c, spark_param::kExecutorInstances, 1000);
    space_.Set(c, spark_param::kExecutorCores, 8);
    space_.Set(c, spark_param::kExecutorMemory, 16);
  });
  ExecutionResult r = Run("WordCount", conf);
  EXPECT_LT(r.granted_executors, 1000);
  EXPECT_GT(r.granted_executors, 0);
}

TEST(SimFailureKindTest, NamesAreStable) {
  EXPECT_STREQ(SimFailureKindName(SimFailureKind::kNone), "none");
  EXPECT_STREQ(SimFailureKindName(SimFailureKind::kExecutorOom), "executor-oom");
  EXPECT_STREQ(SimFailureKindName(SimFailureKind::kDriverOom), "driver-oom");
  EXPECT_STREQ(SimFailureKindName(SimFailureKind::kNoExecutors), "no-executors");
}

}  // namespace
}  // namespace sparktune
