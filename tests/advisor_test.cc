// Tests for the Advisor (Algorithm 1+2) against a synthetic evaluator with
// a known optimum and a known unsafe region.
#include <gtest/gtest.h>

#include <cmath>

#include "bo/advisor.h"

namespace sparktune {
namespace {

ConfigSpace SynthSpace() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Float("x0", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("x1", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("x2", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(s.Add(Parameter::Bool("flag", false)).ok());
  return s;
}

// Synthetic black box: runtime quadratic around (0.2, 0.7); resource is
// linear in x2. Optimum well inside the space.
struct SynthBlackBox {
  double Runtime(const Configuration& c) const {
    double d = std::pow(c[0] - 0.2, 2) + std::pow(c[1] - 0.7, 2);
    return 50.0 + 400.0 * d;
  }
  double Resource(const Configuration& c) const { return 10.0 + 20.0 * c[2]; }

  Observation Evaluate(const Configuration& c, const TuningObjective& obj,
                       int iter) const {
    Observation o;
    o.config = c;
    o.runtime_sec = Runtime(c);
    o.resource_rate = Resource(c);
    o.objective = obj.Value(o.runtime_sec, o.resource_rate);
    o.feasible = obj.Feasible(o.runtime_sec, o.resource_rate);
    o.failure = FailureKind::kNone;
    o.iteration = iter;
    o.data_size_gb = 100.0;
    return o;
  }
};

AdvisorOptions BaseOptions(const SynthBlackBox* box) {
  AdvisorOptions opts;
  opts.objective.beta = 0.5;
  opts.resource_fn = [box](const Configuration& c) {
    return box->Resource(c);
  };
  opts.init_samples = 3;
  opts.subspace.k_init = 4;
  opts.subspace.k_min = 2;
  opts.seed = 7;
  return opts;
}

TEST(AdvisorTest, SuggestionsAreAlwaysValidAndFresh) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  Advisor advisor(&space, opts);
  for (int i = 0; i < 15; ++i) {
    Configuration c = advisor.Suggest(100.0);
    ASSERT_TRUE(space.Validate(c).ok());
    EXPECT_FALSE(advisor.history().Contains(c));
    advisor.Observe(box.Evaluate(c, opts.objective, i));
  }
  EXPECT_EQ(advisor.history().size(), 15u);
}

TEST(AdvisorTest, ConvergesTowardOptimum) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  Advisor advisor(&space, opts);
  for (int i = 0; i < 25; ++i) {
    Configuration c = advisor.Suggest(100.0);
    advisor.Observe(box.Evaluate(c, opts.objective, i));
  }
  // Best found should beat the default config clearly.
  double default_obj = opts.objective.Value(
      box.Runtime(space.Default()), box.Resource(space.Default()));
  EXPECT_LT(advisor.BestObjective(), default_obj);
  Configuration best = advisor.BestConfig();
  // Rough convergence toward the runtime optimum and low resource.
  EXPECT_LT(box.Runtime(best), 110.0);
}

TEST(AdvisorTest, WarmStartConfigsUsedFirst) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  Advisor advisor(&space, opts);
  Configuration w1 = space.Default();
  w1[0] = 0.21;
  Configuration w2 = space.Default();
  w2[0] = 0.91;
  advisor.SetWarmStartConfigs({w1, w2});
  Configuration first = advisor.Suggest(100.0);
  EXPECT_TRUE(first == w1);
  advisor.Observe(box.Evaluate(first, opts.objective, 0));
  Configuration second = advisor.Suggest(100.0);
  EXPECT_TRUE(second == w2);
  EXPECT_TRUE(advisor.last_was_initial());
}

TEST(AdvisorTest, AgdFiresOnSchedule) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  opts.agd.period = 5;
  Advisor advisor(&space, opts);
  std::vector<bool> agd_flags;
  for (int i = 0; i < 15; ++i) {
    Configuration c = advisor.Suggest(100.0);
    agd_flags.push_back(advisor.last_was_agd());
    advisor.Observe(box.Evaluate(c, opts.objective, i));
  }
  // AGD replaces BO when (|D|+1) % 5 == 0, i.e. before the 5th, 10th, ...
  // observation (0-indexed suggestion 4, 9, 14).
  EXPECT_TRUE(agd_flags[4]);
  EXPECT_TRUE(agd_flags[9]);
  EXPECT_TRUE(agd_flags[14]);
  EXPECT_FALSE(agd_flags[5]);
  int agd_count = 0;
  for (bool b : agd_flags) agd_count += b ? 1 : 0;
  EXPECT_EQ(agd_count, 3);
}

TEST(AdvisorTest, AgdCanBeDisabled) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  opts.enable_agd = false;
  Advisor advisor(&space, opts);
  for (int i = 0; i < 12; ++i) {
    Configuration c = advisor.Suggest(100.0);
    EXPECT_FALSE(advisor.last_was_agd());
    advisor.Observe(box.Evaluate(c, opts.objective, i));
  }
}

TEST(AdvisorTest, SafetyAvoidsKnownUnsafeRegion) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  // Runtime constraint: forbid configs far from the optimum.
  AdvisorOptions safe_opts = BaseOptions(&box);
  safe_opts.objective.runtime_max = 150.0;
  safe_opts.enable_safety = true;
  safe_opts.safety_gamma = 1.0;

  AdvisorOptions unsafe_opts = safe_opts;
  unsafe_opts.enable_safety = false;

  auto run = [&](AdvisorOptions opts) {
    Advisor advisor(&space, opts);
    int violations = 0;
    for (int i = 0; i < 25; ++i) {
      Configuration c = advisor.Suggest(100.0);
      Observation o = box.Evaluate(c, opts.objective, i);
      if (!o.feasible) ++violations;
      advisor.Observe(o);
    }
    return violations;
  };
  int v_safe = run(safe_opts);
  int v_unsafe = run(unsafe_opts);
  EXPECT_LE(v_safe, v_unsafe + 1);
  // The safe advisor should keep violations low after warm-up.
  EXPECT_LT(v_safe, 12);
}

TEST(AdvisorTest, ResourceConstraintHonoredExactly) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  opts.objective.resource_max = 20.0;  // x2 <= 0.5
  Advisor advisor(&space, opts);
  int violations = 0;
  for (int i = 0; i < 20; ++i) {
    Configuration c = advisor.Suggest(100.0);
    Observation o = box.Evaluate(c, opts.objective, i);
    if (i >= opts.init_samples && box.Resource(c) > 20.0) ++violations;
    advisor.Observe(o);
  }
  // The resource constraint is white-box: after the initial design no
  // suggestion should violate it.
  EXPECT_EQ(violations, 0);
}

TEST(AdvisorTest, BestConfigFallsBackToDefault) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  Advisor advisor(&space, opts);
  EXPECT_TRUE(advisor.BestConfig() == space.Default());
  EXPECT_TRUE(std::isinf(advisor.BestObjective()));
}

TEST(AdvisorTest, FailedObservationsDoNotBecomeIncumbent) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  Advisor advisor(&space, opts);
  Observation bad;
  bad.config = space.Default();
  bad.objective = 0.001;  // absurdly good but failed
  bad.failure = FailureKind::kOom;
  bad.feasible = false;
  advisor.Observe(bad);
  Observation good = box.Evaluate(space.Default(), opts.objective, 1);
  // Make the config distinct so both entries coexist.
  Configuration other = space.Default();
  other[0] = 0.3;
  good.config = other;
  advisor.Observe(good);
  EXPECT_DOUBLE_EQ(advisor.BestObjective(), good.objective);
}

TEST(AdvisorTest, SchemaIncludesDataSizeWhenAware) {
  ConfigSpace space = SynthSpace();
  SynthBlackBox box;
  AdvisorOptions opts = BaseOptions(&box);
  opts.datasize_aware = true;
  Advisor a1(&space, opts);
  EXPECT_EQ(a1.Schema().size(), space.size() + 1);
  opts.datasize_aware = false;
  Advisor a2(&space, opts);
  EXPECT_EQ(a2.Schema().size(), space.size());
}

}  // namespace
}  // namespace sparktune
