// Tests for the synthetic production fleet generator and the eight named
// advertisement tasks (Table 2 substrate).
#include <gtest/gtest.h>

#include "sparksim/production.h"
#include "sparksim/runtime_model.h"
#include "sparksim/spark_conf.h"

namespace sparktune {
namespace {

TEST(ProductionFleetTest, GeneratesRequestedCount) {
  ProductionFleetOptions opts;
  opts.num_tasks = 50;
  auto fleet = GenerateProductionFleet(opts, 1);
  EXPECT_EQ(fleet.size(), 50u);
}

TEST(ProductionFleetTest, DeterministicInSeed) {
  ProductionFleetOptions opts;
  opts.num_tasks = 10;
  auto a = GenerateProductionFleet(opts, 7);
  auto b = GenerateProductionFleet(opts, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].workload.name, b[i].workload.name);
    EXPECT_TRUE(a[i].manual_config == b[i].manual_config);
    EXPECT_DOUBLE_EQ(a[i].workload.input_gb, b[i].workload.input_gb);
  }
  auto c = GenerateProductionFleet(opts, 8);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].manual_config == c[i].manual_config)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ProductionFleetTest, TasksAreWellFormed) {
  ProductionFleetOptions opts;
  opts.num_tasks = 40;
  auto fleet = GenerateProductionFleet(opts, 3);
  int sql = 0;
  for (const auto& t : fleet) {
    EXPECT_TRUE(t.workload.Valid()) << t.id;
    ConfigSpace space = BuildSparkSpace(t.cluster);
    EXPECT_TRUE(space.Validate(t.manual_config).ok()) << t.id;
    if (t.workload.is_sql) {
      ++sql;
      EXPECT_DOUBLE_EQ(t.period_hours, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(t.period_hours, 24.0);
    }
  }
  // Roughly half SQL at the default fraction.
  EXPECT_GT(sql, 8);
  EXPECT_LT(sql, 32);
}

TEST(ProductionFleetTest, ManualConfigsRunnable) {
  ProductionFleetOptions opts;
  opts.num_tasks = 12;
  auto fleet = GenerateProductionFleet(opts, 5);
  for (const auto& t : fleet) {
    ConfigSpace space = BuildSparkSpace(t.cluster);
    SimOptions sopts;
    sopts.noise_sigma = 0.0;
    SparkSimulator sim(t.cluster, sopts);
    SparkConf conf = DecodeSparkConf(space, t.manual_config);
    ExecutionResult r =
        sim.Execute(t.workload, conf, t.workload.input_gb, 1);
    EXPECT_GT(r.runtime_sec, 0.0) << t.id;
    // Over-provisioned manual configs should generally not fail outright.
    EXPECT_NE(r.failure, SimFailureKind::kNoExecutors) << t.id;
  }
}

TEST(EightTasksTest, MatchesPaperManualShapes) {
  auto tasks = EightAdvertisementTasks();
  ASSERT_EQ(tasks.size(), 8u);
  // Table 2 manual executor settings for the first task.
  const ProductionTask& fe = tasks[0];
  EXPECT_EQ(fe.id, "Spark: Feature Extraction");
  ConfigSpace space = BuildSparkSpace(fe.cluster);
  EXPECT_DOUBLE_EQ(
      space.Get(fe.manual_config, spark_param::kExecutorInstances), 300.0);
  EXPECT_DOUBLE_EQ(space.Get(fe.manual_config, spark_param::kExecutorCores),
                   2.0);
  EXPECT_DOUBLE_EQ(space.Get(fe.manual_config, spark_param::kExecutorMemory),
                   8.0);
  // Four daily Spark + four hourly SQL.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(tasks[i].workload.is_sql) << tasks[i].id;
    EXPECT_DOUBLE_EQ(tasks[i].period_hours, 24.0);
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_TRUE(tasks[i].workload.is_sql) << tasks[i].id;
    EXPECT_DOUBLE_EQ(tasks[i].period_hours, 1.0);
  }
}

TEST(EightTasksTest, AllManualConfigsValidAndRunnable) {
  for (const auto& t : EightAdvertisementTasks()) {
    ConfigSpace space = BuildSparkSpace(t.cluster);
    ASSERT_TRUE(space.Validate(t.manual_config).ok()) << t.id;
    SimOptions sopts;
    sopts.noise_sigma = 0.0;
    SparkSimulator sim(t.cluster, sopts);
    SparkConf conf = DecodeSparkConf(space, t.manual_config);
    ExecutionResult r =
        sim.Execute(t.workload, conf, t.workload.input_gb, 2);
    EXPECT_FALSE(r.failed) << t.id << ": " << SimFailureKindName(r.failure);
  }
}

}  // namespace
}  // namespace sparktune
