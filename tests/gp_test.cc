// Tests for Gaussian process regression: interpolation, uncertainty
// behavior, hyperparameter optimization, mixed/datasize inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/gp.h"

namespace sparktune {
namespace {

std::vector<FeatureKind> Numeric1D() { return {FeatureKind::kNumeric}; }

TEST(GpTest, RejectsBadInputs) {
  GaussianProcess gp(Numeric1D());
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.1}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(gp.Fit({{0.1, 0.2}}, {1.0}).ok());  // row width mismatch
}

TEST(GpTest, PriorBeforeFit) {
  GaussianProcess gp(Numeric1D());
  Prediction p = gp.Predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_GT(p.variance, 0.0);
  EXPECT_EQ(gp.num_observations(), 0u);
}

TEST(GpTest, InterpolatesTrainingPoints) {
  GaussianProcess gp(Numeric1D());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    x.push_back({t});
    y.push_back(std::sin(6.0 * t));
  }
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    Prediction p = gp.Predict(x[i]);
    EXPECT_NEAR(p.mean, y[i], 0.12) << "at " << x[i][0];
  }
}

TEST(GpTest, PredictsHeldOutPoints) {
  GaussianProcess gp(Numeric1D());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    x.push_back({t});
    y.push_back(std::sin(6.0 * t));
  }
  ASSERT_TRUE(gp.Fit(x, y).ok());
  // Held-out midpoints.
  for (double t = 0.025; t < 1.0; t += 0.1) {
    Prediction p = gp.Predict({t});
    EXPECT_NEAR(p.mean, std::sin(6.0 * t), 0.15);
  }
}

TEST(GpTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(Numeric1D());
  ASSERT_TRUE(gp.Fit({{0.4}, {0.45}, {0.5}}, {1.0, 1.2, 1.1}).ok());
  double var_near = gp.Predict({0.45}).variance;
  double var_far = gp.Predict({0.99}).variance;
  EXPECT_LT(var_near, var_far);
}

TEST(GpTest, RobustToNoise) {
  Rng rng(7);
  GaussianProcess gp(Numeric1D());
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    double t = rng.Uniform();
    x.push_back({t});
    y.push_back(2.0 * t + rng.Normal(0.0, 0.1));
  }
  ASSERT_TRUE(gp.Fit(x, y).ok());
  // Recovers the underlying trend within noise.
  EXPECT_NEAR(gp.Predict({0.25}).mean, 0.5, 0.2);
  EXPECT_NEAR(gp.Predict({0.75}).mean, 1.5, 0.2);
}

TEST(GpTest, HyperOptImprovesLikelihood) {
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 25; ++i) {
    double t = rng.Uniform();
    x.push_back({t});
    y.push_back(std::sin(10.0 * t));
  }
  GpOptions fixed;
  fixed.optimize_hypers = false;
  GaussianProcess gp_fixed(Numeric1D(), fixed);
  ASSERT_TRUE(gp_fixed.Fit(x, y).ok());
  GaussianProcess gp_opt(Numeric1D());
  ASSERT_TRUE(gp_opt.Fit(x, y).ok());
  EXPECT_GE(gp_opt.log_marginal_likelihood(),
            gp_fixed.log_marginal_likelihood());
}

TEST(GpTest, ConstantTargetsHandled) {
  GaussianProcess gp(Numeric1D());
  ASSERT_TRUE(gp.Fit({{0.1}, {0.5}, {0.9}}, {3.0, 3.0, 3.0}).ok());
  EXPECT_NEAR(gp.Predict({0.3}).mean, 3.0, 1e-6);
}

TEST(GpTest, CategoricalFeatureSeparatesLevels) {
  std::vector<FeatureKind> schema = {FeatureKind::kCategorical};
  GaussianProcess gp(schema);
  // Category encodings at bucket centers; two levels with distinct values.
  std::vector<std::vector<double>> x = {{0.25}, {0.25}, {0.75}, {0.75}};
  std::vector<double> y = {1.0, 1.1, 5.0, 5.2};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  EXPECT_LT(gp.Predict({0.25}).mean, 2.5);
  EXPECT_GT(gp.Predict({0.75}).mean, 3.5);
}

TEST(GpTest, DataSizeFeatureInforms) {
  std::vector<FeatureKind> schema = {FeatureKind::kNumeric,
                                     FeatureKind::kDataSize};
  GaussianProcess gp(schema);
  // Runtime grows with datasize regardless of the config coordinate.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    double c = rng.Uniform(), ds = rng.Uniform();
    x.push_back({c, ds});
    y.push_back(10.0 * ds + rng.Normal(0.0, 0.05));
  }
  ASSERT_TRUE(gp.Fit(x, y).ok());
  EXPECT_GT(gp.Predict({0.5, 0.9}).mean, gp.Predict({0.5, 0.1}).mean + 4.0);
}

TEST(GpTest, VarianceIsNonNegativeEverywhere) {
  GaussianProcess gp(Numeric1D());
  ASSERT_TRUE(gp.Fit({{0.0}, {0.5}, {1.0}}, {0.0, 1.0, 0.0}).ok());
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    EXPECT_GE(gp.Predict({t}).variance, 0.0);
  }
}

}  // namespace
}  // namespace sparktune
