// Lifecycle tests for the Advisor: warm-start-driven initial design
// (paper §5.2 — transferred configs ARE the init design), restart
// semantics, and incumbent bookkeeping across phases.
#include <gtest/gtest.h>

#include <cmath>

#include "bo/advisor.h"

namespace sparktune {
namespace {

ConfigSpace TwoD() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Float("a", 0.0, 1.0, 0.5)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("b", 0.0, 1.0, 0.5)).ok());
  return s;
}

Observation Obs(const Configuration& c, double objective) {
  Observation o;
  o.config = c;
  o.objective = objective;
  o.runtime_sec = objective;
  o.resource_rate = 1.0;
  o.data_size_gb = 10.0;
  o.feasible = true;
  return o;
}

TEST(AdvisorLifecycleTest, WarmStartShortensInitialDesign) {
  ConfigSpace space = TwoD();
  AdvisorOptions opts;
  opts.init_samples = 5;
  Advisor advisor(&space, opts);
  Configuration w = space.Default();
  w[0] = 0.9;
  advisor.SetWarmStartConfigs({w});
  // One warm config => exactly one initial suggestion, then model-driven.
  Configuration first = advisor.Suggest(10.0);
  EXPECT_TRUE(first == w);
  EXPECT_TRUE(advisor.last_was_initial());
  advisor.Observe(Obs(first, 5.0));
  Configuration second = advisor.Suggest(10.0);
  EXPECT_FALSE(advisor.last_was_initial());
  EXPECT_FALSE(second == w);  // dedup: never resuggests an evaluated config
}

TEST(AdvisorLifecycleTest, NoWarmStartUsesFullInitBudget) {
  ConfigSpace space = TwoD();
  AdvisorOptions opts;
  opts.init_samples = 4;
  Advisor advisor(&space, opts);
  Rng rng(1);
  for (int i = 0; i < 4; ++i) {
    Configuration c = advisor.Suggest(10.0);
    EXPECT_TRUE(advisor.last_was_initial()) << "iteration " << i;
    advisor.Observe(Obs(c, rng.Uniform(1.0, 2.0)));
  }
  advisor.Suggest(10.0);
  EXPECT_FALSE(advisor.last_was_initial());
}

TEST(AdvisorLifecycleTest, RestartKeepsHistoryAndImportance) {
  ConfigSpace space = TwoD();
  AdvisorOptions opts;
  opts.init_samples = 2;
  Advisor advisor(&space, opts);
  advisor.SeedImportance({0.1, 0.9}, 5.0);
  Rng rng(2);
  for (int i = 0; i < 8; ++i) {
    Configuration c = advisor.Suggest(10.0);
    advisor.Observe(Obs(c, rng.Uniform(1.0, 2.0)));
  }
  size_t history_before = advisor.history().size();
  auto ranking_before = advisor.subspace_manager().Ranking();
  advisor.ResetForRestart();
  EXPECT_EQ(advisor.history().size(), history_before);
  EXPECT_EQ(advisor.subspace_manager().Ranking(), ranking_before);
  // Post-restart suggestions are model-driven (history intact, not init).
  advisor.Suggest(10.0);
  EXPECT_FALSE(advisor.last_was_initial());
}

TEST(AdvisorLifecycleTest, IncumbentTracksBestFeasibleOnly) {
  ConfigSpace space = TwoD();
  AdvisorOptions opts;
  Advisor advisor(&space, opts);
  Configuration a = space.Default();
  a[0] = 0.1;
  Configuration b = space.Default();
  b[0] = 0.2;
  Observation good = Obs(a, 10.0);
  Observation better_but_infeasible = Obs(b, 1.0);
  better_but_infeasible.feasible = false;
  advisor.Observe(good);
  advisor.Observe(better_but_infeasible);
  EXPECT_DOUBLE_EQ(advisor.BestObjective(), 10.0);
  EXPECT_TRUE(advisor.BestConfig() == a);
}

TEST(AdvisorLifecycleTest, ExternalBaselineDoesNotSkipWarmConfigs) {
  // Production flow: the manual baseline is observed before the first
  // suggestion. The warm-start list must still be served from its head.
  ConfigSpace space = TwoD();
  AdvisorOptions opts;
  opts.init_samples = 5;
  Advisor advisor(&space, opts);
  Configuration baseline = space.Default();
  advisor.Observe(Obs(baseline, 50.0));  // external (manual) run
  Configuration w0 = space.Default();
  w0[0] = 0.11;
  Configuration w1 = space.Default();
  w1[0] = 0.92;
  advisor.SetWarmStartConfigs({w0, w1});
  EXPECT_TRUE(advisor.Suggest(10.0) == w0);
  advisor.Observe(Obs(w0, 20.0));
  EXPECT_TRUE(advisor.Suggest(10.0) == w1);
}

TEST(AdvisorLifecycleTest, DuplicateWarmConfigsStillProgress) {
  ConfigSpace space = TwoD();
  AdvisorOptions opts;
  opts.init_samples = 5;
  Advisor advisor(&space, opts);
  Configuration w = space.Default();
  advisor.SetWarmStartConfigs({w, w, w});
  // Even with duplicate warm entries the advisor keeps suggesting valid
  // configurations and records them.
  for (int i = 0; i < 5; ++i) {
    Configuration c = advisor.Suggest(10.0);
    ASSERT_TRUE(space.Validate(c).ok());
    advisor.Observe(Obs(c, 5.0 + i));
  }
  EXPECT_EQ(advisor.history().size(), 5u);
}

}  // namespace
}  // namespace sparktune
