// Determinism suite for the parallel suggestion engine: every parallelized
// component must produce bit-identical output at num_threads=1 and
// num_threads=4 (ISSUE: "seed-determinism at any thread count").
#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "bo/acq_optimizer.h"
#include "fanova/fanova.h"
#include "forest/random_forest.h"
#include "model/gp.h"
#include "service/tuning_service.h"
#include "sparksim/hibench.h"
#include "tuner/online_tuner.h"

namespace sparktune {
namespace {

// Synthetic mixed-schema regression data in the unit cube.
struct MixedData {
  std::vector<FeatureKind> schema;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

MixedData MakeMixedData(size_t n, uint64_t seed) {
  MixedData d;
  d.schema = {FeatureKind::kNumeric, FeatureKind::kNumeric,
              FeatureKind::kNumeric, FeatureKind::kCategorical,
              FeatureKind::kDataSize};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(5);
    for (int k = 0; k < 3; ++k) row[static_cast<size_t>(k)] = rng.Uniform();
    row[3] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    row[4] = rng.Uniform();
    double y = std::sin(3.0 * row[0]) + row[1] * row[1] - 0.5 * row[2] +
               0.3 * row[3] + 0.7 * row[4] + 0.05 * rng.Normal();
    d.x.push_back(std::move(row));
    d.y.push_back(y);
  }
  return d;
}

TEST(DeterminismTest, GpFitBitIdenticalAcrossThreadCounts) {
  MixedData d = MakeMixedData(40, 21);
  GpOptions serial;
  serial.num_threads = 1;
  GpOptions wide = serial;
  wide.num_threads = 4;
  GaussianProcess gp1(d.schema, serial);
  GaussianProcess gp4(d.schema, wide);
  ASSERT_TRUE(gp1.Fit(d.x, d.y).ok());
  ASSERT_TRUE(gp4.Fit(d.x, d.y).ok());

  // The hyper sweep must select the exact same grid point...
  EXPECT_EQ(gp1.kernel_params().signal_variance,
            gp4.kernel_params().signal_variance);
  EXPECT_EQ(gp1.kernel_params().length_numeric,
            gp4.kernel_params().length_numeric);
  EXPECT_EQ(gp1.kernel_params().length_datasize,
            gp4.kernel_params().length_datasize);
  EXPECT_EQ(gp1.kernel_params().hamming_weight,
            gp4.kernel_params().hamming_weight);
  EXPECT_EQ(gp1.kernel_params().noise_variance,
            gp4.kernel_params().noise_variance);
  EXPECT_EQ(gp1.log_marginal_likelihood(), gp4.log_marginal_likelihood());

  // ...and the posterior must agree bit-for-bit everywhere.
  Rng probe(77);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> q = {probe.Uniform(), probe.Uniform(),
                             probe.Uniform(),
                             probe.Bernoulli(0.5) ? 1.0 : 0.0,
                             probe.Uniform()};
    Prediction p1 = gp1.Predict(q);
    Prediction p4 = gp4.Predict(q);
    EXPECT_EQ(p1.mean, p4.mean);
    EXPECT_EQ(p1.variance, p4.variance);
  }
}

TEST(DeterminismTest, GpPredictBatchBitIdenticalAcrossThreadCounts) {
  // End-to-end through the blocked Cholesky: a GP fitted and batch-scored
  // at num_threads=4 must reproduce the serial run bit-for-bit.
  MixedData d = MakeMixedData(60, 91);
  GpOptions serial;
  serial.num_threads = 1;
  GpOptions wide = serial;
  wide.num_threads = 4;
  GaussianProcess gp1(d.schema, serial);
  GaussianProcess gp4(d.schema, wide);
  ASSERT_TRUE(gp1.Fit(d.x, d.y).ok());
  ASSERT_TRUE(gp4.Fit(d.x, d.y).ok());

  Rng probe(19);
  std::vector<std::vector<double>> xs;
  for (int i = 0; i < 120; ++i) {  // crosses the 48-column solve blocks
    xs.push_back({probe.Uniform(), probe.Uniform(), probe.Uniform(),
                  probe.Bernoulli(0.5) ? 1.0 : 0.0, probe.Uniform()});
  }
  std::vector<Prediction> b1 = gp1.PredictBatch(xs);
  std::vector<Prediction> b4 = gp4.PredictBatch(xs);
  ASSERT_EQ(b1.size(), b4.size());
  for (size_t j = 0; j < xs.size(); ++j) {
    EXPECT_EQ(b1[j].mean, b4[j].mean) << "j=" << j;
    EXPECT_EQ(b1[j].variance, b4[j].variance) << "j=" << j;
    Prediction p = gp1.Predict(xs[j]);
    EXPECT_EQ(b1[j].mean, p.mean) << "j=" << j;
    EXPECT_EQ(b1[j].variance, p.variance) << "j=" << j;
  }
}

TEST(DeterminismTest, ForestFitBitIdenticalAcrossThreadCounts) {
  MixedData d = MakeMixedData(120, 33);
  ForestOptions serial;
  serial.num_trees = 50;
  serial.seed = 5;
  serial.num_threads = 1;
  ForestOptions wide = serial;
  wide.num_threads = 4;
  RandomForest rf1(serial), rf4(wide);
  ASSERT_TRUE(rf1.Fit(d.x, d.y).ok());
  ASSERT_TRUE(rf4.Fit(d.x, d.y).ok());

  std::vector<double> imp1 = rf1.FeatureImportance();
  std::vector<double> imp4 = rf4.FeatureImportance();
  EXPECT_EQ(imp1, imp4);
  Rng probe(13);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> q(5);
    for (auto& v : q) v = probe.Uniform();
    Prediction p1 = rf1.Predict(q);
    Prediction p4 = rf4.Predict(q);
    EXPECT_EQ(p1.mean, p4.mean);
    EXPECT_EQ(p1.variance, p4.variance);
  }
}

TEST(DeterminismTest, FanovaBitIdenticalAcrossThreadCounts) {
  MixedData d = MakeMixedData(80, 55);
  FanovaOptions serial;
  serial.forest.num_threads = 1;
  FanovaOptions wide = serial;
  wide.forest.num_threads = 4;
  auto r1 = Fanova::Analyze(d.x, d.y, serial);
  auto r4 = Fanova::Analyze(d.x, d.y, wide);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r1->total_variance, r4->total_variance);
  EXPECT_EQ(r1->main_effect, r4->main_effect);
  ASSERT_EQ(r1->interaction.rows(), r4->interaction.rows());
  for (size_t i = 0; i < r1->interaction.rows(); ++i) {
    for (size_t j = 0; j < r1->interaction.cols(); ++j) {
      EXPECT_EQ(r1->interaction(i, j), r4->interaction(i, j));
    }
  }
  EXPECT_EQ(r1->CombinedImportance(), r4->CombinedImportance());
}

TEST(DeterminismTest, AcquisitionMaximizeInvariantAcrossThreadCounts) {
  ConfigSpace space;
  ASSERT_TRUE(space.Add(Parameter::Float("a", 0.0, 1.0, 0.5)).ok());
  ASSERT_TRUE(space.Add(Parameter::Float("b", 0.0, 1.0, 0.5)).ok());
  MixedData d = MakeMixedData(30, 3);
  // A real GP surrogate makes scoring non-trivial.
  GaussianProcess gp({FeatureKind::kNumeric, FeatureKind::kNumeric}, {});
  std::vector<std::vector<double>> x2;
  for (const auto& row : d.x) x2.push_back({row[0], row[1]});
  ASSERT_TRUE(gp.Fit(x2, d.y).ok());
  EicAcquisition acq(&gp, 0.5);
  Subspace full = Subspace::Full(&space);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  auto safe = [](const Configuration& c) { return c[0] + c[1] < 1.7; };
  auto unsafety = [](const Configuration& c) { return c[0] + c[1] - 1.7; };
  RunHistory history;
  Rng hist_rng(71);
  for (int i = 0; i < 6; ++i) {
    Observation o;
    o.config = full.Sample(&hist_rng);
    o.objective = static_cast<double>(i);
    o.feasible = true;
    history.Add(o);
  }

  auto run = [&](int threads) {
    AcqOptOptions opts;
    opts.num_candidates = 128;
    opts.num_local_starts = 4;
    opts.local_steps = 12;
    opts.num_threads = threads;
    AcquisitionOptimizer opt(opts);
    Rng rng(42);  // same seed both runs
    return opt.Maximize(full, encode, acq, safe, unsafety, &history, &rng);
  };
  AcqOptResult r1 = run(1);
  AcqOptResult r4 = run(4);
  EXPECT_TRUE(r1.config == r4.config);
  EXPECT_EQ(r1.acq_value, r4.acq_value);
  EXPECT_EQ(r1.raw_ei, r4.raw_ei);
  EXPECT_EQ(r1.safe_fallback_used, r4.safe_fallback_used);
}

TEST(DeterminismTest, OnlineTunerTrajectoryInvariantAcrossThreadCounts) {
  // End-to-end: a full tuner run (baseline -> tuning) must visit the exact
  // same configurations and objectives whether the suggestion engine runs
  // on 1 thread or 4.
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto run = [&](int threads) {
    auto w = HiBenchTask("WordCount");
    EXPECT_TRUE(w.ok());
    SimulatorEvaluatorOptions eopts;
    eopts.seed = 5;
    SimulatorEvaluator eval(&space, *w, cluster, DriftModel::Diurnal(), eopts);
    TunerOptions topts;
    topts.budget = 12;
    topts.advisor.gp.num_threads = threads;
    topts.advisor.acq.num_threads = threads;
    topts.advisor.subspace.num_threads = threads;
    OnlineTuner tuner(&space, &eval, topts);
    std::vector<Observation> trajectory;
    for (int i = 0; i < 14; ++i) trajectory.push_back(tuner.Step());
    return trajectory;
  };
  std::vector<Observation> t1 = run(1);
  std::vector<Observation> t4 = run(4);
  ASSERT_EQ(t1.size(), t4.size());
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_TRUE(t1[i].config == t4[i].config) << "step " << i;
    EXPECT_EQ(t1[i].objective, t4[i].objective) << "step " << i;
    EXPECT_EQ(t1[i].runtime_sec, t4[i].runtime_sec) << "step " << i;
    EXPECT_EQ(t1[i].feasible, t4[i].feasible) << "step " << i;
  }
}

TEST(DeterminismTest, ServiceBatchMatchesSequentialExecution) {
  // ExecutePeriodicAll on 4 threads must equal a sequential ExecutePeriodic
  // loop over the same ids, task by task and step by step.
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  const std::vector<std::string> tasks = {"WordCount", "TeraSort", "PageRank"};

  struct ServiceRig {
    std::deque<SimulatorEvaluator> evals;
    std::unique_ptr<TuningService> service;
  };
  auto make = [&](int threads) {
    ServiceRig rig;
    TuningServiceOptions sopts;
    sopts.tuner.budget = 6;
    sopts.num_threads = threads;
    rig.service = std::make_unique<TuningService>(&space, sopts);
    for (const std::string& t : tasks) {
      auto w = HiBenchTask(t);
      EXPECT_TRUE(w.ok());
      SimulatorEvaluatorOptions eopts;
      eopts.seed = 5;
      rig.evals.emplace_back(&space, *w, cluster, DriftModel::Diurnal(),
                             eopts);
      EXPECT_TRUE(rig.service->RegisterTask(t, &rig.evals.back()).ok());
    }
    return rig;
  };

  ServiceRig seq = make(1);
  ServiceRig batch = make(4);
  std::vector<std::string> ids(tasks.begin(), tasks.end());
  for (int round = 0; round < 4; ++round) {
    std::vector<Result<Observation>> sequential;
    for (const std::string& id : ids) {
      sequential.push_back(seq.service->ExecutePeriodic(id));
    }
    std::vector<Result<Observation>> batched =
        batch.service->ExecutePeriodicAll(ids);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(sequential[i].ok());
      ASSERT_TRUE(batched[i].ok()) << ids[i];
      EXPECT_TRUE(sequential[i]->config == batched[i]->config)
          << ids[i] << " round " << round;
      EXPECT_EQ(sequential[i]->objective, batched[i]->objective);
      EXPECT_EQ(sequential[i]->runtime_sec, batched[i]->runtime_sec);
    }
  }
}

TEST(DeterminismTest, CompactedEventLogsKeepTrajectoryAcrossThreadCounts) {
  // The fleet diet drops each task's retained stage list right after the
  // meta-features are extracted (compact_event_logs). Compaction plus
  // 4 threads must reproduce the retain-everything serial run bit-for-bit:
  // the summary replaces the log for bookkeeping only, never for math.
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  const std::vector<std::string> tasks = {"WordCount", "TeraSort", "PageRank"};

  struct ServiceRig {
    std::deque<SimulatorEvaluator> evals;
    std::unique_ptr<TuningService> service;
  };
  auto make = [&](int threads, bool compact) {
    ServiceRig rig;
    TuningServiceOptions sopts;
    sopts.tuner.budget = 6;
    sopts.num_threads = threads;
    sopts.compact_event_logs = compact;
    rig.service = std::make_unique<TuningService>(&space, sopts);
    for (const std::string& t : tasks) {
      auto w = HiBenchTask(t);
      EXPECT_TRUE(w.ok());
      SimulatorEvaluatorOptions eopts;
      eopts.seed = 5;
      rig.evals.emplace_back(&space, *w, cluster, DriftModel::Diurnal(),
                             eopts);
      EXPECT_TRUE(rig.service->RegisterTask(t, &rig.evals.back()).ok());
    }
    return rig;
  };

  ServiceRig retain = make(1, false);
  ServiceRig compact = make(4, true);
  std::vector<std::string> ids(tasks.begin(), tasks.end());
  for (int round = 0; round < 4; ++round) {
    std::vector<Result<Observation>> a = retain.service->ExecutePeriodicAll(ids);
    std::vector<Result<Observation>> b =
        compact.service->ExecutePeriodicAll(ids);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(a[i].ok());
      ASSERT_TRUE(b[i].ok()) << ids[i];
      EXPECT_TRUE(a[i]->config == b[i]->config)
          << ids[i] << " round " << round;
      EXPECT_EQ(a[i]->objective, b[i]->objective);
      EXPECT_EQ(a[i]->runtime_sec, b[i]->runtime_sec);
    }
  }
  // The diet really happened: stage lists are gone on the compacted rig
  // (and retained on the reference), while the digest kept the shape.
  for (const std::string& t : tasks) {
    EXPECT_TRUE(compact.service->tuner(t)->last_event_log().stages.empty())
        << t;
    EXPECT_FALSE(retain.service->tuner(t)->last_event_log().stages.empty())
        << t;
    const EventLogSummary& digest =
        compact.service->tuner(t)->last_event_summary();
    EXPECT_TRUE(digest.valid);
    EXPECT_GT(digest.num_stages, 0);
    EXPECT_GT(digest.duration_sec, 0.0);
  }
}

TEST(DeterminismTest, ServiceBatchReportsBadIds) {
  ConfigSpace space = BuildSparkSpace(ClusterSpec::HiBenchCluster());
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  TuningServiceOptions sopts;
  sopts.num_threads = 4;
  TuningService service(&space, sopts);
  auto w = HiBenchTask("WordCount");
  ASSERT_TRUE(w.ok());
  SimulatorEvaluator eval(&space, *w, cluster, DriftModel::None(), {});
  ASSERT_TRUE(service.RegisterTask("wc", &eval).ok());

  auto results =
      service.ExecutePeriodicAll({"wc", "missing", "wc"});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), Status::Code::kNotFound);
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace sparktune
