// Tests for the generic black-box Optimizer facade and the event-log JSON
// round trip.
#include <gtest/gtest.h>

#include <cmath>

#include "bo/optimizer.h"
#include "meta/meta_features.h"
#include "sparksim/event_log_json.h"
#include "sparksim/hibench.h"
#include "sparksim/runtime_model.h"

namespace sparktune {
namespace {

ConfigSpace Box2D() {
  ConfigSpace s;
  EXPECT_TRUE(s.Add(Parameter::Float("x", -5.0, 10.0, 0.0)).ok());
  EXPECT_TRUE(s.Add(Parameter::Float("y", 0.0, 15.0, 5.0)).ok());
  return s;
}

// Branin function; global minimum ~0.3979 at three points.
double Branin(const Configuration& c) {
  double x = c[0], y = c[1];
  double a = 1.0, b = 5.1 / (4.0 * M_PI * M_PI), cc = 5.0 / M_PI;
  double r = 6.0, s = 10.0, t = 1.0 / (8.0 * M_PI);
  double term = y - b * x * x + cc * x - r;
  return a * term * term + s * (1.0 - t) * std::cos(x) + s;
}

TEST(OptimizerTest, MinimizesBranin) {
  ConfigSpace space = Box2D();
  OptimizerOptions opts;
  opts.budget = 40;
  opts.seed = 3;
  Optimizer optimizer(&space, opts);
  OptimizerReport report = optimizer.Minimize(Branin);
  EXPECT_EQ(report.evaluations, 40);
  // Global optimum is ~0.398; demand solid progress within 40 evals.
  EXPECT_LT(report.best_value, 3.0);
}

TEST(OptimizerTest, HonorsSafetyBoundMostly) {
  ConfigSpace space = Box2D();
  OptimizerOptions opts;
  opts.budget = 30;
  opts.safety_bound = 60.0;  // Branin ranges ~0.4..300 on this box
  opts.seed = 5;
  Optimizer optimizer(&space, opts);
  OptimizerReport report = optimizer.Minimize(Branin);
  EXPECT_LT(report.best_value, 60.0);
  // The safe generator keeps most evaluations under the bound.
  EXPECT_LT(report.violations, 12);
  // An unconstrained run for comparison must not violate-count anything.
  OptimizerOptions free_opts;
  free_opts.budget = 10;
  Optimizer free(&space, free_opts);
  EXPECT_EQ(free.Minimize(Branin).violations, 0);
}

TEST(OptimizerTest, InfiniteValuesTreatedAsFailures) {
  ConfigSpace space = Box2D();
  OptimizerOptions opts;
  opts.budget = 15;
  opts.seed = 7;
  Optimizer optimizer(&space, opts);
  // A crash region: x > 5 "fails".
  OptimizerReport report = optimizer.Minimize([](const Configuration& c) {
    if (c[0] > 5.0) return std::numeric_limits<double>::infinity();
    return Branin(c);
  });
  EXPECT_TRUE(std::isfinite(report.best_value));
  EXPECT_LE(report.best_config[0], 5.0);
}

TEST(OptimizerTest, FailedObservationsRecordPenalizedRuntime) {
  // Regression: a failed evaluation must look worse than anything observed,
  // not like a zero-latency success (which would attract the safe region).
  ConfigSpace space = Box2D();
  OptimizerOptions opts;
  opts.budget = 4;
  Optimizer optimizer(&space, opts);
  Configuration a = space.Default();
  optimizer.Observe(a, 10.0);
  Configuration b = space.Default();
  b[0] = 1.0;
  optimizer.Observe(b, std::numeric_limits<double>::infinity());
  const Observation& failed = optimizer.history().back();
  EXPECT_TRUE(failed.failed());
  EXPECT_GE(failed.runtime_sec, 20.0);  // 2x the worst real value
}

TEST(OptimizerTest, WhiteBoxResourceTermShiftsOptimum) {
  // Minimize f = value^0.5 * cost^0.5 where cost grows with y: the chosen
  // point should sit at lower y than the pure minimum would.
  ConfigSpace space = Box2D();
  OptimizerOptions pure_opts;
  pure_opts.budget = 35;
  pure_opts.seed = 11;
  Optimizer pure(&space, pure_opts);
  auto value = [](const Configuration& c) {
    return 1.0 + std::pow(c[0] - 2.0, 2) + 0.05 * std::pow(c[1] - 12.0, 2);
  };
  OptimizerReport pure_report = pure.Minimize(value);

  OptimizerOptions cost_opts = pure_opts;
  cost_opts.beta = 0.5;
  cost_opts.resource_fn = [](const Configuration& c) {
    return 1.0 + c[1];  // y is expensive
  };
  Optimizer costed(&space, cost_opts);
  OptimizerReport cost_report = costed.Minimize(value);
  EXPECT_LT(cost_report.best_config[1], pure_report.best_config[1]);
}

TEST(OptimizerTest, StepwiseApiMatchesHistory) {
  ConfigSpace space = Box2D();
  OptimizerOptions opts;
  opts.budget = 5;
  Optimizer optimizer(&space, opts);
  for (int i = 0; i < 5; ++i) {
    Configuration c = optimizer.Suggest();
    optimizer.Observe(c, Branin(c));
  }
  EXPECT_EQ(optimizer.history().size(), 5u);
  EXPECT_TRUE(optimizer.history().BestFeasible().has_value());
}

TEST(EventLogJsonTest, RoundTripPreservesMetaFeatures) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  SimOptions sopts;
  sopts.noise_sigma = 0.0;
  SparkSimulator sim(cluster, sopts);
  auto w = HiBenchTask("PageRank");
  SparkConf conf = DecodeSparkConf(space, space.Default());
  EventLog log = sim.Execute(*w, conf, w->input_gb, 5).event_log;

  std::string lines = EventLogToJsonLines(log);
  auto back = EventLogFromJsonLines(lines);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->app_name, log.app_name);
  EXPECT_EQ(back->stages.size(), log.stages.size());
  // The meta-feature pipeline sees identical inputs.
  auto f1 = ExtractMetaFeatures(log);
  auto f2 = ExtractMetaFeatures(*back);
  ASSERT_EQ(f1.size(), f2.size());
  for (size_t i = 0; i < f1.size(); ++i) {
    EXPECT_NEAR(f1[i], f2[i], 1e-9) << MetaFeatureNames()[i];
  }
}

TEST(EventLogJsonTest, FileRoundTrip) {
  EventLog log;
  log.app_name = "tiny";
  log.is_sql = true;
  log.data_size_gb = 3.5;
  StageLog s;
  s.name = "scan";
  s.op = StageOp::kSource;
  s.num_tasks = 4;
  s.duration_sec = 1.5;
  log.stages.push_back(s);
  std::string path = "/tmp/sparktune-eventlog-test.jsonl";
  ASSERT_TRUE(WriteEventLogFile(log, path).ok());
  auto back = ReadEventLogFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_sql);
  EXPECT_DOUBLE_EQ(back->data_size_gb, 3.5);
  ASSERT_EQ(back->stages.size(), 1u);
  EXPECT_EQ(back->stages[0].op, StageOp::kSource);
}

TEST(EventLogJsonTest, RejectsHeaderlessAndMalformed) {
  EXPECT_FALSE(EventLogFromJsonLines("").ok());
  EXPECT_FALSE(EventLogFromJsonLines("{\"Event\":\"StageCompleted\"}").ok());
  EXPECT_FALSE(EventLogFromJsonLines("not json\n").ok());
  EXPECT_FALSE(ReadEventLogFile("/nonexistent/evlog").ok());
  // Unknown events are tolerated.
  auto ok = EventLogFromJsonLines(
      "{\"Event\":\"ApplicationStart\",\"App Name\":\"a\"}\n"
      "{\"Event\":\"SparkListenerSomethingNew\"}\n");
  EXPECT_TRUE(ok.ok());
}

}  // namespace
}  // namespace sparktune
