// Dynamic workloads and re-tuning (paper §3.3): a periodic job whose input
// grows steadily. After the initial tuning converges and the best config is
// applied, the growing data makes the applied configuration degrade; the
// controller detects the continuous degradation and restarts tuning, which
// adapts the configuration to the new scale.
#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "sparksim/hibench.h"
#include "tuner/online_tuner.h"

using namespace sparktune;

int main() {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto workload = HiBenchTask("Aggregation");
  if (!workload.ok()) return 1;

  // Hourly job whose data grows 8% per day — after a couple of simulated
  // weeks the input has tripled.
  DriftModel drift = DriftModel::Diurnal(0.1, 0.04);
  drift.trend_per_day = 0.08;

  SimulatorEvaluatorOptions eopts;
  eopts.period_hours = 1.0;
  eopts.seed = 17;
  SimulatorEvaluator evaluator(&space, *workload, cluster, drift, eopts);

  TunerOptions opts;
  opts.budget = 12;
  opts.ei_stop_threshold = 0.10;  // allow early stop
  opts.min_iterations_before_stop = 6;
  opts.degradation_factor = 1.35;
  opts.degradation_window = 3;
  opts.advisor.objective.beta = 0.5;
  opts.advisor.expert_ranking = ExpertParameterRanking();
  opts.advisor.seed = 4;

  OnlineTuner tuner(&space, &evaluator, opts);

  TablePrinter table({"execution", "data(GB)", "cost", "phase", "restarts"});
  int last_restarts = 0;
  for (int i = 0; i < 400; ++i) {
    Observation obs = tuner.Step();
    const char* phase = tuner.phase() == TunerPhase::kBaseline ? "baseline"
                        : tuner.phase() == TunerPhase::kTuning ? "tuning"
                                                               : "applying";
    bool interesting = i < 2 || tuner.restarts() != last_restarts ||
                       i % 40 == 0;
    if (interesting) {
      table.AddRow({StrFormat("%d", i), StrFormat("%.0f", obs.data_size_gb),
                    StrFormat("%.1f", obs.objective), phase,
                    StrFormat("%d", tuner.restarts())});
    }
    last_restarts = tuner.restarts();
    if (tuner.restarts() >= 2) break;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Restarts triggered: %d — the controller re-entered tuning "
              "when the applied configuration's cost degraded for %d "
              "consecutive executions (workload drift, §3.3).\n",
              tuner.restarts(), opts.degradation_window);
  return 0;
}
