// Fleet tuning with meta-learning: runs the multi-task TuningService the
// way the paper's cloud deployment works (§6.2). Two tasks are tuned cold,
// harvested into the knowledge base (similarity model, base surrogates,
// importance scores), and a third similar task is then tuned warm — its
// first configurations come from the most similar finished tasks, its
// surrogate is the meta ensemble, and its sub-space ranking is transferred.
#include <cstdio>

#include "common/strings.h"
#include "common/table.h"
#include "service/tuning_service.h"
#include "sparksim/hibench.h"

using namespace sparktune;

int main() {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);

  TuningServiceOptions opts;
  opts.tuner.budget = 15;
  opts.tuner.ei_stop_threshold = 0.0;
  opts.tuner.advisor.objective.beta = 0.5;
  opts.tuner.advisor.expert_ranking = ExpertParameterRanking();
  TuningService service(&space, opts);

  auto make_evaluator = [&](const std::string& task, uint64_t seed) {
    auto w = HiBenchTask(task);
    SimulatorEvaluatorOptions eopts;
    eopts.seed = seed;
    return std::make_unique<SimulatorEvaluator>(
        &space, *w, cluster, DriftModel::Diurnal(), eopts);
  };

  auto sort_eval = make_evaluator("Sort", 11);
  auto wc_eval = make_evaluator("WordCount", 12);
  auto ts_eval = make_evaluator("TeraSort", 13);

  // ---- Phase 1: tune two tasks cold and harvest them ----
  (void)service.RegisterTask("Sort", sort_eval.get());
  (void)service.RegisterTask("WordCount", wc_eval.get());
  for (int i = 0; i <= opts.tuner.budget; ++i) {
    (void)service.ExecutePeriodic("Sort");
    (void)service.ExecutePeriodic("WordCount");
  }
  Status s1 = service.HarvestTask("Sort");
  Status s2 = service.HarvestTask("WordCount");
  std::printf("Harvested Sort (%s) and WordCount (%s); knowledge base now "
              "holds %zu tasks, similarity model trained: %s\n\n",
              s1.ToString().c_str(), s2.ToString().c_str(),
              service.knowledge_base().size(),
              service.knowledge_base().similarity_trained() ? "yes" : "no");

  // ---- Phase 2: tune a similar task warm ----
  (void)service.RegisterTask("TeraSort", ts_eval.get());
  TablePrinter table({"execution", "runtime(s)", "cost", "phase"});
  for (int i = 0; i <= opts.tuner.budget; ++i) {
    auto obs = service.ExecutePeriodic("TeraSort");
    if (!obs.ok()) break;
    table.AddRow({StrFormat("%d", i), StrFormat("%.0f", obs->runtime_sec),
                  StrFormat("%.1f", obs->objective),
                  i == 0 ? "baseline" : "tuning (meta-assisted)"});
  }
  std::printf("%s\n", table.ToString().c_str());

  const OnlineTuner* tuner = service.tuner("TeraSort");
  std::printf("TeraSort: baseline cost %.1f -> best %.1f (%.1f%% reduction) "
              "with warm-started initial configurations from the knowledge "
              "base\n",
              tuner->baseline_observation()->objective,
              tuner->BestObjective(),
              100.0 * (1.0 - tuner->BestObjective() /
                                 tuner->baseline_observation()->objective));
  return 0;
}
