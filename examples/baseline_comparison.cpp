// Head-to-head comparison of every implemented tuning method on one task,
// printing the incumbent cost after each iteration — a miniature of the
// paper's Figure 5 experiment you can eyeball in seconds.
#include <cmath>
#include <cstdio>
#include <memory>

#include "baselines/cherrypick.h"
#include "baselines/dac.h"
#include "baselines/locat.h"
#include "baselines/ours.h"
#include "baselines/random_search.h"
#include "baselines/rfhoc.h"
#include "baselines/tuneful.h"
#include "common/strings.h"
#include "common/table.h"
#include "sparksim/hibench.h"
#include "tuner/evaluator.h"

using namespace sparktune;

int main() {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto workload = HiBenchTask("WordCount");
  if (!workload.ok()) return 1;

  SimulatorEvaluatorOptions popts;
  popts.seed = 3;
  SimulatorEvaluator probe(&space, *workload, cluster, DriftModel::None(),
                           popts);
  auto reference = probe.Run(space.Default());
  TuningObjective obj;
  obj.beta = 0.5;
  obj.runtime_max = reference.runtime_sec * 2.0;

  std::vector<std::unique_ptr<TuningMethod>> methods;
  methods.push_back(std::make_unique<RandomSearch>());
  methods.push_back(std::make_unique<Rfhoc>());
  methods.push_back(std::make_unique<Dac>());
  methods.push_back(std::make_unique<CherryPick>());
  methods.push_back(std::make_unique<Tuneful>());
  methods.push_back(std::make_unique<Locat>());
  methods.push_back(std::make_unique<OursMethod>());

  const int budget = 25;
  std::vector<std::string> header = {"iter"};
  std::vector<std::vector<double>> curves;
  for (auto& m : methods) {
    header.push_back(m->name());
    SimulatorEvaluatorOptions eopts;
    eopts.seed = 15;
    SimulatorEvaluator eval(&space, *workload, cluster,
                            DriftModel::Diurnal(), eopts);
    RunHistory h = m->Tune(space, &eval, obj, budget, /*seed=*/44);
    std::vector<double> curve;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& o : h.observations()) {
      if (!o.failed() && o.feasible) best = std::min(best, o.objective);
      curve.push_back(std::isfinite(best) ? best : o.objective);
    }
    curves.push_back(std::move(curve));
  }

  TablePrinter table(header);
  for (int i = 0; i < budget; ++i) {
    std::vector<std::string> row = {StrFormat("%d", i + 1)};
    for (const auto& c : curves) {
      row.push_back(StrFormat("%.1f", c[static_cast<size_t>(i)]));
    }
    table.AddRow(row);
  }
  std::printf("Best execution cost so far per method on WordCount "
              "(beta = 0.5, single seed):\n%s",
              table.ToString().c_str());
  return 0;
}
