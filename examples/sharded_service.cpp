// Running sharded (README "Running sharded"): a ServiceSupervisor spreads a
// fleet of periodic tasks across TuningService shards, auto-checkpoints
// them, and survives shard kills by restoring each displaced task from its
// newest checkpoint generation and replaying the gap deterministically.
// This example scripts a kill mid-run and shows the fleet not noticing.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "service/supervisor.h"
#include "sparksim/hibench.h"

using namespace sparktune;

int main() {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);

  std::string repo_dir =
      (std::filesystem::temp_directory_path() / "sparktune-sharded-example")
          .string();
  std::filesystem::remove_all(repo_dir);

  ServiceSupervisorOptions opts;
  opts.num_shards = 3;
  opts.service.repository_dir = repo_dir;       // shared by all shards
  opts.service.auto_checkpoint_periods = 4;     // snapshot every 4 periods
  opts.service.checkpoint_on_phase_change = true;
  opts.service.num_threads = 4;                 // per-shard batch threads
  opts.service.tuner.budget = 10;
  opts.service.tuner.advisor.expert_ranking = ExpertParameterRanking();
  ServiceSupervisor supervisor(&space, opts);

  // Factories rebuild the evaluator from seeds alone, so a handed-off task
  // can be replayed deterministically on its new shard.
  const std::vector<std::string> workloads = {"WordCount", "Sort", "TeraSort",
                                              "PageRank"};
  for (size_t t = 0; t < workloads.size(); ++t) {
    std::string id = StrFormat("periodic-%s", workloads[t].c_str());
    uint64_t seed = 7 + t;
    const ConfigSpace* sp = &space;
    Status s = supervisor.RegisterTask(
        id, [sp, cluster, workload = workloads[t],
             seed]() -> std::unique_ptr<JobEvaluator> {
          auto w = HiBenchTask(workload);
          if (!w.ok()) return nullptr;
          SimulatorEvaluatorOptions eopts;
          eopts.seed = seed;
          return std::make_unique<SimulatorEvaluator>(
              sp, *w, cluster, DriftModel::Diurnal(), eopts);
        });
    if (!s.ok()) {
      std::fprintf(stderr, "register: %s\n", s.message().c_str());
      return 1;
    }
    std::printf("%-22s -> shard %d\n", id.c_str(), supervisor.shard_of(id));
  }

  auto run_ticks = [&](int n) {
    for (int t = 0; t < n; ++t) {
      auto results = supervisor.Tick();
      int ok = 0;
      for (const auto& r : results) ok += r.ok() ? 1 : 0;
      std::printf("tick %2lld: %d/%zu tasks executed\n",
                  supervisor.stats().ticks, ok, results.size());
    }
  };

  run_ticks(10);

  // Simulate a shard crash: its tasks restore from their auto-checkpoints
  // on the surviving shards and replay any post-checkpoint periods.
  int victim = supervisor.shard_of("periodic-WordCount");
  std::printf("\n-- killing shard %d --\n", victim);
  if (Status s = supervisor.KillShard(victim); !s.ok()) {
    std::fprintf(stderr, "kill: %s\n", s.message().c_str());
    return 1;
  }
  for (const auto& id : supervisor.task_ids()) {
    std::printf("%-22s -> shard %d\n", id.c_str(), supervisor.shard_of(id));
  }
  run_ticks(5);

  std::printf("\n-- restarting shard %d --\n", victim);
  if (Status s = supervisor.RestartShard(victim); !s.ok()) {
    std::fprintf(stderr, "restart: %s\n", s.message().c_str());
    return 1;
  }
  run_ticks(5);

  const SupervisorStats& st = supervisor.stats();
  std::printf(
      "\nticks=%lld kills=%lld restarts=%lld handoffs=%lld restored=%lld "
      "fresh_replays=%lld replayed_periods=%lld\n",
      st.ticks, st.kills, st.restarts, st.handoffs, st.restored_tasks,
      st.fresh_replays, st.replayed_periods);

  CheckpointReport report = supervisor.CheckpointAll();
  std::printf("final checkpoint pass: %d written, %d skipped, %d failed\n",
              report.written, report.skipped, report.failed);
  std::filesystem::remove_all(repo_dir);
  return report.ok() ? 0 : 1;
}
