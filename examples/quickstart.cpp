// Quickstart: tune the execution cost of a HiBench WordCount job online.
//
// Demonstrates the minimal API surface:
//   1. build the 30-parameter Spark space for a cluster,
//   2. wrap a workload in a SimulatorEvaluator (stand-in for the data
//      platform executing the periodic job),
//   3. run the OnlineTuner for a 20-iteration budget,
//   4. inspect the best configuration found.
#include <cstdio>

#include "common/strings.h"
#include "sparksim/hibench.h"
#include "tuner/online_tuner.h"

using namespace sparktune;

int main() {
  // The 4-node cluster from the paper's HiBench experiments.
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);

  auto workload = HiBenchTask("WordCount");
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  SimulatorEvaluatorOptions eval_opts;
  eval_opts.period_hours = 1.0;
  eval_opts.seed = 7;
  SimulatorEvaluator evaluator(&space, *workload, cluster,
                               DriftModel::Diurnal(), eval_opts);

  TunerOptions opts;
  opts.budget = 20;
  opts.advisor.objective.beta = 0.5;  // execution cost
  opts.advisor.expert_ranking = ExpertParameterRanking();
  opts.advisor.seed = 1;

  OnlineTuner tuner(&space, &evaluator, opts);

  std::printf("iter |    runtime(s) |  resource R(x) |     objective | note\n");
  for (int i = 0; i <= opts.budget; ++i) {
    Observation obs = tuner.Step();
    std::printf("%4d | %13.1f | %14.1f | %13.1f | %s%s%s\n", i,
                obs.runtime_sec, obs.resource_rate, obs.objective,
                i == 0 ? "baseline (manual)" : "",
                obs.failed() ? "FAILED" : "",
                !obs.failed() && !obs.feasible ? "constraint violated" : "");
    if (tuner.phase() == TunerPhase::kApplying) break;
  }

  std::optional<Observation> best = tuner.history().BestFeasible();
  std::printf("\nBest objective: %.1f (baseline %.1f, reduction %.1f%%)\n",
              tuner.BestObjective(),
              tuner.baseline_observation()->objective,
              100.0 * (1.0 - tuner.BestObjective() /
                                 tuner.baseline_observation()->objective));
  std::printf("Best configuration:\n  %s\n",
              space.Format(best->config).c_str());
  return 0;
}
