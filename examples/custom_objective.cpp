// Generalized objectives: sweeps the trade-off parameter beta of
// f(x) = T(x)^beta * R(x)^(1-beta) (Eq. 1) on TeraSort and shows how the
// best-found configuration shifts from resource-lean (beta = 0) through
// cost-optimal (beta = 0.5) to runtime-optimal (beta = 1).
#include <cstdio>

#include "baselines/ours.h"
#include "common/strings.h"
#include "common/table.h"
#include "sparksim/hibench.h"
#include "tuner/evaluator.h"

using namespace sparktune;

int main() {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto workload = HiBenchTask("TeraSort");
  if (!workload.ok()) return 1;

  // Shared runtime guard rail: never tolerate more than twice the default
  // config's runtime.
  SimulatorEvaluatorOptions popts;
  popts.seed = 9;
  SimulatorEvaluator probe(&space, *workload, cluster, DriftModel::None(),
                           popts);
  double default_runtime = probe.Run(space.Default()).runtime_sec;

  TablePrinter table({"beta", "objective", "best runtime(s)", "best R(x)",
                      "instances", "cores", "memory(GB)"});
  for (double beta : {0.0, 0.3, 0.5, 0.7, 1.0}) {
    TuningObjective obj;
    obj.beta = beta;
    obj.runtime_max = default_runtime * 2.0;

    SimulatorEvaluatorOptions eopts;
    eopts.seed = 21;
    SimulatorEvaluator eval(&space, *workload, cluster,
                            DriftModel::Diurnal(), eopts);
    OursMethod ours;
    RunHistory h = ours.Tune(space, &eval, obj, 25, /*seed=*/77);
    std::optional<Observation> best = h.BestFeasible();
    if (!best.has_value()) continue;
    SparkConf conf = DecodeSparkConf(space, best->config);
    table.AddRow({StrFormat("%.1f", beta),
                  StrFormat("%.1f", best->objective),
                  StrFormat("%.0f", best->runtime_sec),
                  StrFormat("%.1f", best->resource_rate),
                  StrFormat("%d", conf.executor_instances),
                  StrFormat("%d", conf.executor_cores),
                  StrFormat("%.0f", conf.executor_memory_gb)});
  }
  std::printf("Generalized objective sweep on TeraSort (Eq. 1):\n%s\n"
              "beta = 1 buys speed with resources; beta = 0 strips the job "
              "to the minimum viable allocation; beta = 0.5 is execution "
              "cost.\n",
              table.ToString().c_str());
  return 0;
}
