// Safe online tuning: demonstrates the safety machinery (§4.2) on a
// memory-pressure-prone workload (Bayes). Both runtime and resource are
// constrained to twice the manual configuration's metrics; the example
// contrasts the suggestion stream of the safe configuration generator with
// plain (vanilla) Bayesian optimization.
#include <cstdio>

#include "baselines/ours.h"
#include "baselines/tuning_method.h"
#include "common/strings.h"
#include "common/table.h"
#include "sparksim/hibench.h"
#include "tuner/evaluator.h"

using namespace sparktune;

namespace {

RunHistory TuneArm(const ConfigSpace& space, const WorkloadSpec& workload,
                   const ClusterSpec& cluster, const TuningObjective& obj,
                   bool safety, uint64_t seed) {
  SimulatorEvaluatorOptions eopts;
  eopts.seed = seed;
  SimulatorEvaluator eval(&space, workload, cluster, DriftModel::Diurnal(),
                          eopts);
  OursOptions opts;
  opts.advisor.enable_safety = safety;
  opts.advisor.enable_eic = safety;
  if (!safety) {
    opts.advisor.enable_subspace = false;
    opts.advisor.enable_agd = false;
  }
  OursMethod method(opts, safety ? "safe" : "vanilla");
  return method.Tune(space, &eval, obj, 25, seed);
}

}  // namespace

int main() {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto workload = HiBenchTask("Bayes");
  if (!workload.ok()) return 1;

  // Constraints from a reference run of the default configuration.
  SimulatorEvaluatorOptions popts;
  popts.seed = 99;
  SimulatorEvaluator probe(&space, *workload, cluster, DriftModel::None(),
                           popts);
  auto reference = probe.Run(space.Default());
  TuningObjective obj;
  obj.beta = 0.5;
  obj.runtime_max = reference.runtime_sec * 2.0;
  obj.resource_max = reference.resource_rate * 2.0;
  std::printf("Constraints: runtime <= %.0fs, resource rate <= %.1f\n\n",
              obj.runtime_max, obj.resource_max);

  TablePrinter table({"arm", "iter", "runtime(s)", "R(x)", "cost",
                      "status"});
  int safe_violations = 0, vanilla_violations = 0;
  for (bool safety : {true, false}) {
    RunHistory h = TuneArm(space, *workload, cluster, obj, safety, 5);
    for (const auto& o : h.observations()) {
      if (!o.feasible) (safety ? safe_violations : vanilla_violations)++;
      table.AddRow({safety ? "safe" : "vanilla",
                    StrFormat("%d", o.iteration),
                    StrFormat("%.0f", o.runtime_sec),
                    StrFormat("%.1f", o.resource_rate),
                    StrFormat("%.1f", o.objective),
                    o.failed() ? "FAILED"
                             : (o.feasible ? "ok" : "VIOLATION")});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Constraint violations: safe arm %d/25, vanilla arm %d/25\n",
              safe_violations, vanilla_violations);
  return 0;
}
