// Generic black-box optimization with the same engine that tunes Spark —
// the paper's planned extension to "more data analytics systems". Here the
// black box is a synthetic database-style knob-tuning problem: three knobs
// control a latency surface with interactions and a crash region, a
// white-box cost models the provisioned buffer memory, and a safety bound
// keeps online evaluations from catastrophic latencies.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bo/optimizer.h"
#include "common/strings.h"
#include "common/table.h"

using namespace sparktune;

namespace {

// Latency (ms) of a fictional storage engine as a function of its knobs.
// Interactions: the best thread count depends on the buffer size; tiny
// buffers with compaction style 1 "crash" (return infinity).
double LatencyMs(const ConfigSpace& space, const Configuration& c) {
  double buffer_gb = space.Get(c, "buffer_gb");
  double threads = space.Get(c, "threads");
  double style = space.Get(c, "compaction_style");  // 0=level, 1=universal
  if (style == 1.0 && buffer_gb < 1.0) {
    return std::numeric_limits<double>::infinity();  // OOM during compaction
  }
  double best_threads = 4.0 + 2.0 * buffer_gb;
  double latency = 8.0 + 40.0 / buffer_gb +
                   0.8 * std::pow(threads - best_threads, 2) /
                       (1.0 + buffer_gb);
  if (style == 1.0) latency *= 0.85;  // universal compaction reads faster
  return latency;
}

}  // namespace

int main() {
  ConfigSpace space;
  (void)space.Add(Parameter::Float("buffer_gb", 0.25, 16.0, 1.0,
                                   /*log_scale=*/true));
  (void)space.Add(Parameter::Int("threads", 1, 32, 8));
  (void)space.Add(Parameter::Categorical("compaction_style",
                                         {"level", "universal"}, 0));

  OptimizerOptions opts;
  opts.budget = 30;
  opts.safety_bound = 120.0;  // never tolerate >120 ms while tuning live
  opts.beta = 0.5;            // trade latency against memory cost
  opts.resource_fn = [&space](const Configuration& c) {
    return 1.0 + space.Get(c, "buffer_gb");  // provisioned memory
  };
  opts.resource_bound = 10.0;  // at most ~9 GB of buffer
  opts.seed = 13;

  Optimizer optimizer(&space, opts);
  TablePrinter table({"iter", "buffer_gb", "threads", "style",
                      "latency(ms)", "status"});
  for (int i = 0; i < opts.budget; ++i) {
    Configuration c = optimizer.Suggest();
    double latency = LatencyMs(space, c);
    optimizer.Observe(c, latency);
    table.AddRow({StrFormat("%d", i),
                  PrettyDouble(space.Get(c, "buffer_gb"), 2),
                  StrFormat("%.0f", space.Get(c, "threads")),
                  space.param(2).FormatValue(c[2]),
                  std::isfinite(latency) ? StrFormat("%.1f", latency)
                                         : "CRASH",
                  !std::isfinite(latency)    ? "failed"
                  : latency > opts.safety_bound ? "VIOLATION"
                                                 : "ok"});
  }
  std::printf("%s", table.ToString().c_str());
  std::optional<Observation> best = optimizer.history().BestFeasible();
  if (best.has_value()) {
    std::printf("\nBest: %s -> %.1f ms at memory cost %.1f "
                "(objective %.2f)\n",
                space.Format(best->config).c_str(), best->runtime_sec,
                best->resource_rate, best->objective);
  }
  return 0;
}
