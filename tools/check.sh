#!/usr/bin/env bash
# One-shot verification gate: configure + build + ctest for the default
# config and the UBSan config, plus an isolated run of the lint label.
# Exits non-zero on the first failure.
#
# Usage: tools/check.sh [--all] [extra ctest args...]
#
#   --all   additionally run the slow sanitizer matrix: ThreadSanitizer
#           (build-tsan) and combined ASan+UBSan (build-asan-ubsan). The
#           default set is unchanged, so CI latency stays where it was.
#
# Build dirs follow the build-<san> convention (README "Build & test"):
#   build (default), build-tsan, build-asan, build-ubsan, build-asan-ubsan.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

ALL=0
if [[ "${1:-}" == "--all" ]]; then
  ALL=1
  shift
fi

run_config() {
  local dir="$1" sanitize="$2"
  shift 2
  echo "==> [$dir] configure (SPARKTUNE_SANITIZE='$sanitize')"
  cmake -B "$dir" -S . -DSPARKTUNE_SANITIZE="$sanitize" > /dev/null
  echo "==> [$dir] build"
  cmake --build "$dir" -j "$JOBS" > /dev/null
  echo "==> [$dir] ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "$@"
}

# Lint first, fail fast: a policy violation should surface in seconds,
# before any sanitizer build spends minutes. Builds only the linter, runs
# the two-phase pass over the tree, and drops a SARIF artifact for
# annotation-consuming CI frontends.
echo "==> [build] sparktune_lint (fail-fast policy gate + lint.sarif)"
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS" --target sparktune_lint > /dev/null
./build/tools/sparktune_lint --root .
./build/tools/sparktune_lint --root . --format=sarif --out=build/lint.sarif
echo "    sarif artifact: build/lint.sarif"

run_config build "" "$@"
run_config build-ubsan undefined "$@"

# Multi-process smoke: spawn the control plane + 2 shardd workers over
# real sockets, SIGKILL one mid-run, and verify every delivered slot
# against an undisturbed in-process oracle (--verify=1 is the default).
# Runs on the default build and, with --all, again under ASan+UBSan so
# the fork/exec + recovery path is sanitizer-clean.
rpc_smoke() {
  local dir="$1"
  echo "==> [$dir] sparktune_service multi-process smoke (kill + recover + verify)"
  "./$dir/tools/sparktune_service" \
    --shardd="./$dir/tools/sparktune_shardd" \
    --sockdir="$dir/rpc-smoke-socks" --repo="$dir/rpc-smoke-repo" \
    --shards=2 --tasks=4 --ticks=7 --kill-tick=3 --restart-tick=5 \
    --budget=4 --verify=1
}
# Self-healing smoke: deterministic wire chaos on both directions, a
# worker SIGKILL healed by the heartbeat auto-restart (no manual
# --restart-tick), and a supervisor SIGKILL (--crash-tick) recovered from
# the manifest — still verified slot-for-slot against the oracle.
rpc_smoke_chaos() {
  local dir="$1"
  echo "==> [$dir] sparktune_service self-healing smoke (chaos + crash + autoheal + verify)"
  "./$dir/tools/sparktune_service" \
    --shardd="./$dir/tools/sparktune_shardd" \
    --sockdir="$dir/rpc-chaos-socks" --repo="$dir/rpc-chaos-repo" \
    --shards=2 --tasks=4 --ticks=10 --kill-tick=3 --restart-tick=0 \
    --crash-tick=6 --autoheal=1 --chaos_seed=7 --chaos_prob=0.05 \
    --chaos_arm=12 --budget=4 --verify=1
}
rpc_smoke build
rpc_smoke_chaos build

if [[ "$ALL" -eq 1 ]]; then
  run_config build-tsan thread "$@"
  run_config build-asan-ubsan address,undefined "$@"
  # Isolated stress pass: the fault-injected batch and supervisor chaos
  # schedules again, by label, under the full sanitizer matrix.
  for dir in build build-ubsan build-tsan build-asan-ubsan; do
    echo "==> [$dir] ctest -L stress (chaos/fault stress label)"
    ctest --test-dir "$dir" --output-on-failure -L stress
  done
  rpc_smoke build-asan-ubsan
  rpc_smoke_chaos build-asan-ubsan
  # Isolated chaos-net pass: the self-healing control-plane suite
  # (ChaosChannel typing, health machine, fencing, crash recovery) by
  # label on the default build and under ASan+UBSan.
  for dir in build build-asan-ubsan; do
    echo "==> [$dir] ctest -L chaos-net (self-healing control plane)"
    ctest --test-dir "$dir" --output-on-failure -L chaos-net
  done
  # Fleet-scale throughput/memory snapshot (no sanitizer: real numbers).
  # Emits build/BENCH_fleet.json and enforces the fleet memory budget.
  echo "==> [build] bench_fleet (BENCH_fleet.json + RSS budget)"
  ./build/bench/bench_fleet --tasks=20000 --ticks=3 --threads="$JOBS" \
    --harvest_per_tick=64 --max_rss_mb=2048 --out=build/BENCH_fleet.json
fi

# Kernel bit-equality self-check: every optimized hot kernel (panelled
# upper solve, tiled SYRK, columnar kernel batch, parallel meta extract)
# re-verified against its naive reference on ragged sizes.
echo "==> [build] bench_kernels --self_check=1 (kernel bit-equality)"
./build/bench/bench_kernels --self_check=1 --threads="$JOBS" \
  --out=build/BENCH_kernels_selfcheck.json

echo "==> [build] ctest -L lint (isolated lint label)"
ctest --test-dir build --output-on-failure -L lint

echo "check.sh: all configs green"
