// sparktune_shardd: one worker process of the multi-process tuning
// service (DESIGN.md §9). Listens on a Unix-domain socket, hosts one
// ShardServer (a lazily-configured TuningService plus its evaluators),
// and dispatches framed requests until the control plane sends kShutdown.
//
// All state arrives over the wire (kConfigure, kRegisterTask, kRestore),
// so the binary takes exactly one argument: the socket to serve.
#include <cstdio>
#include <cstring>
#include <string>

#include "service/shard_server.h"

namespace {

int Usage() {
  std::fprintf(stderr, "usage: sparktune_shardd --socket PATH\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socket_path = argv[i] + 9;
    } else {
      return Usage();
    }
  }
  if (socket_path.empty()) return Usage();

  sparktune::ShardServer server;
  sparktune::Status st = sparktune::ServeShard(socket_path, &server);
  if (!st.ok()) {
    std::fprintf(stderr, "sparktune_shardd: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
