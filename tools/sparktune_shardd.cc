// sparktune_shardd: one worker process of the multi-process tuning
// service (DESIGN.md §9). Listens on a Unix-domain socket, hosts one
// ShardServer (a lazily-configured TuningService plus its evaluators),
// and dispatches framed requests until the control plane sends kShutdown.
//
// All state arrives over the wire (kConfigure, kRegisterTask, kRestore),
// so the binary takes one required argument — the socket to serve — plus
// optional deterministic wire-chaos flags (net/chaos.h): --chaos_seed
// arms a ChaosChannel on the RESPONSE path, drawing faults from the
// (seed, --shard, server salt, exchange index) schedule so a soak can
// damage both directions of the wire reproducibly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/chaos.h"
#include "service/shard_server.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: sparktune_shardd --socket PATH [--shard N]\n"
               "         [--chaos_seed S] [--chaos_prob P] [--chaos_arm K]\n");
  return 2;
}

// Accepts both "--flag VALUE" and "--flag=VALUE"; returns nullptr when
// argv[i] is not `flag`.
const char* FlagValue(const char* flag, int argc, char** argv, int* i) {
  const size_t n = std::strlen(flag);
  if (std::strncmp(argv[*i], flag, n) != 0) return nullptr;
  if (argv[*i][n] == '=') return argv[*i] + n + 1;
  if (argv[*i][n] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  sparktune::net::ChaosOptions chaos;
  chaos.salt = sparktune::net::kChaosServerSalt;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue("--socket", argc, argv, &i)) {
      socket_path = v;
    } else if (const char* v = FlagValue("--shard", argc, argv, &i)) {
      chaos.shard = std::atoi(v);
    } else if (const char* v = FlagValue("--chaos_seed", argc, argv, &i)) {
      chaos.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = FlagValue("--chaos_prob", argc, argv, &i)) {
      chaos.fault_prob = std::atof(v);
    } else if (const char* v = FlagValue("--chaos_arm", argc, argv, &i)) {
      chaos.arm_after_exchanges = std::atoi(v);
    } else {
      return Usage();
    }
  }
  if (socket_path.empty()) return Usage();

  sparktune::net::ChaosChannel chaos_channel(chaos);
  sparktune::ShardServer server;
  sparktune::Status st = sparktune::ServeShard(
      socket_path, &server, /*write_deadline_ms=*/20000,
      chaos_channel.enabled() ? &chaos_channel : nullptr);
  if (!st.ok()) {
    std::fprintf(stderr, "sparktune_shardd: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
