// sparktune_lint CLI.
//
//   sparktune_lint [--root <dir>] [--format=text|json|sarif] [--out=<file>]
//                  [--fix] [--fix-user=<name>] [--list-rules]
//                  [--schema-check] [path ...]
//
// With no explicit paths, walks src/, bench/, tests/, tools/, and
// examples/ under --root (default: current directory) in two phases:
// build the symbol index over every file, then lint each file with the
// index (which enables the cross-TU rules — see lint.h). Explicit paths
// may be files or directories; they are indexed together, so a two-file
// fixture pair (header + misusing .cc) exercises the cross-TU rules.
//
// Exit status (pinned by tests/lint_test.cc, relied on by tools/check.sh):
//   0  clean
//   1  unsuppressed findings
//   2  the run itself is broken (unreadable input, bad flag)
//
// --fix inserts `// lint:allow(<rule>) TODO(<user>): justify` stubs above
// each finding so the tree lints clean while every exception stays
// greppable for review. --schema-check re-parses the JSON report with
// common/json.h and validates it against sparktune-lint-findings-v1.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "index.h"
#include "lint.h"

namespace {

constexpr char kUsage[] =
    "usage: sparktune_lint [--root <dir>] [--format=text|json|sarif]\n"
    "                      [--out=<file>] [--fix] [--fix-user=<name>]\n"
    "                      [--list-rules] [--schema-check] [path ...]\n"
    "exit: 0 clean, 1 findings, 2 broken run (I/O or usage error)\n";

// Validate a JSON report against the sparktune-lint-findings-v1 shape.
// Returns true and prints a summary on success; prints the defect on
// failure.
bool SchemaCheck(const std::string& text) {
  using sparktune::Json;
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "schema-check: JSON does not parse: %s\n",
                 parsed.status().message().c_str());
    return false;
  }
  const Json& doc = parsed.value();
  if (!doc.is_object()) {
    std::fprintf(stderr, "schema-check: top level is not an object\n");
    return false;
  }
  if (doc.GetStringOr("schema", "") != "sparktune-lint-findings-v1") {
    std::fprintf(stderr, "schema-check: missing or wrong \"schema\" tag\n");
    return false;
  }
  const Json* findings = doc.Get("findings");
  if (findings == nullptr || !findings->is_array()) {
    std::fprintf(stderr, "schema-check: \"findings\" is not an array\n");
    return false;
  }
  if (static_cast<size_t>(doc.GetNumberOr("count", -1)) !=
      findings->size()) {
    std::fprintf(stderr, "schema-check: \"count\" != findings length\n");
    return false;
  }
  for (size_t i = 0; i < findings->size(); ++i) {
    const Json& f = findings->at(i);
    if (!f.is_object() || !f.Has("file") || !f.Has("line") ||
        !f.Has("rule") || !f.Has("message") || !f.Has("hint")) {
      std::fprintf(stderr,
                   "schema-check: finding %zu missing a required key\n", i);
      return false;
    }
    const Json* rule = f.Get("rule");
    if (!rule->is_string() || rule->AsString().empty()) {
      std::fprintf(stderr, "schema-check: finding %zu has no rule id\n", i);
      return false;
    }
  }
  std::printf("schema-check: ok (%zu finding(s))\n", findings->size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using sparktune::lint::Finding;
  std::string root = ".";
  std::string format = "text";
  std::string out_path;
  std::string fix_user = "lint-fix";
  bool fix = false;
  bool schema_check = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "sparktune_lint: unknown format '%s'\n%s",
                     format.c_str(), kUsage);
        return 2;
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg.rfind("--fix-user=", 0) == 0) {
      fix_user = arg.substr(11);
    } else if (arg == "--schema-check") {
      schema_check = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : sparktune::lint::RuleDocs()) {
        std::printf("%-24s %s\n", r.id.c_str(), r.doc.c_str());
      }
      return 0;
    } else if (arg == "--help") {
      std::printf("%s", kUsage);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "sparktune_lint: unknown flag '%s'\n%s",
                   arg.c_str(), kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  // Resolve the file set, then run the two phases over it.
  std::vector<std::string> files;
  if (paths.empty()) {
    files = sparktune::lint::CollectFiles(
        root, {"src", "bench", "tests", "tools", "examples"});
  } else {
    for (const std::string& p : paths) {
      std::error_code ec;
      if (std::filesystem::is_directory(p, ec)) {
        auto sub = sparktune::lint::CollectFiles(p, {"."});
        files.insert(files.end(), sub.begin(), sub.end());
      } else {
        files.push_back(p);
      }
    }
  }
  std::vector<Finding> findings = sparktune::lint::LintFilesIndexed(files);

  if (fix) {
    auto result = sparktune::lint::ApplyFixStubs(findings, fix_user);
    std::printf("sparktune_lint --fix: %d stub(s) in %zu file(s)\n",
                result.stubs, result.files.size());
    for (const std::string& f : result.files) {
      std::printf("  stubbed: %s\n", f.c_str());
    }
    for (const Finding& f : result.skipped) {
      std::printf("  not stubbable: %s\n",
                  sparktune::lint::FormatFinding(f).c_str());
    }
    // A fixable tree exits 0 after --fix; unstubbable findings keep the
    // exit-code contract (bad-allow -> 1, io-error -> 2).
    return sparktune::lint::ExitCodeForFindings(result.skipped);
  }

  std::string report;
  if (format == "json") {
    report = sparktune::lint::FindingsToJson(findings);
  } else if (format == "sarif") {
    report = sparktune::lint::FindingsToSarif(findings);
  } else {
    for (const Finding& f : findings) {
      report += sparktune::lint::FormatFinding(f) + "\n";
    }
    report += findings.empty()
                  ? "sparktune_lint: clean\n"
                  : "sparktune_lint: " + std::to_string(findings.size()) +
                        " finding(s)\n";
  }

  if (schema_check && format == "json") {
    if (!SchemaCheck(report)) return 2;
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "sparktune_lint: cannot write '%s'\n",
                   out_path.c_str());
      return 2;
    }
    out << report;
  } else {
    std::fputs(report.c_str(), stdout);
  }
  return sparktune::lint::ExitCodeForFindings(findings);
}
