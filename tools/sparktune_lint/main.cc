// sparktune_lint CLI.
//
//   sparktune_lint [--root <dir>] [--list-rules] [path ...]
//
// With no explicit paths, walks src/, bench/, tests/, tools/, and
// examples/ under --root (default: current directory). Explicit paths may
// be files or directories. Exit status is 1 when any unsuppressed finding
// remains, so `add_test(NAME lint COMMAND sparktune_lint ...)` gates the
// tree.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  using sparktune::lint::Finding;
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const std::string& id : sparktune::lint::RuleIds()) {
        std::printf("%s\n", id.c_str());
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: sparktune_lint [--root <dir>] [--list-rules] [path ...]\n");
      return 0;
    } else {
      paths.push_back(argv[i]);
    }
  }

  std::vector<Finding> findings;
  if (paths.empty()) {
    findings = sparktune::lint::LintTree(
        root, {"src", "bench", "tests", "tools", "examples"});
  } else {
    for (const std::string& p : paths) {
      std::error_code ec;
      if (std::filesystem::is_directory(p, ec)) {
        auto sub = sparktune::lint::LintTree(p, {"."});
        findings.insert(findings.end(), sub.begin(), sub.end());
      } else {
        auto sub = sparktune::lint::LintFileOnDisk(p);
        findings.insert(findings.end(), sub.begin(), sub.end());
      }
    }
  }

  for (const Finding& f : findings) {
    std::printf("%s\n", sparktune::lint::FormatFinding(f).c_str());
  }
  if (findings.empty()) {
    std::printf("sparktune_lint: clean\n");
    return 0;
  }
  std::printf("sparktune_lint: %zu finding(s)\n", findings.size());
  return 1;
}
