// sparktune_lint — determinism & concurrency static analysis for the
// sparktune tree. A lightweight tokenizer + rule engine (no libclang):
// it cannot resolve types the way a compiler does, but the project's
// determinism discipline is deliberately syntactic (all randomness flows
// through common/rng.h, all parallelism through common/thread_pool.h),
// which is exactly what a token-level pass can enforce.
//
// The analysis runs in two phases (DESIGN.md §6):
//   Phase 1 (index)  walk every header and source once and build a
//                    SymbolIndex (tools/sparktune_lint/index.h): class
//                    members with declared types (unordered containers,
//                    mutexes), lint:guarded-by annotations attached to
//                    declarations, and function signatures that accept
//                    Rng by reference or pointer.
//   Phase 2 (check)  re-run the rule engine per file with the index in
//                    hand, which is what lets the cross-TU rules see a
//                    member declared in one header and misused in a
//                    different file's .cc.
//
// Rule catalogue (ids are what lint:allow takes):
//   no-rand            std::rand / srand / rand_r / drand48
//   no-random-device   std::random_device
//   no-wall-clock      time(), clock(), gettimeofday, clock_gettime,
//                      system_clock, argless now() — exempt under
//                      src/sparksim/ (the simulated clock domain)
//   no-raw-thread      std::thread construction, std::jthread, std::async,
//                      pthread_create, #pragma omp — exempt in
//                      common/thread_pool.cc (the one sanctioned home)
//   no-nondet-reduce   std::reduce / std::transform_reduce / std::execution
//   no-float-accum     `float` in src/linalg or src/model (accumulation
//                      paths must be double for cross-platform bit-identity)
//   no-unordered-iter  range-for over an unordered_{map,set} whose body
//                      writes into another container (iteration order is
//                      unspecified, so the output order is too)
//   rng-fork-required  an Rng declared outside a ParallelFor body is used
//                      inside it (fork per task with ForkRngs and index)
//   no-rng-ref-capture a ParallelFor lambda capture list names an Rng by
//                      reference ([&rng])
//   mutable-static     mutable namespace-scope, function-static, or
//                      thread_local state without a
//                      // lint:guarded-by(<mutex>) or lint:allow annotation
//   parallel-shared-write
//                      a ParallelFor body writes (assigns, ++/--, or calls
//                      a container mutator on) non-RNG state it does not
//                      own — not declared in the body, not the lambda
//                      parameter, and not an index-owned slot whose
//                      subscript names a body-owned index (out[task_id])
//   no-abort           abort()/exit()/_Exit()/quick_exit()/assert(false)
//                      under src/ — library code returns Status
//   bad-allow          a lint:allow with no reason string or an unknown
//                      rule id (never suppressible)
// Cross-TU rules (need the phase-1 index; silent without it):
//   unordered-member-iter
//                      range-for or begin()-iterator walk over an
//                      unordered_{map,set} *member* declared in any
//                      indexed header, even one in another file
//   guard-discipline   a member annotated lint:guarded-by(m) on its
//                      declaration is read or written in a scope where
//                      `m` is not visibly held (lock_guard / unique_lock /
//                      scoped_lock / manual .lock()/.unlock() tracking)
//   rng-ref-escape     an un-forked Rng flows by reference into a
//                      function whose indexed signature takes Rng&/Rng*
//                      inside a ParallelFor body, or an Rng is captured
//                      by reference in a lambda stored outside the
//                      sanctioned ParallelFor call site
//
// Suppressions: `// lint:allow(<rule-id>) <reason>` on the finding's line
// or the line directly above. `// lint:guarded-by(<mutex>)` satisfies
// mutable-static and parallel-shared-write specifically, and on a member
// declaration it *enables* guard-discipline for that member tree-wide.
// A lint:allow placed on a member declaration suppresses that rule for
// every use of the member (prefer use-site allows; declaration-site is
// for members whose invariant makes the rule moot everywhere — see
// DESIGN.md §6 "Declarations vs use sites"). Reasons are mandatory so
// every exception is self-documenting in the diff.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sparktune::lint {

struct Finding {
  std::string file;  // path as given to the linter
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  std::string hint;
};

// ---------------------------------------------------------------------------
// Shared source plumbing. One annotation parser serves every rule and the
// phase-1 indexer (it used to be re-parsed per consumer).
// ---------------------------------------------------------------------------

// Annotations harvested from one line's comments.
// (The comments below name the annotations without their lint: prefix on
// purpose — a literal spelled-out annotation here would be harvested by
// the indexer as a real declaration-site annotation on these members.)
struct Annotation {
  std::vector<std::string> allowed;        // rule ids from allow(...)
  std::vector<std::string> allow_reasons;  // parallel to `allowed`
  std::vector<std::string> guards;         // mutex names from guarded-by
  bool guarded_by = false;                 // any guarded-by(...) present
};

// Parse every lint:allow(...) / lint:guarded-by(...) inside one comment's
// text and record it against `line` in `notes`. Ill-formed ids (anything
// but kebab-case, e.g. prose like "lint:allow(<rule-id>)") are ignored.
void ParseAnnotations(const std::string& text, int line,
                      std::map<int, Annotation>* notes);

struct Token {
  std::string text;
  int line = 0;
};

// Comments, string/char literals, and preprocessor lines blanked (newlines
// kept, so line numbers survive); comments harvested for annotations and
// preprocessor lines for `#pragma omp` before blanking.
struct CleanedSource {
  std::string code;                   // same length/lines as input
  std::map<int, Annotation> notes;    // line -> annotations found there
  std::vector<int> omp_pragma_lines;  // lines holding `#pragma omp`
};

CleanedSource CleanSource(const std::string& src);
std::vector<Token> Tokenize(const std::string& code);

// ---------------------------------------------------------------------------
// Rule catalogue.
// ---------------------------------------------------------------------------

// All rule ids the engine knows, in catalogue order.
const std::vector<std::string>& RuleIds();

struct RuleDoc {
  std::string id;
  std::string doc;  // one line, printed by --list-rules
};

// Catalogue order, one entry per RuleIds() id.
const std::vector<RuleDoc>& RuleDocs();

// ---------------------------------------------------------------------------
// Linting entry points.
// ---------------------------------------------------------------------------

class SymbolIndex;  // tools/sparktune_lint/index.h

// Lint one file's contents without cross-TU knowledge: the per-file rules
// only. `path` is used for path-scoped rules (sparksim wall-clock
// exemption, thread_pool exemption, float scoping) and is reported
// verbatim in findings.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content);

// Phase-2 entry point: per-file rules plus the cross-TU rules
// (unordered-member-iter, guard-discipline, rng-ref-escape) when `index`
// is non-null.
std::vector<Finding> LintFileWithIndex(const std::string& path,
                                       const std::string& content,
                                       const SymbolIndex* index);

// Read `path` from disk and lint it. Unreadable files yield a single
// finding with rule "io-error" (exit code 2, not 1 — see
// ExitCodeForFindings).
std::vector<Finding> LintFileOnDisk(const std::string& path);
std::vector<Finding> LintFileOnDiskWithIndex(const std::string& path,
                                             const SymbolIndex* index);

// Every lintable file (.cc/.cpp/.h/.hpp) under `root`/<dir> for each of
// `dirs`, skipping directories named "lint_fixtures" (the intentionally-
// violating test corpus), anything starting with "build", and
// dot-directories. Sorted, so everything downstream is deterministic.
std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& dirs);

// Single-phase tree walk (per-file rules only; kept for tooling that
// wants the cheap pass).
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& dirs);

// Two-phase tree walk: CollectFiles, BuildIndex over all of them, then
// lint each with the index. Results are sorted by path then line.
std::vector<Finding> LintTreeIndexed(const std::string& root,
                                     const std::vector<std::string>& dirs);

// Two-phase over an explicit file list (fixture pairs, CLI path args).
std::vector<Finding> LintFilesIndexed(const std::vector<std::string>& paths);

// ---------------------------------------------------------------------------
// Output & exit codes.
// ---------------------------------------------------------------------------

// "file:line: [rule] message" plus an indented hint line when present.
std::string FormatFinding(const Finding& f);

// Machine-readable reports. The JSON schema is
//   { "tool": "sparktune_lint", "schema": "sparktune-lint-findings-v1",
//     "count": N, "findings": [{file, line, rule, message, hint}...] }
// and the SARIF output is minimal but valid SARIF 2.1.0 (one run, rule
// metadata from RuleDocs, one result per finding).
std::string FindingsToJson(const std::vector<Finding>& findings);
std::string FindingsToSarif(const std::vector<Finding>& findings);

// CLI exit-code contract, pinned by lint_test: 0 = clean, 1 = findings
// present, 2 = the run itself is broken (io-error findings: unreadable
// input, not a dirty tree). tools/check.sh relies on the distinction.
int ExitCodeForFindings(const std::vector<Finding>& findings);

// ---------------------------------------------------------------------------
// --fix: suppression stubs.
// ---------------------------------------------------------------------------

struct FixResult {
  int stubs = 0;                    // lint:allow stubs inserted
  std::vector<std::string> files;   // files rewritten, sorted unique
  std::vector<Finding> skipped;     // not stubbable (bad-allow, io-error)
};

// Insert `// lint:allow(<rule>) TODO(<user>): justify` stubs directly
// above each finding's line (merging into an existing annotation comment
// line when one is already there, so it keeps suppressing its own rule).
// The stub parses as a well-formed reasoned allow, so a --fix'd tree
// lints clean while every stub stays greppable for review. bad-allow and
// io-error findings are never stubbed (reported in `skipped`).
FixResult ApplyFixStubs(const std::vector<Finding>& findings,
                        const std::string& user);

}  // namespace sparktune::lint
