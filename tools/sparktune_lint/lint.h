// sparktune_lint — determinism & concurrency static analysis for the
// sparktune tree. A lightweight tokenizer + rule engine (no libclang):
// it cannot see types across translation units, but the project's
// determinism discipline is deliberately syntactic (all randomness flows
// through common/rng.h, all parallelism through common/thread_pool.h),
// which is exactly what a token-level pass can enforce.
//
// Rule catalogue (ids are what lint:allow takes):
//   no-rand            std::rand / srand / rand_r / drand48
//   no-random-device   std::random_device
//   no-wall-clock      time(), clock(), gettimeofday, clock_gettime,
//                      system_clock, argless now() — exempt under
//                      src/sparksim/ (the simulated clock domain)
//   no-raw-thread      std::thread construction, std::jthread, std::async,
//                      pthread_create, #pragma omp — exempt in
//                      common/thread_pool.cc (the one sanctioned home)
//   no-nondet-reduce   std::reduce / std::transform_reduce / std::execution
//   no-float-accum     `float` in src/linalg or src/model (accumulation
//                      paths must be double for cross-platform bit-identity)
//   no-unordered-iter  range-for over an unordered_{map,set} whose body
//                      writes into another container (iteration order is
//                      unspecified, so the output order is too)
//   rng-fork-required  an Rng declared outside a ParallelFor body is used
//                      inside it (fork per task with ForkRngs and index)
//   no-rng-ref-capture a ParallelFor lambda capture list names an Rng by
//                      reference ([&rng])
//   mutable-static     mutable namespace-scope, function-static, or
//                      thread_local state without a
//                      // lint:guarded-by(<mutex>) or lint:allow annotation
//   parallel-shared-write
//                      a ParallelFor body writes (assigns, ++/--, or calls
//                      a container mutator on) non-RNG state it does not
//                      own — not declared in the body, not the lambda
//                      parameter, and not an index-owned slot whose
//                      subscript names a body-owned index (out[task_id])
//   bad-allow          a lint:allow with no reason string or an unknown
//                      rule id (never suppressible)
//
// Suppressions: `// lint:allow(<rule-id>) <reason>` on the finding's line
// or the line directly above. `// lint:guarded-by(<mutex>)` satisfies
// mutable-static and parallel-shared-write specifically. Reasons are
// mandatory so every exception is self-documenting in the diff.
#pragma once

#include <string>
#include <vector>

namespace sparktune::lint {

struct Finding {
  std::string file;  // path as given to the linter
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  std::string hint;
};

// All rule ids the engine knows, in catalogue order.
const std::vector<std::string>& RuleIds();

// Lint one file's contents. `path` is used for path-scoped rules
// (sparksim wall-clock exemption, thread_pool exemption, float scoping)
// and is reported verbatim in findings.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content);

// Read `path` from disk and lint it. Unreadable files yield a single
// finding with rule "io-error".
std::vector<Finding> LintFileOnDisk(const std::string& path);

// Recursively lint every .cc/.cpp/.h/.hpp under `root`/<dir> for each of
// `dirs` (e.g. {"src", "bench", "tests"}). Skips directories named
// "lint_fixtures" (the intentionally-violating test corpus), anything
// starting with "build", and dot-directories. Results are sorted by
// path then line so output is deterministic.
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& dirs);

// "file:line: [rule] message" plus an indented hint line when present.
std::string FormatFinding(const Finding& f);

}  // namespace sparktune::lint
