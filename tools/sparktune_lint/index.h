// Phase 1 of the two-phase analysis (DESIGN.md §6): a project-wide symbol
// index built from one pass over every header and source. Name-based, not
// type-resolved — member names in this tree carry a trailing underscore,
// so cross-file name lookups are unambiguous in practice, and the rules
// that consume the index accept suppression at either the use site or the
// declaration when a collision does produce a false positive.
//
// What gets indexed:
//   * class/struct data members, with their declared-type classification:
//     unordered containers (std::unordered_{map,set,multimap,multiset})
//     and mutexes (std::mutex and friends);
//   * lint:guarded-by(<mutex>) and lint:allow(<rule>) annotations attached
//     to a member's *declaration* (same line or the line directly above),
//     which is what makes guard-discipline enforceable tree-wide;
//   * function signatures (free functions and methods, declarations and
//     definitions) that accept an Rng by reference or pointer — the
//     escape routes an un-forked RNG can take into a parallel body;
//   * type aliases (`using Cache = std::unordered_map<...>;` and the
//     typedef spelling), resolved transitively, so a member declared
//     through an alias classifies exactly like one declared with the
//     underlying type — aliasing must not launder an unordered container
//     past unordered-member-iter or a mutex past guard discipline.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint.h"

namespace sparktune::lint {

struct MemberRecord {
  std::string cls;   // enclosing class/struct name ("" if unnamed)
  std::string name;  // member name, e.g. "config_index_"
  std::string file;  // declaring file, as given to the indexer
  int line = 0;      // declaration line (the declarator's line)
  bool unordered = false;  // std::unordered_{map,set,multimap,multiset}
  bool is_mutex = false;   // std::mutex / recursive_mutex / shared_mutex...
  std::string guarded_by;  // mutex name from a declaration-site
                           // lint:guarded-by; "" when unannotated
  std::vector<std::string> decl_allows;  // reasoned lint:allow ids on the
                                         // declaration: suppress that rule
                                         // for every use of this member
};

struct FunctionRecord {
  std::string name;
  std::string file;
  int line = 0;
  // Parameter names declared as Rng& / Rng* (const-qualified included).
  std::vector<std::string> rng_ref_params;
};

struct AliasRecord {
  std::string name;  // alias identifier, e.g. "Cache"
  std::string file;
  int line = 0;
  bool unordered = false;  // RHS (transitively) names an unordered container
  bool is_mutex = false;   // RHS (transitively) names a mutex type
  // Identifier tokens on the RHS that were not classified directly; after
  // ResolveAliases() any of them naming another alias has been folded in.
  std::vector<std::string> deps;
};

class SymbolIndex {
 public:
  // Parse one file into the index. Safe to call for every file in the
  // tree; order does not matter for members/functions, but aliases
  // defined in *other* files are only visible after a CollectAliases
  // pre-pass over those files (BuildIndex does this automatically).
  void AddFile(const std::string& path, const std::string& content);
  // AddFile with disk I/O; unreadable files are skipped (phase 2 reports
  // them as io-error when it tries to lint them).
  void AddFileOnDisk(const std::string& path);

  // Alias pre-pass (phase 0): record `using NAME = ...;` / `typedef ...
  // NAME;` definitions without touching members or functions. Call for
  // every file before any AddFile so members in file A declared through
  // an alias defined in file B classify correctly. Idempotent per alias
  // (first definition wins, deterministic under a sorted file list).
  void CollectAliases(const std::string& path, const std::string& content);
  void CollectAliasesOnDisk(const std::string& path);
  // Fold alias-to-alias references to a fixed point (`using A = B;` where
  // B aliases an unordered container makes A unordered too).
  void ResolveAliases();

  bool IsUnorderedAlias(const std::string& name) const;
  bool IsMutexAlias(const std::string& name) const;
  const AliasRecord* FindAlias(const std::string& name) const;

  // First record for `name` with the property, or nullptr. Multiple
  // classes may declare a same-named member; the first (lowest path,
  // when built through BuildIndex) wins, which is deterministic.
  const MemberRecord* FindUnorderedMember(const std::string& name) const;
  const MemberRecord* FindGuardedMember(const std::string& name) const;
  const FunctionRecord* FindRngRefFunction(const std::string& name) const;
  bool IsMutexMember(const std::string& name) const;

  size_t member_count() const;
  size_t function_count() const;
  size_t alias_count() const { return aliases_.size(); }

 private:
  void IndexTokens(const std::string& path, const std::vector<Token>& toks,
                   const std::map<int, Annotation>& notes);
  void CollectAliasTokens(const std::string& path,
                          const std::vector<Token>& toks);

  std::map<std::string, std::vector<MemberRecord>> members_;
  std::map<std::string, std::vector<FunctionRecord>> functions_;
  std::map<std::string, AliasRecord> aliases_;
};

// Build an index over an explicit, pre-sorted file list (CollectFiles
// output or a fixture pair). Runs the alias pre-pass over every file
// first, so cross-file alias references resolve regardless of order.
SymbolIndex BuildIndex(const std::vector<std::string>& paths);

}  // namespace sparktune::lint
