#include "scopes.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace sparktune::lint {

namespace {

bool IsIdent(const std::string& t) {
  if (t.empty()) return false;
  char c = t[0];
  return (std::isalpha(static_cast<unsigned char>(c)) || c == '_');
}

const std::set<std::string>& GuardTypes() {
  static const std::set<std::string> kTypes = {"lock_guard", "unique_lock",
                                               "scoped_lock", "shared_lock"};
  return kTypes;
}

// One RAII guard (or manual m.lock()) alive in some block.
struct LockEntry {
  std::string var;                  // guard variable name ("" for manual)
  std::vector<std::string> mutexes;  // base names of the guarded mutexes
  bool active = true;               // false after unlock()/defer_lock
};

}  // namespace

std::vector<Finding> CheckGuardDiscipline(const std::string& path,
                                          const std::vector<Token>& toks,
                                          const SymbolIndex& index) {
  std::vector<Finding> findings;
  // Block stack: entries acquired in a block die when it closes. The
  // outermost "block" is the file itself so namespace-scope tokens do not
  // underflow the stack.
  std::vector<std::vector<LockEntry>> blocks(1);
  std::multiset<std::string> held;

  auto tok = [&](size_t i) -> const std::string& {
    static const std::string kEmpty;
    return i < toks.size() ? toks[i].text : kEmpty;
  };
  auto release = [&](LockEntry* e) {
    if (!e->active) return;
    e->active = false;
    for (const std::string& m : e->mutexes) {
      auto it = held.find(m);
      if (it != held.end()) held.erase(it);
    }
  };
  auto acquire = [&](LockEntry* e) {
    if (e->active) return;
    e->active = true;
    for (const std::string& m : e->mutexes) held.insert(m);
  };
  auto find_var = [&](const std::string& name) -> LockEntry* {
    for (size_t b = blocks.size(); b-- > 0;) {
      for (LockEntry& e : blocks[b]) {
        if (!e.var.empty() && e.var == name) return &e;
      }
    }
    return nullptr;
  };
  // Matching ')' / '>' helpers over the flat stream.
  auto match = [&](size_t open, const char* o, const char* c) -> size_t {
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      if (toks[i].text == o) ++depth;
      if (toks[i].text == c && --depth == 0) return i;
    }
    return toks.size();
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      blocks.emplace_back();
      continue;
    }
    if (t == "}") {
      if (blocks.size() > 1) {
        for (LockEntry& e : blocks.back()) release(&e);
        blocks.pop_back();
      }
      continue;
    }
    // RAII guard declaration: lock_guard<...> lk(mu_); unique_lock lk(mu_,
    // std::defer_lock); scoped_lock sl(a_mu_, b_mu_); ...
    if (GuardTypes().count(t)) {
      size_t j = i + 1;
      if (tok(j) == "<") {
        size_t close = match(j, "<", ">");
        if (close >= toks.size()) continue;
        j = close + 1;
      }
      if (!IsIdent(tok(j))) continue;  // e.g. a using-declaration
      std::string var = tok(j);
      if (tok(j + 1) != "(") continue;
      size_t close = match(j + 1, "(", ")");
      if (close >= toks.size()) continue;
      LockEntry entry;
      entry.var = var;
      bool deferred = false;
      // Each top-level argument contributes its base mutex name — the
      // last identifier of the argument's member chain (s->mu_ -> mu_).
      std::string last_ident;
      int depth = 0;
      for (size_t k = j + 1; k <= close; ++k) {
        const std::string& a = toks[k].text;
        if (a == "(" || a == "[") ++depth;
        if (a == ")" || a == "]") --depth;
        if ((a == "," && depth == 1) || k == close) {
          if (last_ident == "defer_lock") {
            deferred = true;
          } else if (last_ident == "adopt_lock" ||
                     last_ident == "try_to_lock") {
            // adopt: already held by this scope; try: assume success —
            // both err toward fewer false positives.
          } else if (!last_ident.empty()) {
            entry.mutexes.push_back(last_ident);
          }
          last_ident.clear();
          continue;
        }
        if (IsIdent(a)) last_ident = a;
      }
      entry.active = false;
      blocks.back().push_back(entry);
      if (!deferred && !blocks.back().back().mutexes.empty()) {
        acquire(&blocks.back().back());
      }
      i = close;
      continue;
    }
    // Manual lock()/unlock(): on a tracked guard variable or directly on
    // a mutex name (receiver = token before the ./->).
    if ((t == "lock" || t == "unlock") && tok(i + 1) == "(" &&
        i >= 2 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      const std::string& recv = toks[i - 2].text;
      if (!IsIdent(recv)) continue;
      if (LockEntry* e = find_var(recv)) {
        t == "lock" ? acquire(e) : release(e);
      } else if (t == "lock") {
        LockEntry entry;
        entry.mutexes.push_back(recv);
        entry.active = false;
        blocks.back().push_back(entry);
        acquire(&blocks.back().back());
      } else {
        // Manual unlock of a mutex acquired in any live block.
        for (size_t b = blocks.size(); b-- > 0;) {
          bool done = false;
          for (LockEntry& e : blocks[b]) {
            if (e.active && e.var.empty() && e.mutexes.size() == 1 &&
                e.mutexes[0] == recv) {
              release(&e);
              done = true;
              break;
            }
          }
          if (done) break;
        }
      }
      continue;
    }
    // Guarded-member access.
    if (!IsIdent(t)) continue;
    const MemberRecord* rec = index.FindGuardedMember(t);
    if (rec == nullptr) continue;
    if (rec->file == path && rec->line == toks[i].line) continue;  // decl
    if (std::find(rec->decl_allows.begin(), rec->decl_allows.end(),
                  "guard-discipline") != rec->decl_allows.end()) {
      continue;
    }
    if (i > 0 && toks[i - 1].text == "::") continue;  // qualified name use
    if (held.count(rec->guarded_by)) continue;
    findings.push_back(
        {path, toks[i].line, "guard-discipline",
         "'" + t + "' is declared lint:guarded-by(" + rec->guarded_by +
             ") at " + rec->file + ":" + std::to_string(rec->line) +
             " but '" + rec->guarded_by + "' is not visibly held here",
         "take a std::lock_guard<std::mutex> on '" + rec->guarded_by +
             "' around this access, or justify with "
             "lint:allow(guard-discipline) <reason>"});
  }
  return findings;
}

}  // namespace sparktune::lint
