// Lightweight intra-function lock tracking for the guard-discipline rule
// (phase 2 of the two-phase analysis, DESIGN.md §6).
//
// The tracker walks one file's token stream with a block-scope stack and
// maintains the multiset of mutexes "visibly held" at each point:
//   * RAII guards — std::lock_guard / std::unique_lock / std::scoped_lock /
//     std::shared_lock — hold their mutex arguments from the declaration
//     to the end of the enclosing block (std::defer_lock starts released);
//   * lk.lock() / lk.unlock() on a tracked guard variable re-acquire and
//     release its mutexes mid-block (the early-unlock case);
//   * m.lock() / m.unlock() directly on a mutex name acquire and release
//     it, bounded by the enclosing block (the sound approximation for a
//     pass with no inter-procedural view).
//
// Every access (read or write — both are racy) of a member whose indexed
// declaration carries lint:guarded-by(m) is then checked against the held
// set. The declaration line itself is exempt, as is any member whose
// declaration carries a reasoned lint:allow(guard-discipline).
#pragma once

#include <string>
#include <vector>

#include "index.h"
#include "lint.h"

namespace sparktune::lint {

std::vector<Finding> CheckGuardDiscipline(const std::string& path,
                                          const std::vector<Token>& toks,
                                          const SymbolIndex& index);

}  // namespace sparktune::lint
