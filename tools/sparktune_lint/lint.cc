#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "index.h"
#include "scopes.h"

namespace sparktune::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared annotation parsing. Every consumer — the per-file rules, the
// suppression pass, and the phase-1 indexer — goes through this one
// helper, so the annotation grammar is defined in exactly one place.
// ---------------------------------------------------------------------------

void ParseAnnotations(const std::string& text, int line,
                      std::map<int, Annotation>* notes) {
  size_t pos = 0;
  while ((pos = text.find("lint:", pos)) != std::string::npos) {
    size_t tail = pos + 5;
    if (text.compare(tail, 6, "allow(") == 0) {
      size_t open = tail + 6;
      size_t close = text.find(')', open);
      if (close == std::string::npos) break;
      std::string id = Trim(text.substr(open, close - open));
      // Only well-formed kebab-case ids count as annotations; prose like
      // "lint:allow(<rule-id>)" in documentation is not one.
      bool well_formed = !id.empty();
      for (char c : id) {
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '-')) {
          well_formed = false;
        }
      }
      if (!well_formed) {
        pos = close + 1;
        continue;
      }
      // The reason is everything after ')' up to the next annotation (or
      // end of comment).
      size_t reason_end = text.find("lint:", close);
      std::string reason = Trim(text.substr(
          close + 1, reason_end == std::string::npos ? std::string::npos
                                                    : reason_end - close - 1));
      Annotation& a = (*notes)[line];
      a.allowed.push_back(id);
      a.allow_reasons.push_back(reason);
      pos = close + 1;
    } else if (text.compare(tail, 11, "guarded-by(") == 0) {
      size_t open = tail + 11;
      size_t close = text.find(')', open);
      if (close == std::string::npos) break;
      Annotation& a = (*notes)[line];
      a.guarded_by = true;
      // The guard name's base identifier (s->mu_ records as mu_), which
      // is what the lock tracker compares against.
      std::string guard = Trim(text.substr(open, close - open));
      size_t base = guard.find_last_not_of(
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_");
      if (base != std::string::npos) guard = guard.substr(base + 1);
      if (!guard.empty()) a.guards.push_back(guard);
      pos = close + 1;
    } else {
      pos = tail;
    }
  }
}

// ---------------------------------------------------------------------------
// Source cleaning: blank out comments, string/char literals, and
// preprocessor lines (keeping newlines so line numbers survive). Comments
// are harvested for lint: annotations before being blanked; preprocessor
// lines are scanned for `#pragma omp` before being blanked.
// ---------------------------------------------------------------------------

CleanedSource CleanSource(const std::string& src) {
  CleanedSource out;
  out.code.reserve(src.size());
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  auto emit = [&](char c) { out.code.push_back(c == '\n' ? '\n' : c); };
  auto blank = [&](char c) { out.code.push_back(c == '\n' ? '\n' : ' '); };

  // Preprocessor lines (incl. backslash continuations) are blanked whole;
  // scan them for `#pragma omp` first. We detect "line starts with #"
  // at each newline boundary.
  bool at_line_start = true;
  while (i < n) {
    char c = src[i];
    if (at_line_start) {
      size_t j = i;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      if (j < n && src[j] == '#') {
        // Consume the whole (possibly continued) preprocessor directive.
        int start_line = line;
        std::string text;
        while (i < n) {
          if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
            blank(src[i]);
            ++i;
            emit('\n');
            ++line;
            ++i;
            continue;
          }
          if (src[i] == '\n') break;
          text.push_back(src[i]);
          blank(src[i]);
          ++i;
        }
        // Normalize whitespace for the pragma check.
        std::string squeezed;
        for (char tc : text) {
          if (tc == '\t') tc = ' ';
          if (tc == ' ' && !squeezed.empty() && squeezed.back() == ' ')
            continue;
          squeezed.push_back(tc);
        }
        if (squeezed.find("#pragma omp") != std::string::npos ||
            squeezed.find("# pragma omp") != std::string::npos) {
          out.omp_pragma_lines.push_back(start_line);
        }
        continue;  // the '\n' (or EOF) is handled by the main loop
      }
      at_line_start = false;
    }
    if (c == '\n') {
      emit('\n');
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::string text;
      while (i < n && src[i] != '\n') {
        text.push_back(src[i]);
        blank(src[i]);
        ++i;
      }
      ParseAnnotations(text, line, &out.notes);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      int start_line = line;
      std::string text;
      blank(src[i]);
      blank(src[i + 1]);
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          emit('\n');
          ++line;
        } else {
          text.push_back(src[i]);
          blank(src[i]);
        }
        ++i;
      }
      if (i < n) {
        blank(src[i]);
        blank(src[i + 1]);
        i += 2;
      }
      ParseAnnotations(text, start_line, &out.notes);
      continue;
    }
    if (c == '"') {
      // Raw string? (only when preceded by R just emitted)
      bool raw = !out.code.empty() && out.code.back() == 'R' &&
                 (out.code.size() < 2 || !IsIdentChar(out.code[out.code.size() - 2]));
      if (raw) {
        blank(src[i]);
        ++i;
        std::string delim;
        while (i < n && src[i] != '(') {
          delim.push_back(src[i]);
          blank(src[i]);
          ++i;
        }
        std::string closer = ")" + delim + "\"";
        while (i < n && src.compare(i, closer.size(), closer) != 0) {
          if (src[i] == '\n') {
            emit('\n');
            ++line;
          } else {
            blank(src[i]);
          }
          ++i;
        }
        for (size_t k = 0; k < closer.size() && i < n; ++k, ++i) blank(src[i]);
        continue;
      }
      blank(src[i]);
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          blank(src[i]);
          ++i;
        }
        if (src[i] == '\n') {
          emit('\n');
          ++line;
        } else {
          blank(src[i]);
        }
        ++i;
      }
      if (i < n) {
        blank(src[i]);
        ++i;
      }
      continue;
    }
    if (c == '\'') {
      blank(src[i]);
      ++i;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          blank(src[i]);
          ++i;
        }
        blank(src[i]);
        ++i;
      }
      if (i < n) {
        blank(src[i]);
        ++i;
      }
      continue;
    }
    emit(c);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer over cleaned code.
// ---------------------------------------------------------------------------

std::vector<Token> Tokenize(const std::string& code) {
  std::vector<Token> toks;
  toks.reserve(code.size() / 4);
  int line = 1;
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentChar(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && IsIdentChar(code[j])) ++j;
      toks.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(code[j]) || code[j] == '.')) ++j;
      toks.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      toks.push_back({"::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && code[i + 1] == '>') {
      toks.push_back({"->", line});
      i += 2;
      continue;
    }
    toks.push_back({std::string(1, c), line});
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Rule engine.
// ---------------------------------------------------------------------------

namespace {

const std::vector<std::string> kRules = {
    "no-rand",           "no-random-device",   "no-wall-clock",
    "no-raw-thread",     "no-nondet-reduce",   "no-float-accum",
    "no-unordered-iter", "rng-fork-required",  "no-rng-ref-capture",
    "mutable-static",    "bad-allow",          "no-abort",
    "parallel-shared-write",
    // Cross-TU rules (phase 2, need the phase-1 index).
    "unordered-member-iter", "guard-discipline", "rng-ref-escape",
};

const std::vector<RuleDoc> kRuleDocs = {
    {"no-rand", "C PRNG (rand/srand/rand_r/drand48); draw from a seeded "
                "common/rng.h Rng instead"},
    {"no-random-device", "std::random_device breaks replayability; seed an "
                         "Rng explicitly"},
    {"no-wall-clock", "host-clock read (time/clock/gettimeofday/"
                      "system_clock/argless now()); exempt under "
                      "src/sparksim/"},
    {"no-raw-thread", "raw std::thread/jthread/async/pthread/OpenMP outside "
                      "common/thread_pool.cc"},
    {"no-nondet-reduce", "std::reduce/transform_reduce/std::execution "
                         "reassociate floating-point accumulation"},
    {"no-float-accum", "float arithmetic in src/linalg or src/model "
                       "accumulation paths; use double"},
    {"no-unordered-iter", "range-for over an unordered container feeding an "
                          "output container or accumulator"},
    {"rng-fork-required", "Rng declared outside a ParallelFor body used "
                          "inside it; fork per task with ForkRngs"},
    {"no-rng-ref-capture", "ParallelFor lambda capture list names an Rng by "
                           "reference"},
    {"mutable-static", "mutable namespace-scope/function-static/thread_local "
                       "state without a guard annotation"},
    {"bad-allow", "lint:allow with no reason string or an unknown rule id "
                  "(never suppressible)"},
    {"no-abort", "abort/exit/_Exit/quick_exit/assert(false) in library code "
                 "(src/); return a Status instead"},
    {"parallel-shared-write", "ParallelFor body writes non-RNG state it does "
                              "not own (not body-declared, not a parameter, "
                              "not an index-owned slot)"},
    {"unordered-member-iter", "cross-TU: iteration over an unordered member "
                              "declared in any indexed header"},
    {"guard-discipline", "cross-TU: access to a lint:guarded-by(m) member "
                         "where m is not visibly held"},
    {"rng-ref-escape", "cross-TU: un-forked Rng reference flowing into an "
                       "Rng&-taking callee in a ParallelFor body, or "
                       "captured by reference in a stored lambda"},
};

bool PathContains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

class Linter {
 public:
  Linter(std::string path, const std::string& content,
         const SymbolIndex* index)
      : path_(std::move(path)),
        cleaned_(CleanSource(content)),
        index_(index) {
    toks_ = Tokenize(cleaned_.code);
  }

  std::vector<Finding> Run() {
    CheckAnnotations();
    CheckBannedCalls();
    TrackDeclarations();
    CheckUnorderedIteration();
    CheckParallelForBodies();
    CheckMutableState();
    if (index_ != nullptr) {
      CheckUnorderedMemberIteration();
      CheckRngRefEscape();
      std::vector<Finding> guard =
          CheckGuardDiscipline(path_, toks_, *index_);
      findings_.insert(findings_.end(), guard.begin(), guard.end());
    }
    ApplySuppressions();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return findings_;
  }

 private:
  void Add(const std::string& rule, int line, std::string message,
           std::string hint) {
    findings_.push_back(
        {path_, line, rule, std::move(message), std::move(hint)});
  }

  const std::string& Tok(size_t i) const {
    static const std::string kEmpty;
    return i < toks_.size() ? toks_[i].text : kEmpty;
  }

  bool Prev(size_t i, const char* s) const {
    return i > 0 && toks_[i - 1].text == s;
  }

  // --- annotations: every allow needs a reason and a known rule id -------
  void CheckAnnotations() {
    for (const auto& [line, note] : cleaned_.notes) {
      for (size_t k = 0; k < note.allowed.size(); ++k) {
        const std::string& id = note.allowed[k];
        if (std::find(kRules.begin(), kRules.end(), id) == kRules.end()) {
          Add("bad-allow", line, "lint:allow names unknown rule '" + id + "'",
              "valid ids: run sparktune_lint --list-rules");
        } else if (note.allow_reasons[k].empty()) {
          Add("bad-allow", line,
              "lint:allow(" + id + ") has no reason string",
              "write lint:allow(" + id + ") <why this exception is sound>");
        }
      }
    }
  }

  // --- flat token scans ---------------------------------------------------
  void CheckBannedCalls() {
    const bool in_sparksim = PathContains(path_, "sparksim/");
    const bool is_pool = PathEndsWith(path_, "common/thread_pool.cc");
    // Library code (src/) must fail soft: a dying tuner task may not take
    // the whole multi-tenant service with it. Benchmarks, tests, and CLIs
    // own their process and are exempt.
    const bool in_library = PathContains(path_, "src/");
    for (int line : cleaned_.omp_pragma_lines) {
      if (!is_pool) {
        Add("no-raw-thread", line, "OpenMP pragma",
            "use common/thread_pool.h ParallelFor");
      }
    }
    for (size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      const int line = toks_[i].line;
      if (in_library) CheckAbort(i, t, line);
      if ((t == "rand" || t == "srand" || t == "rand_r" || t == "drand48") &&
          Tok(i + 1) == "(" && !Prev(i, ".") && !Prev(i, "->")) {
        Add("no-rand", line, "C PRNG '" + t + "' is nondeterministic state",
            "draw from a seeded common/rng.h Rng instead");
      } else if (t == "random_device") {
        Add("no-random-device", line,
            "std::random_device breaks replayability",
            "seed a common/rng.h Rng explicitly");
      } else if (t == "reduce" || t == "transform_reduce" ||
                 t == "execution") {
        if (Prev(i, "::") && i >= 2 && toks_[i - 2].text == "std") {
          Add("no-nondet-reduce", line,
              "std::" + t + " reassociates floating-point accumulation",
              "accumulate serially in index order (or tree-reduce with a "
              "fixed shape)");
        }
      } else if (t == "float" && (PathContains(path_, "linalg/") ||
                                  PathContains(path_, "model/"))) {
        Add("no-float-accum", line,
            "float arithmetic in a surrogate/linalg accumulation path",
            "use double; float rounding makes results platform-dependent");
      } else if (!in_sparksim && CheckWallClock(i, t, line)) {
      } else if (!is_pool) {
        CheckRawThread(i, t, line);
      }
    }
  }

  bool CheckWallClock(size_t i, const std::string& t, int line) {
    if (t == "system_clock" || t == "gettimeofday" || t == "clock_gettime" ||
        t == "timespec_get") {
      Add("no-wall-clock", line, "wall-clock source '" + t + "'",
          "simulated time lives in sparksim; results must not read the "
          "host clock");
      return true;
    }
    if (t == "time" && Tok(i + 1) == "(" && !Prev(i, ".") && !Prev(i, "->")) {
      // `std::time(` and bare `time(` are the C wall clock; `Foo::time(`
      // for Foo != std is somebody's accessor.
      if (Prev(i, "::") && !(i >= 2 && toks_[i - 2].text == "std")) {
        return false;
      }
      Add("no-wall-clock", line, "time() reads the host clock",
          "thread simulated time through explicitly");
      return true;
    }
    if ((t == "now" || t == "clock") && Tok(i + 1) == "(" &&
        Tok(i + 2) == ")") {
      Add("no-wall-clock", line, "argless " + t + "() reads the host clock",
          "pass time in from the simulator (or lint:allow for pure "
          "benchmark timing)");
      return true;
    }
    return false;
  }

  void CheckAbort(size_t i, const std::string& t, int line) {
    if ((t == "abort" || t == "exit" || t == "_Exit" || t == "quick_exit") &&
        Tok(i + 1) == "(" && !Prev(i, ".") && !Prev(i, "->")) {
      // `std::abort(` and bare `abort(` terminate the process; `Foo::exit(`
      // for Foo != std is somebody's accessor.
      if (Prev(i, "::") && !(i >= 2 && toks_[i - 2].text == "std")) return;
      Add("no-abort", line,
          "process-terminating call '" + t + "' in library code",
          "return a Status error (common/status.h) so the service can "
          "degrade instead of dying");
    } else if (t == "assert" && Tok(i + 1) == "(" &&
               (Tok(i + 2) == "false" || Tok(i + 2) == "0") &&
               Tok(i + 3) == ")") {
      Add("no-abort", line,
          "assert(false) aborts the process in debug builds",
          "unreachable states should surface as Status errors, not aborts");
    }
  }

  void CheckRawThread(size_t i, const std::string& t, int line) {
    if ((t == "thread" || t == "jthread" || t == "async") && Prev(i, "::") &&
        i >= 2 && toks_[i - 2].text == "std" && Tok(i + 1) != "::") {
      Add("no-raw-thread", line, "raw std::" + t + " outside the pool",
          "all parallelism goes through common/thread_pool.h ParallelFor");
    } else if (t == "pthread_create") {
      Add("no-raw-thread", line, "pthread_create outside the pool",
          "all parallelism goes through common/thread_pool.h ParallelFor");
    }
  }

  // --- declaration tracking (Rng + unordered containers) ------------------
  void TrackDeclarations() {
    for (size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "Rng") {
        // std::vector<Rng> name — an indexed per-task family.
        if (Prev(i, "<") && Tok(i + 1) == ">") {
          size_t j = i + 2;
          while (Tok(j) == "&" || Tok(j) == "*" || Tok(j) == "const") ++j;
          if (!Tok(j).empty() && IsIdentChar(Tok(j)[0]) &&
              Tok(j + 1) != "(") {
            rng_arrays_.insert(Tok(j));
          }
          continue;
        }
        size_t j = i + 1;
        while (Tok(j) == "*" || Tok(j) == "&" || Tok(j) == "const") ++j;
        if (!Tok(j).empty() && IsIdentChar(Tok(j)[0]) && Tok(j + 1) != "(") {
          rng_scalars_.insert(Tok(j));
        }
      } else if (t == "unordered_map" || t == "unordered_set" ||
                 t == "unordered_multimap" || t == "unordered_multiset") {
        size_t j = i + 1;
        if (Tok(j) != "<") continue;
        int depth = 0;
        for (; j < toks_.size(); ++j) {
          if (toks_[j].text == "<") ++depth;
          if (toks_[j].text == ">" && --depth == 0) break;
        }
        ++j;
        while (Tok(j) == "&" || Tok(j) == "*" || Tok(j) == "const") ++j;
        if (!Tok(j).empty() && IsIdentChar(Tok(j)[0]) && Tok(j + 1) != "(") {
          unordered_vars_.insert(Tok(j));
        }
      }
    }
  }

  size_t MatchForward(size_t open, const char* open_s, const char* close_s) {
    // Index of the token closing the bracket at `open`; toks_.size() if
    // unbalanced.
    int depth = 0;
    for (size_t i = open; i < toks_.size(); ++i) {
      if (toks_[i].text == open_s) ++depth;
      if (toks_[i].text == close_s && --depth == 0) return i;
    }
    return toks_.size();
  }

  // Index of the token opening the bracket that closes at `close`,
  // collecting every identifier strictly inside into `ids`. Returns
  // `close` when unbalanced.
  size_t MatchBackward(size_t close, const char* open_s, const char* close_s,
                       std::set<std::string>* ids) {
    int depth = 0;
    for (size_t k = close + 1; k-- > 0;) {
      const std::string& t = toks_[k].text;
      if (t == close_s) {
        ++depth;
      } else if (t == open_s) {
        if (--depth == 0) return k;
      } else if (depth > 0 && !t.empty() && IsIdentChar(t[0]) &&
                 !std::isdigit(static_cast<unsigned char>(t[0]))) {
        ids->insert(t);
      }
    }
    return close;
  }

  // The lvalue chain ending at token `e`, walked back to its leftmost
  // (base) identifier. `inner` collects the identifiers inside any
  // subscripts/call arguments along the chain, so index-owned writes
  // (out[task_id]) can be recognized.
  struct Lvalue {
    std::string base;
    std::set<std::string> inner;
  };
  Lvalue WalkLvalue(size_t e) {
    Lvalue lv;
    size_t k = e;
    while (k < toks_.size()) {
      const std::string& t = toks_[k].text;
      if (t == "]" || t == ")") {
        size_t o = t == "]" ? MatchBackward(k, "[", "]", &lv.inner)
                            : MatchBackward(k, "(", ")", &lv.inner);
        if (o == k || o == 0) return lv;
        k = o - 1;
        continue;
      }
      if (!t.empty() && IsIdentChar(t[0]) &&
          !std::isdigit(static_cast<unsigned char>(t[0]))) {
        lv.base = t;
        if (k >= 2 && (toks_[k - 1].text == "." || toks_[k - 1].text == "->" ||
                       toks_[k - 1].text == "::")) {
          k -= 2;
          continue;
        }
        return lv;
      }
      return lv;
    }
    return lv;
  }

  // --- range-for over unordered containers --------------------------------
  void CheckUnorderedIteration() {
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "insert", "emplace",
        "push_front", "append",      "push",
    };
    for (size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (toks_[i].text != "for" || Tok(i + 1) != "(") continue;
      size_t close = MatchForward(i + 1, "(", ")");
      if (close >= toks_.size()) continue;
      // Find the range-for ':' at depth 1 ('::' is a distinct token).
      size_t colon = 0;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (toks_[j].text == "(") ++depth;
        if (toks_[j].text == ")") --depth;
        if (toks_[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      bool unordered_range = false;
      for (size_t j = colon + 1; j < close; ++j) {
        const std::string& rt = toks_[j].text;
        if (unordered_vars_.count(rt) || rt.rfind("unordered_", 0) == 0) {
          unordered_range = true;
          break;
        }
      }
      if (!unordered_range) continue;
      // Loop body: `{ ... }` or a single statement.
      size_t body_begin = close + 1;
      size_t body_end;
      if (Tok(body_begin) == "{") {
        body_end = MatchForward(body_begin, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < toks_.size() && toks_[body_end].text != ";")
          ++body_end;
      }
      for (size_t j = body_begin; j < body_end && j < toks_.size(); ++j) {
        const std::string& bt = toks_[j].text;
        bool compound_assign =
            (bt == "+" || bt == "-") && Tok(j + 1) == "=" &&
            toks_[j].line == (j + 1 < toks_.size() ? toks_[j + 1].line : -1);
        if (kMutators.count(bt) || compound_assign) {
          Add("no-unordered-iter", toks_[i].line,
              "iteration over an unordered container feeds an accumulator "
              "or output container",
              "iterate a sorted copy of the keys (or collect then sort) so "
              "the result does not depend on hash order");
          break;
        }
      }
    }
  }

  // --- cross-TU: iteration over indexed unordered members ------------------
  // The per-file pass cannot see that `config_index_` in history.cc is an
  // unordered_map declared in history.h; the phase-1 index can. Fires on
  // range-fors and explicit begin()/cbegin() walks. Any iteration is
  // flagged (not just ones feeding outputs): hash order must not be load-
  // bearing, and provably order-independent uses take a reasoned allow —
  // at the use site, or on the declaration to bless the member wholesale.
  void CheckUnorderedMemberIteration() {
    auto decl_allowed = [](const MemberRecord* rec) {
      return std::find(rec->decl_allows.begin(), rec->decl_allows.end(),
                       "unordered-member-iter") != rec->decl_allows.end();
    };
    auto already_flagged = [&](int line) {
      for (const Finding& f : findings_) {
        if (f.line == line && (f.rule == "no-unordered-iter" ||
                               f.rule == "unordered-member-iter")) {
          return true;
        }
      }
      return false;
    };
    for (size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (toks_[i].text != "for" || Tok(i + 1) != "(") continue;
      size_t close = MatchForward(i + 1, "(", ")");
      if (close >= toks_.size()) continue;
      size_t colon = 0;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (toks_[j].text == "(") ++depth;
        if (toks_[j].text == ")") --depth;
        if (toks_[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      for (size_t j = colon + 1; j < close; ++j) {
        const std::string& rt = toks_[j].text;
        if (rt.empty() || !IsIdentChar(rt[0])) continue;
        const MemberRecord* rec = index_->FindUnorderedMember(rt);
        if (rec == nullptr || decl_allowed(rec)) continue;
        if (already_flagged(toks_[i].line)) break;
        Add("unordered-member-iter", toks_[i].line,
            "range-for over unordered member '" + rt + "' (declared at " +
                rec->file + ":" + std::to_string(rec->line) +
                ") — iteration order is hash-dependent",
            "iterate a sorted copy of the keys, or justify with "
            "lint:allow(unordered-member-iter) <reason> (on this line for "
            "one site, on the declaration to bless every use)");
        break;
      }
    }
    // Explicit iterator walks: member.begin() / member.cbegin().
    for (size_t i = 0; i + 3 < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t.empty() || !IsIdentChar(t[0])) continue;
      if (!(Tok(i + 1) == "." || Tok(i + 1) == "->")) continue;
      if (!(Tok(i + 2) == "begin" || Tok(i + 2) == "cbegin")) continue;
      if (Tok(i + 3) != "(") continue;
      const MemberRecord* rec = index_->FindUnorderedMember(t);
      if (rec == nullptr || decl_allowed(rec)) continue;
      if (rec->file == path_ && rec->line == toks_[i].line) continue;
      if (already_flagged(toks_[i].line)) continue;
      Add("unordered-member-iter", toks_[i].line,
          "iterator walk over unordered member '" + t + "' (declared at " +
              rec->file + ":" + std::to_string(rec->line) +
              ") — iteration order is hash-dependent",
          "iterate a sorted copy of the keys, or justify with "
          "lint:allow(unordered-member-iter) <reason>");
    }
  }

  // --- ParallelFor lambda bodies ------------------------------------------
  struct PfCall {
    size_t cap_begin = 0;   // '[' of the first lambda in the call
    size_t body_begin = 0;  // '{' of that lambda's body
    size_t body_end = 0;    // matching '}'
    std::set<std::string> rng_locals;  // Rng names declared in the body
  };

  void CheckParallelForBodies() {
    for (size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].text != "ParallelFor" || Tok(i + 1) != "(") continue;
      size_t call_end = MatchForward(i + 1, "(", ")");
      if (call_end >= toks_.size()) continue;
      // First lambda inside the call.
      size_t lb = i + 2;
      while (lb < call_end && toks_[lb].text != "[") ++lb;
      if (lb >= call_end) continue;
      size_t cap_end = MatchForward(lb, "[", "]");
      if (cap_end >= call_end) continue;
      pf_lambda_caps_.insert(lb);
      // Capture list: an explicit &rng is always wrong.
      for (size_t j = lb + 1; j < cap_end; ++j) {
        if (toks_[j].text == "&" && rng_scalars_.count(Tok(j + 1))) {
          Add("no-rng-ref-capture", toks_[j].line,
              "ParallelFor lambda captures Rng '" + Tok(j + 1) +
                  "' by reference",
              "fork per-task streams before the loop: ForkRngs(rng, n), "
              "then index by task id");
        }
      }
      size_t body_begin = cap_end + 1;
      if (Tok(body_begin) == "(") body_begin = MatchForward(body_begin, "(", ")") + 1;
      while (body_begin < call_end && Tok(body_begin) != "{") ++body_begin;
      if (body_begin >= call_end) continue;
      size_t body_end = MatchForward(body_begin, "{", "}");
      // Rng names declared inside the body are per-task locals.
      std::set<std::string> locals;
      for (size_t j = body_begin; j < body_end; ++j) {
        if (toks_[j].text != "Rng") continue;
        size_t k = j + 1;
        while (Tok(k) == "*" || Tok(k) == "&" || Tok(k) == "const") ++k;
        if (!Tok(k).empty() && IsIdentChar(Tok(k)[0])) locals.insert(Tok(k));
      }
      for (size_t j = body_begin; j < body_end; ++j) {
        const std::string& t = toks_[j].text;
        if (!rng_scalars_.count(t) || locals.count(t)) continue;
        if (Prev(j, ".") || Prev(j, "->") || Prev(j, "::")) continue;
        Add("rng-fork-required", toks_[j].line,
            "Rng '" + t + "' declared outside this ParallelFor body is "
            "used inside it",
            "draws would interleave by schedule; ForkRngs(rng, n) before "
            "the loop and use the task's own stream");
      }
      CheckSharedWrites(cap_end, body_begin, body_end);
      pf_calls_.push_back({lb, body_begin, body_end, std::move(locals)});
    }
  }

  // --- cross-TU: un-forked RNG references escaping -------------------------
  // Two escape routes the per-file rules cannot pin down:
  //   (a) a ParallelFor body hands an outer-scope Rng to a callee whose
  //       *indexed* signature (possibly from another file's header) takes
  //       Rng& / Rng* — the callee will draw from the shared stream;
  //   (b) a lambda stored outside the sanctioned ParallelFor call site
  //       captures an Rng by reference ([&rng]), so the reference outlives
  //       the statement and can run on any schedule later.
  void CheckRngRefEscape() {
    for (const PfCall& pf : pf_calls_) {
      for (size_t j = pf.body_begin; j < pf.body_end; ++j) {
        const std::string& t = toks_[j].text;
        if (t.empty() || !IsIdentChar(t[0]) || Tok(j + 1) != "(") continue;
        const FunctionRecord* fr = index_->FindRngRefFunction(t);
        if (fr == nullptr) continue;
        size_t close = MatchForward(j + 1, "(", ")");
        for (size_t k = j + 2; k < close && k < toks_.size(); ++k) {
          const std::string& a = toks_[k].text;
          if (!rng_scalars_.count(a) || pf.rng_locals.count(a)) continue;
          if (Prev(k, ".") || Prev(k, "->") || Prev(k, "::")) continue;
          Add("rng-ref-escape", toks_[j].line,
              "un-forked Rng '" + a + "' passed into '" + t +
                  "' (declared at " + fr->file + ":" +
                  std::to_string(fr->line) +
                  ", takes Rng by reference) inside a ParallelFor body",
              "fork per-task streams before the loop (ForkRngs) and pass "
              "the task's own stream");
          break;
        }
      }
    }
    // Stored-lambda captures: a '[' opening a capture list (not a
    // subscript — subscripts follow an identifier, ']' or ')') that is
    // not the first lambda of a ParallelFor call.
    for (size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].text != "[") continue;
      if (pf_lambda_caps_.count(i)) continue;  // no-rng-ref-capture owns it
      if (i > 0) {
        const std::string& p = toks_[i - 1].text;
        if (p == "]" || p == ")" ||
            (!p.empty() && IsIdentChar(p[0]) &&
             !std::isdigit(static_cast<unsigned char>(p[0])) &&
             p != "return"))
          continue;  // subscript, not a capture list
        if (p == "[") continue;  // attribute [[...]]
      }
      size_t cap_end = MatchForward(i, "[", "]");
      if (cap_end >= toks_.size() || Tok(cap_end + 1) == "[") continue;
      for (size_t j = i + 1; j < cap_end; ++j) {
        if (toks_[j].text == "&" && rng_scalars_.count(Tok(j + 1))) {
          Add("rng-ref-escape", toks_[j].line,
              "Rng '" + Tok(j + 1) + "' captured by reference in a stored "
              "lambda — the reference escapes this statement",
              "capture a forked stream by value, or pass the Rng "
              "explicitly at the (serial) call site");
        }
      }
    }
  }

  // --- non-RNG shared writes in ParallelFor bodies -------------------------
  // Flags writes (assignments, compound assignments, ++/--, container
  // mutator calls) whose target is neither owned by the body (declared
  // inside it or the lambda parameter) nor an index-owned slot (a
  // subscript/argument naming a body-owned index, like out[task_id]).
  // Rng targets are skipped — the rng rules own that failure mode.
  void CheckSharedWrites(size_t cap_end, size_t body_begin, size_t body_end) {
    // Lambda parameters: identifiers directly before ',' or ')' in the
    // parameter list.
    std::set<std::string> owned;
    if (Tok(cap_end + 1) == "(") {
      size_t parm_end = MatchForward(cap_end + 1, "(", ")");
      for (size_t j = cap_end + 2; j < parm_end && j < toks_.size(); ++j) {
        const std::string& t = toks_[j].text;
        if ((Tok(j + 1) == "," || j + 1 == parm_end) && !t.empty() &&
            IsIdentChar(t[0]) &&
            !std::isdigit(static_cast<unsigned char>(t[0]))) {
          owned.insert(t);
        }
      }
    }
    // Body-local declarations, token-level: an identifier preceded by a
    // type-ish token (identifier, '*', '&', '>'). Expression keywords
    // (`return x`) are not types. Over-collecting exempts too much rather
    // than false-positives, the right bias for a syntactic pass.
    static const std::set<std::string> kExprKeywords = {
        "return",   "throw",    "else",     "case",     "goto",
        "new",      "delete",   "sizeof",   "operator", "co_return",
        "co_yield", "co_await", "if",       "while",    "for",
        "do",       "switch",
    };
    for (size_t j = body_begin + 1; j < body_end && j < toks_.size(); ++j) {
      const std::string& t = toks_[j].text;
      if (t.empty() || !IsIdentChar(t[0]) ||
          std::isdigit(static_cast<unsigned char>(t[0]))) {
        continue;
      }
      const std::string& p = Tok(j - 1);
      bool after_type =
          p == "*" || p == "&" || p == ">" ||
          (!p.empty() && IsIdentChar(p[0]) &&
           !std::isdigit(static_cast<unsigned char>(p[0])) &&
           !kExprKeywords.count(p));
      // Later declarators of a multi-declarator statement
      // (`double a0 = x, a1 = y;`) follow a comma, not the type.
      bool later_declarator = p == "," && Tok(j + 1) == "=";
      if (after_type || later_declarator) owned.insert(t);
    }
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "insert",  "emplace", "push_front",
        "append",    "push",         "pop_back", "clear",  "erase",
        "resize",    "assign",
    };
    auto exempt = [&](const Lvalue& lv) {
      if (!lv.base.empty() &&
          (owned.count(lv.base) || rng_scalars_.count(lv.base) ||
           rng_arrays_.count(lv.base))) {
        return true;
      }
      for (const std::string& id : lv.inner) {
        if (owned.count(id)) return true;
      }
      return false;
    };
    auto flag = [&](const Lvalue& lv, int line) {
      std::string what = lv.base.empty() ? "shared state" : "'" + lv.base + "'";
      Add("parallel-shared-write", line,
          "write to " + what + " shared across ParallelFor tasks",
          "give each task its own slot (index by the task id), hoist the "
          "write out of the loop, or guard it and annotate "
          "lint:guarded-by(<mutex>)");
    };
    static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                    "%", "&", "|", "^"};
    static const std::set<std::string> kNotBeforeAssign = {
        "=", "!", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^"};
    for (size_t j = body_begin + 1; j < body_end && j < toks_.size(); ++j) {
      const std::string& t = toks_[j].text;
      size_t lhs_end = 0;
      if (t == "=" && Tok(j + 1) != "=" && !kNotBeforeAssign.count(Tok(j - 1))) {
        lhs_end = j - 1;  // plain assignment
      } else if (kCompound.count(t) && Tok(j + 1) == "=" &&
                 Tok(j + 2) != "=") {
        lhs_end = j - 1;  // compound assignment
      } else if ((t == "+" && Tok(j + 1) == "+") ||
                 (t == "-" && Tok(j + 1) == "-")) {
        const std::string& before = Tok(j - 1);
        if (!before.empty() && (IsIdentChar(before[0]) || before == "]" ||
                                before == ")")) {
          lhs_end = j - 1;  // postfix
        } else {
          // Prefix: extend forward over the target's member chain.
          size_t e = j + 2;
          while (Tok(e + 1) == "." || Tok(e + 1) == "->" ||
                 Tok(e + 1) == "::") {
            e += 2;
          }
          if (!Tok(e).empty() && IsIdentChar(Tok(e)[0])) lhs_end = e;
        }
      } else if (kMutators.count(t) && Tok(j + 1) == "(" &&
                 (Prev(j, ".") || Prev(j, "->")) && j >= 2) {
        lhs_end = j - 2;  // receiver of a container mutator call
      } else {
        continue;
      }
      if (lhs_end == 0 || lhs_end < body_begin) continue;
      Lvalue lv = WalkLvalue(lhs_end);
      if (lv.base.empty() && lv.inner.empty()) continue;
      if (exempt(lv)) continue;
      flag(lv, toks_[j].line);
    }
  }

  // --- mutable statics / namespace-scope globals --------------------------
  // A statement-granularity walk with a scope-kind stack. `kInit` marks
  // braced initializers so their contents don't end statements early.
  enum class Scope { kNamespace, kClass, kBlock, kInit };

  static bool HeadHas(const std::vector<const Token*>& head, const char* s) {
    for (const Token* t : head) {
      if (t->text == s) return true;
    }
    return false;
  }

  Scope ClassifyBrace(const std::vector<const Token*>& head) {
    if (HeadHas(head, "namespace")) return Scope::kNamespace;
    bool has_paren = HeadHas(head, ")");
    if (!has_paren && (HeadHas(head, "class") || HeadHas(head, "struct") ||
                       HeadHas(head, "union") || HeadHas(head, "enum"))) {
      return Scope::kClass;
    }
    if (has_paren) {
      // `= [..](..) {` is a lambda body (block); `X x = f() {`? not C++.
      // A ')' after the last '=' means the brace opens a callable body.
      size_t last_eq = std::string::npos, last_par = std::string::npos;
      for (size_t k = 0; k < head.size(); ++k) {
        if (head[k]->text == "=") last_eq = k;
        if (head[k]->text == ")") last_par = k;
      }
      if (last_eq == std::string::npos || last_par > last_eq)
        return Scope::kBlock;
      return Scope::kInit;
    }
    if (!head.empty()) {
      const std::string& last = head.back()->text;
      if (last == "=" || last == "(" || last == "," || last == "{" ||
          last == "return") {
        return Scope::kInit;
      }
    }
    return Scope::kBlock;
  }

  void CheckMutableState() {
    static const std::set<std::string> kSkipLeads = {
        "using",    "typedef", "template", "class",  "struct",
        "enum",     "union",   "namespace", "friend", "extern",
        "static_assert", "public", "private", "protected", "if",
        "for",      "while",   "switch",   "return", "case",
        "do",       "else",    "goto",     "break",  "continue",
    };
    std::vector<Scope> stack;
    std::vector<const Token*> head;
    int paren = 0;
    auto at_namespace_scope = [&]() {
      return std::all_of(stack.begin(), stack.end(),
                         [](Scope s) { return s == Scope::kNamespace; });
    };
    auto in_init = [&]() {
      return !stack.empty() && stack.back() == Scope::kInit;
    };
    auto classify_statement = [&](const std::vector<const Token*>& st) {
      if (st.empty()) return;
      bool is_static = false, is_tls = false;
      size_t first_paren = std::string::npos, first_eq = std::string::npos;
      for (size_t k = 0; k < st.size(); ++k) {
        const std::string& t = st[k]->text;
        if (t == "static") is_static = true;
        if (t == "thread_local") is_tls = true;
        if (t == "(" && first_paren == std::string::npos) first_paren = k;
        if (t == "=" && first_eq == std::string::npos) first_eq = k;
      }
      // const-ness: only tokens before the initializer count.
      size_t limit = std::min(first_eq, st.size());
      for (size_t k = 0; k < limit; ++k) {
        const std::string& t = st[k]->text;
        if (t == "const" || t == "constexpr" || t == "constinit") return;
      }
      if (kSkipLeads.count(st.front()->text)) return;
      bool ns_scope = at_namespace_scope();
      bool class_scope = !stack.empty() && stack.back() == Scope::kClass;
      if (class_scope) return;  // member decls; out-of-line defs are caught
      if (!is_static && !is_tls && !ns_scope) return;  // plain local
      // Function declaration/definition: a '(' with no earlier '='.
      if (first_paren != std::string::npos &&
          (first_eq == std::string::npos || first_paren < first_eq)) {
        return;
      }
      // A lone identifier ("break"-ish or macro) is not a declaration.
      size_t idents = 0;
      for (size_t k = 0; k < limit; ++k) {
        if (IsIdentChar(st[k]->text[0]) &&
            !std::isdigit(static_cast<unsigned char>(st[k]->text[0]))) {
          ++idents;
        }
      }
      if (idents < 2) return;
      const char* what = is_tls ? "thread_local state"
                        : is_static ? "mutable static state"
                                    : "mutable namespace-scope state";
      Add("mutable-static", st.front()->line,
          std::string(what) + " without a guard annotation",
          "make it const, guard it and annotate lint:guarded-by(<mutex>), "
          "or justify with lint:allow(mutable-static) <reason>");
    };
    for (size_t i = 0; i < toks_.size(); ++i) {
      const std::string& t = toks_[i].text;
      if (t == "(") ++paren;
      if (t == ")") paren = std::max(0, paren - 1);
      if (t == "{" && paren == 0) {
        Scope s = ClassifyBrace(head);
        stack.push_back(s);
        if (s != Scope::kInit) head.clear();
        continue;
      }
      if (t == "}" && paren == 0) {
        if (!stack.empty()) {
          bool was_init = stack.back() == Scope::kInit;
          stack.pop_back();
          if (!was_init) head.clear();
        }
        continue;
      }
      if (t == ";" && paren == 0) {
        if (!in_init()) {
          classify_statement(head);
          head.clear();
        }
        continue;
      }
      if (!in_init()) head.push_back(&toks_[i]);
    }
  }

  // --- suppressions ---------------------------------------------------------
  void ApplySuppressions() {
    std::vector<Finding> kept;
    for (Finding& f : findings_) {
      if (f.rule == "bad-allow") {
        kept.push_back(std::move(f));
        continue;
      }
      bool suppressed = false;
      for (int line : {f.line, f.line - 1}) {
        auto it = cleaned_.notes.find(line);
        if (it == cleaned_.notes.end()) continue;
        const Annotation& a = it->second;
        if ((f.rule == "mutable-static" || f.rule == "parallel-shared-write") &&
            a.guarded_by) {
          suppressed = true;
        }
        for (size_t k = 0; k < a.allowed.size(); ++k) {
          if (a.allowed[k] == f.rule && !a.allow_reasons[k].empty()) {
            suppressed = true;
          }
        }
      }
      if (!suppressed) kept.push_back(std::move(f));
    }
    findings_ = std::move(kept);
  }

  std::string path_;
  CleanedSource cleaned_;
  const SymbolIndex* index_;
  std::vector<Token> toks_;
  std::set<std::string> rng_scalars_;
  std::set<std::string> rng_arrays_;
  std::set<std::string> unordered_vars_;
  std::vector<PfCall> pf_calls_;
  std::set<size_t> pf_lambda_caps_;  // '[' positions owned by ParallelFor
  std::vector<Finding> findings_;
};

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h" || ext == ".hpp";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& RuleIds() { return kRules; }

const std::vector<RuleDoc>& RuleDocs() { return kRuleDocs; }

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& content) {
  return Linter(path, content, nullptr).Run();
}

std::vector<Finding> LintFileWithIndex(const std::string& path,
                                       const std::string& content,
                                       const SymbolIndex* index) {
  return Linter(path, content, index).Run();
}

std::vector<Finding> LintFileOnDisk(const std::string& path) {
  return LintFileOnDiskWithIndex(path, nullptr);
}

std::vector<Finding> LintFileOnDiskWithIndex(const std::string& path,
                                             const SymbolIndex* index) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io-error", "cannot read file", ""}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return LintFileWithIndex(path, ss.str(), index);
}

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& d : dirs) {
    fs::path base = fs::path(root) / d;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    fs::recursive_directory_iterator it(base, ec), end;
    for (; it != end; it.increment(ec)) {
      const fs::path& p = it->path();
      const std::string name = p.filename().string();
      if (it->is_directory(ec)) {
        if (name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
            (!name.empty() && name[0] == '.')) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (LintableExtension(p)) files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& dirs) {
  std::vector<Finding> all;
  for (const std::string& f : CollectFiles(root, dirs)) {
    std::vector<Finding> fs_ = LintFileOnDisk(f);
    all.insert(all.end(), fs_.begin(), fs_.end());
  }
  return all;
}

std::vector<Finding> LintTreeIndexed(const std::string& root,
                                     const std::vector<std::string>& dirs) {
  return LintFilesIndexed(CollectFiles(root, dirs));
}

std::vector<Finding> LintFilesIndexed(const std::vector<std::string>& paths) {
  SymbolIndex index = BuildIndex(paths);
  std::vector<Finding> all;
  for (const std::string& f : paths) {
    std::vector<Finding> fs_ = LintFileOnDiskWithIndex(f, &index);
    all.insert(all.end(), fs_.begin(), fs_.end());
  }
  return all;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream ss;
  ss << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  if (!f.hint.empty()) ss << "\n    hint: " << f.hint;
  return ss.str();
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::ostringstream ss;
  ss << "{\n  \"tool\": \"sparktune_lint\",\n"
     << "  \"schema\": \"sparktune-lint-findings-v1\",\n"
     << "  \"count\": " << findings.size() << ",\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    ss << (i == 0 ? "\n" : ",\n")
       << "    {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": "
       << f.line << ", \"rule\": \"" << JsonEscape(f.rule)
       << "\", \"message\": \"" << JsonEscape(f.message)
       << "\", \"hint\": \"" << JsonEscape(f.hint) << "\"}";
  }
  ss << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return ss.str();
}

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  std::ostringstream ss;
  ss << "{\"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\", "
        "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
        "{\"name\": \"sparktune_lint\", \"informationUri\": "
        "\"DESIGN.md\", \"rules\": [";
  bool first = true;
  for (const RuleDoc& r : RuleDocs()) {
    ss << (first ? "" : ", ") << "{\"id\": \"" << JsonEscape(r.id)
       << "\", \"shortDescription\": {\"text\": \"" << JsonEscape(r.doc)
       << "\"}}";
    first = false;
  }
  // io-error is not a catalogue rule but can appear as a result.
  ss << ", {\"id\": \"io-error\", \"shortDescription\": {\"text\": "
        "\"input file could not be read\"}}";
  ss << "]}}, \"results\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::string text = f.message;
    if (!f.hint.empty()) text += " (hint: " + f.hint + ")";
    ss << (i == 0 ? "" : ", ") << "{\"ruleId\": \"" << JsonEscape(f.rule)
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << JsonEscape(text) << "\"}, \"locations\": [{\"physicalLocation\": "
       << "{\"artifactLocation\": {\"uri\": \"" << JsonEscape(f.file)
       << "\"}, \"region\": {\"startLine\": " << std::max(1, f.line)
       << "}}}]}";
  }
  ss << "]}]}\n";
  return ss.str();
}

int ExitCodeForFindings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    if (f.rule == "io-error") return 2;
  }
  return findings.empty() ? 0 : 1;
}

FixResult ApplyFixStubs(const std::vector<Finding>& findings,
                        const std::string& user) {
  FixResult result;
  // file -> line -> rule ids needing a stub there.
  std::map<std::string, std::map<int, std::set<std::string>>> plan;
  for (const Finding& f : findings) {
    if (f.rule == "bad-allow" || f.rule == "io-error" || f.line <= 0) {
      result.skipped.push_back(f);
      continue;
    }
    plan[f.file][f.line].insert(f.rule);
  }
  auto has_annotation = [](const std::string& line) {
    return line.find("lint:allow(") != std::string::npos ||
           line.find("lint:guarded-by(") != std::string::npos;
  };
  for (auto& [file, lines_plan] : plan) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      for (const auto& [line, rules] : lines_plan) {
        for (const std::string& r : rules) {
          result.skipped.push_back({file, line, r, "cannot read file", ""});
        }
      }
      continue;
    }
    std::vector<std::string> lines;
    std::string ln;
    while (std::getline(in, ln)) {
      if (!ln.empty() && ln.back() == '\r') ln.pop_back();
      lines.push_back(ln);
    }
    in.close();
    bool touched = false;
    // Bottom-up so earlier insertions don't shift later targets.
    for (auto it = lines_plan.rbegin(); it != lines_plan.rend(); ++it) {
      const int line = it->first;
      if (line > static_cast<int>(lines.size())) {
        for (const std::string& r : it->second) {
          result.skipped.push_back({file, line, r, "line out of range", ""});
        }
        continue;
      }
      std::string stubs;
      for (const std::string& r : it->second) {
        if (!stubs.empty()) stubs += " ";
        stubs += "lint:allow(" + r + ") TODO(" + user + "): justify";
        ++result.stubs;
      }
      const size_t idx = static_cast<size_t>(line - 1);
      if (has_annotation(lines[idx])) {
        // The finding's line already carries an annotation comment —
        // extend it rather than stacking a second comment line that
        // would push the existing one out of suppression range.
        lines[idx] += " " + stubs;
      } else if (idx > 0 && has_annotation(lines[idx - 1])) {
        lines[idx - 1] += " " + stubs;
      } else {
        std::string indent =
            lines[idx].substr(0, lines[idx].find_first_not_of(" \t"));
        if (indent.size() == lines[idx].size()) indent.clear();
        lines.insert(lines.begin() + idx, indent + "// " + stubs);
      }
      touched = true;
    }
    if (touched) {
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      for (const std::string& l : lines) out << l << "\n";
      result.files.push_back(file);
    }
  }
  std::sort(result.files.begin(), result.files.end());
  return result;
}

}  // namespace sparktune::lint
