#include "index.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

namespace sparktune::lint {

namespace {

bool IsIdent(const std::string& t) {
  if (t.empty()) return false;
  char c = t[0];
  return (std::isalpha(static_cast<unsigned char>(c)) || c == '_');
}

const std::set<std::string>& UnorderedTypes() {
  static const std::set<std::string> kTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kTypes;
}

const std::set<std::string>& MutexTypes() {
  static const std::set<std::string> kTypes = {
      "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
      "shared_mutex", "shared_timed_mutex"};
  return kTypes;
}

// Names that can precede '(' without being a callable's name.
const std::set<std::string>& NotFunctionNames() {
  static const std::set<std::string> kNames = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "operator", "alignof", "decltype", "noexcept", "assert"};
  return kNames;
}

}  // namespace

void SymbolIndex::AddFile(const std::string& path,
                          const std::string& content) {
  CleanedSource cs = CleanSource(content);
  std::vector<Token> toks = Tokenize(cs.code);
  // Same-file aliases are always visible, even without the BuildIndex
  // pre-pass (the one-file AddFile API used by unit tests).
  CollectAliasTokens(path, toks);
  ResolveAliases();
  IndexTokens(path, toks, cs.notes);
}

void SymbolIndex::AddFileOnDisk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;  // phase 2 reports the io-error when it lints this path
  std::ostringstream ss;
  ss << in.rdbuf();
  AddFile(path, ss.str());
}

void SymbolIndex::CollectAliases(const std::string& path,
                                 const std::string& content) {
  CleanedSource cs = CleanSource(content);
  CollectAliasTokens(path, Tokenize(cs.code));
}

void SymbolIndex::CollectAliasesOnDisk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::ostringstream ss;
  ss << in.rdbuf();
  CollectAliases(path, ss.str());
}

void SymbolIndex::CollectAliasTokens(const std::string& path,
                                     const std::vector<Token>& toks) {
  // Classify one RHS token run into an AliasRecord.
  auto classify = [](AliasRecord* rec, const std::vector<Token>& ts,
                     size_t from, size_t to) {
    for (size_t k = from; k < to; ++k) {
      const std::string& t = ts[k].text;
      if (UnorderedTypes().count(t)) {
        rec->unordered = true;
      } else if (MutexTypes().count(t)) {
        rec->is_mutex = true;
      } else if (IsIdent(t)) {
        rec->deps.push_back(t);  // maybe another alias; resolved later
      }
    }
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "using" && i + 2 < toks.size() && IsIdent(toks[i + 1].text) &&
        toks[i + 2].text == "=") {
      // `using NAME = <type>;` (skips using-directives/-declarations,
      // which have no '='). RHS runs to the statement's ';'.
      size_t end = i + 3;
      while (end < toks.size() && toks[end].text != ";") ++end;
      AliasRecord rec;
      rec.name = toks[i + 1].text;
      rec.file = path;
      rec.line = toks[i + 1].line;
      classify(&rec, toks, i + 3, end);
      aliases_.emplace(rec.name, std::move(rec));  // first definition wins
      i = end;
      continue;
    }
    if (t == "typedef") {
      // `typedef <type> NAME;` — the declarator is the last identifier
      // before ';' (function-pointer typedefs misparse harmlessly: their
      // RHS never names a container or mutex).
      size_t end = i + 1;
      while (end < toks.size() && toks[end].text != ";") ++end;
      size_t name_at = end;
      for (size_t k = end; k-- > i + 1;) {
        if (IsIdent(toks[k].text)) {
          name_at = k;
          break;
        }
      }
      if (name_at != end) {
        AliasRecord rec;
        rec.name = toks[name_at].text;
        rec.file = path;
        rec.line = toks[name_at].line;
        classify(&rec, toks, i + 1, name_at);
        aliases_.emplace(rec.name, std::move(rec));
      }
      i = end;
    }
  }
}

void SymbolIndex::ResolveAliases() {
  // Fixed point over alias-to-alias references; the alias graph is tiny,
  // and each pass only ever flips classification bits on, so this
  // terminates in at most alias_count() passes even with cycles.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, rec] : aliases_) {
      if (rec.unordered && rec.is_mutex) continue;
      for (const std::string& dep : rec.deps) {
        auto it = aliases_.find(dep);
        if (it == aliases_.end()) continue;
        if (it->second.unordered && !rec.unordered) {
          rec.unordered = true;
          changed = true;
        }
        if (it->second.is_mutex && !rec.is_mutex) {
          rec.is_mutex = true;
          changed = true;
        }
      }
    }
  }
}

bool SymbolIndex::IsUnorderedAlias(const std::string& name) const {
  auto it = aliases_.find(name);
  return it != aliases_.end() && it->second.unordered;
}

bool SymbolIndex::IsMutexAlias(const std::string& name) const {
  auto it = aliases_.find(name);
  return it != aliases_.end() && it->second.is_mutex;
}

const AliasRecord* SymbolIndex::FindAlias(const std::string& name) const {
  auto it = aliases_.find(name);
  return it == aliases_.end() ? nullptr : &it->second;
}

const MemberRecord* SymbolIndex::FindUnorderedMember(
    const std::string& name) const {
  auto it = members_.find(name);
  if (it == members_.end()) return nullptr;
  for (const MemberRecord& r : it->second) {
    if (r.unordered) return &r;
  }
  return nullptr;
}

const MemberRecord* SymbolIndex::FindGuardedMember(
    const std::string& name) const {
  auto it = members_.find(name);
  if (it == members_.end()) return nullptr;
  for (const MemberRecord& r : it->second) {
    if (!r.guarded_by.empty()) return &r;
  }
  return nullptr;
}

const FunctionRecord* SymbolIndex::FindRngRefFunction(
    const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) return nullptr;
  for (const FunctionRecord& r : it->second) {
    if (!r.rng_ref_params.empty()) return &r;
  }
  return nullptr;
}

bool SymbolIndex::IsMutexMember(const std::string& name) const {
  auto it = members_.find(name);
  if (it == members_.end()) return false;
  for (const MemberRecord& r : it->second) {
    if (r.is_mutex) return true;
  }
  return false;
}

size_t SymbolIndex::member_count() const {
  size_t n = 0;
  for (const auto& [name, recs] : members_) n += recs.size();
  return n;
}

size_t SymbolIndex::function_count() const {
  size_t n = 0;
  for (const auto& [name, recs] : functions_) n += recs.size();
  return n;
}

void SymbolIndex::IndexTokens(const std::string& path,
                              const std::vector<Token>& toks,
                              const std::map<int, Annotation>& notes) {
  // Scope walk mirroring the rule engine's brace classifier, extended
  // with class names so member declarations can be attributed.
  enum class Kind { kNamespace, kClass, kEnum, kBlock, kInit };
  struct Sc {
    Kind kind;
    std::string cls;
  };
  std::vector<Sc> stack;
  std::vector<const Token*> head;
  int paren = 0;

  auto head_has = [&](const char* s) {
    for (const Token* t : head) {
      if (t->text == s) return true;
    }
    return false;
  };
  auto in_init = [&]() {
    return !stack.empty() && stack.back().kind == Kind::kInit;
  };
  auto in_enum = [&]() {
    return !stack.empty() && stack.back().kind == Kind::kEnum;
  };

  // Extract an Rng-by-reference-accepting signature from a statement head
  // holding `name ( params... )`. Records only functions with at least one
  // Rng& / Rng* parameter, so the index stays small.
  auto parse_function_head = [&](const std::vector<const Token*>& st) {
    // First '(' at angle depth 0 (so std::function<void(size_t)> members
    // are not misread as methods) with no earlier '='.
    size_t open = st.size();
    int angle = 0;
    for (size_t k = 0; k < st.size(); ++k) {
      const std::string& t = st[k]->text;
      if (t == "<") ++angle;
      if (t == ">") angle = std::max(0, angle - 1);
      if (t == "=" && angle == 0) return;  // variable with initializer
      if (t == "(" && angle == 0) {
        open = k;
        break;
      }
    }
    if (open == st.size() || open == 0) return;
    const std::string& name = st[open - 1]->text;
    if (!IsIdent(name) || NotFunctionNames().count(name)) return;
    size_t close = st.size();
    int depth = 0;
    for (size_t k = open; k < st.size(); ++k) {
      if (st[k]->text == "(") ++depth;
      if (st[k]->text == ")" && --depth == 0) {
        close = k;
        break;
      }
    }
    if (close == st.size()) return;
    FunctionRecord rec;
    rec.name = name;
    rec.file = path;
    rec.line = st[open - 1]->line;
    for (size_t k = open + 1; k < close; ++k) {
      if (st[k]->text != "Rng") continue;
      size_t j = k + 1;
      while (j < close && st[j]->text == "const") ++j;
      if (j < close && (st[j]->text == "&" || st[j]->text == "*")) {
        ++j;
        while (j < close && (st[j]->text == "const" || st[j]->text == "&" ||
                             st[j]->text == "*")) {
          ++j;
        }
        rec.rng_ref_params.push_back(
            j < close && IsIdent(st[j]->text) ? st[j]->text : "");
      }
    }
    if (!rec.rng_ref_params.empty()) functions_[name].push_back(rec);
  };

  // Record a data-member declaration statement inside a class scope.
  auto parse_member_statement = [&](std::vector<const Token*> st,
                                    const std::string& cls) {
    // Strip access specifiers that ride along in the head stream.
    while (!st.empty() && (st.front()->text == "public" ||
                           st.front()->text == "private" ||
                           st.front()->text == "protected" ||
                           st.front()->text == ":")) {
      st.erase(st.begin());
    }
    if (st.empty()) return;
    static const std::set<std::string> kSkip = {
        "using", "typedef", "friend", "static_assert", "template",
        "operator", "enum"};
    if (kSkip.count(st.front()->text)) return;
    // Method declaration ('(' at angle depth 0 before any '=')? Index its
    // signature instead of treating it as a member.
    {
      int angle = 0;
      for (size_t k = 0; k < st.size(); ++k) {
        const std::string& t = st[k]->text;
        if (t == "<") ++angle;
        if (t == ">") angle = std::max(0, angle - 1);
        if (t == "=" && angle == 0) break;
        if (t == "(" && angle == 0) {
          parse_function_head(st);
          return;
        }
      }
    }
    // Declarator: the last identifier before the initializer (or the
    // statement end), skipping literal tokens.
    size_t limit = st.size();
    {
      int angle = 0;
      for (size_t k = 0; k < st.size(); ++k) {
        const std::string& t = st[k]->text;
        if (t == "<") ++angle;
        if (t == ">") angle = std::max(0, angle - 1);
        if (t == "=" && angle == 0) {
          limit = k;
          break;
        }
      }
    }
    const Token* name_tok = nullptr;
    for (size_t k = limit; k-- > 0;) {
      if (IsIdent(st[k]->text)) {
        name_tok = st[k];
        break;
      }
    }
    if (name_tok == nullptr) return;
    MemberRecord rec;
    rec.cls = cls;
    rec.name = name_tok->text;
    rec.file = path;
    rec.line = name_tok->line;
    for (size_t k = 0; k < limit; ++k) {
      const std::string& t = st[k]->text;
      if (st[k] == name_tok) break;
      if (UnorderedTypes().count(t) || IsUnorderedAlias(t)) {
        rec.unordered = true;
      }
      if (MutexTypes().count(t) || IsMutexAlias(t)) rec.is_mutex = true;
    }
    // Declaration-site annotations: the declarator's line, any line the
    // (possibly multi-line) statement spans, or the line directly above.
    int lo = st.front()->line - 1;
    int hi = name_tok->line;
    for (int line = lo; line <= hi; ++line) {
      auto it = notes.find(line);
      if (it == notes.end()) continue;
      const Annotation& a = it->second;
      if (rec.guarded_by.empty() && !a.guards.empty()) {
        rec.guarded_by = a.guards.front();
      }
      for (size_t k = 0; k < a.allowed.size(); ++k) {
        if (!a.allow_reasons[k].empty()) {
          rec.decl_allows.push_back(a.allowed[k]);
        }
      }
    }
    if (rec.unordered || rec.is_mutex || !rec.guarded_by.empty() ||
        !rec.decl_allows.empty()) {
      members_[rec.name].push_back(std::move(rec));
    }
  };

  auto classify_open = [&](const std::vector<const Token*>& st) -> Sc {
    if (head_has("namespace")) return {Kind::kNamespace, ""};
    if (head_has("enum")) return {Kind::kEnum, ""};
    bool has_paren = head_has(")");
    if (!has_paren && (head_has("class") || head_has("struct") ||
                       head_has("union"))) {
      // Name: the identifier after the last class/struct/union keyword
      // (skips `template <class T>` parameter lists).
      std::string name;
      for (size_t k = 0; k + 1 < st.size(); ++k) {
        const std::string& t = st[k]->text;
        if ((t == "class" || t == "struct" || t == "union") &&
            IsIdent(st[k + 1]->text)) {
          name = st[k + 1]->text;
        }
      }
      return {Kind::kClass, name};
    }
    if (has_paren) {
      // A ')' after the last '=' means the brace opens a callable body
      // (function, method, lambda); otherwise it is a braced initializer.
      size_t last_eq = std::string::npos, last_par = std::string::npos;
      for (size_t k = 0; k < st.size(); ++k) {
        if (st[k]->text == "=") last_eq = k;
        if (st[k]->text == ")") last_par = k;
      }
      if (last_eq == std::string::npos || last_par > last_eq) {
        return {Kind::kBlock, ""};
      }
      return {Kind::kInit, ""};
    }
    if (!st.empty()) {
      const std::string& last = st.back()->text;
      if (last == "=" || last == "(" || last == "," || last == "{" ||
          last == "return") {
        return {Kind::kInit, ""};
      }
    }
    return {Kind::kBlock, ""};
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(") ++paren;
    if (t == ")") paren = std::max(0, paren - 1);
    if (t == "{" && paren == 0) {
      Sc sc = classify_open(head);
      // A callable body opening at namespace or class scope: the head is
      // its signature — harvest Rng-reference parameters.
      if (sc.kind == Kind::kBlock && !in_enum() &&
          (stack.empty() || stack.back().kind == Kind::kNamespace ||
           stack.back().kind == Kind::kClass)) {
        parse_function_head(head);
      }
      stack.push_back(sc);
      if (sc.kind != Kind::kInit) head.clear();
      continue;
    }
    if (t == "}" && paren == 0) {
      if (!stack.empty()) {
        bool was_init = stack.back().kind == Kind::kInit;
        stack.pop_back();
        if (!was_init) head.clear();
      }
      continue;
    }
    if (t == ";" && paren == 0) {
      if (!in_init()) {
        if (!stack.empty() && stack.back().kind == Kind::kClass) {
          parse_member_statement(head, stack.back().cls);
        } else if (!in_enum() && head_has("(") &&
                   (stack.empty() ||
                    stack.back().kind == Kind::kNamespace)) {
          // Free-function prototype at namespace scope (the cross-TU
          // case: Rng&-taking helpers declared in headers).
          parse_function_head(head);
        }
        head.clear();
      }
      continue;
    }
    if (!in_init() && !in_enum()) head.push_back(&toks[i]);
  }
}

SymbolIndex BuildIndex(const std::vector<std::string>& paths) {
  SymbolIndex index;
  // Phase 0: aliases from every file, so a member in file A declared
  // through an alias defined in file B classifies correctly regardless of
  // list order.
  for (const std::string& p : paths) index.CollectAliasesOnDisk(p);
  index.ResolveAliases();
  for (const std::string& p : paths) index.AddFileOnDisk(p);
  return index;
}

}  // namespace sparktune::lint
