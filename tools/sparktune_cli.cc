// sparktune CLI: drive the library from the command line.
//
//   sparktune list-tasks
//   sparktune simulate   --task=TeraSort [--datasize=500] [--seed=1]
//   sparktune tune       --task=WordCount [--budget=20] [--beta=0.5]
//                        [--seed=1] [--cluster=hibench|production|smallsql]
//                        [--executions=N] [--csv]
//   sparktune compare    --task=TeraSort [--budget=30] [--beta=0.5]
//                        [--seeds=3]
//   sparktune importance --task=KMeans [--samples=80] [--seed=1]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/cherrypick.h"
#include "baselines/dac.h"
#include "baselines/locat.h"
#include "baselines/ours.h"
#include "baselines/random_search.h"
#include "baselines/rfhoc.h"
#include "baselines/tuneful.h"
#include "common/strings.h"
#include "common/table.h"
#include "fanova/fanova.h"
#include "sparksim/hibench.h"
#include "tuner/online_tuner.h"

using namespace sparktune;

namespace {

std::string StrFlag(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (StartsWith(argv[i], prefix)) return argv[i] + prefix.size();
  }
  return fallback;
}

double NumFlag(int argc, char** argv, const char* name, double fallback) {
  std::string v = StrFlag(argc, argv, name, "");
  return v.empty() ? fallback : std::atof(v.c_str());
}

bool HasFlag(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

ClusterSpec ClusterByName(const std::string& name) {
  if (name == "production") return ClusterSpec::ProductionGroup();
  if (name == "smallsql") return ClusterSpec::SmallSqlGroup();
  return ClusterSpec::HiBenchCluster();
}

int ListTasks() {
  TablePrinter table({"Task", "Family", "SQL", "Input(GB)", "Stages",
                      "DAG depth"});
  for (const auto& w : AllHiBenchTasks()) {
    table.AddRow({w.name, w.family, w.is_sql ? "yes" : "no",
                  StrFormat("%.0f", w.input_gb),
                  StrFormat("%zu", w.stages.size()),
                  StrFormat("%d", w.DagDepth())});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int Simulate(int argc, char** argv) {
  auto w = HiBenchTask(StrFlag(argc, argv, "task", "WordCount"));
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }
  ClusterSpec cluster = ClusterByName(StrFlag(argc, argv, "cluster", "hibench"));
  ConfigSpace space = BuildSparkSpace(cluster);
  double gb = NumFlag(argc, argv, "datasize", w->input_gb);
  SparkSimulator sim(cluster);
  SparkConf conf = DecodeSparkConf(space, space.Default());
  ExecutionResult r = sim.Execute(
      *w, conf, gb, static_cast<uint64_t>(NumFlag(argc, argv, "seed", 1)));

  std::printf("%s on %s, %.0f GB input, default configuration:\n", w->name.c_str(),
              cluster.name.c_str(), gb);
  TablePrinter table({"Stage", "Op", "Tasks", "Iter", "Input(MB)",
                      "ShuffleW(MB)", "Spill(MB)", "Duration(s)"});
  for (const auto& s : r.event_log.stages) {
    table.AddRow({s.name, StageOpName(s.op), StrFormat("%d", s.num_tasks),
                  StrFormat("%d", s.iterations),
                  StrFormat("%.0f", s.input_mb),
                  StrFormat("%.0f", s.shuffle_write_mb),
                  StrFormat("%.0f", s.spill_mb),
                  StrFormat("%.1f", s.duration_sec)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Runtime %.1fs | R(x) %.1f | %.2f CPU core-hours | "
              "%.2f memory GB-hours | executors granted %d | %s\n",
              r.runtime_sec, r.resource_rate, r.cpu_core_hours,
              r.memory_gb_hours, r.granted_executors,
              r.failed ? SimFailureKindName(r.failure) : "succeeded");
  return r.failed ? 2 : 0;
}

int Tune(int argc, char** argv) {
  auto w = HiBenchTask(StrFlag(argc, argv, "task", "WordCount"));
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }
  ClusterSpec cluster = ClusterByName(StrFlag(argc, argv, "cluster", "hibench"));
  ConfigSpace space = BuildSparkSpace(cluster);
  int budget = static_cast<int>(NumFlag(argc, argv, "budget", 20));
  int executions = static_cast<int>(
      NumFlag(argc, argv, "executions", budget + 1));
  bool csv = HasFlag(argc, argv, "csv");

  SimulatorEvaluatorOptions eopts;
  eopts.seed = static_cast<uint64_t>(NumFlag(argc, argv, "seed", 1));
  SimulatorEvaluator eval(&space, *w, cluster, DriftModel::Diurnal(), eopts);

  TunerOptions opts;
  opts.budget = budget;
  opts.advisor.objective.beta = NumFlag(argc, argv, "beta", 0.5);
  opts.advisor.expert_ranking = ExpertParameterRanking();
  opts.advisor.seed = eopts.seed;
  if (!opts.advisor.objective.Validate().ok()) {
    std::fprintf(stderr, "invalid beta\n");
    return 1;
  }
  OnlineTuner tuner(&space, &eval, opts);

  TablePrinter table({"iter", "phase", "runtime(s)", "R(x)", "objective",
                      "status"});
  for (int i = 0; i < executions; ++i) {
    const char* phase = tuner.phase() == TunerPhase::kBaseline ? "baseline"
                        : tuner.phase() == TunerPhase::kTuning ? "tuning"
                                                               : "applying";
    Observation o = tuner.Step();
    table.AddRow({StrFormat("%d", i), phase, StrFormat("%.1f", o.runtime_sec),
                  StrFormat("%.1f", o.resource_rate),
                  StrFormat("%.1f", o.objective),
                  o.failed() ? "FAILED" : (o.feasible ? "ok" : "violation")});
  }
  std::printf("%s", csv ? table.ToCsv().c_str() : table.ToString().c_str());
  if (tuner.baseline_observation().has_value()) {
    std::printf("\nBest objective %.2f (baseline %.2f, %.1f%% reduction, "
                "%d tuning iterations%s)\nBest config: %s\n",
                tuner.BestObjective(),
                tuner.baseline_observation()->objective,
                100.0 * (1.0 - tuner.BestObjective() /
                                   tuner.baseline_observation()->objective),
                tuner.tuning_iterations(),
                tuner.stopped_early() ? ", stopped early on EI" : "",
                space.Format(tuner.BestConfig()).c_str());
  }
  return 0;
}

int Compare(int argc, char** argv) {
  auto w = HiBenchTask(StrFlag(argc, argv, "task", "TeraSort"));
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }
  ClusterSpec cluster = ClusterByName(StrFlag(argc, argv, "cluster", "hibench"));
  ConfigSpace space = BuildSparkSpace(cluster);
  int budget = static_cast<int>(NumFlag(argc, argv, "budget", 30));
  int seeds = static_cast<int>(NumFlag(argc, argv, "seeds", 3));
  double beta = NumFlag(argc, argv, "beta", 0.5);

  std::vector<std::unique_ptr<TuningMethod>> methods;
  methods.push_back(std::make_unique<RandomSearch>());
  methods.push_back(std::make_unique<Rfhoc>());
  methods.push_back(std::make_unique<Dac>());
  methods.push_back(std::make_unique<CherryPick>());
  methods.push_back(std::make_unique<Tuneful>());
  methods.push_back(std::make_unique<Locat>());
  methods.push_back(std::make_unique<OursMethod>());

  TablePrinter table({"Method", "best objective (mean over seeds)",
                      "feasible %"});
  for (auto& m : methods) {
    double best_sum = 0.0;
    int feasible = 0, total = 0;
    for (int s = 0; s < seeds; ++s) {
      SimulatorEvaluatorOptions eopts;
      eopts.seed = 100 + static_cast<uint64_t>(s);
      SimulatorEvaluator probe(&space, *w, cluster, DriftModel::None(),
                               eopts);
      auto base = probe.Run(space.Default());
      TuningObjective obj;
      obj.beta = beta;
      obj.runtime_max = base.runtime_sec * 2.0;
      SimulatorEvaluator eval(&space, *w, cluster, DriftModel::Diurnal(),
                              eopts);
      RunHistory h = m->Tune(space, &eval, obj, budget, 100 + s);
      double best = h.BestObjective();
      best_sum += best / seeds;
      for (const auto& o : h.observations()) feasible += o.feasible;
      total += budget;
    }
    table.AddRow({m->name(), StrFormat("%.1f", best_sum),
                  StrFormat("%.1f%%", 100.0 * feasible / total)});
  }
  std::printf("%s on %s, beta=%.2f, %d iterations, %d seeds:\n%s",
              w->name.c_str(), cluster.name.c_str(), beta, budget, seeds,
              table.ToString().c_str());
  return 0;
}

int Importance(int argc, char** argv) {
  auto w = HiBenchTask(StrFlag(argc, argv, "task", "KMeans"));
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }
  ClusterSpec cluster = ClusterByName(StrFlag(argc, argv, "cluster", "hibench"));
  ConfigSpace space = BuildSparkSpace(cluster);
  int samples = static_cast<int>(NumFlag(argc, argv, "samples", 80));
  uint64_t seed = static_cast<uint64_t>(NumFlag(argc, argv, "seed", 1));

  SimulatorEvaluatorOptions eopts;
  eopts.seed = seed;
  SimulatorEvaluator eval(&space, *w, cluster, DriftModel::None(), eopts);
  TuningObjective obj;
  obj.beta = 0.5;
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < samples; ++i) {
    Configuration c = space.Sample(&rng);
    auto out = eval.Run(c);
    x.push_back(space.ToUnit(c));
    y.push_back(std::log(
        std::max(1e-9, obj.Value(out.runtime_sec, out.resource_rate))));
  }
  FanovaOptions fopts;
  fopts.compute_pairwise = false;
  auto result = Fanova::Analyze(x, y, fopts);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::vector<size_t> order(space.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result->main_effect[a] > result->main_effect[b];
  });
  TablePrinter table({"#", "Parameter", "Main-effect importance"});
  for (int i = 0; i < 15; ++i) {
    size_t d = order[static_cast<size_t>(i)];
    table.AddRow({StrFormat("%d", i + 1), space.param(d).name(),
                  StrFormat("%.4f", result->main_effect[d])});
  }
  std::printf("fANOVA importance for %s (%d random configs):\n%s",
              w->name.c_str(), samples, table.ToString().c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: sparktune <command> [flags]\n"
      "  list-tasks                         list HiBench workload presets\n"
      "  simulate   --task=T [--datasize=GB] [--seed=N] [--cluster=C]\n"
      "  tune       --task=T [--budget=N] [--beta=B] [--seed=N] [--csv]\n"
      "  compare    --task=T [--budget=N] [--beta=B] [--seeds=N]\n"
      "  importance --task=T [--samples=N] [--seed=N]\n"
      "clusters: hibench (default), production, smallsql\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "list-tasks") return ListTasks();
  if (cmd == "simulate") return Simulate(argc, argv);
  if (cmd == "tune") return Tune(argc, argv);
  if (cmd == "compare") return Compare(argc, argv);
  if (cmd == "importance") return Importance(argc, argv);
  return Usage();
}
