// sparktune_service: control-plane CLI and end-to-end smoke for the
// multi-process tuning service (DESIGN.md §9).
//
// Spawns sparktune_shardd workers, registers a small simulated fleet,
// drives periodic ticks over the wire, SIGKILLs a worker mid-run and
// restarts it, and — with --verify=1 (default) — checks every delivered
// observation bit-for-bit against an undisturbed single-process
// TuningService oracle running the identical specs. Exit 0 means the
// chaos trajectory converged to the oracle's; tools/check.sh runs this
// under the default and sanitizer builds.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "common/strings.h"
#include "service/process_supervisor.h"
#include "sparksim/hibench.h"
#include "sparksim/spark_conf.h"

namespace {

using sparktune::BuildSimEvaluator;
using sparktune::ClusterFromName;
using sparktune::Configuration;
using sparktune::JobEvaluator;
using sparktune::MakeServiceOptions;
using sparktune::Observation;
using sparktune::ProcessSupervisor;
using sparktune::ProcessSupervisorOptions;
using sparktune::Result;
using sparktune::ServiceConfig;
using sparktune::SimTaskSpec;
using sparktune::Status;
using sparktune::StrFormat;
using sparktune::TuningService;

// Minimal --name=value parsing (the bench harnesses own the richer
// bench::Flags; this tool keeps tools/ free of bench includes).
const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = argc - 1; i >= 1; --i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atoi(v) : fallback;
}

std::string StrFlag(int argc, char** argv, const char* name,
                    const char* fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::string(v) : std::string(fallback);
}

bool SameSlot(const Result<Observation>& got, const Result<Observation>& want,
              std::string* why) {
  if (got.ok() != want.ok()) {
    *why = StrFormat("ok mismatch: got %d want %d", got.ok() ? 1 : 0,
                     want.ok() ? 1 : 0);
    return false;
  }
  if (!got.ok()) {
    if (got.status().code() != want.status().code()) {
      *why = StrFormat("status mismatch: got %s want %s",
                       got.status().ToString().c_str(),
                       want.status().ToString().c_str());
      return false;
    }
    return true;
  }
  if (!(got->config == want->config)) {
    *why = "config mismatch";
    return false;
  }
  if (got->objective != want->objective ||
      got->runtime_sec != want->runtime_sec ||
      got->failure != want->failure || got->degraded != want->degraded) {
    *why = StrFormat("scalar mismatch: objective %.17g vs %.17g",
                     got->objective, want->objective);
    return false;
  }
  return true;
}

const char* kWorkloads[] = {"WordCount", "Sort", "TeraSort", "Join",
                            "PageRank", "Aggregation", "Scan", "Bayes"};

int Fail(const Status& st, const char* where) {
  std::fprintf(stderr, "sparktune_service: %s: %s\n", where,
               st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string shardd = StrFlag(argc, argv, "shardd", "");
  if (shardd.empty()) {
    std::fprintf(stderr,
                 "usage: sparktune_service --shardd=PATH [--sockdir=DIR] "
                 "[--repo=DIR] [--shards=N] [--tasks=K] [--ticks=T] "
                 "[--kill-tick=T] [--restart-tick=T] [--budget=B] "
                 "[--threads=N] [--verify=0|1]\n");
    return 2;
  }
  std::string sockdir = StrFlag(argc, argv, "sockdir", "");
  if (sockdir.empty()) {
    sockdir = StrFormat("/tmp/sparktune-svc-%d", static_cast<int>(getpid()));
  }
  std::error_code ec;  // best-effort; UnixListen reports bind failures
  std::filesystem::create_directories(sockdir, ec);

  const std::string repo = StrFlag(argc, argv, "repo", "");
  const int shards = IntFlag(argc, argv, "shards", 2);
  const int tasks = IntFlag(argc, argv, "tasks", 4);
  const int ticks = IntFlag(argc, argv, "ticks", 8);
  const int kill_tick = IntFlag(argc, argv, "kill-tick", 3);
  const int restart_tick = IntFlag(argc, argv, "restart-tick", 5);
  const int budget = IntFlag(argc, argv, "budget", 6);
  const int threads = IntFlag(argc, argv, "threads", 1);
  const bool verify = IntFlag(argc, argv, "verify", 1) != 0;

  ProcessSupervisorOptions options;
  options.shardd_path = shardd;
  options.socket_dir = sockdir;
  options.num_shards = shards;
  options.service.budget = budget;
  options.service.ei_stop_threshold = 0.0;
  options.service.expert_ranking = true;
  options.service.repository_dir = repo;
  options.service.auto_checkpoint_periods = 2;
  options.service.checkpoint_on_phase_change = true;
  options.service.num_threads = threads;

  ProcessSupervisor supervisor(options);
  if (Status st = supervisor.Start(); !st.ok()) return Fail(st, "start");

  std::vector<std::string> ids;
  std::vector<SimTaskSpec> specs;
  for (int i = 0; i < tasks; ++i) {
    SimTaskSpec spec;
    spec.workload = kWorkloads[i % (sizeof(kWorkloads) / sizeof(char*))];
    spec.seed = 1000 + static_cast<uint64_t>(i);
    std::string id = StrFormat("svc-task-%d", i);
    if (Status st = supervisor.RegisterTask(id, spec); !st.ok()) {
      return Fail(st, "register");
    }
    ids.push_back(std::move(id));
    specs.push_back(spec);
  }

  // The oracle: one in-process TuningService running identical specs with
  // no sockets, no kills, and no shared repository. Every period the
  // process fleet delivers must match the oracle's same-index period.
  auto cluster = ClusterFromName(options.service.cluster);
  if (!cluster.ok()) return Fail(cluster.status(), "cluster");
  sparktune::ConfigSpace space = sparktune::BuildSparkSpace(*cluster);
  ServiceConfig oracle_config = options.service;
  oracle_config.repository_dir.clear();  // never touch the fleet's files
  oracle_config.auto_checkpoint_periods = 0;
  oracle_config.checkpoint_on_phase_change = false;
  TuningService oracle(&space, MakeServiceOptions(oracle_config));
  std::vector<std::unique_ptr<JobEvaluator>> oracle_evaluators;
  if (verify) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto evaluator = BuildSimEvaluator(&space, *cluster, specs[i]);
      if (!evaluator.ok()) return Fail(evaluator.status(), "oracle-eval");
      if (Status st = oracle.RegisterTask(ids[i], evaluator->get());
          !st.ok()) {
        return Fail(st, "oracle-register");
      }
      oracle_evaluators.push_back(std::move(evaluator).value());
    }
  }

  int killed_shard = -1;
  long long compared = 0, mismatches = 0, parked = 0;
  for (int t = 1; t <= ticks; ++t) {
    if (t == kill_tick && kill_tick > 0) {
      // Kill the shard owning the most tasks so the chaos actually lands.
      std::vector<int> load(static_cast<size_t>(shards), 0);
      for (const std::string& id : ids) ++load[supervisor.shard_of(id)];
      killed_shard = 0;
      for (int s = 1; s < shards; ++s) {
        if (load[s] > load[killed_shard]) killed_shard = s;
      }
      if (Status st = supervisor.KillShard(killed_shard); !st.ok()) {
        return Fail(st, "kill");
      }
    }
    if (t == restart_tick && restart_tick > 0 && killed_shard >= 0) {
      if (Status st = supervisor.RestartShard(killed_shard); !st.ok()) {
        return Fail(st, "restart");
      }
    }

    std::vector<long long> before(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      before[i] = supervisor.periods(ids[i]);
    }
    std::vector<Result<Observation>> slots = supervisor.Tick();
    for (size_t i = 0; i < ids.size(); ++i) {
      const long long after = supervisor.periods(ids[i]);
      if (after == before[i]) {
        ++parked;  // no period consumed: the slot is a parked kUnavailable
        continue;
      }
      if (!verify) continue;
      // Catch the oracle up to this task's pre-tick clock (recovery may
      // have advanced it past what we compared so far), then compare the
      // delivered period.
      while (oracle.periods(ids[i]) < before[i]) {
        (void)oracle.ExecutePeriodic(ids[i]);
      }
      Result<Observation> want = oracle.ExecutePeriodic(ids[i]);
      std::string why;
      ++compared;
      if (!SameSlot(slots[i], want, &why)) {
        ++mismatches;
        std::fprintf(stderr, "tick %d task %s period %lld: %s\n", t,
                     ids[i].c_str(), before[i], why.c_str());
      }
    }
  }

  // Exercise the remaining verbs once: suggestion fetch, checkpoint,
  // streaming harvest, graceful shutdown.
  for (const std::string& id : ids) {
    if (supervisor.shard_alive(supervisor.shard_of(id))) {
      auto suggestion = supervisor.FetchSuggestion(id);
      if (!suggestion.ok()) return Fail(suggestion.status(), "suggest");
    }
  }
  sparktune::CheckpointReport checkpoint = supervisor.CheckpointAll();
  sparktune::HarvestReport harvest = supervisor.HarvestDirty();
  Status shutdown = supervisor.Shutdown();

  const auto& stats = supervisor.stats();
  const bool converged = mismatches == 0 && (!verify || compared > 0);
  std::printf(
      "{\"shards\":%d,\"tasks\":%d,\"ticks\":%lld,\"kills\":%lld,"
      "\"restarts\":%lld,\"restored_tasks\":%lld,\"fresh_replays\":%lld,"
      "\"replayed_periods\":%lld,\"parked_slots\":%lld,\"lost_results\":%lld,"
      "\"checkpoint_written\":%d,\"harvested\":%d,\"compared\":%lld,"
      "\"mismatches\":%lld,\"clean_shutdown\":%s,\"converged\":%s}\n",
      shards, tasks, stats.ticks, stats.kills, stats.restarts,
      stats.restored_tasks, stats.fresh_replays, stats.replayed_periods,
      stats.parked_slots, stats.lost_results, checkpoint.written,
      harvest.harvested, compared, mismatches,
      shutdown.ok() ? "true" : "false", converged ? "true" : "false");
  if (!converged) return 1;
  if (parked != stats.parked_slots) {
    std::fprintf(stderr, "parked accounting mismatch: %lld vs %lld\n",
                 parked, stats.parked_slots);
    return 1;
  }
  return 0;
}
