// sparktune_service: control-plane CLI and end-to-end smoke for the
// multi-process tuning service (DESIGN.md §9).
//
// Spawns sparktune_shardd workers, registers a small simulated fleet,
// drives periodic ticks over the wire, SIGKILLs a worker mid-run and
// restarts it (manually at --restart-tick, or via the heartbeat monitor
// with --autoheal=1), optionally SIGKILLs the SUPERVISOR itself at
// --crash-tick (Abandon + a fresh ProcessSupervisor Recover()s from the
// manifest), optionally damages both wire directions with --chaos_seed /
// --chaos_prob, and — with --verify=1 (default) — checks every delivered
// observation bit-for-bit against an undisturbed single-process
// TuningService oracle running the identical specs. Exit 0 means the
// chaos trajectory converged to the oracle's; tools/check.sh runs this
// under the default and sanitizer builds.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "common/strings.h"
#include "service/process_supervisor.h"
#include "sparksim/hibench.h"
#include "sparksim/spark_conf.h"

namespace {

using sparktune::BuildSimEvaluator;
using sparktune::ClusterFromName;
using sparktune::Configuration;
using sparktune::JobEvaluator;
using sparktune::MakeServiceOptions;
using sparktune::Observation;
using sparktune::ProcessSupervisor;
using sparktune::ProcessSupervisorOptions;
using sparktune::Result;
using sparktune::ServiceConfig;
using sparktune::SimTaskSpec;
using sparktune::Status;
using sparktune::StrFormat;
using sparktune::TuningService;

// Minimal --name=value parsing (the bench harnesses own the richer
// bench::Flags; this tool keeps tools/ free of bench includes).
const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = argc - 1; i >= 1; --i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atoi(v) : fallback;
}

double DblFlag(int argc, char** argv, const char* name, double fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::atof(v) : fallback;
}

std::string StrFlag(int argc, char** argv, const char* name,
                    const char* fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::string(v) : std::string(fallback);
}

bool SameSlot(const Result<Observation>& got, const Result<Observation>& want,
              std::string* why) {
  if (got.ok() != want.ok()) {
    *why = StrFormat("ok mismatch: got %d want %d", got.ok() ? 1 : 0,
                     want.ok() ? 1 : 0);
    return false;
  }
  if (!got.ok()) {
    if (got.status().code() != want.status().code()) {
      *why = StrFormat("status mismatch: got %s want %s",
                       got.status().ToString().c_str(),
                       want.status().ToString().c_str());
      return false;
    }
    return true;
  }
  if (!(got->config == want->config)) {
    *why = "config mismatch";
    return false;
  }
  if (got->objective != want->objective ||
      got->runtime_sec != want->runtime_sec ||
      got->failure != want->failure || got->degraded != want->degraded) {
    *why = StrFormat("scalar mismatch: objective %.17g vs %.17g",
                     got->objective, want->objective);
    return false;
  }
  return true;
}

const char* kWorkloads[] = {"WordCount", "Sort", "TeraSort", "Join",
                            "PageRank", "Aggregation", "Scan", "Bayes"};

int Fail(const Status& st, const char* where) {
  std::fprintf(stderr, "sparktune_service: %s: %s\n", where,
               st.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string shardd = StrFlag(argc, argv, "shardd", "");
  if (shardd.empty()) {
    std::fprintf(stderr,
                 "usage: sparktune_service --shardd=PATH [--sockdir=DIR] "
                 "[--repo=DIR] [--shards=N] [--tasks=K] [--ticks=T] "
                 "[--kill-tick=T] [--restart-tick=T] [--crash-tick=T] "
                 "[--autoheal=0|1] [--chaos_seed=S] [--chaos_prob=P] "
                 "[--chaos_arm=K] [--budget=B] [--threads=N] "
                 "[--verify=0|1]\n");
    return 2;
  }
  std::string sockdir = StrFlag(argc, argv, "sockdir", "");
  if (sockdir.empty()) {
    sockdir = StrFormat("/tmp/sparktune-svc-%d", static_cast<int>(getpid()));
  }
  std::error_code ec;  // best-effort; UnixListen reports bind failures
  std::filesystem::create_directories(sockdir, ec);

  const std::string repo = StrFlag(argc, argv, "repo", "");
  const int shards = IntFlag(argc, argv, "shards", 2);
  const int tasks = IntFlag(argc, argv, "tasks", 4);
  const int ticks = IntFlag(argc, argv, "ticks", 8);
  const int kill_tick = IntFlag(argc, argv, "kill-tick", 3);
  const int restart_tick = IntFlag(argc, argv, "restart-tick", 5);
  const int crash_tick = IntFlag(argc, argv, "crash-tick", 0);
  const bool autoheal = IntFlag(argc, argv, "autoheal", 0) != 0;
  const int budget = IntFlag(argc, argv, "budget", 6);
  const int threads = IntFlag(argc, argv, "threads", 1);
  const bool verify = IntFlag(argc, argv, "verify", 1) != 0;
  const uint64_t chaos_seed = static_cast<uint64_t>(
      std::strtoull(StrFlag(argc, argv, "chaos_seed", "0").c_str(),
                    nullptr, 10));
  const double chaos_prob = DblFlag(argc, argv, "chaos_prob", 0.05);
  const int chaos_arm = IntFlag(argc, argv, "chaos_arm", 16);
  const bool chaos = chaos_seed != 0 && chaos_prob > 0;

  ProcessSupervisorOptions options;
  options.shardd_path = shardd;
  options.socket_dir = sockdir;
  options.num_shards = shards;
  options.service.budget = budget;
  options.service.ei_stop_threshold = 0.0;
  options.service.expert_ranking = true;
  options.service.repository_dir = repo;
  options.service.auto_checkpoint_periods = 2;
  options.service.checkpoint_on_phase_change = true;
  options.service.num_threads = threads;
  if (chaos) {
    options.chaos_seed = chaos_seed;
    options.chaos_prob = chaos_prob;
    options.chaos_arm_exchanges = chaos_arm;
  }
  options.health.auto_restart = autoheal;

  auto sup = std::make_unique<ProcessSupervisor>(options);
  if (Status st = sup->Start(); !st.ok()) return Fail(st, "start");

  std::vector<std::string> ids;
  std::vector<SimTaskSpec> specs;
  for (int i = 0; i < tasks; ++i) {
    SimTaskSpec spec;
    spec.workload = kWorkloads[i % (sizeof(kWorkloads) / sizeof(char*))];
    spec.seed = 1000 + static_cast<uint64_t>(i);
    std::string id = StrFormat("svc-task-%d", i);
    if (Status st = sup->RegisterTask(id, spec); !st.ok()) {
      return Fail(st, "register");
    }
    ids.push_back(std::move(id));
    specs.push_back(spec);
  }

  // The oracle: one in-process TuningService running identical specs with
  // no sockets, no kills, and no shared repository. Every period the
  // process fleet delivers must match the oracle's same-index period.
  auto cluster = ClusterFromName(options.service.cluster);
  if (!cluster.ok()) return Fail(cluster.status(), "cluster");
  sparktune::ConfigSpace space = sparktune::BuildSparkSpace(*cluster);
  ServiceConfig oracle_config = options.service;
  oracle_config.repository_dir.clear();  // never touch the fleet's files
  oracle_config.auto_checkpoint_periods = 0;
  oracle_config.checkpoint_on_phase_change = false;
  TuningService oracle(&space, MakeServiceOptions(oracle_config));
  std::vector<std::unique_ptr<JobEvaluator>> oracle_evaluators;
  if (verify) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto evaluator = BuildSimEvaluator(&space, *cluster, specs[i]);
      if (!evaluator.ok()) return Fail(evaluator.status(), "oracle-eval");
      if (Status st = oracle.RegisterTask(ids[i], evaluator->get());
          !st.ok()) {
        return Fail(st, "oracle-register");
      }
      oracle_evaluators.push_back(std::move(evaluator).value());
    }
  }

  int killed_shard = -1;
  long long compared = 0, mismatches = 0, parked = 0;
  sparktune::ProcessSupervisorStats carried;  // stats lost to crash cycles
  for (int t = 1; t <= ticks; ++t) {
    if (t == crash_tick && crash_tick > 0) {
      // Supervisor death: Abandon() forgets the fleet without signaling
      // it (the workers run on as orphans), then a brand-new supervisor
      // takes over from the manifest alone.
      carried = sup->stats();
      sup->Abandon();
      sup = std::make_unique<ProcessSupervisor>(options);
      if (Status st = sup->Recover(); !st.ok()) return Fail(st, "recover");
      // Recover() fences+respawns dead shards, so the manual restart
      // below would find the shard already alive.
      if (killed_shard >= 0 && sup->shard_alive(killed_shard)) {
        killed_shard = -1;
      }
    }
    if (t == kill_tick && kill_tick > 0) {
      // Kill the shard owning the most tasks so the chaos actually lands.
      std::vector<int> load(static_cast<size_t>(shards), 0);
      for (const std::string& id : ids) ++load[sup->shard_of(id)];
      killed_shard = 0;
      for (int s = 1; s < shards; ++s) {
        if (load[s] > load[killed_shard]) killed_shard = s;
      }
      if (Status st = sup->KillShard(killed_shard); !st.ok()) {
        return Fail(st, "kill");
      }
    }
    if (t == restart_tick && restart_tick > 0 && killed_shard >= 0 &&
        !sup->shard_alive(killed_shard)) {
      if (Status st = sup->RestartShard(killed_shard); !st.ok()) {
        return Fail(st, "restart");
      }
    }

    std::vector<long long> before(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      before[i] = sup->periods(ids[i]);
    }
    std::vector<Result<Observation>> slots = sup->Tick();
    for (size_t i = 0; i < ids.size(); ++i) {
      const long long after = sup->periods(ids[i]);
      if (after == before[i]) {
        ++parked;  // no period consumed: the slot is a parked kUnavailable
        continue;
      }
      if (!verify) continue;
      // Catch the oracle up to the period the delivered slot belongs to —
      // after-1, not before, because recovery replay AND chaos-lost
      // responses can advance a worker clock by more than one period
      // between deliveries — then compare that period bit-for-bit.
      while (oracle.periods(ids[i]) < after - 1) {
        (void)oracle.ExecutePeriodic(ids[i]);
      }
      Result<Observation> want = oracle.ExecutePeriodic(ids[i]);
      std::string why;
      ++compared;
      if (!SameSlot(slots[i], want, &why)) {
        ++mismatches;
        std::fprintf(stderr, "tick %d task %s period %lld: %s\n", t,
                     ids[i].c_str(), after - 1, why.c_str());
      }
    }
  }

  // Exercise the remaining verbs once: suggestion fetch, checkpoint,
  // streaming harvest, graceful shutdown. Under wire chaos a fetch can
  // legitimately lose its exchange — any TYPED failure is acceptable
  // there; an untyped one never is.
  for (const std::string& id : ids) {
    if (sup->shard_alive(sup->shard_of(id))) {
      auto suggestion = sup->FetchSuggestion(id);
      if (!suggestion.ok()) {
        if (!chaos ||
            suggestion.status().code() == Status::Code::kInternal) {
          return Fail(suggestion.status(), "suggest");
        }
      }
    }
  }
  sparktune::CheckpointReport checkpoint = sup->CheckpointAll();
  sparktune::HarvestReport harvest = sup->HarvestDirty();
  const sparktune::net::ChaosStats wire = sup->chaos_stats();
  Status shutdown = sup->Shutdown();

  const auto& stats = sup->stats();
  const bool converged = mismatches == 0 && (!verify || compared > 0);
  std::printf(
      "{\"shards\":%d,\"tasks\":%d,\"ticks\":%lld,\"kills\":%lld,"
      "\"restarts\":%lld,\"restored_tasks\":%lld,\"fresh_replays\":%lld,"
      "\"replayed_periods\":%lld,\"parked_slots\":%lld,\"lost_results\":%lld,"
      "\"auto_restarts\":%lld,\"recoveries\":%lld,\"adopted_workers\":%lld,"
      "\"fenced_workers\":%lld,\"probes\":%lld,\"quarantines\":%lld,"
      "\"chaos_injected\":%lld,"
      "\"checkpoint_written\":%d,\"harvested\":%d,\"compared\":%lld,"
      "\"mismatches\":%lld,\"clean_shutdown\":%s,\"converged\":%s}\n",
      shards, tasks, carried.ticks + stats.ticks,
      carried.kills + stats.kills, carried.restarts + stats.restarts,
      carried.restored_tasks + stats.restored_tasks,
      carried.fresh_replays + stats.fresh_replays,
      carried.replayed_periods + stats.replayed_periods,
      carried.parked_slots + stats.parked_slots,
      carried.lost_results + stats.lost_results,
      carried.auto_restarts + stats.auto_restarts, stats.recoveries,
      stats.adopted_workers, stats.fenced_workers,
      carried.probes + stats.probes, sup->total_quarantines(),
      wire.injected, checkpoint.written, harvest.harvested, compared,
      mismatches, shutdown.ok() ? "true" : "false",
      converged ? "true" : "false");
  if (!converged) return 1;
  // Delivered-but-stale chaos frames and crash cycles both decouple the
  // tool's park count from the supervisor's; the strict cross-check only
  // holds on the undisturbed-wire, single-incarnation run.
  if (!chaos && crash_tick <= 0 &&
      parked != carried.parked_slots + stats.parked_slots) {
    std::fprintf(stderr, "parked accounting mismatch: %lld vs %lld\n",
                 parked, carried.parked_slots + stats.parked_slots);
    return 1;
  }
  return 0;
}
