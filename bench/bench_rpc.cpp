// RPC soak benchmark for the multi-process tuning service (DESIGN.md §9).
//
// Spawns a real control plane + sparktune_shardd worker fleet over
// Unix-domain sockets and measures the three numbers that matter for the
// process model:
//
//   * ping latency — one kPing frame exchange per sample, the floor cost
//     of the framed protocol (encode + CRC + write + read + decode);
//   * tick latency — one pipelined kExecute fan-out over every shard,
//     i.e. the per-period control-plane overhead the paper's §6.2
//     scheduling tick pays for process isolation;
//   * recovery time — SIGKILL a worker mid-soak, then time RestartShard
//     end to end: respawn, reconnect, reconfigure, repository load, and
//     per-task restore + deterministic gap replay;
//   * supervisor recovery time — with --sup_crashes > 0, Abandon() the
//     whole control plane mid-soak (simulated supervisor SIGKILL) and
//     time a fresh supervisor's manifest load + worker re-adoption /
//     fencing end to end (supervisor_recovery_ms);
//   * chaos soak — with --chaos_seed != 0, deterministic wire faults
//     (net/chaos.h) on both directions; per-kind injection counters and
//     health-monitor auto-restarts land in the output document.
//
// Emits BENCH_rpc.json with latency percentiles and per-cycle recovery
// times, self-checked against the schema before writing (a silent field
// drift is a bench bug, not a consumer problem).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "service/process_supervisor.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  // lint:allow(no-wall-clock) benchmark wall-time reporting only; never feeds tuner results
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Linear-interpolated percentile; `v` is consumed (sorted in place).
double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const double rank = p * static_cast<double>(v->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*v)[lo] * (1.0 - frac) + (*v)[hi] * frac;
}

Json PercentileSummary(std::vector<double> samples) {
  Json j = Json::Object();
  j.Set("p50", Json::Number(Percentile(&samples, 0.50)));
  j.Set("p90", Json::Number(Percentile(&samples, 0.90)));
  j.Set("p99", Json::Number(Percentile(&samples, 0.99)));
  j.Set("max", Json::Number(samples.empty() ? 0.0 : samples.back()));
  j.Set("samples", Json::Number(static_cast<double>(samples.size())));
  return j;
}

const char* kWorkloads[] = {"WordCount", "Sort", "TeraSort", "Join",
                            "PageRank", "Aggregation", "Scan", "Bayes"};

// Counters must survive supervisor crash cycles: Abandon() discards the
// instance (and its stats), so the soak folds them forward first.
void Accumulate(ProcessSupervisorStats* into,
                const ProcessSupervisorStats& s) {
  into->ticks += s.ticks;
  into->kills += s.kills;
  into->restarts += s.restarts;
  into->restored_tasks += s.restored_tasks;
  into->fresh_replays += s.fresh_replays;
  into->replayed_periods += s.replayed_periods;
  into->parked_slots += s.parked_slots;
  into->lost_results += s.lost_results;
  into->worker_failures += s.worker_failures;
  into->probes += s.probes;
  into->probe_failures += s.probe_failures;
  into->auto_restarts += s.auto_restarts;
  into->recoveries += s.recoveries;
  into->adopted_workers += s.adopted_workers;
  into->adopted_tasks += s.adopted_tasks;
  into->fenced_workers += s.fenced_workers;
  into->manifest_failures += s.manifest_failures;
}

void Accumulate(net::ChaosStats* into, const net::ChaosStats& s) {
  into->exchanges += s.exchanges;
  into->injected += s.injected;
  into->torn_writes += s.torn_writes;
  into->bit_flips += s.bit_flips;
  into->dup_frames += s.dup_frames;
  into->delays += s.delays;
  into->resets += s.resets;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string shardd = flags.Str("shardd", SPARKTUNE_SHARDD_PATH);
  const int shards = flags.Int("shards", 2);
  const int tasks = flags.Int("tasks", 8);
  const int ticks = flags.Int("ticks", 30);
  const int pings = flags.Int("pings", 500);
  const int kills = flags.Int("kills", 3);
  const int budget = flags.Int("budget", 5);
  const int threads = flags.Threads(1);
  const bool with_repo = flags.Bool("repo", true);
  const int sup_crashes = flags.Int("sup_crashes", 0);
  const uint64_t chaos_seed =
      static_cast<uint64_t>(flags.Int("chaos_seed", 0));
  const double chaos_prob = std::atof(flags.Str("chaos_prob", "0.1").c_str());
  const int chaos_arm = flags.Int("chaos_arm", 16);
  const bool autoheal = flags.Bool("autoheal", chaos_seed != 0);
  std::string sockdir = flags.Str("sockdir", "");
  const std::string out_path = flags.Out("BENCH_rpc.json");
  if (!flags.Validate()) return 1;
  if (sockdir.empty()) {
    sockdir = StrFormat("/tmp/sparktune-bench-rpc-%d",
                        static_cast<int>(getpid()));
  }
  std::error_code ec;
  std::filesystem::remove_all(sockdir, ec);
  std::filesystem::create_directories(sockdir, ec);

  ProcessSupervisorOptions options;
  options.shardd_path = shardd;
  options.socket_dir = sockdir;
  options.num_shards = shards;
  options.service.budget = budget;
  options.service.ei_stop_threshold = 0.0;
  options.service.expert_ranking = true;
  options.service.num_threads = threads;
  if (with_repo) {
    options.service.repository_dir = sockdir + "/repo";
    options.service.auto_checkpoint_periods = 2;
    options.service.checkpoint_on_phase_change = true;
  }
  options.chaos_seed = chaos_seed;
  options.chaos_prob = chaos_prob;
  options.chaos_arm_exchanges = chaos_arm;
  options.health.auto_restart = autoheal;

  auto supervisor = std::make_unique<ProcessSupervisor>(options);
  if (Status st = supervisor->Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  for (int i = 0; i < tasks; ++i) {
    SimTaskSpec spec;
    spec.workload = kWorkloads[i % (sizeof(kWorkloads) / sizeof(char*))];
    spec.seed = 77000 + static_cast<uint64_t>(i);
    if (Status st = supervisor->RegisterTask(
            StrFormat("rpc-bench-%d", i), spec);
        !st.ok()) {
      std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Ping soak: the minimal full exchange, round-robined over the shards.
  // Under chaos a ping may draw a wire fault: the failure must be typed
  // and the sample is simply dropped (counted in ping_failures).
  std::vector<double> ping_us;
  ping_us.reserve(static_cast<size_t>(pings));
  long long ping_failures = 0;
  for (int i = 0; i < pings; ++i) {
    // lint:allow(no-wall-clock) benchmark timing, as above
    const Clock::time_point start = Clock::now();
    if (Status st = supervisor->Ping(i % shards); !st.ok()) {
      if (chaos_seed != 0 && st.code() != Status::Code::kInternal) {
        ++ping_failures;
        // A chaos fault tears the connection down, and the redial loop
        // lives in Tick: spend untimed ticks until the shard answers
        // again so one fault doesn't void the rest of the soak.
        for (int r = 0; r < 4 && !supervisor->Ping(i % shards).ok(); ++r) {
          (void)supervisor->Tick();
        }
        continue;
      }
      std::fprintf(stderr, "ping: %s\n", st.ToString().c_str());
      return 1;
    }
    ping_us.push_back(ElapsedMs(start) * 1000.0);
  }

  // Tick soak with chaos cycles spread through it: SIGKILL the busiest
  // shard, let its tasks park for one tick, then time the full recovery.
  // With --sup_crashes the supervisor itself dies too: Abandon() orphans
  // the fleet and a fresh instance takes it back over from the manifest.
  std::vector<double> tick_ms;
  std::vector<double> recovery_ms;
  std::vector<double> sup_recovery_ms;
  tick_ms.reserve(static_cast<size_t>(ticks));
  const int kill_every = kills > 0 ? std::max(2, ticks / (kills + 1)) : 0;
  const int crash_every =
      sup_crashes > 0 ? std::max(3, ticks / (sup_crashes + 1)) : 0;
  ProcessSupervisorStats total{};
  net::ChaosStats total_chaos{};
  int killed = -1;
  int kills_issued = 0;
  for (int t = 1; t <= ticks; ++t) {
    if (crash_every > 0 && t % crash_every == 0 &&
        static_cast<int>(sup_recovery_ms.size()) < sup_crashes) {
      Accumulate(&total, supervisor->stats());
      Accumulate(&total_chaos, supervisor->chaos_stats());
      // lint:allow(no-wall-clock) benchmark timing, as above
      const Clock::time_point start = Clock::now();
      supervisor->Abandon();
      supervisor = std::make_unique<ProcessSupervisor>(options);
      if (Status st = supervisor->Recover(); !st.ok()) {
        std::fprintf(stderr, "recover: %s\n", st.ToString().c_str());
        return 1;
      }
      sup_recovery_ms.push_back(ElapsedMs(start));
      // Recovery fences + respawns dead shards itself; the manual cycle
      // for a previously killed worker is then already complete.
      if (killed >= 0 && supervisor->shard_alive(killed)) killed = -1;
    }
    if (killed >= 0) {
      if (supervisor->shard_alive(killed)) {
        killed = -1;  // the health monitor's auto-restart healed it first
      } else {
        // lint:allow(no-wall-clock) benchmark timing, as above
        const Clock::time_point start = Clock::now();
        if (Status st = supervisor->RestartShard(killed); !st.ok()) {
          std::fprintf(stderr, "restart: %s\n", st.ToString().c_str());
          return 1;
        }
        recovery_ms.push_back(ElapsedMs(start));
        killed = -1;
      }
    } else if (kill_every > 0 && t % kill_every == 0 &&
               kills_issued < kills) {
      std::vector<int> load(static_cast<size_t>(shards), 0);
      for (const std::string& id : supervisor->task_ids()) {
        ++load[supervisor->shard_of(id)];
      }
      killed = 0;
      for (int s = 1; s < shards; ++s) {
        if (load[s] > load[killed]) killed = s;
      }
      if (Status st = supervisor->KillShard(killed); !st.ok()) {
        std::fprintf(stderr, "kill: %s\n", st.ToString().c_str());
        return 1;
      }
      ++kills_issued;
    }
    // lint:allow(no-wall-clock) benchmark timing, as above
    const Clock::time_point start = Clock::now();
    (void)supervisor->Tick();
    tick_ms.push_back(ElapsedMs(start));
  }
  if (killed >= 0 && !supervisor->shard_alive(killed)) {
    // Soak ended mid-cycle; recover before shutdown.
    // lint:allow(no-wall-clock) benchmark timing, as above
    const Clock::time_point start = Clock::now();
    if (Status st = supervisor->RestartShard(killed); !st.ok()) {
      std::fprintf(stderr, "restart: %s\n", st.ToString().c_str());
      return 1;
    }
    recovery_ms.push_back(ElapsedMs(start));
  }

  (void)supervisor->CheckpointAll();
  (void)supervisor->HarvestDirty();
  Accumulate(&total, supervisor->stats());
  Accumulate(&total_chaos, supervisor->chaos_stats());
  const ProcessSupervisorStats& stats = total;
  if (Status st = supervisor->Shutdown(); !st.ok()) {
    // Under chaos the kShutdown exchange itself can draw a fault; the
    // supervisor then falls back to SIGKILL + reap, which is fine for a
    // soak. Without chaos an unacked shutdown is a real bug.
    if (chaos_seed == 0) {
      std::fprintf(stderr, "shutdown: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "shutdown (chaos, killed): %s\n",
                 st.ToString().c_str());
  }

  Json ping_summary = PercentileSummary(ping_us);
  Json tick_summary = PercentileSummary(tick_ms);
  double recovery_mean = 0.0, recovery_max = 0.0;
  for (double r : recovery_ms) {
    recovery_mean += r;
    recovery_max = std::max(recovery_max, r);
  }
  if (!recovery_ms.empty()) {
    recovery_mean /= static_cast<double>(recovery_ms.size());
  }
  double sup_recovery_mean = 0.0, sup_recovery_max = 0.0;
  for (double r : sup_recovery_ms) {
    sup_recovery_mean += r;
    sup_recovery_max = std::max(sup_recovery_max, r);
  }
  if (!sup_recovery_ms.empty()) {
    sup_recovery_mean /= static_cast<double>(sup_recovery_ms.size());
  }
  std::printf(
      "ping us  p50 %.1f  p90 %.1f  p99 %.1f  (%d samples, %lld dropped)\n"
      "tick ms  p50 %.2f  p90 %.2f  p99 %.2f  (%d ticks, %d tasks, "
      "%d shards)\n"
      "recovery ms  mean %.1f  max %.1f  (%zu SIGKILL cycles, %lld tasks "
      "restored, %lld replayed periods, %lld parked slots)\n"
      "supervisor recovery ms  mean %.1f  max %.1f  (%zu crash cycles, "
      "%lld adopted, %lld fenced)\n"
      "chaos  %lld/%lld exchanges faulted (torn %lld flip %lld dup %lld "
      "delay %lld reset %lld), %lld auto-restarts\n",
      ping_summary.GetNumberOr("p50", 0), ping_summary.GetNumberOr("p90", 0),
      ping_summary.GetNumberOr("p99", 0), pings, ping_failures,
      tick_summary.GetNumberOr("p50", 0), tick_summary.GetNumberOr("p90", 0),
      tick_summary.GetNumberOr("p99", 0), ticks, tasks, shards,
      recovery_mean, recovery_max, recovery_ms.size(), stats.restored_tasks,
      stats.replayed_periods, stats.parked_slots, sup_recovery_mean,
      sup_recovery_max, sup_recovery_ms.size(), stats.adopted_workers,
      stats.fenced_workers, total_chaos.injected, total_chaos.exchanges,
      total_chaos.torn_writes, total_chaos.bit_flips, total_chaos.dup_frames,
      total_chaos.delays, total_chaos.resets, stats.auto_restarts);

  Json doc = Json::Object();
  doc.Set("bench", Json::Str("rpc"));
  doc.Set("shards", Json::Number(static_cast<double>(shards)));
  doc.Set("tasks", Json::Number(static_cast<double>(tasks)));
  doc.Set("ticks", Json::Number(static_cast<double>(ticks)));
  doc.Set("threads", Json::Number(static_cast<double>(threads)));
  doc.Set("with_repo", Json::Bool(with_repo));
  doc.Set("ping_us", std::move(ping_summary));
  doc.Set("tick_ms", std::move(tick_summary));
  Json recoveries = Json::Array();
  for (double r : recovery_ms) recoveries.Append(Json::Number(r));
  doc.Set("recovery_ms", std::move(recoveries));
  doc.Set("recovery_ms_mean", Json::Number(recovery_mean));
  doc.Set("recovery_ms_max", Json::Number(recovery_max));
  doc.Set("kills", Json::Number(static_cast<double>(stats.kills)));
  doc.Set("restarts", Json::Number(static_cast<double>(stats.restarts)));
  doc.Set("restored_tasks",
          Json::Number(static_cast<double>(stats.restored_tasks)));
  doc.Set("fresh_replays",
          Json::Number(static_cast<double>(stats.fresh_replays)));
  doc.Set("replayed_periods",
          Json::Number(static_cast<double>(stats.replayed_periods)));
  doc.Set("parked_slots",
          Json::Number(static_cast<double>(stats.parked_slots)));
  doc.Set("lost_results",
          Json::Number(static_cast<double>(stats.lost_results)));
  doc.Set("worker_failures",
          Json::Number(static_cast<double>(stats.worker_failures)));
  doc.Set("chaos_seed", Json::Number(static_cast<double>(chaos_seed)));
  doc.Set("chaos_prob", Json::Number(chaos_prob));
  doc.Set("autoheal", Json::Bool(autoheal));
  doc.Set("ping_failures",
          Json::Number(static_cast<double>(ping_failures)));
  doc.Set("auto_restarts",
          Json::Number(static_cast<double>(stats.auto_restarts)));
  doc.Set("probes", Json::Number(static_cast<double>(stats.probes)));
  doc.Set("probe_failures",
          Json::Number(static_cast<double>(stats.probe_failures)));
  doc.Set("recoveries", Json::Number(static_cast<double>(stats.recoveries)));
  doc.Set("adopted_workers",
          Json::Number(static_cast<double>(stats.adopted_workers)));
  doc.Set("fenced_workers",
          Json::Number(static_cast<double>(stats.fenced_workers)));
  Json sup_recoveries = Json::Array();
  for (double r : sup_recovery_ms) sup_recoveries.Append(Json::Number(r));
  doc.Set("supervisor_recovery_ms", std::move(sup_recoveries));
  doc.Set("supervisor_recovery_ms_mean", Json::Number(sup_recovery_mean));
  doc.Set("supervisor_recovery_ms_max", Json::Number(sup_recovery_max));
  Json chaos_doc = Json::Object();
  chaos_doc.Set("exchanges",
                Json::Number(static_cast<double>(total_chaos.exchanges)));
  chaos_doc.Set("injected",
                Json::Number(static_cast<double>(total_chaos.injected)));
  chaos_doc.Set("torn_writes",
                Json::Number(static_cast<double>(total_chaos.torn_writes)));
  chaos_doc.Set("bit_flips",
                Json::Number(static_cast<double>(total_chaos.bit_flips)));
  chaos_doc.Set("dup_frames",
                Json::Number(static_cast<double>(total_chaos.dup_frames)));
  chaos_doc.Set("delays",
                Json::Number(static_cast<double>(total_chaos.delays)));
  chaos_doc.Set("resets",
                Json::Number(static_cast<double>(total_chaos.resets)));
  doc.Set("chaos", std::move(chaos_doc));
  const std::string dumped = doc.Dump();

  // Schema self-check: parse the emitted document back and require the
  // fields downstream dashboards key on.
  auto parsed = Json::Parse(dumped);
  if (!parsed.ok() || !parsed->is_object()) {
    std::fprintf(stderr,
                 "BENCH_rpc.json self-check: emitted JSON does not parse\n");
    return 1;
  }
  const char* required[] = {"ping_us",        "tick_ms",
                            "recovery_ms",    "recovery_ms_mean",
                            "kills",          "restarts",
                            "auto_restarts",  "recoveries",
                            "adopted_workers", "fenced_workers",
                            "supervisor_recovery_ms",
                            "supervisor_recovery_ms_mean",
                            "chaos"};
  for (const char* field : required) {
    if (parsed->Get(field) == nullptr) {
      std::fprintf(stderr, "BENCH_rpc.json self-check: missing field %s\n",
                   field);
      return 1;
    }
  }
  for (const char* nested : {"p50", "p90", "p99"}) {
    if (parsed->Get("ping_us")->Get(nested) == nullptr ||
        parsed->Get("tick_ms")->Get(nested) == nullptr) {
      std::fprintf(stderr,
                   "BENCH_rpc.json self-check: missing percentile %s\n",
                   nested);
      return 1;
    }
  }
  for (const char* kind : {"exchanges", "injected", "torn_writes",
                           "bit_flips", "dup_frames", "delays", "resets"}) {
    if (parsed->Get("chaos")->Get(kind) == nullptr) {
      std::fprintf(stderr,
                   "BENCH_rpc.json self-check: missing chaos counter %s\n",
                   kind);
      return 1;
    }
  }
  if (stats.kills != kills_issued) {
    std::fprintf(stderr, "chaos under-delivered: %lld of %d kills\n",
                 stats.kills, kills_issued);
    return 1;
  }
  if (sup_crashes > 0 &&
      static_cast<int>(sup_recovery_ms.size()) != sup_crashes) {
    std::fprintf(stderr,
                 "supervisor chaos under-delivered: %zu of %d crash cycles\n",
                 sup_recovery_ms.size(), sup_crashes);
    return 1;
  }
  if (chaos_seed != 0 && total_chaos.injected == 0) {
    std::fprintf(stderr, "chaos enabled but zero faults injected\n");
    return 1;
  }

  {
    std::ofstream out(out_path, std::ios::trunc);
    out << dumped << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s\n", out_path.c_str());
  std::filesystem::remove_all(sockdir, ec);
  return 0;
}
