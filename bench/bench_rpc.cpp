// RPC soak benchmark for the multi-process tuning service (DESIGN.md §9).
//
// Spawns a real control plane + sparktune_shardd worker fleet over
// Unix-domain sockets and measures the three numbers that matter for the
// process model:
//
//   * ping latency — one kPing frame exchange per sample, the floor cost
//     of the framed protocol (encode + CRC + write + read + decode);
//   * tick latency — one pipelined kExecute fan-out over every shard,
//     i.e. the per-period control-plane overhead the paper's §6.2
//     scheduling tick pays for process isolation;
//   * recovery time — SIGKILL a worker mid-soak, then time RestartShard
//     end to end: respawn, reconnect, reconfigure, repository load, and
//     per-task restore + deterministic gap replay.
//
// Emits BENCH_rpc.json with latency percentiles and per-cycle recovery
// times, self-checked against the schema before writing (a silent field
// drift is a bench bug, not a consumer problem).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "service/process_supervisor.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  // lint:allow(no-wall-clock) benchmark wall-time reporting only; never feeds tuner results
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Linear-interpolated percentile; `v` is consumed (sorted in place).
double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const double rank = p * static_cast<double>(v->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*v)[lo] * (1.0 - frac) + (*v)[hi] * frac;
}

Json PercentileSummary(std::vector<double> samples) {
  Json j = Json::Object();
  j.Set("p50", Json::Number(Percentile(&samples, 0.50)));
  j.Set("p90", Json::Number(Percentile(&samples, 0.90)));
  j.Set("p99", Json::Number(Percentile(&samples, 0.99)));
  j.Set("max", Json::Number(samples.empty() ? 0.0 : samples.back()));
  j.Set("samples", Json::Number(static_cast<double>(samples.size())));
  return j;
}

const char* kWorkloads[] = {"WordCount", "Sort", "TeraSort", "Join",
                            "PageRank", "Aggregation", "Scan", "Bayes"};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string shardd = flags.Str("shardd", SPARKTUNE_SHARDD_PATH);
  const int shards = flags.Int("shards", 2);
  const int tasks = flags.Int("tasks", 8);
  const int ticks = flags.Int("ticks", 30);
  const int pings = flags.Int("pings", 500);
  const int kills = flags.Int("kills", 3);
  const int budget = flags.Int("budget", 5);
  const int threads = flags.Threads(1);
  const bool with_repo = flags.Bool("repo", true);
  std::string sockdir = flags.Str("sockdir", "");
  const std::string out_path = flags.Out("BENCH_rpc.json");
  if (!flags.Validate()) return 1;
  if (sockdir.empty()) {
    sockdir = StrFormat("/tmp/sparktune-bench-rpc-%d",
                        static_cast<int>(getpid()));
  }
  std::error_code ec;
  std::filesystem::remove_all(sockdir, ec);
  std::filesystem::create_directories(sockdir, ec);

  ProcessSupervisorOptions options;
  options.shardd_path = shardd;
  options.socket_dir = sockdir;
  options.num_shards = shards;
  options.service.budget = budget;
  options.service.ei_stop_threshold = 0.0;
  options.service.expert_ranking = true;
  options.service.num_threads = threads;
  if (with_repo) {
    options.service.repository_dir = sockdir + "/repo";
    options.service.auto_checkpoint_periods = 2;
    options.service.checkpoint_on_phase_change = true;
  }

  ProcessSupervisor supervisor(options);
  if (Status st = supervisor.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  for (int i = 0; i < tasks; ++i) {
    SimTaskSpec spec;
    spec.workload = kWorkloads[i % (sizeof(kWorkloads) / sizeof(char*))];
    spec.seed = 77000 + static_cast<uint64_t>(i);
    if (Status st = supervisor.RegisterTask(
            StrFormat("rpc-bench-%d", i), spec);
        !st.ok()) {
      std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Ping soak: the minimal full exchange, round-robined over the shards.
  std::vector<double> ping_us;
  ping_us.reserve(static_cast<size_t>(pings));
  for (int i = 0; i < pings; ++i) {
    // lint:allow(no-wall-clock) benchmark timing, as above
    const Clock::time_point start = Clock::now();
    if (Status st = supervisor.Ping(i % shards); !st.ok()) {
      std::fprintf(stderr, "ping: %s\n", st.ToString().c_str());
      return 1;
    }
    ping_us.push_back(ElapsedMs(start) * 1000.0);
  }

  // Tick soak with chaos cycles spread through it: SIGKILL the busiest
  // shard, let its tasks park for one tick, then time the full recovery.
  std::vector<double> tick_ms;
  std::vector<double> recovery_ms;
  tick_ms.reserve(static_cast<size_t>(ticks));
  const int kill_every = kills > 0 ? std::max(2, ticks / (kills + 1)) : 0;
  int killed = -1;
  for (int t = 1; t <= ticks; ++t) {
    if (killed >= 0) {
      // lint:allow(no-wall-clock) benchmark timing, as above
      const Clock::time_point start = Clock::now();
      if (Status st = supervisor.RestartShard(killed); !st.ok()) {
        std::fprintf(stderr, "restart: %s\n", st.ToString().c_str());
        return 1;
      }
      recovery_ms.push_back(ElapsedMs(start));
      killed = -1;
    } else if (kill_every > 0 && t % kill_every == 0 &&
               static_cast<int>(recovery_ms.size()) < kills) {
      std::vector<int> load(static_cast<size_t>(shards), 0);
      for (const std::string& id : supervisor.task_ids()) {
        ++load[supervisor.shard_of(id)];
      }
      killed = 0;
      for (int s = 1; s < shards; ++s) {
        if (load[s] > load[killed]) killed = s;
      }
      if (Status st = supervisor.KillShard(killed); !st.ok()) {
        std::fprintf(stderr, "kill: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    // lint:allow(no-wall-clock) benchmark timing, as above
    const Clock::time_point start = Clock::now();
    (void)supervisor.Tick();
    tick_ms.push_back(ElapsedMs(start));
  }
  if (killed >= 0) {  // soak ended mid-cycle; recover before shutdown
    // lint:allow(no-wall-clock) benchmark timing, as above
    const Clock::time_point start = Clock::now();
    if (Status st = supervisor.RestartShard(killed); !st.ok()) {
      std::fprintf(stderr, "restart: %s\n", st.ToString().c_str());
      return 1;
    }
    recovery_ms.push_back(ElapsedMs(start));
  }

  (void)supervisor.CheckpointAll();
  (void)supervisor.HarvestDirty();
  const ProcessSupervisorStats stats = supervisor.stats();
  if (Status st = supervisor.Shutdown(); !st.ok()) {
    std::fprintf(stderr, "shutdown: %s\n", st.ToString().c_str());
    return 1;
  }

  Json ping_summary = PercentileSummary(ping_us);
  Json tick_summary = PercentileSummary(tick_ms);
  double recovery_mean = 0.0, recovery_max = 0.0;
  for (double r : recovery_ms) {
    recovery_mean += r;
    recovery_max = std::max(recovery_max, r);
  }
  if (!recovery_ms.empty()) {
    recovery_mean /= static_cast<double>(recovery_ms.size());
  }
  std::printf(
      "ping us  p50 %.1f  p90 %.1f  p99 %.1f  (%d samples)\n"
      "tick ms  p50 %.2f  p90 %.2f  p99 %.2f  (%d ticks, %d tasks, "
      "%d shards)\n"
      "recovery ms  mean %.1f  max %.1f  (%zu SIGKILL cycles, %lld tasks "
      "restored, %lld replayed periods, %lld parked slots)\n",
      ping_summary.GetNumberOr("p50", 0), ping_summary.GetNumberOr("p90", 0),
      ping_summary.GetNumberOr("p99", 0), pings,
      tick_summary.GetNumberOr("p50", 0), tick_summary.GetNumberOr("p90", 0),
      tick_summary.GetNumberOr("p99", 0), ticks, tasks, shards,
      recovery_mean, recovery_max, recovery_ms.size(), stats.restored_tasks,
      stats.replayed_periods, stats.parked_slots);

  Json doc = Json::Object();
  doc.Set("bench", Json::Str("rpc"));
  doc.Set("shards", Json::Number(static_cast<double>(shards)));
  doc.Set("tasks", Json::Number(static_cast<double>(tasks)));
  doc.Set("ticks", Json::Number(static_cast<double>(ticks)));
  doc.Set("threads", Json::Number(static_cast<double>(threads)));
  doc.Set("with_repo", Json::Bool(with_repo));
  doc.Set("ping_us", std::move(ping_summary));
  doc.Set("tick_ms", std::move(tick_summary));
  Json recoveries = Json::Array();
  for (double r : recovery_ms) recoveries.Append(Json::Number(r));
  doc.Set("recovery_ms", std::move(recoveries));
  doc.Set("recovery_ms_mean", Json::Number(recovery_mean));
  doc.Set("recovery_ms_max", Json::Number(recovery_max));
  doc.Set("kills", Json::Number(static_cast<double>(stats.kills)));
  doc.Set("restarts", Json::Number(static_cast<double>(stats.restarts)));
  doc.Set("restored_tasks",
          Json::Number(static_cast<double>(stats.restored_tasks)));
  doc.Set("fresh_replays",
          Json::Number(static_cast<double>(stats.fresh_replays)));
  doc.Set("replayed_periods",
          Json::Number(static_cast<double>(stats.replayed_periods)));
  doc.Set("parked_slots",
          Json::Number(static_cast<double>(stats.parked_slots)));
  doc.Set("lost_results",
          Json::Number(static_cast<double>(stats.lost_results)));
  doc.Set("worker_failures",
          Json::Number(static_cast<double>(stats.worker_failures)));
  const std::string dumped = doc.Dump();

  // Schema self-check: parse the emitted document back and require the
  // fields downstream dashboards key on.
  auto parsed = Json::Parse(dumped);
  if (!parsed.ok() || !parsed->is_object()) {
    std::fprintf(stderr,
                 "BENCH_rpc.json self-check: emitted JSON does not parse\n");
    return 1;
  }
  const char* required[] = {"ping_us", "tick_ms", "recovery_ms",
                            "recovery_ms_mean", "kills", "restarts"};
  for (const char* field : required) {
    if (parsed->Get(field) == nullptr) {
      std::fprintf(stderr, "BENCH_rpc.json self-check: missing field %s\n",
                   field);
      return 1;
    }
  }
  for (const char* nested : {"p50", "p90", "p99"}) {
    if (parsed->Get("ping_us")->Get(nested) == nullptr ||
        parsed->Get("tick_ms")->Get(nested) == nullptr) {
      std::fprintf(stderr,
                   "BENCH_rpc.json self-check: missing percentile %s\n",
                   nested);
      return 1;
    }
  }
  if (kills > 0 && stats.kills != kills) {
    std::fprintf(stderr, "chaos under-delivered: %lld of %d kills\n",
                 stats.kills, kills);
    return 1;
  }

  {
    std::ofstream out(out_path, std::ios::trunc);
    out << dumped << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s\n", out_path.c_str());
  std::filesystem::remove_all(sockdir, ec);
  return 0;
}
