// E12: google-benchmark micro-benchmarks for the core computational
// kernels — GP fit/predict scaling, acquisition optimization, one simulated
// Spark execution, fANOVA decomposition, meta-feature extraction and the
// similarity regressor.
#include <benchmark/benchmark.h>

#include "bo/acq_optimizer.h"
#include "bo/acquisition.h"
#include "common/rng.h"
#include "fanova/fanova.h"
#include "forest/gbdt.h"
#include "meta/meta_features.h"
#include "model/features.h"
#include "model/gp.h"
#include "sparksim/hibench.h"
#include "sparksim/runtime_model.h"

namespace sparktune {
namespace {

std::vector<std::vector<double>> RandomRows(int n, int dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> x;
  x.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<size_t>(dims));
    for (auto& v : row) v = rng.Uniform();
    x.push_back(std::move(row));
  }
  return x;
}

std::vector<double> Targets(const std::vector<std::vector<double>>& x) {
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& row : x) {
    double acc = 0.0;
    for (size_t d = 0; d < row.size(); ++d) acc += (d + 1) * row[d] * row[d];
    y.push_back(acc);
  }
  return y;
}

void BM_GpFit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto x = RandomRows(n, 31, 1);
  auto y = Targets(x);
  std::vector<FeatureKind> schema(31, FeatureKind::kNumeric);
  for (auto _ : state) {
    GaussianProcess gp(schema);
    benchmark::DoNotOptimize(gp.Fit(x, y));
  }
}
BENCHMARK(BM_GpFit)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_GpPredict(benchmark::State& state) {
  auto x = RandomRows(40, 31, 2);
  auto y = Targets(x);
  std::vector<FeatureKind> schema(31, FeatureKind::kNumeric);
  GaussianProcess gp(schema);
  (void)gp.Fit(x, y);
  auto q = RandomRows(1, 31, 3)[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.Predict(q));
  }
}
BENCHMARK(BM_GpPredict);

void BM_AcquisitionMaximize(benchmark::State& state) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  auto schema = BuildFeatureSchema(space, 0);
  auto configs = RandomRows(25, static_cast<int>(space.size()), 4);
  auto y = Targets(configs);
  GaussianProcess gp(schema);
  (void)gp.Fit(configs, y);
  EicAcquisition acq(&gp, y[0]);
  Subspace full = Subspace::Full(&space);
  AcquisitionOptimizer opt;
  Rng rng(5);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt.Maximize(full, encode, acq, nullptr, nullptr, nullptr, &rng));
  }
}
BENCHMARK(BM_AcquisitionMaximize);

void BM_SimulatorExecute(benchmark::State& state) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  SparkSimulator sim(cluster);
  auto w = HiBenchTask("TeraSort");
  SparkConf conf = DecodeSparkConf(space, space.Default());
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Execute(*w, conf, w->input_gb, seed++));
  }
}
BENCHMARK(BM_SimulatorExecute);

void BM_Fanova30d(benchmark::State& state) {
  auto x = RandomRows(60, 30, 6);
  auto y = Targets(x);
  FanovaOptions opts;
  opts.compute_pairwise = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fanova::Analyze(x, y, opts));
  }
}
BENCHMARK(BM_Fanova30d);

void BM_MetaFeatureExtraction(benchmark::State& state) {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  SparkSimulator sim(cluster);
  auto w = HiBenchTask("PageRank");
  SparkConf conf = DecodeSparkConf(space, space.Default());
  EventLog log = sim.Execute(*w, conf, w->input_gb, 7).event_log;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractMetaFeatures(log));
  }
}
BENCHMARK(BM_MetaFeatureExtraction);

void BM_GbdtFit(benchmark::State& state) {
  auto x = RandomRows(200, 75 * 3, 8);
  auto y = Targets(x);
  for (auto _ : state) {
    GbdtRegressor gbdt;
    benchmark::DoNotOptimize(gbdt.Fit(x, y));
  }
}
BENCHMARK(BM_GbdtFit);

}  // namespace
}  // namespace sparktune

BENCHMARK_MAIN();
