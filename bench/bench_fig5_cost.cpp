// E5 / Figure 5: execution-cost reduction of each method relative to random
// search on the six headline HiBench tasks. Objective = cost (beta = 0.5),
// 30 iterations, runtime constraint = 2x default runtime.
//
// Paper reference: ours reduces cost by 71.22-88.97% relative to random
// search and by 38.43% / 45.20% on average vs Tuneful / LOCAT.
#include <cmath>
#include <memory>

#include "baselines/cherrypick.h"
#include "baselines/dac.h"
#include "baselines/locat.h"
#include "baselines/ours.h"
#include "baselines/random_search.h"
#include "baselines/rfhoc.h"
#include "baselines/tuneful.h"
#include "bench_util.h"

using namespace sparktune;
using namespace sparktune::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 30);
  const int seeds = flags.Int("seeds", 8);
  if (!flags.Validate()) return 1;

  std::vector<std::unique_ptr<TuningMethod>> methods;
  methods.push_back(std::make_unique<RandomSearch>());
  methods.push_back(std::make_unique<Rfhoc>());
  methods.push_back(std::make_unique<Dac>());
  methods.push_back(std::make_unique<CherryPick>());
  methods.push_back(std::make_unique<Tuneful>());
  methods.push_back(std::make_unique<Locat>());
  methods.push_back(std::make_unique<OursMethod>());

  std::vector<std::string> header = {"Task"};
  for (const auto& m : methods) header.push_back(m->name());
  TablePrinter table(header);

  std::vector<double> totals(methods.size(), 0.0);
  auto tasks = HeadlineHiBenchTasks();
  for (const auto& workload : tasks) {
    TaskEnv env(workload.name);
    // Geometric mean of per-seed best costs (ratio statistics).
    std::vector<double> log_best(methods.size(), 0.0);
    for (int s = 0; s < seeds; ++s) {
      uint64_t seed = 2000 + static_cast<uint64_t>(s);
      TuningObjective obj = env.ObjectiveWithConstraints(/*beta=*/0.5, seed);
      for (size_t m = 0; m < methods.size(); ++m) {
        RunHistory h = RunMethod(methods[m].get(), env, obj, budget, seed);
        double best = BestOf(h);
        if (!std::isfinite(best)) {
          best = h.at(0).objective;
          for (const auto& o : h.observations()) {
            best = std::min(best, o.objective);
          }
        }
        log_best[m] += std::log(best) / seeds;
      }
    }
    std::vector<std::string> row = {workload.name};
    for (size_t m = 0; m < methods.size(); ++m) {
      double reduction = 1.0 - std::exp(log_best[m] - log_best[0]);
      totals[m] += reduction / tasks.size();
      row.push_back(Pct(reduction));
    }
    table.AddRow(row);
  }
  std::vector<std::string> avg = {"Average"};
  for (double t : totals) avg.push_back(Pct(t));
  table.AddRow(avg);

  std::printf("Figure 5: execution-cost reduction relative to random search "
              "(cost objective beta=0.5, %d iterations, %d seeds)\n%s",
              budget, seeds, table.ToString().c_str());
  return 0;
}
