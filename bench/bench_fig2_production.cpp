// E1 / Figure 2: large-scale production tuning. A synthetic fleet of
// periodic tasks (scaled stand-in for the paper's 25K Tencent tasks; use
// --tasks=25000 for full scale) is tuned for 20 iterations each with
// objective = cost (beta = 0.5) and constraints = 2x the manual metrics.
//
// Tasks flow through the TuningService exactly like the paper's deployment:
// each finished task is harvested into the knowledge base, so later tasks
// warm-start from similar earlier ones ("our warm-starting technique with
// meta-learning used in the first 3 iterations leads to a huge
// improvement", §6.2). ETL and SQL tasks run on different cluster shapes
// and therefore through separate service instances.
//
// Outputs:
//   (a) histogram of per-task memory-usage reduction vs manual,
//   (b) histogram of per-task CPU-usage reduction vs manual,
//   (c) average execution-cost reduction of the best config per iteration.
//
// Paper reference: 57.00% average memory and 34.93% CPU reduction; 66.49%
// of tasks above 50% memory reduction; 64.70% above 25% CPU reduction;
// 52.44% objective reduction within 9 iterations.
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "service/tuning_service.h"
#include "sparksim/production.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

struct TaskResult {
  double mem_reduction = 0.0;
  double cpu_reduction = 0.0;
  std::vector<double> cost_reduction_per_iter;  // best-so-far vs manual
};

// Evaluate a config on a fixed execution (drift index 0, fixed seed) so
// manual and tuned configs face identical input data.
JobEvaluator::Outcome EvalOnce(const ProductionTask& task,
                               const ConfigSpace& space,
                               const Configuration& config, uint64_t seed) {
  SimulatorEvaluatorOptions opts;
  opts.seed = seed;
  SimulatorEvaluator eval(&space, task.workload, task.cluster,
                          DriftModel::None(), opts);
  return eval.Run(config);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int num_tasks = flags.Int("tasks", 300);
  const int budget = flags.Int("budget", 20);
  const bool enable_meta = flags.Int("meta", 1) != 0;
  if (!flags.Validate()) return 1;

  ProductionFleetOptions fleet_opts;
  fleet_opts.num_tasks = num_tasks;
  auto fleet = GenerateProductionFleet(fleet_opts, 20230706);

  // One service per cluster shape (shared ConfigSpace requirement).
  ConfigSpace etl_space = BuildSparkSpace(ClusterSpec::ProductionGroup());
  ConfigSpace sql_space = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  TuningServiceOptions sopts;
  sopts.tuner.budget = budget;
  sopts.tuner.ei_stop_threshold = 0.0;  // full budget, like the paper
  sopts.tuner.advisor.objective.beta = 0.5;
  sopts.tuner.advisor.expert_ranking = ExpertParameterRanking();
  sopts.enable_meta = enable_meta;
  sopts.min_tasks_for_transfer = 3;
  TuningService etl_service(&etl_space, sopts);
  TuningService sql_service(&sql_space, sopts);

  std::vector<std::unique_ptr<SimulatorEvaluator>> evaluators;
  std::vector<TaskResult> results;
  results.reserve(fleet.size());
  int failed_tasks = 0;

  for (size_t t = 0; t < fleet.size(); ++t) {
    const ProductionTask& task = fleet[t];
    bool is_sql = task.workload.is_sql;
    TuningService& service = is_sql ? sql_service : etl_service;
    ConfigSpace& space = is_sql ? sql_space : etl_space;

    SimulatorEvaluatorOptions eopts;
    eopts.seed = 97 + t;
    eopts.period_hours = task.period_hours;
    evaluators.push_back(std::make_unique<SimulatorEvaluator>(
        &space, task.workload, task.cluster, task.drift, eopts));

    TunerOptions per_task = sopts.tuner;
    per_task.advisor.seed = 7 * t + 13;
    if (!service
             .RegisterTask(task.id, evaluators.back().get(),
                           task.manual_config, per_task)
             .ok()) {
      ++failed_tasks;
      continue;
    }

    auto baseline = service.ExecutePeriodic(task.id);  // manual run
    if (!baseline.ok()) {
      ++failed_tasks;
      continue;
    }
    TaskResult res;
    double best_cost = baseline->objective;
    for (int i = 0; i < budget; ++i) {
      (void)service.ExecutePeriodic(task.id);
      best_cost =
          std::min(best_cost, service.tuner(task.id)->BestObjective());
      res.cost_reduction_per_iter.push_back(
          1.0 - best_cost / baseline->objective);
    }
    // Feed the finished task into the knowledge base for later tasks.
    if (enable_meta) (void)service.HarvestTask(task.id);

    // Head-to-head usage comparison on identical input data.
    auto manual = EvalOnce(task, space, task.manual_config, 777 + t);
    auto tuned =
        EvalOnce(task, space, service.tuner(task.id)->BestConfig(), 777 + t);
    if (manual.memory_gb_hours <= 0.0 || manual.cpu_core_hours <= 0.0 ||
        tuned.failed()) {
      ++failed_tasks;
      continue;
    }
    res.mem_reduction = 1.0 - tuned.memory_gb_hours / manual.memory_gb_hours;
    res.cpu_reduction = 1.0 - tuned.cpu_core_hours / manual.cpu_core_hours;
    results.push_back(std::move(res));
  }

  // ---- (a)/(b) histograms ----
  auto histogram = [&](auto metric, const char* label) {
    const char* buckets[] = {"< 0%", "0-25%", "25-50%", "50-75%", "75-100%"};
    std::vector<int> counts(5, 0);
    double total = 0.0;
    for (const auto& r : results) {
      double v = metric(r);
      total += v;
      int b = v < 0.0 ? 0 : std::min(4, 1 + static_cast<int>(v * 4.0));
      ++counts[static_cast<size_t>(b)];
    }
    TablePrinter table({"Reduction bucket", "#tasks", "share"});
    for (int i = 0; i < 5; ++i) {
      table.AddRow({buckets[i], StrFormat("%d", counts[i]),
                    Pct(static_cast<double>(counts[i]) / results.size())});
    }
    std::printf("Figure 2(%s): %s reduction vs manual (avg %s)\n%s\n",
                label[0] == 'm' ? "a" : "b", label,
                Pct(total / results.size()).c_str(),
                table.ToString().c_str());
    return total / results.size();
  };
  double avg_mem =
      histogram([](const TaskResult& r) { return r.mem_reduction; },
                "memory usage");
  double avg_cpu =
      histogram([](const TaskResult& r) { return r.cpu_reduction; },
                "CPU usage");

  // Share of tasks above the paper's headline thresholds.
  int mem50 = 0, cpu25 = 0;
  for (const auto& r : results) {
    mem50 += r.mem_reduction > 0.50;
    cpu25 += r.cpu_reduction > 0.25;
  }
  std::printf("Tasks with >50%% memory reduction: %s (paper: 66.49%%)\n",
              Pct(static_cast<double>(mem50) / results.size()).c_str());
  std::printf("Tasks with >25%% CPU reduction:    %s (paper: 64.70%%)\n\n",
              Pct(static_cast<double>(cpu25) / results.size()).c_str());

  // ---- (c) objective-reduction curve ----
  TablePrinter curve({"Iteration", "Avg cost reduction of best config"});
  for (int i = 0; i < budget; ++i) {
    double sum = 0.0;
    for (const auto& r : results) {
      sum += r.cost_reduction_per_iter[static_cast<size_t>(i)];
    }
    curve.AddRow({StrFormat("%d", i + 1), Pct(sum / results.size())});
  }
  std::printf("Figure 2(c): average execution-cost reduction vs manual "
              "(paper: 52.44%% within 9 iterations)\n%s\n",
              curve.ToString().c_str());
  std::printf("Fleet: %d tasks tuned (%d skipped), meta transfer %s, "
              "knowledge base: %zu ETL + %zu SQL tasks, "
              "avg memory reduction %s (paper 57.00%%), "
              "avg CPU reduction %s (paper 34.93%%)\n",
              static_cast<int>(results.size()), failed_tasks,
              enable_meta ? "on" : "off", etl_service.knowledge_base().size(),
              sql_service.knowledge_base().size(), Pct(avg_mem).c_str(),
              Pct(avg_cpu).c_str());
  return 0;
}
