// Hot-kernel microbenchmarks with built-in bit-equality self-checks: each
// kernel the single-node speed push optimized (panelled upper solve,
// register-tiled SYRK factorization, columnar MixedKernel batch rows,
// parallel meta-feature extraction) is timed against its naive reference
// loop and verified bit-for-bit against it — the determinism invariant is
// part of the benchmark contract, not a separate test.
//
// Outputs a table and BENCH_kernels.json (schema self-checked before the
// write, like BENCH_fleet.json).
//
// Flags: --n=N (matrix order / training rows, default 512), --m=N
// (right-hand-side columns / probe count, default 256), --logs=N (event
// logs for the meta-extraction kernel, default 256), --reps=N (timing
// repetitions, best-of, default 3), --threads=N (parallel kernels'
// width, default 4), --out=PATH, --min_speedup=X.Y (exit 1 if any
// kernel's speedup lands below X.Y; 0 disables), --self_check=1 (tiny
// ragged sizes, one rep, no speedup gate — the CI mode: only the
// bit-equality verdict matters).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "meta/meta_features.h"
#include "model/kernel.h"
#include "sparksim/event_log.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

template <typename F>
double TimeMs(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    // lint:allow(no-wall-clock) benchmark wall-time reporting only; never feeds tuner results
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();  // lint:allow(no-wall-clock) benchmark timing, as above
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// Prevents the optimizer from discarding untimed results.
// lint:allow(mutable-static) single-threaded benchmark driver's dead-code sink
double g_sink = 0.0;

struct KernelRow {
  const char* name;
  double naive_ms = 0.0;
  double fast_ms = 0.0;
  bool bit_identical = true;
  double speedup() const {
    return fast_ms > 0.0 ? naive_ms / fast_ms : 0.0;
  }
};

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) a(r, c) = rng->Normal();
  }
  Matrix spd = a.MatMul(a.Transpose());
  spd.AddDiagonal(static_cast<double>(n));
  return spd;
}

// The documented reference loops the optimized kernels must reproduce
// bit-for-bit (cholesky.h): ascending k for the factorization, strictly
// descending k for the back substitution.
bool NaiveFactor(const Matrix& a, Matrix* l) {
  size_t n = a.rows();
  *l = Matrix(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (size_t k = 0; k < j; ++k) d -= (*l)(j, k) * (*l)(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    (*l)(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= (*l)(i, k) * (*l)(j, k);
      (*l)(i, j) = s / (*l)(j, j);
    }
  }
  return true;
}

Matrix NaiveUpperSolve(const Matrix& l, const Matrix& y) {
  const size_t n = l.rows();
  const size_t m = y.cols();
  Matrix x(n, m, 0.0);
  for (size_t c = 0; c < m; ++c) {
    for (size_t ii = n; ii-- > 0;) {
      double sum = y(ii, c);
      for (size_t k = n; k-- > ii + 1;) sum -= l(k, ii) * x(k, c);
      x(ii, c) = sum / l(ii, ii);
    }
  }
  return x;
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      if (a(r, c) != b(r, c)) return false;
    }
  }
  return true;
}

KernelRow BenchUpperSolve(size_t n, size_t m, int threads, int reps) {
  KernelRow row{"upper_solve"};
  Rng rng(2023);
  Matrix a = RandomSpd(n, &rng);
  auto chol = Cholesky::Factor(a, 1e-10, 1e-2, threads);
  if (!chol.ok()) {
    row.bit_identical = false;
    return row;
  }
  Matrix y(n, m);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < m; ++c) y(r, c) = rng.Normal();
  }
  Matrix naive, fast;
  row.naive_ms = TimeMs(reps, [&] {
    naive = NaiveUpperSolve(chol->lower(), y);
    g_sink += naive(0, 0);
  });
  row.fast_ms = TimeMs(reps, [&] {
    fast = chol->SolveUpperMatrix(y, threads);
    g_sink += fast(0, 0);
  });
  row.bit_identical = BitEqual(naive, fast);
  return row;
}

KernelRow BenchSyrkFactor(size_t n, int threads, int reps) {
  KernelRow row{"syrk_factor"};
  Rng rng(7177);
  Matrix a = RandomSpd(n, &rng);
  Matrix naive;
  bool naive_ok = true;
  row.naive_ms = TimeMs(reps, [&] {
    naive_ok = NaiveFactor(a, &naive);
    g_sink += naive(0, 0);
  });
  bool fast_ok = true;
  Matrix fast;
  row.fast_ms = TimeMs(reps, [&] {
    auto chol = Cholesky::Factor(a, 1e-10, 1e-2, threads);
    fast_ok = chol.ok() && chol->applied_jitter() == 0.0;
    if (fast_ok) fast = chol->lower();
    g_sink += fast(0, 0);
  });
  row.bit_identical = naive_ok && fast_ok && BitEqual(naive, fast);
  return row;
}

std::vector<std::vector<double>> MakeMixedRows(
    const std::vector<FeatureKind>& schema, size_t count, Rng* rng) {
  std::vector<std::vector<double>> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> r(schema.size());
    for (size_t f = 0; f < schema.size(); ++f) {
      r[f] = schema[f] == FeatureKind::kCategorical
                 ? (rng->Bernoulli(0.5) ? 1.0 : 0.0)
                 : rng->Uniform();
    }
    rows.push_back(std::move(r));
  }
  return rows;
}

KernelRow BenchKernelBatch(size_t n, size_t m, int reps) {
  KernelRow row{"kernel_batch"};
  const std::vector<FeatureKind> schema = {
      FeatureKind::kNumeric,     FeatureKind::kNumeric,
      FeatureKind::kNumeric,     FeatureKind::kNumeric,
      FeatureKind::kNumeric,     FeatureKind::kNumeric,
      FeatureKind::kCategorical, FeatureKind::kCategorical,
      FeatureKind::kCategorical, FeatureKind::kDataSize};
  MixedKernel kernel(schema);
  Rng rng(4242);
  auto train = MakeMixedRows(schema, n, &rng);
  auto probes = MakeMixedRows(schema, m, &rng);
  std::vector<double> by_row(n * m), columnar(n * m);
  row.naive_ms = TimeMs(reps, [&] {
    for (size_t i = 0; i < n; ++i) {
      kernel.EvalRow(train[i], probes, by_row.data() + i * m);
    }
    g_sink += by_row[0];
  });
  row.fast_ms = TimeMs(reps, [&] {
    const MixedKernel::ProbeColumns cols = kernel.PackProbes(probes);
    MixedKernel::ColumnarScratch scratch;
    for (size_t i = 0; i < n; ++i) {
      kernel.EvalRowColumnar(train[i], cols, &scratch,
                             columnar.data() + i * m);
    }
    g_sink += columnar[0];
  });
  row.bit_identical = by_row == columnar;
  return row;
}

TaskMetricSummary RandomSummary(Rng* rng) {
  TaskMetricSummary s;
  s.mean = rng->Uniform() * 10.0;
  s.stddev = rng->Uniform();
  s.min = s.mean * 0.5;
  s.max = s.mean * 2.0;
  s.p50 = s.mean;
  s.p90 = s.mean * 1.5;
  s.skewness = rng->Uniform();
  s.total = s.mean * 100.0;
  return s;
}

EventLog MakeLog(Rng* rng) {
  EventLog log;
  log.app_name = "bench";
  log.is_sql = rng->Bernoulli(0.3);
  log.data_size_gb = 1.0 + rng->Uniform() * 10.0;
  const int stages = 4 + static_cast<int>(rng->Uniform() * 8.0);
  for (int s = 0; s < stages; ++s) {
    StageLog st;
    st.name = "stage";
    st.op = s % 2 == 0 ? StageOp::kMap : StageOp::kReduceByKey;
    st.num_tasks = 16 + static_cast<int>(rng->Uniform() * 200.0);
    st.iterations = 1;
    st.duration_sec = rng->Uniform() * 60.0;
    st.input_mb = rng->Uniform() * 4096.0;
    st.output_mb = rng->Uniform() * 4096.0;
    st.shuffle_read_mb = rng->Uniform() * 1024.0;
    st.shuffle_write_mb = rng->Uniform() * 1024.0;
    st.spill_mb = rng->Uniform() * 128.0;
    st.task_duration_sec = RandomSummary(rng);
    st.task_gc_sec = RandomSummary(rng);
    st.task_shuffle_read_mb = RandomSummary(rng);
    st.task_shuffle_write_mb = RandomSummary(rng);
    st.task_spill_mb = RandomSummary(rng);
    st.task_cpu_fraction = RandomSummary(rng);
    st.task_io_fraction = RandomSummary(rng);
    log.stages.push_back(std::move(st));
  }
  return log;
}

KernelRow BenchMetaExtract(size_t num_logs, int threads, int reps) {
  KernelRow row{"meta_extract"};
  Rng rng(9009);
  std::vector<EventLog> logs;
  logs.reserve(num_logs);
  for (size_t i = 0; i < num_logs; ++i) logs.push_back(MakeLog(&rng));
  std::vector<std::vector<double>> serial(num_logs), parallel(num_logs);
  row.naive_ms = TimeMs(reps, [&] {
    for (size_t i = 0; i < num_logs; ++i) {
      serial[i] = ExtractMetaFeatures(logs[i]);
    }
    g_sink += serial[0][0];
  });
  row.fast_ms = TimeMs(reps, [&] {
    ParallelFor(threads, num_logs, [&](size_t i) {
      parallel[i] = ExtractMetaFeatures(logs[i]);
    });
    g_sink += parallel[0][0];
  });
  row.bit_identical = serial == parallel;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool self_check = flags.Bool("self_check", false);
  // Self-check mode: ragged sizes (not multiples of the 48-wide panel or
  // the 8-wide register tile) exercise every remainder path; timings are
  // irrelevant, only the bit-equality verdicts gate.
  const size_t n =
      self_check ? 101 : static_cast<size_t>(flags.Int("n", 512));
  const size_t m = self_check ? 53 : static_cast<size_t>(flags.Int("m", 256));
  const size_t num_logs =
      self_check ? 17 : static_cast<size_t>(flags.Int("logs", 256));
  const int reps = self_check ? 1 : flags.Int("reps", 3);
  const int threads = flags.Threads(4);
  const double min_speedup =
      self_check ? 0.0 : flags.Int("min_speedup_x100", 0) / 100.0;
  const std::string out_path = flags.Out("BENCH_kernels.json");
  if (!flags.Validate()) return 1;

  std::vector<KernelRow> rows;
  rows.push_back(BenchUpperSolve(n, m, threads, reps));
  rows.push_back(BenchSyrkFactor(n, threads, reps));
  rows.push_back(BenchKernelBatch(n, m, reps));
  rows.push_back(BenchMetaExtract(num_logs, threads, reps));

  std::printf("bench_kernels: n=%zu m=%zu logs=%zu threads=%d reps=%d\n\n",
              n, m, num_logs, threads, reps);
  std::printf("%-14s %12s %12s %9s %14s\n", "kernel", "naive_ms", "fast_ms",
              "speedup", "bit_identical");
  bool all_identical = true;
  for (const KernelRow& r : rows) {
    all_identical = all_identical && r.bit_identical;
    std::printf("%-14s %12.3f %12.3f %8.2fx %14s\n", r.name, r.naive_ms,
                r.fast_ms, r.speedup(), r.bit_identical ? "yes" : "NO");
  }
  std::printf("\n");

  Json doc = Json::Object();
  doc.Set("bench", Json::Str("kernels"));
  doc.Set("n", Json::Number(static_cast<double>(n)));
  doc.Set("m", Json::Number(static_cast<double>(m)));
  doc.Set("logs", Json::Number(static_cast<double>(num_logs)));
  doc.Set("threads", Json::Number(static_cast<double>(threads)));
  doc.Set("reps", Json::Number(static_cast<double>(reps)));
  doc.Set("self_check", Json::Bool(self_check));
  Json kernels = Json::Array();
  for (const KernelRow& r : rows) {
    Json k = Json::Object();
    k.Set("name", Json::Str(r.name));
    k.Set("naive_ms", Json::Number(r.naive_ms));
    k.Set("fast_ms", Json::Number(r.fast_ms));
    k.Set("speedup", Json::Number(r.speedup()));
    k.Set("bit_identical", Json::Bool(r.bit_identical));
    kernels.Append(std::move(k));
  }
  doc.Set("kernels", std::move(kernels));
  doc.Set("all_bit_identical", Json::Bool(all_identical));
  std::string dumped = doc.Dump();

  // Schema self-check: the emitted document must parse back and carry the
  // fields downstream tooling keys on; silent schema drift is a bench bug.
  auto parsed = Json::Parse(dumped);
  const char* required[] = {"kernels", "n", "threads", "all_bit_identical"};
  if (!parsed.ok() || !parsed->is_object()) {
    std::fprintf(stderr,
                 "BENCH_kernels.json self-check: emitted JSON does not "
                 "parse\n");
    return 1;
  }
  for (const char* field : required) {
    if (parsed->Get(field) == nullptr) {
      std::fprintf(stderr,
                   "BENCH_kernels.json self-check: missing field %s\n",
                   field);
      return 1;
    }
  }
  {
    std::ofstream out(out_path);
    out << dumped << "\n";
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "bench_kernels: BIT MISMATCH against naive reference\n");
    return 1;
  }
  if (min_speedup > 0.0) {
    for (const KernelRow& r : rows) {
      if (r.speedup() < min_speedup) {
        std::fprintf(stderr,
                     "bench_kernels: %s speedup %.2fx below gate %.2fx\n",
                     r.name, r.speedup(), min_speedup);
        return 1;
      }
    }
  }
  return 0;
}
