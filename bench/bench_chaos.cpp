// Chaos stress harness for the sharded supervisor (DESIGN.md §7): drives
// seeded kill/restart/handoff schedules over several fault-plan seeds and
// checks, slot by slot, that every chaos trajectory — at 1 and at 4
// ExecutePeriodicAll threads — is bit-identical to an undisturbed
// single-shard run. Exits non-zero on the first divergence, so it doubles
// as a ctest smoke run and as a long-running soak under the sanitizers.
//
//   bench_chaos --ticks=40 --shards=4 --seeds=3
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "service/supervisor.h"
#include "tuner/fault_injection.h"

namespace sparktune {
namespace bench {
namespace {

namespace fs = std::filesystem;

// Owns the simulator and its fault wrapper as one evaluator, so the
// supervisor's factory can rebuild the stack from seeds on every handoff.
class ChaosEvaluator final : public JobEvaluator {
 public:
  ChaosEvaluator(std::unique_ptr<SimulatorEvaluator> inner,
                 FaultInjectionOptions fopts)
      : inner_(std::move(inner)), faulty_(inner_.get(), fopts) {}

  Outcome Run(const Configuration& config) override {
    return faulty_.Run(config);
  }
  double ResourceRate(const Configuration& config) const override {
    return faulty_.ResourceRate(config);
  }
  double NextDataSizeHintGb() const override {
    return faulty_.NextDataSizeHintGb();
  }
  double NextHours() const override { return faulty_.NextHours(); }
  void SkipExecutions(int n) override { faulty_.SkipExecutions(n); }

 private:
  std::unique_ptr<SimulatorEvaluator> inner_;
  FaultInjectingEvaluator faulty_;
};

struct Workbench {
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  std::vector<std::string> ids;
  std::vector<std::string> workloads;

  EvaluatorFactory MakeFactory(const std::string& workload, uint64_t seed) {
    const ConfigSpace* sp = &space;
    ClusterSpec cl = cluster;
    FaultInjectionOptions fopts;
    fopts.seed = seed + 1000;
    fopts.crash_prob = 0.12;
    fopts.transient_error_prob = 0.08;
    fopts.hang_prob = 0.06;
    return [sp, cl, workload, seed,
            fopts]() -> std::unique_ptr<JobEvaluator> {
      auto w = HiBenchTask(workload);
      if (!w.ok()) return nullptr;
      SimulatorEvaluatorOptions opts;
      opts.seed = seed;
      auto inner = std::make_unique<SimulatorEvaluator>(
          sp, *w, cl, DriftModel::Diurnal(), opts);
      return std::make_unique<ChaosEvaluator>(std::move(inner), fopts);
    };
  }
};

ServiceSupervisorOptions BaseOptions() {
  ServiceSupervisorOptions opts;
  opts.service.tuner.budget = 10;
  opts.service.tuner.ei_stop_threshold = 0.0;
  opts.service.tuner.advisor.expert_ranking = ExpertParameterRanking();
  opts.service.auto_checkpoint_periods = 4;
  opts.service.checkpoint_on_phase_change = true;
  return opts;
}

using Trajectory = std::vector<std::vector<Result<Observation>>>;

Trajectory Run(Workbench* wb, ServiceSupervisorOptions opts, int ticks,
               SupervisorStats* stats_out) {
  ServiceSupervisor sup(&wb->space, std::move(opts));
  for (size_t t = 0; t < wb->ids.size(); ++t) {
    Status s =
        sup.RegisterTask(wb->ids[t], wb->MakeFactory(wb->workloads[t], 7 + t));
    if (!s.ok()) {
      std::fprintf(stderr, "register %s: %s\n", wb->ids[t].c_str(),
                   s.message().c_str());
    }
  }
  Trajectory out;
  for (int t = 0; t < ticks; ++t) out.push_back(sup.Tick());
  if (stats_out != nullptr) *stats_out = sup.stats();
  return out;
}

long long CompareTrajectories(const Trajectory& got, const Trajectory& want,
                              const char* tag) {
  long long mismatches = 0;
  for (size_t t = 0; t < want.size(); ++t) {
    for (size_t i = 0; i < want[t].size(); ++i) {
      const auto& a = got[t][i];
      const auto& b = want[t][i];
      bool same =
          a.ok() == b.ok() &&
          (a.ok() ? (a->config == b->config && a->objective == b->objective &&
                     a->failure == b->failure && a->degraded == b->degraded)
                  : a.status().code() == b.status().code());
      if (!same) {
        ++mismatches;
        std::fprintf(stderr, "[%s] divergence at tick %zu slot %zu\n", tag, t,
                     i);
      }
    }
  }
  return mismatches;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int ticks = flags.Int("ticks", 40);
  const int shards = flags.Int("shards", 4);
  const int seeds = flags.Int("seeds", 3);
  const int tasks = flags.Int("tasks", 3);
  if (!flags.Validate()) return 1;

  Workbench wb;
  const std::vector<std::string> pool = {"WordCount", "Sort",    "TeraSort",
                                         "PageRank",  "Bayes",   "KMeans",
                                         "Join",      "Aggregation"};
  for (int t = 0; t < tasks; ++t) {
    wb.workloads.push_back(pool[static_cast<size_t>(t) % pool.size()]);
    wb.ids.push_back(StrFormat("task-%d", t));
  }

  // The oracle: one shard, no fault plan, no repository.
  Trajectory want = Run(&wb, BaseOptions(), ticks, nullptr);

  std::printf("%-8s %-8s %-6s %-9s %-9s %-9s %-10s %s\n", "seed", "threads",
              "kills", "restarts", "handoffs", "restored", "replayed",
              "verdict");
  long long total_mismatches = 0;
  long long total_kills = 0;
  for (int s = 0; s < seeds; ++s) {
    for (int threads : {1, 4}) {
      ServiceSupervisorOptions opts = BaseOptions();
      opts.num_shards = shards;
      opts.service.num_threads = threads;
      opts.fault_plan.seed = 2026 + static_cast<uint64_t>(s);
      opts.fault_plan.kill_prob = 0.2;
      opts.fault_plan.restart_prob = 0.5;
      std::string dir =
          (fs::temp_directory_path() /
           StrFormat("sparktune-bench-chaos-s%d-t%d", s, threads))
              .string();
      fs::remove_all(dir);
      opts.service.repository_dir = dir;

      SupervisorStats stats;
      Trajectory got = Run(&wb, std::move(opts), ticks, &stats);
      std::string tag = StrFormat("seed=%d threads=%d", s, threads);
      long long mismatches = CompareTrajectories(got, want, tag.c_str());
      total_mismatches += mismatches;
      total_kills += stats.kills;
      std::printf("%-8d %-8d %-6lld %-9lld %-9lld %-9lld %-10lld %s\n", s,
                  threads, stats.kills, stats.restarts, stats.handoffs,
                  stats.restored_tasks, stats.replayed_periods,
                  mismatches == 0 ? "identical" : "DIVERGED");
      fs::remove_all(dir);
    }
  }

  if (total_kills == 0) {
    std::fprintf(stderr,
                 "chaos plan never killed a shard; raise --ticks so the "
                 "schedule can bite\n");
    return 1;
  }
  if (total_mismatches > 0) {
    std::fprintf(stderr, "bench_chaos: %lld diverging slots\n",
                 total_mismatches);
    return 1;
  }
  std::printf("bench_chaos: all chaos trajectories identical to the "
              "undisturbed run\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace sparktune

int main(int argc, char** argv) { return sparktune::bench::Main(argc, argv); }
