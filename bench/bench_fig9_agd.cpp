// E11 / Figure 9: approximate gradient descent ablation. Ours with and
// without AGD on the six headline tasks; both reported as cost reduction
// relative to random search (the paper's presentation).
//
// Paper reference: AGD degrades slightly on NWeight but helps elsewhere,
// cutting cost by a further 7.47% on average over vanilla BO.
#include <cmath>

#include "baselines/ours.h"
#include "baselines/random_search.h"
#include "bench_util.h"

using namespace sparktune;
using namespace sparktune::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 30);
  const int seeds = flags.Int("seeds", 8);
  if (!flags.Validate()) return 1;

  TablePrinter table({"Task", "BO with AGD (vs random)",
                      "BO without AGD (vs random)", "AGD extra reduction"});
  double avg_with = 0.0, avg_without = 0.0;
  auto tasks = HeadlineHiBenchTasks();
  for (const auto& workload : tasks) {
    TaskEnv env(workload.name);
    double best_with = 0.0, best_without = 0.0, best_random = 0.0;
    for (int s = 0; s < seeds; ++s) {
      uint64_t seed = 800 + static_cast<uint64_t>(s);
      TuningObjective obj = env.ObjectiveWithConstraints(0.5, seed);

      OursMethod with_agd(OursOptions{}, "Ours");
      OursOptions no_opts;
      no_opts.advisor.enable_agd = false;
      OursMethod without_agd(no_opts, "Ours-NoAGD");
      RandomSearch random;

      best_with += BestOf(RunMethod(&with_agd, env, obj, budget, seed)) / seeds;
      best_without +=
          BestOf(RunMethod(&without_agd, env, obj, budget, seed)) / seeds;
      best_random += BestOf(RunMethod(&random, env, obj, budget, seed)) / seeds;
    }
    double red_with = 1.0 - best_with / best_random;
    double red_without = 1.0 - best_without / best_random;
    avg_with += red_with / tasks.size();
    avg_without += red_without / tasks.size();
    table.AddRow({workload.name, Pct(red_with), Pct(red_without),
                  Pct(1.0 - best_with / best_without)});
  }
  table.AddRow({"Average", Pct(avg_with), Pct(avg_without), "-"});

  std::printf("Figure 9: cost reduction relative to random search with and "
              "without AGD (%d iterations, %d seeds)\n(paper: AGD adds 7.47%% "
              "average reduction over vanilla BO, slightly negative on "
              "NWeight)\n%s",
              budget, seeds, table.ToString().c_str());
  return 0;
}
