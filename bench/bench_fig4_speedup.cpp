// E4 / Figure 4: speedup of each method relative to random search on the
// six headline HiBench tasks. Objective = runtime (beta = 1), 30 iterations,
// runtime constraint = 2x default runtime, averaged over seeds.
//
// Paper reference: ours achieves 3.08x-8.96x average speedups; the second
// best baseline reaches 2.54x-6.80x. We reproduce the *shape*: ours first,
// BO-based methods (CherryPick/Tuneful/LOCAT) above ML+GA methods
// (RFHOC/DAC), random search at 1.0x.
#include <cmath>
#include <memory>

#include "baselines/cherrypick.h"
#include "baselines/dac.h"
#include "baselines/locat.h"
#include "baselines/ours.h"
#include "baselines/random_search.h"
#include "baselines/rfhoc.h"
#include "baselines/tuneful.h"
#include "bench_util.h"

using namespace sparktune;
using namespace sparktune::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 30);
  const int seeds = flags.Int("seeds", 8);
  if (!flags.Validate()) return 1;

  std::vector<std::unique_ptr<TuningMethod>> methods;
  methods.push_back(std::make_unique<RandomSearch>());
  methods.push_back(std::make_unique<Rfhoc>());
  methods.push_back(std::make_unique<Dac>());
  methods.push_back(std::make_unique<CherryPick>());
  methods.push_back(std::make_unique<Tuneful>());
  methods.push_back(std::make_unique<Locat>());
  methods.push_back(std::make_unique<OursMethod>());

  std::vector<std::string> header = {"Task"};
  for (const auto& m : methods) header.push_back(m->name());
  TablePrinter table(header);

  std::vector<double> totals(methods.size(), 0.0);
  auto tasks = HeadlineHiBenchTasks();
  for (const auto& workload : tasks) {
    TaskEnv env(workload.name);
    // Geometric mean of the per-seed best runtimes (ratio statistics are
    // multiplicative; a single unlucky run should not dominate the bar).
    std::vector<double> log_best(methods.size(), 0.0);
    for (int s = 0; s < seeds; ++s) {
      uint64_t seed = 1000 + static_cast<uint64_t>(s);
      TuningObjective obj = env.ObjectiveWithConstraints(/*beta=*/1.0, seed);
      for (size_t m = 0; m < methods.size(); ++m) {
        RunHistory h = RunMethod(methods[m].get(), env, obj, budget, seed);
        double best = BestOf(h);
        if (!std::isfinite(best)) {
          // No feasible config found: fall back to the best raw runtime.
          best = h.at(0).objective;
          for (const auto& o : h.observations()) {
            best = std::min(best, o.objective);
          }
        }
        log_best[m] += std::log(best) / seeds;
      }
    }
    std::vector<std::string> row = {workload.name};
    for (size_t m = 0; m < methods.size(); ++m) {
      double speedup = std::exp(log_best[0] - log_best[m]);
      totals[m] += speedup / tasks.size();
      row.push_back(StrFormat("%.2fx", speedup));
    }
    table.AddRow(row);
  }
  std::vector<std::string> avg = {"Average"};
  for (double t : totals) avg.push_back(StrFormat("%.2fx", t));
  table.AddRow(avg);

  std::printf("Figure 4: speedup relative to random search "
              "(runtime objective, %d iterations, %d seeds)\n%s",
              budget, seeds, table.ToString().c_str());
  return 0;
}
