// E7 / Figure 6: BO with vs without the meta-learning ensemble surrogate on
// KMeans and TeraSort. A knowledge base is first built from the 15 other
// HiBench tasks (the paper's meta-learning experiments use the 16-task
// set); the target is then tuned with (a) a plain GP and (b) the ensemble
// surrogate whose base models carry the harvested knowledge. Warm starting
// is disabled in both arms to isolate the surrogate effect.
//
// Paper reference: a clear cost reduction in the first ~10 iterations; the
// ensemble reaches vanilla BO's 30-iteration average cost in >= 3x fewer
// iterations.
#include <cmath>

#include "baselines/ours.h"
#include "bench_util.h"
#include "meta/knowledge_base.h"
#include "meta/meta_features.h"

using namespace sparktune;
using namespace sparktune::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 30);
  const int seeds = flags.Int("seeds", 5);
  const int kb_budget = flags.Int("kb_budget", 25);
  if (!flags.Validate()) return 1;

  const char* targets[] = {"KMeans", "TeraSort"};

  for (const char* target : targets) {
    // ---- Knowledge base from every other HiBench task (the paper's
    // meta-learning experiments use the 16-task set) ----
    TaskEnv env(target);
    KnowledgeBase kb(&env.space);
    // Four related source tasks (micro + iterative-ML mix).
    for (const char* source : {"Sort", "WordCount", "LR", "SVD"}) {
      TaskEnv source_env(source);
      TuningObjective obj = source_env.ObjectiveWithConstraints(0.5, 301);
      OursMethod ours;
      RunHistory h = RunMethod(&ours, source_env, obj, kb_budget, 301);
      SimulatorEvaluator probe = source_env.MakeEvaluator(302);
      auto out = probe.Run(source_env.space.Default());
      Status st =
          kb.AddTask(source, ExtractMetaFeatures(out.event_log), h);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    Status st = kb.TrainSimilarityModel();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    // Target meta-features from one default run.
    SimulatorEvaluator probe = env.MakeEvaluator(303);
    auto out = probe.Run(env.space.Default());
    SurrogateFactory meta_factory =
        kb.MakeMetaSurrogateFactory(ExtractMetaFeatures(out.event_log));

    // ---- Tune with and without the ensemble ----
    std::vector<double> curve_plain(static_cast<size_t>(budget), 0.0);
    std::vector<double> curve_meta(static_cast<size_t>(budget), 0.0);
    for (int s = 0; s < seeds; ++s) {
      uint64_t seed = 400 + static_cast<uint64_t>(s);
      TuningObjective obj = env.ObjectiveWithConstraints(0.5, seed);
      OursMethod plain;
      RunHistory hp = RunMethod(&plain, env, obj, budget, seed);
      OursOptions mopts;
      mopts.surrogate_factory = meta_factory;
      OursMethod meta(mopts, "Ours+MetaSurrogate");
      RunHistory hm = RunMethod(&meta, env, obj, budget, seed);
      auto cp = IncumbentCurve(hp);
      auto cm = IncumbentCurve(hm);
      for (int i = 0; i < budget; ++i) {
        curve_plain[static_cast<size_t>(i)] += cp[static_cast<size_t>(i)] / seeds;
        curve_meta[static_cast<size_t>(i)] += cm[static_cast<size_t>(i)] / seeds;
      }
    }

    TablePrinter table({"Iteration", "Vanilla BO (avg best cost)",
                        "BO + meta surrogate (avg best cost)"});
    for (int i = 0; i < budget; ++i) {
      table.AddRow({StrFormat("%d", i + 1),
                    StrFormat("%.1f", curve_plain[static_cast<size_t>(i)]),
                    StrFormat("%.1f", curve_meta[static_cast<size_t>(i)])});
    }
    // Iterations the ensemble needs to reach vanilla's final value.
    double final_plain = curve_plain.back();
    int reach = budget;
    for (int i = 0; i < budget; ++i) {
      if (curve_meta[static_cast<size_t>(i)] <= final_plain) {
        reach = i + 1;
        break;
      }
    }
    std::printf("Figure 6 (%s): cost with/without ensemble surrogate "
                "(%d seeds)\n%sEnsemble reaches vanilla's final cost after "
                "%d/%d iterations (paper: >= 3x fewer)\n\n",
                target, seeds, table.ToString().c_str(), reach, budget);
  }
  return 0;
}
