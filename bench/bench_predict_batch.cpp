// Batched vs per-point surrogate inference: times a Predict loop against
// one PredictBatch call for the GP, the meta ensemble and the random forest
// across training-set sizes n and candidate-pool sizes m, verifying
// bit-equality of every prediction along the way. The headline number is
// the GP speedup at n=512, m=500 (the acquisition-pool shape).
//
// Flags: --reps=N (timing repetitions, default 3), --max_n=N (skip
// training sizes above N, default 512 — smoke runs pass --max_n=64).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "forest/random_forest.h"
#include "meta/meta_surrogate.h"
#include "model/gp.h"

namespace sparktune {
namespace {

struct MixedData {
  std::vector<FeatureKind> schema;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

MixedData MakeMixedData(size_t n, uint64_t seed) {
  MixedData d;
  d.schema = {FeatureKind::kNumeric, FeatureKind::kNumeric,
              FeatureKind::kNumeric, FeatureKind::kNumeric,
              FeatureKind::kCategorical, FeatureKind::kDataSize};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(6);
    for (int k = 0; k < 4; ++k) row[static_cast<size_t>(k)] = rng.Uniform();
    row[4] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    row[5] = rng.Uniform();
    double y = std::sin(3.0 * row[0]) + row[1] * row[1] - 0.5 * row[2] +
               0.4 * row[3] + 0.3 * row[4] + 0.7 * row[5] +
               0.05 * rng.Normal();
    d.x.push_back(std::move(row));
    d.y.push_back(y);
  }
  return d;
}

template <typename F>
double TimeMs(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    // lint:allow(no-wall-clock) benchmark wall-time reporting only; never feeds tuner results
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();  // lint:allow(no-wall-clock) benchmark timing, as above
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// Prevents the optimizer from discarding untimed prediction results.
// lint:allow(mutable-static) single-threaded benchmark driver's dead-code sink
double g_sink = 0.0;

struct Row {
  const char* model;
  size_t n, m;
  double per_point_ms, batched_ms;
  bool bit_identical;
};

Row Measure(const char* name, const Surrogate& s,
            const std::vector<std::vector<double>>& probes, size_t n,
            int reps) {
  Row row{name, n, probes.size(), 0.0, 0.0, true};
  std::vector<Prediction> loop(probes.size());
  row.per_point_ms = TimeMs(reps, [&] {
    for (size_t j = 0; j < probes.size(); ++j) loop[j] = s.Predict(probes[j]);
    g_sink += loop[0].mean;
  });
  std::vector<Prediction> batch;
  row.batched_ms = TimeMs(reps, [&] {
    batch = s.PredictBatch(probes);
    g_sink += batch[0].mean;
  });
  for (size_t j = 0; j < probes.size(); ++j) {
    if (batch[j].mean != loop[j].mean ||
        batch[j].variance != loop[j].variance) {
      row.bit_identical = false;
      break;
    }
  }
  return row;
}

}  // namespace
}  // namespace sparktune

int main(int argc, char** argv) {
  using namespace sparktune;
  bench::Flags flags(argc, argv);
  const int reps = flags.Int("reps", 3);
  const int max_n = flags.Int("max_n", 512);
  if (!flags.Validate()) return 1;

  const std::vector<size_t> train_sizes = {32, 128, 512};
  const std::vector<size_t> pool_sizes = {64, 500};
  std::vector<Row> rows;
  double gp_headline = 0.0;

  for (size_t n : train_sizes) {
    if (static_cast<int>(n) > max_n) continue;
    MixedData d = MakeMixedData(n, 7 + n);
    // Fixed hyperparameters: the benchmark isolates inference cost.
    GpOptions gopts;
    gopts.optimize_hypers = false;
    GaussianProcess gp(d.schema, gopts);
    if (!gp.Fit(d.x, d.y).ok()) {
      std::fprintf(stderr, "GP fit failed at n=%zu\n", n);
      return 1;
    }

    ForestOptions fopts;
    fopts.num_trees = 32;
    fopts.seed = 17 + n;
    RandomForest forest(fopts);
    if (!forest.Fit(d.x, d.y).ok()) {
      std::fprintf(stderr, "forest fit failed at n=%zu\n", n);
      return 1;
    }

    std::vector<BaseSurrogate> bases;
    for (uint64_t b = 0; b < 2; ++b) {
      MixedData bd = MakeMixedData(std::min<size_t>(n, 64), 101 + b);
      auto bgp = std::make_shared<GaussianProcess>(bd.schema, gopts);
      if (!bgp->Fit(bd.x, bd.y).ok()) {
        std::fprintf(stderr, "base GP fit failed\n");
        return 1;
      }
      BaseSurrogate base;
      base.model = bgp;
      base.similarity = b == 0 ? 0.7 : 0.4;
      base.input_dims = bd.schema.size();
      base.y_mean = 0.3;
      base.y_scale = 1.2;
      bases.push_back(std::move(base));
    }
    MetaEnsembleOptions mopts;
    mopts.gp = gopts;
    MetaEnsembleSurrogate meta(d.schema, std::move(bases), mopts);
    if (!meta.Fit(d.x, d.y).ok()) {
      std::fprintf(stderr, "meta fit failed at n=%zu\n", n);
      return 1;
    }

    for (size_t m : pool_sizes) {
      MixedData pd = MakeMixedData(m, 9000 + n + m);
      rows.push_back(Measure("gp", gp, pd.x, n, reps));
      if (n == 512 && m == 500) {
        gp_headline = rows.back().per_point_ms /
                      std::max(rows.back().batched_ms, 1e-9);
      }
      rows.push_back(Measure("meta-ensemble", meta, pd.x, n, reps));
      rows.push_back(Measure("random-forest", forest, pd.x, n, reps));
    }
  }

  std::printf("%-14s %6s %6s %14s %12s %9s %5s\n", "model", "n", "m",
              "per-point(ms)", "batched(ms)", "speedup", "bit=");
  bool all_identical = true;
  for (const Row& r : rows) {
    all_identical &= r.bit_identical;
    std::printf("%-14s %6zu %6zu %14.3f %12.3f %8.2fx %5s\n", r.model, r.n,
                r.m, r.per_point_ms, r.batched_ms,
                r.per_point_ms / std::max(r.batched_ms, 1e-9),
                r.bit_identical ? "yes" : "NO");
  }
  if (gp_headline > 0.0) {
    std::printf("\nheadline: GP n=512 m=500 batched speedup = %.2fx\n",
                gp_headline);
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: batched predictions diverge from per-point\n");
    return 1;
  }
  std::printf("all batched predictions bit-identical to per-point  (sink %g)\n",
              g_sink);
  return 0;
}
