// E3 / Table 3: tuning overhead analysis on the production fleet. Compares
// per-execution metrics (memory usage, CPU usage, runtime):
//   * under-tuning (average over the 20 search executions) vs pre-tuning
//     (manual config), and
//   * post-tuning (the best configuration applied) vs pre-tuning.
// Tasks run through the TuningService with progressive harvesting, like
// the paper's deployment — meta warm starts are what keep the search
// executions from costing much more than the manual runs they replace.
//
// Paper reference: under vs pre = +2.28% memory / -5.82% CPU / +1.63%
// runtime; post vs pre = 57.00% / 34.93% / 10.72% reductions; the CPU
// overhead amortizes within <= 4 extra executions.
#include <cmath>
#include <memory>

#include "bench_util.h"
#include "service/tuning_service.h"
#include "sparksim/production.h"

using namespace sparktune;
using namespace sparktune::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int num_tasks = flags.Int("tasks", 200);
  const int budget = flags.Int("budget", 20);
  if (!flags.Validate()) return 1;

  ProductionFleetOptions fleet_opts;
  fleet_opts.num_tasks = num_tasks;
  auto fleet = GenerateProductionFleet(fleet_opts, 424242);

  ConfigSpace etl_space = BuildSparkSpace(ClusterSpec::ProductionGroup());
  ConfigSpace sql_space = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  TuningServiceOptions sopts;
  sopts.tuner.budget = budget;
  sopts.tuner.ei_stop_threshold = 0.0;
  sopts.tuner.advisor.objective.beta = 0.5;
  sopts.tuner.advisor.expert_ranking = ExpertParameterRanking();
  sopts.min_tasks_for_transfer = 3;
  TuningService etl_service(&etl_space, sopts);
  TuningService sql_service(&sql_space, sopts);
  std::vector<std::unique_ptr<SimulatorEvaluator>> evaluators;

  // Fleet-aggregate sums (the platform-level view the paper reports; a
  // mean of per-task ratios would be dominated by the smallest tasks).
  double pre_mem = 0.0, pre_cpu = 0.0, pre_rt = 0.0;
  double sum_under_mem = 0.0, sum_under_cpu = 0.0, sum_under_rt = 0.0;
  double sum_post_mem = 0.0, sum_post_cpu = 0.0, sum_post_rt = 0.0;
  double fleet_overhead_cpu = 0.0, fleet_saving_cpu = 0.0;
  int counted = 0;

  for (size_t t = 0; t < fleet.size(); ++t) {
    const ProductionTask& task = fleet[t];
    bool is_sql = task.workload.is_sql;
    TuningService& service = is_sql ? sql_service : etl_service;
    ConfigSpace& space = is_sql ? sql_space : etl_space;

    SimulatorEvaluatorOptions eopts;
    eopts.seed = 3 + t;
    eopts.period_hours = task.period_hours;
    evaluators.push_back(std::make_unique<SimulatorEvaluator>(
        &space, task.workload, task.cluster, task.drift, eopts));
    TunerOptions per_task = sopts.tuner;
    per_task.advisor.seed = 11 * t + 5;
    if (!service
             .RegisterTask(task.id, evaluators.back().get(),
                           task.manual_config, per_task)
             .ok()) {
      continue;
    }

    auto pre = service.ExecutePeriodic(task.id);  // manual baseline
    if (!pre.ok()) continue;
    double tune_mem = 0.0, tune_cpu = 0.0, tune_rt = 0.0;
    for (int i = 0; i < budget; ++i) {
      auto o = service.ExecutePeriodic(task.id);
      if (!o.ok()) break;
      tune_mem += o->memory_gb_hours / budget;
      tune_cpu += o->cpu_core_hours / budget;
      tune_rt += o->runtime_sec / budget;
    }
    // Post-tuning: average over a few applied executions.
    double post_mem_t = 0.0, post_cpu_t = 0.0, post_rt_t = 0.0;
    const int post_runs = 4;
    for (int i = 0; i < post_runs; ++i) {
      auto o = service.ExecutePeriodic(task.id);
      if (!o.ok()) break;
      post_mem_t += o->memory_gb_hours / post_runs;
      post_cpu_t += o->cpu_core_hours / post_runs;
      post_rt_t += o->runtime_sec / post_runs;
    }
    (void)service.HarvestTask(task.id);
    if (pre->memory_gb_hours <= 0.0 || pre->cpu_core_hours <= 0.0) continue;
    ++counted;
    pre_mem += pre->memory_gb_hours;
    pre_cpu += pre->cpu_core_hours;
    pre_rt += pre->runtime_sec;
    sum_under_mem += tune_mem;
    sum_under_cpu += tune_cpu;
    sum_under_rt += tune_rt;
    sum_post_mem += post_mem_t;
    sum_post_cpu += post_cpu_t;
    sum_post_rt += post_rt_t;

    // Fleet-aggregate CPU overhead of tuning and per-execution saving
    // (the paper's amortization number is the aggregate ratio).
    fleet_overhead_cpu += budget * (tune_cpu - pre->cpu_core_hours);
    fleet_saving_cpu += pre->cpu_core_hours - post_cpu_t;
  }

  auto red = [&](double v, double pre) { return Pct(1.0 - v / pre); };
  TablePrinter table({"Metric", "Cost Reduction(under vs. pre)",
                      "Cost Reduction(post vs. pre)"});
  table.AddRow({"Memory usage", red(sum_under_mem, pre_mem),
                red(sum_post_mem, pre_mem)});
  table.AddRow({"CPU usage", red(sum_under_cpu, pre_cpu),
                red(sum_post_cpu, pre_cpu)});
  table.AddRow({"Runtime", red(sum_under_rt, pre_rt),
                red(sum_post_rt, pre_rt)});

  std::printf("Table 3: under-tuning and post-tuning reductions vs manual "
              "pre-tuning on %d tasks ('-' in the paper = increase)\n"
              "(paper: under = 2.28%% / -5.82%% / 1.63%%, "
              "post = 57.00%% / 34.93%% / 10.72%%)\n%s\n",
              counted, table.ToString().c_str());
  // Fleet-aggregate breakeven: how many post-tuning executions (per task)
  // until the cumulative savings cover the tuning overhead.
  double amortize = fleet_saving_cpu > 0.0
                        ? std::max(0.0, fleet_overhead_cpu / fleet_saving_cpu)
                        : -1.0;
  std::printf("Average executions to amortize the CPU tuning overhead: %.2f "
              "(paper: <= 4)\n",
              amortize);
  return 0;
}
