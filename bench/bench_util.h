// Shared plumbing for the experiment harnesses (bench_fig*/bench_table*):
// task setup, constraint derivation from default configs, method execution
// and small aggregation helpers. Each harness prints the rows/series of the
// corresponding paper artifact.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/tuning_method.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"
#include "sparksim/hibench.h"
#include "tuner/evaluator.h"

namespace sparktune {
namespace bench {

// Standardized "--name=value" CLI parsing for the bench binaries. A main
// constructs one Flags, queries every flag it accepts, then calls
// Validate(): arguments that matched no query (typos, flags for a
// different bench) fail the run instead of silently falling back to
// defaults mid-experiment. Threads()/Out()/Json() pin the spelling of the
// flags shared across benches.
class Flags {
 public:
  Flags(int argc, char** argv)
      : args_(argv + 1, argv + argc), used_(args_.size(), false) {}

  int Int(const char* name, int fallback) {
    const char* v = Find(name);
    return v != nullptr ? std::atoi(v) : fallback;
  }
  bool Bool(const char* name, bool fallback) {
    const char* v = Find(name);
    return v != nullptr ? std::atoi(v) != 0 : fallback;
  }
  std::string Str(const char* name, const char* fallback) {
    const char* v = Find(name);
    return v != nullptr ? std::string(v) : std::string(fallback);
  }

  // Cross-bench conventions: worker count, JSON output path, JSON-only
  // console mode.
  int Threads(int fallback) { return Int("threads", fallback); }
  std::string Out(const char* fallback) { return Str("out", fallback); }
  bool Json(bool fallback = false) { return Bool("json", fallback); }

  // Call after the last query; reports unrecognized arguments on stderr
  // and returns false if any were present.
  bool Validate() const {
    bool ok = true;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!used_[i]) {
        std::fprintf(stderr, "unrecognized argument: %s\n", args_[i].c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  // First occurrence wins (matching the historical parser); every
  // occurrence is marked consumed so Validate() won't flag duplicates.
  const char* Find(const char* name) {
    std::string prefix = std::string("--") + name + "=";
    const char* found = nullptr;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (StartsWith(args_[i], prefix)) {
        used_[i] = true;
        if (found == nullptr) found = args_[i].c_str() + prefix.size();
      }
    }
    return found;
  }

  std::vector<std::string> args_;
  std::vector<bool> used_;
};

struct TaskEnv {
  WorkloadSpec workload;
  ClusterSpec cluster;
  ConfigSpace space;

  explicit TaskEnv(const std::string& task_name,
                   ClusterSpec c = ClusterSpec::HiBenchCluster())
      : cluster(std::move(c)) {
    auto w = HiBenchTask(task_name);
    if (!w.ok()) {
      std::fprintf(stderr, "unknown task %s\n", task_name.c_str());
      std::abort();
    }
    workload = std::move(*w);
    space = BuildSparkSpace(cluster);
  }

  SimulatorEvaluator MakeEvaluator(uint64_t seed) const {
    SimulatorEvaluatorOptions opts;
    opts.seed = seed;
    return SimulatorEvaluator(&space, workload, cluster,
                              DriftModel::Diurnal(0.15, 0.05), opts);
  }

  // Execute the default configuration once; used to derive the runtime
  // constraint ("twice the runtime of the default configurations", §6.3).
  JobEvaluator::Outcome DefaultRun(uint64_t seed) const {
    SimulatorEvaluator eval = MakeEvaluator(seed ^ 0xD00D);
    return eval.Run(space.Default());
  }

  TuningObjective ObjectiveWithConstraints(double beta, uint64_t seed) const {
    auto base = DefaultRun(seed);
    TuningObjective obj;
    obj.beta = beta;
    obj.runtime_max = base.runtime_sec * 2.0;
    return obj;
  }
};

// Run one method for `budget` iterations on a fresh evaluator.
inline RunHistory RunMethod(TuningMethod* method, const TaskEnv& env,
                            const TuningObjective& objective, int budget,
                            uint64_t seed) {
  SimulatorEvaluator eval = env.MakeEvaluator(seed);
  return method->Tune(env.space, &eval, objective, budget, seed);
}

// Best objective value found in a history (infinity when nothing feasible).
inline double BestOf(const RunHistory& h) { return h.BestObjective(); }

// Best-so-far curve of a history (feasible observations only; carries the
// incumbent forward, starts at the first observation's objective).
inline std::vector<double> IncumbentCurve(const RunHistory& h) {
  std::vector<double> curve;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& o : h.observations()) {
    if (!o.failed() && o.feasible) best = std::min(best, o.objective);
    double shown = std::isfinite(best) ? best : o.objective;
    curve.push_back(shown);
  }
  return curve;
}

inline std::string Pct(double fraction) {
  return StrFormat("%.2f%%", 100.0 * fraction);
}

}  // namespace bench
}  // namespace sparktune
