// E9 / Figure 7: sub-space ablation on PageRank and TeraSort. Three arms:
// full 30-parameter space, a fixed small space (the 6 most important
// parameters of Table 5), and the adaptive sub-space. Left panel: cost
// reduction vs default after the budget; right panel: the optimization
// curve on TeraSort.
//
// Paper reference: the sub-space arms dominate the full space everywhere;
// small wins on PageRank (and adaptive shrinks to match it), but on
// TeraSort the small space misses the near-optimal region and adaptive wins
// by growing K.
#include <cmath>

#include "baselines/ours.h"
#include "bench_util.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

OursOptions ArmOptions(const std::string& arm) {
  OursOptions opts;
  if (arm == "full") {
    opts.advisor.enable_subspace = false;
  } else if (arm == "small") {
    // Fixed 6-parameter space: adaptive machinery pinned at K = 6.
    opts.advisor.subspace.k_init = 6;
    opts.advisor.subspace.k_min = 6;
    opts.advisor.subspace.k_max = 6;
    opts.advisor.subspace.fanova_min_obs = 1 << 20;  // freeze the ranking
  } else {
    // Adaptive defaults: K_init 10, K in [4, 30].
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 30);
  const int seeds = flags.Int("seeds", 5);
  if (!flags.Validate()) return 1;

  const char* arms[] = {"full", "small", "adaptive"};
  const char* tasks[] = {"PageRank", "TeraSort"};

  // ---- Left panel: reduction vs default after `budget` iterations ----
  TablePrinter left({"Task", "Full space (30)", "Small space (6)",
                     "Adaptive sub-space"});
  std::map<std::string, std::vector<double>> terasort_curves;
  for (const char* task : tasks) {
    TaskEnv env(task);
    std::vector<std::string> row = {task};
    for (const char* arm : arms) {
      double mean_reduction = 0.0;
      std::vector<double> curve(static_cast<size_t>(budget), 0.0);
      for (int s = 0; s < seeds; ++s) {
        uint64_t seed = 500 + static_cast<uint64_t>(s);
        TuningObjective obj = env.ObjectiveWithConstraints(0.5, seed);
        auto base = env.DefaultRun(seed);
        double default_cost = obj.Value(base.runtime_sec, base.resource_rate);
        OursMethod method(ArmOptions(arm), std::string("Ours-") + arm);
        RunHistory h = RunMethod(&method, env, obj, budget, seed);
        mean_reduction += (1.0 - BestOf(h) / default_cost) / seeds;
        auto c = IncumbentCurve(h);
        for (int i = 0; i < budget; ++i) {
          curve[static_cast<size_t>(i)] += c[static_cast<size_t>(i)] / seeds;
        }
      }
      row.push_back(Pct(mean_reduction));
      if (std::string(task) == "TeraSort") {
        terasort_curves[arm] = curve;
      }
    }
    left.AddRow(row);
  }
  std::printf("Figure 7(a): cost reduction vs default config after %d "
              "iterations (%d seeds)\n%s\n",
              budget, seeds, left.ToString().c_str());

  // ---- Right panel: optimization curve on TeraSort ----
  TablePrinter right({"Iteration", "Full space", "Small space",
                      "Adaptive sub-space"});
  for (int i = 0; i < budget; ++i) {
    right.AddRow({StrFormat("%d", i + 1),
                  StrFormat("%.1f", terasort_curves["full"][static_cast<size_t>(i)]),
                  StrFormat("%.1f", terasort_curves["small"][static_cast<size_t>(i)]),
                  StrFormat("%.1f",
                            terasort_curves["adaptive"][static_cast<size_t>(i)])});
  }
  std::printf("Figure 7(b): average best cost per iteration on TeraSort\n%s",
              right.ToString().c_str());
  return 0;
}
