// Parallel suggestion-engine benchmark: times the GP hyper-sweep fit, the
// random-forest fit, fANOVA, and acquisition maximization at 1 thread vs a
// wide setting, verifies the outputs are bit-identical, and reports the
// speedups. On a single-core container the speedup collapses to ~1x (the
// pool still runs the parallel code paths); on 4+ cores the GP sweep and
// forest fit should clear 2x.
//
// Usage: bench_parallel --threads=N   (default: min(4, DefaultThreads()))
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "bo/acq_optimizer.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fanova/fanova.h"
#include "forest/random_forest.h"
#include "model/gp.h"

namespace sparktune {
namespace {

double NowSec() {
  using clock = std::chrono::steady_clock;
  // lint:allow(no-wall-clock) benchmark wall-time reporting only; never feeds tuner results
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Dataset {
  std::vector<FeatureKind> schema;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
};

// Spark-shaped data: 31 features (28 numeric, 2 categorical, 1 data size).
Dataset MakeDataset(size_t n, uint64_t seed) {
  Dataset d;
  for (int i = 0; i < 28; ++i) d.schema.push_back(FeatureKind::kNumeric);
  d.schema.push_back(FeatureKind::kCategorical);
  d.schema.push_back(FeatureKind::kCategorical);
  d.schema.push_back(FeatureKind::kDataSize);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(d.schema.size());
    for (size_t k = 0; k < row.size(); ++k) {
      row[k] = d.schema[k] == FeatureKind::kCategorical
                   ? (rng.Bernoulli(0.5) ? 1.0 : 0.0)
                   : rng.Uniform();
    }
    double y = 100.0;
    for (size_t k = 0; k < 6; ++k) y += 10.0 * std::sin(3.0 * row[k]);
    y += 20.0 * row.back() + rng.Normal();
    d.x.push_back(std::move(row));
    d.y.push_back(y);
  }
  return d;
}

struct Timing {
  double serial_sec = 0.0;
  double parallel_sec = 0.0;
  bool identical = false;
};

void Report(const char* name, const Timing& t) {
  std::printf("%-28s serial %8.3fs  parallel %8.3fs  speedup %5.2fx  %s\n",
              name, t.serial_sec, t.parallel_sec,
              t.parallel_sec > 0 ? t.serial_sec / t.parallel_sec : 0.0,
              t.identical ? "outputs identical" : "OUTPUTS DIFFER");
}

Timing BenchGp(const Dataset& d, int threads) {
  auto fit = [&](int nt, std::vector<double>* out) {
    GpOptions opts;
    opts.num_threads = nt;
    GaussianProcess gp(d.schema, opts);
    double t0 = NowSec();
    if (!gp.Fit(d.x, d.y).ok()) std::abort();
    double dt = NowSec() - t0;
    out->assign({gp.kernel_params().length_numeric,
                 gp.kernel_params().noise_variance,
                 gp.log_marginal_likelihood(), gp.Predict(d.x[0]).mean});
    return dt;
  };
  Timing t;
  std::vector<double> a, b;
  t.serial_sec = fit(1, &a);
  t.parallel_sec = fit(threads, &b);
  t.identical = a == b;
  return t;
}

Timing BenchForest(const Dataset& d, int threads) {
  auto fit = [&](int nt, std::vector<double>* out) {
    ForestOptions opts;
    opts.num_trees = 64;
    opts.num_threads = nt;
    RandomForest rf(opts);
    double t0 = NowSec();
    if (!rf.Fit(d.x, d.y).ok()) std::abort();
    double dt = NowSec() - t0;
    *out = rf.FeatureImportance();
    out->push_back(rf.Predict(d.x[0]).mean);
    return dt;
  };
  Timing t;
  std::vector<double> a, b;
  t.serial_sec = fit(1, &a);
  t.parallel_sec = fit(threads, &b);
  t.identical = a == b;
  return t;
}

Timing BenchFanova(const Dataset& d, int threads) {
  auto analyze = [&](int nt, std::vector<double>* out) {
    FanovaOptions opts;
    opts.forest.num_threads = nt;
    double t0 = NowSec();
    auto r = Fanova::Analyze(d.x, d.y, opts);
    double dt = NowSec() - t0;
    if (!r.ok()) std::abort();
    *out = r->CombinedImportance();
    out->push_back(r->total_variance);
    return dt;
  };
  Timing t;
  std::vector<double> a, b;
  t.serial_sec = analyze(1, &a);
  t.parallel_sec = analyze(threads, &b);
  t.identical = a == b;
  return t;
}

Timing BenchAcquisition(const Dataset& d, int threads) {
  ConfigSpace space;
  for (size_t k = 0; k < d.schema.size(); ++k) {
    if (!space.Add(Parameter::Float("p" + std::to_string(k), 0.0, 1.0, 0.5))
             .ok()) {
      std::abort();
    }
  }
  GaussianProcess gp(d.schema, {});
  if (!gp.Fit(d.x, d.y).ok()) std::abort();
  EicAcquisition acq(&gp, d.y[0]);
  Subspace full = Subspace::Full(&space);
  auto encode = [&](const Configuration& c) { return space.ToUnit(c); };
  RunHistory history;
  Rng hist_rng(7);
  for (size_t i = 0; i < 10; ++i) {
    Observation o;
    o.config = full.Sample(&hist_rng);
    o.feasible = true;
    history.Add(o);
  }
  auto maximize = [&](int nt, std::vector<double>* out) {
    AcqOptOptions opts;
    opts.num_candidates = 1024;
    opts.num_local_starts = 8;
    opts.local_steps = 32;
    opts.num_threads = nt;
    AcquisitionOptimizer opt(opts);
    Rng rng(42);
    double t0 = NowSec();
    AcqOptResult r =
        opt.Maximize(full, encode, acq, nullptr, nullptr, &history, &rng);
    double dt = NowSec() - t0;
    out->assign(r.config.values().begin(), r.config.values().end());
    out->push_back(r.acq_value);
    return dt;
  };
  Timing t;
  std::vector<double> a, b;
  t.serial_sec = maximize(1, &a);
  t.parallel_sec = maximize(threads, &b);
  t.identical = a == b;
  return t;
}

}  // namespace
}  // namespace sparktune

int main(int argc, char** argv) {
  using namespace sparktune;
  bench::Flags flags(argc, argv);
  int threads = flags.Threads(std::min(4, ThreadPool::DefaultThreads()));
  if (!flags.Validate()) return 1;
  if (threads < 2) threads = 2;
  std::printf("bench_parallel: %d threads (hardware default %d)\n\n", threads,
              ThreadPool::DefaultThreads());

  Dataset gp_data = MakeDataset(60, 11);
  Dataset rf_data = MakeDataset(200, 12);
  Dataset fanova_data = MakeDataset(120, 13);

  Timing gp = BenchGp(gp_data, threads);
  Report("gp hyper-sweep fit (n=60)", gp);
  Timing rf = BenchForest(rf_data, threads);
  Report("forest fit (64 trees)", rf);
  Timing fn = BenchFanova(fanova_data, threads);
  Report("fanova (24 trees)", fn);
  Timing ac = BenchAcquisition(gp_data, threads);
  Report("acquisition maximize", ac);

  bool all_identical =
      gp.identical && rf.identical && fn.identical && ac.identical;
  std::printf("\n%s\n", all_identical
                            ? "all parallel outputs match serial bit-for-bit"
                            : "MISMATCH: parallel output differs from serial");
  return all_identical ? 0 : 1;
}
