// E6 / Table 4: warm-starting via meta-learned task similarity. For each
// (target, source) pair, the knowledge base is populated by tuning the
// source task; the target task then evaluates the source's top-3
// configurations alongside its default and a hand-tuned "manual" config.
//
// Paper reference (TeraSort<-Sort, TeraSort<-WordCount, LR<-PageRank,
// KMeans<-SVD): transferring top-3 configurations cuts the evaluation cost
// by 66.03-95.19% vs default and 25.44-55.93% vs manual within the first 3
// trials, and the best source config is not always the best on the target.
#include <cmath>

#include "baselines/ours.h"
#include "bench_util.h"
#include "meta/knowledge_base.h"
#include "meta/meta_features.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

// A sensible hand-tuned configuration (what an engineer would write after
// an afternoon of fiddling): moderate executors, kryo, decent parallelism.
Configuration ManualConfig(const ConfigSpace& space) {
  Configuration c = space.Default();
  namespace sp = spark_param;
  space.Set(&c, sp::kExecutorInstances, 48);
  space.Set(&c, sp::kExecutorCores, 4);
  space.Set(&c, sp::kExecutorMemory, 8);
  space.Set(&c, sp::kDefaultParallelism, 384);
  space.Set(&c, sp::kSerializer, 1);  // kryo
  return space.Legalize(c);
}

double CostOf(const TaskEnv& env, const Configuration& c, uint64_t seed) {
  SimulatorEvaluator eval = env.MakeEvaluator(seed);
  auto out = eval.Run(c);
  TuningObjective obj;
  obj.beta = 0.5;
  return obj.Value(out.runtime_sec, out.resource_rate);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int source_budget = flags.Int("source_budget", 30);
  if (!flags.Validate()) return 1;

  struct Pair {
    const char* target;
    const char* source;
  };
  const Pair pairs[] = {{"TeraSort", "Sort"},
                        {"TeraSort", "WordCount"},
                        {"LR", "PageRank"},
                        {"KMeans", "SVD"}};

  TablePrinter table({"Target Task", "Source Task", "Default", "Manual",
                      "Top1", "Top2", "Top3"});

  for (const Pair& p : pairs) {
    // ---- Tune the source task, harvest its top configurations ----
    TaskEnv source_env(p.source);
    TuningObjective src_obj =
        source_env.ObjectiveWithConstraints(0.5, /*seed=*/61);
    OursMethod ours;
    RunHistory src_history = RunMethod(&ours, source_env, src_obj,
                                       source_budget, /*seed=*/61);
    SimulatorEvaluator src_probe = source_env.MakeEvaluator(62);
    auto src_log = src_probe.Run(source_env.space.Default());
    KnowledgeBase kb(&source_env.space);
    Status st = kb.AddTask(p.source, ExtractMetaFeatures(src_log.event_log),
                           src_history);
    if (!st.ok()) {
      std::fprintf(stderr, "harvest failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const TaskRecord& rec = kb.records().front();

    // ---- Evaluate transfers on the target task ----
    TaskEnv target_env(p.target);
    uint64_t eval_seed = 71;
    double cost_default =
        CostOf(target_env, target_env.space.Default(), eval_seed);
    double cost_manual =
        CostOf(target_env, ManualConfig(target_env.space), eval_seed);
    std::vector<std::string> row = {p.target, p.source,
                                    StrFormat("%.2f", cost_default),
                                    StrFormat("%.2f", cost_manual)};
    for (int k = 0; k < 3; ++k) {
      if (k < static_cast<int>(rec.top_configs.size())) {
        double c = CostOf(target_env, rec.top_configs[static_cast<size_t>(k)],
                          eval_seed);
        row.push_back(StrFormat("%.2f", c));
      } else {
        row.push_back("-");
      }
    }
    table.AddRow(row);
  }

  std::printf("Table 4: execution cost of top-3 source-task configurations "
              "on the target task (beta = 0.5)\n"
              "(paper: top-3 transfer beats default by 66-95%% and manual by "
              "25-56%%; the source's best is not always the target's best)\n%s",
              table.ToString().c_str());
  return 0;
}
