// E2 / Table 2: detailed manual-vs-tuned comparison on eight production
// tasks from the advertisement business (four daily Spark jobs, four hourly
// SparkSQL jobs). Objective = cost (beta = 0.5), constraints = 2x manual
// metrics, budget 20 iterations; the table reports the iteration at which
// the best configuration was found.
//
// Paper reference: average reductions of 76.52% memory, 56.29% CPU, 17.58%
// runtime, 62.22% execution cost; best iteration 9.88 on average; tuned
// executor shapes are far leaner than manual ones.
#include <cmath>

#include "bench_util.h"
#include "sparksim/production.h"
#include "tuner/online_tuner.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

JobEvaluator::Outcome EvalOnce(const ProductionTask& task,
                               const ConfigSpace& space,
                               const Configuration& config, uint64_t seed) {
  SimulatorEvaluatorOptions opts;
  opts.seed = seed;
  SimulatorEvaluator eval(&space, task.workload, task.cluster,
                          DriftModel::None(), opts);
  return eval.Run(config);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 20);
  if (!flags.Validate()) return 1;

  TablePrinter table({"Task", "Method", "Memory_usage", "CPU_usage",
                      "Runtime(s)", "Execution cost", "Exec.instances",
                      "Exec.cores", "Exec.memory(GB)", "#Iteration"});

  double mem_red = 0.0, cpu_red = 0.0, rt_red = 0.0, cost_red = 0.0;
  double iter_sum = 0.0;
  auto tasks = EightAdvertisementTasks();
  for (size_t t = 0; t < tasks.size(); ++t) {
    const ProductionTask& task = tasks[t];
    ConfigSpace space = BuildSparkSpace(task.cluster);

    SimulatorEvaluatorOptions eopts;
    eopts.seed = 31 + t;
    eopts.period_hours = task.period_hours;
    SimulatorEvaluator eval(&space, task.workload, task.cluster, task.drift,
                            eopts);
    TunerOptions topts;
    topts.budget = budget;
    topts.advisor.objective.beta = 0.5;
    topts.advisor.expert_ranking = ExpertParameterRanking();
    topts.advisor.seed = 100 + t;
    OnlineTuner tuner(&space, &eval, topts, task.manual_config);
    tuner.RunToCompletion(budget + 1);

    // Iteration at which the incumbent was found.
    int best_iter = tuner.history().BestFeasibleIndex();

    auto manual = EvalOnce(task, space, task.manual_config, 500 + t);
    auto tuned = EvalOnce(task, space, tuner.BestConfig(), 500 + t);
    TuningObjective cost;
    cost.beta = 0.5;
    double manual_cost = cost.Value(manual.runtime_sec, manual.resource_rate);
    double tuned_cost = cost.Value(tuned.runtime_sec, tuned.resource_rate);

    auto row = [&](const char* method, const JobEvaluator::Outcome& o,
                   double cost_value, const Configuration& config,
                   const std::string& iter) {
      SparkConf conf = DecodeSparkConf(space, config);
      table.AddRow({task.id, method, StrFormat("%.2f", o.memory_gb_hours),
                    StrFormat("%.2f", o.cpu_core_hours),
                    StrFormat("%.2f", o.runtime_sec),
                    StrFormat("%.2f", cost_value),
                    StrFormat("%d", conf.executor_instances),
                    StrFormat("%d", conf.executor_cores),
                    StrFormat("%.0f", conf.executor_memory_gb), iter});
    };
    row("Manual", manual, manual_cost, task.manual_config, "-");
    row("Ours", tuned, tuned_cost, tuner.BestConfig(),
        StrFormat("%d", best_iter));

    mem_red += (1.0 - tuned.memory_gb_hours / manual.memory_gb_hours) / 8.0;
    cpu_red += (1.0 - tuned.cpu_core_hours / manual.cpu_core_hours) / 8.0;
    rt_red += (1.0 - tuned.runtime_sec / manual.runtime_sec) / 8.0;
    cost_red += (1.0 - tuned_cost / manual_cost) / 8.0;
    iter_sum += best_iter / 8.0;
  }
  table.AddRow({"Avg Reduction on 8 tasks", "-", Pct(mem_red), Pct(cpu_red),
                Pct(rt_red), Pct(cost_red), "-", "-", "-",
                StrFormat("%.2f", iter_sum)});

  std::printf("Table 2: manual vs tuned on eight in-production tasks "
              "(paper: -76.52%% mem, -56.29%% CPU, -17.58%% runtime, "
              "-62.22%% cost, 9.88 iterations)\n%s",
              table.ToString().c_str());
  return 0;
}
