// Fleet-scale service benchmark: drives the TuningService task-state diet
// (SoA run histories, flat meta-sample windows, compacted event logs,
// dirty-set checkpoint/harvest passes) at 10^5-10^6 registered periodic
// tasks and reports per-tick throughput plus peak memory.
//
// Each tick is one ExecutePeriodicAll over the whole fleet (the §6.2
// multi-tenant scheduling tick) followed by a bounded streaming-harvest
// pass (HarvestDirty). The first tick measures baselines; later ticks run
// the advisors' initial design — deliberately cheap per task, so the
// numbers isolate service bookkeeping and memory layout, not GP math.
//
// Outputs a table and BENCH_fleet.json:
//   tasks/sec for every tick, peak RSS (VmHWM), end RSS, run-history
//   arena bytes, harvest/checkpoint backlogs.
// `--max_rss_mb=N` turns the peak-RSS report into a hard gate (exit 1 on
// breach) so CI can pin the memory budget.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "service/tuning_service.h"
#include "sparksim/production.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

// Peak / current resident set in MiB from /proc/self/status (Linux); 0.0
// when unavailable. VmHWM is the high-water mark the kernel tracked for
// this process — exactly the "did the fleet fit" number.
double StatusLineMb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, std::strlen(key), key) != 0) continue;
    long long kb = 0;
    if (std::sscanf(line.c_str() + std::strlen(key), "%lld", &kb) == 1) {
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0.0;
}

double PeakRssMb() { return StatusLineMb("VmHWM:"); }
double CurrentRssMb() { return StatusLineMb("VmRSS:"); }

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int num_tasks = flags.Int("tasks", 100000);
  const int ticks = flags.Int("ticks", 3);
  const int threads = flags.Threads(4);
  const int harvest_per_tick = flags.Int("harvest_per_tick", 256);
  const int max_rss_mb = flags.Int("max_rss_mb", 0);
  const bool enable_meta = flags.Bool("meta", false);
  const std::string out_path = flags.Out("BENCH_fleet.json");
  if (!flags.Validate()) return 1;

  ProductionFleetOptions fleet_opts;
  fleet_opts.num_tasks = num_tasks;
  auto fleet = GenerateProductionFleet(fleet_opts, 20230706);

  // One service per cluster shape (shared-ConfigSpace requirement), with
  // the full fleet diet switched on.
  ConfigSpace etl_space = BuildSparkSpace(ClusterSpec::ProductionGroup());
  ConfigSpace sql_space = BuildSparkSpace(ClusterSpec::SmallSqlGroup());
  TuningServiceOptions sopts;
  sopts.tuner.ei_stop_threshold = 0.0;
  sopts.tuner.advisor.objective.beta = 0.5;
  sopts.enable_meta = enable_meta;
  sopts.compact_event_logs = true;
  sopts.num_threads = threads;
  TuningService etl_service(&etl_space, sopts);
  TuningService sql_service(&sql_space, sopts);
  TuningService* services[] = {&etl_service, &sql_service};

  std::vector<std::unique_ptr<SimulatorEvaluator>> evaluators;
  evaluators.reserve(fleet.size());
  std::vector<std::string> etl_ids, sql_ids;
  int register_failures = 0;
  for (size_t t = 0; t < fleet.size(); ++t) {
    const ProductionTask& task = fleet[t];
    bool is_sql = task.workload.is_sql;
    TuningService& service = is_sql ? sql_service : etl_service;
    ConfigSpace& space = is_sql ? sql_space : etl_space;
    SimulatorEvaluatorOptions eopts;
    eopts.seed = 97 + t;
    eopts.period_hours = task.period_hours;
    evaluators.push_back(std::make_unique<SimulatorEvaluator>(
        &space, task.workload, task.cluster, task.drift, eopts));
    TunerOptions per_task = sopts.tuner;
    per_task.advisor.seed = 7 * t + 13;
    if (service
            .RegisterTask(task.id, evaluators.back().get(),
                          task.manual_config, per_task)
            .ok()) {
      (is_sql ? sql_ids : etl_ids).push_back(task.id);
    } else {
      ++register_failures;
    }
  }
  std::printf("fleet: %d tasks registered (%d ETL + %d SQL, %d failed), "
              "%d ticks, %d threads\n",
              num_tasks - register_failures,
              static_cast<int>(etl_ids.size()),
              static_cast<int>(sql_ids.size()), register_failures, ticks,
              threads);

  std::vector<double> tick_seconds, tasks_per_sec;
  long long infra_skips = 0, harvested_total = 0;
  TablePrinter table({"tick", "seconds", "tasks/sec", "harvested", "RSS MB"});
  for (int tick = 0; tick < ticks; ++tick) {
    // lint:allow(no-wall-clock) benchmark wall-time reporting only; never feeds tuner results
    auto t0 = std::chrono::steady_clock::now();
    for (auto* service : services) {
      const auto& ids = service == &etl_service ? etl_ids : sql_ids;
      for (const auto& result : service->ExecutePeriodicAll(ids)) {
        if (!result.ok()) ++infra_skips;
      }
    }
    HarvestReport harvest;
    for (auto* service : services) {
      harvest.Merge(service->HarvestDirty(harvest_per_tick));
    }
    harvested_total += harvest.harvested;
    // lint:allow(no-wall-clock) benchmark wall-time reporting only, as above
    auto t1 = std::chrono::steady_clock::now();
    double sec = std::chrono::duration<double>(t1 - t0).count();
    double rate = sec > 0.0 ? (etl_ids.size() + sql_ids.size()) / sec : 0.0;
    tick_seconds.push_back(sec);
    tasks_per_sec.push_back(rate);
    table.AddRow({StrFormat("%d", tick + 1), StrFormat("%.3f", sec),
                  StrFormat("%.0f", rate),
                  StrFormat("%d", harvest.harvested),
                  StrFormat("%.1f", CurrentRssMb())});
  }

  // Retained-state audit: the run-history arenas across the whole fleet.
  size_t history_heap_bytes = 0;
  for (auto* service : services) {
    const auto& ids = service == &etl_service ? etl_ids : sql_ids;
    for (const auto& id : ids) {
      history_heap_bytes += service->tuner(id)->history().HeapBytes();
    }
  }
  const double peak_rss = PeakRssMb();
  std::printf("%s\n", table.ToString().c_str());
  std::printf("peak RSS %.1f MB, end RSS %.1f MB, history arenas %.1f MB, "
              "%lld harvested, %lld infra skips, backlog %zu harvest / %zu "
              "checkpoint\n",
              peak_rss, CurrentRssMb(),
              static_cast<double>(history_heap_bytes) / (1024.0 * 1024.0),
              harvested_total, infra_skips,
              etl_service.harvest_backlog() + sql_service.harvest_backlog(),
              etl_service.checkpoint_backlog() +
                  sql_service.checkpoint_backlog());

  // ---- BENCH_fleet.json ----
  Json doc = Json::Object();
  doc.Set("bench", Json::Str("fleet"));
  doc.Set("tasks", Json::Number(static_cast<double>(num_tasks)));
  doc.Set("ticks", Json::Number(static_cast<double>(ticks)));
  doc.Set("threads", Json::Number(static_cast<double>(threads)));
  Json secs = Json::Array(), rates = Json::Array();
  for (double s : tick_seconds) secs.Append(Json::Number(s));
  for (double r : tasks_per_sec) rates.Append(Json::Number(r));
  doc.Set("tick_seconds", std::move(secs));
  doc.Set("tasks_per_sec_per_tick", std::move(rates));
  doc.Set("peak_rss_mb", Json::Number(peak_rss));
  doc.Set("end_rss_mb", Json::Number(CurrentRssMb()));
  doc.Set("history_heap_mb",
          Json::Number(static_cast<double>(history_heap_bytes) /
                       (1024.0 * 1024.0)));
  doc.Set("harvested", Json::Number(static_cast<double>(harvested_total)));
  doc.Set("harvest_backlog",
          Json::Number(static_cast<double>(etl_service.harvest_backlog() +
                                           sql_service.harvest_backlog())));
  std::string dumped = doc.Dump();

  // Schema self-check: the emitted document must parse back and carry the
  // fields downstream dashboards key on; a silent schema drift is a bench
  // bug, not a consumer problem.
  auto parsed = Json::Parse(dumped);
  const char* required[] = {"tasks_per_sec_per_tick", "peak_rss_mb",
                            "tick_seconds", "tasks"};
  if (!parsed.ok() || !parsed->is_object()) {
    std::fprintf(stderr, "BENCH_fleet.json self-check: emitted JSON does "
                         "not parse\n");
    return 1;
  }
  for (const char* field : required) {
    if (parsed->Get(field) == nullptr) {
      std::fprintf(stderr,
                   "BENCH_fleet.json self-check: missing field %s\n", field);
      return 1;
    }
  }
  {
    std::ofstream out(out_path, std::ios::trunc);
    out << dumped << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (max_rss_mb > 0 && peak_rss > static_cast<double>(max_rss_mb)) {
    std::fprintf(stderr,
                 "peak RSS %.1f MB exceeds budget %d MB\n", peak_rss,
                 max_rss_mb);
    return 1;
  }
  return 0;
}
