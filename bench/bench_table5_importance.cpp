// E8 / Table 5: top-10 Spark parameters by fANOVA importance (mean +- std
// across tasks). For each task, a batch of random configurations is
// evaluated on the simulator and fANOVA decomposes the cost variance over
// the 30-parameter unit cube.
//
// Paper reference: spark.executor.instances (0.3788) and
// spark.executor.memory (0.1501) dominate; memory.storageFraction,
// default.parallelism, memory.fraction, executor.cores follow; the tail is
// below 0.02.
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "fanova/fanova.h"

using namespace sparktune;
using namespace sparktune::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int samples = flags.Int("samples", 80);
  const int tasks = flags.Int("tasks", 8);
  if (!flags.Validate()) return 1;

  auto all = AllHiBenchTasks();
  ClusterSpec cluster = ClusterSpec::HiBenchCluster();
  ConfigSpace space = BuildSparkSpace(cluster);
  TuningObjective obj;
  obj.beta = 0.5;

  std::vector<std::vector<double>> per_task_scores;
  for (int t = 0; t < tasks && t < static_cast<int>(all.size()); ++t) {
    SimulatorEvaluatorOptions eopts;
    eopts.seed = 900 + static_cast<uint64_t>(t);
    SimulatorEvaluator eval(&space, all[static_cast<size_t>(t)], cluster,
                            DriftModel::None(), eopts);
    Rng rng(1000 + static_cast<uint64_t>(t));
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < samples; ++i) {
      Configuration c = space.Sample(&rng);
      auto out = eval.Run(c);
      x.push_back(space.ToUnit(c));
      // Log-cost stabilizes the variance decomposition across the huge
      // dynamic range that failures introduce.
      y.push_back(std::log(
          std::max(1e-6, obj.Value(out.runtime_sec, out.resource_rate))));
    }
    FanovaOptions fopts;
    fopts.compute_pairwise = false;  // 30 dims: mains only, like the online
                                     // sub-space update
    auto result = Fanova::Analyze(x, y, fopts);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    per_task_scores.push_back(result->main_effect);
  }

  // Mean +- std across tasks, ranked by mean.
  size_t dims = space.size();
  std::vector<double> mean(dims, 0.0), sd(dims, 0.0);
  for (const auto& scores : per_task_scores) {
    for (size_t d = 0; d < dims; ++d) mean[d] += scores[d];
  }
  for (auto& m : mean) m /= per_task_scores.size();
  for (const auto& scores : per_task_scores) {
    for (size_t d = 0; d < dims; ++d) {
      sd[d] += (scores[d] - mean[d]) * (scores[d] - mean[d]);
    }
  }
  for (auto& s : sd) s = std::sqrt(s / per_task_scores.size());

  std::vector<size_t> order(dims);
  for (size_t d = 0; d < dims; ++d) order[d] = d;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return mean[a] > mean[b]; });

  TablePrinter table({"#", "Parameter Name", "Importance Score (mean±std)"});
  for (int rank = 0; rank < 10; ++rank) {
    size_t d = order[static_cast<size_t>(rank)];
    table.AddRow({StrFormat("%d", rank + 1), space.param(d).name(),
                  StrFormat("%.4f ± %.4f", mean[d], sd[d])});
  }
  std::printf("Table 5: top-10 Spark parameters by fANOVA importance over "
              "%d tasks x %d random configs\n(paper: executor.instances "
              "0.3788, executor.memory 0.1501 lead; tail < 0.02)\n%s",
              static_cast<int>(per_task_scores.size()), samples,
              table.ToString().c_str());
  return 0;
}
