// E10 / Figure 8: safe exploration ablation. Ours (safe region + EIC)
// against vanilla BO (plain EI, no constraint handling) on WordCount and
// Bayes, with the runtime constraint at 2x the default config's runtime.
// Prints per-configuration (runtime, cost, feasible) points — the scatter
// data of Figure 8 — plus the infeasible ratios, and the six-task average
// safe-suggestion percentage.
//
// Paper reference: safety cuts the infeasible ratio from 56% to 10%
// (WordCount) and 20% to 6% (Bayes); average safe percentage 93.00% vs
// vanilla BO's 69.67%.
#include <cmath>

#include "baselines/ours.h"
#include "bench_util.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

OursOptions SafeArm() { return OursOptions{}; }

// Plain full-space GP-EI: no safe region, no EIC weighting, no sub-space,
// no AGD — the paper's "vanilla BO" comparison arm.
OursOptions VanillaArm() {
  OursOptions opts;
  opts.advisor.enable_safety = false;
  opts.advisor.enable_eic = false;
  opts.advisor.enable_subspace = false;
  opts.advisor.enable_agd = false;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 30);
  const int seeds = flags.Int("seeds", 5);
  const bool dump_points = flags.Int("points", 1) != 0;
  if (!flags.Validate()) return 1;

  // ---- Scatter + ratios on the two featured tasks ----
  for (const char* task : {"WordCount", "Bayes"}) {
    TaskEnv env(task);
    int inf_safe = 0, inf_vanilla = 0, total = 0;
    TablePrinter points({"arm", "seed", "iter", "runtime(s)", "cost",
                         "feasible"});
    for (int s = 0; s < seeds; ++s) {
      uint64_t seed = 600 + static_cast<uint64_t>(s);
      // Production-style constraint set (§6.2): both runtime and resource
      // capped at twice the reference configuration's metrics.
      TuningObjective obj = env.ObjectiveWithConstraints(0.5, seed);
      obj.resource_max = env.DefaultRun(seed).resource_rate * 2.0;
      OursMethod safe(SafeArm(), "Ours");
      OursMethod vanilla(VanillaArm(), "VanillaBO");
      RunHistory hs = RunMethod(&safe, env, obj, budget, seed);
      RunHistory hv = RunMethod(&vanilla, env, obj, budget, seed);
      for (const auto& o : hs.observations()) {
        inf_safe += !o.feasible;
        if (dump_points && s == 0) {
          points.AddRow({"ours", StrFormat("%d", s),
                         StrFormat("%d", o.iteration),
                         StrFormat("%.1f", o.runtime_sec),
                         StrFormat("%.1f", o.objective),
                         o.feasible ? "yes" : "NO"});
        }
      }
      for (const auto& o : hv.observations()) {
        inf_vanilla += !o.feasible;
        if (dump_points && s == 0) {
          points.AddRow({"vanilla", StrFormat("%d", s),
                         StrFormat("%d", o.iteration),
                         StrFormat("%.1f", o.runtime_sec),
                         StrFormat("%.1f", o.objective),
                         o.feasible ? "yes" : "NO"});
        }
      }
      total += budget;
    }
    std::printf("Figure 8 (%s): infeasible ratio ours = %s, "
                "vanilla BO = %s\n",
                task, Pct(static_cast<double>(inf_safe) / total).c_str(),
                Pct(static_cast<double>(inf_vanilla) / total).c_str());
    if (dump_points) {
      std::printf("%s\n", points.ToString().c_str());
    }
  }

  // ---- Six-task average safe percentage ----
  double safe_pct = 0.0, vanilla_pct = 0.0;
  auto tasks = HeadlineHiBenchTasks();
  for (const auto& workload : tasks) {
    TaskEnv env(workload.name);
    int ok_safe = 0, ok_vanilla = 0, total = 0;
    for (int s = 0; s < seeds; ++s) {
      uint64_t seed = 700 + static_cast<uint64_t>(s);
      TuningObjective obj = env.ObjectiveWithConstraints(0.5, seed);
      obj.resource_max = env.DefaultRun(seed).resource_rate * 2.0;
      OursMethod safe(SafeArm(), "Ours");
      OursMethod vanilla(VanillaArm(), "VanillaBO");
      RunHistory hs = RunMethod(&safe, env, obj, budget, seed);
      for (const auto& o : hs.observations()) ok_safe += o.feasible;
      RunHistory hv = RunMethod(&vanilla, env, obj, budget, seed);
      for (const auto& o : hv.observations()) ok_vanilla += o.feasible;
      total += budget;
    }
    safe_pct += static_cast<double>(ok_safe) / total / tasks.size();
    vanilla_pct += static_cast<double>(ok_vanilla) / total / tasks.size();
  }
  std::printf("Average safe-configuration percentage over 6 HiBench tasks: "
              "ours = %s, vanilla BO = %s (paper: 93.00%% vs 69.67%%)\n",
              Pct(safe_pct).c_str(), Pct(vanilla_pct).c_str());
  return 0;
}
