// Hyperparameter sensitivity analysis. The paper (§6.1) states that the
// framework's own hyperparameters were "obtained via sensitivity analysis";
// this harness reproduces that methodology for the three central knobs:
//   * safety gamma (Eq. 8) — safety/optimality trade-off,
//   * AGD period N_AGD — exploitation cadence,
//   * initial sub-space size K_init.
// Each sweep reports the final best cost and the infeasible-suggestion
// ratio on two contrasting tasks.
#include <cmath>

#include "baselines/ours.h"
#include "bench_util.h"

using namespace sparktune;
using namespace sparktune::bench;

namespace {

struct SweepResult {
  double geo_best = 0.0;
  double infeasible_pct = 0.0;
};

SweepResult Evaluate(const TaskEnv& env, const OursOptions& base_opts,
                     int budget, int seeds) {
  double log_best = 0.0;
  int infeasible = 0, total = 0;
  for (int s = 0; s < seeds; ++s) {
    uint64_t seed = 900 + static_cast<uint64_t>(s);
    TuningObjective obj = env.ObjectiveWithConstraints(0.5, seed);
    obj.resource_max = env.DefaultRun(seed).resource_rate * 2.0;
    OursMethod method(base_opts, "sweep");
    RunHistory h = RunMethod(&method, env, obj, budget, seed);
    double best = h.BestObjective();
    if (!std::isfinite(best)) best = 1e9;
    log_best += std::log(best) / seeds;
    for (const auto& o : h.observations()) infeasible += !o.feasible;
    total += budget;
  }
  return {std::exp(log_best), 100.0 * infeasible / total};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int budget = flags.Int("budget", 25);
  const int seeds = flags.Int("seeds", 4);
  if (!flags.Validate()) return 1;
  const char* tasks[] = {"WordCount", "TeraSort"};

  // ---- gamma sweep ----
  {
    TablePrinter table({"Task", "gamma", "best cost (geo-mean)",
                        "infeasible %"});
    for (const char* task : tasks) {
      TaskEnv env(task);
      for (double gamma : {0.25, 0.5, 0.75, 1.0}) {
        OursOptions opts;
        opts.advisor.safety_gamma = gamma;
        SweepResult r = Evaluate(env, opts, budget, seeds);
        table.AddRow({task, StrFormat("%.2f", gamma),
                      StrFormat("%.1f", r.geo_best),
                      StrFormat("%.1f%%", r.infeasible_pct)});
      }
    }
    std::printf("Sensitivity: safety gamma (Eq. 8) — larger gamma is more "
                "conservative\n%s\n",
                table.ToString().c_str());
  }

  // ---- N_AGD sweep ----
  {
    TablePrinter table({"Task", "N_AGD", "best cost (geo-mean)",
                        "infeasible %"});
    for (const char* task : tasks) {
      TaskEnv env(task);
      for (int period : {3, 5, 8, 1000000}) {
        OursOptions opts;
        opts.advisor.agd.period = period;
        if (period >= 1000000) opts.advisor.enable_agd = false;
        SweepResult r = Evaluate(env, opts, budget, seeds);
        table.AddRow({task,
                      period >= 1000000 ? "off" : StrFormat("%d", period),
                      StrFormat("%.1f", r.geo_best),
                      StrFormat("%.1f%%", r.infeasible_pct)});
      }
    }
    std::printf("Sensitivity: AGD cadence N_AGD (paper default 5)\n%s\n",
                table.ToString().c_str());
  }

  // ---- K_init sweep ----
  {
    TablePrinter table({"Task", "K_init", "best cost (geo-mean)",
                        "infeasible %"});
    for (const char* task : tasks) {
      TaskEnv env(task);
      for (int k : {6, 10, 14, 30}) {
        OursOptions opts;
        opts.advisor.subspace.k_init = k;
        SweepResult r = Evaluate(env, opts, budget, seeds);
        table.AddRow({task, StrFormat("%d", k),
                      StrFormat("%.1f", r.geo_best),
                      StrFormat("%.1f%%", r.infeasible_pct)});
      }
    }
    std::printf("Sensitivity: initial sub-space size K_init "
                "(paper default 10)\n%s",
                table.ToString().c_str());
  }
  return 0;
}
