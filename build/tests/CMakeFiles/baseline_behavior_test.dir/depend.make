# Empty dependencies file for baseline_behavior_test.
# This may be replaced when dependencies are built.
