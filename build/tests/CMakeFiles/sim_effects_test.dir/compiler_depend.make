# Empty compiler generated dependencies file for sim_effects_test.
# This may be replaced when dependencies are built.
