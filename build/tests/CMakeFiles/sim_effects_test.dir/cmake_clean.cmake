file(REMOVE_RECURSE
  "CMakeFiles/sim_effects_test.dir/sim_effects_test.cc.o"
  "CMakeFiles/sim_effects_test.dir/sim_effects_test.cc.o.d"
  "sim_effects_test"
  "sim_effects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_effects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
