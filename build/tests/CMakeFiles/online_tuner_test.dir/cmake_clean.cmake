file(REMOVE_RECURSE
  "CMakeFiles/online_tuner_test.dir/online_tuner_test.cc.o"
  "CMakeFiles/online_tuner_test.dir/online_tuner_test.cc.o.d"
  "online_tuner_test"
  "online_tuner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
