# Empty compiler generated dependencies file for online_tuner_test.
# This may be replaced when dependencies are built.
