file(REMOVE_RECURSE
  "CMakeFiles/production_test.dir/production_test.cc.o"
  "CMakeFiles/production_test.dir/production_test.cc.o.d"
  "production_test"
  "production_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
