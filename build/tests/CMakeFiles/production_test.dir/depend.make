# Empty dependencies file for production_test.
# This may be replaced when dependencies are built.
