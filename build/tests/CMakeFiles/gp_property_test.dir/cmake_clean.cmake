file(REMOVE_RECURSE
  "CMakeFiles/gp_property_test.dir/gp_property_test.cc.o"
  "CMakeFiles/gp_property_test.dir/gp_property_test.cc.o.d"
  "gp_property_test"
  "gp_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
