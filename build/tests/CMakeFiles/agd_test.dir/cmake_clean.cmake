file(REMOVE_RECURSE
  "CMakeFiles/agd_test.dir/agd_test.cc.o"
  "CMakeFiles/agd_test.dir/agd_test.cc.o.d"
  "agd_test"
  "agd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
