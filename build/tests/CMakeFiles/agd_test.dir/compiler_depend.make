# Empty compiler generated dependencies file for agd_test.
# This may be replaced when dependencies are built.
