file(REMOVE_RECURSE
  "CMakeFiles/sobol_test.dir/sobol_test.cc.o"
  "CMakeFiles/sobol_test.dir/sobol_test.cc.o.d"
  "sobol_test"
  "sobol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sobol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
