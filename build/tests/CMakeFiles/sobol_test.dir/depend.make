# Empty dependencies file for sobol_test.
# This may be replaced when dependencies are built.
