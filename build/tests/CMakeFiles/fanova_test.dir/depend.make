# Empty dependencies file for fanova_test.
# This may be replaced when dependencies are built.
