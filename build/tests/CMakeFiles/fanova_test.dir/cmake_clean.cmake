file(REMOVE_RECURSE
  "CMakeFiles/fanova_test.dir/fanova_test.cc.o"
  "CMakeFiles/fanova_test.dir/fanova_test.cc.o.d"
  "fanova_test"
  "fanova_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanova_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
