file(REMOVE_RECURSE
  "CMakeFiles/advisor_context_test.dir/advisor_context_test.cc.o"
  "CMakeFiles/advisor_context_test.dir/advisor_context_test.cc.o.d"
  "advisor_context_test"
  "advisor_context_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
