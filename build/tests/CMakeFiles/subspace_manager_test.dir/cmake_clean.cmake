file(REMOVE_RECURSE
  "CMakeFiles/subspace_manager_test.dir/subspace_manager_test.cc.o"
  "CMakeFiles/subspace_manager_test.dir/subspace_manager_test.cc.o.d"
  "subspace_manager_test"
  "subspace_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subspace_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
