# Empty compiler generated dependencies file for subspace_manager_test.
# This may be replaced when dependencies are built.
