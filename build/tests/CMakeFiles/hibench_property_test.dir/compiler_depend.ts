# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hibench_property_test.
