file(REMOVE_RECURSE
  "CMakeFiles/hibench_property_test.dir/hibench_property_test.cc.o"
  "CMakeFiles/hibench_property_test.dir/hibench_property_test.cc.o.d"
  "hibench_property_test"
  "hibench_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hibench_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
