# Empty dependencies file for hibench_property_test.
# This may be replaced when dependencies are built.
