file(REMOVE_RECURSE
  "CMakeFiles/advisor_lifecycle_test.dir/advisor_lifecycle_test.cc.o"
  "CMakeFiles/advisor_lifecycle_test.dir/advisor_lifecycle_test.cc.o.d"
  "advisor_lifecycle_test"
  "advisor_lifecycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_lifecycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
