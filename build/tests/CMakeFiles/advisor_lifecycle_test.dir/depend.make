# Empty dependencies file for advisor_lifecycle_test.
# This may be replaced when dependencies are built.
