file(REMOVE_RECURSE
  "CMakeFiles/runtime_model_test.dir/runtime_model_test.cc.o"
  "CMakeFiles/runtime_model_test.dir/runtime_model_test.cc.o.d"
  "runtime_model_test"
  "runtime_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
