# Empty compiler generated dependencies file for bench_fig9_agd.
# This may be replaced when dependencies are built.
