file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_agd.dir/bench_fig9_agd.cpp.o"
  "CMakeFiles/bench_fig9_agd.dir/bench_fig9_agd.cpp.o.d"
  "bench_fig9_agd"
  "bench_fig9_agd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_agd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
