# Empty dependencies file for bench_table5_importance.
# This may be replaced when dependencies are built.
