# Empty dependencies file for bench_fig7_subspace.
# This may be replaced when dependencies are built.
