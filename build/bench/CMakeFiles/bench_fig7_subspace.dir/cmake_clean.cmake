file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_subspace.dir/bench_fig7_subspace.cpp.o"
  "CMakeFiles/bench_fig7_subspace.dir/bench_fig7_subspace.cpp.o.d"
  "bench_fig7_subspace"
  "bench_fig7_subspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_subspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
