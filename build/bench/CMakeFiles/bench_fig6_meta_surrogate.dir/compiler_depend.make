# Empty compiler generated dependencies file for bench_fig6_meta_surrogate.
# This may be replaced when dependencies are built.
