file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_meta_surrogate.dir/bench_fig6_meta_surrogate.cpp.o"
  "CMakeFiles/bench_fig6_meta_surrogate.dir/bench_fig6_meta_surrogate.cpp.o.d"
  "bench_fig6_meta_surrogate"
  "bench_fig6_meta_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_meta_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
