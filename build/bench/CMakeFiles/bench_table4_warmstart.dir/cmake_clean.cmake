file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_warmstart.dir/bench_table4_warmstart.cpp.o"
  "CMakeFiles/bench_table4_warmstart.dir/bench_table4_warmstart.cpp.o.d"
  "bench_table4_warmstart"
  "bench_table4_warmstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
