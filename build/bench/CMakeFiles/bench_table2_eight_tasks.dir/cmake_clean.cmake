file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_eight_tasks.dir/bench_table2_eight_tasks.cpp.o"
  "CMakeFiles/bench_table2_eight_tasks.dir/bench_table2_eight_tasks.cpp.o.d"
  "bench_table2_eight_tasks"
  "bench_table2_eight_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_eight_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
