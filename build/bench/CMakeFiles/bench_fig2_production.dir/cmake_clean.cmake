file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_production.dir/bench_fig2_production.cpp.o"
  "CMakeFiles/bench_fig2_production.dir/bench_fig2_production.cpp.o.d"
  "bench_fig2_production"
  "bench_fig2_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
