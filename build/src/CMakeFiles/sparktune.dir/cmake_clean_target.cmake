file(REMOVE_RECURSE
  "libsparktune.a"
)
