
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cherrypick.cc" "src/CMakeFiles/sparktune.dir/baselines/cherrypick.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/cherrypick.cc.o.d"
  "/root/repo/src/baselines/dac.cc" "src/CMakeFiles/sparktune.dir/baselines/dac.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/dac.cc.o.d"
  "/root/repo/src/baselines/ga.cc" "src/CMakeFiles/sparktune.dir/baselines/ga.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/ga.cc.o.d"
  "/root/repo/src/baselines/locat.cc" "src/CMakeFiles/sparktune.dir/baselines/locat.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/locat.cc.o.d"
  "/root/repo/src/baselines/ours.cc" "src/CMakeFiles/sparktune.dir/baselines/ours.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/ours.cc.o.d"
  "/root/repo/src/baselines/random_search.cc" "src/CMakeFiles/sparktune.dir/baselines/random_search.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/random_search.cc.o.d"
  "/root/repo/src/baselines/rfhoc.cc" "src/CMakeFiles/sparktune.dir/baselines/rfhoc.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/rfhoc.cc.o.d"
  "/root/repo/src/baselines/tuneful.cc" "src/CMakeFiles/sparktune.dir/baselines/tuneful.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/tuneful.cc.o.d"
  "/root/repo/src/baselines/tuning_method.cc" "src/CMakeFiles/sparktune.dir/baselines/tuning_method.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/baselines/tuning_method.cc.o.d"
  "/root/repo/src/bo/acq_optimizer.cc" "src/CMakeFiles/sparktune.dir/bo/acq_optimizer.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/bo/acq_optimizer.cc.o.d"
  "/root/repo/src/bo/acquisition.cc" "src/CMakeFiles/sparktune.dir/bo/acquisition.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/bo/acquisition.cc.o.d"
  "/root/repo/src/bo/advisor.cc" "src/CMakeFiles/sparktune.dir/bo/advisor.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/bo/advisor.cc.o.d"
  "/root/repo/src/bo/agd.cc" "src/CMakeFiles/sparktune.dir/bo/agd.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/bo/agd.cc.o.d"
  "/root/repo/src/bo/history.cc" "src/CMakeFiles/sparktune.dir/bo/history.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/bo/history.cc.o.d"
  "/root/repo/src/bo/optimizer.cc" "src/CMakeFiles/sparktune.dir/bo/optimizer.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/bo/optimizer.cc.o.d"
  "/root/repo/src/bo/subspace_manager.cc" "src/CMakeFiles/sparktune.dir/bo/subspace_manager.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/bo/subspace_manager.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/sparktune.dir/common/json.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/common/json.cc.o.d"
  "/root/repo/src/common/normal.cc" "src/CMakeFiles/sparktune.dir/common/normal.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/common/normal.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/sparktune.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/sparktune.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sparktune.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/sparktune.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/common/strings.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/sparktune.dir/common/table.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/common/table.cc.o.d"
  "/root/repo/src/fanova/fanova.cc" "src/CMakeFiles/sparktune.dir/fanova/fanova.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/fanova/fanova.cc.o.d"
  "/root/repo/src/forest/gbdt.cc" "src/CMakeFiles/sparktune.dir/forest/gbdt.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/forest/gbdt.cc.o.d"
  "/root/repo/src/forest/random_forest.cc" "src/CMakeFiles/sparktune.dir/forest/random_forest.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/forest/random_forest.cc.o.d"
  "/root/repo/src/forest/tree.cc" "src/CMakeFiles/sparktune.dir/forest/tree.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/forest/tree.cc.o.d"
  "/root/repo/src/linalg/cholesky.cc" "src/CMakeFiles/sparktune.dir/linalg/cholesky.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/linalg/cholesky.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/sparktune.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/meta/knowledge_base.cc" "src/CMakeFiles/sparktune.dir/meta/knowledge_base.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/meta/knowledge_base.cc.o.d"
  "/root/repo/src/meta/meta_features.cc" "src/CMakeFiles/sparktune.dir/meta/meta_features.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/meta/meta_features.cc.o.d"
  "/root/repo/src/meta/meta_surrogate.cc" "src/CMakeFiles/sparktune.dir/meta/meta_surrogate.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/meta/meta_surrogate.cc.o.d"
  "/root/repo/src/meta/similarity.cc" "src/CMakeFiles/sparktune.dir/meta/similarity.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/meta/similarity.cc.o.d"
  "/root/repo/src/model/features.cc" "src/CMakeFiles/sparktune.dir/model/features.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/model/features.cc.o.d"
  "/root/repo/src/model/gp.cc" "src/CMakeFiles/sparktune.dir/model/gp.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/model/gp.cc.o.d"
  "/root/repo/src/model/kernel.cc" "src/CMakeFiles/sparktune.dir/model/kernel.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/model/kernel.cc.o.d"
  "/root/repo/src/service/data_repository.cc" "src/CMakeFiles/sparktune.dir/service/data_repository.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/service/data_repository.cc.o.d"
  "/root/repo/src/service/tuning_service.cc" "src/CMakeFiles/sparktune.dir/service/tuning_service.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/service/tuning_service.cc.o.d"
  "/root/repo/src/space/config_space.cc" "src/CMakeFiles/sparktune.dir/space/config_space.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/space/config_space.cc.o.d"
  "/root/repo/src/space/parameter.cc" "src/CMakeFiles/sparktune.dir/space/parameter.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/space/parameter.cc.o.d"
  "/root/repo/src/space/sobol.cc" "src/CMakeFiles/sparktune.dir/space/sobol.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/space/sobol.cc.o.d"
  "/root/repo/src/space/subspace.cc" "src/CMakeFiles/sparktune.dir/space/subspace.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/space/subspace.cc.o.d"
  "/root/repo/src/sparksim/cluster.cc" "src/CMakeFiles/sparktune.dir/sparksim/cluster.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/cluster.cc.o.d"
  "/root/repo/src/sparksim/drift.cc" "src/CMakeFiles/sparktune.dir/sparksim/drift.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/drift.cc.o.d"
  "/root/repo/src/sparksim/event_log.cc" "src/CMakeFiles/sparktune.dir/sparksim/event_log.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/event_log.cc.o.d"
  "/root/repo/src/sparksim/event_log_json.cc" "src/CMakeFiles/sparktune.dir/sparksim/event_log_json.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/event_log_json.cc.o.d"
  "/root/repo/src/sparksim/hibench.cc" "src/CMakeFiles/sparktune.dir/sparksim/hibench.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/hibench.cc.o.d"
  "/root/repo/src/sparksim/production.cc" "src/CMakeFiles/sparktune.dir/sparksim/production.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/production.cc.o.d"
  "/root/repo/src/sparksim/runtime_model.cc" "src/CMakeFiles/sparktune.dir/sparksim/runtime_model.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/runtime_model.cc.o.d"
  "/root/repo/src/sparksim/spark_conf.cc" "src/CMakeFiles/sparktune.dir/sparksim/spark_conf.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/spark_conf.cc.o.d"
  "/root/repo/src/sparksim/workload.cc" "src/CMakeFiles/sparktune.dir/sparksim/workload.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/sparksim/workload.cc.o.d"
  "/root/repo/src/tuner/evaluator.cc" "src/CMakeFiles/sparktune.dir/tuner/evaluator.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/tuner/evaluator.cc.o.d"
  "/root/repo/src/tuner/objective.cc" "src/CMakeFiles/sparktune.dir/tuner/objective.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/tuner/objective.cc.o.d"
  "/root/repo/src/tuner/online_tuner.cc" "src/CMakeFiles/sparktune.dir/tuner/online_tuner.cc.o" "gcc" "src/CMakeFiles/sparktune.dir/tuner/online_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
