# Empty dependencies file for sparktune.
# This may be replaced when dependencies are built.
