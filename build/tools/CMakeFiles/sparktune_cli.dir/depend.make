# Empty dependencies file for sparktune_cli.
# This may be replaced when dependencies are built.
