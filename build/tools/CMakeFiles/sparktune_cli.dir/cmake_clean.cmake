file(REMOVE_RECURSE
  "CMakeFiles/sparktune_cli.dir/sparktune_cli.cc.o"
  "CMakeFiles/sparktune_cli.dir/sparktune_cli.cc.o.d"
  "sparktune"
  "sparktune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparktune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
