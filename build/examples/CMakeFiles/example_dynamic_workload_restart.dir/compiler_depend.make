# Empty compiler generated dependencies file for example_dynamic_workload_restart.
# This may be replaced when dependencies are built.
