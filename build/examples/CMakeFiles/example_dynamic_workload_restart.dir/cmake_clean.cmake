file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_workload_restart.dir/dynamic_workload_restart.cpp.o"
  "CMakeFiles/example_dynamic_workload_restart.dir/dynamic_workload_restart.cpp.o.d"
  "example_dynamic_workload_restart"
  "example_dynamic_workload_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_workload_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
