# Empty dependencies file for example_generic_blackbox.
# This may be replaced when dependencies are built.
