file(REMOVE_RECURSE
  "CMakeFiles/example_generic_blackbox.dir/generic_blackbox.cpp.o"
  "CMakeFiles/example_generic_blackbox.dir/generic_blackbox.cpp.o.d"
  "example_generic_blackbox"
  "example_generic_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_generic_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
