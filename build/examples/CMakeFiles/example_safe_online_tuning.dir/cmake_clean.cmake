file(REMOVE_RECURSE
  "CMakeFiles/example_safe_online_tuning.dir/safe_online_tuning.cpp.o"
  "CMakeFiles/example_safe_online_tuning.dir/safe_online_tuning.cpp.o.d"
  "example_safe_online_tuning"
  "example_safe_online_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_safe_online_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
