# Empty compiler generated dependencies file for example_safe_online_tuning.
# This may be replaced when dependencies are built.
