file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_with_metalearning.dir/fleet_with_metalearning.cpp.o"
  "CMakeFiles/example_fleet_with_metalearning.dir/fleet_with_metalearning.cpp.o.d"
  "example_fleet_with_metalearning"
  "example_fleet_with_metalearning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_with_metalearning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
