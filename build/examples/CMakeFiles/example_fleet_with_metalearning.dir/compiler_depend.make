# Empty compiler generated dependencies file for example_fleet_with_metalearning.
# This may be replaced when dependencies are built.
