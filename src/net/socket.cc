#include "net/socket.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/strings.h"

namespace sparktune::net {

namespace {

Status FillAddr(const std::string& path, struct sockaddr_un* addr) {
  if (path.empty()) {
    return Status::InvalidArgument("empty socket path");
  }
  if (path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument(StrFormat(
        "socket path too long (%zu >= %zu): %s", path.size(),
        sizeof(addr->sun_path), path.c_str()));
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::OK();
}

Result<UniqueFd> NewSocket() {
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  return UniqueFd(fd);
}

}  // namespace

Result<UniqueFd> UnixListen(const std::string& path, int backlog) {
  struct sockaddr_un addr;
  SPARKTUNE_RETURN_IF_ERROR(FillAddr(path, &addr));
  SPARKTUNE_ASSIGN_OR_RETURN(fd, NewSocket());
  ::unlink(path.c_str());  // stale address from a killed incarnation
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Unavailable(StrFormat(
        "bind(%s): %s", path.c_str(), std::strerror(errno)));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::Unavailable(StrFormat(
        "listen(%s): %s", path.c_str(), std::strerror(errno)));
  }
  return std::move(fd);
}

Result<UniqueFd> UnixAccept(int listen_fd, int deadline_ms) {
  const int64_t start = MonotonicMs();
  for (;;) {
    SPARKTUNE_RETURN_IF_ERROR(
        WaitReadable(listen_fd, RemainingMs(start, deadline_ms)));
    int fd = ::accept4(listen_fd, nullptr, nullptr,
                       SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd >= 0) return UniqueFd(fd);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;  // raced with a dying client; wait again
    }
    return Status::Internal(StrFormat("accept: %s", std::strerror(errno)));
  }
}

Result<UniqueFd> UnixConnect(const std::string& path, int deadline_ms) {
  struct sockaddr_un addr;
  SPARKTUNE_RETURN_IF_ERROR(FillAddr(path, &addr));
  SPARKTUNE_ASSIGN_OR_RETURN(fd, NewSocket());
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS && errno != EAGAIN) {
    return Status::Unavailable(StrFormat(
        "connect(%s): %s", path.c_str(), std::strerror(errno)));
  }
  if (rc != 0) {
    // Non-blocking connect in flight: wait for writability, then read the
    // resolution out of SO_ERROR.
    SPARKTUNE_RETURN_IF_ERROR(WaitWritable(fd.get(), deadline_ms));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::Internal(StrFormat(
          "getsockopt(SO_ERROR): %s", std::strerror(errno)));
    }
    if (err != 0) {
      return Status::Unavailable(StrFormat(
          "connect(%s): %s", path.c_str(), std::strerror(err)));
    }
  }
  return std::move(fd);
}

}  // namespace sparktune::net
