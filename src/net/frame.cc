#include "net/frame.h"

#include <cassert>

#include "common/checksum.h"
#include "common/strings.h"

namespace sparktune::net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetU32(std::string_view buf, size_t off) {
  return static_cast<uint32_t>(static_cast<unsigned char>(buf[off])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(buf[off + 1]))
          << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(buf[off + 2]))
          << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(buf[off + 3]))
          << 24);
}

}  // namespace

bool IsValidMsgKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(MsgKind::kPing) &&
         kind <= static_cast<uint8_t>(MsgKind::kTaskStatus);
}

const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kPing: return "ping";
    case MsgKind::kConfigure: return "configure";
    case MsgKind::kRegisterTask: return "register-task";
    case MsgKind::kSubmitObservation: return "submit-observation";
    case MsgKind::kFetchSuggestion: return "fetch-suggestion";
    case MsgKind::kExecute: return "execute";
    case MsgKind::kHarvest: return "harvest";
    case MsgKind::kCheckpoint: return "checkpoint";
    case MsgKind::kRestore: return "restore";
    case MsgKind::kLoadRepository: return "load-repository";
    case MsgKind::kShutdown: return "shutdown";
    case MsgKind::kTaskStatus: return "task-status";
  }
  return "unknown";
}

std::string EncodeFrame(MsgKind kind, std::string_view payload) {
  assert(!payload.empty() && "protocol payloads are JSON envelopes, never empty");
  assert(payload.size() <= kMaxFramePayload);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(kind));
  out.push_back(0);  // reserved
  out.push_back(0);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  // The CRC covers the header prefix too: a bit flip in the kind (or any
  // other header byte that still passes field validation) must fail the
  // checksum instead of decoding as a well-formed frame of another kind.
  PutU32(&out, Crc32(payload, Crc32(std::string_view(out.data(), 12))));
  out.append(payload.data(), payload.size());
  return out;
}

Result<uint32_t> DecodeFrameHeader(std::string_view header, MsgKind* kind,
                                   uint32_t* crc) {
  if (header.size() != kFrameHeaderBytes) {
    return Status::DataLoss(StrFormat(
        "torn frame header: %zu of %zu bytes", header.size(),
        kFrameHeaderBytes));
  }
  const uint32_t magic = GetU32(header, 0);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument(StrFormat("bad frame magic 0x%08x", magic));
  }
  const uint8_t version = static_cast<unsigned char>(header[4]);
  if (version != kFrameVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported frame version %d", static_cast<int>(version)));
  }
  const uint8_t raw_kind = static_cast<unsigned char>(header[5]);
  if (!IsValidMsgKind(raw_kind)) {
    return Status::InvalidArgument(
        StrFormat("unknown message kind %d", static_cast<int>(raw_kind)));
  }
  if (header[6] != 0 || header[7] != 0) {
    return Status::InvalidArgument("non-zero reserved frame bytes");
  }
  const uint32_t len = GetU32(header, 8);
  if (len == 0) {
    return Status::InvalidArgument("zero-length frame payload");
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("oversized frame payload: %u > %u", len, kMaxFramePayload));
  }
  if (kind != nullptr) *kind = static_cast<MsgKind>(raw_kind);
  if (crc != nullptr) *crc = GetU32(header, 12);
  return len;
}

Result<Frame> DecodeFrame(std::string_view buf, size_t* consumed) {
  if (buf.size() < kFrameHeaderBytes) {
    return Status::DataLoss(StrFormat(
        "torn frame: %zu bytes, need %zu for the header", buf.size(),
        kFrameHeaderBytes));
  }
  MsgKind kind = MsgKind::kPing;
  uint32_t crc = 0;
  SPARKTUNE_ASSIGN_OR_RETURN(
      len, DecodeFrameHeader(buf.substr(0, kFrameHeaderBytes), &kind, &crc));
  const size_t total = kFrameHeaderBytes + static_cast<size_t>(len);
  if (buf.size() < total) {
    return Status::DataLoss(StrFormat(
        "truncated frame: %zu of %zu bytes", buf.size(), total));
  }
  std::string_view payload = buf.substr(kFrameHeaderBytes, len);
  const uint32_t got = Crc32(payload, Crc32(buf.substr(0, 12)));
  if (got != crc) {
    return Status::DataLoss(StrFormat(
        "frame CRC mismatch: header 0x%08x payload 0x%08x", crc, got));
  }
  Frame frame;
  frame.kind = kind;
  frame.payload.assign(payload.data(), payload.size());
  if (consumed != nullptr) *consumed = total;
  return frame;
}

}  // namespace sparktune::net
