// Low-level descriptor I/O for the net layer: EINTR-safe, SIGPIPE-immune
// read/write loops with per-call deadlines (DESIGN.md §9).
//
// Deadlines are wall milliseconds of CLOCK_MONOTONIC — the one place in
// the tree outside src/sparksim where real time is allowed, because these
// deadlines bound blocking on a real socket and never feed tuner state.
// A deadline of -1 blocks indefinitely; 0 polls.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"

namespace sparktune::net {

// Move-only RAII file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Milliseconds on the monotonic clock (deadline arithmetic only).
int64_t MonotonicMs();

// Remaining budget of a deadline that started `start_ms` ago with
// `deadline_ms` total; -1 stays -1 (infinite), exhausted budgets clamp
// to 0 (poll once, then time out).
int RemainingMs(int64_t start_ms, int deadline_ms);

// EINTR-safe poll for readability/writability. kUnavailable on timeout,
// kInternal on poll failure.
Status WaitReadable(int fd, int deadline_ms);
Status WaitWritable(int fd, int deadline_ms);

// Read exactly `n` bytes before the deadline elapses.
//   * peer closed before the first byte: kUnavailable ("connection closed")
//   * peer closed mid-buffer: kDataLoss (a torn message)
//   * deadline exhausted: kUnavailable
Status ReadFull(int fd, void* buf, size_t n, int deadline_ms);

// Write exactly `n` bytes before the deadline elapses. Uses
// send(MSG_NOSIGNAL) so a dead peer yields kUnavailable (EPIPE), never a
// process-killing SIGPIPE.
Status WriteFull(int fd, const void* buf, size_t n, int deadline_ms);

// EINTR-safe sleep (reconnect backoff pacing).
void SleepMs(int ms);

}  // namespace sparktune::net
