// Framed message exchange over a connected descriptor: one WriteFrame /
// ReadFrame pair per protocol message, built on the EINTR-safe loops in
// net/io.h and the codec in net/frame.h.
#pragma once

#include <string_view>

#include "common/result.h"
#include "net/frame.h"

namespace sparktune::net {

// Encode + write one frame before the deadline.
Status WriteFrame(int fd, MsgKind kind, std::string_view payload,
                  int deadline_ms);

// Read exactly one frame before the deadline. Header-validation failures
// are kInvalidArgument, torn reads and CRC mismatches kDataLoss, a clean
// close before the first header byte kUnavailable. The declared payload
// length is validated against kMaxFramePayload before any allocation.
Result<Frame> ReadFrame(int fd, int deadline_ms);

}  // namespace sparktune::net
