// ShardClient: the control plane's connection to one worker process.
//
// One request/response exchange per Call(); Send()/Receive() split the
// exchange so the supervisor can pipeline a tick across shards (write
// every shard's batch first, then collect responses). Reconnects follow
// the service RetryPolicy's backoff schedule — the k-th attempt waits
// BackoffPeriods(k) * backoff_unit_ms, so the wall schedule is the same
// deterministic curve the in-service watchdog uses (no ad-hoc backoff
// math in the net layer), pinned by tests/rpc_test.cc.
#pragma once

#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/json.h"
#include "common/result.h"
#include "net/channel.h"
#include "net/chaos.h"
#include "net/io.h"

namespace sparktune::net {

struct ShardClientOptions {
  std::string socket_path;
  // Budget for one connect attempt (the schedule below spaces attempts).
  int connect_timeout_ms = 1000;
  // Default per-call deadline: frame write + response read.
  int call_timeout_ms = 20000;
  // Reconnect schedule: max_attempts connect tries, the k-th preceded by
  // BackoffPeriods(k-1) * backoff_unit_ms of sleep (the first is
  // immediate).
  RetryPolicy reconnect;
  int backoff_unit_ms = 20;
  // Deterministic wire-fault injection on this client's request writes
  // (net/chaos.h; seed 0 = off). Every injected fault is a typed
  // kDataLoss/kUnavailable and disconnects, exactly like a real fault.
  ChaosOptions chaos;
};

// The delay (ms) slept before each reconnect attempt: index k-1 holds the
// pause before attempt k. Attempt 1 is immediate; attempt k > 1 waits
// RetryPolicy::BackoffPeriods(k-1) * unit_ms. Exposed so tests pin the
// schedule against the watchdog's own backoff curve.
std::vector<int> ReconnectDelaysMs(const RetryPolicy& policy, int unit_ms);

// Tick-domain reconnect pacing for supervisors that probe a dead shard
// once per Tick() instead of sleeping: after the k-th consecutive failed
// attempt the next try is BackoffPeriods(k) ticks later. Deterministic in
// the failure count alone.
struct ReconnectState {
  int failures = 0;
  int skip_remaining = 0;

  // True when this tick should attempt a connect (and consumes the tick).
  bool ShouldAttempt();
  void RecordFailure(const RetryPolicy& policy);
  void RecordSuccess();
};

class ShardClient {
 public:
  explicit ShardClient(ShardClientOptions options);
  ~ShardClient();
  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  // Connect, retrying per ReconnectDelaysMs. kUnavailable when every
  // attempt fails.
  Status Connect();
  // One connect attempt, no schedule (per-tick probing).
  Status ConnectOnce();
  bool connected() const { return fd_.valid(); }
  void Disconnect() { fd_.Reset(); }

  // One request/response exchange. The response frame must echo the
  // request kind and carry a JSON object envelope ({"ok":true,...} or
  // {"ok":false,"code":...,"message":...}); an error envelope comes back
  // as its decoded Status. Transport failures disconnect and return
  // kUnavailable — the next Call() redials.
  Result<Json> Call(MsgKind kind, const Json& body);
  Result<Json> Call(MsgKind kind, const Json& body, int deadline_ms);

  // Pipelined half-exchanges. A Send() must be matched by one Receive()
  // of the same kind before the next Send() on this client.
  Status Send(MsgKind kind, const Json& body, int deadline_ms);
  Result<Json> Receive(MsgKind kind, int deadline_ms);

  const ShardClientOptions& options() const { return options_; }
  const ChaosStats& chaos_stats() const { return chaos_.stats(); }

 private:
  ShardClientOptions options_;
  UniqueFd fd_;
  ChaosChannel chaos_;
};

}  // namespace sparktune::net
