#include "net/client.h"

#include "common/strings.h"
#include "net/socket.h"

namespace sparktune::net {

std::vector<int> ReconnectDelaysMs(const RetryPolicy& policy, int unit_ms) {
  std::vector<int> delays;
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  delays.reserve(static_cast<size_t>(attempts));
  delays.push_back(0);  // attempt 1 is immediate
  for (int k = 1; k < attempts; ++k) {
    delays.push_back(policy.BackoffPeriods(k) * unit_ms);
  }
  return delays;
}

bool ReconnectState::ShouldAttempt() {
  if (skip_remaining > 0) {
    --skip_remaining;
    return false;
  }
  return true;
}

void ReconnectState::RecordFailure(const RetryPolicy& policy) {
  ++failures;
  skip_remaining = policy.BackoffPeriods(failures);
}

void ReconnectState::RecordSuccess() {
  failures = 0;
  skip_remaining = 0;
}

ShardClient::ShardClient(ShardClientOptions options)
    : options_(std::move(options)), chaos_(options_.chaos) {}

ShardClient::~ShardClient() = default;

Status ShardClient::ConnectOnce() {
  if (connected()) return Status::OK();
  auto fd = UnixConnect(options_.socket_path, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = std::move(fd).value();
  return Status::OK();
}

Status ShardClient::Connect() {
  if (connected()) return Status::OK();
  const std::vector<int> delays =
      ReconnectDelaysMs(options_.reconnect, options_.backoff_unit_ms);
  Status last = Status::Unavailable("no connect attempt made");
  for (size_t k = 0; k < delays.size(); ++k) {
    SleepMs(delays[k]);
    last = ConnectOnce();
    if (last.ok()) return last;
  }
  return Status::Unavailable(StrFormat(
      "connect(%s) failed after %zu attempts: %s",
      options_.socket_path.c_str(), delays.size(), last.message().c_str()));
}

Status ShardClient::Send(MsgKind kind, const Json& body, int deadline_ms) {
  if (!connected()) {
    SPARKTUNE_RETURN_IF_ERROR(ConnectOnce());
  }
  Status st = chaos_.WriteFrame(fd_.get(), kind, body.Dump(), deadline_ms);
  if (!st.ok()) Disconnect();
  return st;
}

Result<Json> ShardClient::Receive(MsgKind kind, int deadline_ms) {
  if (!connected()) return Status::Unavailable("not connected");
  auto frame = ReadFrame(fd_.get(), deadline_ms);
  if (!frame.ok()) {
    // Torn/timed-out/corrupt response: the stream is unsynchronized.
    Disconnect();
    return frame.status();
  }
  if (frame->kind != kind) {
    // A stale or duplicated response means the stream is desynchronized:
    // type it as data loss (not Internal) so fault handling stays within
    // the transport taxonomy even under chaos injection.
    Disconnect();
    return Status::DataLoss(StrFormat(
        "response kind mismatch: sent %s, got %s", MsgKindName(kind),
        MsgKindName(frame->kind)));
  }
  auto doc = Json::Parse(frame->payload);
  if (!doc.ok() || !doc->is_object()) {
    Disconnect();
    return Status::DataLoss("response envelope is not a JSON object");
  }
  if (!doc->GetBoolOr("ok", false)) {
    // In-band service error: the connection itself stays healthy.
    const std::string code = doc->GetStringOr("code", "Internal");
    const std::string message = doc->GetStringOr("message", "(no message)");
    if (code == "InvalidArgument") return Status::InvalidArgument(message);
    if (code == "NotFound") return Status::NotFound(message);
    if (code == "OutOfRange") return Status::OutOfRange(message);
    if (code == "FailedPrecondition") {
      return Status::FailedPrecondition(message);
    }
    if (code == "Unavailable") return Status::Unavailable(message);
    if (code == "DataLoss") return Status::DataLoss(message);
    return Status::Internal(message);
  }
  return *std::move(doc);
}

Result<Json> ShardClient::Call(MsgKind kind, const Json& body) {
  return Call(kind, body, options_.call_timeout_ms);
}

Result<Json> ShardClient::Call(MsgKind kind, const Json& body,
                               int deadline_ms) {
  const int64_t start = MonotonicMs();
  SPARKTUNE_RETURN_IF_ERROR(Send(kind, body, deadline_ms));
  return Receive(kind, RemainingMs(start, deadline_ms));
}

}  // namespace sparktune::net
