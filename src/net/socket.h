// Unix-domain stream sockets for the shard protocol (DESIGN.md §9).
// All descriptors come back CLOEXEC so fork/exec'd workers never inherit
// a sibling's connection.
#pragma once

#include <string>

#include "common/result.h"
#include "net/io.h"

namespace sparktune::net {

// Bind + listen on `path`. A stale socket file at `path` (a previous
// incarnation's leftover) is unlinked first — the control plane respawns
// workers onto the same address.
Result<UniqueFd> UnixListen(const std::string& path, int backlog = 8);

// Accept one connection; kUnavailable on deadline.
Result<UniqueFd> UnixAccept(int listen_fd, int deadline_ms);

// Connect to `path`; kUnavailable when the socket is absent, refusing, or
// the deadline elapses (one attempt — retry scheduling lives in
// ShardClient, driven by RetryPolicy::BackoffPeriods).
Result<UniqueFd> UnixConnect(const std::string& path, int deadline_ms);

}  // namespace sparktune::net
