#include "net/channel.h"

#include "common/checksum.h"
#include "net/io.h"

namespace sparktune::net {

Status WriteFrame(int fd, MsgKind kind, std::string_view payload,
                  int deadline_ms) {
  const std::string frame = EncodeFrame(kind, payload);
  return WriteFull(fd, frame.data(), frame.size(), deadline_ms);
}

Result<Frame> ReadFrame(int fd, int deadline_ms) {
  const int64_t start = MonotonicMs();
  char header[kFrameHeaderBytes];
  SPARKTUNE_RETURN_IF_ERROR(ReadFull(fd, header, sizeof(header),
                                     RemainingMs(start, deadline_ms)));
  MsgKind kind = MsgKind::kPing;
  uint32_t crc = 0;
  SPARKTUNE_ASSIGN_OR_RETURN(
      len, DecodeFrameHeader(std::string_view(header, sizeof(header)), &kind,
                             &crc));
  Frame frame;
  frame.kind = kind;
  frame.payload.resize(len);
  Status read = ReadFull(fd, frame.payload.data(), frame.payload.size(),
                         RemainingMs(start, deadline_ms));
  if (!read.ok()) {
    // A timeout or reset mid-payload left a half-read frame on the wire:
    // the stream is unsynchronized, so surface it as data loss (the caller
    // must drop the connection, not retry the read).
    if (read.code() == Status::Code::kUnavailable) {
      return Status::DataLoss("frame payload cut off: " + read.message());
    }
    return read;
  }
  const uint32_t got =
      Crc32(frame.payload, Crc32(std::string_view(header, 12)));
  if (got != crc) {
    return Status::DataLoss("frame CRC mismatch on wire");
  }
  return frame;
}

}  // namespace sparktune::net
