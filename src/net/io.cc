#include "net/io.h"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/result.h"
#include "common/strings.h"

namespace sparktune::net {

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc != 0 && errno == EINTR);
  }
  fd_ = fd;
}

int64_t MonotonicMs() {
  struct timespec ts;
  // lint:allow(no-wall-clock) real-socket deadline clock; bounds blocking I/O only and never feeds tuner state
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000000;
}

int RemainingMs(int64_t start_ms, int deadline_ms) {
  if (deadline_ms < 0) return -1;
  const int64_t elapsed = MonotonicMs() - start_ms;
  const int64_t left = static_cast<int64_t>(deadline_ms) - elapsed;
  return left > 0 ? static_cast<int>(left) : 0;
}

namespace {

Status WaitEvent(int fd, short events, int deadline_ms, const char* what) {
  const int64_t start = MonotonicMs();
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int budget = RemainingMs(start, deadline_ms);
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return Status::OK();  // readable/writable/error — let the
                                      // following read/write surface it
    if (rc == 0) {
      return Status::Unavailable(StrFormat(
          "deadline (%d ms) waiting for socket %s", deadline_ms, what));
    }
    if (errno == EINTR) continue;
    return Status::Internal(StrFormat("poll: %s", std::strerror(errno)));
  }
}

}  // namespace

Status WaitReadable(int fd, int deadline_ms) {
  return WaitEvent(fd, POLLIN, deadline_ms, "readability");
}

Status WaitWritable(int fd, int deadline_ms) {
  return WaitEvent(fd, POLLOUT, deadline_ms, "writability");
}

Status ReadFull(int fd, void* buf, size_t n, int deadline_ms) {
  const int64_t start = MonotonicMs();
  char* p = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    SPARKTUNE_RETURN_IF_ERROR(
        WaitReadable(fd, RemainingMs(start, deadline_ms)));
    const ssize_t rc = ::recv(fd, p + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (done == 0) return Status::Unavailable("connection closed by peer");
      return Status::DataLoss(StrFormat(
          "connection closed mid-message: %zu of %zu bytes", done, n));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
    if (errno == ECONNRESET || errno == EPIPE) {
      if (done == 0) return Status::Unavailable("connection reset by peer");
      return Status::DataLoss(StrFormat(
          "connection reset mid-message: %zu of %zu bytes", done, n));
    }
    return Status::Internal(StrFormat("recv: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n, int deadline_ms) {
  const int64_t start = MonotonicMs();
  const char* p = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < n) {
    SPARKTUNE_RETURN_IF_ERROR(
        WaitWritable(fd, RemainingMs(start, deadline_ms)));
    // MSG_NOSIGNAL: a vanished peer must surface as a Status, not SIGPIPE.
    const ssize_t rc = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (rc >= 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::Unavailable(StrFormat(
          "peer gone after %zu of %zu bytes", done, n));
    }
    return Status::Internal(StrFormat("send: %s", std::strerror(errno)));
  }
  return Status::OK();
}

void SleepMs(int ms) {
  if (ms <= 0) return;
  struct timespec req;
  req.tv_sec = ms / 1000;
  req.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  struct timespec rem;
  while (::nanosleep(&req, &rem) != 0 && errno == EINTR) req = rem;
}

}  // namespace sparktune::net
