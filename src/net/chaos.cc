#include "net/chaos.h"

#include <sys/socket.h>

#include <string>

#include "common/rng.h"
#include "common/strings.h"
#include "net/channel.h"
#include "net/io.h"

namespace sparktune::net {
namespace {

// splitmix64 finalizer (same mixer the placement layer uses); local copy
// because net/ sits below service/ in the layering.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// One Rng per exchange, seeded purely by the chaos identity: draw order is
// fixed (Bernoulli, kind, then fault parameters), so the schedule is
// independent of wall time, thread count, and everything else in the run.
Rng ExchangeRng(const ChaosOptions& options, long long index) {
  uint64_t x = Mix64(options.seed);
  x = Mix64(x ^ Mix64(static_cast<uint64_t>(options.shard)));
  x = Mix64(x ^ options.salt);
  x = Mix64(x ^ static_cast<uint64_t>(index));
  return Rng(x);
}

ChaosFault DrawFault(const ChaosOptions& options, long long index) {
  if (options.seed == 0 || options.fault_prob <= 0) return ChaosFault::kNone;
  if (index < options.arm_after_exchanges) return ChaosFault::kNone;
  Rng rng = ExchangeRng(options, index);
  if (!rng.Bernoulli(options.fault_prob)) return ChaosFault::kNone;
  switch (rng.UniformInt(0, 4)) {
    case 0: return ChaosFault::kTornWrite;
    case 1: return ChaosFault::kBitFlip;
    case 2: return ChaosFault::kDupFrame;
    case 3: return ChaosFault::kDelay;
    default: return ChaosFault::kReset;
  }
}

}  // namespace

const char* ChaosFaultName(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::kNone: return "none";
    case ChaosFault::kTornWrite: return "torn-write";
    case ChaosFault::kBitFlip: return "bit-flip";
    case ChaosFault::kDupFrame: return "dup-frame";
    case ChaosFault::kDelay: return "delay";
    case ChaosFault::kReset: return "reset";
  }
  return "unknown";
}

ChaosChannel::ChaosChannel(ChaosOptions options) : options_(options) {}

ChaosFault ChaosChannel::FaultAt(long long index) const {
  return DrawFault(options_, index);
}

Status ChaosChannel::WriteFrame(int fd, MsgKind kind,
                                std::string_view payload, int deadline_ms) {
  const long long index = next_exchange_++;
  ++stats_.exchanges;
  const ChaosFault fault = DrawFault(options_, index);
  if (fault == ChaosFault::kNone) {
    return net::WriteFrame(fd, kind, payload, deadline_ms);
  }
  ++stats_.injected;
  // Re-derive the exchange Rng past the two scheduling draws so the fault
  // parameters (tear point, flipped bit) are deterministic too.
  Rng rng = ExchangeRng(options_, index);
  (void)rng.Bernoulli(options_.fault_prob);
  (void)rng.UniformInt(0, 4);
  const std::string frame = EncodeFrame(kind, payload);
  switch (fault) {
    case ChaosFault::kTornWrite: {
      ++stats_.torn_writes;
      // At least one byte, strictly less than the whole frame, then the
      // stream is poisoned: the peer sees a torn frame, never a hang.
      const size_t cut = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(frame.size()) - 1));
      (void)WriteFull(fd, frame.data(), cut, deadline_ms);
      ::shutdown(fd, SHUT_RDWR);
      return Status::DataLoss(StrFormat(
          "chaos: torn write (%zu of %zu bytes) on exchange %lld", cut,
          frame.size(), index));
    }
    case ChaosFault::kBitFlip: {
      ++stats_.bit_flips;
      std::string damaged = frame;
      const size_t bit = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(damaged.size()) * 8 - 1));
      damaged[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(damaged[bit / 8]) ^ (1u << (bit % 8)));
      (void)WriteFull(fd, damaged.data(), damaged.size(), deadline_ms);
      return Status::DataLoss(StrFormat(
          "chaos: flipped bit %zu on exchange %lld", bit, index));
    }
    case ChaosFault::kDupFrame: {
      ++stats_.dup_frames;
      std::string doubled = frame + frame;
      (void)WriteFull(fd, doubled.data(), doubled.size(), deadline_ms);
      return Status::DataLoss(StrFormat(
          "chaos: duplicated frame on exchange %lld", index));
    }
    case ChaosFault::kDelay: {
      ++stats_.delays;
      // Modeled, not slept: the frame is suppressed and the caller gets
      // the same typed timeout a deadline-blowing stall would produce,
      // without actually burning the deadline budget.
      SleepMs(1);
      return Status::Unavailable(StrFormat(
          "chaos: delay blew the %d ms deadline on exchange %lld",
          deadline_ms, index));
    }
    case ChaosFault::kReset:
    default: {
      ++stats_.resets;
      ::shutdown(fd, SHUT_RDWR);
      return Status::Unavailable(StrFormat(
          "chaos: connection reset on exchange %lld", index));
    }
  }
}

Result<Frame> ChaosChannel::ReadFrame(int fd, int deadline_ms) {
  return net::ReadFrame(fd, deadline_ms);
}

}  // namespace sparktune::net
