// Wire framing for the multi-process tuning service (DESIGN.md §9).
//
// Every message on a shard connection is one length-prefixed, CRC-framed
// unit:
//
//   offset  size  field
//   0       4     magic "SPTF" (little-endian u32 0x46545053)
//   4       1     protocol version (kFrameVersion)
//   5       1     message kind (MsgKind)
//   6       2     reserved, must be zero
//   8       4     payload length, little-endian u32 (1..kMaxFramePayload)
//   12      4     CRC-32 of header bytes 0..11 then the payload
//                 (common/checksum.h, zlib poly) — covering the header
//                 prefix means a kind-byte flip to another valid kind
//                 still fails the checksum
//   16      len   payload bytes (UTF-8 JSON in this protocol)
//
// Decode never trusts the peer: a bad magic/version/kind, a zero-length
// or oversized declared payload, or a non-zero reserved field is
// kInvalidArgument (the frame is well-formed garbage); a buffer shorter
// than the declared frame or a CRC mismatch is kDataLoss (a torn or
// bit-flipped frame). Decoders must never read past `buf.size()`
// regardless of what the header claims — the hardening corpus in
// tests/rpc_test.cc pins this under ASan/UBSan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace sparktune::net {

// Request kinds of the shard protocol (responses echo the request kind).
// Values are wire format — append only, never renumber.
enum class MsgKind : uint8_t {
  kPing = 1,               // health probe; also the post-spawn ready check
  kConfigure = 2,          // ServiceConfig: build the shard's TuningService
  kRegisterTask = 3,       // id + SimTaskSpec; shard builds the evaluator
  kSubmitObservation = 4,  // externally-executed observation -> repository
  kFetchSuggestion = 5,    // incumbent configuration for a task
  kExecute = 6,            // one periodic tick for a batch of task ids
  kHarvest = 7,            // fold histories into the knowledge base
  kCheckpoint = 8,         // checkpoint every dirty task
  kRestore = 9,            // restore from checkpoint + replay the gap
  kLoadRepository = 10,    // load persisted tasks into the knowledge base
  kShutdown = 11,          // graceful exit after the response is written
  kTaskStatus = 12,        // worker epoch + per-task period clocks/specs;
                           // supervisor Recover() reconciles against these
};

bool IsValidMsgKind(uint8_t kind);
const char* MsgKindName(MsgKind kind);

inline constexpr uint32_t kFrameMagic = 0x46545053u;  // "SPTF" LE
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
// Hard payload bound: a header declaring more than this is rejected before
// any allocation, so a corrupt length cannot balloon memory.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

struct Frame {
  MsgKind kind = MsgKind::kPing;
  std::string payload;
};

// Encode one frame. `payload` must be non-empty and within
// kMaxFramePayload (checked with an assert; callers send JSON envelopes
// that are never empty).
std::string EncodeFrame(MsgKind kind, std::string_view payload);

// Validate a 16-byte header. On success returns the declared payload
// length and fills `kind`/`crc`. `header.size()` must be exactly
// kFrameHeaderBytes (shorter input is the caller's torn-frame case).
Result<uint32_t> DecodeFrameHeader(std::string_view header, MsgKind* kind,
                                   uint32_t* crc);

// Decode exactly one frame from the front of `buf`.
//   * buf shorter than one header, or than header+declared length: kDataLoss
//   * header validation failure: kInvalidArgument
//   * payload CRC mismatch: kDataLoss
// On success `*consumed` (when non-null) is the total frame size.
Result<Frame> DecodeFrame(std::string_view buf, size_t* consumed = nullptr);

}  // namespace sparktune::net
