// ChaosChannel: deterministic wire-fault injection for the framed shard
// protocol (DESIGN.md §9). Wraps WriteFrame and injects torn writes,
// mid-stream bit flips, duplicated frames, deadline-blowing delays, and
// connection resets — each drawn from an Rng seeded purely by
// (seed, shard, direction salt, exchange index), so a chaos schedule is
// reproducible across runs, thread counts, and process respawns.
//
// Every injected fault surfaces to the *injecting* caller as a typed
// status — kDataLoss when bytes were damaged (torn / flipped / duplicated),
// kUnavailable when the exchange was suppressed (delay / reset) — never OK,
// so the caller tears the connection down immediately and the byte stream
// can never stay silently desynchronized. The peer independently observes
// the damage through the frame codec's own taxonomy (CRC mismatch, torn
// frame, EOF), which tests/chaos_net_test.cc pins: no injected fault ever
// becomes a crash, hang, or untyped error on either end.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "net/frame.h"

namespace sparktune::net {

enum class ChaosFault {
  kNone = 0,
  kTornWrite,  // strict prefix of the frame, then the stream is poisoned
  kBitFlip,    // full frame with one flipped bit (peer sees CRC kDataLoss)
  kDupFrame,   // frame written twice, connection poisoned
  kDelay,      // nothing written: models a delay past the call deadline
  kReset,      // shutdown(2) both directions before any byte
};

const char* ChaosFaultName(ChaosFault fault);

// Direction salts: the supervisor's request writes and the worker's
// response writes draw from independent deterministic streams even when
// they share (seed, shard).
inline constexpr uint64_t kChaosClientSalt = 0x636c69656e743031ULL;
inline constexpr uint64_t kChaosServerSalt = 0x7365727665723031ULL;

struct ChaosOptions {
  uint64_t seed = 0;      // 0 disables injection entirely
  double fault_prob = 0;  // per-exchange Bernoulli fault probability
  int shard = 0;
  uint64_t salt = kChaosClientSalt;
  // Exchanges [0, arm_after_exchanges) are exempt. A freshly spawned
  // channel starts its counter at zero, so configure/recovery traffic on a
  // new incarnation gets a deterministic grace window before chaos arms.
  int arm_after_exchanges = 0;
};

struct ChaosStats {
  long long exchanges = 0;  // WriteFrame calls seen (faulted or not)
  long long injected = 0;
  long long torn_writes = 0;
  long long bit_flips = 0;
  long long dup_frames = 0;
  long long delays = 0;
  long long resets = 0;
};

class ChaosChannel {
 public:
  explicit ChaosChannel(ChaosOptions options = {});

  bool enabled() const {
    return options_.seed != 0 && options_.fault_prob > 0;
  }

  // The fault this channel draws for exchange `index`: a pure function of
  // (seed, shard, salt, index) — exposed so tests pin the schedule.
  ChaosFault FaultAt(long long index) const;

  // WriteFrame with injection. Consumes one exchange index per call. A
  // clean exchange forwards to net::WriteFrame verbatim; an injected fault
  // damages or suppresses the bytes and returns kDataLoss/kUnavailable.
  Status WriteFrame(int fd, MsgKind kind, std::string_view payload,
                    int deadline_ms);
  // Reads are never injected (both directions of the wire are covered by
  // the writer on each side); passthrough kept for API symmetry.
  Result<Frame> ReadFrame(int fd, int deadline_ms);

  const ChaosOptions& options() const { return options_; }
  const ChaosStats& stats() const { return stats_; }
  long long exchange_index() const { return next_exchange_; }

 private:
  ChaosOptions options_;
  ChaosStats stats_;
  long long next_exchange_ = 0;
};

}  // namespace sparktune::net
