#include "space/subspace.h"

#include <algorithm>
#include <cassert>

namespace sparktune {

Subspace::Subspace(const ConfigSpace* space, std::vector<int> free,
                   Configuration base)
    : space_(space), base_(std::move(base)) {
  assert(space_ != nullptr);
  assert(base_.size() == space_->size());
  is_free_.assign(space_->size(), false);
  for (int idx : free) {
    assert(idx >= 0 && idx < static_cast<int>(space_->size()));
    if (!is_free_[static_cast<size_t>(idx)]) {
      is_free_[static_cast<size_t>(idx)] = true;
      free_.push_back(idx);
    }
  }
}

Subspace Subspace::Full(const ConfigSpace* space) {
  std::vector<int> all(space->size());
  for (size_t i = 0; i < space->size(); ++i) all[i] = static_cast<int>(i);
  return Subspace(space, std::move(all), space->Default());
}

bool Subspace::IsFree(int param_index) const {
  assert(param_index >= 0 &&
         param_index < static_cast<int>(is_free_.size()));
  return is_free_[static_cast<size_t>(param_index)];
}

Configuration Subspace::Sample(Rng* rng) const {
  Configuration c = base_;
  for (int idx : free_) {
    const Parameter& p = space_->param(static_cast<size_t>(idx));
    c[static_cast<size_t>(idx)] = p.FromUnit(rng->Uniform());
  }
  return c;
}

Configuration Subspace::FromFreeUnit(const std::vector<double>& u) const {
  assert(u.size() == free_.size());
  Configuration c = base_;
  for (size_t k = 0; k < free_.size(); ++k) {
    size_t idx = static_cast<size_t>(free_[k]);
    c[idx] = space_->param(idx).FromUnit(u[k]);
  }
  return c;
}

std::vector<double> Subspace::ToFreeUnit(const Configuration& c) const {
  assert(c.size() == space_->size());
  std::vector<double> u(free_.size());
  for (size_t k = 0; k < free_.size(); ++k) {
    size_t idx = static_cast<size_t>(free_[k]);
    u[k] = space_->param(idx).ToUnit(c[idx]);
  }
  return u;
}

Configuration Subspace::Neighbor(const Configuration& c, double sigma,
                                 Rng* rng) const {
  std::vector<double> u = ToFreeUnit(c);
  bool changed = false;
  double p_mutate = free_.empty() ? 0.0 : 1.0 / static_cast<double>(free_.size());
  for (size_t k = 0; k < u.size(); ++k) {
    if (rng->Bernoulli(p_mutate)) {
      u[k] = std::clamp(u[k] + rng->Normal(0.0, sigma), 0.0, 1.0);
      changed = true;
    }
  }
  if (!changed && !u.empty()) {
    size_t k = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(u.size()) - 1));
    u[k] = std::clamp(u[k] + rng->Normal(0.0, sigma), 0.0, 1.0);
  }
  return FromFreeUnit(u);
}

Configuration Subspace::Project(const Configuration& c) const {
  Configuration out = base_;
  for (int idx : free_) {
    out[static_cast<size_t>(idx)] = c[static_cast<size_t>(idx)];
  }
  return out;
}

}  // namespace sparktune
