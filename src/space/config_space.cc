#include "space/config_space.h"

#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace sparktune {

Status ConfigSpace::Add(Parameter p) {
  if (index_.count(p.name()) > 0) {
    return Status::InvalidArgument("duplicate parameter: " + p.name());
  }
  index_[p.name()] = params_.size();
  params_.push_back(std::move(p));
  return Status::OK();
}

int ConfigSpace::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

Configuration ConfigSpace::Default() const {
  std::vector<double> v(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) v[i] = params_[i].default_value();
  return Configuration(std::move(v));
}

Configuration ConfigSpace::Sample(Rng* rng) const {
  std::vector<double> u(params_.size());
  for (auto& x : u) x = rng->Uniform();
  return FromUnit(u);
}

std::vector<double> ConfigSpace::ToUnit(const Configuration& c) const {
  assert(c.size() == params_.size());
  std::vector<double> u(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) u[i] = params_[i].ToUnit(c[i]);
  return u;
}

Configuration ConfigSpace::FromUnit(const std::vector<double>& u) const {
  assert(u.size() == params_.size());
  std::vector<double> v(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) v[i] = params_[i].FromUnit(u[i]);
  return Configuration(std::move(v));
}

Configuration ConfigSpace::Legalize(const Configuration& c) const {
  assert(c.size() == params_.size());
  std::vector<double> v(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) v[i] = params_[i].Legalize(c[i]);
  return Configuration(std::move(v));
}

Status ConfigSpace::Validate(const Configuration& c) const {
  if (c.size() != params_.size()) {
    return Status::InvalidArgument(
        StrFormat("configuration has %zu values, space has %zu parameters",
                  c.size(), params_.size()));
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    const Parameter& p = params_[i];
    double legal = p.Legalize(c[i]);
    if (std::fabs(legal - c[i]) > 1e-9) {
      return Status::OutOfRange(StrFormat("parameter %s value %g out of domain",
                                          p.name().c_str(), c[i]));
    }
  }
  return Status::OK();
}

double ConfigSpace::Get(const Configuration& c, const std::string& name) const {
  int i = IndexOf(name);
  assert(i >= 0 && "unknown parameter name");
  return c[static_cast<size_t>(i)];
}

void ConfigSpace::Set(Configuration* c, const std::string& name,
                      double value) const {
  int i = IndexOf(name);
  assert(i >= 0 && "unknown parameter name");
  (*c)[static_cast<size_t>(i)] = params_[static_cast<size_t>(i)].Legalize(value);
}

std::string ConfigSpace::Format(const Configuration& c) const {
  std::vector<std::string> parts;
  parts.reserve(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    parts.push_back(params_[i].name() + "=" + params_[i].FormatValue(c[i]));
  }
  return StrJoin(parts, ", ");
}

}  // namespace sparktune
