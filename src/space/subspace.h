// Configuration sub-space Λ_sub (paper §4.1): a subset of "free" parameters
// being tuned while the remaining parameters are pinned to a base
// configuration (the best configuration found so far, or the default).
#pragma once

#include <vector>

#include "common/rng.h"
#include "space/config_space.h"

namespace sparktune {

class Subspace {
 public:
  // `free` holds parameter indices into `space`; `base` supplies values for
  // pinned parameters. Duplicate indices are ignored.
  Subspace(const ConfigSpace* space, std::vector<int> free,
           Configuration base);

  // A subspace over all parameters of `space`.
  static Subspace Full(const ConfigSpace* space);

  const ConfigSpace& space() const { return *space_; }
  const std::vector<int>& free_indices() const { return free_; }
  size_t num_free() const { return free_.size(); }
  const Configuration& base() const { return base_; }
  bool IsFree(int param_index) const;

  // Uniform random sample: free dims random, pinned dims from base.
  Configuration Sample(Rng* rng) const;

  // Embed a unit-cube point over the free dims (size num_free()) into a
  // full configuration.
  Configuration FromFreeUnit(const std::vector<double>& u) const;
  // Extract the free-dim unit coordinates of a full configuration.
  std::vector<double> ToFreeUnit(const Configuration& c) const;

  // Gaussian perturbation of `c` in unit space over free dims only
  // (stddev `sigma`), legalized; used by local acquisition search. With
  // probability 1/num_free each dimension is perturbed (at least one).
  Configuration Neighbor(const Configuration& c, double sigma, Rng* rng) const;

  // Overwrite pinned dims of `c` with base values (projection into the
  // subspace).
  Configuration Project(const Configuration& c) const;

 private:
  const ConfigSpace* space_;
  std::vector<int> free_;
  std::vector<bool> is_free_;
  Configuration base_;
};

}  // namespace sparktune
