#include "space/sobol.h"

#include <cassert>
#include <cmath>
#include <memory>

namespace sparktune {

namespace {

constexpr int kBits = 52;  // enough for double mantissa

// Primitive polynomials over GF(2), encoded as (degree, interior coefficient
// bits a_1..a_{d-1}); the leading and trailing coefficients are implicit 1.
// Degrees 1..6 give 18 polynomials -> dimensions 2..19 (dimension 1 is the
// van der Corput sequence).
struct Poly {
  int degree;
  uint32_t coeffs;  // bit i (from MSB of interior) = a_{i+1}
};

const Poly kPolys[] = {
    {1, 0x0},  // x + 1
    {2, 0x1},  // x^2 + x + 1
    {3, 0x1},  // x^3 + x + 1        (interior bits a1 a2 = 01)
    {3, 0x2},  // x^3 + x^2 + 1      (interior bits a1 a2 = 10)
    {4, 0x1},  // x^4 + x + 1
    {4, 0x4},  // x^4 + x^3 + 1
    {5, 0x2},   // x^5 + x^2 + 1
    {5, 0x4},   // x^5 + x^3 + 1
    {5, 0x7},   // x^5 + x^3 + x^2 + x + 1
    {5, 0xB},   // x^5 + x^4 + x^2 + x + 1
    {5, 0xD},   // x^5 + x^4 + x^3 + x + 1
    {5, 0xE},   // x^5 + x^4 + x^3 + x^2 + 1
    {6, 0x01},  // x^6 + x + 1
    {6, 0x10},  // x^6 + x^5 + 1
    {6, 0x13},  // x^6 + x^5 + x^2 + x + 1
    {6, 0x0D},  // x^6 + x^4 + x^3 + x + 1
    {6, 0x16},  // x^6 + x^5 + x^3 + x^2 + 1
    {6, 0x19},  // x^6 + x^5 + x^4 + x + 1
};

}  // namespace

SobolSequence::SobolSequence(int dim) : dim_(dim) {
  assert(dim >= 1 && dim <= kMaxDimensions);
  direction_.resize(dim);
  x_.assign(dim, 0);
  // Dimension 0: van der Corput — v_i = 1 / 2^(i+1), scaled to kBits.
  for (int d = 0; d < dim; ++d) {
    direction_[d].resize(kBits);
  }
  for (int i = 0; i < kBits; ++i) {
    direction_[0][i] = 1ULL << (kBits - 1 - i);
  }
  for (int d = 1; d < dim; ++d) {
    const Poly& poly = kPolys[d - 1];
    int s = poly.degree;
    // Initial direction numbers m_i = 1 (odd, < 2^i): a valid Sobol
    // initialization (Bratley–Fox default when no table entry is given).
    std::vector<uint64_t> m(kBits);
    for (int i = 0; i < s && i < kBits; ++i) m[i] = 1;
    for (int i = s; i < kBits; ++i) {
      uint64_t v = m[i - s] ^ (m[i - s] << s);
      for (int k = 1; k < s; ++k) {
        int bit = (poly.coeffs >> (s - 1 - k)) & 1;
        if (bit) v ^= m[i - k] << k;
      }
      m[i] = v;
    }
    for (int i = 0; i < kBits; ++i) {
      direction_[d][i] = m[i] << (kBits - 1 - i);
    }
  }
}

std::vector<double> SobolSequence::Next() {
  std::vector<double> out(dim_);
  if (index_ == 0) {
    // First point is the origin.
    for (int d = 0; d < dim_; ++d) out[d] = 0.0;
    ++index_;
    return out;
  }
  // Gray-code update: flip direction number of the lowest zero bit of n-1.
  uint64_t n = index_ - 1;
  int c = 0;
  while (n & 1) {
    n >>= 1;
    ++c;
  }
  for (int d = 0; d < dim_; ++d) {
    x_[d] ^= direction_[d][c];
    out[d] = static_cast<double>(x_[d]) / std::pow(2.0, kBits);
  }
  ++index_;
  return out;
}

std::vector<int> FirstPrimes(int n) {
  std::vector<int> primes;
  int candidate = 2;
  while (static_cast<int>(primes.size()) < n) {
    bool is_prime = true;
    for (int p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        is_prime = false;
        break;
      }
    }
    if (is_prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

HaltonSequence::HaltonSequence(int dim, uint64_t seed) : dim_(dim) {
  assert(dim >= 1);
  bases_ = FirstPrimes(dim);
  perms_.resize(dim);
  Rng rng(seed);
  for (int d = 0; d < dim; ++d) {
    int b = bases_[d];
    // Random digit permutation fixing 0 (so 0 maps to 0, keeping the
    // radical-inverse structure).
    std::vector<int> perm(b);
    for (int i = 0; i < b; ++i) perm[i] = i;
    for (int i = b - 1; i > 1; --i) {
      int j = static_cast<int>(rng.UniformInt(1, i));
      std::swap(perm[i], perm[j]);
    }
    perms_[d] = std::move(perm);
  }
}

std::vector<double> HaltonSequence::Next() {
  // Skip the first point (all zeros) by starting at index 1; leapfrogging is
  // unnecessary at our sample counts.
  ++index_;
  std::vector<double> out(dim_);
  for (int d = 0; d < dim_; ++d) {
    int b = bases_[d];
    const std::vector<int>& perm = perms_[d];
    double f = 1.0, r = 0.0;
    uint64_t i = index_;
    while (i > 0) {
      f /= b;
      r += f * perm[i % b];
      i /= b;
    }
    out[d] = r;
  }
  return out;
}

QuasiRandomSampler::QuasiRandomSampler(int dim, uint64_t seed) : dim_(dim) {
  if (dim <= SobolSequence::kMaxDimensions) {
    sobol_ = std::make_unique<SobolSequence>(dim);
  } else {
    halton_ = std::make_unique<HaltonSequence>(dim, seed);
  }
}

std::vector<double> QuasiRandomSampler::Next() {
  ++num_generated_;
  return sobol_ ? sobol_->Next() : halton_->Next();
}

void QuasiRandomSampler::Skip(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) Next();
}

}  // namespace sparktune
