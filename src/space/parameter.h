// Typed tuning parameter definitions. A parameter is Int, Float (linear or
// log scale), Categorical or Bool; every parameter maps to and from the unit
// interval [0,1] so optimizers can work in a normalized cube.
#pragma once

#include <string>
#include <vector>

namespace sparktune {

enum class ParamType { kInt, kFloat, kCategorical, kBool };

class Parameter {
 public:
  static Parameter Int(std::string name, int64_t lo, int64_t hi,
                       int64_t default_value, bool log_scale = false);
  static Parameter Float(std::string name, double lo, double hi,
                         double default_value, bool log_scale = false);
  static Parameter Categorical(std::string name,
                               std::vector<std::string> categories,
                               int default_index);
  static Parameter Bool(std::string name, bool default_value);

  const std::string& name() const { return name_; }
  ParamType type() const { return type_; }
  bool is_numeric() const {
    return type_ == ParamType::kInt || type_ == ParamType::kFloat;
  }
  bool log_scale() const { return log_scale_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<std::string>& categories() const { return categories_; }
  size_t num_categories() const { return categories_.size(); }

  // Internal numeric representation of the default (value for numerics,
  // category index for categorical, 0/1 for bool).
  double default_value() const { return default_value_; }

  // Map an internal value to [0,1]. Ints/floats respect log scaling;
  // categorical index i maps to the bucket center (i + 0.5) / k.
  double ToUnit(double value) const;
  // Inverse of ToUnit: produces a legal internal value (ints rounded,
  // categorical floored to a bucket, everything clamped to the domain).
  double FromUnit(double unit) const;
  // Clamp + round an internal value into the legal domain.
  double Legalize(double value) const;

  // Render the internal value for logs/tables (category name for
  // categoricals, "true"/"false" for bools).
  std::string FormatValue(double value) const;

 private:
  Parameter() = default;

  std::string name_;
  ParamType type_ = ParamType::kFloat;
  double lo_ = 0.0;
  double hi_ = 1.0;
  bool log_scale_ = false;
  double default_value_ = 0.0;
  std::vector<std::string> categories_;
};

}  // namespace sparktune
