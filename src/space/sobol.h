// Low-discrepancy sequences for initial-design sampling (paper §3.3 uses
// low-discrepancy initialization [Sobol 1998]).
//
// Two generators are provided:
//  * SobolSequence — classic Gray-code Sobol built from primitive polynomials
//    over GF(2) (degrees 1..6, unit initial direction numbers), supporting up
//    to 19 dimensions.
//  * HaltonSequence — permutation-scrambled Halton, any dimensionality.
// QuasiRandomSampler picks Sobol when the dimension fits and Halton
// otherwise, which covers the 30-parameter (+datasize) Spark space.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace sparktune {

class SobolSequence {
 public:
  static constexpr int kMaxDimensions = 19;

  // dim must be in [1, kMaxDimensions].
  explicit SobolSequence(int dim);

  // Next point in [0,1)^dim.
  std::vector<double> Next();

  int dim() const { return dim_; }

 private:
  int dim_;
  uint64_t index_ = 0;
  std::vector<std::vector<uint64_t>> direction_;  // [dim][bit]
  std::vector<uint64_t> x_;                       // current Gray-code state
};

class HaltonSequence {
 public:
  // Scrambling permutations are derived deterministically from `seed`.
  explicit HaltonSequence(int dim, uint64_t seed = 7);

  std::vector<double> Next();

  int dim() const { return dim_; }

 private:
  int dim_;
  uint64_t index_ = 0;
  std::vector<int> bases_;
  std::vector<std::vector<int>> perms_;  // digit scrambling per dimension
};

// Facade choosing the best available sequence for the dimension.
class QuasiRandomSampler {
 public:
  explicit QuasiRandomSampler(int dim, uint64_t seed = 7);

  std::vector<double> Next();

  int dim() const { return dim_; }
  bool using_sobol() const { return sobol_ != nullptr; }

  // Points generated so far; with Skip this lets a checkpoint restore the
  // sampler cursor (the sequences are cheap to replay deterministically).
  uint64_t num_generated() const { return num_generated_; }
  // Advance by `n` points, discarding them.
  void Skip(uint64_t n);

 private:
  int dim_;
  uint64_t num_generated_ = 0;
  std::unique_ptr<SobolSequence> sobol_;
  std::unique_ptr<HaltonSequence> halton_;
};

// First `n` primes (for Halton bases).
std::vector<int> FirstPrimes(int n);

}  // namespace sparktune
