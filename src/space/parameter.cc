#include "space/parameter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace sparktune {

Parameter Parameter::Int(std::string name, int64_t lo, int64_t hi,
                         int64_t default_value, bool log_scale) {
  assert(lo <= hi);
  assert(default_value >= lo && default_value <= hi);
  assert(!log_scale || lo > 0);
  Parameter p;
  p.name_ = std::move(name);
  p.type_ = ParamType::kInt;
  p.lo_ = static_cast<double>(lo);
  p.hi_ = static_cast<double>(hi);
  p.log_scale_ = log_scale;
  p.default_value_ = static_cast<double>(default_value);
  return p;
}

Parameter Parameter::Float(std::string name, double lo, double hi,
                           double default_value, bool log_scale) {
  assert(lo <= hi);
  assert(default_value >= lo && default_value <= hi);
  assert(!log_scale || lo > 0);
  Parameter p;
  p.name_ = std::move(name);
  p.type_ = ParamType::kFloat;
  p.lo_ = lo;
  p.hi_ = hi;
  p.log_scale_ = log_scale;
  p.default_value_ = default_value;
  return p;
}

Parameter Parameter::Categorical(std::string name,
                                 std::vector<std::string> categories,
                                 int default_index) {
  assert(!categories.empty());
  assert(default_index >= 0 &&
         default_index < static_cast<int>(categories.size()));
  Parameter p;
  p.name_ = std::move(name);
  p.type_ = ParamType::kCategorical;
  p.categories_ = std::move(categories);
  p.lo_ = 0.0;
  p.hi_ = static_cast<double>(p.categories_.size() - 1);
  p.default_value_ = default_index;
  return p;
}

Parameter Parameter::Bool(std::string name, bool default_value) {
  Parameter p;
  p.name_ = std::move(name);
  p.type_ = ParamType::kBool;
  p.lo_ = 0.0;
  p.hi_ = 1.0;
  p.default_value_ = default_value ? 1.0 : 0.0;
  return p;
}

double Parameter::ToUnit(double value) const {
  switch (type_) {
    case ParamType::kInt:
    case ParamType::kFloat: {
      if (hi_ == lo_) return 0.5;
      if (log_scale_) {
        double lv = std::log(std::max(value, lo_));
        return std::clamp((lv - std::log(lo_)) / (std::log(hi_) - std::log(lo_)),
                          0.0, 1.0);
      }
      return std::clamp((value - lo_) / (hi_ - lo_), 0.0, 1.0);
    }
    case ParamType::kCategorical: {
      double k = static_cast<double>(categories_.size());
      return std::clamp((value + 0.5) / k, 0.0, 1.0);
    }
    case ParamType::kBool:
      return value >= 0.5 ? 0.75 : 0.25;
  }
  return 0.0;
}

double Parameter::FromUnit(double unit) const {
  unit = std::clamp(unit, 0.0, 1.0);
  switch (type_) {
    case ParamType::kInt: {
      double v;
      if (log_scale_) {
        v = std::exp(std::log(lo_) + unit * (std::log(hi_) - std::log(lo_)));
      } else {
        v = lo_ + unit * (hi_ - lo_);
      }
      return Legalize(v);
    }
    case ParamType::kFloat: {
      if (log_scale_) {
        return std::exp(std::log(lo_) + unit * (std::log(hi_) - std::log(lo_)));
      }
      return lo_ + unit * (hi_ - lo_);
    }
    case ParamType::kCategorical: {
      double k = static_cast<double>(categories_.size());
      int idx = static_cast<int>(std::floor(unit * k));
      idx = std::clamp(idx, 0, static_cast<int>(categories_.size()) - 1);
      return static_cast<double>(idx);
    }
    case ParamType::kBool:
      return unit >= 0.5 ? 1.0 : 0.0;
  }
  return 0.0;
}

double Parameter::Legalize(double value) const {
  switch (type_) {
    case ParamType::kInt:
      return std::clamp(std::round(value), lo_, hi_);
    case ParamType::kFloat:
      return std::clamp(value, lo_, hi_);
    case ParamType::kCategorical:
      return std::clamp(std::round(value), 0.0,
                        static_cast<double>(categories_.size() - 1));
    case ParamType::kBool:
      return value >= 0.5 ? 1.0 : 0.0;
  }
  return value;
}

std::string Parameter::FormatValue(double value) const {
  switch (type_) {
    case ParamType::kInt:
      return StrFormat("%lld", static_cast<long long>(std::llround(value)));
    case ParamType::kFloat:
      return PrettyDouble(value);
    case ParamType::kCategorical: {
      int idx = std::clamp(static_cast<int>(std::llround(value)), 0,
                           static_cast<int>(categories_.size()) - 1);
      return categories_[idx];
    }
    case ParamType::kBool:
      return value >= 0.5 ? "true" : "false";
  }
  return "";
}

}  // namespace sparktune
