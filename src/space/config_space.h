// ConfigSpace: an ordered collection of Parameters plus the Configuration
// type (a point in the space, stored as internal numeric values).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "space/parameter.h"

namespace sparktune {

class ConfigSpace;

// A configuration instance: one internal numeric value per parameter, in
// ConfigSpace order (ints as doubles, categoricals as category index,
// bools as 0/1).
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<double> values)
      : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  bool operator==(const Configuration& other) const {
    return values_ == other.values_;
  }

 private:
  std::vector<double> values_;
};

class ConfigSpace {
 public:
  ConfigSpace() = default;

  // Append a parameter; fails if the name already exists.
  Status Add(Parameter p);

  size_t size() const { return params_.size(); }
  const Parameter& param(size_t i) const { return params_[i]; }
  const std::vector<Parameter>& params() const { return params_; }

  // Index lookup by name; -1 if absent.
  int IndexOf(const std::string& name) const;

  // The configuration built from every parameter's default value.
  Configuration Default() const;

  // Uniform random configuration (uniform per parameter in unit space).
  Configuration Sample(Rng* rng) const;

  // Unit-cube codec over all parameters.
  std::vector<double> ToUnit(const Configuration& c) const;
  Configuration FromUnit(const std::vector<double>& u) const;

  // Clamp/round every coordinate to its legal domain.
  Configuration Legalize(const Configuration& c) const;

  // Validity check: size match + every coordinate within its domain.
  Status Validate(const Configuration& c) const;

  // Typed accessors by name (asserts the name exists).
  double Get(const Configuration& c, const std::string& name) const;
  void Set(Configuration* c, const std::string& name, double value) const;

  // Human-readable "name=value, ..." rendering.
  std::string Format(const Configuration& c) const;

 private:
  std::vector<Parameter> params_;
  std::map<std::string, size_t> index_;
};

}  // namespace sparktune
