#include "baselines/rfhoc.h"

#include <algorithm>

namespace sparktune {

RunHistory Rfhoc::Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                       const TuningObjective& objective, int budget,
                       uint64_t seed) {
  Rng rng(seed);
  RunHistory history;
  int init = std::clamp(static_cast<int>(options_.init_fraction * budget), 1,
                        budget);
  for (int i = 0; i < init; ++i) {
    Configuration c = space.Sample(&rng);
    history.Add(EvaluateConfig(space, evaluator, objective, c, i));
  }

  GeneticAlgorithm ga(options_.ga);
  for (int i = init; i < budget; ++i) {
    // Refresh the forest on everything observed so far.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const auto& o : history.observations()) {
      x.push_back(space.ToUnit(o.config));
      y.push_back(o.objective);
    }
    ForestOptions fopts = options_.forest;
    fopts.seed = seed + static_cast<uint64_t>(i);
    RandomForest forest(fopts);
    Configuration next;
    if (forest.Fit(x, y).ok()) {
      auto fitness = [&](const Configuration& c) {
        return forest.Predict(space.ToUnit(c)).mean;
      };
      std::vector<Configuration> seeds;
      if (int best = history.BestFeasibleIndex(); best >= 0) {
        seeds.push_back(history.config(static_cast<size_t>(best)));
      }
      next = ga.Minimize(space, fitness, &rng, seeds);
      if (history.Contains(next)) next = space.Sample(&rng);
    } else {
      next = space.Sample(&rng);
    }
    history.Add(EvaluateConfig(space, evaluator, objective, next, i));
  }
  return history;
}

}  // namespace sparktune
