#include "baselines/cherrypick.h"

#include "bo/advisor.h"

namespace sparktune {

RunHistory CherryPick::Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                            const TuningObjective& objective, int budget,
                            uint64_t seed) {
  AdvisorOptions opts;
  opts.objective = objective;
  opts.init_samples = options_.init_samples;
  opts.enable_safety = false;     // EIC only, no safe region
  opts.enable_agd = false;
  opts.enable_subspace = false;   // full-space GP
  opts.datasize_aware = false;
  opts.seed = seed;
  opts.resource_fn = [evaluator](const Configuration& c) {
    return evaluator->ResourceRate(c);
  };

  Advisor advisor(&space, opts);
  for (int i = 0; i < budget; ++i) {
    Configuration c = advisor.Suggest(evaluator->NextDataSizeHintGb(),
                                      evaluator->NextHours());
    Observation obs = EvaluateConfig(space, evaluator, objective, c, i);
    advisor.Observe(obs);
  }
  return advisor.history();
}

}  // namespace sparktune
