// Tuneful baseline (Fekry et al. 2020): online GP-BO with staged
// significance-driven dimensionality reduction — after warm rounds a
// random-forest (Gini) importance analysis shrinks the tuned parameter set
// in two stages; remaining parameters stay at their incumbent values.
#pragma once

#include "baselines/tuning_method.h"

namespace sparktune {

struct TunefulOptions {
  int init_samples = 3;
  // First reduction after this many observations, to `stage1_params`.
  int stage1_at = 10;
  int stage1_params = 12;
  // Second reduction.
  int stage2_at = 20;
  int stage2_params = 8;
  // Threads for the significance forest, the GP fit and the acquisition
  // search: 1 = serial, 0 = global pool default width, k > 1 = up to k
  // threads. Bit-identical results at any setting.
  int num_threads = 1;
};

class Tuneful final : public TuningMethod {
 public:
  explicit Tuneful(TunefulOptions options = {}) : options_(options) {}

  std::string name() const override { return "Tuneful"; }

  RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                  const TuningObjective& objective, int budget,
                  uint64_t seed) override;

 private:
  TunefulOptions options_;
};

}  // namespace sparktune
