#include "baselines/locat.h"

#include <cmath>
#include <numeric>

#include "bo/acq_optimizer.h"
#include "bo/acquisition.h"
#include "common/stats.h"
#include "model/features.h"
#include "model/gp.h"
#include "space/sobol.h"

namespace sparktune {

RunHistory Locat::Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                       const TuningObjective& objective, int budget,
                       uint64_t seed) {
  Rng rng(seed);
  RunHistory history;
  QuasiRandomSampler init(static_cast<int>(space.size()), seed ^ 0x10CA7);
  AcquisitionOptimizer acq_opt;
  const double ds_ref = 1024.0;

  // QCSA: rank parameters by |Spearman| between parameter value and
  // objective across the history.
  auto sensitive_params = [&](int keep) {
    std::vector<int> all(space.size());
    std::iota(all.begin(), all.end(), 0);
    if (static_cast<int>(history.size()) < options_.qcsa_at ||
        keep >= static_cast<int>(space.size())) {
      return all;
    }
    std::vector<double> obj;
    for (const auto& o : history.observations()) obj.push_back(o.objective);
    std::vector<double> score(space.size(), 0.0);
    for (size_t p = 0; p < space.size(); ++p) {
      std::vector<double> vals;
      for (const auto& o : history.observations()) {
        vals.push_back(space.param(p).ToUnit(o.config[p]));
      }
      score[p] = std::fabs(SpearmanRho(vals, obj));
    }
    std::stable_sort(all.begin(), all.end(), [&](int a, int b) {
      return score[static_cast<size_t>(a)] > score[static_cast<size_t>(b)];
    });
    all.resize(static_cast<size_t>(keep));
    return all;
  };

  auto encode = [&](const Configuration& c, double ds) {
    std::vector<double> f = space.ToUnit(c);
    f.push_back(NormalizeDataSize(std::max(0.0, ds), ds_ref));
    return f;
  };

  for (int i = 0; i < budget; ++i) {
    Configuration next;
    double hint = evaluator->NextDataSizeHintGb();
    if (static_cast<int>(history.size()) < options_.init_samples) {
      next = space.FromUnit(init.Next());
    } else {
      std::vector<std::vector<double>> x;
      std::vector<double> y;
      for (const auto& o : history.observations()) {
        x.push_back(encode(o.config, o.data_size_gb));
        // Log targets: standard practice for positive multiplicative costs.
        y.push_back(std::log(std::max(o.objective, 1e-9)));
      }
      GaussianProcess gp(BuildFeatureSchema(space, 1));
      if (gp.Fit(x, y).ok()) {
        int best = history.BestFeasibleIndex();
        Configuration base = best >= 0
            ? history.config(static_cast<size_t>(best))
            : space.Default();
        Subspace sub(&space, sensitive_params(options_.keep_params), base);
        double incumbent = history.BestObjective();
        if (!std::isfinite(incumbent)) {
          incumbent = history.at(0).objective;
          for (const auto& o : history.observations()) {
            incumbent = std::min(incumbent, o.objective);
          }
        }
        incumbent = std::log(std::max(incumbent, 1e-9));
        EicAcquisition acq(&gp, incumbent);
        auto enc = [&](const Configuration& c) { return encode(c, hint); };
        AcqOptResult res =
            acq_opt.Maximize(sub, enc, acq, nullptr, nullptr, &history, &rng);
        next = res.config;
      } else {
        next = space.Sample(&rng);
      }
    }
    history.Add(EvaluateConfig(space, evaluator, objective, next, i));
  }
  return history;
}

}  // namespace sparktune
