// Common interface for the compared tuning methods (paper §6.1): Random
// Search, RFHOC, DAC, CherryPick, Tuneful, LOCAT and ours. A method spends
// `budget` online evaluations on the evaluator and returns the run history.
#pragma once

#include <memory>
#include <string>

#include "bo/history.h"
#include "tuner/evaluator.h"
#include "tuner/objective.h"

namespace sparktune {

class TuningMethod {
 public:
  virtual ~TuningMethod() = default;

  virtual std::string name() const = 0;

  // Run `budget` evaluations. `objective` carries beta and (optional)
  // constraint thresholds; methods that do not support constraints ignore
  // them (feasibility is still recorded per observation for analysis).
  virtual RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                          const TuningObjective& objective, int budget,
                          uint64_t seed) = 0;
};

// Shared helper: evaluate one configuration and produce a fully-populated
// Observation.
Observation EvaluateConfig(const ConfigSpace& space, JobEvaluator* evaluator,
                           const TuningObjective& objective,
                           const Configuration& config, int iteration);

}  // namespace sparktune
