#include "baselines/tuneful.h"

#include <cmath>
#include <numeric>

#include "bo/acq_optimizer.h"
#include "bo/acquisition.h"
#include "forest/random_forest.h"
#include "model/features.h"
#include "model/gp.h"
#include "space/sobol.h"

namespace sparktune {

RunHistory Tuneful::Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                         const TuningObjective& objective, int budget,
                         uint64_t seed) {
  Rng rng(seed);
  RunHistory history;
  QuasiRandomSampler init(static_cast<int>(space.size()), seed ^ 0x7713);
  AcqOptOptions acq_opts;
  acq_opts.num_threads = options_.num_threads;
  AcquisitionOptimizer acq_opt(acq_opts);

  auto free_params = [&](int target) {
    std::vector<int> all(space.size());
    std::iota(all.begin(), all.end(), 0);
    if (target >= static_cast<int>(space.size()) ||
        history.size() < 4) {
      return all;
    }
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const auto& o : history.observations()) {
      x.push_back(space.ToUnit(o.config));
      y.push_back(o.objective);
    }
    ForestOptions fopts;
    fopts.num_trees = 24;
    fopts.seed = seed ^ 0x51u;
    fopts.num_threads = options_.num_threads;
    RandomForest forest(fopts);
    if (!forest.Fit(x, y).ok()) return all;
    std::vector<double> imp = forest.FeatureImportance();
    std::stable_sort(all.begin(), all.end(), [&](int a, int b) {
      return imp[static_cast<size_t>(a)] > imp[static_cast<size_t>(b)];
    });
    all.resize(static_cast<size_t>(target));
    return all;
  };

  for (int i = 0; i < budget; ++i) {
    Configuration next;
    if (static_cast<int>(history.size()) < options_.init_samples) {
      next = space.FromUnit(init.Next());
    } else {
      std::vector<std::vector<double>> x;
      std::vector<double> y;
      for (const auto& o : history.observations()) {
        x.push_back(space.ToUnit(o.config));
        // Log targets: standard practice for positive multiplicative costs.
        y.push_back(std::log(std::max(o.objective, 1e-9)));
      }
      GpOptions gp_opts;
      gp_opts.num_threads = options_.num_threads;
      GaussianProcess gp(BuildFeatureSchema(space, 0), gp_opts);
      if (gp.Fit(x, y).ok()) {
        int target = static_cast<int>(space.size());
        if (static_cast<int>(history.size()) >= options_.stage2_at) {
          target = options_.stage2_params;
        } else if (static_cast<int>(history.size()) >= options_.stage1_at) {
          target = options_.stage1_params;
        }
        int best = history.BestFeasibleIndex();
        Configuration base = best >= 0
            ? history.config(static_cast<size_t>(best))
            : space.Default();
        Subspace sub(&space, free_params(target), base);
        double incumbent = history.BestObjective();
        if (!std::isfinite(incumbent)) {
          incumbent = history.at(0).objective;
          for (const auto& o : history.observations()) {
            incumbent = std::min(incumbent, o.objective);
          }
        }
        incumbent = std::log(std::max(incumbent, 1e-9));
        EicAcquisition acq(&gp, incumbent);
        auto encode = [&](const Configuration& c) {
          return space.ToUnit(c);
        };
        AcqOptResult res = acq_opt.Maximize(sub, encode, acq, nullptr,
                                            nullptr, &history, &rng);
        next = res.config;
      } else {
        next = space.Sample(&rng);
      }
    }
    history.Add(EvaluateConfig(space, evaluator, objective, next, i));
  }
  return history;
}

}  // namespace sparktune
