#include "baselines/random_search.h"

#include "common/rng.h"

namespace sparktune {

RunHistory RandomSearch::Tune(const ConfigSpace& space,
                              JobEvaluator* evaluator,
                              const TuningObjective& objective, int budget,
                              uint64_t seed) {
  Rng rng(seed);
  RunHistory history;
  for (int i = 0; i < budget; ++i) {
    Configuration c = space.Sample(&rng);
    history.Add(EvaluateConfig(space, evaluator, objective, c, i));
  }
  return history;
}

}  // namespace sparktune
