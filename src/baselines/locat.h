// LOCAT baseline (Xin et al. 2022): low-overhead online BO for Spark SQL —
// a data-size-aware GP (DAGP: data size joins the kernel inputs) plus
// importance-based parameter elimination after a warm phase (QCSA:
// Spearman-correlation screening keeps only configuration-sensitive
// parameters).
#pragma once

#include "baselines/tuning_method.h"

namespace sparktune {

struct LocatOptions {
  int init_samples = 3;
  // Eliminate insensitive parameters once this many observations exist.
  int qcsa_at = 12;
  int keep_params = 10;
};

class Locat final : public TuningMethod {
 public:
  explicit Locat(LocatOptions options = {}) : options_(options) {}

  std::string name() const override { return "LOCAT"; }

  RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                  const TuningObjective& objective, int budget,
                  uint64_t seed) override;

 private:
  LocatOptions options_;
};

}  // namespace sparktune
