// Random Search baseline (Bergstra & Bengio 2012): uniform sampling of the
// configuration space, one fresh sample per iteration.
#pragma once

#include "baselines/tuning_method.h"

namespace sparktune {

class RandomSearch final : public TuningMethod {
 public:
  std::string name() const override { return "RandomSearch"; }

  RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                  const TuningObjective& objective, int budget,
                  uint64_t seed) override;
};

}  // namespace sparktune
