#include "baselines/ours.h"

#include "sparksim/spark_conf.h"

namespace sparktune {

RunHistory OursMethod::Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                            const TuningObjective& objective, int budget,
                            uint64_t seed) {
  AdvisorOptions opts = options_.advisor;
  opts.objective = objective;
  opts.seed = seed;
  if (opts.expert_ranking.empty()) {
    opts.expert_ranking = ExpertParameterRanking();
  }
  if (!opts.resource_fn) {
    opts.resource_fn = [evaluator](const Configuration& c) {
      return evaluator->ResourceRate(c);
    };
  }

  Advisor advisor(&space, opts);
  if (!options_.warm_start.empty()) {
    advisor.SetWarmStartConfigs(options_.warm_start);
  }
  if (options_.surrogate_factory) {
    advisor.SetObjectiveSurrogateFactory(options_.surrogate_factory);
  }
  if (!options_.importance_prior.empty()) {
    advisor.SeedImportance(options_.importance_prior, 2.0);
  }

  for (int i = 0; i < budget; ++i) {
    Configuration c = advisor.Suggest(evaluator->NextDataSizeHintGb(),
                                      evaluator->NextHours());
    Observation obs = EvaluateConfig(space, evaluator, objective, c, i);
    advisor.Observe(obs);
  }
  return advisor.history();
}

}  // namespace sparktune
