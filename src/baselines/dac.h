// DAC baseline (Yu et al. 2018): Datasize-Aware Configuration tuning with
// hierarchical regression-tree models plus a genetic algorithm. The
// hierarchy is modeled as a two-level ensemble: a forest per data-size
// bucket with a global fallback forest; predictions for a configuration use
// the bucket of the upcoming execution's data size.
#pragma once

#include "baselines/ga.h"
#include "baselines/tuning_method.h"
#include "forest/random_forest.h"

namespace sparktune {

struct DacOptions {
  double init_fraction = 0.4;
  int datasize_buckets = 3;
  ForestOptions forest = {.num_trees = 20,
                          .tree = {.max_depth = 12, .min_samples_leaf = 2,
                                   .min_samples_split = 4,
                                   .max_features = -1},
                          .feature_fraction = 0.7,
                          .bootstrap_fraction = 1.0,
                          .seed = 11};
  GaOptions ga;
  // Minimum samples a bucket forest needs before it overrides the global
  // model.
  int min_bucket_samples = 6;
};

class Dac final : public TuningMethod {
 public:
  explicit Dac(DacOptions options = {}) : options_(options) {}

  std::string name() const override { return "DAC"; }

  RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                  const TuningObjective& objective, int budget,
                  uint64_t seed) override;

 private:
  DacOptions options_;
};

}  // namespace sparktune
