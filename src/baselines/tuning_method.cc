#include "baselines/tuning_method.h"

namespace sparktune {

Observation EvaluateConfig(const ConfigSpace& space, JobEvaluator* evaluator,
                           const TuningObjective& objective,
                           const Configuration& config, int iteration) {
  Configuration legal = space.Legalize(config);
  JobEvaluator::Outcome outcome = evaluator->Run(legal);
  Observation obs;
  obs.config = std::move(legal);
  obs.runtime_sec = outcome.runtime_sec;
  obs.resource_rate = outcome.resource_rate;
  obs.memory_gb_hours = outcome.memory_gb_hours;
  obs.cpu_core_hours = outcome.cpu_core_hours;
  obs.data_size_gb = outcome.data_size_gb;
  obs.hours = outcome.hours;
  obs.failure = outcome.failure;
  obs.objective = objective.Value(outcome.runtime_sec, outcome.resource_rate);
  obs.feasible = !outcome.failed() &&
                 objective.Feasible(outcome.runtime_sec, outcome.resource_rate);
  obs.iteration = iteration;
  return obs;
}

}  // namespace sparktune
