// Genetic algorithm over unit-cube configuration encodings — the search
// engine inside the RFHOC and DAC baselines (they explore a learned
// performance model with a GA instead of an acquisition function).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "space/config_space.h"

namespace sparktune {

struct GaOptions {
  int population = 40;
  int generations = 30;
  int tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.1;       // per-gene probability
  double mutation_sigma = 0.15;     // gaussian step in unit space
  int elites = 2;
};

class GeneticAlgorithm {
 public:
  // Fitness: lower is better (we minimize predicted cost/runtime).
  using FitnessFn = std::function<double(const Configuration&)>;

  explicit GeneticAlgorithm(GaOptions options = {});

  // Evolve and return the best configuration found. `seeds` (optional) are
  // injected into the initial population.
  Configuration Minimize(const ConfigSpace& space, const FitnessFn& fitness,
                         Rng* rng,
                         const std::vector<Configuration>& seeds = {}) const;

 private:
  GaOptions options_;
};

}  // namespace sparktune
