#include "baselines/dac.h"

#include <algorithm>
#include <cmath>

namespace sparktune {

RunHistory Dac::Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                     const TuningObjective& objective, int budget,
                     uint64_t seed) {
  Rng rng(seed);
  RunHistory history;
  int init = std::clamp(static_cast<int>(options_.init_fraction * budget), 1,
                        budget);
  for (int i = 0; i < init; ++i) {
    Configuration c = space.Sample(&rng);
    history.Add(EvaluateConfig(space, evaluator, objective, c, i));
  }

  GeneticAlgorithm ga(options_.ga);
  for (int i = init; i < budget; ++i) {
    // Partition history into datasize buckets (quantile edges).
    std::vector<double> sizes;
    for (const auto& o : history.observations()) {
      sizes.push_back(std::max(0.0, o.data_size_gb));
    }
    std::vector<double> sorted = sizes;
    std::sort(sorted.begin(), sorted.end());
    auto bucket_of = [&](double ds) {
      int b = 0;
      for (int k = 1; k < options_.datasize_buckets; ++k) {
        double edge = sorted[sorted.size() * static_cast<size_t>(k) /
                             static_cast<size_t>(options_.datasize_buckets)];
        if (ds > edge) b = k;
      }
      return b;
    };

    double next_ds = std::max(0.0, evaluator->NextDataSizeHintGb());
    int target_bucket = bucket_of(next_ds);

    // Train global + target-bucket forests (features include datasize).
    std::vector<std::vector<double>> gx, bx;
    std::vector<double> gy, by;
    for (size_t k = 0; k < history.size(); ++k) {
      const Observation& o = history.at(k);
      std::vector<double> f = space.ToUnit(o.config);
      f.push_back(std::log1p(std::max(0.0, o.data_size_gb)) / 10.0);
      gx.push_back(f);
      gy.push_back(o.objective);
      if (bucket_of(std::max(0.0, o.data_size_gb)) == target_bucket) {
        bx.push_back(std::move(f));
        by.push_back(o.objective);
      }
    }
    ForestOptions fopts = options_.forest;
    fopts.seed = seed + static_cast<uint64_t>(i) * 2 + 1;
    RandomForest global(fopts);
    bool global_ok = global.Fit(gx, gy).ok();
    RandomForest bucket(fopts);
    bool bucket_ok =
        static_cast<int>(bx.size()) >= options_.min_bucket_samples &&
        bucket.Fit(bx, by).ok();

    Configuration next;
    if (global_ok || bucket_ok) {
      const RandomForest& model = bucket_ok ? bucket : global;
      double ds_feature = std::log1p(next_ds) / 10.0;
      auto fitness = [&](const Configuration& c) {
        std::vector<double> f = space.ToUnit(c);
        f.push_back(ds_feature);
        return model.Predict(f).mean;
      };
      std::vector<Configuration> seeds;
      if (int best = history.BestFeasibleIndex(); best >= 0) {
        seeds.push_back(history.config(static_cast<size_t>(best)));
      }
      next = ga.Minimize(space, fitness, &rng, seeds);
      if (history.Contains(next)) next = space.Sample(&rng);
    } else {
      next = space.Sample(&rng);
    }
    history.Add(EvaluateConfig(space, evaluator, objective, next, i));
  }
  return history;
}

}  // namespace sparktune
