#include "baselines/ga.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sparktune {

GeneticAlgorithm::GeneticAlgorithm(GaOptions options) : options_(options) {}

Configuration GeneticAlgorithm::Minimize(
    const ConfigSpace& space, const FitnessFn& fitness, Rng* rng,
    const std::vector<Configuration>& seeds) const {
  struct Individual {
    std::vector<double> genes;  // unit cube
    double fitness;
  };
  size_t dims = space.size();

  auto evaluate = [&](const std::vector<double>& genes) {
    return fitness(space.FromUnit(genes));
  };

  std::vector<Individual> pop;
  pop.reserve(static_cast<size_t>(options_.population));
  for (const auto& seed : seeds) {
    if (static_cast<int>(pop.size()) >= options_.population) break;
    Individual ind;
    ind.genes = space.ToUnit(seed);
    ind.fitness = evaluate(ind.genes);
    pop.push_back(std::move(ind));
  }
  while (static_cast<int>(pop.size()) < options_.population) {
    Individual ind;
    ind.genes.resize(dims);
    for (auto& g : ind.genes) g = rng->Uniform();
    ind.fitness = evaluate(ind.genes);
    pop.push_back(std::move(ind));
  }

  auto tournament_select = [&]() -> const Individual& {
    int best = static_cast<int>(rng->UniformInt(0, options_.population - 1));
    for (int i = 1; i < options_.tournament; ++i) {
      int cand = static_cast<int>(rng->UniformInt(0, options_.population - 1));
      if (pop[static_cast<size_t>(cand)].fitness <
          pop[static_cast<size_t>(best)].fitness) {
        best = cand;
      }
    }
    return pop[static_cast<size_t>(best)];
  };

  for (int gen = 0; gen < options_.generations; ++gen) {
    std::sort(pop.begin(), pop.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    std::vector<Individual> next;
    next.reserve(pop.size());
    for (int e = 0; e < options_.elites && e < static_cast<int>(pop.size());
         ++e) {
      next.push_back(pop[static_cast<size_t>(e)]);
    }
    while (static_cast<int>(next.size()) < options_.population) {
      const Individual& a = tournament_select();
      const Individual& b = tournament_select();
      Individual child;
      child.genes.resize(dims);
      bool cross = rng->Bernoulli(options_.crossover_rate);
      for (size_t d = 0; d < dims; ++d) {
        child.genes[d] = (cross && rng->Bernoulli(0.5)) ? b.genes[d]
                                                        : a.genes[d];
        if (rng->Bernoulli(options_.mutation_rate)) {
          child.genes[d] = std::clamp(
              child.genes[d] + rng->Normal(0.0, options_.mutation_sigma), 0.0,
              1.0);
        }
      }
      child.fitness = evaluate(child.genes);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }

  const Individual* best = &pop[0];
  for (const auto& ind : pop) {
    if (ind.fitness < best->fitness) best = &ind;
  }
  return space.FromUnit(best->genes);
}

}  // namespace sparktune
