// RFHOC baseline (Bei et al. 2015): random-forest performance models per
// application plus a genetic algorithm exploring the model. Adapted to the
// online budget: an initial random sampling phase trains the forest, then
// each remaining iteration evaluates the GA-optimum of the refreshed model.
#pragma once

#include "baselines/ga.h"
#include "baselines/tuning_method.h"
#include "forest/random_forest.h"

namespace sparktune {

struct RfhocOptions {
  // Fraction of the budget spent on random model-training samples.
  double init_fraction = 0.4;
  ForestOptions forest = {.num_trees = 24,
                          .tree = {.max_depth = 12, .min_samples_leaf = 2,
                                   .min_samples_split = 4,
                                   .max_features = -1},
                          .feature_fraction = 0.7,
                          .bootstrap_fraction = 1.0,
                          .seed = 5};
  GaOptions ga;
};

class Rfhoc final : public TuningMethod {
 public:
  explicit Rfhoc(RfhocOptions options = {}) : options_(options) {}

  std::string name() const override { return "RFHOC"; }

  RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                  const TuningObjective& objective, int budget,
                  uint64_t seed) override;

 private:
  RfhocOptions options_;
};

}  // namespace sparktune
