// "Ours": the paper's full framework (safe EIC + adaptive sub-space + AGD,
// optionally meta-learning warm start / ensemble) packaged behind the
// TuningMethod interface for head-to-head comparisons.
#pragma once

#include "baselines/tuning_method.h"
#include "bo/advisor.h"

namespace sparktune {

struct OursOptions {
  AdvisorOptions advisor;  // objective/constraints are overwritten per Tune
  // Optional meta hooks applied to each run.
  std::vector<Configuration> warm_start;
  SurrogateFactory surrogate_factory;
  std::vector<double> importance_prior;
};

class OursMethod final : public TuningMethod {
 public:
  explicit OursMethod(OursOptions options = {},
                      std::string label = "Ours")
      : options_(std::move(options)), label_(std::move(label)) {}

  std::string name() const override { return label_; }

  RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                  const TuningObjective& objective, int budget,
                  uint64_t seed) override;

 private:
  OursOptions options_;
  std::string label_;
};

}  // namespace sparktune
