// CherryPick baseline (Alipourfard et al. 2017): vanilla GP Bayesian
// optimization with expected improvement weighted by the probability of
// meeting a runtime threshold (EIC), no search-space reduction, no
// data-size awareness, no safe-region filtering.
#pragma once

#include "baselines/tuning_method.h"

namespace sparktune {

struct CherryPickOptions {
  int init_samples = 3;
};

class CherryPick final : public TuningMethod {
 public:
  explicit CherryPick(CherryPickOptions options = {}) : options_(options) {}

  std::string name() const override { return "CherryPick"; }

  RunHistory Tune(const ConfigSpace& space, JobEvaluator* evaluator,
                  const TuningObjective& objective, int budget,
                  uint64_t seed) override;

 private:
  CherryPickOptions options_;
};

}  // namespace sparktune
