// Supervisor manifest (DESIGN.md §9): the control plane's own durable
// state, written with the same CRC-framed tmp+rename discipline as task
// checkpoints. One JSON document holds everything a fresh supervisor needs
// to take over after the old one is SIGKILLed: the service config, the
// static placement map with acked per-task period clocks, and per-shard
// fencing epochs + child PIDs so still-running workers can be re-adopted
// (ping + epoch handshake) and zombies fenced.
//
// The manifest is rewritten after every state transition (start, register,
// tick, kill, restart, recover), so at worst it trails the workers by one
// tick — and worker-reported clocks are authoritative on recovery, so a
// stale manifest can only under-claim, never rewind, a trajectory.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "service/wire.h"

namespace sparktune {

struct ShardManifestEntry {
  long long epoch = 1;  // fencing token carried by kConfigure/kExecute
  long long pid = -1;   // last known worker PID (-1 = dead/never spawned)
};

struct TaskManifestEntry {
  std::string id;
  int shard = -1;         // static rendezvous home
  long long periods = 0;  // acked period clock at manifest-write time
  SimTaskSpec spec;
};

struct SupervisorManifest {
  int num_shards = 0;
  ServiceConfig service;
  std::vector<ShardManifestEntry> shards;  // index = shard
  std::vector<TaskManifestEntry> tasks;    // registration order
};

Json SupervisorManifestToJson(const SupervisorManifest& manifest);
Result<SupervisorManifest> SupervisorManifestFromJson(const Json& j);

// Atomic CRC-framed write / load (data_repository.h framing, magic
// "SPARKTUNE-SUPV1"). Load returns kNotFound when no manifest exists
// (first boot) and kDataLoss when the file is torn or corrupt.
Status SaveSupervisorManifest(const std::string& path,
                              const SupervisorManifest& manifest);
Result<SupervisorManifest> LoadSupervisorManifest(const std::string& path);

}  // namespace sparktune
