// Wire bodies of the shard protocol (DESIGN.md §9): the JSON payloads that
// travel inside net/frame.h frames between the ProcessSupervisor control
// plane and sparktune_shardd workers.
//
// Everything a worker needs is described *by value* so a fork/exec'd
// process — or a SIGKILLed one's replacement — can rebuild identical
// state from the bytes alone: ServiceConfig rebuilds the shard's
// TuningService, SimTaskSpec rebuilds a task's evaluator stack (the same
// simulator + fault-injector composition the chaos tests use), and
// response envelopes carry typed Status codes so client-side errors stay
// distinguishable from transport failures. Seeds ride as hex strings
// (JSON numbers are doubles and would drop low bits of a 64-bit word).
#pragma once

#include <memory>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "service/tuning_service.h"
#include "sparksim/cluster.h"
#include "tuner/fault_injection.h"

namespace sparktune {

// ---------------------------------------------------------------------------
// Status & envelopes.
// ---------------------------------------------------------------------------

const char* StatusCodeName(Status::Code code);

// {"ok":true} / {"ok":false,"code":...,"message":...}. Response handlers
// Set() additional fields onto the ok envelope.
Json OkEnvelope();
Json ErrorEnvelope(const Status& status);

// ---------------------------------------------------------------------------
// ServiceConfig: the wire-serializable subset of TuningServiceOptions a
// worker needs. Sent once per connection establishment (kConfigure);
// idempotent — re-configuring with identical bytes is OK, with different
// bytes kFailedPrecondition.
// ---------------------------------------------------------------------------

struct ServiceConfig {
  std::string cluster = "hibench";  // ClusterFromName key
  int budget = 20;
  double ei_stop_threshold = 0.10;
  bool expert_ranking = false;  // advisor seeded with ExpertParameterRanking
  bool measure_baseline = true;
  bool enable_meta = true;
  int min_tasks_for_transfer = 2;
  std::string repository_dir;  // empty = in-memory only (no recovery)
  int keep_generations = 2;
  int auto_checkpoint_periods = 0;
  bool checkpoint_on_phase_change = false;
  int num_threads = 1;  // the shard's ExecutePeriodicAll budget
  bool compact_event_logs = false;
};

Json ServiceConfigToJson(const ServiceConfig& config);
Result<ServiceConfig> ServiceConfigFromJson(const Json& j);
Result<ClusterSpec> ClusterFromName(const std::string& name);
// The in-process options a worker (or an oracle run in tests) builds its
// TuningService from.
TuningServiceOptions MakeServiceOptions(const ServiceConfig& config);

// ---------------------------------------------------------------------------
// SimTaskSpec: a task's evaluator described by value. BuildSimEvaluator
// composes SimulatorEvaluator + FaultInjectingEvaluator from seeds alone,
// so every rebuild (registration, respawn, oracle) is bit-identical.
// ---------------------------------------------------------------------------

struct SimTaskSpec {
  std::string workload;  // HiBenchTask name, e.g. "WordCount"
  uint64_t seed = 1;
  double period_hours = 1.0;
  bool datasize_observable = true;
  FaultInjectionOptions faults;  // all probabilities 0 = no injection
};

Json SimTaskSpecToJson(const SimTaskSpec& spec);
Result<SimTaskSpec> SimTaskSpecFromJson(const Json& j);
Result<std::unique_ptr<JobEvaluator>> BuildSimEvaluator(
    const ConfigSpace* space, const ClusterSpec& cluster,
    const SimTaskSpec& spec);

// ---------------------------------------------------------------------------
// Result slots & fleet reports.
// ---------------------------------------------------------------------------

// One ExecutePeriodicAll slot: {"obs":{...}} or {"status":{code,message}}.
// Decoding reconstructs the slot — including typed error slots (watchdog
// backoff kUnavailable etc.) — bit-identically; a malformed document
// decodes to a kDataLoss slot.
Json ResultSlotToJson(const Result<Observation>& slot);
Result<Observation> ResultSlotFromJson(const Json& j,
                                       const ConfigSpace& space);

Json CheckpointReportToJson(const CheckpointReport& report);
CheckpointReport CheckpointReportFromJson(const Json& j);
Json HarvestReportToJson(const HarvestReport& report);
HarvestReport HarvestReportFromJson(const Json& j);

}  // namespace sparktune
