#include "service/wire.h"

#include <cinttypes>
#include <cstdlib>

#include "common/strings.h"
#include "sparksim/hibench.h"
#include "sparksim/spark_conf.h"
#include "tuner/evaluator.h"

namespace sparktune {
namespace {

// 64-bit words travel as fixed-width hex strings: JSON numbers are doubles
// and would silently drop the low bits of a seed.
Json U64ToJson(uint64_t v) {
  return Json::Str(StrFormat("%016" PRIx64, v));
}

uint64_t U64FromJson(const Json* j, uint64_t fallback) {
  if (j == nullptr || !j->is_string()) return fallback;
  return static_cast<uint64_t>(
      std::strtoull(j->AsString().c_str(), nullptr, 16));
}

int GetIntOr(const Json& j, const std::string& key, int fallback) {
  return static_cast<int>(j.GetNumberOr(key, fallback));
}

}  // namespace

// ---------------------------------------------------------------------------
// Status & envelopes.
// ---------------------------------------------------------------------------

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kDataLoss:
      return "DataLoss";
  }
  return "Internal";
}

namespace {

Status::Code StatusCodeFromName(const std::string& name) {
  if (name == "OK") return Status::Code::kOk;
  if (name == "InvalidArgument") return Status::Code::kInvalidArgument;
  if (name == "NotFound") return Status::Code::kNotFound;
  if (name == "OutOfRange") return Status::Code::kOutOfRange;
  if (name == "FailedPrecondition") return Status::Code::kFailedPrecondition;
  if (name == "Unavailable") return Status::Code::kUnavailable;
  if (name == "DataLoss") return Status::Code::kDataLoss;
  return Status::Code::kInternal;
}

}  // namespace

Json OkEnvelope() {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(true));
  return j;
}

Json ErrorEnvelope(const Status& status) {
  Json j = Json::Object();
  j.Set("ok", Json::Bool(false));
  j.Set("code", Json::Str(StatusCodeName(status.code())));
  j.Set("message", Json::Str(status.message()));
  return j;
}

// ---------------------------------------------------------------------------
// ServiceConfig.
// ---------------------------------------------------------------------------

Json ServiceConfigToJson(const ServiceConfig& config) {
  Json j = Json::Object();
  j.Set("cluster", Json::Str(config.cluster));
  j.Set("budget", Json::Number(config.budget));
  j.Set("ei_stop_threshold", Json::Number(config.ei_stop_threshold));
  j.Set("expert_ranking", Json::Bool(config.expert_ranking));
  j.Set("measure_baseline", Json::Bool(config.measure_baseline));
  j.Set("enable_meta", Json::Bool(config.enable_meta));
  j.Set("min_tasks_for_transfer",
        Json::Number(config.min_tasks_for_transfer));
  j.Set("repository_dir", Json::Str(config.repository_dir));
  j.Set("keep_generations", Json::Number(config.keep_generations));
  j.Set("auto_checkpoint_periods",
        Json::Number(config.auto_checkpoint_periods));
  j.Set("checkpoint_on_phase_change",
        Json::Bool(config.checkpoint_on_phase_change));
  j.Set("num_threads", Json::Number(config.num_threads));
  j.Set("compact_event_logs", Json::Bool(config.compact_event_logs));
  return j;
}

Result<ServiceConfig> ServiceConfigFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("service config is not a JSON object");
  }
  ServiceConfig config;
  config.cluster = j.GetStringOr("cluster", config.cluster);
  config.budget = GetIntOr(j, "budget", config.budget);
  config.ei_stop_threshold =
      j.GetNumberOr("ei_stop_threshold", config.ei_stop_threshold);
  config.expert_ranking = j.GetBoolOr("expert_ranking", config.expert_ranking);
  config.measure_baseline =
      j.GetBoolOr("measure_baseline", config.measure_baseline);
  config.enable_meta = j.GetBoolOr("enable_meta", config.enable_meta);
  config.min_tasks_for_transfer =
      GetIntOr(j, "min_tasks_for_transfer", config.min_tasks_for_transfer);
  config.repository_dir =
      j.GetStringOr("repository_dir", config.repository_dir);
  config.keep_generations =
      GetIntOr(j, "keep_generations", config.keep_generations);
  config.auto_checkpoint_periods =
      GetIntOr(j, "auto_checkpoint_periods", config.auto_checkpoint_periods);
  config.checkpoint_on_phase_change = j.GetBoolOr(
      "checkpoint_on_phase_change", config.checkpoint_on_phase_change);
  config.num_threads = GetIntOr(j, "num_threads", config.num_threads);
  config.compact_event_logs =
      j.GetBoolOr("compact_event_logs", config.compact_event_logs);
  SPARKTUNE_RETURN_IF_ERROR(ClusterFromName(config.cluster).status());
  return config;
}

Result<ClusterSpec> ClusterFromName(const std::string& name) {
  if (name == "hibench") return ClusterSpec::HiBenchCluster();
  return Status::InvalidArgument("unknown cluster spec: " + name);
}

TuningServiceOptions MakeServiceOptions(const ServiceConfig& config) {
  TuningServiceOptions options;
  options.tuner.budget = config.budget;
  options.tuner.ei_stop_threshold = config.ei_stop_threshold;
  options.tuner.measure_baseline = config.measure_baseline;
  if (config.expert_ranking) {
    options.tuner.advisor.expert_ranking = ExpertParameterRanking();
  }
  options.enable_meta = config.enable_meta;
  options.min_tasks_for_transfer = config.min_tasks_for_transfer;
  options.repository_dir = config.repository_dir;
  options.checkpoint_retention.keep_generations = config.keep_generations;
  options.auto_checkpoint_periods = config.auto_checkpoint_periods;
  options.checkpoint_on_phase_change = config.checkpoint_on_phase_change;
  options.num_threads = config.num_threads;
  options.compact_event_logs = config.compact_event_logs;
  return options;
}

// ---------------------------------------------------------------------------
// SimTaskSpec.
// ---------------------------------------------------------------------------

Json SimTaskSpecToJson(const SimTaskSpec& spec) {
  Json j = Json::Object();
  j.Set("workload", Json::Str(spec.workload));
  j.Set("seed", U64ToJson(spec.seed));
  j.Set("period_hours", Json::Number(spec.period_hours));
  j.Set("datasize_observable", Json::Bool(spec.datasize_observable));
  Json f = Json::Object();
  f.Set("seed", U64ToJson(spec.faults.seed));
  f.Set("crash_prob", Json::Number(spec.faults.crash_prob));
  f.Set("transient_error_prob",
        Json::Number(spec.faults.transient_error_prob));
  f.Set("hang_prob", Json::Number(spec.faults.hang_prob));
  f.Set("corrupt_log_prob", Json::Number(spec.faults.corrupt_log_prob));
  f.Set("truncate_log_prob", Json::Number(spec.faults.truncate_log_prob));
  f.Set("hang_runtime_factor", Json::Number(spec.faults.hang_runtime_factor));
  j.Set("faults", std::move(f));
  return j;
}

Result<SimTaskSpec> SimTaskSpecFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("task spec is not a JSON object");
  }
  SimTaskSpec spec;
  spec.workload = j.GetStringOr("workload", "");
  if (spec.workload.empty()) {
    return Status::InvalidArgument("task spec has no workload");
  }
  SPARKTUNE_RETURN_IF_ERROR(HiBenchTask(spec.workload).status());
  spec.seed = U64FromJson(j.Get("seed"), spec.seed);
  spec.period_hours = j.GetNumberOr("period_hours", spec.period_hours);
  spec.datasize_observable =
      j.GetBoolOr("datasize_observable", spec.datasize_observable);
  if (const Json* f = j.Get("faults"); f != nullptr && f->is_object()) {
    spec.faults.seed = U64FromJson(f->Get("seed"), spec.faults.seed);
    spec.faults.crash_prob =
        f->GetNumberOr("crash_prob", spec.faults.crash_prob);
    spec.faults.transient_error_prob = f->GetNumberOr(
        "transient_error_prob", spec.faults.transient_error_prob);
    spec.faults.hang_prob = f->GetNumberOr("hang_prob", spec.faults.hang_prob);
    spec.faults.corrupt_log_prob =
        f->GetNumberOr("corrupt_log_prob", spec.faults.corrupt_log_prob);
    spec.faults.truncate_log_prob =
        f->GetNumberOr("truncate_log_prob", spec.faults.truncate_log_prob);
    spec.faults.hang_runtime_factor =
        f->GetNumberOr("hang_runtime_factor", spec.faults.hang_runtime_factor);
  }
  return spec;
}

namespace {

// Owning simulator + fault-injector composite (the same stack the chaos
// tests wrap by hand). Faults are injected even when all probabilities are
// zero: a zero-prob injector is a pass-through whose schedule cursor still
// advances deterministically, keeping the composition uniform.
class SimTaskEvaluator final : public JobEvaluator {
 public:
  SimTaskEvaluator(const ConfigSpace* space, WorkloadSpec workload,
                   const ClusterSpec& cluster, SimulatorEvaluatorOptions opts,
                   const FaultInjectionOptions& faults)
      : sim_(space, std::move(workload), cluster, DriftModel::Diurnal(),
             opts),
        faulty_(&sim_, faults) {}

  Outcome Run(const Configuration& config) override {
    return faulty_.Run(config);
  }
  double ResourceRate(const Configuration& config) const override {
    return faulty_.ResourceRate(config);
  }
  double NextDataSizeHintGb() const override {
    return faulty_.NextDataSizeHintGb();
  }
  double NextHours() const override { return faulty_.NextHours(); }
  void SkipExecutions(int n) override { faulty_.SkipExecutions(n); }

 private:
  SimulatorEvaluator sim_;
  FaultInjectingEvaluator faulty_;
};

}  // namespace

Result<std::unique_ptr<JobEvaluator>> BuildSimEvaluator(
    const ConfigSpace* space, const ClusterSpec& cluster,
    const SimTaskSpec& spec) {
  SPARKTUNE_ASSIGN_OR_RETURN(workload, HiBenchTask(spec.workload));
  SimulatorEvaluatorOptions opts;
  opts.period_hours = spec.period_hours;
  opts.datasize_observable = spec.datasize_observable;
  opts.seed = spec.seed;
  return std::unique_ptr<JobEvaluator>(new SimTaskEvaluator(
      space, std::move(workload), cluster, opts, spec.faults));
}

// ---------------------------------------------------------------------------
// Result slots & fleet reports.
// ---------------------------------------------------------------------------

Json ResultSlotToJson(const Result<Observation>& slot) {
  Json j = Json::Object();
  if (slot.ok()) {
    j.Set("obs", DataRepository::ObservationToJson(*slot));
  } else {
    Json st = Json::Object();
    st.Set("code", Json::Str(StatusCodeName(slot.status().code())));
    st.Set("message", Json::Str(slot.status().message()));
    j.Set("status", std::move(st));
  }
  return j;
}

Result<Observation> ResultSlotFromJson(const Json& j,
                                       const ConfigSpace& space) {
  if (!j.is_object()) {
    return Status::DataLoss("result slot is not a JSON object");
  }
  if (const Json* obs = j.Get("obs"); obs != nullptr) {
    return DataRepository::ObservationFromJson(*obs, space);
  }
  const Json* st = j.Get("status");
  if (st == nullptr || !st->is_object()) {
    return Status::DataLoss("result slot has neither obs nor status");
  }
  return Status(StatusCodeFromName(st->GetStringOr("code", "Internal")),
                st->GetStringOr("message", "(no message)"));
}

Json CheckpointReportToJson(const CheckpointReport& report) {
  Json j = Json::Object();
  j.Set("written", Json::Number(report.written));
  j.Set("skipped", Json::Number(report.skipped));
  j.Set("failed", Json::Number(report.failed));
  Json errors = Json::Array();
  for (const Status& st : report.errors) {
    errors.Append(Json::Str(st.ToString()));
  }
  j.Set("errors", std::move(errors));
  return j;
}

CheckpointReport CheckpointReportFromJson(const Json& j) {
  CheckpointReport report;
  if (!j.is_object()) return report;
  report.written = GetIntOr(j, "written", 0);
  report.skipped = GetIntOr(j, "skipped", 0);
  report.failed = GetIntOr(j, "failed", 0);
  if (const Json* errors = j.Get("errors"); errors && errors->is_array()) {
    for (const Json& e : errors->elements()) {
      if (e.is_string()) report.errors.push_back(Status::Internal(e.AsString()));
    }
  }
  return report;
}

Json HarvestReportToJson(const HarvestReport& report) {
  Json j = Json::Object();
  j.Set("attempted", Json::Number(report.attempted));
  j.Set("harvested", Json::Number(report.harvested));
  j.Set("deferred", Json::Number(report.deferred));
  j.Set("failed", Json::Number(report.failed));
  Json errors = Json::Array();
  for (const Status& st : report.errors) {
    errors.Append(Json::Str(st.ToString()));
  }
  j.Set("errors", std::move(errors));
  return j;
}

HarvestReport HarvestReportFromJson(const Json& j) {
  HarvestReport report;
  if (!j.is_object()) return report;
  report.attempted = GetIntOr(j, "attempted", 0);
  report.harvested = GetIntOr(j, "harvested", 0);
  report.deferred = GetIntOr(j, "deferred", 0);
  report.failed = GetIntOr(j, "failed", 0);
  if (const Json* errors = j.Get("errors"); errors && errors->is_array()) {
    for (const Json& e : errors->elements()) {
      if (e.is_string()) report.errors.push_back(Status::Internal(e.AsString()));
    }
  }
  return report;
}

}  // namespace sparktune
