// ServiceSupervisor (DESIGN.md §7 "Sharding & handoff"): the layer above
// TuningService that makes the §6.2 cloud deployment survive shard churn.
//
// It partitions registered tasks across N TuningService shards with
// deterministic rendezvous (highest-random-weight) hashing, drives the
// global periodic tick through the shards (each shard executes its slice
// with its own ExecutePeriodicAll thread budget), and simulates shard
// crashes and restarts — either scripted (KillShard/RestartShard) or drawn
// from a seeded ShardFaultPlan in the same style as
// FaultInjectingEvaluator.
//
// Handoff contract: when a shard dies, each of its tasks is re-registered
// on a surviving (or restarted) shard with a *fresh* evaluator built by the
// task's factory, restored from its newest intact checkpoint generation,
// and fast-forwarded by deterministically replaying every post-checkpoint
// period. Because all service state is deterministic in (task seed, period
// index), the task's reported suggestion trajectory is bit-identical to an
// undisturbed run — with no checkpoint at all the supervisor simply replays
// the whole trajectory from period zero.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/tuning_service.h"

namespace sparktune {

// Builds a task's evaluator from scratch (execution clock at 0). Called at
// registration and again on every handoff/restart; it must produce
// deterministically identical evaluators each time (same seeds), or replay
// equivalence is lost.
using EvaluatorFactory = std::function<std::unique_ptr<JobEvaluator>()>;

// Seeded shard chaos schedule. The draw for tick t depends only on
// (seed, t) plus the live/dead sets that tick, so a fixed seed yields a
// reproducible kill/restart history at any thread count.
struct ShardFaultPlanOptions {
  uint64_t seed = 99;
  // Per tick: probability of killing one uniformly chosen live shard
  // (never the last one).
  double kill_prob = 0.0;
  // Per tick: probability of restarting one uniformly chosen dead shard.
  double restart_prob = 0.0;
};

struct ServiceSupervisorOptions {
  int num_shards = 2;
  // Per-shard service configuration. All shards share
  // `service.repository_dir` (tasks are single-writer, so per-task files
  // never conflict); leaving it empty disables checkpoint handoff and
  // forces full replay on every kill. `service.num_threads` is each
  // shard's ExecutePeriodicAll budget.
  TuningServiceOptions service;
  ShardFaultPlanOptions fault_plan;
};

struct SupervisorStats {
  long long ticks = 0;
  long long kills = 0;
  long long restarts = 0;
  long long handoffs = 0;          // task re-registrations after a kill
  long long restored_tasks = 0;    // handoffs resumed from a checkpoint
  long long fresh_replays = 0;     // handoffs replayed from period zero
  long long replayed_periods = 0;  // periods re-executed to catch up
};

class ServiceSupervisor {
 public:
  ServiceSupervisor(const ConfigSpace* space,
                    ServiceSupervisorOptions options = {});

  // Register a periodic task fleet-wide; it is placed on its rendezvous
  // shard. The factory is retained for handoffs.
  Status RegisterTask(const std::string& id, EvaluatorFactory factory,
                      std::optional<Configuration> baseline = std::nullopt,
                      std::optional<TunerOptions> override = std::nullopt);

  // One global periodic tick: applies the fault plan (kills/restarts +
  // handoffs), then executes every task once through its shard's
  // ExecutePeriodicAll. Results are in task registration order and match a
  // single-shard, undisturbed run at any thread count.
  std::vector<Result<Observation>> Tick();

  // Scripted chaos (the fault plan uses these too). Killing a shard
  // destroys its in-memory service state — only repository files survive —
  // and immediately hands its tasks off to the remaining live shards.
  // The last live shard cannot be killed.
  Status KillShard(int shard);
  Status RestartShard(int shard);

  // Routed to the owning shard.
  Status HarvestTask(const std::string& id);
  // Streaming harvest across all live shards: each drains up to
  // `max_tasks_per_shard` from its queue (0 = whole backlog); aggregated.
  HarvestReport HarvestDirty(int max_tasks_per_shard = 0);
  // Checkpoints every task on every live shard; aggregated per-shard.
  CheckpointReport CheckpointAll();
  // Loads the shared repository into every live shard's knowledge base.
  Status LoadRepository();

  int shard_of(const std::string& id) const;  // -1 if unknown
  bool shard_alive(int shard) const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_live_shards() const;
  size_t num_tasks() const { return tasks_.size(); }
  // Task ids in registration order (the order Tick() reports in).
  std::vector<std::string> task_ids() const;
  const SupervisorStats& stats() const { return stats_; }
  const TuningService* shard(int i) const;
  const OnlineTuner* tuner(const std::string& id) const;
  long long periods(const std::string& id) const;

 private:
  struct TaskEntry {
    std::string id;
    EvaluatorFactory factory;
    std::optional<Configuration> baseline;
    std::optional<TunerOptions> override;
    std::unique_ptr<JobEvaluator> evaluator;  // current incarnation
    int shard = -1;
    // Global periods this task has been scheduled for (== the shard-side
    // period clock when the shard is healthy).
    long long periods = 0;
  };
  struct ShardSlot {
    std::unique_ptr<TuningService> service;  // null = dead
    bool loaded = false;  // LoadRepository done on this incarnation
  };

  // Rendezvous winner for `id` over the currently live shards.
  int PreferredShard(const std::string& id) const;
  // Fresh evaluator + registration on `target`, restore from the newest
  // intact checkpoint generation, replay the post-checkpoint gap.
  Status HandoffTask(TaskEntry* task, int target);
  void MaybeLoadShard(int shard);
  void ApplyFaultPlan();

  const ConfigSpace* space_;
  ServiceSupervisorOptions options_;
  std::vector<ShardSlot> shards_;
  std::vector<TaskEntry> tasks_;          // registration order
  std::map<std::string, size_t> index_;   // id -> tasks_ index
  SupervisorStats stats_;
};

}  // namespace sparktune
