// ProcessSupervisor (DESIGN.md §9): the control plane of the multi-process
// tuning service. Where ServiceSupervisor shards across in-process
// TuningService instances, this supervisor fork/execs one sparktune_shardd
// worker per shard, speaks the framed protocol (net/) to each over a
// Unix-domain socket, and drives the global periodic tick over the wire —
// pipelined, one kExecute per live shard per tick.
//
// Placement is *static* rendezvous over all shard indices (dead or alive):
// a task's home shard never moves. When its shard is down the task parks —
// its tick slots come back as typed kUnavailable within the call deadline,
// never a hang — until RestartShard respawns the worker, which restores
// each task from its newest intact checkpoint generation and replays the
// gap up to the control plane's acked period count. Because all task state
// is deterministic in (task seed, period index), the post-recovery
// trajectory is bit-identical to an undisturbed run.
//
// Crash consistency: a worker can execute a period, auto-checkpoint, and
// die before its response is read — leaving its on-disk state AHEAD of the
// control plane's acked count. kExecute responses therefore carry per-task
// post-execution period clocks which the control plane adopts as
// authoritative, and recovery never rewinds a checkpoint: a restored clock
// past the replay target is adopted and counted in stats().lost_results.
#pragma once

#include <sys/types.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "service/health.h"
#include "service/tuning_service.h"
#include "service/wire.h"

namespace sparktune {

struct ProcessSupervisorOptions {
  // Worker binary (tools/sparktune_shardd) and the directory that holds
  // the per-shard socket files (shard-<i>.sock).
  std::string shardd_path;
  std::string socket_dir;
  int num_shards = 2;
  // Shared per-shard service configuration; all workers see the same
  // repository_dir (per-task files are single-writer, so they never
  // conflict). Empty repository_dir disables recovery: a restarted shard
  // replays every task from period zero.
  ServiceConfig service;
  // Per-connection deadlines. `call_timeout_ms` bounds one full exchange
  // (a whole shard batch executes within it); a breach marks the worker
  // down and parks its tasks — the tick never hangs.
  int connect_timeout_ms = 1000;
  int call_timeout_ms = 30000;
  // Reconnect schedule after spawn/restart: attempt k waits
  // RetryPolicy::BackoffPeriods(k-1) * backoff_unit_ms (net/client.h).
  // The default policy stretches to 8 attempts so a fresh fork/exec has
  // ~2.5 s to reach its listener.
  RetryPolicy reconnect{/*max_attempts=*/8, /*base_backoff_periods=*/1,
                        /*max_backoff_periods=*/64,
                        /*circuit_break_failures=*/4, /*park_periods=*/6};
  int backoff_unit_ms = 20;
  // Deterministic wire chaos (net/chaos.h): seed 0 disables. When enabled
  // every request write (supervisor side) and — with chaos_workers — every
  // response write (worker side, via --chaos_seed) draws faults from the
  // (seed, shard, direction, exchange index) schedule. Each freshly
  // spawned channel gets chaos_arm_exchanges exempt exchanges so
  // configure/recovery traffic on a new incarnation can land.
  uint64_t chaos_seed = 0;
  double chaos_prob = 0.0;
  int chaos_arm_exchanges = 16;
  bool chaos_workers = true;
  // Heartbeat liveness + auto-restart policy (service/health.h).
  // health.auto_restart=false preserves manual-restart-only semantics.
  HealthPolicy health;
  // Supervisor manifest path; empty derives
  // "<socket_dir>/supervisor.manifest". The manifest is what Recover()
  // reads after a supervisor crash.
  std::string manifest_path;
};

struct ProcessSupervisorStats {
  long long ticks = 0;
  long long kills = 0;              // SIGKILLs delivered via KillShard
  long long restarts = 0;           // successful RestartShard respawns
  long long restored_tasks = 0;     // recoveries resumed from a checkpoint
  long long fresh_replays = 0;      // recoveries replayed from period zero
  long long replayed_periods = 0;   // periods re-executed worker-side
  long long parked_slots = 0;       // kUnavailable slots for down shards
  long long lost_results = 0;       // periods a dead worker computed but
                                    // never delivered (clock ran ahead)
  long long worker_failures = 0;    // transport failures marking a worker
                                    // down outside KillShard
  long long probes = 0;             // heartbeat pings spent
  long long probe_failures = 0;     // probes that failed or were fenced
  long long auto_restarts = 0;      // health-monitor-driven respawns
  long long recoveries = 0;         // successful Recover() runs
  long long adopted_workers = 0;    // live workers re-adopted by Recover()
  long long adopted_tasks = 0;      // worker-known tasks missing from the
                                    // manifest, adopted on recovery
  long long fenced_workers = 0;     // stale incarnations killed/fenced
  long long manifest_failures = 0;  // best-effort manifest writes that failed
};

class ProcessSupervisor {
 public:
  explicit ProcessSupervisor(ProcessSupervisorOptions options);
  // Reaps every child: graceful Shutdown() first, SIGKILL stragglers.
  ~ProcessSupervisor();
  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  // Spawn + connect + configure every worker. Idempotent per live worker.
  Status Start();

  // Register a periodic task fleet-wide on its static rendezvous shard.
  // The spec is retained for recovery respawns. Fails when the home shard
  // is down (registration is not parked — recovery re-registers).
  Status RegisterTask(const std::string& id, const SimTaskSpec& spec);

  // One global tick: kExecute pipelined to every live shard (all batches
  // written before any response is read), slots stitched back into task
  // registration order. Tasks on down shards get kUnavailable slots; a
  // worker that fails mid-tick is marked down and its slots degrade the
  // same way. Worker-reported period clocks are adopted per task.
  std::vector<Result<Observation>> Tick();

  // Chaos: SIGKILL the worker process (no warning, no flush) and reap it.
  // Its tasks park until RestartShard (or the health monitor's
  // auto-restart). The last live shard can be killed — parking degrades
  // every slot but nothing hangs.
  Status KillShard(int shard);
  // Respawn the worker on the same socket at epoch+1, reconfigure it,
  // reload the repository, then re-register + restore + replay every
  // parked task of this shard up to its acked period count. All-or-
  // nothing: any failure after the spawn kills the fresh child again so
  // the shard returns to cleanly-dead (a half-recovered worker running
  // fresh clocks against acked history would fork the trajectory).
  Status RestartShard(int shard);

  // Simulate supervisor death: drop every connection and forget every
  // child WITHOUT signaling or reaping — workers keep running as orphans,
  // exactly as if this process had been SIGKILLed. A fresh supervisor
  // (same options) must Recover() from the manifest to take over.
  void Abandon();
  // Take over a crashed supervisor's fleet from its manifest: rebuild the
  // placement map and acked clocks, re-adopt still-running workers via a
  // ping + epoch handshake (reconciling worker-reported period clocks via
  // kTaskStatus — never rewinding), and fence + respawn the rest at
  // epoch+1. kNotFound when no manifest exists (call Start() instead);
  // kDataLoss when the manifest is torn.
  Status Recover();

  // Routed to every live shard; aggregated.
  CheckpointReport CheckpointAll();
  HarvestReport HarvestDirty(int max_tasks_per_shard = 0);
  // Routed to the owning shard.
  Status HarvestTask(const std::string& id);
  // Best incumbent configuration of a task, fetched over the wire.
  Result<Configuration> FetchSuggestion(const std::string& id);
  // Health probe: one kPing round trip to the worker. kUnavailable when
  // the shard is down or disconnected; bench_rpc uses this as the minimal
  // full-exchange latency sample.
  Status Ping(int shard);

  // Graceful stop: kShutdown to every live worker, then reap. Safe to call
  // repeatedly; the destructor calls it.
  Status Shutdown();

  int num_shards() const { return static_cast<int>(workers_.size()); }
  int num_live_shards() const;
  bool shard_alive(int shard) const;
  int shard_of(const std::string& id) const;  // -1 if unknown
  long long periods(const std::string& id) const;
  size_t num_tasks() const { return tasks_.size(); }
  std::vector<std::string> task_ids() const;
  const ProcessSupervisorStats& stats() const { return stats_; }
  std::string socket_path(int shard) const;
  const std::string& manifest_path() const { return options_.manifest_path; }
  ShardHealth shard_health(int shard) const;
  long long shard_epoch(int shard) const;
  long long total_quarantines() const;
  // Aggregated client-side chaos counters across every shard channel.
  net::ChaosStats chaos_stats() const;

 private:
  struct Worker {
    pid_t pid = -1;          // -1 = never spawned / reaped
    bool alive = false;      // process believed up and configured
    // Fencing epoch: 0 = never started; Start() assigns 1; every respawn
    // (manual, auto, or recovery fence) increments. Carried by
    // kConfigure/kExecute so a stale incarnation gets kFailedPrecondition.
    long long epoch = 0;
    std::unique_ptr<net::ShardClient> client;
    // Tick-domain reconnect pacing for transient disconnects of a live
    // process (net/client.h ReconnectState, RetryPolicy-driven).
    net::ReconnectState reconnect;
    // Heartbeat liveness state machine (service/health.h).
    ShardHealthMonitor health;
  };
  struct TaskEntry {
    std::string id;
    SimTaskSpec spec;
    int shard = -1;          // static rendezvous home, never moves
    long long periods = 0;   // acked period clock (worker-authoritative)
  };

  int PreferredShard(const std::string& id) const;
  // Resolves the cluster + config space the control plane decodes
  // observations against (lazily; Start and RegisterTask call it).
  Status InitSpace();
  // Fresh ShardClient for `shard` with this supervisor's deadlines,
  // reconnect schedule, and chaos options.
  std::unique_ptr<net::ShardClient> MakeClient(int shard) const;
  Status SpawnWorker(int shard);
  Status ConfigureWorker(int shard);
  // RestartShard minus health bookkeeping (shared with auto-restart and
  // the recovery fence path). Kill-on-failure: see RestartShard.
  Status RestartShardInternal(int shard);
  // Register + restore + replay every task homed on `shard`.
  Status RecoverShardTasks(int shard);
  // Fold a worker's kTaskStatus reply into the placement map: clocks adopt
  // max(acked, reported) and worker-known tasks missing from the manifest
  // are adopted outright.
  void ReconcileTaskStatus(int shard, const Json& env);
  // Mark a worker down after a transport failure and reap it if the
  // process actually exited.
  void MarkWorkerDown(int shard);
  void ReapWorker(int shard, bool block);
  // Best-effort durable snapshot of the control plane (supervisor
  // manifest); failures only bump stats_.manifest_failures.
  void SaveManifest();

  ProcessSupervisorOptions options_;
  ClusterSpec cluster_;
  ConfigSpace space_;
  bool space_ready_ = false;
  std::vector<Worker> workers_;
  std::vector<TaskEntry> tasks_;         // registration order
  std::map<std::string, size_t> index_;  // id -> tasks_ index
  ProcessSupervisorStats stats_;
};

}  // namespace sparktune
