#include "service/supervisor.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"
#include "service/placement.h"

namespace sparktune {

ServiceSupervisor::ServiceSupervisor(const ConfigSpace* space,
                                     ServiceSupervisorOptions options)
    : space_(space), options_(std::move(options)) {
  assert(space_ != nullptr);
  if (options_.num_shards < 1) options_.num_shards = 1;
  shards_.resize(static_cast<size_t>(options_.num_shards));
  for (auto& slot : shards_) {
    slot.service = std::make_unique<TuningService>(space_, options_.service);
  }
}

int ServiceSupervisor::PreferredShard(const std::string& id) const {
  // Rendezvous hashing over the live shards (service/placement.h, shared
  // with the multi-process control plane): each task independently ranks
  // every shard, so killing one shard moves only that shard's tasks and
  // leaves every other placement untouched.
  return placement::Rendezvous(id, num_shards(), [this](int s) {
    return shards_[static_cast<size_t>(s)].service != nullptr;
  });
}

Status ServiceSupervisor::RegisterTask(const std::string& id,
                                       EvaluatorFactory factory,
                                       std::optional<Configuration> baseline,
                                       std::optional<TunerOptions> override) {
  if (index_.count(id) > 0) {
    return Status::InvalidArgument("task already registered: " + id);
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("evaluator factory is null for task: " +
                                   id);
  }
  int target = PreferredShard(id);
  if (target < 0) {
    return Status::FailedPrecondition("no live shard to place task: " + id);
  }
  TaskEntry entry;
  entry.id = id;
  entry.factory = std::move(factory);
  entry.baseline = std::move(baseline);
  entry.override = std::move(override);
  entry.evaluator = entry.factory();
  if (entry.evaluator == nullptr) {
    return Status::InvalidArgument("factory built a null evaluator: " + id);
  }
  SPARKTUNE_RETURN_IF_ERROR(shards_[target].service->RegisterTask(
      id, entry.evaluator.get(), entry.baseline, entry.override));
  entry.shard = target;
  index_.emplace(id, tasks_.size());
  tasks_.push_back(std::move(entry));
  return Status::OK();
}

void ServiceSupervisor::MaybeLoadShard(int shard) {
  ShardSlot& slot = shards_[static_cast<size_t>(shard)];
  if (slot.service == nullptr || slot.loaded) return;
  slot.loaded = true;
  if (options_.service.repository_dir.empty()) return;
  // Best-effort: an empty repository is normal on first boot, and a
  // partially loadable one must not block handoff.
  (void)slot.service->LoadRepository();
}

Status ServiceSupervisor::LoadRepository() {
  if (options_.service.repository_dir.empty()) {
    return Status::FailedPrecondition("no repository configured");
  }
  Status first = Status::OK();
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardSlot& slot = shards_[s];
    if (slot.service == nullptr || slot.loaded) continue;
    Status st = slot.service->LoadRepository();
    slot.loaded = true;
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status ServiceSupervisor::HandoffTask(TaskEntry* task, int target) {
  TuningService* svc = shards_[static_cast<size_t>(target)].service.get();
  // The dead shard's evaluator instance died with it; rebuild at execution
  // clock 0 (restore/replay fast-forwards it deterministically).
  task->evaluator = task->factory();
  MaybeLoadShard(target);
  SPARKTUNE_RETURN_IF_ERROR(svc->RegisterTask(
      task->id, task->evaluator.get(), task->baseline, task->override));
  task->shard = target;
  ++stats_.handoffs;

  bool restored = false;
  if (!options_.service.repository_dir.empty()) {
    Status rs = svc->RestoreTask(task->id);
    if (rs.ok()) {
      restored = true;
      ++stats_.restored_tasks;
    }
    // NotFound (never checkpointed) and DataLoss (no intact generation)
    // both degrade to replay-from-scratch below.
  }
  if (!restored) ++stats_.fresh_replays;

  // Deterministic catch-up: every post-checkpoint period re-executes with
  // the same watchdog decisions, fault schedule, and advisor draws it had
  // the first time, so the task lands exactly where it was at the kill.
  // Results were already reported by the dead shard; they are discarded.
  while (svc->periods(task->id) < task->periods) {
    (void)svc->ExecutePeriodic(task->id);
    ++stats_.replayed_periods;
  }
  return Status::OK();
}

Status ServiceSupervisor::KillShard(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  ShardSlot& slot = shards_[static_cast<size_t>(shard)];
  if (slot.service == nullptr) {
    return Status::FailedPrecondition("shard already dead");
  }
  if (num_live_shards() <= 1) {
    return Status::FailedPrecondition("cannot kill the last live shard");
  }
  // Process death: every in-memory structure of the shard is gone. Only
  // repository files (checkpoint generations, harvested histories) survive.
  slot.service.reset();
  slot.loaded = false;
  ++stats_.kills;

  Status first = Status::OK();
  for (TaskEntry& task : tasks_) {
    if (task.shard != shard) continue;
    task.evaluator.reset();
    int target = PreferredShard(task.id);
    Status st = target < 0 ? Status::FailedPrecondition(
                                 "no live shard for handoff: " + task.id)
                           : HandoffTask(&task, target);
    if (!st.ok()) {
      task.shard = -1;
      if (first.ok()) first = st;
    }
  }
  return first;
}

Status ServiceSupervisor::RestartShard(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard");
  }
  ShardSlot& slot = shards_[static_cast<size_t>(shard)];
  if (slot.service != nullptr) {
    return Status::FailedPrecondition("shard is alive");
  }
  slot.service = std::make_unique<TuningService>(space_, options_.service);
  slot.loaded = false;
  ++stats_.restarts;
  // Placement is sticky: live tasks stay where they are (no disruptive
  // rebalance); the restarted shard picks up future handoffs and
  // registrations its rendezvous rank wins.
  return Status::OK();
}

void ServiceSupervisor::ApplyFaultPlan() {
  const ShardFaultPlanOptions& plan = options_.fault_plan;
  if (plan.kill_prob <= 0.0 && plan.restart_prob <= 0.0) return;
  // Per-tick derived stream (same idiom as FaultInjectingEvaluator): the
  // draw depends only on (seed, tick), never on wall time or threads.
  Rng rng(plan.seed * 0x9E3779B97F4A7C15ULL +
          static_cast<uint64_t>(stats_.ticks));

  // Restarts first: recovered capacity is available to this tick's kills.
  if (rng.Uniform() < plan.restart_prob) {
    std::vector<int> dead;
    for (int s = 0; s < num_shards(); ++s) {
      if (!shard_alive(s)) dead.push_back(s);
    }
    if (!dead.empty()) {
      int pick = static_cast<int>(rng.UniformInt(
          0, static_cast<int64_t>(dead.size()) - 1));
      (void)RestartShard(dead[static_cast<size_t>(pick)]);
    }
  }
  if (rng.Uniform() < plan.kill_prob) {
    std::vector<int> live;
    for (int s = 0; s < num_shards(); ++s) {
      if (shard_alive(s)) live.push_back(s);
    }
    if (live.size() > 1) {
      int pick = static_cast<int>(rng.UniformInt(
          0, static_cast<int64_t>(live.size()) - 1));
      (void)KillShard(live[static_cast<size_t>(pick)]);
    }
  }
}

std::vector<Result<Observation>> ServiceSupervisor::Tick() {
  ApplyFaultPlan();

  // Slice the fleet per shard in registration order; each shard runs its
  // slice with its own ExecutePeriodicAll thread budget, and the slices
  // are stitched back into registration order.
  std::vector<std::vector<std::string>> batches(shards_.size());
  std::vector<std::vector<size_t>> positions(shards_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const TaskEntry& task = tasks_[i];
    if (task.shard >= 0 && shard_alive(task.shard)) {
      batches[static_cast<size_t>(task.shard)].push_back(task.id);
      positions[static_cast<size_t>(task.shard)].push_back(i);
    }
  }

  std::vector<std::optional<Result<Observation>>> slots(tasks_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (batches[s].empty()) continue;
    std::vector<Result<Observation>> batch_results =
        shards_[s].service->ExecutePeriodicAll(batches[s]);
    for (size_t k = 0; k < batch_results.size(); ++k) {
      slots[positions[s][k]] = std::move(batch_results[k]);
    }
  }

  std::vector<Result<Observation>> results;
  results.reserve(tasks_.size());
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (slots[i].has_value()) {
      ++tasks_[i].periods;
      results.push_back(*std::move(slots[i]));
    } else {
      // Task without a live home (a failed handoff); surfaced per tick.
      results.push_back(
          Status::Unavailable("task has no live shard: " + tasks_[i].id));
    }
  }
  ++stats_.ticks;
  return results;
}

Status ServiceSupervisor::HarvestTask(const std::string& id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("unknown task: " + id);
  }
  const TaskEntry& task = tasks_[it->second];
  if (task.shard < 0 || !shard_alive(task.shard)) {
    return Status::Unavailable("task has no live shard: " + id);
  }
  return shards_[static_cast<size_t>(task.shard)].service->HarvestTask(id);
}

CheckpointReport ServiceSupervisor::CheckpointAll() {
  CheckpointReport report;
  for (auto& slot : shards_) {
    if (slot.service == nullptr) continue;
    report.Merge(slot.service->CheckpointTasks());
  }
  return report;
}

HarvestReport ServiceSupervisor::HarvestDirty(int max_tasks_per_shard) {
  HarvestReport report;
  for (auto& slot : shards_) {
    if (slot.service == nullptr) continue;
    report.Merge(slot.service->HarvestDirty(max_tasks_per_shard));
  }
  return report;
}

int ServiceSupervisor::shard_of(const std::string& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : tasks_[it->second].shard;
}

bool ServiceSupervisor::shard_alive(int shard) const {
  return shard >= 0 && shard < num_shards() &&
         shards_[static_cast<size_t>(shard)].service != nullptr;
}

int ServiceSupervisor::num_live_shards() const {
  int live = 0;
  for (const auto& slot : shards_) {
    if (slot.service != nullptr) ++live;
  }
  return live;
}

std::vector<std::string> ServiceSupervisor::task_ids() const {
  std::vector<std::string> ids;
  ids.reserve(tasks_.size());
  for (const TaskEntry& task : tasks_) ids.push_back(task.id);
  return ids;
}

const TuningService* ServiceSupervisor::shard(int i) const {
  if (i < 0 || i >= num_shards()) return nullptr;
  return shards_[static_cast<size_t>(i)].service.get();
}

const OnlineTuner* ServiceSupervisor::tuner(const std::string& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  const TaskEntry& task = tasks_[it->second];
  if (task.shard < 0 || !shard_alive(task.shard)) return nullptr;
  return shards_[static_cast<size_t>(task.shard)].service->tuner(id);
}

long long ServiceSupervisor::periods(const std::string& id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : tasks_[it->second].periods;
}

}  // namespace sparktune
