// MetaSampleWindow: fixed-capacity chronological window of meta-feature
// samples in one contiguous arena. The naive representation — a
// vector<vector<double>> ring with erase-front eviction — costs one heap
// allocation per retained sample per task plus an O(window) shift per
// execution; at fleet scale (10^5-10^6 tasks x 8 samples x 75 features)
// that is millions of small allocations. Here each task owns exactly one
// flat buffer of capacity x dim doubles reused as a circular window.
//
// Average() is bit-identical to AverageMetaFeatures() over the equivalent
// vector-of-vectors window: samples are summed oldest-first in the same
// order the erase-front ring kept them, so the checkpoint/restore path and
// the fleet-diet path produce the same meta vector to the last bit.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace sparktune {

class MetaSampleWindow {
 public:
  explicit MetaSampleWindow(size_t capacity = 8) : capacity_(capacity) {
    assert(capacity_ > 0);
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t dim() const { return dim_; }
  size_t capacity() const { return capacity_; }

  // Appends a sample, evicting the oldest once the window is full. All
  // samples must share one dimensionality (meta-feature vectors do).
  void Push(const std::vector<double>& sample) {
    if (dim_ == 0) {
      dim_ = sample.size();
      data_.reserve(capacity_ * dim_);
    }
    assert(sample.size() == dim_);
    if (count_ < capacity_) {
      data_.insert(data_.end(), sample.begin(), sample.end());
      ++count_;
    } else {
      double* slot = &data_[start_ * dim_];
      for (size_t i = 0; i < dim_; ++i) slot[i] = sample[i];
      start_ = (start_ + 1) % capacity_;
    }
  }

  // Chronological (oldest-first) element-wise mean.
  std::vector<double> Average() const {
    assert(count_ > 0);
    std::vector<double> avg(dim_, 0.0);
    for (size_t k = 0; k < count_; ++k) {
      const double* row = &data_[((start_ + k) % capacity_) * dim_];
      for (size_t i = 0; i < dim_; ++i) avg[i] += row[i];
    }
    for (auto& x : avg) x /= static_cast<double>(count_);
    return avg;
  }

  // Codec boundary: the checkpoint JSON schema keeps the historical
  // vector-of-vectors shape, so old checkpoints restore into the new
  // layout and new checkpoints stay readable by the old reader.
  std::vector<std::vector<double>> ToRows() const {
    std::vector<std::vector<double>> rows;
    rows.reserve(count_);
    for (size_t k = 0; k < count_; ++k) {
      const double* row = &data_[((start_ + k) % capacity_) * dim_];
      rows.emplace_back(row, row + dim_);
    }
    return rows;
  }

  void FromRows(const std::vector<std::vector<double>>& rows) {
    Clear();
    for (const auto& r : rows) Push(r);
  }

  void Clear() {
    data_.clear();
    dim_ = 0;
    count_ = 0;
    start_ = 0;
  }

  size_t HeapBytes() const { return data_.capacity() * sizeof(double); }

 private:
  size_t capacity_;
  size_t dim_ = 0;
  size_t count_ = 0;
  size_t start_ = 0;  // index of the oldest sample once the window is full
  std::vector<double> data_;
};

}  // namespace sparktune
