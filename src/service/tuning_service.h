// TuningService: the independent cloud service of §6.2. It multiplexes
// OnlineTuners across registered periodic tasks, wires the meta-knowledge
// learner into new tasks (warm start, ensemble surrogate, importance
// transfer — once the task's first event log yields meta-features), and
// harvests finished tuning histories into the knowledge base / data
// repository.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/backoff.h"
#include "meta/knowledge_base.h"
#include "service/data_repository.h"
#include "service/meta_sample_window.h"
#include "tuner/online_tuner.h"

namespace sparktune {

struct TuningServiceOptions {
  TunerOptions tuner;  // per-task defaults (objective, budget, safety...)
  KnowledgeBaseOptions knowledge;
  bool enable_meta = true;
  // Transfer only kicks in once the knowledge base holds this many tasks.
  int min_tasks_for_transfer = 2;
  // Directory for persistence; empty = in-memory only.
  std::string repository_dir;
  // Checkpoint GC: generations kept per task after each write.
  CheckpointRetention checkpoint_retention;
  // Automatic checkpoint cadence (DESIGN.md §7), replacing caller-driven
  // snapshots: with a repository configured, a task re-checkpoints itself
  // every `auto_checkpoint_periods` periods (0 disables; backoff-skip
  // periods count) and, independently, whenever the tuner phase machine
  // transitions (baseline -> tuning -> applying) when
  // `checkpoint_on_phase_change` is set. Auto-checkpoints are best-effort:
  // a failed write is retried implicitly at the next due period.
  int auto_checkpoint_periods = 0;
  bool checkpoint_on_phase_change = false;
  // Threads for ExecutePeriodicAll batches: 1 = serial, 0 = global pool
  // default width, k > 1 = up to k threads. Tasks are independent (own
  // tuner + evaluator), so the batch result equals calling ExecutePeriodic
  // per id in order.
  int num_threads = 1;
  // Fleet diet: release each task's retained event log right after
  // meta-feature extraction, keeping only an EventLogSummary digest. Off
  // by default so external callers reading tuner()->last_event_log()
  // between periods keep seeing the full log. The suggestion trajectory is
  // unaffected either way (the log is consumed before compaction).
  bool compact_event_logs = false;
};

// Aggregated result of a fleet checkpoint pass (mirrors RestoreReport):
// every task is attempted; per-task failures are collected, not fatal.
struct CheckpointReport {
  int written = 0;  // tasks whose checkpoint was (re)written
  int skipped = 0;  // tasks unchanged since their last checkpoint
  int failed = 0;   // tasks whose checkpoint write failed
  std::vector<Status> errors;

  bool ok() const { return failed == 0; }
  void Merge(const CheckpointReport& other);
};

// Result of one streaming-harvest pass (HarvestDirty).
struct HarvestReport {
  int attempted = 0;  // tasks popped from the harvest queue this pass
  int harvested = 0;  // folded into the knowledge base
  int deferred = 0;   // not yet harvestable (requeued for a later pass)
  int failed = 0;     // harvest errors other than not-ready
  std::vector<Status> errors;

  bool ok() const { return failed == 0; }
  void Merge(const HarvestReport& other);
};

class TuningService {
 public:
  TuningService(const ConfigSpace* space, TuningServiceOptions options = {});

  // Register a periodic task. The evaluator must outlive the service.
  Status RegisterTask(const std::string& id, JobEvaluator* evaluator,
                      std::optional<Configuration> baseline = std::nullopt,
                      std::optional<TunerOptions> override = std::nullopt);

  // Handle one periodic execution of `id` (Steps 1-2 of Figure 1): pick a
  // configuration, run it, record the result. Meta-knowledge is attached
  // after the first execution produces meta-features.
  //
  // A per-task watchdog (common/backoff.h) wraps the call: after an infra
  // failure the task backs off (kUnavailable slots, no execution) for a
  // deterministic number of periods, and after `circuit_break_failures`
  // consecutive infra failures it is parked — executed in degraded mode
  // (incumbent/baseline config, observation marked `degraded`) until the
  // breaker closes. Infra failures never reach the advisor.
  Result<Observation> ExecutePeriodic(const std::string& id);

  // Handle one periodic execution for EVERY id concurrently (the §6.2
  // multi-tenant scheduling tick: many independent periodic tasks fire at
  // once, and suggestion latency is pure overhead on each). Results come
  // back in input order and match a sequential ExecutePeriodic loop; ids
  // that are unknown or repeated within the batch get an error slot.
  // Requires each task's evaluator to be independent of the others (or
  // thread-safe).
  std::vector<Result<Observation>> ExecutePeriodicAll(
      const std::vector<std::string>& ids);

  // Fold a task's accumulated history into the knowledge base (and the
  // repository when persistence is enabled). Idempotent per task version.
  Status HarvestTask(const std::string& id);

  // Streaming harvest for fleet scale: folds up to `max_tasks` tasks from
  // the harvest queue into the knowledge base (0 = the whole current
  // backlog). Tasks enter the queue when a period executes for them; a
  // task that is not yet harvestable (no meta-features, short history) is
  // requeued and retried on a later pass. Draining the queue is equivalent
  // to calling HarvestTask once per executed task — the knowledge base
  // ends up with the same records — without the O(fleet) scan per tick.
  HarvestReport HarvestDirty(int max_tasks = 0);
  // Tasks currently waiting in the harvest queue.
  size_t harvest_backlog() const { return harvest_queue_.size(); }
  // Tasks whose state changed since their last checkpoint.
  size_t checkpoint_backlog() const { return checkpoint_dirty_.size(); }

  // Load previously persisted tasks into the knowledge base. Also sweeps
  // orphaned checkpoint generations (files outside the retention window
  // left behind by a crash mid-GC).
  Status LoadRepository();

  // Crash-safe checkpointing (DESIGN.md §7). CheckpointTask snapshots one
  // task's full mutable state (tuner phase machine, advisor history + RNG
  // cursors, meta attachment, watchdog state, period clock) into the
  // repository via an atomic, checksummed, generation-suffixed write.
  // RestoreTask loads the newest intact generation back into the already
  // re-registered task and fast-forwards its evaluator, after which the
  // suggestion trajectory continues exactly where the checkpoint left off.
  // A torn newest generation falls back to the previous one; only a fully
  // absent or corrupt history yields kDataLoss/kNotFound and leaves the
  // task in its freshly registered state.
  Status CheckpointTask(const std::string& id);
  // Checkpoints every registered task (tasks unchanged since their last
  // checkpoint are skipped) and aggregates per-task outcomes. Internally
  // drains the dirty set — the pass visits only tasks whose period clock
  // or phase moved since their last snapshot, so an idle fleet costs O(1)
  // per changed task, not O(fleet). Reported counts match the historical
  // full-fleet iteration (skipped = unchanged tasks).
  CheckpointReport CheckpointTasks();
  Status RestoreTask(const std::string& id);

  struct RestoreReport {
    int restored = 0;      // tasks resumed from a valid checkpoint
    int fresh_starts = 0;  // checkpoint present but unusable (kept fresh)
    std::vector<Status> errors;
  };
  // Restores every registered task that has a checkpoint. Call after
  // RegisterTask (and typically after LoadRepository, so re-attached
  // meta-surrogates see the same knowledge base). Tasks whose checkpoint
  // is corrupt fall back to a fresh start and are reported, not fatal.
  RestoreReport RestoreTasks();

  // Watchdog diagnostics for a task (null if unknown).
  const RetryState* retry_state(const std::string& id) const;

  const OnlineTuner* tuner(const std::string& id) const;
  OnlineTuner* tuner(const std::string& id);
  KnowledgeBase& knowledge_base() { return knowledge_; }
  const KnowledgeBase& knowledge_base() const { return knowledge_; }
  size_t num_tasks() const { return tasks_.size(); }
  // Periods (DecidePeriod calls, incl. backoff skips) the task has
  // consumed; -1 if unknown. The supervisor replays the gap between a
  // restored checkpoint's period clock and this value after a handoff.
  long long periods(const std::string& id) const;
  // Checkpoints written by the automatic cadence (diagnostics).
  long long auto_checkpoints() const { return auto_checkpoints_; }

 private:
  struct TaskState {
    std::unique_ptr<OnlineTuner> tuner;
    JobEvaluator* evaluator = nullptr;
    MetaSampleWindow meta_samples;
    bool meta_attached = false;
    bool harvested = false;
    // History size at the last harvest; a repeat harvest with no new
    // observations is a no-op (idempotence per task version).
    size_t harvested_size = 0;
    // Watchdog: policy resolved at registration, state checkpointed.
    RetryPolicy policy;
    RetryState retry;
    // Period clock (checkpointed) + auto-checkpoint bookkeeping.
    long long periods = 0;
    long long last_checkpoint_periods = -1;  // -1 = never checkpointed
    int last_checkpoint_phase = 0;           // TunerPhase as int
  };

  void MaybeAttachMeta(TaskState* state);
  // Parallel half of post-execution bookkeeping: screen the task's last
  // event log, extract its meta-feature vector (nullopt if the log fails
  // the sanity screen) and compact the log. Touches only state owned by
  // this task, so batch workers may run it concurrently on distinct tasks.
  std::optional<std::vector<double>> ExtractExecutionMeta(TaskState* state);
  // Serial half: fold the extracted meta-features into the task's sample
  // window and attach meta-knowledge once available. Reads the shared
  // knowledge base — serial use only, in batch input order.
  void AttachExecutionMeta(TaskState* state,
                           std::optional<std::vector<double>> meta);
  // Both halves back to back, for the single-task path.
  void AbsorbExecution(TaskState* state);
  // Auto-checkpoint cadence check; runs serially at the end of a period.
  void MaybeAutoCheckpoint(const std::string& id, TaskState* state);
  // Marks a task dirty for the incremental checkpoint/harvest passes.
  void MarkCheckpointDirty(const std::string& id);
  void EnqueueHarvest(const std::string& id);

  const ConfigSpace* space_;
  TuningServiceOptions options_;
  std::map<std::string, TaskState> tasks_;
  KnowledgeBase knowledge_;
  std::unique_ptr<DataRepository> repository_;
  long long auto_checkpoints_ = 0;
  // Incremental-pass state (fleet diet): tasks whose mutable state moved
  // since their last checkpoint (sorted, so drains follow map order), and
  // the rotating queue of tasks with unharvested executions.
  std::set<std::string> checkpoint_dirty_;
  std::deque<std::string> harvest_queue_;
  // Queue dedup, membership-only (insert/erase/count) — deliberately not
  // blessed for iteration: ordering comes from harvest_queue_, and any
  // future walk of this set trips unordered-member-iter (phase-1 indexed).
  std::unordered_set<std::string> harvest_enqueued_;
};

}  // namespace sparktune
