// TuningService: the independent cloud service of §6.2. It multiplexes
// OnlineTuners across registered periodic tasks, wires the meta-knowledge
// learner into new tasks (warm start, ensemble surrogate, importance
// transfer — once the task's first event log yields meta-features), and
// harvests finished tuning histories into the knowledge base / data
// repository.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "meta/knowledge_base.h"
#include "service/data_repository.h"
#include "tuner/online_tuner.h"

namespace sparktune {

struct TuningServiceOptions {
  TunerOptions tuner;  // per-task defaults (objective, budget, safety...)
  KnowledgeBaseOptions knowledge;
  bool enable_meta = true;
  // Transfer only kicks in once the knowledge base holds this many tasks.
  int min_tasks_for_transfer = 2;
  // Directory for persistence; empty = in-memory only.
  std::string repository_dir;
  // Threads for ExecutePeriodicAll batches: 1 = serial, 0 = global pool
  // default width, k > 1 = up to k threads. Tasks are independent (own
  // tuner + evaluator), so the batch result equals calling ExecutePeriodic
  // per id in order.
  int num_threads = 1;
};

class TuningService {
 public:
  TuningService(const ConfigSpace* space, TuningServiceOptions options = {});

  // Register a periodic task. The evaluator must outlive the service.
  Status RegisterTask(const std::string& id, JobEvaluator* evaluator,
                      std::optional<Configuration> baseline = std::nullopt,
                      std::optional<TunerOptions> override = std::nullopt);

  // Handle one periodic execution of `id` (Steps 1-2 of Figure 1): pick a
  // configuration, run it, record the result. Meta-knowledge is attached
  // after the first execution produces meta-features.
  //
  // A per-task watchdog (common/backoff.h) wraps the call: after an infra
  // failure the task backs off (kUnavailable slots, no execution) for a
  // deterministic number of periods, and after `circuit_break_failures`
  // consecutive infra failures it is parked — executed in degraded mode
  // (incumbent/baseline config, observation marked `degraded`) until the
  // breaker closes. Infra failures never reach the advisor.
  Result<Observation> ExecutePeriodic(const std::string& id);

  // Handle one periodic execution for EVERY id concurrently (the §6.2
  // multi-tenant scheduling tick: many independent periodic tasks fire at
  // once, and suggestion latency is pure overhead on each). Results come
  // back in input order and match a sequential ExecutePeriodic loop; ids
  // that are unknown or repeated within the batch get an error slot.
  // Requires each task's evaluator to be independent of the others (or
  // thread-safe).
  std::vector<Result<Observation>> ExecutePeriodicAll(
      const std::vector<std::string>& ids);

  // Fold a task's accumulated history into the knowledge base (and the
  // repository when persistence is enabled). Idempotent per task version.
  Status HarvestTask(const std::string& id);

  // Load previously persisted tasks into the knowledge base.
  Status LoadRepository();

  // Crash-safe checkpointing (DESIGN.md §7). CheckpointTask snapshots one
  // task's full mutable state (tuner phase machine, advisor history + RNG
  // cursors, meta attachment, watchdog state) into the repository via an
  // atomic, checksummed write. RestoreTask loads it back into the already
  // re-registered task and fast-forwards its evaluator, after which the
  // suggestion trajectory continues exactly where the checkpoint left off.
  // A torn or corrupted checkpoint yields kDataLoss and leaves the task in
  // its freshly registered state.
  Status CheckpointTask(const std::string& id);
  // Checkpoints every registered task; returns the first error (but still
  // attempts the rest).
  Status CheckpointTasks();
  Status RestoreTask(const std::string& id);

  struct RestoreReport {
    int restored = 0;      // tasks resumed from a valid checkpoint
    int fresh_starts = 0;  // checkpoint present but unusable (kept fresh)
    std::vector<Status> errors;
  };
  // Restores every registered task that has a checkpoint. Call after
  // RegisterTask (and typically after LoadRepository, so re-attached
  // meta-surrogates see the same knowledge base). Tasks whose checkpoint
  // is corrupt fall back to a fresh start and are reported, not fatal.
  RestoreReport RestoreTasks();

  // Watchdog diagnostics for a task (null if unknown).
  const RetryState* retry_state(const std::string& id) const;

  const OnlineTuner* tuner(const std::string& id) const;
  OnlineTuner* tuner(const std::string& id);
  KnowledgeBase& knowledge_base() { return knowledge_; }
  const KnowledgeBase& knowledge_base() const { return knowledge_; }
  size_t num_tasks() const { return tasks_.size(); }

 private:
  struct TaskState {
    std::unique_ptr<OnlineTuner> tuner;
    JobEvaluator* evaluator = nullptr;
    std::vector<std::vector<double>> meta_samples;
    bool meta_attached = false;
    bool harvested = false;
    // History size at the last harvest; a repeat harvest with no new
    // observations is a no-op (idempotence per task version).
    size_t harvested_size = 0;
    // Watchdog: policy resolved at registration, state checkpointed.
    RetryPolicy policy;
    RetryState retry;
  };

  void MaybeAttachMeta(TaskState* state);
  // Post-execution bookkeeping shared by the single and batch paths:
  // harvest meta-features from the last event log, then attach
  // meta-knowledge once available. Mutates shared state — serial use only.
  void AbsorbExecution(TaskState* state);

  const ConfigSpace* space_;
  TuningServiceOptions options_;
  std::map<std::string, TaskState> tasks_;
  KnowledgeBase knowledge_;
  std::unique_ptr<DataRepository> repository_;
};

}  // namespace sparktune
