// Rendezvous (highest-random-weight) task placement, shared by the
// in-process ServiceSupervisor and the multi-process ProcessSupervisor so
// both planes place any given task identically (DESIGN.md §7, §9).
//
// Hashing is self-contained (FNV-1a + splitmix64 finalizer): shard
// assignment must be identical across platforms and standard libraries,
// and std::hash makes no such promise.
#pragma once

#include <cstdint>
#include <string>

namespace sparktune::placement {

inline uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The task's score for shard `s`; the winner is the eligible shard with
// the highest score. Each task ranks every shard independently, so
// removing one shard from the eligible set moves only that shard's tasks.
inline uint64_t RendezvousScore(uint64_t task_hash, int s) {
  return Mix64(task_hash ^ Mix64(static_cast<uint64_t>(s) + 1));
}

// Winner among shards [0, n) for which eligible(s) is true; -1 if none.
template <typename EligibleFn>
int Rendezvous(const std::string& id, int n, EligibleFn eligible) {
  const uint64_t task_hash = Fnv1a(id);
  int best = -1;
  uint64_t best_score = 0;
  for (int s = 0; s < n; ++s) {
    if (!eligible(s)) continue;
    const uint64_t score = RendezvousScore(task_hash, s);
    if (best < 0 || score > best_score) {
      best = s;
      best_score = score;
    }
  }
  return best;
}

}  // namespace sparktune::placement
