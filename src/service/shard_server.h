// ShardServer: the worker half of the multi-process tuning service
// (DESIGN.md §9). One sparktune_shardd process hosts one ShardServer: a
// lazily-configured TuningService plus the evaluators it owns, driven
// entirely by framed requests from the ProcessSupervisor control plane.
//
// The dispatcher is socket-free (Handle consumes decoded JSON bodies and
// returns envelope documents) so tests can exercise every handler without
// a process boundary; ServeShard adds the accept/read/dispatch/write loop
// over a Unix-domain listener.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "net/chaos.h"
#include "net/frame.h"
#include "service/tuning_service.h"
#include "service/wire.h"
#include "space/config_space.h"

namespace sparktune {

class ShardServer {
 public:
  ShardServer() = default;
  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  // Dispatch one request; always returns a response envelope
  // ({"ok":true,...} or {"ok":false,"code":...,"message":...}).
  Json Handle(net::MsgKind kind, const Json& body);

  // Set once a kShutdown request has been acknowledged; the serve loop
  // exits after writing that response.
  bool shutdown_requested() const { return shutdown_; }
  bool configured() const { return service_ != nullptr; }
  const TuningService* service() const { return service_.get(); }
  // Fencing epoch this worker was configured at (0 = unfenced legacy).
  long long epoch() const { return epoch_; }

 private:
  // Handlers return the extra response fields; Handle wraps Status errors
  // into error envelopes.
  Result<Json> Dispatch(net::MsgKind kind, const Json& body);
  Result<Json> HandlePing();
  Result<Json> HandleConfigure(const Json& body);
  Result<Json> HandleRegisterTask(const Json& body);
  Result<Json> HandleSubmitObservation(const Json& body);
  Result<Json> HandleFetchSuggestion(const Json& body);
  Result<Json> HandleExecute(const Json& body);
  Result<Json> HandleHarvest(const Json& body);
  Result<Json> HandleCheckpoint();
  Result<Json> HandleRestore(const Json& body);
  Result<Json> HandleLoadRepository();
  Result<Json> HandleTaskStatus();

  Status RequireConfigured() const;

  bool shutdown_ = false;
  // Epoch fencing (DESIGN.md §9): the shard's fencing token, set by
  // kConfigure and carried by every kExecute. A request from an older
  // epoch — or an execute against a worker that missed a re-fence — is
  // typed kFailedPrecondition so a zombie incarnation can never
  // split-brain the fleet. 0 means "never fenced" (legacy callers that
  // omit the token are accepted unchanged).
  long long epoch_ = 0;
  // Configuration is idempotent: the canonical bytes of the accepted
  // config reject a later conflicting kConfigure.
  std::string config_bytes_;
  ServiceConfig config_;
  ClusterSpec cluster_;
  ConfigSpace space_;
  std::unique_ptr<TuningService> service_;
  // Evaluators rebuilt from wire specs; owned here because TuningService
  // borrows them. Kept for the process lifetime (tasks never unregister).
  std::map<std::string, std::unique_ptr<JobEvaluator>> evaluators_;
  std::map<std::string, SimTaskSpec> specs_;
};

// Serve loop: listen on `socket_path`, accept one connection at a time
// (the control plane is the only client), dispatch frames until the peer
// disconnects (re-accept) or a kShutdown request is acknowledged (return).
// Malformed frames (kDataLoss / kInvalidArgument from the codec) close the
// connection — the byte stream is unsynchronized — without killing the
// worker. `write_deadline_ms` bounds each response write. A non-null
// `chaos` channel injects deterministic wire faults into response writes
// (net/chaos.h); a faulted write drops the connection like any other
// write failure, so damage never leaves a desynchronized stream behind.
Status ServeShard(const std::string& socket_path, ShardServer* server,
                  int write_deadline_ms = 20000,
                  net::ChaosChannel* chaos = nullptr);

}  // namespace sparktune
