#include "service/supervisor_manifest.h"

#include "common/strings.h"
#include "service/data_repository.h"

namespace sparktune {
namespace {

constexpr char kSupervisorManifestMagic[] = "SPARKTUNE-SUPV1";
constexpr int kManifestVersion = 1;

}  // namespace

Json SupervisorManifestToJson(const SupervisorManifest& manifest) {
  Json doc = Json::Object();
  doc.Set("version", Json::Number(kManifestVersion));
  doc.Set("num_shards",
          Json::Number(static_cast<double>(manifest.num_shards)));
  doc.Set("service", ServiceConfigToJson(manifest.service));
  Json jshards = Json::Array();
  for (const ShardManifestEntry& s : manifest.shards) {
    Json e = Json::Object();
    e.Set("epoch", Json::Number(static_cast<double>(s.epoch)));
    e.Set("pid", Json::Number(static_cast<double>(s.pid)));
    jshards.Append(std::move(e));
  }
  doc.Set("shards", std::move(jshards));
  Json jtasks = Json::Array();
  for (const TaskManifestEntry& t : manifest.tasks) {
    Json e = Json::Object();
    e.Set("id", Json::Str(t.id));
    e.Set("shard", Json::Number(static_cast<double>(t.shard)));
    e.Set("periods", Json::Number(static_cast<double>(t.periods)));
    e.Set("spec", SimTaskSpecToJson(t.spec));
    jtasks.Append(std::move(e));
  }
  doc.Set("tasks", std::move(jtasks));
  return doc;
}

Result<SupervisorManifest> SupervisorManifestFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::DataLoss("supervisor manifest is not a JSON object");
  }
  const int version = static_cast<int>(j.GetNumberOr("version", 0));
  if (version != kManifestVersion) {
    return Status::DataLoss(StrFormat(
        "unsupported supervisor manifest version %d", version));
  }
  SupervisorManifest manifest;
  manifest.num_shards = static_cast<int>(j.GetNumberOr("num_shards", 0));
  if (manifest.num_shards < 1) {
    return Status::DataLoss("supervisor manifest has no shards");
  }
  const Json* service = j.Get("service");
  if (service == nullptr) {
    return Status::DataLoss("supervisor manifest has no service config");
  }
  SPARKTUNE_ASSIGN_OR_RETURN(config, ServiceConfigFromJson(*service));
  manifest.service = config;
  const Json* jshards = j.Get("shards");
  if (jshards == nullptr || !jshards->is_array() ||
      jshards->size() != static_cast<size_t>(manifest.num_shards)) {
    return Status::DataLoss("supervisor manifest shard table is malformed");
  }
  for (const Json& e : jshards->elements()) {
    ShardManifestEntry s;
    s.epoch = static_cast<long long>(e.GetNumberOr("epoch", 1));
    s.pid = static_cast<long long>(e.GetNumberOr("pid", -1));
    if (s.epoch < 1) {
      return Status::DataLoss("supervisor manifest epoch below 1");
    }
    manifest.shards.push_back(s);
  }
  if (const Json* jtasks = j.Get("tasks");
      jtasks != nullptr && jtasks->is_array()) {
    for (const Json& e : jtasks->elements()) {
      TaskManifestEntry t;
      t.id = e.GetStringOr("id", "");
      t.shard = static_cast<int>(e.GetNumberOr("shard", -1));
      t.periods = static_cast<long long>(e.GetNumberOr("periods", 0));
      if (t.id.empty() || t.shard < 0 || t.shard >= manifest.num_shards ||
          t.periods < 0) {
        return Status::DataLoss("supervisor manifest task entry malformed");
      }
      const Json* spec = e.Get("spec");
      if (spec == nullptr) {
        return Status::DataLoss("supervisor manifest task has no spec");
      }
      SPARKTUNE_ASSIGN_OR_RETURN(decoded, SimTaskSpecFromJson(*spec));
      t.spec = decoded;
      manifest.tasks.push_back(std::move(t));
    }
  }
  return manifest;
}

Status SaveSupervisorManifest(const std::string& path,
                              const SupervisorManifest& manifest) {
  return WriteFramedAtomic(path, kSupervisorManifestMagic,
                           SupervisorManifestToJson(manifest).Dump());
}

Result<SupervisorManifest> LoadSupervisorManifest(const std::string& path) {
  SPARKTUNE_ASSIGN_OR_RETURN(
      body, ReadFramedFile(path, kSupervisorManifestMagic,
                           "supervisor manifest"));
  auto doc = Json::Parse(body);
  if (!doc.ok()) {
    return Status::DataLoss("supervisor manifest does not parse: " +
                            doc.status().message());
  }
  return SupervisorManifestFromJson(*doc);
}

}  // namespace sparktune
