#include "service/tuning_service.h"

#include <cassert>
#include <optional>
#include <unordered_set>

#include "common/thread_pool.h"
#include "service/checkpoint.h"
#include "sparksim/event_log.h"

namespace sparktune {

void CheckpointReport::Merge(const CheckpointReport& other) {
  written += other.written;
  skipped += other.skipped;
  failed += other.failed;
  errors.insert(errors.end(), other.errors.begin(), other.errors.end());
}

void HarvestReport::Merge(const HarvestReport& other) {
  attempted += other.attempted;
  harvested += other.harvested;
  deferred += other.deferred;
  failed += other.failed;
  errors.insert(errors.end(), other.errors.begin(), other.errors.end());
}

TuningService::TuningService(const ConfigSpace* space,
                             TuningServiceOptions options)
    : space_(space),
      options_(std::move(options)),
      knowledge_(space, options_.knowledge) {
  assert(space_ != nullptr);
  if (!options_.repository_dir.empty()) {
    repository_ = std::make_unique<DataRepository>(
        options_.repository_dir, options_.checkpoint_retention);
  }
}

Status TuningService::RegisterTask(const std::string& id,
                                   JobEvaluator* evaluator,
                                   std::optional<Configuration> baseline,
                                   std::optional<TunerOptions> override) {
  if (tasks_.count(id) > 0) {
    return Status::InvalidArgument("task already registered: " + id);
  }
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator is null for task: " + id);
  }
  TaskState state;
  state.evaluator = evaluator;
  TunerOptions resolved = override.value_or(options_.tuner);
  state.policy = resolved.retry;
  state.tuner = std::make_unique<OnlineTuner>(space_, evaluator,
                                              std::move(resolved),
                                              std::move(baseline));
  state.last_checkpoint_phase = static_cast<int>(state.tuner->phase());
  tasks_.emplace(id, std::move(state));
  // A fresh task has never been snapshotted: the next checkpoint pass must
  // visit it (matches the historical full-fleet iteration).
  MarkCheckpointDirty(id);
  return Status::OK();
}

void TuningService::MarkCheckpointDirty(const std::string& id) {
  checkpoint_dirty_.insert(id);
}

void TuningService::EnqueueHarvest(const std::string& id) {
  if (harvest_enqueued_.insert(id).second) harvest_queue_.push_back(id);
}

void TuningService::MaybeAttachMeta(TaskState* state) {
  if (state->meta_attached || !options_.enable_meta) return;
  if (state->meta_samples.empty()) return;
  if (knowledge_.size() <
      static_cast<size_t>(options_.min_tasks_for_transfer)) {
    return;
  }
  std::vector<double> meta = state->meta_samples.Average();
  // Warm-start configurations from the top-3 most similar tasks (§5.2).
  std::vector<Configuration> warm = knowledge_.WarmStartConfigs(meta);
  if (!warm.empty()) state->tuner->SetWarmStartConfigs(std::move(warm));
  // Ensemble surrogate carrying meta-knowledge (Eq. 12).
  state->tuner->SetObjectiveSurrogateFactory(
      knowledge_.MakeMetaSurrogateFactory(meta));
  // Sub-space suggestion by importance transfer (§5.2).
  std::vector<double> importance = knowledge_.SuggestImportance(meta);
  if (!importance.empty()) {
    state->tuner->SeedImportance(std::move(importance), 2.0);
  }
  state->meta_attached = true;
}

std::optional<std::vector<double>> TuningService::ExtractExecutionMeta(
    TaskState* state) {
  // Corrupted or truncated event logs (fault injection, dying agents) must
  // not poison the meta-feature averages; quarantine anything that fails
  // the sanity screen.
  std::optional<std::vector<double>> meta;
  if (EventLogLooksSane(state->tuner->last_event_log())) {
    meta = ExtractMetaFeatures(state->tuner->last_event_log());
  }
  if (options_.compact_event_logs) state->tuner->CompactLastEventLog();
  return meta;
}

void TuningService::AttachExecutionMeta(TaskState* state,
                                        std::optional<std::vector<double>> meta) {
  if (meta.has_value()) state->meta_samples.Push(std::move(*meta));
  // Attach meta-knowledge as soon as the first meta-features exist; the
  // advisor consumes warm-start configs during its initial design.
  MaybeAttachMeta(state);
}

void TuningService::AbsorbExecution(TaskState* state) {
  AttachExecutionMeta(state, ExtractExecutionMeta(state));
}

void TuningService::MaybeAutoCheckpoint(const std::string& id,
                                        TaskState* state) {
  if (repository_ == nullptr) return;
  bool due = false;
  if (options_.auto_checkpoint_periods > 0) {
    long long since =
        state->periods -
        (state->last_checkpoint_periods < 0 ? 0
                                            : state->last_checkpoint_periods);
    due = since >= options_.auto_checkpoint_periods;
  }
  if (!due && options_.checkpoint_on_phase_change &&
      static_cast<int>(state->tuner->phase()) !=
          state->last_checkpoint_phase) {
    due = true;
  }
  if (!due) return;
  // Best effort: a failed write stays due and is retried next period.
  if (CheckpointTask(id).ok()) ++auto_checkpoints_;
}

Result<Observation> TuningService::ExecutePeriodic(const std::string& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("unknown task: " + id);
  }
  TaskState& state = it->second;
  ++state.periods;
  MarkCheckpointDirty(id);
  switch (DecidePeriod(state.policy, &state.retry)) {
    case PeriodDecision::kSkipBackoff:
      // The period clock and backoff window advanced: checkpointable state.
      MaybeAutoCheckpoint(id, &state);
      return Status::Unavailable("task backing off after infra failure: " +
                                 id);
    case PeriodDecision::kRunDegraded: {
      Observation obs = state.tuner->StepDegraded();
      AbsorbExecution(&state);
      EnqueueHarvest(id);
      MaybeAutoCheckpoint(id, &state);
      return obs;
    }
    case PeriodDecision::kRun:
      break;
  }
  Observation obs = state.tuner->Step();
  RecordPeriodOutcome(state.policy, &state.retry, obs.failure);
  AbsorbExecution(&state);
  EnqueueHarvest(id);
  MaybeAutoCheckpoint(id, &state);
  return obs;
}

std::vector<Result<Observation>> TuningService::ExecutePeriodicAll(
    const std::vector<std::string>& ids) {
  // Resolve ids and run the watchdog serially; a task may appear at most
  // once per batch (two concurrent Step() calls on one tuner would race),
  // and DecidePeriod mutates per-task clocks. The decisions are made in
  // input order, so the schedule matches a sequential ExecutePeriodic loop
  // at any thread count.
  constexpr PeriodDecision kErrorSlot = PeriodDecision::kSkipBackoff;
  std::vector<TaskState*> states(ids.size(), nullptr);
  std::vector<TaskState*> decided(ids.size(), nullptr);
  std::vector<Status> errors(ids.size(), Status::OK());
  std::vector<PeriodDecision> decisions(ids.size(), kErrorSlot);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto it = tasks_.find(ids[i]);
    if (it == tasks_.end()) {
      errors[i] = Status::NotFound("unknown task: " + ids[i]);
    } else if (!seen.insert(ids[i]).second) {
      errors[i] = Status::InvalidArgument("task repeated in batch: " + ids[i]);
    } else {
      decided[i] = &it->second;
      ++it->second.periods;
      MarkCheckpointDirty(ids[i]);
      decisions[i] = DecidePeriod(it->second.policy, &it->second.retry);
      if (decisions[i] == PeriodDecision::kSkipBackoff) {
        errors[i] = Status::Unavailable(
            "task backing off after infra failure: " + ids[i]);
      } else {
        states[i] = &it->second;
      }
    }
  }

  // Run the suggest/evaluate cycles concurrently: each task touches only
  // its own tuner and evaluator, and the shared knowledge base is read
  // nowhere in Step(). Meta-feature extraction (the event-log sanity
  // screen, the 75-dim feature walk and log compaction) also reads and
  // writes only task-owned state, so it rides in the same parallel
  // section instead of serializing a full log scan per task.
  std::vector<std::optional<Observation>> stepped(ids.size());
  std::vector<std::optional<std::vector<double>>> metas(ids.size());
  ParallelFor(options_.num_threads, ids.size(), [&](size_t i) {
    if (states[i] == nullptr) return;
    stepped[i] = decisions[i] == PeriodDecision::kRunDegraded
                     ? states[i]->tuner->StepDegraded()
                     : states[i]->tuner->Step();
    metas[i] = ExtractExecutionMeta(states[i]);
  });

  // Serial postlude in input order: watchdog outcome recording,
  // meta-feature attachment, knowledge attachment, and the auto-checkpoint
  // cadence mutate per-task and shared state.
  std::vector<Result<Observation>> results;
  results.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (states[i] == nullptr) {
      if (decided[i] != nullptr) {
        // Backoff-skip slot: the period still elapsed for the task.
        MaybeAutoCheckpoint(ids[i], decided[i]);
      }
      results.push_back(errors[i]);
      continue;
    }
    if (decisions[i] == PeriodDecision::kRun) {
      RecordPeriodOutcome(states[i]->policy, &states[i]->retry,
                          stepped[i]->failure);
    }
    AttachExecutionMeta(states[i], std::move(metas[i]));
    EnqueueHarvest(ids[i]);
    MaybeAutoCheckpoint(ids[i], states[i]);
    results.push_back(std::move(*stepped[i]));
  }
  return results;
}

Status TuningService::HarvestTask(const std::string& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("unknown task: " + id);
  }
  TaskState& state = it->second;
  if (state.meta_samples.empty()) {
    return Status::FailedPrecondition("task has no meta-features yet: " + id);
  }
  const RunHistory& history = state.tuner->history();
  if (history.size() < 3) {
    return Status::FailedPrecondition("task history too small: " + id);
  }
  if (state.harvested && history.size() == state.harvested_size) {
    // Same task version already folded in; re-harvesting would duplicate
    // its knowledge-base record.
    return Status::OK();
  }
  std::vector<double> meta = state.meta_samples.Average();
  std::vector<double> importance;
  if (const Advisor* advisor = state.tuner->advisor()) {
    importance = advisor->subspace_manager().importance();
  }
  SPARKTUNE_RETURN_IF_ERROR(
      knowledge_.AddTask(id, meta, history, importance));
  state.harvested = true;
  state.harvested_size = history.size();

  if (repository_ != nullptr) {
    StoredTask stored;
    stored.id = id;
    stored.meta_features = std::move(meta);
    stored.importance = std::move(importance);
    stored.history = history;
    SPARKTUNE_RETURN_IF_ERROR(repository_->SaveTask(stored, *space_));
  }

  // Refresh the similarity learner on a doubling schedule: training is
  // quadratic in the number of tasks, so fleet-scale harvesting retrains at
  // sizes 2, 4, 8, ... (the z-scored meta-feature fallback covers the gap).
  size_t n = knowledge_.size();
  if (n >= 2 && (n & (n - 1)) == 0) {
    Status s = knowledge_.TrainSimilarityModel();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

HarvestReport TuningService::HarvestDirty(int max_tasks) {
  HarvestReport report;
  // Snapshot the backlog size: deferred tasks re-enter at the tail and
  // must not be retried within the same pass (a not-ready task stays
  // not-ready until another period executes).
  size_t budget = harvest_queue_.size();
  if (max_tasks > 0) budget = std::min(budget, static_cast<size_t>(max_tasks));
  for (size_t n = 0; n < budget; ++n) {
    std::string id = std::move(harvest_queue_.front());
    harvest_queue_.pop_front();
    harvest_enqueued_.erase(id);
    ++report.attempted;
    Status s = HarvestTask(id);
    if (s.ok()) {
      ++report.harvested;
    } else if (s.code() == Status::Code::kFailedPrecondition) {
      // Not harvestable yet (no meta-features / short history): rotate to
      // the back and retry after the task has executed again.
      ++report.deferred;
      EnqueueHarvest(id);
    } else {
      ++report.failed;
      report.errors.push_back(std::move(s));
    }
  }
  return report;
}

Status TuningService::LoadRepository() {
  if (repository_ == nullptr) {
    return Status::FailedPrecondition("no repository configured");
  }
  // Startup is the natural GC point for generations a crash orphaned
  // (written but never referenced, or referenced but never deleted).
  repository_->SweepOrphanCheckpoints();
  for (const std::string& id : repository_->ListTaskIds()) {
    SPARKTUNE_ASSIGN_OR_RETURN(stored, repository_->LoadTask(id, *space_));
    Status s = knowledge_.AddTask(stored.id, stored.meta_features,
                                  stored.history, stored.importance);
    if (!s.ok() && s.code() != Status::Code::kFailedPrecondition) return s;
  }
  if (knowledge_.size() >= 2) {
    return knowledge_.TrainSimilarityModel();
  }
  return Status::OK();
}

Status TuningService::CheckpointTask(const std::string& id) {
  if (repository_ == nullptr) {
    return Status::FailedPrecondition("no repository configured");
  }
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("unknown task: " + id);
  }
  TaskState& state = it->second;
  TaskCheckpoint ckpt;
  ckpt.id = id;
  ckpt.tuner = state.tuner->SaveState();
  ckpt.meta_samples = state.meta_samples.ToRows();
  ckpt.meta_attached = state.meta_attached;
  ckpt.harvested = state.harvested;
  ckpt.harvested_size = state.harvested_size;
  ckpt.retry = state.retry;
  ckpt.periods = state.periods;
  SPARKTUNE_RETURN_IF_ERROR(
      repository_->SaveCheckpoint(id, TaskCheckpointToJson(ckpt)));
  state.last_checkpoint_periods = state.periods;
  state.last_checkpoint_phase = static_cast<int>(state.tuner->phase());
  checkpoint_dirty_.erase(id);
  return Status::OK();
}

CheckpointReport TuningService::CheckpointTasks() {
  CheckpointReport report;
  // Visit only the dirty set (sorted, so outcomes follow the same map
  // order as the historical full-fleet pass). Tasks untouched since their
  // last snapshot never enter it and are counted as skipped wholesale.
  std::vector<std::string> dirty(checkpoint_dirty_.begin(),
                                 checkpoint_dirty_.end());
  for (const std::string& id : dirty) {
    auto it = tasks_.find(id);
    if (it == tasks_.end()) {
      checkpoint_dirty_.erase(id);  // task vanished; nothing to snapshot
      continue;
    }
    const TaskState& state = it->second;
    if (state.last_checkpoint_periods == state.periods &&
        static_cast<int>(state.tuner->phase()) ==
            state.last_checkpoint_phase) {
      // An auto-checkpoint already caught this change; rewriting it would
      // only churn a generation.
      checkpoint_dirty_.erase(id);
      continue;
    }
    Status s = CheckpointTask(id);  // erases from the dirty set on success
    if (s.ok()) {
      ++report.written;
    } else {
      ++report.failed;  // stays dirty: the next pass retries it
      report.errors.push_back(std::move(s));
    }
  }
  report.skipped =
      static_cast<int>(tasks_.size()) - report.written - report.failed;
  return report;
}

Status TuningService::RestoreTask(const std::string& id) {
  if (repository_ == nullptr) {
    return Status::FailedPrecondition("no repository configured");
  }
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("unknown task: " + id);
  }
  SPARKTUNE_ASSIGN_OR_RETURN(doc, repository_->LoadCheckpoint(id));
  SPARKTUNE_ASSIGN_OR_RETURN(ckpt, TaskCheckpointFromJson(doc, *space_));

  TaskState& state = it->second;
  state.tuner->RestoreState(ckpt.tuner);
  // The evaluator was rebuilt by the restarted process at execution 0;
  // fast-forward it so derived per-run streams (data-size schedule, fault
  // schedule) continue from where the checkpointed process stopped.
  state.evaluator->SkipExecutions(ckpt.tuner.executions);
  state.meta_samples.FromRows(ckpt.meta_samples);
  state.meta_attached = ckpt.meta_attached;
  state.harvested = ckpt.harvested;
  state.harvested_size = static_cast<size_t>(ckpt.harvested_size);
  state.retry = ckpt.retry;
  state.periods = ckpt.periods;
  state.last_checkpoint_periods = ckpt.periods;
  state.last_checkpoint_phase = static_cast<int>(state.tuner->phase());
  checkpoint_dirty_.erase(id);
  if (state.meta_attached && options_.enable_meta &&
      !state.meta_samples.empty()) {
    // Only the ensemble surrogate factory needs re-creating (closures do
    // not serialize); warm-start configs and seeded importance already
    // travel inside the advisor snapshot.
    state.tuner->SetObjectiveSurrogateFactory(
        knowledge_.MakeMetaSurrogateFactory(state.meta_samples.Average()));
  }
  return Status::OK();
}

TuningService::RestoreReport TuningService::RestoreTasks() {
  RestoreReport report;
  if (repository_ == nullptr) {
    report.errors.push_back(
        Status::FailedPrecondition("no repository configured"));
    return report;
  }
  for (const auto& [id, state] : tasks_) {
    (void)state;
    if (!repository_->HasCheckpoint(id)) continue;
    Status s = RestoreTask(id);
    if (s.ok()) {
      ++report.restored;
    } else {
      ++report.fresh_starts;
      report.errors.push_back(std::move(s));
    }
  }
  return report;
}

const RetryState* TuningService::retry_state(const std::string& id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second.retry;
}

const OnlineTuner* TuningService::tuner(const std::string& id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.tuner.get();
}

OnlineTuner* TuningService::tuner(const std::string& id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.tuner.get();
}

long long TuningService::periods(const std::string& id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? -1 : it->second.periods;
}

}  // namespace sparktune
