#include "service/tuning_service.h"

#include <cassert>
#include <optional>
#include <unordered_set>

#include "common/thread_pool.h"

namespace sparktune {

TuningService::TuningService(const ConfigSpace* space,
                             TuningServiceOptions options)
    : space_(space),
      options_(std::move(options)),
      knowledge_(space, options_.knowledge) {
  assert(space_ != nullptr);
  if (!options_.repository_dir.empty()) {
    repository_ = std::make_unique<DataRepository>(options_.repository_dir);
  }
}

Status TuningService::RegisterTask(const std::string& id,
                                   JobEvaluator* evaluator,
                                   std::optional<Configuration> baseline,
                                   std::optional<TunerOptions> override) {
  if (tasks_.count(id) > 0) {
    return Status::InvalidArgument("task already registered: " + id);
  }
  if (evaluator == nullptr) {
    return Status::InvalidArgument("evaluator is null for task: " + id);
  }
  TaskState state;
  state.evaluator = evaluator;
  state.tuner = std::make_unique<OnlineTuner>(
      space_, evaluator, override.value_or(options_.tuner),
      std::move(baseline));
  tasks_.emplace(id, std::move(state));
  return Status::OK();
}

void TuningService::MaybeAttachMeta(TaskState* state) {
  if (state->meta_attached || !options_.enable_meta) return;
  if (state->meta_samples.empty()) return;
  if (knowledge_.size() <
      static_cast<size_t>(options_.min_tasks_for_transfer)) {
    return;
  }
  std::vector<double> meta = AverageMetaFeatures(state->meta_samples);
  // Warm-start configurations from the top-3 most similar tasks (§5.2).
  std::vector<Configuration> warm = knowledge_.WarmStartConfigs(meta);
  if (!warm.empty()) state->tuner->SetWarmStartConfigs(std::move(warm));
  // Ensemble surrogate carrying meta-knowledge (Eq. 12).
  state->tuner->SetObjectiveSurrogateFactory(
      knowledge_.MakeMetaSurrogateFactory(meta));
  // Sub-space suggestion by importance transfer (§5.2).
  std::vector<double> importance = knowledge_.SuggestImportance(meta);
  if (!importance.empty()) {
    state->tuner->SeedImportance(std::move(importance), 2.0);
  }
  state->meta_attached = true;
}

void TuningService::AbsorbExecution(TaskState* state) {
  if (!state->tuner->last_event_log().stages.empty()) {
    state->meta_samples.push_back(
        ExtractMetaFeatures(state->tuner->last_event_log()));
    if (state->meta_samples.size() > 8) {
      state->meta_samples.erase(state->meta_samples.begin());
    }
  }
  // Attach meta-knowledge as soon as the first meta-features exist; the
  // advisor consumes warm-start configs during its initial design.
  MaybeAttachMeta(state);
}

Result<Observation> TuningService::ExecutePeriodic(const std::string& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("unknown task: " + id);
  }
  TaskState& state = it->second;
  Observation obs = state.tuner->Step();
  AbsorbExecution(&state);
  return obs;
}

std::vector<Result<Observation>> TuningService::ExecutePeriodicAll(
    const std::vector<std::string>& ids) {
  // Resolve ids serially; a task may appear at most once per batch (two
  // concurrent Step() calls on one tuner would race).
  std::vector<TaskState*> states(ids.size(), nullptr);
  std::vector<Status> errors(ids.size(), Status::OK());
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto it = tasks_.find(ids[i]);
    if (it == tasks_.end()) {
      errors[i] = Status::NotFound("unknown task: " + ids[i]);
    } else if (!seen.insert(ids[i]).second) {
      errors[i] = Status::InvalidArgument("task repeated in batch: " + ids[i]);
    } else {
      states[i] = &it->second;
    }
  }

  // Run the suggest/evaluate cycles concurrently: each task touches only
  // its own tuner and evaluator, and the shared knowledge base is read
  // nowhere in Step().
  std::vector<std::optional<Observation>> stepped(ids.size());
  ParallelFor(options_.num_threads, ids.size(), [&](size_t i) {
    if (states[i] != nullptr) stepped[i] = states[i]->tuner->Step();
  });

  // Serial postlude in input order: meta-feature harvesting and knowledge
  // attachment mutate per-task and shared state.
  std::vector<Result<Observation>> results;
  results.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (states[i] == nullptr) {
      results.push_back(errors[i]);
      continue;
    }
    AbsorbExecution(states[i]);
    results.push_back(std::move(*stepped[i]));
  }
  return results;
}

Status TuningService::HarvestTask(const std::string& id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("unknown task: " + id);
  }
  TaskState& state = it->second;
  if (state.meta_samples.empty()) {
    return Status::FailedPrecondition("task has no meta-features yet: " + id);
  }
  const RunHistory& history = state.tuner->history();
  if (history.size() < 3) {
    return Status::FailedPrecondition("task history too small: " + id);
  }
  std::vector<double> meta = AverageMetaFeatures(state.meta_samples);
  std::vector<double> importance;
  if (const Advisor* advisor = state.tuner->advisor()) {
    importance = advisor->subspace_manager().importance();
  }
  SPARKTUNE_RETURN_IF_ERROR(
      knowledge_.AddTask(id, meta, history, importance));
  state.harvested = true;

  if (repository_ != nullptr) {
    StoredTask stored;
    stored.id = id;
    stored.meta_features = std::move(meta);
    stored.importance = std::move(importance);
    stored.history = history;
    SPARKTUNE_RETURN_IF_ERROR(repository_->SaveTask(stored, *space_));
  }

  // Refresh the similarity learner on a doubling schedule: training is
  // quadratic in the number of tasks, so fleet-scale harvesting retrains at
  // sizes 2, 4, 8, ... (the z-scored meta-feature fallback covers the gap).
  size_t n = knowledge_.size();
  if (n >= 2 && (n & (n - 1)) == 0) {
    Status s = knowledge_.TrainSimilarityModel();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status TuningService::LoadRepository() {
  if (repository_ == nullptr) {
    return Status::FailedPrecondition("no repository configured");
  }
  for (const std::string& id : repository_->ListTaskIds()) {
    SPARKTUNE_ASSIGN_OR_RETURN(stored, repository_->LoadTask(id, *space_));
    Status s = knowledge_.AddTask(stored.id, stored.meta_features,
                                  stored.history, stored.importance);
    if (!s.ok() && s.code() != Status::Code::kFailedPrecondition) return s;
  }
  if (knowledge_.size() >= 2) {
    return knowledge_.TrainSimilarityModel();
  }
  return Status::OK();
}

const OnlineTuner* TuningService::tuner(const std::string& id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.tuner.get();
}

OnlineTuner* TuningService::tuner(const std::string& id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.tuner.get();
}

}  // namespace sparktune
