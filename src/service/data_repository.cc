#include "service/data_repository.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/checksum.h"
#include "common/json.h"
#include "common/strings.h"

namespace fs = std::filesystem;

namespace sparktune {

namespace {

// Task ids can contain spaces/colons; file names use a sanitized prefix
// plus a stable hash for uniqueness. The real id lives inside the JSON.
std::string SanitizedFileName(const std::string& id, const char* ext) {
  std::string safe;
  for (char c : id) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (safe.size() > 48) safe.resize(48);
  size_t h = std::hash<std::string>{}(id);
  return StrFormat("%s-%016zx%s", safe.c_str(), h, ext);
}

// Checkpoint framing: "SPARKTUNE-CKPT1 <crc32 hex> <payload bytes>\n" then
// the payload. The declared length catches truncation (torn write that the
// rename could not prevent, e.g. a dying disk), the CRC catches bit rot.
constexpr char kCheckpointMagic[] = "SPARKTUNE-CKPT1";

Json VectorToJson(const std::vector<double>& v) {
  Json arr = Json::Array();
  for (double x : v) arr.Append(Json::Number(x));
  return arr;
}

std::vector<double> VectorFromJson(const Json& j) {
  std::vector<double> v;
  if (!j.is_array()) return v;
  v.reserve(j.size());
  for (const auto& e : j.elements()) {
    v.push_back(e.is_number() ? e.AsNumber() : 0.0);
  }
  return v;
}

}  // namespace

DataRepository::DataRepository(std::string root_dir)
    : root_dir_(std::move(root_dir)) {
  std::error_code ec;
  fs::create_directories(root_dir_, ec);
}

std::string DataRepository::PathFor(const std::string& id) const {
  return (fs::path(root_dir_) / SanitizedFileName(id, ".json")).string();
}

std::string DataRepository::CheckpointPathFor(const std::string& id) const {
  return (fs::path(root_dir_) / SanitizedFileName(id, ".ckpt")).string();
}

Status DataRepository::SaveCheckpoint(const std::string& id,
                                      const Json& payload) const {
  std::string body = payload.Dump();
  std::string path = CheckpointPathFor(id);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out.good()) {
      return Status::Unavailable("cannot write " + tmp);
    }
    out << kCheckpointMagic << ' '
        << StrFormat("%08x", Crc32(body)) << ' ' << body.size() << '\n'
        << body;
    out.flush();
    if (!out.good()) {
      return Status::Unavailable("short write to " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::Unavailable("rename failed: " + ec.message());
  return Status::OK();
}

Result<Json> DataRepository::LoadCheckpoint(const std::string& id) const {
  std::ifstream in(CheckpointPathFor(id), std::ios::binary);
  if (!in.good()) return Status::NotFound("no checkpoint for task: " + id);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string raw = buf.str();

  size_t nl = raw.find('\n');
  if (nl == std::string::npos) {
    return Status::DataLoss("checkpoint for " + id + ": missing header");
  }
  std::istringstream header(raw.substr(0, nl));
  std::string magic, crc_hex;
  size_t declared = 0;
  if (!(header >> magic >> crc_hex >> declared) ||
      magic != kCheckpointMagic) {
    return Status::DataLoss("checkpoint for " + id + ": bad header");
  }
  std::string body = raw.substr(nl + 1);
  if (body.size() != declared) {
    return Status::DataLoss(
        StrFormat("checkpoint for %s: truncated (%zu of %zu bytes)",
                  id.c_str(), body.size(), declared));
  }
  uint32_t want = 0;
  {
    std::istringstream crc_in(crc_hex);
    crc_in >> std::hex >> want;
    if (crc_in.fail()) {
      return Status::DataLoss("checkpoint for " + id + ": bad crc field");
    }
  }
  if (Crc32(body) != want) {
    return Status::DataLoss("checkpoint for " + id + ": checksum mismatch");
  }
  auto doc = Json::Parse(body);
  if (!doc.ok()) {
    return Status::DataLoss("checkpoint for " + id + ": " +
                            doc.status().message());
  }
  return *std::move(doc);
}

bool DataRepository::HasCheckpoint(const std::string& id) const {
  return fs::exists(CheckpointPathFor(id));
}

Status DataRepository::DeleteCheckpoint(const std::string& id) const {
  std::error_code ec;
  fs::remove(CheckpointPathFor(id), ec);
  if (ec) return Status::Unavailable("remove failed: " + ec.message());
  return Status::OK();
}

std::vector<std::string> DataRepository::ListCheckpointIds() const {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".ckpt") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string raw = buf.str();
    size_t nl = raw.find('\n');
    if (nl == std::string::npos) continue;
    auto doc = Json::Parse(raw.substr(nl + 1));
    if (doc.ok() && doc->is_object()) {
      std::string id = doc->GetStringOr("id", "");
      if (!id.empty()) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Json DataRepository::ObservationToJson(const Observation& obs) {
  Json j = Json::Object();
  j.Set("config", VectorToJson(obs.config.values()));
  j.Set("objective", Json::Number(obs.objective));
  j.Set("runtime_sec", Json::Number(obs.runtime_sec));
  j.Set("resource_rate", Json::Number(obs.resource_rate));
  j.Set("data_size_gb", Json::Number(obs.data_size_gb));
  j.Set("memory_gb_hours", Json::Number(obs.memory_gb_hours));
  j.Set("cpu_core_hours", Json::Number(obs.cpu_core_hours));
  j.Set("hours", Json::Number(obs.hours));
  j.Set("feasible", Json::Bool(obs.feasible));
  j.Set("failure", Json::Str(FailureKindName(obs.failure)));
  j.Set("degraded", Json::Bool(obs.degraded));
  j.Set("iteration", Json::Number(obs.iteration));
  return j;
}

Result<Observation> DataRepository::ObservationFromJson(
    const Json& j, const ConfigSpace& space) {
  if (!j.is_object()) {
    return Status::InvalidArgument("observation is not a JSON object");
  }
  Observation obs;
  const Json* config = j.Get("config");
  if (config == nullptr || !config->is_array() ||
      config->size() != space.size()) {
    return Status::InvalidArgument("observation config size mismatch");
  }
  obs.config = Configuration(VectorFromJson(*config));
  obs.objective = j.GetNumberOr("objective", 0.0);
  obs.runtime_sec = j.GetNumberOr("runtime_sec", 0.0);
  obs.resource_rate = j.GetNumberOr("resource_rate", 0.0);
  obs.data_size_gb = j.GetNumberOr("data_size_gb", -1.0);
  obs.memory_gb_hours = j.GetNumberOr("memory_gb_hours", 0.0);
  obs.cpu_core_hours = j.GetNumberOr("cpu_core_hours", 0.0);
  obs.hours = j.GetNumberOr("hours", -1.0);
  obs.feasible = j.GetBoolOr("feasible", true);
  obs.failure =
      FailureKindFromName(j.GetStringOr("failure", "").c_str());
  // Legacy records carried only a bare bool; read it as a generic
  // config-induced failure so safety labels survive the format upgrade.
  if (obs.failure == FailureKind::kNone && j.GetBoolOr("failed", false)) {
    obs.failure = FailureKind::kOom;
  }
  obs.degraded = j.GetBoolOr("degraded", false);
  obs.iteration = static_cast<int>(j.GetNumberOr("iteration", 0.0));
  return obs;
}

Status DataRepository::SaveTask(const StoredTask& task,
                                const ConfigSpace& space) const {
  (void)space;
  Json doc = Json::Object();
  doc.Set("id", Json::Str(task.id));
  doc.Set("meta_features", VectorToJson(task.meta_features));
  doc.Set("importance", VectorToJson(task.importance));
  Json obs = Json::Array();
  for (const auto& o : task.history.observations()) {
    obs.Append(ObservationToJson(o));
  }
  doc.Set("observations", std::move(obs));

  std::string path = PathFor(task.id);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) {
      return Status::Unavailable("cannot write " + tmp);
    }
    out << doc.Dump() << "\n";
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::Unavailable("rename failed: " + ec.message());
  return Status::OK();
}

Result<StoredTask> DataRepository::LoadTask(const std::string& id,
                                            const ConfigSpace& space) const {
  std::ifstream in(PathFor(id));
  if (!in.good()) return Status::NotFound("no stored task: " + id);
  std::stringstream buf;
  buf << in.rdbuf();
  SPARKTUNE_ASSIGN_OR_RETURN(doc, Json::Parse(buf.str()));
  StoredTask task;
  task.id = doc.GetStringOr("id", id);
  if (const Json* mf = doc.Get("meta_features")) {
    task.meta_features = VectorFromJson(*mf);
  }
  if (const Json* imp = doc.Get("importance")) {
    task.importance = VectorFromJson(*imp);
  }
  if (const Json* obs = doc.Get("observations"); obs && obs->is_array()) {
    for (const auto& e : obs->elements()) {
      SPARKTUNE_ASSIGN_OR_RETURN(o, ObservationFromJson(e, space));
      task.history.Add(std::move(o));
    }
  }
  return task;
}

std::vector<std::string> DataRepository::ListTaskIds() const {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    auto doc = Json::Parse(buf.str());
    if (doc.ok() && doc->is_object()) {
      std::string id = doc->GetStringOr("id", "");
      if (!id.empty()) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool DataRepository::HasTask(const std::string& id) const {
  return fs::exists(PathFor(id));
}

Status DataRepository::DeleteTask(const std::string& id) const {
  std::error_code ec;
  fs::remove(PathFor(id), ec);
  if (ec) return Status::Unavailable("remove failed: " + ec.message());
  return Status::OK();
}

}  // namespace sparktune
