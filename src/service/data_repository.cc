#include "service/data_repository.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/checksum.h"
#include "common/json.h"
#include "common/strings.h"

namespace fs = std::filesystem;

namespace sparktune {

namespace {

// Task ids can contain spaces/colons; file names use a sanitized prefix
// plus a stable hash for uniqueness. The real id lives inside the JSON.
std::string SanitizedFileName(const std::string& id, const char* ext) {
  std::string safe;
  for (char c : id) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (safe.size() > 48) safe.resize(48);
  size_t h = std::hash<std::string>{}(id);
  return StrFormat("%s-%016zx%s", safe.c_str(), h, ext);
}

// File framing: "<magic> <crc32 hex> <payload bytes>\n" then the payload.
// The declared length catches truncation (torn write that the rename could
// not prevent, e.g. a dying disk), the CRC catches bit rot. Checkpoint
// generation files and the per-task manifest share the frame but carry
// distinct magics.
constexpr char kCheckpointMagic[] = "SPARKTUNE-CKPT1";
constexpr char kManifestMagic[] = "SPARKTUNE-MAN1";

}  // namespace

Status WriteFramedAtomic(const std::string& path, const char* magic,
                         const std::string& body) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out.good()) {
      return Status::Unavailable("cannot write " + tmp);
    }
    out << magic << ' ' << StrFormat("%08x", Crc32(body)) << ' '
        << body.size() << '\n'
        << body;
    out.flush();
    if (!out.good()) {
      return Status::Unavailable("short write to " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::Unavailable("rename failed: " + ec.message());
  return Status::OK();
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   const char* magic,
                                   const std::string& what) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("no file: " + what);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string raw = buf.str();

  size_t nl = raw.find('\n');
  if (nl == std::string::npos) {
    return Status::DataLoss(what + ": missing header");
  }
  std::istringstream header(raw.substr(0, nl));
  std::string got_magic, crc_hex;
  size_t declared = 0;
  if (!(header >> got_magic >> crc_hex >> declared) || got_magic != magic) {
    return Status::DataLoss(what + ": bad header");
  }
  std::string body = raw.substr(nl + 1);
  if (body.size() != declared) {
    return Status::DataLoss(StrFormat("%s: truncated (%zu of %zu bytes)",
                                      what.c_str(), body.size(), declared));
  }
  uint32_t want = 0;
  {
    std::istringstream crc_in(crc_hex);
    crc_in >> std::hex >> want;
    if (crc_in.fail()) {
      return Status::DataLoss(what + ": bad crc field");
    }
  }
  if (Crc32(body) != want) {
    return Status::DataLoss(what + ": checksum mismatch");
  }
  return body;
}

namespace {

Json VectorToJson(const std::vector<double>& v) {
  Json arr = Json::Array();
  for (double x : v) arr.Append(Json::Number(x));
  return arr;
}

std::vector<double> VectorFromJson(const Json& j) {
  std::vector<double> v;
  if (!j.is_array()) return v;
  v.reserve(j.size());
  for (const auto& e : j.elements()) {
    v.push_back(e.is_number() ? e.AsNumber() : 0.0);
  }
  return v;
}

// Parses "<stem>.g<digits>.ckpt" file names; returns -1 when `name` is not
// a generation file of `stem`.
long long GenerationOf(const std::string& name, const std::string& stem) {
  const std::string prefix = stem + ".g";
  const std::string suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return -1;
  }
  long long gen = 0;
  for (size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    char c = name[i];
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    gen = gen * 10 + (c - '0');
    if (gen > (1LL << 50)) return -1;
  }
  return gen > 0 ? gen : -1;
}

}  // namespace

DataRepository::DataRepository(std::string root_dir,
                               CheckpointRetention retention)
    : root_dir_(std::move(root_dir)), retention_(retention) {
  if (retention_.keep_generations < 1) retention_.keep_generations = 1;
  std::error_code ec;
  fs::create_directories(root_dir_, ec);
}

std::string DataRepository::PathFor(const std::string& id) const {
  return (fs::path(root_dir_) / SanitizedFileName(id, ".json")).string();
}

std::string DataRepository::CheckpointStem(const std::string& id) const {
  return SanitizedFileName(id, "");
}

std::string DataRepository::GenerationPath(const std::string& id,
                                           long long gen) const {
  return (fs::path(root_dir_) /
          StrFormat("%s.g%06lld.ckpt", CheckpointStem(id).c_str(), gen))
      .string();
}

std::string DataRepository::ManifestPath(const std::string& id) const {
  return (fs::path(root_dir_) / (CheckpointStem(id) + ".manifest")).string();
}

std::string DataRepository::LegacyCheckpointPath(const std::string& id) const {
  return (fs::path(root_dir_) / (CheckpointStem(id) + ".ckpt")).string();
}

std::vector<long long> DataRepository::ScanGenerations(
    const std::string& id) const {
  std::vector<long long> gens;
  const std::string stem = CheckpointStem(id);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    long long gen = GenerationOf(entry.path().filename().string(), stem);
    if (gen > 0) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::vector<long long> DataRepository::ManifestGenerations(
    const std::string& id) const {
  auto body = ReadFramedFile(ManifestPath(id), kManifestMagic,
                         "manifest for " + id);
  if (!body.ok()) return {};
  auto doc = Json::Parse(*body);
  if (!doc.ok() || !doc->is_object()) return {};
  std::vector<long long> gens;
  if (const Json* arr = doc->Get("generations"); arr && arr->is_array()) {
    for (const auto& e : arr->elements()) {
      if (e.is_number() && e.AsNumber() >= 1.0) {
        gens.push_back(static_cast<long long>(e.AsNumber()));
      }
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

Status DataRepository::WriteManifest(
    const std::string& id, const std::vector<long long>& gens) const {
  Json doc = Json::Object();
  doc.Set("id", Json::Str(id));
  doc.Set("latest", Json::Number(gens.empty()
                                     ? 0.0
                                     : static_cast<double>(gens.back())));
  Json arr = Json::Array();
  for (long long g : gens) arr.Append(Json::Number(static_cast<double>(g)));
  doc.Set("generations", std::move(arr));
  return WriteFramedAtomic(ManifestPath(id), kManifestMagic, doc.Dump());
}

Status DataRepository::SaveCheckpoint(const std::string& id,
                                      const Json& payload) const {
  std::vector<long long> on_disk = ScanGenerations(id);
  std::vector<long long> listed = ManifestGenerations(id);
  long long latest = 0;
  if (!on_disk.empty()) latest = on_disk.back();
  if (!listed.empty()) latest = std::max(latest, listed.back());
  const long long next = latest + 1;

  SPARKTUNE_RETURN_IF_ERROR(WriteFramedAtomic(
      GenerationPath(id, next), kCheckpointMagic, payload.Dump()));

  // Retained window: the newest keep_generations of what is now on disk.
  on_disk.push_back(next);
  std::sort(on_disk.begin(), on_disk.end());
  on_disk.erase(std::unique(on_disk.begin(), on_disk.end()), on_disk.end());
  size_t keep = static_cast<size_t>(retention_.keep_generations);
  std::vector<long long> retained =
      on_disk.size() <= keep
          ? on_disk
          : std::vector<long long>(on_disk.end() - keep, on_disk.end());
  SPARKTUNE_RETURN_IF_ERROR(WriteManifest(id, retained));

  // GC after the manifest landed: a crash mid-delete leaves only orphans
  // (swept by SweepOrphanCheckpoints), never a manifest naming dead files.
  for (long long gen : on_disk) {
    if (std::find(retained.begin(), retained.end(), gen) != retained.end()) {
      continue;
    }
    std::error_code ec;
    fs::remove(GenerationPath(id, gen), ec);
  }
  return Status::OK();
}

Result<Json> DataRepository::LoadCheckpoint(const std::string& id) const {
  // Newest-first candidate list: manifest-listed generations union the
  // directory scan (the scan backstops a torn or missing manifest and
  // covers generations written after the manifest's last update).
  std::vector<long long> candidates = ManifestGenerations(id);
  for (long long g : ScanGenerations(id)) candidates.push_back(g);
  std::sort(candidates.begin(), candidates.end(),
            std::greater<long long>());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  bool any_file = false;
  Status last_error = Status::OK();
  for (long long gen : candidates) {
    auto body =
        ReadFramedFile(GenerationPath(id, gen), kCheckpointMagic,
                   StrFormat("checkpoint for %s gen %lld", id.c_str(), gen));
    if (!body.ok()) {
      if (body.status().code() != Status::Code::kNotFound) {
        any_file = true;
        last_error = body.status();
      }
      continue;
    }
    any_file = true;
    auto doc = Json::Parse(*body);
    if (!doc.ok()) {
      last_error = Status::DataLoss(
          StrFormat("checkpoint for %s gen %lld: %s", id.c_str(), gen,
                    doc.status().message().c_str()));
      continue;
    }
    return *std::move(doc);
  }

  // Pre-generation layout: a single unsuffixed .ckpt file.
  auto legacy = ReadFramedFile(LegacyCheckpointPath(id), kCheckpointMagic,
                           "checkpoint for " + id);
  if (legacy.ok()) {
    auto doc = Json::Parse(*legacy);
    if (doc.ok()) return *std::move(doc);
    any_file = true;
    last_error = Status::DataLoss("checkpoint for " + id + ": " +
                                  doc.status().message());
  } else if (legacy.status().code() != Status::Code::kNotFound) {
    any_file = true;
    last_error = legacy.status();
  }

  if (!any_file) return Status::NotFound("no checkpoint for task: " + id);
  if (last_error.ok()) {
    last_error = Status::DataLoss("checkpoint for " + id +
                                  ": no intact generation");
  }
  return last_error;
}

bool DataRepository::HasCheckpoint(const std::string& id) const {
  return !ScanGenerations(id).empty() ||
         fs::exists(ManifestPath(id)) ||
         fs::exists(LegacyCheckpointPath(id));
}

Status DataRepository::DeleteCheckpoint(const std::string& id) const {
  std::error_code ec;
  for (long long gen : ScanGenerations(id)) {
    fs::remove(GenerationPath(id, gen), ec);
    if (ec) return Status::Unavailable("remove failed: " + ec.message());
  }
  fs::remove(ManifestPath(id), ec);
  if (ec) return Status::Unavailable("remove failed: " + ec.message());
  fs::remove(LegacyCheckpointPath(id), ec);
  if (ec) return Status::Unavailable("remove failed: " + ec.message());
  return Status::OK();
}

long long DataRepository::LatestCheckpointGeneration(
    const std::string& id) const {
  long long latest = 0;
  std::vector<long long> on_disk = ScanGenerations(id);
  if (!on_disk.empty()) latest = on_disk.back();
  std::vector<long long> listed = ManifestGenerations(id);
  if (!listed.empty()) latest = std::max(latest, listed.back());
  return latest;
}

std::vector<std::string> DataRepository::ListCheckpointIds() const {
  // Ids come from the payloads themselves (generation files and legacy
  // unsuffixed files share the frame), deduplicated across generations.
  std::set<std::string> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".ckpt") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string raw = buf.str();
    size_t nl = raw.find('\n');
    if (nl == std::string::npos) continue;
    auto doc = Json::Parse(raw.substr(nl + 1));
    if (doc.ok() && doc->is_object()) {
      std::string id = doc->GetStringOr("id", "");
      if (!id.empty()) ids.insert(id);
    }
  }
  return std::vector<std::string>(ids.begin(), ids.end());
}

int DataRepository::SweepOrphanCheckpoints() const {
  int removed = 0;
  std::error_code ec;
  // One classifying pass over the directory. Sweep-eligible names are
  // exactly what this repository's checkpoint writers produce:
  //   <stem>.g<digits>.ckpt        generation file (retention window)
  //   <stem>.g<digits>.ckpt.tmp    interrupted generation write
  //   <stem>.ckpt.tmp              interrupted legacy-layout write
  //   <stem>.manifest.tmp          interrupted manifest write
  // Anything else — task JSON documents, their .json.tmp temps, unrelated
  // files a caller parked in the directory — is preserved: the sweep used
  // to delete EVERY *.tmp regular file, eating innocent bystanders.
  struct GenFile {
    std::string path;
    long long gen = 0;
  };
  std::map<std::string, std::vector<GenFile>> by_stem;
  for (const auto& entry : fs::directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      std::string base = name.substr(0, name.size() - 4);
      bool is_ckpt_tmp =
          base.size() > 5 &&
          base.compare(base.size() - 5, 5, ".ckpt") == 0;
      bool is_manifest_tmp =
          base.size() > 9 &&
          base.compare(base.size() - 9, 9, ".manifest") == 0;
      if (is_ckpt_tmp || is_manifest_tmp) {
        std::error_code rm_ec;
        fs::remove(entry.path(), rm_ec);
        if (!rm_ec) ++removed;
      }
      continue;
    }
    size_t dot_g = name.rfind(".g");
    if (dot_g == std::string::npos || dot_g == 0) continue;
    std::string stem = name.substr(0, dot_g);
    long long gen = GenerationOf(name, stem);
    if (gen > 0) by_stem[stem].push_back({entry.path().string(), gen});
  }
  // Per-stem retention window ordered by PARSED generation number — never
  // by file-name order, which goes wrong the moment generations outgrow
  // the zero-pad ("g1000000" sorts before "g999999" lexically). Deletion
  // targets the scanned paths themselves, not reconstructed names, so a
  // file whose padding differs from the current writer's still gets
  // collected once its generation leaves the window.
  size_t keep = static_cast<size_t>(retention_.keep_generations);
  for (auto& [stem, files] : by_stem) {
    if (files.size() <= keep) continue;
    std::sort(files.begin(), files.end(),
              [](const GenFile& a, const GenFile& b) {
                return a.gen != b.gen ? a.gen < b.gen : a.path < b.path;
              });
    for (size_t i = 0; i + keep < files.size(); ++i) {
      std::error_code rm_ec;
      fs::remove(files[i].path, rm_ec);
      if (!rm_ec) ++removed;
    }
  }
  return removed;
}

Json DataRepository::ObservationToJson(const Observation& obs) {
  Json j = Json::Object();
  j.Set("config", VectorToJson(obs.config.values()));
  j.Set("objective", Json::Number(obs.objective));
  j.Set("runtime_sec", Json::Number(obs.runtime_sec));
  j.Set("resource_rate", Json::Number(obs.resource_rate));
  j.Set("data_size_gb", Json::Number(obs.data_size_gb));
  j.Set("memory_gb_hours", Json::Number(obs.memory_gb_hours));
  j.Set("cpu_core_hours", Json::Number(obs.cpu_core_hours));
  j.Set("hours", Json::Number(obs.hours));
  j.Set("feasible", Json::Bool(obs.feasible));
  j.Set("failure", Json::Str(FailureKindName(obs.failure)));
  j.Set("degraded", Json::Bool(obs.degraded));
  j.Set("iteration", Json::Number(obs.iteration));
  return j;
}

Result<Observation> DataRepository::ObservationFromJson(
    const Json& j, const ConfigSpace& space) {
  if (!j.is_object()) {
    return Status::InvalidArgument("observation is not a JSON object");
  }
  Observation obs;
  const Json* config = j.Get("config");
  if (config == nullptr || !config->is_array() ||
      config->size() != space.size()) {
    return Status::InvalidArgument("observation config size mismatch");
  }
  obs.config = Configuration(VectorFromJson(*config));
  obs.objective = j.GetNumberOr("objective", 0.0);
  obs.runtime_sec = j.GetNumberOr("runtime_sec", 0.0);
  obs.resource_rate = j.GetNumberOr("resource_rate", 0.0);
  obs.data_size_gb = j.GetNumberOr("data_size_gb", -1.0);
  obs.memory_gb_hours = j.GetNumberOr("memory_gb_hours", 0.0);
  obs.cpu_core_hours = j.GetNumberOr("cpu_core_hours", 0.0);
  obs.hours = j.GetNumberOr("hours", -1.0);
  obs.feasible = j.GetBoolOr("feasible", true);
  obs.failure =
      FailureKindFromName(j.GetStringOr("failure", "").c_str());
  // Legacy records carried only a bare bool; read it as a generic
  // config-induced failure so safety labels survive the format upgrade.
  if (obs.failure == FailureKind::kNone && j.GetBoolOr("failed", false)) {
    obs.failure = FailureKind::kOom;
  }
  obs.degraded = j.GetBoolOr("degraded", false);
  obs.iteration = static_cast<int>(j.GetNumberOr("iteration", 0.0));
  return obs;
}

Status DataRepository::SaveTask(const StoredTask& task,
                                const ConfigSpace& space) const {
  (void)space;
  Json doc = Json::Object();
  doc.Set("id", Json::Str(task.id));
  doc.Set("meta_features", VectorToJson(task.meta_features));
  doc.Set("importance", VectorToJson(task.importance));
  Json obs = Json::Array();
  for (const auto& o : task.history.observations()) {
    obs.Append(ObservationToJson(o));
  }
  doc.Set("observations", std::move(obs));

  std::string path = PathFor(task.id);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) {
      return Status::Unavailable("cannot write " + tmp);
    }
    out << doc.Dump() << "\n";
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::Unavailable("rename failed: " + ec.message());
  return Status::OK();
}

Result<StoredTask> DataRepository::LoadTask(const std::string& id,
                                            const ConfigSpace& space) const {
  std::ifstream in(PathFor(id));
  if (!in.good()) return Status::NotFound("no stored task: " + id);
  std::stringstream buf;
  buf << in.rdbuf();
  SPARKTUNE_ASSIGN_OR_RETURN(doc, Json::Parse(buf.str()));
  StoredTask task;
  task.id = doc.GetStringOr("id", id);
  if (const Json* mf = doc.Get("meta_features")) {
    task.meta_features = VectorFromJson(*mf);
  }
  if (const Json* imp = doc.Get("importance")) {
    task.importance = VectorFromJson(*imp);
  }
  if (const Json* obs = doc.Get("observations"); obs && obs->is_array()) {
    for (const auto& e : obs->elements()) {
      SPARKTUNE_ASSIGN_OR_RETURN(o, ObservationFromJson(e, space));
      task.history.Add(std::move(o));
    }
  }
  return task;
}

std::vector<std::string> DataRepository::ListTaskIds() const {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    std::ifstream in(entry.path());
    std::stringstream buf;
    buf << in.rdbuf();
    auto doc = Json::Parse(buf.str());
    if (doc.ok() && doc->is_object()) {
      std::string id = doc->GetStringOr("id", "");
      if (!id.empty()) ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool DataRepository::HasTask(const std::string& id) const {
  return fs::exists(PathFor(id));
}

Status DataRepository::DeleteTask(const std::string& id) const {
  std::error_code ec;
  fs::remove(PathFor(id), ec);
  if (ec) return Status::Unavailable("remove failed: " + ec.message());
  return Status::OK();
}

}  // namespace sparktune
