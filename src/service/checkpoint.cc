#include "service/checkpoint.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/strings.h"
#include "service/data_repository.h"

namespace sparktune {

namespace {

// uint64 <-> hex string: JSON numbers are doubles and cannot carry a full
// 64-bit RNG word.
Json U64ToJson(uint64_t v) {
  return Json::Str(StrFormat("%016llx", static_cast<unsigned long long>(v)));
}

uint64_t U64FromJson(const Json& j, const char* key) {
  std::string s = j.GetStringOr(key, "0");
  return std::strtoull(s.c_str(), nullptr, 16);
}

Json VectorToJson(const std::vector<double>& v) {
  Json arr = Json::Array();
  for (double x : v) arr.Append(Json::Number(x));
  return arr;
}

std::vector<double> VectorFromJson(const Json& j) {
  std::vector<double> v;
  if (!j.is_array()) return v;
  v.reserve(j.size());
  for (const auto& e : j.elements()) {
    v.push_back(e.is_number() ? e.AsNumber() : 0.0);
  }
  return v;
}

// Infinity is a legal constraint value but not a legal JSON number: encode
// it by omission and default back to infinity on read.
void SetFiniteNumber(Json* j, const char* key, double v) {
  if (std::isfinite(v)) j->Set(key, Json::Number(v));
}

Json RngStateToJson(const RngState& s) {
  Json j = Json::Object();
  Json words = Json::Array();
  for (uint64_t w : s.state) words.Append(U64ToJson(w));
  j.Set("state", std::move(words));
  j.Set("has_cached_normal", Json::Bool(s.has_cached_normal));
  j.Set("cached_normal", Json::Number(s.cached_normal));
  return j;
}

Result<RngState> RngStateFromJson(const Json& j) {
  RngState s;
  const Json* words = j.Get("state");
  if (words == nullptr || !words->is_array() || words->size() != 4) {
    return Status::DataLoss("rng state: expected 4 hex words");
  }
  size_t i = 0;
  for (const auto& w : words->elements()) {
    if (!w.is_string()) return Status::DataLoss("rng state: non-string word");
    s.state[i++] = std::strtoull(w.AsString().c_str(), nullptr, 16);
  }
  s.has_cached_normal = j.GetBoolOr("has_cached_normal", false);
  s.cached_normal = j.GetNumberOr("cached_normal", 0.0);
  return s;
}

Json SubspaceStateToJson(const SubspaceState& s) {
  Json j = Json::Object();
  j.Set("k", Json::Number(s.k));
  j.Set("succ_count", Json::Number(s.succ_count));
  j.Set("fail_count", Json::Number(s.fail_count));
  j.Set("importance", VectorToJson(s.importance));
  j.Set("importance_weight", Json::Number(s.importance_weight));
  j.Set("num_updates", Json::Number(s.num_updates));
  j.Set("last_fanova_size", U64ToJson(s.last_fanova_size));
  return j;
}

SubspaceState SubspaceStateFromJson(const Json& j) {
  SubspaceState s;
  s.k = static_cast<int>(j.GetNumberOr("k", 0.0));
  s.succ_count = static_cast<int>(j.GetNumberOr("succ_count", 0.0));
  s.fail_count = static_cast<int>(j.GetNumberOr("fail_count", 0.0));
  if (const Json* imp = j.Get("importance")) {
    s.importance = VectorFromJson(*imp);
  }
  s.importance_weight = j.GetNumberOr("importance_weight", 0.0);
  s.num_updates = static_cast<int>(j.GetNumberOr("num_updates", 0.0));
  s.last_fanova_size = U64FromJson(j, "last_fanova_size");
  return s;
}

Json DegradationToJson(const DegradationStats& d) {
  Json j = Json::Object();
  j.Set("fit_failures", Json::Number(static_cast<double>(d.fit_failures)));
  j.Set("previous_model_reuses",
        Json::Number(static_cast<double>(d.previous_model_reuses)));
  j.Set("prior_only_fits",
        Json::Number(static_cast<double>(d.prior_only_fits)));
  j.Set("fallback_suggestions",
        Json::Number(static_cast<double>(d.fallback_suggestions)));
  return j;
}

DegradationStats DegradationFromJson(const Json& j) {
  DegradationStats d;
  d.fit_failures =
      static_cast<long long>(j.GetNumberOr("fit_failures", 0.0));
  d.previous_model_reuses =
      static_cast<long long>(j.GetNumberOr("previous_model_reuses", 0.0));
  d.prior_only_fits =
      static_cast<long long>(j.GetNumberOr("prior_only_fits", 0.0));
  d.fallback_suggestions =
      static_cast<long long>(j.GetNumberOr("fallback_suggestions", 0.0));
  return d;
}

Json AdvisorStateToJson(const AdvisorState& s) {
  Json j = Json::Object();
  j.Set("rng", RngStateToJson(s.rng));
  j.Set("init_sampler_generated", U64ToJson(s.init_sampler_generated));
  j.Set("subspace", SubspaceStateToJson(s.subspace));
  Json obs = Json::Array();
  for (const auto& o : s.observations) {
    obs.Append(DataRepository::ObservationToJson(o));
  }
  j.Set("observations", std::move(obs));
  Json warm = Json::Array();
  for (const auto& c : s.warm_start) warm.Append(VectorToJson(c.values()));
  j.Set("warm_start", std::move(warm));
  j.Set("suggestions", Json::Number(s.suggestions));
  j.Set("init_served", U64ToJson(s.init_served));
  j.Set("use_time_context", Json::Bool(s.use_time_context));
  j.Set("degradation", DegradationToJson(s.degradation));
  return j;
}

Result<AdvisorState> AdvisorStateFromJson(const Json& j,
                                          const ConfigSpace& space) {
  AdvisorState s;
  const Json* rng = j.Get("rng");
  if (rng == nullptr || !rng->is_object()) {
    return Status::DataLoss("advisor state: missing rng");
  }
  SPARKTUNE_ASSIGN_OR_RETURN(rng_state, RngStateFromJson(*rng));
  s.rng = rng_state;
  s.init_sampler_generated = U64FromJson(j, "init_sampler_generated");
  if (const Json* sub = j.Get("subspace"); sub && sub->is_object()) {
    s.subspace = SubspaceStateFromJson(*sub);
  }
  if (const Json* obs = j.Get("observations"); obs && obs->is_array()) {
    for (const auto& e : obs->elements()) {
      auto o = DataRepository::ObservationFromJson(e, space);
      if (!o.ok()) return Status::DataLoss(o.status().message());
      s.observations.push_back(*std::move(o));
    }
  }
  if (const Json* warm = j.Get("warm_start"); warm && warm->is_array()) {
    for (const auto& e : warm->elements()) {
      if (!e.is_array() || e.size() != space.size()) {
        return Status::DataLoss("advisor state: warm-start width mismatch");
      }
      s.warm_start.emplace_back(VectorFromJson(e));
    }
  }
  s.suggestions = static_cast<int>(j.GetNumberOr("suggestions", 0.0));
  s.init_served = U64FromJson(j, "init_served");
  s.use_time_context = j.GetBoolOr("use_time_context", false);
  if (const Json* deg = j.Get("degradation"); deg && deg->is_object()) {
    s.degradation = DegradationFromJson(*deg);
  }
  return s;
}

Json TunerStateToJson(const TunerState& s) {
  Json j = Json::Object();
  j.Set("phase", Json::Number(s.phase));
  SetFiniteNumber(&j, "runtime_max", s.runtime_max);
  SetFiniteNumber(&j, "resource_max", s.resource_max);
  if (s.baseline_obs.has_value()) {
    j.Set("baseline_obs", DataRepository::ObservationToJson(*s.baseline_obs));
  }
  Json applied = Json::Array();
  for (const auto& o : s.applied_history) {
    applied.Append(DataRepository::ObservationToJson(o));
  }
  j.Set("applied_history", std::move(applied));
  j.Set("tuning_iterations", Json::Number(s.tuning_iterations));
  j.Set("executions", Json::Number(s.executions));
  j.Set("stopped_early", Json::Bool(s.stopped_early));
  j.Set("restarts", Json::Number(s.restarts));
  j.Set("degradation_streak", Json::Number(s.degradation_streak));
  if (s.pending_config.has_value()) {
    j.Set("pending_config", VectorToJson(s.pending_config->values()));
  }
  j.Set("pending_attempts", Json::Number(s.pending_attempts));
  j.Set("has_advisor", Json::Bool(s.has_advisor));
  if (s.has_advisor) j.Set("advisor", AdvisorStateToJson(s.advisor));
  return j;
}

Result<TunerState> TunerStateFromJson(const Json& j,
                                      const ConfigSpace& space) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  TunerState s;
  s.phase = static_cast<int>(j.GetNumberOr("phase", 0.0));
  if (s.phase < 0 || s.phase > 2) {
    return Status::DataLoss("tuner state: phase out of range");
  }
  s.runtime_max = j.GetNumberOr("runtime_max", kInf);
  s.resource_max = j.GetNumberOr("resource_max", kInf);
  if (const Json* b = j.Get("baseline_obs"); b != nullptr) {
    auto o = DataRepository::ObservationFromJson(*b, space);
    if (!o.ok()) return Status::DataLoss(o.status().message());
    s.baseline_obs = *std::move(o);
  }
  if (const Json* applied = j.Get("applied_history");
      applied && applied->is_array()) {
    for (const auto& e : applied->elements()) {
      auto o = DataRepository::ObservationFromJson(e, space);
      if (!o.ok()) return Status::DataLoss(o.status().message());
      s.applied_history.push_back(*std::move(o));
    }
  }
  s.tuning_iterations =
      static_cast<int>(j.GetNumberOr("tuning_iterations", 0.0));
  s.executions = static_cast<int>(j.GetNumberOr("executions", 0.0));
  s.stopped_early = j.GetBoolOr("stopped_early", false);
  s.restarts = static_cast<int>(j.GetNumberOr("restarts", 0.0));
  s.degradation_streak =
      static_cast<int>(j.GetNumberOr("degradation_streak", 0.0));
  if (const Json* pc = j.Get("pending_config"); pc != nullptr) {
    if (!pc->is_array() || pc->size() != space.size()) {
      return Status::DataLoss("tuner state: pending-config width mismatch");
    }
    s.pending_config = Configuration(VectorFromJson(*pc));
  }
  s.pending_attempts =
      static_cast<int>(j.GetNumberOr("pending_attempts", 0.0));
  s.has_advisor = j.GetBoolOr("has_advisor", false);
  if (s.has_advisor) {
    const Json* adv = j.Get("advisor");
    if (adv == nullptr || !adv->is_object()) {
      return Status::DataLoss("tuner state: advisor payload missing");
    }
    SPARKTUNE_ASSIGN_OR_RETURN(advisor, AdvisorStateFromJson(*adv, space));
    s.advisor = std::move(advisor);
  }
  return s;
}

Json RetryStateToJson(const RetryState& s) {
  Json j = Json::Object();
  j.Set("consecutive_infra", Json::Number(s.consecutive_infra));
  j.Set("backoff_remaining", Json::Number(s.backoff_remaining));
  j.Set("parked", Json::Bool(s.parked));
  j.Set("park_cooldown", Json::Number(s.park_cooldown));
  j.Set("infra_failures",
        Json::Number(static_cast<double>(s.infra_failures)));
  j.Set("backoff_skips", Json::Number(static_cast<double>(s.backoff_skips)));
  j.Set("park_events", Json::Number(static_cast<double>(s.park_events)));
  j.Set("degraded_runs", Json::Number(static_cast<double>(s.degraded_runs)));
  return j;
}

RetryState RetryStateFromJson(const Json& j) {
  RetryState s;
  s.consecutive_infra =
      static_cast<int>(j.GetNumberOr("consecutive_infra", 0.0));
  s.backoff_remaining =
      static_cast<int>(j.GetNumberOr("backoff_remaining", 0.0));
  s.parked = j.GetBoolOr("parked", false);
  s.park_cooldown = static_cast<int>(j.GetNumberOr("park_cooldown", 0.0));
  s.infra_failures =
      static_cast<long long>(j.GetNumberOr("infra_failures", 0.0));
  s.backoff_skips =
      static_cast<long long>(j.GetNumberOr("backoff_skips", 0.0));
  s.park_events = static_cast<long long>(j.GetNumberOr("park_events", 0.0));
  s.degraded_runs =
      static_cast<long long>(j.GetNumberOr("degraded_runs", 0.0));
  return s;
}

}  // namespace

Json TaskCheckpointToJson(const TaskCheckpoint& ckpt) {
  Json j = Json::Object();
  j.Set("id", Json::Str(ckpt.id));
  j.Set("tuner", TunerStateToJson(ckpt.tuner));
  Json samples = Json::Array();
  for (const auto& s : ckpt.meta_samples) samples.Append(VectorToJson(s));
  j.Set("meta_samples", std::move(samples));
  j.Set("meta_attached", Json::Bool(ckpt.meta_attached));
  j.Set("harvested", Json::Bool(ckpt.harvested));
  j.Set("harvested_size",
        Json::Number(static_cast<double>(ckpt.harvested_size)));
  j.Set("retry", RetryStateToJson(ckpt.retry));
  j.Set("periods", Json::Number(static_cast<double>(ckpt.periods)));
  return j;
}

Result<TaskCheckpoint> TaskCheckpointFromJson(const Json& j,
                                              const ConfigSpace& space) {
  if (!j.is_object()) {
    return Status::DataLoss("task checkpoint: not a JSON object");
  }
  TaskCheckpoint ckpt;
  ckpt.id = j.GetStringOr("id", "");
  if (ckpt.id.empty()) {
    return Status::DataLoss("task checkpoint: missing id");
  }
  const Json* tuner = j.Get("tuner");
  if (tuner == nullptr || !tuner->is_object()) {
    return Status::DataLoss("task checkpoint: missing tuner state");
  }
  SPARKTUNE_ASSIGN_OR_RETURN(tuner_state, TunerStateFromJson(*tuner, space));
  ckpt.tuner = std::move(tuner_state);
  if (const Json* samples = j.Get("meta_samples");
      samples && samples->is_array()) {
    for (const auto& e : samples->elements()) {
      ckpt.meta_samples.push_back(VectorFromJson(e));
    }
  }
  ckpt.meta_attached = j.GetBoolOr("meta_attached", false);
  ckpt.harvested = j.GetBoolOr("harvested", false);
  ckpt.harvested_size =
      static_cast<uint64_t>(j.GetNumberOr("harvested_size", 0.0));
  if (const Json* retry = j.Get("retry"); retry && retry->is_object()) {
    ckpt.retry = RetryStateFromJson(*retry);
  }
  ckpt.periods = static_cast<long long>(j.GetNumberOr("periods", 0.0));
  return ckpt;
}

}  // namespace sparktune
