// Task checkpoint codec (DESIGN.md §7): the JSON payload stored by
// DataRepository::SaveCheckpoint for each task. It captures everything a
// restarted service needs to resume the *identical* suggestion trajectory:
// the tuner phase machine, the advisor's history and RNG cursors, the
// meta-learning attachment flags, and the watchdog retry state.
//
// uint64 values (RNG words, sampler cursors) are serialized as hex strings:
// JSON numbers round-trip through double and would silently lose the low
// bits of a 64-bit state word.
#pragma once

#include "common/backoff.h"
#include "common/json.h"
#include "common/result.h"
#include "space/config_space.h"
#include "tuner/online_tuner.h"

namespace sparktune {

struct TaskCheckpoint {
  std::string id;
  TunerState tuner;
  std::vector<std::vector<double>> meta_samples;
  bool meta_attached = false;
  bool harvested = false;
  uint64_t harvested_size = 0;
  RetryState retry;
  // Periods (DecidePeriod calls, including backoff skips) the task had
  // consumed when the checkpoint was taken. The supervisor uses this to
  // replay post-checkpoint periods deterministically after a handoff.
  long long periods = 0;
};

Json TaskCheckpointToJson(const TaskCheckpoint& ckpt);
// `space` validates configuration widths; a malformed document yields
// kDataLoss so callers treat it like a corrupt checkpoint file.
Result<TaskCheckpoint> TaskCheckpointFromJson(const Json& j,
                                              const ConfigSpace& space);

}  // namespace sparktune
