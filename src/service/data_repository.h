// Data repository (paper Figure 1): persistent storage of tuning-related
// data — run histories, meta-features and importance scores — as one JSON
// document per task. This is what lets the meta-knowledge learner reuse
// history across service restarts.
//
// Checkpoints are stored as *generations* (DESIGN.md §7): every
// SaveCheckpoint writes a new file with a monotonic generation suffix and
// then updates a CRC-framed per-task manifest naming the live generations.
// A torn or bit-rotted newest generation therefore falls back to the
// previous one instead of a fresh start; only a fully absent or corrupt
// history surfaces as kNotFound/kDataLoss.
#pragma once

#include <string>
#include <vector>

#include "bo/history.h"
#include "common/json.h"
#include "common/result.h"
#include "space/config_space.h"

namespace sparktune {

// Shared CRC-framed single-file persistence: the body is written to
// "<path>.tmp" and renamed into place, framed as
// "<magic> <crc32 hex> <byte count>\n<body>". The declared length catches
// truncation, the CRC catches bit rot; a torn or corrupt file loads as
// kDataLoss, a missing one as kNotFound. Checkpoint generations, per-task
// manifests, and the supervisor manifest all share this frame with
// distinct magics. `what` names the artifact in error messages.
Status WriteFramedAtomic(const std::string& path, const char* magic,
                         const std::string& body);
Result<std::string> ReadFramedFile(const std::string& path,
                                   const char* magic,
                                   const std::string& what);

struct StoredTask {
  std::string id;
  std::vector<double> meta_features;
  std::vector<double> importance;
  RunHistory history;
};

// Checkpoint GC policy: after each successful write, only the newest
// `keep_generations` generation files of the task survive.
struct CheckpointRetention {
  int keep_generations = 2;  // clamped to >= 1
};

class DataRepository {
 public:
  // `root_dir` is created if missing.
  explicit DataRepository(std::string root_dir,
                          CheckpointRetention retention = {});

  Status SaveTask(const StoredTask& task, const ConfigSpace& space) const;
  Result<StoredTask> LoadTask(const std::string& id,
                              const ConfigSpace& space) const;
  // Ids of every stored task (decoded from JSON documents on disk).
  std::vector<std::string> ListTaskIds() const;
  bool HasTask(const std::string& id) const;
  Status DeleteTask(const std::string& id) const;

  const std::string& root_dir() const { return root_dir_; }
  const CheckpointRetention& retention() const { return retention_; }

  // Crash-safe per-task checkpoints (DESIGN.md §7). Writes go to a temp
  // file and rename atomically into place; each generation file is framed
  // with a CRC32 header so a torn or bit-flipped checkpoint surfaces as
  // kDataLoss instead of being half-loaded. `payload` is an opaque JSON
  // document (see service/checkpoint.h for the task codec).
  //
  // SaveCheckpoint appends generation latest+1, rewrites the manifest, and
  // deletes generations that fell out of the retention window.
  // LoadCheckpoint walks the generations newest-first (manifest order,
  // backstopped by a directory scan when the manifest itself is torn) and
  // returns the first intact payload: kNotFound when no generation file
  // exists at all, kDataLoss when files exist but none decodes.
  Status SaveCheckpoint(const std::string& id, const Json& payload) const;
  Result<Json> LoadCheckpoint(const std::string& id) const;
  bool HasCheckpoint(const std::string& id) const;
  Status DeleteCheckpoint(const std::string& id) const;
  std::vector<std::string> ListCheckpointIds() const;

  // Newest generation number present on disk for `id` (0 = none).
  long long LatestCheckpointGeneration(const std::string& id) const;
  // Sweeps stale temp files and generation files that fell out of the
  // retention window (e.g. a crash between a write and its GC, or a
  // manifest update that never landed). Returns the number of files
  // removed. TuningService::LoadRepository runs this on startup.
  int SweepOrphanCheckpoints() const;

  // JSON codecs (exposed for tests).
  static Json ObservationToJson(const Observation& obs);
  static Result<Observation> ObservationFromJson(const Json& j,
                                                 const ConfigSpace& space);

 private:
  std::string PathFor(const std::string& id) const;
  // `<sanitized>-<hash>` stem shared by a task's checkpoint artifacts.
  std::string CheckpointStem(const std::string& id) const;
  std::string GenerationPath(const std::string& id, long long gen) const;
  std::string ManifestPath(const std::string& id) const;
  std::string LegacyCheckpointPath(const std::string& id) const;
  // Generation numbers present on disk for `id`, ascending.
  std::vector<long long> ScanGenerations(const std::string& id) const;
  // Generations listed by an intact manifest, ascending (empty if the
  // manifest is missing or torn — callers fall back to ScanGenerations).
  std::vector<long long> ManifestGenerations(const std::string& id) const;
  Status WriteManifest(const std::string& id,
                       const std::vector<long long>& gens) const;

  std::string root_dir_;
  CheckpointRetention retention_;
};

}  // namespace sparktune
