// Data repository (paper Figure 1): persistent storage of tuning-related
// data — run histories, meta-features and importance scores — as one JSON
// document per task. This is what lets the meta-knowledge learner reuse
// history across service restarts.
#pragma once

#include <string>
#include <vector>

#include "bo/history.h"
#include "common/json.h"
#include "common/result.h"
#include "space/config_space.h"

namespace sparktune {

struct StoredTask {
  std::string id;
  std::vector<double> meta_features;
  std::vector<double> importance;
  RunHistory history;
};

class DataRepository {
 public:
  // `root_dir` is created if missing.
  explicit DataRepository(std::string root_dir);

  Status SaveTask(const StoredTask& task, const ConfigSpace& space) const;
  Result<StoredTask> LoadTask(const std::string& id,
                              const ConfigSpace& space) const;
  // Ids of every stored task (decoded from JSON documents on disk).
  std::vector<std::string> ListTaskIds() const;
  bool HasTask(const std::string& id) const;
  Status DeleteTask(const std::string& id) const;

  const std::string& root_dir() const { return root_dir_; }

  // Crash-safe per-task checkpoints (DESIGN.md §7). Writes go to a temp
  // file and rename atomically into place; the file is framed with a CRC32
  // header so a torn or bit-flipped checkpoint surfaces as kDataLoss
  // instead of being half-loaded. `payload` is an opaque JSON document
  // (see service/checkpoint.h for the task codec).
  Status SaveCheckpoint(const std::string& id, const Json& payload) const;
  Result<Json> LoadCheckpoint(const std::string& id) const;
  bool HasCheckpoint(const std::string& id) const;
  Status DeleteCheckpoint(const std::string& id) const;
  std::vector<std::string> ListCheckpointIds() const;

  // JSON codecs (exposed for tests).
  static Json ObservationToJson(const Observation& obs);
  static Result<Observation> ObservationFromJson(const Json& j,
                                                 const ConfigSpace& space);

 private:
  std::string PathFor(const std::string& id) const;
  std::string CheckpointPathFor(const std::string& id) const;

  std::string root_dir_;
};

}  // namespace sparktune
