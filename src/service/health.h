// Heartbeat-driven shard liveness (DESIGN.md §9): a per-shard state
// machine — healthy → suspect → down → quarantined — advanced only by
// integer tick counts and explicit events (probe/call failures, confirmed
// process death, restart outcomes), so every transition is deterministic
// and independent of wall time.
//
// Auto-restart pacing rides the same RetryPolicy::BackoffPeriods curve the
// watchdog and reconnect layers use: after the k-th consecutive failed
// restart the next attempt waits BackoffPeriods(k) ticks. Flap detection
// parks a shard that restarted `flap_max_restarts` times within
// `flap_window_ticks`: it enters kQuarantined for `quarantine_ticks`
// (a strictly longer pause than any single backoff step is expected to
// be), after which the window clears and restarts resume.
#pragma once

#include <deque>

#include "common/backoff.h"

namespace sparktune {

enum class ShardHealth {
  kHealthy = 0,
  kSuspect = 1,      // failures seen, not yet presumed dead
  kDown = 2,         // presumed/confirmed dead; restart-eligible
  kQuarantined = 3,  // flapping: restarts parked until the window expires
};

const char* ShardHealthName(ShardHealth health);

struct HealthPolicy {
  // Auto-restart of down shards inside ProcessSupervisor::Tick. Off by
  // default so the manual KillShard/RestartShard chaos workflow (and every
  // pre-existing test) keeps its exact semantics; the self-healing soak
  // and the tools turn it on.
  bool auto_restart = false;
  // Consecutive failures that move kHealthy → kSuspect → kDown.
  int suspect_after = 1;
  int down_after = 2;
  // Tick-domain pacing between restart attempts after failures.
  RetryPolicy restart_backoff{/*max_attempts=*/1 << 20,
                              /*base_backoff_periods=*/1,
                              /*max_backoff_periods=*/16,
                              /*circuit_break_failures=*/4,
                              /*park_periods=*/6};
  // Flap detection: this many successful restarts within the window parks
  // the shard in kQuarantined for quarantine_ticks.
  int flap_max_restarts = 3;
  int flap_window_ticks = 32;
  int quarantine_ticks = 16;
  // Ping-probe cadence: probe on ticks where tick % cadence == 0 (<=1
  // probes every tick).
  int heartbeat_every_ticks = 1;
};

class ShardHealthMonitor {
 public:
  ShardHealthMonitor() = default;
  explicit ShardHealthMonitor(HealthPolicy policy) : policy_(policy) {}

  ShardHealth state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  int restart_failures() const { return restart_failures_; }
  long long restarts() const { return restarts_; }
  long long quarantines() const { return quarantines_; }
  long long quarantined_until_tick() const { return quarantine_until_; }

  // True on ticks where the supervisor should spend a ping probe.
  bool ShouldProbe(long long tick) const;

  // A successful exchange (probe or call): the shard is demonstrably
  // serving, so any suspect/down presumption clears.
  void RecordSuccess();
  // A probe or call failure at `tick`.
  void RecordFailure(long long tick);
  // The worker process is confirmed gone (reaped or SIGKILLed).
  void RecordDeath(long long tick);
  // A successful respawn at `tick` (manual or automatic). Feeds the flap
  // window and resets the failure streaks.
  void RecordRestart(long long tick);
  // A failed respawn attempt: schedules the next one on the backoff curve.
  void RecordRestartFailure(long long tick);

  // True when a kDown shard should attempt a restart this tick. Advances
  // the quarantine state machine: entering when the flap window overflows,
  // leaving (back to kDown, window cleared) once quarantine_ticks elapse.
  bool ShouldAttemptRestart(long long tick);

 private:
  void PruneWindow(long long tick);

  HealthPolicy policy_;
  ShardHealth state_ = ShardHealth::kHealthy;
  int consecutive_failures_ = 0;
  int restart_failures_ = 0;
  long long next_restart_tick_ = 0;
  long long quarantine_until_ = 0;
  long long restarts_ = 0;
  long long quarantines_ = 0;
  std::deque<long long> recent_restart_ticks_;
};

}  // namespace sparktune
