#include "service/health.h"

namespace sparktune {

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kSuspect: return "suspect";
    case ShardHealth::kDown: return "down";
    case ShardHealth::kQuarantined: return "quarantined";
  }
  return "unknown";
}

bool ShardHealthMonitor::ShouldProbe(long long tick) const {
  if (policy_.heartbeat_every_ticks <= 1) return true;
  return tick % policy_.heartbeat_every_ticks == 0;
}

void ShardHealthMonitor::RecordSuccess() {
  consecutive_failures_ = 0;
  // A serving shard is healthy whatever we presumed — including a
  // quarantined one that came back on its own (e.g. a manual restart).
  state_ = ShardHealth::kHealthy;
  quarantine_until_ = 0;
}

void ShardHealthMonitor::RecordFailure(long long tick) {
  (void)tick;  // failures advance the streak; pacing is restart-side
  ++consecutive_failures_;
  if (state_ == ShardHealth::kQuarantined) return;
  if (consecutive_failures_ >= policy_.down_after) {
    state_ = ShardHealth::kDown;
  } else if (consecutive_failures_ >= policy_.suspect_after) {
    state_ = ShardHealth::kSuspect;
  }
}

void ShardHealthMonitor::RecordDeath(long long tick) {
  (void)tick;
  if (consecutive_failures_ < policy_.down_after) {
    consecutive_failures_ = policy_.down_after;
  }
  if (state_ != ShardHealth::kQuarantined) state_ = ShardHealth::kDown;
}

void ShardHealthMonitor::RecordRestart(long long tick) {
  ++restarts_;
  recent_restart_ticks_.push_back(tick);
  restart_failures_ = 0;
  consecutive_failures_ = 0;
  next_restart_tick_ = 0;
  state_ = ShardHealth::kHealthy;
  quarantine_until_ = 0;
}

void ShardHealthMonitor::RecordRestartFailure(long long tick) {
  ++restart_failures_;
  next_restart_tick_ =
      tick + policy_.restart_backoff.BackoffPeriods(restart_failures_);
  if (state_ != ShardHealth::kQuarantined) state_ = ShardHealth::kDown;
}

void ShardHealthMonitor::PruneWindow(long long tick) {
  const long long horizon = tick - policy_.flap_window_ticks;
  while (!recent_restart_ticks_.empty() &&
         recent_restart_ticks_.front() <= horizon) {
    recent_restart_ticks_.pop_front();
  }
}

bool ShardHealthMonitor::ShouldAttemptRestart(long long tick) {
  if (state_ == ShardHealth::kQuarantined) {
    if (tick < quarantine_until_) return false;
    // Quarantine served: back to kDown with a clean slate.
    state_ = ShardHealth::kDown;
    recent_restart_ticks_.clear();
    restart_failures_ = 0;
    next_restart_tick_ = 0;
  }
  if (state_ != ShardHealth::kDown) return false;
  PruneWindow(tick);
  if (policy_.flap_max_restarts > 0 &&
      static_cast<int>(recent_restart_ticks_.size()) >=
          policy_.flap_max_restarts) {
    state_ = ShardHealth::kQuarantined;
    quarantine_until_ = tick + policy_.quarantine_ticks;
    ++quarantines_;
    return false;
  }
  return tick >= next_restart_tick_;
}

}  // namespace sparktune
